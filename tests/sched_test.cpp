// Unit tests for the cooperative deterministic scheduler, exercised
// directly (without the interpreter): token passing, barriers, blocking,
// deadlock detection, abort propagation, and determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "runtime/sched.hpp"
#include "support/error.hpp"

namespace drbml::runtime {
namespace {

TEST(Scheduler, RunsAllWorkersToCompletion) {
  CoopScheduler sched(1, 3);
  std::vector<int> done(4, 0);
  std::vector<std::function<void()>> fns;
  for (int i = 0; i < 4; ++i) {
    fns.push_back([&, i] {
      for (int k = 0; k < 10; ++k) sched.yield_point();
      done[static_cast<std::size_t>(i)] = 1;
    });
  }
  sched.run_team(std::move(fns));
  for (int d : done) EXPECT_EQ(d, 1);
}

TEST(Scheduler, OnlyOneWorkerRunsAtATime) {
  CoopScheduler sched(7, 1);
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  std::vector<std::function<void()>> fns;
  for (int i = 0; i < 4; ++i) {
    fns.push_back([&] {
      for (int k = 0; k < 50; ++k) {
        const int now = inside.fetch_add(1);
        if (now != 0) overlap = true;
        inside.fetch_sub(1);
        sched.yield_point();
      }
    });
  }
  sched.run_team(std::move(fns));
  EXPECT_FALSE(overlap.load());
}

TEST(Scheduler, InterleavingIsDeterministicPerSeed) {
  auto trace_for = [](std::uint64_t seed) {
    CoopScheduler sched(seed, 1);
    std::string trace;
    std::vector<std::function<void()>> fns;
    for (int i = 0; i < 3; ++i) {
      fns.push_back([&, i] {
        for (int k = 0; k < 8; ++k) {
          trace += static_cast<char>('A' + i);
          sched.yield_point();
        }
      });
    }
    sched.run_team(std::move(fns));
    return trace;
  };
  EXPECT_EQ(trace_for(42), trace_for(42));
  EXPECT_NE(trace_for(42), trace_for(43));
}

TEST(Scheduler, PreemptionActuallyInterleaves) {
  CoopScheduler sched(3, 1);
  std::string trace;
  std::vector<std::function<void()>> fns;
  for (int i = 0; i < 2; ++i) {
    fns.push_back([&, i] {
      for (int k = 0; k < 20; ++k) {
        trace += static_cast<char>('A' + i);
        sched.yield_point();
      }
    });
  }
  sched.run_team(std::move(fns));
  // Not all of A before all of B.
  EXPECT_NE(trace, std::string(20, 'A') + std::string(20, 'B'));
  EXPECT_NE(trace, std::string(20, 'B') + std::string(20, 'A'));
}

TEST(Scheduler, BarrierSynchronizesPhases) {
  CoopScheduler sched(11, 2);
  std::vector<int> phase_done(3, 0);
  std::atomic<bool> violation{false};
  std::vector<std::function<void()>> fns;
  for (int i = 0; i < 3; ++i) {
    fns.push_back([&, i] {
      for (int k = 0; k < 5; ++k) sched.yield_point();
      phase_done[static_cast<std::size_t>(i)] = 1;
      sched.barrier_wait();
      // After the barrier every worker's phase-0 work must be complete.
      for (int other = 0; other < 3; ++other) {
        if (phase_done[static_cast<std::size_t>(other)] != 1) {
          violation = true;
        }
      }
    });
  }
  sched.run_team(std::move(fns));
  EXPECT_FALSE(violation.load());
}

TEST(Scheduler, RepeatedBarriers) {
  CoopScheduler sched(5, 2);
  std::vector<int> counters(4, 0);
  std::atomic<bool> violation{false};
  std::vector<std::function<void()>> fns;
  for (int i = 0; i < 4; ++i) {
    fns.push_back([&, i] {
      for (int round = 0; round < 6; ++round) {
        counters[static_cast<std::size_t>(i)] = round + 1;
        sched.barrier_wait();
        for (int other = 0; other < 4; ++other) {
          if (counters[static_cast<std::size_t>(other)] < round + 1) {
            violation = true;
          }
        }
        sched.barrier_wait();
      }
    });
  }
  sched.run_team(std::move(fns));
  EXPECT_FALSE(violation.load());
}

TEST(Scheduler, BlockUntilWaitsForPeerProgress) {
  CoopScheduler sched(9, 1);
  int flag = 0;
  int observed = -1;
  std::vector<std::function<void()>> fns;
  fns.push_back([&] {
    sched.block_until([&] { return flag == 1; });
    observed = flag;
  });
  fns.push_back([&] {
    for (int k = 0; k < 10; ++k) sched.yield_point();
    flag = 1;
  });
  sched.run_team(std::move(fns));
  EXPECT_EQ(observed, 1);
}

TEST(Scheduler, DeadlockIsDetected) {
  CoopScheduler sched(13, 1);
  std::vector<std::function<void()>> fns;
  // Both workers wait on conditions nobody will satisfy.
  for (int i = 0; i < 2; ++i) {
    fns.push_back([&] { sched.block_until([] { return false; }); });
  }
  EXPECT_THROW(sched.run_team(std::move(fns)), RuntimeFault);
}

TEST(Scheduler, StepLimitAborts) {
  CoopScheduler sched(17, 1);
  sched.set_step_limit(100);
  std::vector<std::function<void()>> fns;
  fns.push_back([&] {
    for (;;) sched.yield_point();
  });
  EXPECT_THROW(sched.run_team(std::move(fns)), RuntimeFault);
}

TEST(Scheduler, WorkerExceptionPropagatesAndUnwindsTeam) {
  CoopScheduler sched(19, 1);
  bool other_started = false;
  std::vector<std::function<void()>> fns;
  fns.push_back([&] {
    for (int k = 0; k < 3; ++k) sched.yield_point();
    throw RuntimeFault("boom");
  });
  fns.push_back([&] {
    other_started = true;
    for (;;) sched.yield_point();  // unwound via TeamAborted
  });
  EXPECT_THROW(sched.run_team(std::move(fns)), RuntimeFault);
  EXPECT_TRUE(other_started);
}

TEST(Scheduler, SingleWorkerTeamRuns) {
  CoopScheduler sched(23, 1);
  int count = 0;
  std::vector<std::function<void()>> fns;
  fns.push_back([&] {
    for (int k = 0; k < 100; ++k) {
      ++count;
      sched.yield_point();
    }
    sched.barrier_wait();
  });
  sched.run_team(std::move(fns));
  EXPECT_EQ(count, 100);
}

TEST(Scheduler, LiveCountTracksCompletion) {
  CoopScheduler sched(29, 1);
  int live_at_end = -1;
  std::vector<std::function<void()>> fns;
  fns.push_back([&] {
    for (int k = 0; k < 5; ++k) sched.yield_point();
  });
  fns.push_back([&] {
    for (int k = 0; k < 200; ++k) sched.yield_point();
    live_at_end = sched.live();
  });
  sched.run_team(std::move(fns));
  EXPECT_EQ(live_at_end, 1);  // only this worker was still live
}

}  // namespace
}  // namespace drbml::runtime
