// Unit tests for the support library: JSON, RNG, strings, tables.
#include <gtest/gtest.h>

#include <set>

#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace drbml {
namespace {

// ---------------------------------------------------------------- strings

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a"), "a");
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, JoinRoundTripsSplit) {
  std::vector<std::string> v = {"x", "y", "z"};
  EXPECT_EQ(join(v, ","), "x,y,z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ContainsIcase) {
  EXPECT_TRUE(contains_icase("Hello World", "WORLD"));
  EXPECT_TRUE(contains_icase("abc", ""));
  EXPECT_FALSE(contains_icase("abc", "abcd"));
  EXPECT_FALSE(contains_icase("data race", "racer"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("abc", "x", "y"), "abc");
}

TEST(Strings, CountLines) {
  EXPECT_EQ(count_lines(""), 0);
  EXPECT_EQ(count_lines("a"), 1);
  EXPECT_EQ(count_lines("a\n"), 1);
  EXPECT_EQ(count_lines("a\nb"), 2);
  EXPECT_EQ(count_lines("a\nb\n"), 2);
}

TEST(Strings, SplitLines) {
  auto lines = split_lines("one\ntwo\n\nthree");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(lines[3], "three");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(0.5954, 3), "0.595");
  EXPECT_EQ(format_double(1.0, 2), "1.00");
}

TEST(Strings, ParseIntAcceptsStrictDecimals) {
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("+5"), 5);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("9223372036854775807"), 9223372036854775807LL);
}

TEST(Strings, ParseIntRejectsNonNumericInput) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("abc").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
  EXPECT_FALSE(parse_int("-").has_value());
  EXPECT_FALSE(parse_int("+").has_value());
  EXPECT_FALSE(parse_int(" 3").has_value());
  EXPECT_FALSE(parse_int("3 ").has_value());
}

TEST(Strings, ParseIntRejectsOverflow) {
  EXPECT_FALSE(parse_int("9223372036854775808").has_value());
  EXPECT_FALSE(parse_int("123456789012345678901234").has_value());
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicFromKey) {
  Rng a = Rng::from_key("table3/gpt4/p1");
  Rng b = Rng::from_key("table3/gpt4/p1");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentKeysDiverge) {
  Rng a = Rng::from_key("alpha");
  Rng b = Rng::from_key("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(7), 7u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(1);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng r(9);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(3);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, BetweenInclusive) {
  Rng r(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    auto x = r.between(-2, 2);
    ASSERT_GE(x, -2);
    ASSERT_LE(x, 2);
    saw_lo |= x == -2;
    saw_hi |= x == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// ---------------------------------------------------------------- json

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(json::parse("2.5").as_double(), 2.5);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntAndDoubleAreDistinct) {
  EXPECT_TRUE(json::parse("3").is_int());
  EXPECT_TRUE(json::parse("3.0").is_double());
  EXPECT_TRUE(json::parse("3e2").is_double());
}

TEST(Json, ParsesNestedStructures) {
  auto v = json::parse(R"({"a": [1, 2, {"b": null}], "c": "x"})");
  const auto& obj = v.as_object();
  ASSERT_TRUE(obj.contains("a"));
  const auto& arr = obj.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[1].as_int(), 2);
  EXPECT_TRUE(arr[2].as_object().at("b").is_null());
}

TEST(Json, ObjectPreservesInsertionOrder) {
  json::Object obj;
  obj.set("zeta", json::Value(1));
  obj.set("alpha", json::Value(2));
  obj.set("mid", json::Value(3));
  json::Value v(std::move(obj));
  EXPECT_EQ(v.dump(), R"({"zeta":1,"alpha":2,"mid":3})");
}

TEST(Json, SetOverwritesInPlace) {
  json::Object obj;
  obj.set("k", json::Value(1));
  obj.set("k", json::Value(9));
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.at("k").as_int(), 9);
}

TEST(Json, EscapesSpecialCharacters) {
  json::Value v(std::string("line1\nline2\t\"q\"\\"));
  const std::string dumped = v.dump();
  EXPECT_EQ(json::parse(dumped).as_string(), "line1\nline2\t\"q\"\\");
}

TEST(Json, RoundTripsThroughDump) {
  const char* text =
      R"({"ID":1,"name":"DRB001","data_race":1,"var_pairs":[{"name":["a[i]","a[i+1]"],"line":[14,14],"col":[5,10],"operation":["w","r"]}]})";
  auto v = json::parse(text);
  auto v2 = json::parse(v.dump());
  EXPECT_EQ(v.dump(), v2.dump());
}

TEST(Json, PrettyPrintParsesBack) {
  auto v = json::parse(R"({"a":[1,2],"b":{"c":true}})");
  auto v2 = json::parse(v.dump_pretty());
  EXPECT_EQ(v.dump(), v2.dump());
}

TEST(Json, ThrowsOnMalformedInput) {
  EXPECT_THROW(json::parse(""), JsonError);
  EXPECT_THROW(json::parse("{"), JsonError);
  EXPECT_THROW(json::parse("[1,]"), JsonError);
  EXPECT_THROW(json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(json::parse("tru"), JsonError);
  EXPECT_THROW(json::parse("1 2"), JsonError);
}

TEST(Json, ThrowsOnTypeMismatch) {
  auto v = json::parse("[1]");
  EXPECT_THROW(v.as_object(), JsonError);
  EXPECT_THROW(v.as_string(), JsonError);
  EXPECT_THROW(v.as_array()[0].as_bool(), JsonError);
}

TEST(Json, UnicodeEscapes) {
  auto v = json::parse(R"("Aé")");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9");
}

TEST(Json, MissingKeyThrows) {
  auto v = json::parse(R"({"a":1})");
  EXPECT_THROW(v.as_object().at("b"), JsonError);
  EXPECT_EQ(v.as_object().find("b"), nullptr);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  TextTable t({"Model", "F1"});
  t.add_row({"GPT4", "0.751"});
  t.add_row({"StarChat-beta", "0.545"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Model         |"), std::string::npos);
  EXPECT_NE(out.find("| 0.751 |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

}  // namespace
}  // namespace drbml
