// Tests for the schedule-exploration engine: PCT priority schedules,
// interleaving coverage, witness minimization, and bit-identical replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "explore/minimize.hpp"
#include "explore/witness.hpp"
#include "minic/parser.hpp"
#include "runtime/interp.hpp"
#include "runtime/strategy.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace drbml::explore {
namespace {

// DRB001-style loop-carried race: every interleaving with two threads in
// the region exposes it, so uniform random walks find it immediately.
constexpr const char* kRacySrc = R"(
int a[64];
int main(void) {
  #pragma omp parallel for num_threads(4)
  for (int i = 0; i < 63; i++) {
    a[i] = a[i + 1] + 1;
  }
  return 0;
}
)";

constexpr const char* kSafeSrc = R"(
int a[64];
int main(void) {
  #pragma omp parallel for num_threads(4)
  for (int i = 0; i < 64; i++) {
    a[i] = i * 2;
  }
  int s = 0;
  for (int i = 0; i < 64; i++) {
    s = s + a[i];
  }
  printf("%d", s);
  return 0;
}
)";

// Lock-window race: t1 only observes the unsynchronized `data` write if
// it wins the critical section first. Under the legacy uniform walk
// worker 0 takes the token first and finishes its critical section
// before the first preemption window, so the racy order needs a
// priority inversion at the start of the region -- PCT's randomized
// base priorities produce it with probability ~1/2 per schedule.
constexpr const char* kLockWindowSrc = R"(
int data = 0;
int sync = 0;
int main(void) {
  #pragma omp parallel num_threads(2)
  {
    if (omp_get_thread_num() == 0) {
      data = 1;
      #pragma omp critical
      { sync = sync + 1; }
    } else {
      #pragma omp critical
      { sync = sync + 1; }
      int r = data;
      r = r + 0;
    }
  }
  return 0;
}
)";

constexpr const char* kSpinSrc = R"(
int x = 0;
int main(void) {
  #pragma omp parallel num_threads(2)
  {
    while (1) {
      x = x + 1;
    }
  }
  return 0;
}
)";

runtime::RunResult run_src(const char* src, runtime::RunOptions opts) {
  minic::Program p = minic::parse_program(src);
  analysis::Resolution res = analysis::resolve(*p.unit);
  return runtime::run_program(*p.unit, res, opts);
}

bool same_result(const runtime::RunResult& a, const runtime::RunResult& b) {
  return a.output == b.output && a.exit_code == b.exit_code &&
         a.faulted == b.faulted && a.steps == b.steps &&
         a.report.race_detected == b.report.race_detected &&
         a.report.pairs == b.report.pairs;
}

bool is_subsequence(const runtime::ScheduleTrace& small,
                    const runtime::ScheduleTrace& big) {
  if (small.regions.size() > big.regions.size()) return false;
  for (std::size_t r = 0; r < small.regions.size(); ++r) {
    std::size_t j = 0;
    for (const runtime::ScheduleDecision& d : small.regions[r]) {
      while (j < big.regions[r].size() && !(big.regions[r][j] == d)) ++j;
      if (j == big.regions[r].size()) return false;
      ++j;
    }
  }
  return true;
}

std::string fingerprint(const ExploreResult& r) {
  std::string s;
  s += r.race_detected ? "race;" : "clean;";
  s += std::to_string(r.schedules_run) + ";";
  s += std::to_string(r.first_race_schedule) + ";";
  s += std::to_string(r.first_race_seed) + ";";
  s += r.stopped_on_plateau ? "plateau;" : "-;";
  for (std::uint64_t h : r.coverage) s += std::to_string(h) + ",";
  s += ";";
  for (const ScheduleStats& st : r.schedules) {
    s += std::to_string(st.seed) + ":" + (st.raced ? "r" : "-") +
         (st.faulted ? "f" : "-") + ":" + std::to_string(st.steps) + ":" +
         std::to_string(st.new_coverage) + ",";
  }
  s += ";" + r.witness + ";";
  s += std::to_string(r.original_decisions) + ";" +
       std::to_string(r.witness_decisions) + ";";
  for (const auto& p : r.report.pairs) {
    s += std::to_string(p.first.loc.line) + ":" +
         std::to_string(p.first.loc.col) + "/" +
         std::to_string(p.second.loc.line) + ":" +
         std::to_string(p.second.loc.col) + ",";
  }
  return s;
}

// ------------------------------------------------------------ PCT decider

TEST(PctDecider, DistinctPrioritiesAndDeterministicForSeed) {
  runtime::PctDecider a(42, 3, 100);
  runtime::PctDecider b(42, 3, 100);
  a.begin(4);
  b.begin(4);
  std::vector<int> seen;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.priority(i), b.priority(i));
    seen.push_back(a.priority(i));
  }
  std::sort(seen.begin(), seen.end());
  // Base priorities are a permutation of d..d+n-1 (all above change-point
  // demotion values, which are negative).
  EXPECT_EQ(seen, (std::vector<int>{3, 4, 5, 6}));
}

TEST(PctDecider, PicksHighestPriorityReady) {
  runtime::PctDecider d(7, 3, 100);
  d.begin(4);
  int best = 0;
  for (int i = 1; i < 4; ++i) {
    if (d.priority(i) > d.priority(best)) best = i;
  }
  std::vector<int> all{0, 1, 2, 3};
  EXPECT_EQ(d.pick(all, -1, 0, true), best);
}

TEST(PctDecider, DifferentSeedsChangeSchedules) {
  // Not guaranteed for any single pair, but across a handful of seeds at
  // least two must disagree on the priority permutation.
  std::vector<std::vector<int>> perms;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    runtime::PctDecider d(seed, 3, 100);
    d.begin(4);
    std::vector<int> p;
    for (int i = 0; i < 4; ++i) p.push_back(d.priority(i));
    perms.push_back(p);
  }
  bool differs = false;
  for (const auto& p : perms) {
    if (p != perms[0]) differs = true;
  }
  EXPECT_TRUE(differs);
}

// ------------------------------------------------------------- replay

TEST(Replay, UniformTraceReplaysBitIdentically) {
  for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    runtime::RunOptions rec;
    rec.seed = seed;
    rec.capture_trace = true;
    runtime::RunResult first = run_src(kRacySrc, rec);

    runtime::RunOptions rep = rec;
    rep.strategy = runtime::ScheduleStrategy::Replay;
    rep.replay = nullptr;
    runtime::ScheduleTrace trace = first.trace;
    rep.replay = &trace;
    runtime::RunResult second = run_src(kRacySrc, rep);
    EXPECT_TRUE(same_result(first, second)) << "seed " << seed;
    EXPECT_EQ(second.trace, trace);
  }
}

TEST(Replay, PctTraceReplaysBitIdentically) {
  for (std::uint64_t seed : {3ULL, 11ULL, 1234ULL}) {
    runtime::RunOptions rec;
    rec.seed = seed;
    rec.strategy = runtime::ScheduleStrategy::Pct;
    rec.capture_trace = true;
    runtime::RunResult first = run_src(kLockWindowSrc, rec);

    runtime::RunOptions rep = rec;
    rep.strategy = runtime::ScheduleStrategy::Replay;
    runtime::ScheduleTrace trace = first.trace;
    rep.replay = &trace;
    runtime::RunResult second = run_src(kLockWindowSrc, rep);
    EXPECT_TRUE(same_result(first, second)) << "seed " << seed;
  }
}

TEST(Replay, EmptyTraceIsDeterministicFallback) {
  runtime::ScheduleTrace empty;
  runtime::RunOptions rep;
  rep.strategy = runtime::ScheduleStrategy::Replay;
  rep.replay = &empty;
  runtime::RunResult a = run_src(kSafeSrc, rep);
  runtime::RunResult b = run_src(kSafeSrc, rep);
  EXPECT_TRUE(same_result(a, b));
  EXPECT_FALSE(a.faulted);
  EXPECT_EQ(a.output, "4032");
}

// Satellite fix: a step-budget abort must still surface the decision
// prefix recorded so far, so aborted schedules stay replayable.
TEST(Replay, PartialTraceSurvivesStepBudgetAbort) {
  runtime::RunOptions opts;
  opts.seed = 5;
  opts.num_threads = 2;
  opts.step_limit = 400;
  opts.capture_trace = true;
  runtime::RunResult r = run_src(kSpinSrc, opts);
  EXPECT_TRUE(r.faulted);
  ASSERT_FALSE(r.trace.regions.empty());
  EXPECT_GT(r.trace.total_decisions(), 0u);

  // The surfaced prefix replays deterministically.
  runtime::RunOptions rep = opts;
  rep.strategy = runtime::ScheduleStrategy::Replay;
  rep.replay = &r.trace;
  runtime::RunResult again = run_src(kSpinSrc, rep);
  EXPECT_TRUE(same_result(r, again));
}

// ------------------------------------------------------------- witness

TEST(Witness, EncodeDecodeRoundTrip) {
  Witness w;
  w.num_threads = 3;
  w.preempt_every = 5;
  w.step_limit = 1000;
  w.trace.regions.resize(2);
  w.trace.regions[0].push_back({true, 0, 2});
  w.trace.regions[0].push_back({false, 17, 1});
  const std::string text = encode_witness(w);
  Witness back = decode_witness(text);
  EXPECT_TRUE(w == back);
  EXPECT_EQ(encode_witness(back), text);
}

TEST(Witness, DecodeRejectsMalformedInput) {
  EXPECT_THROW(decode_witness(""), Error);
  EXPECT_THROW(decode_witness("bogus-v9;threads=2"), Error);
  EXPECT_THROW(decode_witness("drbml-witness-v1;threads=0;preempt=7;limit=1"),
               Error);
  EXPECT_THROW(decode_witness("drbml-witness-v1;threads=99;preempt=7;limit=1"),
               Error);
  EXPECT_THROW(
      decode_witness("drbml-witness-v1;threads=2;preempt=7;limit=1;region=z1:0"),
      Error);
  EXPECT_THROW(
      decode_witness("drbml-witness-v1;threads=2;preempt=7;limit=1;bogus=3"),
      Error);
}

// ------------------------------------------------------------- explorer

TEST(Explore, DeterministicForFixedSeed) {
  ExploreOptions opts;
  opts.max_schedules = 8;
  ExploreResult a = explore_source(kRacySrc, opts);
  ExploreResult b = explore_source(kRacySrc, opts);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_TRUE(a.race_detected);
}

TEST(Explore, WitnessStillRacesAndIsSubsequenceOfOriginal) {
  for (Strategy strat : {Strategy::Uniform, Strategy::Pct}) {
    ExploreOptions opts;
    opts.strategy = strat;
    opts.max_schedules = 16;
    ExploreResult r = explore_source(kRacySrc, opts);
    ASSERT_TRUE(r.race_detected) << strategy_name(strat);
    ASSERT_FALSE(r.witness.empty());
    EXPECT_LE(r.witness_decisions, r.original_decisions);

    Witness w = decode_witness(r.witness);
    runtime::RunResult replayed = replay_witness(kRacySrc, w, opts.run);
    EXPECT_TRUE(replayed.report.race_detected) << strategy_name(strat);

    // Recover the original racy trace from the recorded seed and check
    // the minimized witness is a subsequence of it.
    runtime::RunOptions orig = opts.run;
    orig.seed = r.first_race_seed;
    orig.strategy = strat == Strategy::Pct ? runtime::ScheduleStrategy::Pct
                                           : runtime::ScheduleStrategy::Uniform;
    orig.pct_depth = opts.pct_depth;
    orig.pct_expected_steps = opts.pct_expected_steps;
    orig.capture_trace = true;
    runtime::RunResult original = run_src(kRacySrc, orig);
    ASSERT_TRUE(original.report.race_detected);
    EXPECT_EQ(original.trace.total_decisions(), r.original_decisions);
    EXPECT_TRUE(is_subsequence(w.trace, original.trace));
  }
}

TEST(Explore, WitnessReplayIsBitIdenticalTwice) {
  ExploreOptions opts;
  opts.max_schedules = 8;
  ExploreResult r = explore_source(kRacySrc, opts);
  ASSERT_TRUE(r.race_detected);
  Witness w = decode_witness(r.witness);
  runtime::RunResult a = replay_witness(kRacySrc, w, opts.run);
  runtime::RunResult b = replay_witness(kRacySrc, w, opts.run);
  EXPECT_TRUE(same_result(a, b));
  EXPECT_TRUE(a.report.race_detected);
}

TEST(Explore, SafeProgramStopsOnCoveragePlateau) {
  ExploreOptions opts;
  opts.max_schedules = 64;
  opts.plateau_window = 4;
  ExploreResult r = explore_source(kSafeSrc, opts);
  EXPECT_FALSE(r.race_detected);
  EXPECT_TRUE(r.witness.empty());
  EXPECT_TRUE(r.stopped_on_plateau);
  EXPECT_LT(r.schedules_run, opts.max_schedules);
  EXPECT_FALSE(r.coverage.empty());
  ASSERT_FALSE(r.report.diagnostics.empty());
  EXPECT_NE(r.report.diagnostics.back().find("coverage plateau"),
            std::string::npos);
}

TEST(Explore, PctFindsLockWindowRaceUniformMisses) {
  ExploreOptions uniform;
  uniform.strategy = Strategy::Uniform;
  uniform.max_schedules = 16;
  uniform.plateau_window = 0;
  ExploreResult u = explore_source(kLockWindowSrc, uniform);
  EXPECT_FALSE(u.race_detected);
  EXPECT_EQ(u.schedules_run, 16);

  ExploreOptions pct = uniform;
  pct.strategy = Strategy::Pct;
  ExploreResult p = explore_source(kLockWindowSrc, pct);
  EXPECT_TRUE(p.race_detected);
  ASSERT_FALSE(p.witness.empty());
  Witness w = decode_witness(p.witness);
  runtime::RunResult replayed = replay_witness(kLockWindowSrc, w, pct.run);
  EXPECT_TRUE(replayed.report.race_detected);
}

TEST(Explore, ResultsStableAcrossJobs) {
  const std::vector<const char*> sources{kRacySrc, kSafeSrc, kLockWindowSrc,
                                         kRacySrc, kSafeSrc, kLockWindowSrc};
  auto explore_one = [](const char* src) {
    ExploreOptions opts;
    opts.max_schedules = 6;
    return fingerprint(explore_source(src, opts));
  };
  std::vector<std::string> serial =
      support::parallel_map(1, sources, explore_one);
  std::vector<std::string> parallel =
      support::parallel_map(8, sources, explore_one);
  EXPECT_EQ(serial, parallel);
}

TEST(Explore, ParseStrategyAcceptsKnownNamesOnly) {
  EXPECT_EQ(parse_strategy("uniform"), Strategy::Uniform);
  EXPECT_EQ(parse_strategy("pct"), Strategy::Pct);
  EXPECT_THROW(static_cast<void>(parse_strategy("chaos")), Error);
}

// ------------------------------------------------------------ minimizer

TEST(Minimize, ReducesToEmptyWhenPredicateIgnoresTrace) {
  runtime::ScheduleTrace t;
  t.regions.resize(1);
  for (int i = 0; i < 10; ++i) t.regions[0].push_back({false, 10u + i, 1});
  MinimizeResult r = minimize_trace(
      t, [](const runtime::ScheduleTrace&) { return true; }, 64);
  EXPECT_EQ(r.trace.total_decisions(), 0u);
  EXPECT_GT(r.replays, 0);
}

TEST(Minimize, KeepsRequiredDecision) {
  runtime::ScheduleTrace t;
  t.regions.resize(1);
  for (int i = 0; i < 8; ++i) t.regions[0].push_back({false, 10u + i, i % 3});
  const runtime::ScheduleDecision needle = t.regions[0][5];
  auto wants_needle = [&](const runtime::ScheduleTrace& cand) {
    for (const auto& d : cand.regions[0]) {
      if (d == needle) return true;
    }
    return false;
  };
  MinimizeResult r = minimize_trace(t, wants_needle, 256);
  EXPECT_EQ(r.trace.total_decisions(), 1u);
  ASSERT_EQ(r.trace.regions.size(), 1u);
  ASSERT_EQ(r.trace.regions[0].size(), 1u);
  EXPECT_TRUE(r.trace.regions[0][0] == needle);
}

TEST(Minimize, RespectsReplayBudget) {
  runtime::ScheduleTrace t;
  t.regions.resize(1);
  for (int i = 0; i < 64; ++i) t.regions[0].push_back({false, 10u + i, 0});
  int budget = 5;
  MinimizeResult r = minimize_trace(
      t, [](const runtime::ScheduleTrace&) { return false; }, budget);
  EXPECT_LE(r.replays, budget);
  EXPECT_EQ(r.trace.total_decisions(), 64u);
}

}  // namespace
}  // namespace drbml::explore
