// Corpus validation: every entry must parse, resolve its ground truth,
// render a DRB-style header, and execute cleanly under the interpreter.
// Aggregate tests check corpus composition and detector quality bounds.
#include <gtest/gtest.h>

#include <set>

#include "analysis/race.hpp"
#include "drb/corpus.hpp"
#include "minic/parser.hpp"
#include "runtime/dynamic.hpp"
#include "support/strings.hpp"

namespace drbml::drb {
namespace {

class CorpusEntryTest : public ::testing::TestWithParam<int> {
 protected:
  const CorpusEntry& entry() const {
    return corpus()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(CorpusEntryTest, ParsesWithTheFrontend) {
  const CorpusEntry& e = entry();
  minic::Program p = minic::parse_program(e.body);
  EXPECT_NE(p.unit->find_function("main"), nullptr) << e.name;
}

TEST_P(CorpusEntryTest, GroundTruthResolves) {
  const CorpusEntry& e = entry();
  ResolvedEntry r = resolve_entry(e);
  EXPECT_EQ(r.pairs.size(), e.pairs.size()) << e.name;
  for (const auto& pair : r.pairs) {
    EXPECT_GT(pair.var0.line, 0) << e.name;
    EXPECT_GT(pair.var1.line, 0) << e.name;
    EXPECT_TRUE(pair.var0.op == 'r' || pair.var0.op == 'w') << e.name;
    // The spelling really is at the reported position.
    const auto lines = split_lines(r.trimmed);
    ASSERT_LE(static_cast<std::size_t>(pair.var0.line), lines.size())
        << e.name;
    const std::string& line = lines[static_cast<std::size_t>(pair.var0.line) - 1];
    EXPECT_EQ(line.substr(static_cast<std::size_t>(pair.var0.col) - 1,
                          pair.var0.name.size()),
              pair.var0.name)
        << e.name;
  }
}

TEST_P(CorpusEntryTest, RaceYesHasPairsRaceNoHasNone) {
  const CorpusEntry& e = entry();
  if (e.race) {
    EXPECT_FALSE(e.pairs.empty()) << e.name;
  } else {
    EXPECT_TRUE(e.pairs.empty()) << e.name;
  }
}

TEST_P(CorpusEntryTest, DrbCodeCarriesAnnotations) {
  const CorpusEntry& e = entry();
  const std::string code = drb_code(e);
  EXPECT_NE(code.find(e.name), std::string::npos) << e.name;
  if (e.race) {
    EXPECT_NE(code.find("Data race pair:"), std::string::npos) << e.name;
  } else {
    EXPECT_EQ(code.find("Data race pair:"), std::string::npos) << e.name;
  }
  // Stripping the header gives back the trimmed body.
  ResolvedEntry r = resolve_entry(e);
  EXPECT_EQ(minic::strip_comments(code).trimmed, r.trimmed) << e.name;
}

TEST_P(CorpusEntryTest, ExecutesWithoutFaulting) {
  const CorpusEntry& e = entry();
  runtime::DynamicDetectorOptions opts;
  opts.schedule_seeds = {1};
  runtime::DynamicRaceDetector detector(opts);
  runtime::RunResult result = detector.run_once(e.body, 1);
  EXPECT_FALSE(result.faulted) << e.name << ": " << result.fault_message;
  EXPECT_EQ(result.exit_code, 0) << e.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllEntries, CorpusEntryTest,
    ::testing::Range(0, static_cast<int>(corpus().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      std::string name = corpus()[static_cast<std::size_t>(info.param)].name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ------------------------------------------------------------- aggregates

TEST(Corpus, HasExactly202Entries) {
  CorpusStats s = corpus_stats();
  EXPECT_EQ(s.total, 202);
  EXPECT_EQ(s.race_yes, 102);
  EXPECT_EQ(s.race_no, 100);
}

TEST(Corpus, NamesAreUniqueAndWellFormed) {
  std::set<std::string> names;
  for (const auto& e : corpus()) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate: " << e.name;
    EXPECT_EQ(e.name.substr(0, 3), "DRB");
    if (e.race) {
      EXPECT_NE(e.name.find("-yes.c"), std::string::npos) << e.name;
    } else {
      EXPECT_NE(e.name.find("-no.c"), std::string::npos) << e.name;
    }
  }
}

TEST(Corpus, IdsAreSequential) {
  int expected = 1;
  for (const auto& e : corpus()) {
    EXPECT_EQ(e.id, expected++);
  }
}

TEST(Corpus, ExactlyThreeOversizedEntries) {
  int oversized = 0;
  for (const auto& e : corpus()) {
    if (e.pattern == "oversized") ++oversized;
  }
  EXPECT_EQ(oversized, 3);
}

TEST(Corpus, FindEntryWorks) {
  const CorpusEntry& first = corpus().front();
  EXPECT_EQ(find_entry(first.name), &first);
  EXPECT_EQ(find_entry("no-such-entry"), nullptr);
}

TEST(Corpus, LabelsFollowTaxonomy) {
  for (const auto& e : corpus()) {
    ASSERT_FALSE(e.label.empty()) << e.name;
    if (e.race) {
      EXPECT_EQ(e.label[0], 'Y') << e.name;
    } else {
      EXPECT_EQ(e.label[0], 'N') << e.name;
    }
  }
}

// Detector quality floors: the hybrid tool must be clearly better than
// chance, the dynamic side must be close to FP-free, and the static side
// must show both FPs and FNs (the realistic failure modes Table 3 relies
// on). Exact confusion matrices are printed by bench_table3.
TEST(CorpusDetectors, DynamicDetectorHasHighPrecision) {
  runtime::DynamicDetectorOptions opts;
  opts.schedule_seeds = {1, 2};
  runtime::DynamicRaceDetector detector(opts);
  int fp = 0;
  int tp = 0;
  int fn = 0;
  for (const auto& e : corpus()) {
    const bool flagged = detector.analyze_source(e.body).race_detected;
    if (flagged && !e.race) ++fp;
    if (flagged && e.race) ++tp;
    if (!flagged && e.race) ++fn;
  }
  EXPECT_LE(fp, 2) << "dynamic detector should be (nearly) FP-free";
  EXPECT_GE(tp, 85) << "dynamic detector should catch most real races";
}

TEST(CorpusDetectors, StaticDetectorHasRealisticErrors) {
  analysis::StaticRaceDetector detector;
  int fp = 0;
  int fn = 0;
  int tp = 0;
  for (const auto& e : corpus()) {
    const bool flagged = detector.analyze_source(e.body).race_detected;
    if (flagged && !e.race) ++fp;
    if (!flagged && e.race) ++fn;
    if (flagged && e.race) ++tp;
  }
  EXPECT_GE(tp, 80);
  // The evidence-carrying precision layer (thread-id modeling, serial
  // regions, symbolic bounds) discharged most of the classic static FPs;
  // indirect-indexing entries still over-report.
  EXPECT_GE(fp, 1) << "conservative static analysis should over-report";
  EXPECT_GE(fn, 1) << "static analysis should miss interprocedural races";
}

}  // namespace
}  // namespace drbml::drb
