// Unit tests for the static analysis substrate: resolution, constant
// propagation, affine forms, loop analysis, access collection, and the
// static race detector on canonical DRB-style patterns.
#include <gtest/gtest.h>

#include "analysis/access.hpp"
#include "analysis/affine.hpp"
#include "analysis/consteval.hpp"
#include "analysis/race.hpp"
#include "analysis/resolve.hpp"
#include "minic/parser.hpp"

namespace drbml::analysis {
namespace {

using minic::Program;
using minic::parse_program;

RaceReport detect(const char* src, StaticDetectorOptions opts = {}) {
  StaticRaceDetector detector(opts);
  return detector.analyze_source(src);
}

// ------------------------------------------------------------- resolve

TEST(Resolve, BindsIdentifiersThroughScopes) {
  Program p = parse_program(
      "int g = 1;\n"
      "int main() { int g = 2; { int g = 3; g = g + 1; } return g; }\n");
  Resolution res = resolve(*p.unit);
  EXPECT_GE(res.all_decls.size(), 3u);
}

TEST(Resolve, TracksPointerAliases) {
  Program p = parse_program(
      "int main() { int a[10]; int* p; p = a; p[0] = 1; return 0; }\n");
  Resolution res = resolve(*p.unit);
  ASSERT_EQ(res.alias_target.size(), 1u);
  EXPECT_EQ(res.alias_target.begin()->second->name, "a");
}

TEST(Resolve, AliasThroughAddressOfElement) {
  Program p = parse_program(
      "int main() { int a[10]; int* p = &a[5]; *p = 1; return 0; }\n");
  Resolution res = resolve(*p.unit);
  ASSERT_FALSE(res.alias_target.empty());
  EXPECT_EQ(res.alias_target.begin()->second->name, "a");
}

// ------------------------------------------------------------- consteval

TEST(ConstEval, FoldsTopLevelConstants) {
  Program p = parse_program(
      "int main() { int len = 1000; int half = len / 2; return half; }\n");
  const auto* fn = p.unit->find_function("main");
  Resolution res = resolve(*p.unit);
  (void)res;
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* decl = minic::stmt_cast<minic::DeclStmt>(fn->body->body[1].get());
  EXPECT_EQ(cm.value_of(decl->decls[0].get()), 500);
}

TEST(ConstEval, PoisonsConditionalAssignments) {
  Program p = parse_program(
      "int main(int argc, char* argv[]) {\n"
      "  int n = 10;\n"
      "  if (argc > 1) n = 20;\n"
      "  return n;\n"
      "}\n");
  const auto* fn = p.unit->find_function("main");
  resolve(*p.unit);
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* decl = minic::stmt_cast<minic::DeclStmt>(fn->body->body[0].get());
  EXPECT_EQ(cm.value_of(decl->decls[0].get()), std::nullopt);
}

TEST(ConstEval, PoisonsLoopModifiedVariables) {
  Program p = parse_program(
      "int main() { int s = 0; for (int i = 0; i < 3; i++) s = s + i; "
      "return s; }\n");
  const auto* fn = p.unit->find_function("main");
  resolve(*p.unit);
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* decl = minic::stmt_cast<minic::DeclStmt>(fn->body->body[0].get());
  EXPECT_EQ(cm.value_of(decl->decls[0].get()), std::nullopt);
}

// ------------------------------------------------------------- affine

TEST(Affine, LinearizesSubscripts) {
  Program p = parse_program(
      "int main() { int len = 100; int a[100]; int i = 0; int x = 2*i + len "
      "- 1; return x; }\n");
  const auto* fn = p.unit->find_function("main");
  resolve(*p.unit);
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* decl = minic::stmt_cast<minic::DeclStmt>(fn->body->body[3].get());
  LinearForm f = linearize(*decl->decls[0]->init, cm);
  EXPECT_TRUE(f.is_affine);
  // i is constant 0 here, so everything folds: 2*0 + 100 - 1.
  EXPECT_TRUE(f.is_constant());
  EXPECT_EQ(f.constant, 99);
}

TEST(Affine, NonAffineOnIndirection) {
  Program p = parse_program(
      "int main() { int idx[10]; int i = 0; int x = idx[i]; return x; }\n");
  const auto* fn = p.unit->find_function("main");
  resolve(*p.unit);
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* decl = minic::stmt_cast<minic::DeclStmt>(fn->body->body[2].get());
  LinearForm f = linearize(*decl->decls[0]->init, cm);
  EXPECT_FALSE(f.is_affine);
}

// ------------------------------------------------------------- loop shapes

TEST(LoopAnalysis, RecognizesCanonicalLoops) {
  Program p = parse_program(
      "int main() { int n = 50;\n"
      "  for (int i = 2; i < n; i += 3) { }\n"
      "  return 0; }\n");
  const auto* fn = p.unit->find_function("main");
  resolve(*p.unit);
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* loop = minic::stmt_cast<minic::ForStmt>(fn->body->body[1].get());
  auto info = analyze_loop(*loop, cm);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->lower, 2);
  EXPECT_EQ(info->upper, 49);
  EXPECT_EQ(info->step, 3);
}

TEST(LoopAnalysis, DescendingLoop) {
  Program p = parse_program(
      "int main() { for (int i = 9; i >= 0; i--) { } return 0; }\n");
  const auto* fn = p.unit->find_function("main");
  resolve(*p.unit);
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* loop = minic::stmt_cast<minic::ForStmt>(fn->body->body[0].get());
  auto info = analyze_loop(*loop, cm);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->lower, 0);
  EXPECT_EQ(info->upper, 9);
  EXPECT_EQ(info->step, -1);
}

// ------------------------------------------------------------- detector: races

TEST(StaticRace, AntiDependenceLoopRaces) {
  // DRB001-antidep1 pattern.
  auto report = detect(
      "int main() {\n"
      "  int len = 1000;\n"
      "  int a[1000];\n"
      "  for (int i = 0; i < len; i++) a[i] = i;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < len - 1; i++) a[i] = a[i+1] + 1;\n"
      "  return 0;\n"
      "}\n");
  ASSERT_TRUE(report.race_detected);
  ASSERT_FALSE(report.pairs.empty());
  const RacePair& pair = report.pairs[0];
  EXPECT_EQ(pair.first.op, 'w');
  EXPECT_EQ(pair.first.var_name, "a");
}

TEST(StaticRace, TrueDependenceRaces) {
  auto report = detect(
      "int main() {\n"
      "  int a[100];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 99; i++) a[i+1] = a[i] + 1;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, DisjointWritesDoNotRace) {
  auto report = detect(
      "int main() {\n"
      "  int a[100];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 100; i++) a[i] = i;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, SharedScalarAccumulationRaces) {
  auto report = detect(
      "int main() {\n"
      "  int sum = 0;\n"
      "  int a[100];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 100; i++) sum = sum + a[i];\n"
      "  return sum;\n"
      "}\n");
  ASSERT_TRUE(report.race_detected);
  EXPECT_EQ(report.pairs[0].first.var_name, "sum");
}

TEST(StaticRace, ReductionClauseSuppressesRace) {
  auto report = detect(
      "int main() {\n"
      "  int sum = 0;\n"
      "  int a[100];\n"
      "#pragma omp parallel for reduction(+:sum)\n"
      "  for (int i = 0; i < 100; i++) sum = sum + a[i];\n"
      "  return sum;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, CriticalProtectsScalar) {
  auto report = detect(
      "int main() {\n"
      "  int count = 0;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 100; i++) {\n"
      "#pragma omp critical\n"
      "    { count = count + 1; }\n"
      "  }\n"
      "  return count;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, DifferentCriticalNamesStillRace) {
  auto report = detect(
      "int main() {\n"
      "  int count = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp critical (one)\n"
      "    { count = count + 1; }\n"
      "#pragma omp critical (two)\n"
      "    { count = count + 2; }\n"
      "  }\n"
      "  return count;\n"
      "}\n");
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, AtomicProtectsUpdate) {
  auto report = detect(
      "int main() {\n"
      "  int count = 0;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 100; i++) {\n"
      "#pragma omp atomic\n"
      "    count += 1;\n"
      "  }\n"
      "  return count;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, AtomicPlusPlainAccessRaces) {
  auto report = detect(
      "int main() {\n"
      "  int count = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp atomic\n"
      "    count += 1;\n"
      "    int x = count;\n"
      "    x = x + 1;\n"
      "  }\n"
      "  return count;\n"
      "}\n");
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, PrivateClauseSuppressesRace) {
  auto report = detect(
      "int main() {\n"
      "  int tmp;\n"
      "  int a[100];\n"
      "#pragma omp parallel for private(tmp)\n"
      "  for (int i = 0; i < 100; i++) { tmp = i; a[i] = tmp; }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, MissingPrivateOnTempRaces) {
  auto report = detect(
      "int main() {\n"
      "  int tmp;\n"
      "  int a[100];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 100; i++) { tmp = a[i]; a[i] = tmp + 1; }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_TRUE(report.race_detected);
  EXPECT_EQ(report.pairs[0].first.var_name, "tmp");
}

TEST(StaticRace, InnerSequentialLoopSharedInductionRaces) {
  // DRB013-style: inner loop induction variable not privatized.
  auto report = detect(
      "int main() {\n"
      "  int j;\n"
      "  double a[20][20];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 20; i++)\n"
      "    for (j = 0; j < 20; j++)\n"
      "      a[i][j] = 1.0;\n"
      "  return 0;\n"
      "}\n");
  ASSERT_TRUE(report.race_detected);
  EXPECT_EQ(report.pairs[0].first.var_name, "j");
}

TEST(StaticRace, MultiDimDistinctElementsNoRace) {
  auto report = detect(
      "int main() {\n"
      "  double a[20][20];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 20; i++)\n"
      "    for (int j = 0; j < 20; j++)\n"
      "      a[i][j] = 1.0;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, ColumnWriteByRowLoopRaces) {
  // a[j][i] with i distributed: different i write different columns -- no
  // race; a[j][i] with j distributed over rows of the SAME column races
  // when the subscript swaps.
  auto report = detect(
      "int main() {\n"
      "  double a[20][20];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 20; i++)\n"
      "    for (int j = 0; j < 19; j++)\n"
      "      a[i][j] = a[i][j+1];\n"
      "  return 0;\n"
      "}\n");
  // Row-private: the j-dependence stays within one thread's row.
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, CrossRowDependenceRaces) {
  auto report = detect(
      "int main() {\n"
      "  double a[20][20];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 19; i++)\n"
      "    for (int j = 0; j < 20; j++)\n"
      "      a[i][j] = a[i+1][j];\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, BarrierSeparatesPhases) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp single\n"
      "    { x = 1; }\n"
      "    int y = x;\n"
      "    y = y + 1;\n"
      "  }\n"
      "  return x;\n"
      "}\n");
  // single has an implicit barrier, so the write happens-before the reads.
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, SingleNowaitRaces) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp single nowait\n"
      "    { x = 1; }\n"
      "    int y = x;\n"
      "    y = y + 1;\n"
      "  }\n"
      "  return x;\n"
      "}\n");
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, MasterHasNoBarrierRaces) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp master\n"
      "    { x = 1; }\n"
      "    int y = x;\n"
      "    y = y + 1;\n"
      "  }\n"
      "  return x;\n"
      "}\n");
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, TwoNowaitLoopsRace) {
  auto report = detect(
      "int main() {\n"
      "  int a[100];\n"
      "  int b[100];\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp for nowait\n"
      "    for (int i = 0; i < 100; i++) a[i] = i;\n"
      "#pragma omp for\n"
      "    for (int i = 0; i < 100; i++) b[i] = a[i];\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, BarrierBetweenLoopsNoRace) {
  auto report = detect(
      "int main() {\n"
      "  int a[100];\n"
      "  int b[100];\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp for\n"
      "    for (int i = 0; i < 100; i++) a[i] = i;\n"
      "#pragma omp for\n"
      "    for (int i = 0; i < 100; i++) b[i] = a[i];\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, SectionsWriteSameScalarRace) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel sections\n"
      "  {\n"
      "#pragma omp section\n"
      "    { x = 1; }\n"
      "#pragma omp section\n"
      "    { x = 2; }\n"
      "  }\n"
      "  return x;\n"
      "}\n");
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, SectionsDisjointNoRace) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "  int y = 0;\n"
      "#pragma omp parallel sections\n"
      "  {\n"
      "#pragma omp section\n"
      "    { x = 1; }\n"
      "#pragma omp section\n"
      "    { y = 2; }\n"
      "  }\n"
      "  return x + y;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, FirstprivateNoRace) {
  auto report = detect(
      "int main() {\n"
      "  int offset = 5;\n"
      "  int a[100];\n"
      "#pragma omp parallel for firstprivate(offset)\n"
      "  for (int i = 0; i < 100; i++) a[i] = offset;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, LastprivateNoRace) {
  auto report = detect(
      "int main() {\n"
      "  int x0;\n"
      "  int a[100];\n"
      "#pragma omp parallel for lastprivate(x0)\n"
      "  for (int i = 0; i < 100; i++) x0 = a[i];\n"
      "  return x0;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, PointerAliasRaceDetected) {
  auto report = detect(
      "int main() {\n"
      "  int a[100];\n"
      "  int* p;\n"
      "  p = a;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 99; i++) p[i] = a[i+1];\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, OmpLockProtectsWhenModeled) {
  const char* src =
      "int main() {\n"
      "  int count = 0;\n"
      "  omp_lock_t lck;\n"
      "  omp_init_lock(&lck);\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 100; i++) {\n"
      "    omp_set_lock(&lck);\n"
      "    count = count + 1;\n"
      "    omp_unset_lock(&lck);\n"
      "  }\n"
      "  return count;\n"
      "}\n";
  EXPECT_FALSE(detect(src).race_detected);
  StaticDetectorOptions no_locks;
  no_locks.model_locks = false;
  EXPECT_TRUE(detect(src, no_locks).race_detected);
}

TEST(StaticRace, OrderedSerializes) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel for ordered\n"
      "  for (int i = 0; i < 100; i++) {\n"
      "#pragma omp ordered\n"
      "    { x = x + i; }\n"
      "  }\n"
      "  return x;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, IndirectIndexConservativeByDefault) {
  const char* src =
      "int main() {\n"
      "  int idx[100];\n"
      "  int a[100];\n"
      "  for (int i = 0; i < 100; i++) idx[i] = i;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 100; i++) a[idx[i]] = i;\n"
      "  return 0;\n"
      "}\n";
  EXPECT_TRUE(detect(src).race_detected);  // conservative default
  StaticDetectorOptions optimistic;
  optimistic.depend.conservative_nonaffine = false;
  EXPECT_FALSE(detect(src, optimistic).race_detected);
}

TEST(StaticRace, SimdLoopCarriedDependenceRaces) {
  auto report = detect(
      "int main() {\n"
      "  int a[100];\n"
      "#pragma omp simd\n"
      "  for (int i = 0; i < 99; i++) a[i] = a[i+1] + 1;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, SafelenRespectsDistance) {
  // Dependence distance 16 >= safelen 8: safe.
  auto report = detect(
      "int main() {\n"
      "  int a[100];\n"
      "#pragma omp simd safelen(8)\n"
      "  for (int i = 0; i < 84; i++) a[i+16] = a[i] + 1;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
  // Distance 4 < safelen 8: race.
  auto bad = detect(
      "int main() {\n"
      "  int a[100];\n"
      "#pragma omp simd safelen(8)\n"
      "  for (int i = 0; i < 96; i++) a[i+4] = a[i] + 1;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(bad.race_detected);
}

TEST(StaticRace, TaskMissingSyncRaces) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "#pragma omp single\n"
      "  {\n"
      "#pragma omp task\n"
      "    { x = 1; }\n"
      "#pragma omp task\n"
      "    { x = 2; }\n"
      "  }\n"
      "  return x;\n"
      "}\n");
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, TaskDependOrdersWhenModeled) {
  const char* src =
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "#pragma omp single\n"
      "  {\n"
      "#pragma omp task depend(out: x)\n"
      "    { x = 1; }\n"
      "#pragma omp task depend(in: x)\n"
      "    { int y = x; y = y + 1; }\n"
      "  }\n"
      "  return x;\n"
      "}\n";
  EXPECT_FALSE(detect(src).race_detected);
  StaticDetectorOptions ignore_depend;
  ignore_depend.model_depend_clauses = false;
  EXPECT_TRUE(detect(src, ignore_depend).race_detected);
}

TEST(StaticRace, TaskwaitSeparates) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "#pragma omp single\n"
      "  {\n"
      "#pragma omp task\n"
      "    { x = 1; }\n"
      "#pragma omp taskwait\n"
      "#pragma omp task\n"
      "    { x = 2; }\n"
      "  }\n"
      "  return x;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, CollapseDistributesBothLoops) {
  auto report = detect(
      "int main() {\n"
      "  double a[20][20];\n"
      "#pragma omp parallel for collapse(2)\n"
      "  for (int i = 0; i < 20; i++)\n"
      "    for (int j = 0; j < 19; j++)\n"
      "      a[i][j] = a[i][j+1];\n"
      "  return 0;\n"
      "}\n");
  // With collapse(2), the j-dependence crosses thread boundaries.
  EXPECT_TRUE(report.race_detected);
}

TEST(StaticRace, StrideDisjointNoRace) {
  auto report = detect(
      "int main() {\n"
      "  int a[200];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 100; i++) { a[2*i] = i; a[2*i+1] = i; }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, OffsetBeyondRangeNoRace) {
  auto report = detect(
      "int main() {\n"
      "  int a[200];\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp for nowait\n"
      "    for (int i = 0; i < 100; i++) a[i] = i;\n"
      "#pragma omp for\n"
      "    for (int i = 0; i < 100; i++) a[i + 100] = i;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(report.race_detected);
}

TEST(StaticRace, ReportPairHasTrimmedCoordinates) {
  auto report = detect(
      "/* header comment line 1\n"
      "   header comment line 2 */\n"
      "int main() {\n"
      "  int a[100];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 99; i++)\n"
      "    a[i] = a[i+1] + 1;\n"
      "  return 0;\n"
      "}\n");
  ASSERT_TRUE(report.race_detected);
  const RacePair& pair = report.pairs[0];
  // Trimmed code: line 5 holds the assignment (comments dropped).
  EXPECT_EQ(pair.first.loc.line, 5);
  EXPECT_EQ(pair.second.loc.line, 5);
  EXPECT_EQ(pair.first.expr_text, "a[i]");
  EXPECT_EQ(pair.second.expr_text, "a[i+1]");
  EXPECT_EQ(pair.first.op, 'w');
  EXPECT_EQ(pair.second.op, 'r');
}

// ------------------------------------------------------------ race report

TEST(RaceReportTest, AddPairCollapsesExactAndSymmetricDuplicates) {
  RacePair p;
  p.first = {"x", "x", {3, 5}, 'w'};
  p.second = {"x", "x", {4, 7}, 'r'};
  RacePair sym;
  sym.first = p.second;
  sym.second = p.first;

  RaceReport report;
  EXPECT_FALSE(report.contains(p));
  report.add_pair(p);
  report.add_pair(p);    // exact duplicate
  report.add_pair(sym);  // symmetric twin
  EXPECT_TRUE(report.race_detected);
  EXPECT_EQ(report.pairs.size(), 1u);
  EXPECT_TRUE(report.contains(p));
  EXPECT_TRUE(report.contains(sym));

  RacePair other = p;
  other.second.loc.line = 9;
  report.add_pair(other);
  EXPECT_EQ(report.pairs.size(), 2u);
}

TEST(StaticRace, PairCapReportsSuppressedCountInsteadOfSilence) {
  StaticDetectorOptions opts;
  opts.max_pairs = 1;
  auto report = detect(
      "int main() {\n"
      "  int i;\n"
      "  int total = 0;\n"
      "#pragma omp parallel for\n"
      "  for (i = 0; i < 100; i++)\n"
      "    total = total + i;\n"
      "  return 0;\n"
      "}\n",
      opts);
  ASSERT_TRUE(report.race_detected);
  EXPECT_EQ(report.pairs.size(), 1u);
  EXPECT_GT(report.suppressed_pairs, 0);
  bool noted = false;
  for (const auto& d : report.diagnostics) {
    noted = noted ||
            d.find("additional pair(s) suppressed") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

}  // namespace
}  // namespace drbml::analysis
