// Fine-grained unit tests for runtime primitives: values, vector clocks,
// memory/shadow state -- and for the analysis access collector's
// annotations (sharing classes, phases, locksets) inspected directly.
#include <gtest/gtest.h>

#include <cstdint>

#include "analysis/access.hpp"
#include "analysis/resolve.hpp"
#include "minic/parser.hpp"
#include "runtime/memory.hpp"
#include "runtime/value.hpp"
#include "runtime/vc.hpp"
#include "support/error.hpp"

namespace drbml {
namespace {

// ------------------------------------------------------------- Value

TEST(Value, CoercionsFollowC) {
  using runtime::Value;
  EXPECT_EQ(Value::of_double(3.9).as_int(), 3);
  EXPECT_DOUBLE_EQ(Value::of_int(7).as_double(), 7.0);
  EXPECT_TRUE(Value::of_int(1).truthy());
  EXPECT_FALSE(Value::of_int(0).truthy());
  EXPECT_FALSE(Value::of_double(0.0).truthy());
  EXPECT_FALSE(Value::of_ptr({}).truthy());
  EXPECT_TRUE(Value::of_ptr({3, 0}).truthy());
}

TEST(Value, ToStringForms) {
  using runtime::Value;
  EXPECT_EQ(Value::of_int(5).to_string(), "5");
  EXPECT_EQ(Value::of_ptr({}).to_string(), "nullptr");
  EXPECT_EQ(Value::of_ptr({2, 7}).to_string(), "&obj2[7]");
}

// ------------------------------------------------------------- VectorClock

TEST(VectorClock, JoinIsPointwiseMax) {
  runtime::VectorClock a;
  runtime::VectorClock b;
  a.set(0, 3);
  a.set(2, 1);
  b.set(0, 1);
  b.set(1, 5);
  a.join(b);
  EXPECT_EQ(a.get(0), 3u);
  EXPECT_EQ(a.get(1), 5u);
  EXPECT_EQ(a.get(2), 1u);
  EXPECT_EQ(a.get(9), 0u);  // missing entries read as zero
}

TEST(VectorClock, LeqIsHappensBefore) {
  runtime::VectorClock a;
  runtime::VectorClock b;
  a.set(0, 1);
  b.set(0, 2);
  b.set(1, 1);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  // Concurrent clocks: neither leq the other.
  runtime::VectorClock c;
  c.set(1, 3);
  EXPECT_FALSE(b.leq(c));
  EXPECT_FALSE(c.leq(b));
}

TEST(VectorClock, TickAdvancesOwnComponent) {
  runtime::VectorClock a;
  a.tick(4);
  a.tick(4);
  EXPECT_EQ(a.get(4), 2u);
  EXPECT_EQ(a.get(0), 0u);
}

TEST(Epoch, BeforeChecksSingleComponent) {
  runtime::Epoch e{2, 5};
  runtime::VectorClock c;
  c.set(2, 5);
  EXPECT_TRUE(e.before(c));
  c.set(2, 4);
  EXPECT_FALSE(runtime::Epoch({2, 5}).before(c));
  EXPECT_TRUE(runtime::Epoch{}.before(c));  // invalid epoch precedes all
}

// ----------------------------------------------------- AdaptiveReadClock

TEST(AdaptiveReadClock, StaysEpochForSingleReader) {
  runtime::AdaptiveReadClock rc;
  EXPECT_FALSE(rc.shared());
  rc.record(3, 5);
  rc.record(3, 9);  // same thread: epoch overwritten, no promotion
  EXPECT_FALSE(rc.shared());
  EXPECT_EQ(rc.epoch().tid, 3);
  EXPECT_EQ(rc.epoch().clock, 9u);
  EXPECT_EQ(rc.get(3), 9u);
  EXPECT_EQ(rc.get(0), 0u);
}

TEST(AdaptiveReadClock, PromotesOnSecondDistinctReader) {
  runtime::AdaptiveReadClock rc;
  rc.record(1, 4);
  rc.record(2, 6);
  EXPECT_TRUE(rc.shared());
  // Promotion preserved the first reader's component exactly.
  EXPECT_EQ(rc.get(1), 4u);
  EXPECT_EQ(rc.get(2), 6u);
}

TEST(AdaptiveReadClock, LeqMatchesEpochSemantics) {
  runtime::AdaptiveReadClock rc;
  EXPECT_TRUE(rc.leq(runtime::VectorClock{}));  // empty reads precede all
  rc.record(2, 5);
  runtime::VectorClock c;
  c.set(2, 5);
  EXPECT_TRUE(rc.leq(c));
  c.set(2, 4);
  runtime::AdaptiveReadClock rc2;
  rc2.record(2, 5);
  EXPECT_FALSE(rc2.leq(c));
}

TEST(AdaptiveReadClock, ClearResetsToEpochMode) {
  runtime::AdaptiveReadClock rc;
  rc.record(0, 1);
  rc.record(1, 1);
  ASSERT_TRUE(rc.shared());
  rc.clear();
  EXPECT_FALSE(rc.shared());
  EXPECT_FALSE(rc.epoch().valid());
  EXPECT_TRUE(rc.leq(runtime::VectorClock{}));
}

// Randomized oracle: an AdaptiveReadClock fed an arbitrary interleaving
// of (tid, clock) reads must answer every leq() query exactly like the
// full VectorClock that recorded the same reads. Clocks per thread are
// nondecreasing, as in a real execution (a thread's own clock only
// advances). This is the promotion-never-changes-the-HB-answer proof,
// executed.
TEST(AdaptiveReadClock, AgreesWithVectorClockOracle) {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  for (int trial = 0; trial < 200; ++trial) {
    runtime::AdaptiveReadClock adaptive;
    runtime::VectorClock oracle;
    std::uint32_t clocks[4] = {1, 1, 1, 1};

    const int reads = static_cast<int>(next() % 6);  // 0..5: hits both modes
    for (int r = 0; r < reads; ++r) {
      const int tid = static_cast<int>(next() % 4);
      clocks[tid] += static_cast<std::uint32_t>(next() % 3);
      adaptive.record(tid, clocks[tid]);
      // The oracle keeps the last read per thread, like the promoted VC.
      oracle.set(tid, clocks[tid]);
    }

    for (int q = 0; q < 8; ++q) {
      runtime::VectorClock query;
      for (int t = 0; t < 4; ++t) {
        query.set(t, static_cast<std::uint32_t>(next() % 8));
      }
      EXPECT_EQ(adaptive.leq(query), oracle.leq(query))
          << "trial " << trial << " query " << q
          << (adaptive.shared() ? " (promoted)" : " (epoch mode)");
    }
  }
}

// ------------------------------------------------------------- Memory

TEST(Memory, AllocateLoadStore) {
  runtime::Memory mem;
  const int id = mem.allocate("a", nullptr, {4}, 4,
                              runtime::Value::of_int(9), false);
  EXPECT_EQ(mem.load({id, 3}).as_int(), 9);
  mem.store({id, 2}, runtime::Value::of_int(42));
  EXPECT_EQ(mem.load({id, 2}).as_int(), 42);
  EXPECT_EQ(mem.object(id).size(), 4);
}

TEST(Memory, BoundsChecked) {
  runtime::Memory mem;
  const int id = mem.allocate("a", nullptr, {}, 2,
                              runtime::Value::of_int(0), false);
  EXPECT_THROW(mem.load({id, 2}), RuntimeFault);
  EXPECT_THROW(mem.load({id, -1}), RuntimeFault);
  EXPECT_THROW(mem.object(99), RuntimeFault);
}

TEST(Memory, FreedObjectsFault) {
  runtime::Memory mem;
  const int id = mem.allocate("h", nullptr, {}, 2,
                              runtime::Value::of_int(0), false);
  mem.object(id).freed = true;
  EXPECT_THROW(mem.load({id, 0}), RuntimeFault);
}

TEST(Memory, OversizeAllocationRejected) {
  runtime::Memory mem;
  EXPECT_THROW(mem.allocate("big", nullptr, {}, (1 << 25),
                            runtime::Value::of_int(0), false),
               RuntimeFault);
  EXPECT_THROW(mem.allocate("neg", nullptr, {}, -1,
                            runtime::Value::of_int(0), false),
               RuntimeFault);
}

// ------------------------------------------------------------- Collector

/// Parses source, resolves, and collects the (single expected) region.
analysis::ParallelRegion collect_one(const char* src) {
  static std::vector<std::unique_ptr<minic::Program>> keep_alive;
  keep_alive.push_back(
      std::make_unique<minic::Program>(minic::parse_program(src)));
  minic::Program& p = *keep_alive.back();
  static std::vector<std::unique_ptr<analysis::Resolution>> res_alive;
  res_alive.push_back(std::make_unique<analysis::Resolution>(
      analysis::resolve(*p.unit)));
  auto regions = analysis::collect_regions(*p.unit, *res_alive.back());
  EXPECT_EQ(regions.size(), 1u);
  return std::move(regions.front());
}

const analysis::AccessInfo* find_access(const analysis::ParallelRegion& r,
                                        const std::string& text,
                                        bool is_write) {
  for (const auto& a : r.accesses) {
    if (a.text == text && a.is_write == is_write) return &a;
  }
  return nullptr;
}

TEST(Collector, SharingClasses) {
  auto region = collect_one(
      "int g;\n"
      "int main() {\n"
      "  int sum = 0;\n"
      "  int priv = 0;\n"
      "  int a[10];\n"
      "#pragma omp parallel for private(priv) reduction(+:sum)\n"
      "  for (int i = 0; i < 10; i++) {\n"
      "    int local = i;\n"
      "    priv = local;\n"
      "    sum = sum + a[i] + g;\n"
      "  }\n"
      "  return sum;\n"
      "}\n");
  const auto* priv = find_access(region, "priv", true);
  ASSERT_NE(priv, nullptr);
  EXPECT_EQ(priv->sharing, analysis::Sharing::Private);
  const auto* sum = find_access(region, "sum", true);
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(sum->sharing, analysis::Sharing::Reduction);
  // Declarations are not write accesses; the read in `priv = local` shows
  // the region-declared variable classifying as private.
  const auto* local = find_access(region, "local", false);
  ASSERT_NE(local, nullptr);
  EXPECT_EQ(local->sharing, analysis::Sharing::Private);
  const auto* g = find_access(region, "g", false);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->sharing, analysis::Sharing::Shared);
  const auto* arr = find_access(region, "a[i]", false);
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->sharing, analysis::Sharing::Shared);
  ASSERT_EQ(arr->dist_loops.size(), 1u);
  EXPECT_EQ(arr->dist_loops[0].lower, 0);
  EXPECT_EQ(arr->dist_loops[0].upper, 9);
}

TEST(Collector, BarrierPhases) {
  auto region = collect_one(
      "int main() {\n"
      "  int x = 0;\n"
      "  int y = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "    x = 1;\n"
      "#pragma omp barrier\n"
      "    y = 2;\n"
      "  }\n"
      "  return x + y;\n"
      "}\n");
  const auto* x = find_access(region, "x", true);
  const auto* y = find_access(region, "y", true);
  ASSERT_NE(x, nullptr);
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(x->ctx.phase, 0);
  EXPECT_EQ(y->ctx.phase, 1);
}

TEST(Collector, LocksetsTracked) {
  auto region = collect_one(
      "int main() {\n"
      "  omp_lock_t l;\n"
      "  int c = 0;\n"
      "  int d = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "    omp_set_lock(&l);\n"
      "    c = c + 1;\n"
      "    omp_unset_lock(&l);\n"
      "    d = d + 1;\n"
      "  }\n"
      "  return c + d;\n"
      "}\n");
  const auto* c = find_access(region, "c", true);
  const auto* d = find_access(region, "d", true);
  ASSERT_NE(c, nullptr);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(c->ctx.locks.size(), 1u);
  EXPECT_TRUE(d->ctx.locks.empty());
}

TEST(Collector, CriticalAndAtomicContexts) {
  auto region = collect_one(
      "int main() {\n"
      "  int c = 0;\n"
      "  int at = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp critical (tag)\n"
      "    { c = c + 1; }\n"
      "#pragma omp atomic\n"
      "    at += 1;\n"
      "  }\n"
      "  return c + at;\n"
      "}\n");
  const auto* c = find_access(region, "c", true);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->ctx.in_critical);
  EXPECT_EQ(c->ctx.critical_name, "tag");
  const auto* at = find_access(region, "at", true);
  ASSERT_NE(at, nullptr);
  EXPECT_TRUE(at->ctx.atomic);
}

TEST(Collector, SingleAndMasterIdentity) {
  auto region = collect_one(
      "int main() {\n"
      "  int s = 0;\n"
      "  int m = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp single nowait\n"
      "    { s = 1; }\n"
      "#pragma omp master\n"
      "    { m = 1; }\n"
      "  }\n"
      "  return s + m;\n"
      "}\n");
  const auto* s = find_access(region, "s", true);
  const auto* m = find_access(region, "m", true);
  ASSERT_NE(s, nullptr);
  ASSERT_NE(m, nullptr);
  EXPECT_GE(s->ctx.exec_once_id, 0);
  EXPECT_EQ(m->ctx.exec_once_id, -2);  // master blocks share identity
  EXPECT_NE(s->ctx.exec_once_id, m->ctx.exec_once_id);
}

TEST(Collector, TaskContexts) {
  auto region = collect_one(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "#pragma omp single\n"
      "  {\n"
      "#pragma omp task depend(out: x)\n"
      "    { x = 1; }\n"
      "#pragma omp taskwait\n"
      "#pragma omp task\n"
      "    { x = 2; }\n"
      "  }\n"
      "  return x;\n"
      "}\n");
  std::vector<const analysis::AccessInfo*> writes;
  for (const auto& a : region.accesses) {
    if (a.var != nullptr && a.var->name == "x" && a.is_write) {
      writes.push_back(&a);
    }
  }
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_NE(writes[0]->ctx.task_id, writes[1]->ctx.task_id);
  EXPECT_NE(writes[0]->ctx.task_phase, writes[1]->ctx.task_phase);
  ASSERT_EQ(writes[0]->ctx.depends.size(), 1u);
  EXPECT_EQ(writes[0]->ctx.depends[0].first, "out");
  EXPECT_EQ(writes[0]->ctx.depends[0].second, "x");
}

}  // namespace
}  // namespace drbml
