// Interpreter builtin and language-feature coverage beyond the core
// runtime tests: libc math, stdio formats, process control, OpenMP
// runtime queries, threadprivate storage, and pointer-heavy idioms.
#include <gtest/gtest.h>

#include "minic/parser.hpp"
#include "runtime/interp.hpp"

namespace drbml::runtime {
namespace {

RunResult run_src(const char* src, RunOptions opts = {}) {
  minic::Program p = minic::parse_program(src);
  analysis::Resolution res = analysis::resolve(*p.unit);
  return run_program(*p.unit, res, opts);
}

TEST(Builtins, MathFunctions) {
  auto r = run_src(
      "int main() { printf(\"%0.2f %0.2f %0.2f %0.2f\", sqrt(16.0), "
      "fabs(-2.5), pow(2.0, 10.0), fmax(1.5, fmin(9.0, 3.5))); return 0; }");
  EXPECT_EQ(r.output, "4.00 2.50 1024.00 3.50");
}

TEST(Builtins, AbsAndModuloChain) {
  auto r = run_src(
      "int main() { printf(\"%d %d\", abs(-7), (13 % 5) * abs(3 - 8)); "
      "return 0; }");
  EXPECT_EQ(r.output, "7 15");
}

TEST(Builtins, PrintfFormats) {
  auto r = run_src(
      "int main() { printf(\"%5d|%-4d|%03d|%x|%c|%s\", 42, 7, 5, 255, 65, "
      "\"ok\"); return 0; }");
  EXPECT_EQ(r.output, "   42|7   |005|ff|A|ok");
}

TEST(Builtins, PutsAndPutchar) {
  auto r = run_src(
      "int main() { puts(\"line\"); putchar('x'); putchar('\\n'); return 0; "
      "}");
  EXPECT_EQ(r.output, "line\nx\n");
}

TEST(Builtins, ExitTerminatesProgram) {
  auto r = run_src(
      "int main() { printf(\"before\"); exit(3); printf(\"after\"); return "
      "0; }");
  EXPECT_EQ(r.output, "before");
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_FALSE(r.faulted);
}

TEST(Builtins, AbortFaults) {
  auto r = run_src("int main() { abort(); return 0; }");
  EXPECT_TRUE(r.faulted);
}

TEST(Builtins, AssertPassAndFail) {
  EXPECT_FALSE(run_src("int main() { assert(1 + 1 == 2); return 0; }").faulted);
  EXPECT_TRUE(run_src("int main() { assert(1 == 2); return 0; }").faulted);
}

TEST(Builtins, RandIsDeterministicAndSeedable) {
  const char* src =
      "int main() { srand(7); printf(\"%d %d\", rand() % 100, rand() % "
      "100); return 0; }";
  auto a = run_src(src);
  auto b = run_src(src);
  EXPECT_EQ(a.output, b.output);
}

TEST(Builtins, AtoiAtof) {
  auto r = run_src(
      "int main() { printf(\"%d %0.1f\", atoi(\"123\"), atof(\"2.5\")); "
      "return 0; }");
  EXPECT_EQ(r.output, "123 2.5");
}

TEST(Builtins, OmpRuntimeQueriesOutsideRegion) {
  auto r = run_src(
      "int main() { printf(\"%d %d %d\", omp_get_thread_num(), "
      "omp_get_num_threads(), omp_in_parallel()); return 0; }");
  EXPECT_EQ(r.output, "0 1 0");
}

TEST(Builtins, OmpWtimeMonotonic) {
  auto r = run_src(
      "int main() {\n"
      "  double t0 = omp_get_wtime();\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 100; i++) s += i;\n"
      "  double t1 = omp_get_wtime();\n"
      "  printf(\"%d %d\", s, t1 >= t0 ? 1 : 0);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "4950 1");
}

TEST(Builtins, OmpSetNumThreadsAffectsNextRegion) {
  auto r = run_src(
      "int main() {\n"
      "  int n = 0;\n"
      "  omp_set_num_threads(2);\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp single\n"
      "    { n = omp_get_num_threads(); }\n"
      "  }\n"
      "  printf(\"%d\", n);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "2");
}

TEST(Builtins, TestLockAcquiresWhenFree) {
  auto r = run_src(
      "int main() {\n"
      "  omp_lock_t l;\n"
      "  omp_init_lock(&l);\n"
      "  int got = omp_test_lock(&l);\n"
      "  omp_unset_lock(&l);\n"
      "  printf(\"%d\", got);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "1");
}

TEST(Language, ThreadprivatePersistsPerThread) {
  auto r = run_src(
      "int counter = 0;\n"
      "#pragma omp threadprivate(counter)\n"
      "int main() {\n"
      "  int sum = 0;\n"
      "#pragma omp parallel num_threads(4) reduction(+:sum)\n"
      "  {\n"
      "    counter = counter + 1;\n"
      "    counter = counter + 1;\n"
      "    sum = sum + counter;\n"
      "  }\n"
      "  printf(\"%d\", sum);\n"
      "  return 0;\n"
      "}");
  EXPECT_FALSE(r.faulted) << r.fault_message;
  EXPECT_EQ(r.output, "8");  // 4 threads x private counter reaching 2
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Language, PointerParameterWritesPropagate) {
  auto r = run_src(
      "void twice(int* x) { x[0] = x[0] * 2; }\n"
      "int main() { int v = 21; twice(&v); printf(\"%d\", v); return 0; }");
  EXPECT_EQ(r.output, "42");
}

TEST(Language, GlobalArrayInitializerList) {
  auto r = run_src(
      "double w[3] = {0.5, 1.5, 2.5};\n"
      "int main() { printf(\"%0.1f\", w[0] + w[1] + w[2]); return 0; }");
  EXPECT_EQ(r.output, "4.5");
}

TEST(Language, NestedInitializerList) {
  auto r = run_src(
      "int m[2][2] = {{1, 2}, {3, 4}};\n"
      "int main() { printf(\"%d\", m[0][0] + m[0][1] + m[1][0] + m[1][1]); "
      "return 0; }");
  EXPECT_EQ(r.output, "10");
}

TEST(Language, CharLiteralsAndStrings) {
  auto r = run_src(
      "int main() { char c = 'Z'; printf(\"%c%d\", c, c - 'A'); return 0; }");
  EXPECT_EQ(r.output, "Z25");
}

TEST(Language, CastTruncation) {
  auto r = run_src(
      "int main() { double d = 3.9; int x = (int)d; printf(\"%d\", x); "
      "return 0; }");
  EXPECT_EQ(r.output, "3");
}

TEST(Language, CommaOperatorInForLoop) {
  auto r = run_src(
      "int main() {\n"
      "  int i;\n"
      "  int j = 10;\n"
      "  int s = 0;\n"
      "  for (i = 0; i < 5; i++, j--) s += i * j;\n"
      "  printf(\"%d\", s);\n"
      "  return 0;\n"
      "}");
  // i*j for (0,10),(1,9),(2,8),(3,7),(4,6) -> 0+9+16+21+24 = 70.
  EXPECT_EQ(r.output, "70");
}

TEST(Language, NestedParallelSerializes) {
  auto r = run_src(
      "int main() {\n"
      "  int inner = -1;\n"
      "#pragma omp parallel num_threads(2)\n"
      "  {\n"
      "#pragma omp single\n"
      "    {\n"
      "#pragma omp parallel\n"
      "      {\n"
      "#pragma omp single\n"
      "        { inner = omp_get_num_threads(); }\n"
      "      }\n"
      "    }\n"
      "  }\n"
      "  printf(\"%d\", inner);\n"
      "  return 0;\n"
      "}");
  EXPECT_FALSE(r.faulted) << r.fault_message;
  EXPECT_EQ(r.output, "1");  // nested teams run serialized
}

TEST(Language, NegativeModuloAndDivision) {
  auto r = run_src(
      "int main() { printf(\"%d %d\", -7 / 2, -7 % 2); return 0; }");
  EXPECT_EQ(r.output, "-3 -1");
}

TEST(Language, ShortCircuitSideEffects) {
  auto r = run_src(
      "int bump(int* c) { c[0] = c[0] + 1; return 1; }\n"
      "int main() {\n"
      "  int calls = 0;\n"
      "  int x = 0 && bump(&calls);\n"
      "  int y = 1 || bump(&calls);\n"
      "  printf(\"%d %d %d\", calls, x, y);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "0 0 1");
}

}  // namespace
}  // namespace drbml::runtime
