// Robustness fuzzing (deterministic): the JSON parser, the Mini-C
// frontend, and the response parsers must never crash on malformed
// input -- they throw typed errors or return best-effort results.
#include <gtest/gtest.h>

#include <string>

#include "analysis/resolve.hpp"
#include "drb/corpus.hpp"
#include "eval/parse.hpp"
#include "minic/parser.hpp"
#include "runtime/interp.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace drbml {
namespace {

std::string random_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t n = rng.below(max_len) + 1;
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Printable-biased bytes with occasional control characters.
    if (rng.chance(0.9)) {
      s.push_back(static_cast<char>(rng.between(32, 126)));
    } else {
      s.push_back(static_cast<char>(rng.between(1, 31)));
    }
  }
  return s;
}

/// Mutates a valid document: deletions, duplications, byte flips.
std::string mutate(const std::string& base, Rng& rng) {
  std::string s = base;
  const int edits = static_cast<int>(rng.between(1, 8));
  for (int e = 0; e < edits && !s.empty(); ++e) {
    const std::size_t pos = rng.below(s.size());
    switch (rng.below(3)) {
      case 0: s.erase(pos, 1); break;
      case 1: s.insert(pos, 1, static_cast<char>(rng.between(32, 126))); break;
      default: s[pos] = static_cast<char>(rng.between(32, 126)); break;
    }
  }
  return s;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, JsonParserNeverCrashes) {
  Rng rng = Rng::from_key("fuzz-json/" + std::to_string(GetParam()));
  for (int round = 0; round < 50; ++round) {
    const std::string input = random_bytes(rng, 200);
    try {
      (void)json::parse(input);
    } catch (const JsonError&) {
      // expected for malformed documents
    }
  }
}

TEST_P(FuzzTest, JsonParserSurvivesMutatedValidDocuments) {
  Rng rng = Rng::from_key("fuzz-json-mut/" + std::to_string(GetParam()));
  const std::string valid =
      R"({"ID":1,"name":"x","var_pairs":[{"name":["a","b"],"line":[1,2]}]})";
  for (int round = 0; round < 50; ++round) {
    const std::string input = mutate(valid, rng);
    try {
      (void)json::parse(input);
    } catch (const JsonError&) {
    }
  }
}

TEST_P(FuzzTest, FrontendNeverCrashesOnMutatedPrograms) {
  Rng rng = Rng::from_key("fuzz-minic/" + std::to_string(GetParam()));
  const std::string base =
      drb::resolve_entry(
          drb::corpus()[rng.below(drb::corpus().size())])
          .trimmed;
  for (int round = 0; round < 10; ++round) {
    const std::string input = mutate(base, rng);
    try {
      (void)minic::parse_program(input);
    } catch (const ParseError&) {
      // expected
    } catch (const Error&) {
      // other typed library errors are fine too
    }
  }
}

TEST_P(FuzzTest, ResponseParsersNeverCrash) {
  Rng rng = Rng::from_key("fuzz-parse/" + std::to_string(GetParam()));
  static const char* kFragments[] = {
      "yes",        "no",       "variable '", "' at line ",
      "{\"data_race\":", "1}",  "write",      "read",
      "\"variable_names\": [", "]",           "a[i]",
      "I cannot",  "\n",        "operation",  ":",
  };
  for (int round = 0; round < 50; ++round) {
    std::string input;
    const int pieces = static_cast<int>(rng.between(1, 12));
    for (int p = 0; p < pieces; ++p) {
      input += kFragments[rng.below(std::size(kFragments))];
    }
    const eval::ParsedVarId parsed = eval::parse_varid(input);
    // Whatever came back must be internally consistent.
    for (const auto& pair : parsed.pairs) {
      EXPECT_LE(pair.names.size(), 2u);
    }
    (void)eval::parse_detection(input);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzTest, ::testing::Range(0, 20));

// Differential fuzzing of the VM backend: mutated corpus programs that
// still parse and resolve must behave identically under the AST walker
// and the bytecode VM -- verdict, output, steps, and fault message. The
// mutations reach degenerate programs (dead code, broken loops, odd
// expressions) no generator template produces.
TEST_P(FuzzTest, MutatedProgramsBehaveIdenticallyAcrossBackends) {
  Rng rng = Rng::from_key("fuzz-vm-diff/" + std::to_string(GetParam()));
  const std::string base =
      drb::resolve_entry(drb::corpus()[rng.below(drb::corpus().size())])
          .trimmed;
  int executed = 0;
  for (int round = 0; round < 60 && executed < 8; ++round) {
    const std::string input = mutate(base, rng);
    minic::Program prog;
    analysis::Resolution res;
    try {
      prog = minic::parse_program(input);
      res = analysis::resolve(*prog.unit);
    } catch (const Error&) {
      continue;  // mutation broke the frontend contract; not our target
    }
    runtime::RunOptions opts;
    opts.seed = 3;
    opts.step_limit = 100'000;  // mutations can create infinite loops
    opts.backend = runtime::Backend::Interp;
    runtime::RunResult interp;
    try {
      interp = runtime::run_program(*prog.unit, res, opts);
    } catch (const Error&) {
      continue;  // typed runtime rejection (e.g. no main) is fine
    }
    opts.backend = runtime::Backend::Vm;
    const runtime::RunResult vm = runtime::run_program(*prog.unit, res, opts);
    ++executed;
    EXPECT_EQ(interp.report.race_detected, vm.report.race_detected) << input;
    EXPECT_EQ(interp.output, vm.output) << input;
    EXPECT_EQ(interp.steps, vm.steps) << input;
    EXPECT_EQ(interp.faulted, vm.faulted) << input;
    EXPECT_EQ(interp.fault_message, vm.fault_message) << input;
  }
  // Most single-byte mutations still parse; the test must actually
  // exercise the VM, not vacuously skip everything.
  EXPECT_GT(executed, 0);
}

}  // namespace
}  // namespace drbml
