// Robustness fuzzing (deterministic): the JSON parser, the Mini-C
// frontend, and the response parsers must never crash on malformed
// input -- they throw typed errors or return best-effort results.
#include <gtest/gtest.h>

#include <string>

#include "drb/corpus.hpp"
#include "eval/parse.hpp"
#include "minic/parser.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace drbml {
namespace {

std::string random_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t n = rng.below(max_len) + 1;
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Printable-biased bytes with occasional control characters.
    if (rng.chance(0.9)) {
      s.push_back(static_cast<char>(rng.between(32, 126)));
    } else {
      s.push_back(static_cast<char>(rng.between(1, 31)));
    }
  }
  return s;
}

/// Mutates a valid document: deletions, duplications, byte flips.
std::string mutate(const std::string& base, Rng& rng) {
  std::string s = base;
  const int edits = static_cast<int>(rng.between(1, 8));
  for (int e = 0; e < edits && !s.empty(); ++e) {
    const std::size_t pos = rng.below(s.size());
    switch (rng.below(3)) {
      case 0: s.erase(pos, 1); break;
      case 1: s.insert(pos, 1, static_cast<char>(rng.between(32, 126))); break;
      default: s[pos] = static_cast<char>(rng.between(32, 126)); break;
    }
  }
  return s;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, JsonParserNeverCrashes) {
  Rng rng = Rng::from_key("fuzz-json/" + std::to_string(GetParam()));
  for (int round = 0; round < 50; ++round) {
    const std::string input = random_bytes(rng, 200);
    try {
      (void)json::parse(input);
    } catch (const JsonError&) {
      // expected for malformed documents
    }
  }
}

TEST_P(FuzzTest, JsonParserSurvivesMutatedValidDocuments) {
  Rng rng = Rng::from_key("fuzz-json-mut/" + std::to_string(GetParam()));
  const std::string valid =
      R"({"ID":1,"name":"x","var_pairs":[{"name":["a","b"],"line":[1,2]}]})";
  for (int round = 0; round < 50; ++round) {
    const std::string input = mutate(valid, rng);
    try {
      (void)json::parse(input);
    } catch (const JsonError&) {
    }
  }
}

TEST_P(FuzzTest, FrontendNeverCrashesOnMutatedPrograms) {
  Rng rng = Rng::from_key("fuzz-minic/" + std::to_string(GetParam()));
  const std::string base =
      drb::resolve_entry(
          drb::corpus()[rng.below(drb::corpus().size())])
          .trimmed;
  for (int round = 0; round < 10; ++round) {
    const std::string input = mutate(base, rng);
    try {
      (void)minic::parse_program(input);
    } catch (const ParseError&) {
      // expected
    } catch (const Error&) {
      // other typed library errors are fine too
    }
  }
}

TEST_P(FuzzTest, ResponseParsersNeverCrash) {
  Rng rng = Rng::from_key("fuzz-parse/" + std::to_string(GetParam()));
  static const char* kFragments[] = {
      "yes",        "no",       "variable '", "' at line ",
      "{\"data_race\":", "1}",  "write",      "read",
      "\"variable_names\": [", "]",           "a[i]",
      "I cannot",  "\n",        "operation",  ":",
  };
  for (int round = 0; round < 50; ++round) {
    std::string input;
    const int pieces = static_cast<int>(rng.between(1, 12));
    for (int p = 0; p < pieces; ++p) {
      input += kFragments[rng.below(std::size(kFragments))];
    }
    const eval::ParsedVarId parsed = eval::parse_varid(input);
    // Whatever came back must be internally consistent.
    for (const auto& pair : parsed.pairs) {
      EXPECT_LE(pair.names.size(), 2u);
    }
    (void)eval::parse_detection(input);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace drbml
