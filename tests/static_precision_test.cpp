// Differential guard for the evidence-carrying precision layer: the
// default static detector (thread-id modeling, symbolic bounds, serial
// regions) must strictly reduce false positives over the legacy
// configuration with ZERO recall loss, and every verdict it emits must
// carry a machine-checkable evidence chain.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/evidence.hpp"
#include "analysis/race.hpp"
#include "drb/corpus.hpp"

namespace drbml::analysis {
namespace {

StaticDetectorOptions legacy_options() {
  StaticDetectorOptions opts;
  opts.depend.model_thread_id = false;
  opts.depend.symbolic_bounds = false;
  opts.model_serial_regions = false;
  return opts;
}

struct Outcome {
  std::string name;
  bool truth = false;
  bool legacy = false;
  bool precise = false;
};

// Runs both detector configurations over the whole corpus once.
const std::vector<Outcome>& outcomes() {
  static const std::vector<Outcome> all = [] {
    const StaticRaceDetector legacy{legacy_options()};
    const StaticRaceDetector precise;  // default options
    std::vector<Outcome> out;
    for (const auto& entry : drb::corpus()) {
      Outcome o;
      o.name = entry.name;
      o.truth = entry.race;
      o.legacy = legacy.analyze_source(entry.body).race_detected;
      o.precise = precise.analyze_source(entry.body).race_detected;
      out.push_back(std::move(o));
    }
    return out;
  }();
  return all;
}

TEST(StaticPrecision, ZeroRecallLoss) {
  // Every true race the legacy detector finds, the precise one must also
  // find: the precision layer may only remove pairs it can *prove* safe.
  std::vector<std::string> lost;
  for (const auto& o : outcomes()) {
    if (o.truth && o.legacy && !o.precise) lost.push_back(o.name);
  }
  EXPECT_TRUE(lost.empty())
      << "precision layer lost " << lost.size() << " true positives, e.g. "
      << lost.front();
}

TEST(StaticPrecision, StrictlyFewerFalsePositives) {
  int legacy_fp = 0;
  int precise_fp = 0;
  for (const auto& o : outcomes()) {
    if (!o.truth && o.legacy) ++legacy_fp;
    if (!o.truth && o.precise) ++precise_fp;
  }
  EXPECT_LT(precise_fp, legacy_fp);
  // Regression floor: the PR lands at 2 corpus false positives (indirect
  // permutation arrays). Allow slack for future corpus growth but keep
  // the gate meaningful.
  EXPECT_LE(precise_fp, 4);
}

TEST(StaticPrecision, DischargesAreNewWorkNotRecallLoss) {
  // Entries that flipped detected -> undetected must all be race-free
  // ground truth; every flip is a discharged false positive.
  int discharged_fps = 0;
  for (const auto& o : outcomes()) {
    if (o.legacy && !o.precise) {
      EXPECT_FALSE(o.truth) << o.name;
      if (!o.truth) ++discharged_fps;
    }
  }
  EXPECT_GT(discharged_fps, 0);
}

TEST(StaticPrecision, EveryVerdictCarriesRoundTrippableEvidence) {
  const StaticRaceDetector precise;
  int checked_pairs = 0;
  int checked_discharged = 0;
  for (const auto& entry : drb::corpus()) {
    const RaceReport report = precise.analyze_source(entry.body);
    for (const auto& pair : report.pairs) {
      ASSERT_FALSE(pair.evidence.steps.empty()) << entry.name;
      EXPECT_FALSE(pair.evidence.discharged()) << entry.name;
      EXPECT_EQ(evidence_from_json(evidence_to_json(pair.evidence)),
                pair.evidence)
          << entry.name;
      ++checked_pairs;
    }
    for (const auto& d : report.discharged) {
      ASSERT_FALSE(d.evidence.steps.empty()) << entry.name;
      EXPECT_TRUE(d.evidence.discharged()) << entry.name;
      EXPECT_EQ(evidence_from_json(evidence_to_json(d.evidence)), d.evidence)
          << entry.name;
      ++checked_discharged;
    }
  }
  // The corpus must actually exercise both verdict kinds.
  EXPECT_GT(checked_pairs, 50);
  EXPECT_GT(checked_discharged, 50);
}

}  // namespace
}  // namespace drbml::analysis
