// Observability layer tests: span nesting across pool threads, byte-
// stable metrics snapshots across job counts, Chrome trace JSON shape,
// the allocation-free disabled mode, and the artifact-cache snapshot
// persistence (including the cache.corrupt structured warning).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "drb/corpus.hpp"
#include "eval/artifact_cache.hpp"
#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"

// Global allocation counter for the disabled-mode test. Counting is
// overhead-free enough to leave on for the whole binary. GCC flags
// free() on new-ed pointers without seeing that this replacement new is
// malloc-backed, so the mismatch warning is a false positive here.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace drbml;

/// Every test starts from a clean slate: sinks off, trace buffer empty,
/// metric values zeroed (the aggregate obs_suite ctest entry runs all
/// tests in one process).
void reset_obs() {
  obs::tracer().set_enabled(false);
  obs::tracer().clear();
  obs::metrics().set_enabled(false);
  obs::metrics().reset();
}

TEST(ObsMetrics, CatalogPreRegisteredAndSorted) {
  const auto descs = obs::metrics().descriptors();
  ASSERT_EQ(descs.size(), obs::metric_catalog().size());
  for (std::size_t i = 1; i < descs.size(); ++i) {
    EXPECT_LT(std::string(descs[i - 1]->name), std::string(descs[i]->name));
  }
  // Snapshots cover the full stable catalog even when nothing ran.
  reset_obs();
  const std::string text = obs::metrics().to_text();
  for (const obs::MetricDesc* d : obs::metric_catalog()) {
    if (d->stable) {
      EXPECT_NE(text.find(d->name), std::string::npos) << d->name;
    } else {
      EXPECT_EQ(text.find(d->name), std::string::npos) << d->name;
    }
  }
}

TEST(ObsMetrics, CountersGaugesHistograms) {
  reset_obs();
  obs::Counter& c = obs::metrics().counter(obs::kCacheCorrupt);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);

  obs::Histogram& h = obs::metrics().histogram(obs::kSchedStepsPerReplay);
  h.observe(0);    // bucket 0 (<= 0)
  h.observe(1);    // bucket 1 (<= 1)
  h.observe(2);    // bucket 2 (<= 3)
  h.observe(3);    // bucket 2
  h.observe(150);  // bucket 8 (<= 255)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 156u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(8), 1u);
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_bound(8), 255u);
  reset_obs();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsMetrics, TimersAreUnstableAndExcludedByDefault) {
  reset_obs();
  obs::Timer& t = obs::metrics().timer(obs::kStageStaticTime);
  t.record(1000, 900);
  EXPECT_EQ(obs::metrics().to_text().find("stage.static.time"),
            std::string::npos);
  const std::string full = obs::metrics().to_text(/*include_unstable=*/true);
  EXPECT_NE(full.find("stage.static.time count 1 wall_ns 1000 cpu_ns 900"),
            std::string::npos);
}

TEST(ObsMetrics, JsonSnapshotParsesAndIsStableOnly) {
  reset_obs();
  obs::metrics().counter(obs::kLintRuns).add(7);
  const json::Value doc = json::parse(obs::metrics().to_json());
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("schema").as_string(), "drbml-metrics-v1");
  EXPECT_TRUE(root.at("deterministic").as_bool());
  const json::Object& metrics = root.at("metrics").as_object();
  EXPECT_EQ(metrics.at("lint.runs").as_object().at("value").as_int(), 7);
  EXPECT_FALSE(metrics.contains("stage.static.time"));
}

TEST(ObsSpan, NestsAcrossThreadPoolThreads) {
  reset_obs();
  obs::tracer().set_enabled(true);
  {
    obs::Span outer(obs::kSpanDetectBatch, "outer");
    support::ThreadPool pool(4);
    const std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
    support::parallel_map(pool, items, [](int i) {
      obs::Span inner(obs::kSpanDetectEntry);
      obs::Span innermost(obs::kSpanInterpReplay);
      return i;
    });
  }
  const std::vector<obs::TraceEvent> events = obs::tracer().snapshot();
  ASSERT_EQ(events.size(), 17u);  // 1 outer + 8 * 2 inner
  std::set<int> tids;
  int outer_count = 0;
  for (const obs::TraceEvent& e : events) {
    tids.insert(e.tid);
    if (std::string(e.name) == "detect.batch") {
      ++outer_count;
      EXPECT_EQ(e.detail, "outer");
      // The outer span encloses every inner span in time.
      for (const obs::TraceEvent& o : events) {
        EXPECT_GE(o.start_ns, e.start_ns);
        EXPECT_LE(o.start_ns + o.dur_ns, e.start_ns + e.dur_ns);
      }
    }
  }
  EXPECT_EQ(outer_count, 1);
  EXPECT_GT(tids.size(), 1u);  // work actually landed on pool threads
  reset_obs();
}

TEST(ObsTracer, ChromeTraceJsonShape) {
  reset_obs();
  obs::tracer().set_enabled(true);
  {
    obs::Span span(obs::kSpanLintRun, "detail with \"quotes\"");
  }
  { obs::Span span(obs::kSpanRepairVerify); }
  const json::Value doc = json::parse(obs::tracer().to_json());
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");
  const json::Array& events = root.at("traceEvents").as_array();
  int complete = 0;
  int meta = 0;
  for (const json::Value& v : events) {
    const json::Object& e = v.as_object();
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      ++meta;
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_TRUE(e.contains("name"));
    EXPECT_TRUE(e.contains("cat"));
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_EQ(e.at("pid").as_int(), 1);
    EXPECT_TRUE(e.at("tid").is_int());
  }
  EXPECT_EQ(complete, 2);
  EXPECT_GE(meta, 1);
  reset_obs();
}

TEST(ObsTracer, WriteProducesLoadableFile) {
  reset_obs();
  obs::tracer().set_enabled(true);
  { obs::Span span(obs::kSpanExpRun, "table0"); }
  const std::string path = testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(obs::tracer().write(path));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  EXPECT_NO_THROW(json::parse(text));
  std::filesystem::remove(path);
  reset_obs();
}

TEST(ObsSpan, DisabledModeIsAllocationFree) {
  reset_obs();
  // Touch everything once so lazy singletons/statics are constructed.
  obs::metrics().counter(obs::kDetectEntries).add();
  static_cast<void>(obs::thread_id());
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    obs::Span span(obs::kSpanDetectEntry, "some detail");
    obs::metrics().counter(obs::kDetectEntries).add();
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before);
}

TEST(ObsFlags, ConsumeObsFlagsStripsOnlyItsFlags) {
  // Enabling writes files at exit; point them into the test temp dir.
  const std::string trace = testing::TempDir() + "obs_flags_trace.json";
  const std::string metrics = testing::TempDir() + "obs_flags_metrics.json";
  std::vector<std::string> args{"--jobs",  "4",    "--trace", trace,
                                "a.c",     "--metrics", metrics};
  obs::consume_obs_flags(args);
  EXPECT_EQ(args, (std::vector<std::string>{"--jobs", "4", "a.c"}));
  EXPECT_TRUE(obs::tracer().enabled());
  EXPECT_TRUE(obs::metrics().enabled());
  reset_obs();
}

// ---------------------------------------------------------- determinism

/// Drives a miniature version of the `drbml stats` pipeline over a slice
/// of the corpus at the given job count and returns the deterministic
/// metrics snapshot.
std::string pipeline_snapshot(int jobs) {
  obs::metrics().reset();
  eval::ArtifactCache& cache = eval::artifact_cache();
  cache.clear();
  std::vector<const drb::CorpusEntry*> entries;
  for (const drb::CorpusEntry& e : drb::corpus()) {
    entries.push_back(&e);
    if (entries.size() == 24) break;
  }
  support::parallel_map(jobs, entries, [&](const drb::CorpusEntry* e) {
    const std::string code = drb::drb_code(*e);
    cache.token_count(code);
    cache.static_report(code, {}).race_detected;
    try {
      cache.dynamic_report(code, {});
    } catch (const Error&) {
    }
    try {
      cache.lint_report(code);
    } catch (const Error&) {
    }
    return 0;
  });
  std::string text = obs::metrics().to_text();
  std::string json = obs::metrics().to_json();
  cache.clear();
  return text + json;
}

TEST(ObsDeterminism, SnapshotsByteStableAcrossJobCounts) {
  reset_obs();
  const std::string serial = pipeline_snapshot(1);
  const std::string parallel = pipeline_snapshot(8);
  EXPECT_EQ(serial, parallel);
  // And the work actually happened: probes and computes are non-zero.
  EXPECT_NE(serial.find("cache.static.probe 24"), std::string::npos) << serial;
  EXPECT_NE(serial.find("cache.static.compute 24"), std::string::npos);
  reset_obs();
}

// ------------------------------------------------------ cache snapshots

TEST(CacheSnapshot, RoundTripSeedsWithoutRecompute) {
  reset_obs();
  eval::ArtifactCache& cache = eval::artifact_cache();
  cache.clear();
  const std::string code = drb::drb_code(drb::corpus().front());
  const int tokens = cache.token_count(code);
  const std::string ast = cache.ast_text(code);
  const std::string dep = cache.depgraph_text(code);

  const std::string path = testing::TempDir() + "obs_cache_snapshot.txt";
  ASSERT_TRUE(cache.save_snapshot(path));
  EXPECT_EQ(obs::metrics().counter(obs::kCacheSnapshotSaved).value(), 3u);

  cache.clear();
  obs::metrics().reset();
  EXPECT_EQ(cache.load_snapshot(path), 3u);
  EXPECT_EQ(obs::metrics().counter(obs::kCacheSnapshotLoaded).value(), 3u);
  EXPECT_EQ(obs::metrics().counter(obs::kCacheCorrupt).value(), 0u);

  // Seeded entries are hits: values match, no compute runs.
  EXPECT_EQ(cache.token_count(code), tokens);
  EXPECT_EQ(cache.ast_text(code), ast);
  EXPECT_EQ(cache.depgraph_text(code), dep);
  EXPECT_EQ(obs::metrics().counter(obs::kCacheTokensCompute).value(), 0u);
  EXPECT_EQ(obs::metrics().counter(obs::kCacheAstCompute).value(), 0u);
  EXPECT_EQ(obs::metrics().counter(obs::kCacheDepgraphCompute).value(), 0u);

  std::filesystem::remove(path);
  cache.clear();
  reset_obs();
}

TEST(CacheSnapshot, CorruptFileIsCountedAndTreatedAsMiss) {
  reset_obs();
  eval::ArtifactCache& cache = eval::artifact_cache();
  cache.clear();
  const std::string path = testing::TempDir() + "obs_cache_corrupt.txt";

  const auto expect_rejected = [&](const std::string& contents,
                                   std::uint64_t expected_corrupt) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
    out.close();
    EXPECT_EQ(cache.load_snapshot(path), 0u) << contents;
    EXPECT_EQ(obs::metrics().counter(obs::kCacheCorrupt).value(),
              expected_corrupt)
        << contents;
    EXPECT_EQ(cache.size(), 0u) << contents;
  };

  expect_rejected("not a snapshot\n", 1);
  expect_rejected("drbml-cache v1\nX 0123456789abcdef 3\n", 2);
  expect_rejected("drbml-cache v1\nT zzzz\n", 3);
  // Truncated payload: promises 10 bytes, delivers 2.
  expect_rejected("drbml-cache v1\nA 0123456789abcdef 10\nab\n", 4);
  // A corrupt tail must not seed the valid head records.
  expect_rejected(
      "drbml-cache v1\nT 0123456789abcdef 42\nA 0123456789abcdef 10\nab\n", 5);

  // Missing file counts too.
  std::filesystem::remove(path);
  EXPECT_EQ(cache.load_snapshot(path), 0u);
  EXPECT_EQ(obs::metrics().counter(obs::kCacheCorrupt).value(), 6u);
  reset_obs();
}

// ----------------------------------------------------------- once-map

TEST(OnceMap, SeedAndForEach) {
  support::OnceMap<std::string> map;
  EXPECT_TRUE(map.seed(1, "one"));
  EXPECT_FALSE(map.seed(1, "other"));  // first seed wins
  int computes = 0;
  EXPECT_EQ(map.get_or_compute(1,
                               [&] {
                                 ++computes;
                                 return std::string("computed");
                               }),
            "one");
  EXPECT_EQ(computes, 0);
  map.get_or_compute(2, [] { return std::string("two"); });
  std::set<std::pair<std::uint64_t, std::string>> seen;
  map.for_each([&](std::uint64_t key, const std::string& v) {
    seen.insert({key, v});
  });
  EXPECT_EQ(seen, (std::set<std::pair<std::uint64_t, std::string>>{
                      {1, "one"}, {2, "two"}}));
}

}  // namespace
