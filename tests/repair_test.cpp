// The race repair subsystem: patch engine round-trips, candidate
// ranking, the verified fix loop's acceptance gates, annotation
// remapping, and the memoized batch fan-out (RaceFixer / Table 7).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/race.hpp"
#include "core/fix.hpp"
#include "dataset/drbml.hpp"
#include "drb/corpus.hpp"
#include "eval/artifact_cache.hpp"
#include "eval/experiments.hpp"
#include "lint/lint.hpp"
#include "minic/parser.hpp"
#include "repair/repair.hpp"

namespace drbml::repair {
namespace {

// A scalar accumulation race: the canonical missing-reduction kernel.
const char* kReductionKernel = R"(#include <stdio.h>
int main()
{
  int i;
  int sum = 0;
#pragma omp parallel for
  for (i = 0; i < 100; i++) {
    sum = sum + i;
  }
  printf("sum=%d\n", sum);
  return 0;
})";

const char* kNoRaceKernel = R"(#include <stdio.h>
int main()
{
  int i;
  int a[100];
#pragma omp parallel for
  for (i = 0; i < 100; i++) {
    a[i] = i * 2;
  }
  printf("a[10]=%d\n", a[10]);
  return 0;
})";

Patch add_clause_patch(minic::SourceLoc anchor, minic::OmpClauseKind kind,
                       const std::string& var, const std::string& arg = "") {
  Patch p;
  p.id = "test-patch";
  Edit e;
  e.kind = EditKind::AddClause;
  e.anchor = anchor;
  e.clause_kind = kind;
  e.clause_vars = {var};
  e.clause_arg = arg;
  p.edits.push_back(e);
  return p;
}

minic::SourceLoc directive_loc(const std::string& source) {
  minic::Program prog = minic::parse_program(source);
  minic::SourceLoc loc;
  analysis::RaceReport races =
      analysis::StaticRaceDetector().analyze_source(source);
  // The pragma's trimmed loc via the race evidence's enclosing region.
  auto chain = stmt_chain_at(*prog.unit, races.pairs.at(0).first.loc);
  auto* region = enclosing_region(chain);
  EXPECT_NE(region, nullptr);
  return region->directive.loc;
}

TEST(PatchEngine, ClauseEditPreservesCommentsAndLayout) {
  const std::string source = R"(// leading comment stays
#include <stdio.h>
int main()
{
  int i;
  int sum = 0;
#pragma omp parallel for // trailing comment stays
  for (i = 0; i < 100; i++) {
    sum = sum + i;  // body comment stays
  }
  printf("sum=%d\n", sum);
  return 0;
})";
  const Patch p = add_clause_patch(
      directive_loc(source), minic::OmpClauseKind::Reduction, "sum", "+");
  const ApplyResult r = apply_patch(source, p);
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_NE(r.patched.find("// leading comment stays"), std::string::npos);
  EXPECT_NE(r.patched.find("// body comment stays"), std::string::npos);
  EXPECT_NE(r.patched.find(
                "#pragma omp parallel for reduction(+:sum) "
                "// trailing comment stays"),
            std::string::npos);
  // No line was added or removed: clause edits rewrite in place.
  EXPECT_EQ(r.line_map.to_patched_original(11), 11);
}

TEST(PatchEngine, SuppressCommentStaysAdjacentThroughWrap) {
  const std::string source = R"(int main()
{
  int x = 0;
#pragma omp parallel
  {
    // drbml-lint-suppress(atomic-plus-plain)
    x = x + 1;
  }
  return 0;
})";
  Patch p;
  p.id = "wrap";
  Edit e;
  e.kind = EditKind::WrapStmt;
  e.directive_kind = minic::OmpDirectiveKind::Atomic;
  // The x = x + 1 statement: trimmed line 6 (suppress comment dropped).
  e.anchor = {6, 5};
  p.edits.push_back(e);
  const ApplyResult r = apply_patch(source, p);
  ASSERT_TRUE(r.ok) << r.message;
  // The pragma lands *above* the suppress comment, keeping the comment
  // immediately before the statement it covers.
  const std::size_t pragma_pos = r.patched.find("#pragma omp atomic");
  const std::size_t suppress_pos = r.patched.find("drbml-lint-suppress");
  const std::size_t stmt_pos = r.patched.find("x = x + 1;");
  ASSERT_NE(pragma_pos, std::string::npos);
  EXPECT_LT(pragma_pos, suppress_pos);
  EXPECT_LT(suppress_pos, stmt_pos);
}

TEST(PatchEngine, WrapSplitsOneLinerBlocks) {
  const std::string source = R"(int main()
{
  int x = 0;
#pragma omp parallel
  {
#pragma omp critical (a)
    { x = x + 1; }
  }
  return 0;
})";
  Patch p;
  p.id = "wrap";
  Edit e;
  e.kind = EditKind::WrapStmt;
  e.directive_kind = minic::OmpDirectiveKind::Atomic;
  e.anchor = {7, 7};  // the x = x + 1 statement inside the one-liner block
  p.edits.push_back(e);
  const ApplyResult r = apply_patch(source, p);
  ASSERT_TRUE(r.ok) << r.message;
  // The one-liner block was split so the atomic binds to the assignment,
  // not to the enclosing block.
  EXPECT_NE(r.patched.find("#pragma omp atomic\n    x = x + 1; }"),
            std::string::npos)
      << r.patched;
}

TEST(PatchEngine, LineMapTracksInsertions) {
  const Patch p = add_clause_patch(
      directive_loc(kReductionKernel), minic::OmpClauseKind::Private, "sum");
  ApplyResult r = apply_patch(kReductionKernel, p);
  ASSERT_TRUE(r.ok) << r.message;

  Patch wrap;
  wrap.id = "wrap";
  Edit e;
  e.kind = EditKind::WrapStmt;
  e.directive_kind = minic::OmpDirectiveKind::Critical;
  e.anchor = {8, 5};  // sum = sum + i;
  wrap.edits.push_back(e);
  r = apply_patch(kReductionKernel, wrap);
  ASSERT_TRUE(r.ok) << r.message;
  // One pragma line inserted before original line 8: lines at or after
  // shift by one, lines before stay put.
  EXPECT_EQ(r.line_map.to_patched_original(7), 7);
  EXPECT_EQ(r.line_map.to_patched_original(8), 9);
  EXPECT_EQ(r.line_map.to_patched_original(10), 11);
  EXPECT_EQ(r.line_map.to_patched_trimmed(7), 7);
  EXPECT_EQ(r.line_map.to_patched_trimmed(8), 9);
}

TEST(Candidates, RankingIsDeterministic) {
  minic::Program prog1 = minic::parse_program(kReductionKernel);
  minic::Program prog2 = minic::parse_program(kReductionKernel);
  const analysis::RaceReport races =
      analysis::StaticRaceDetector().analyze_source(kReductionKernel);
  const lint::LintReport lint = lint::Linter().lint_source(kReductionKernel);
  const std::vector<Patch> a =
      generate_candidates(prog1, races, &lint, Strategy::Auto);
  const std::vector<Patch> b =
      generate_candidates(prog2, races, &lint, Strategy::Auto);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].cost, b[i].cost);
  }
  // Ranked by cost, cheapest first; the inferred reduction leads.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].cost, a[i].cost);
  }
  EXPECT_EQ(a.front().id.rfind("reduction(+:sum)", 0), 0u) << a.front().id;
}

TEST(Candidates, StrategyNamesRoundTrip) {
  for (Strategy s : {Strategy::Auto, Strategy::Lint, Strategy::Sync,
                     Strategy::Serialize}) {
    const auto parsed = parse_strategy(strategy_name(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(parse_strategy("nonsense").has_value());
}

// The satellite contract: a patch that silences the static detector but
// destroys the program's semantics must NOT be accepted. Privatizing the
// accumulator removes the shared-access conflict (static says race-free)
// but changes the answer -- the output-equivalence gate has to catch it.
TEST(VerifiedFixLoop, RejectsDetectorSilencingSemanticsBreakingPatch) {
  const Patch p = add_clause_patch(
      directive_loc(kReductionKernel), minic::OmpClauseKind::Private, "sum");
  const ApplyResult applied = apply_patch(kReductionKernel, p);
  ASSERT_TRUE(applied.ok) << applied.message;

  // The patch really does silence the static detector...
  EXPECT_FALSE(analysis::StaticRaceDetector()
                   .analyze_source(applied.patched)
                   .race_detected);
  // ...and the verification gates still reject it.
  const VerifyOutcome v =
      verify_candidate(kReductionKernel, applied.patched, RepairOptions{});
  EXPECT_FALSE(v.accepted);
  EXPECT_FALSE(v.reason.empty());
}

TEST(VerifiedFixLoop, FixesMissingReduction) {
  const RepairResult r = repair_source(kReductionKernel);
  ASSERT_EQ(r.status, RepairStatus::Fixed) << r.message;
  EXPECT_EQ(r.patch_id.rfind("reduction(+:sum)", 0), 0u) << r.patch_id;
  EXPECT_TRUE(r.equivalence_checked);
  EXPECT_GE(r.attempts, 1);
  EXPECT_FALSE(analysis::StaticRaceDetector()
                   .analyze_source(r.patched)
                   .race_detected);
}

TEST(VerifiedFixLoop, NoRaceInputReturnsByteIdenticalSource) {
  const RepairResult r = repair_source(kNoRaceKernel);
  EXPECT_EQ(r.status, RepairStatus::NoRaceDetected);
  EXPECT_EQ(r.patched, kNoRaceKernel);
}

TEST(VerifiedFixLoop, RemapsDrbAnnotationsThroughInsertions) {
  const drb::CorpusEntry* e = drb::find_entry("DRB001-antidep1-orig-yes.c");
  ASSERT_NE(e, nullptr);
  const std::string code = drb::drb_code(*e);
  const RepairResult r = repair_source(code);
  ASSERT_EQ(r.status, RepairStatus::Fixed) << r.message;

  // Every annotation line in the patched header still parses, and its
  // line numbers track the patch's insertions.
  int annotations = 0;
  std::size_t start = 0;
  while (start < r.patched.size()) {
    std::size_t nl = r.patched.find('\n', start);
    if (nl == std::string::npos) nl = r.patched.size();
    const std::string line = r.patched.substr(start, nl - start);
    start = nl + 1;
    dataset::RawAnnotation ann;
    if (!dataset::parse_annotation(line, ann)) continue;
    ++annotations;
  }
  EXPECT_GT(annotations, 0);
  for (const auto& pair : e->pairs) {
    // The original annotation lines exist in drb_code's header; the
    // patched header must carry them remapped.
    (void)pair;
  }
  // Concretely: the original pair line moved by the pragma insertion.
  dataset::RawAnnotation before;
  dataset::RawAnnotation after;
  bool got_before = false;
  bool got_after = false;
  for (const std::string* src : {&code, &r.patched}) {
    std::size_t pos = src->find("Data race pair:");
    ASSERT_NE(pos, std::string::npos);
    std::size_t eol = src->find('\n', pos);
    const std::string line = src->substr(pos, eol - pos);
    if (src == &code) {
      got_before = dataset::parse_annotation(line, before);
    } else {
      got_after = dataset::parse_annotation(line, after);
    }
  }
  ASSERT_TRUE(got_before);
  ASSERT_TRUE(got_after);
  EXPECT_EQ(after.var0_line, r.line_map.to_patched_original(before.var0_line));
  EXPECT_EQ(after.var1_line, r.line_map.to_patched_original(before.var1_line));
}

TEST(RaceFixer, BatchIsDeterministicAcrossJobCounts) {
  std::vector<std::string> sources;
  int taken = 0;
  for (const auto& e : drb::corpus()) {
    if (!e.race) continue;
    sources.push_back(drb::drb_code(e));
    if (++taken == 12) break;
  }

  core::FixerSpec serial;
  serial.jobs = 1;
  core::FixerSpec parallel;
  parallel.jobs = 4;
  eval::artifact_cache().clear();
  std::vector<RepairResult> cold;
  for (const auto* r : core::RaceFixer(serial).fix_batch(sources)) {
    cold.push_back(*r);
  }
  eval::artifact_cache().clear();
  std::vector<RepairResult> warm;
  for (const auto* r : core::RaceFixer(parallel).fix_batch(sources)) {
    warm.push_back(*r);
  }
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i], warm[i]) << sources[i];
  }
}

TEST(Table7, RowsReproducibleBitIdenticallyAcrossJobCounts) {
  eval::ExperimentOptions serial;
  serial.jobs = 1;
  eval::ExperimentOptions parallel;
  parallel.jobs = 4;
  eval::artifact_cache().clear();
  const std::vector<eval::RepairRow> a = eval::table7_rows({}, serial);
  eval::artifact_cache().clear();
  const std::vector<eval::RepairRow> b = eval::table7_rows({}, parallel);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].family, b[i].family);
    EXPECT_EQ(a[i].entries, b[i].entries);
    EXPECT_EQ(a[i].fixed, b[i].fixed);
    EXPECT_EQ(a[i].verified, b[i].verified);
    EXPECT_EQ(a[i].no_candidate, b[i].no_candidate);
    EXPECT_EQ(a[i].rejected, b[i].rejected);
    EXPECT_EQ(a[i].errors, b[i].errors);
    EXPECT_EQ(a[i].attempts_on_fixed, b[i].attempts_on_fixed);
  }
  // The acceptance bar scripts/check.sh enforces: >= 60% of race-labeled
  // corpus entries gain a verified fix.
  const eval::RepairRow& total = a.back();
  EXPECT_EQ(total.family, "(all)");
  EXPECT_GE(total.fix_rate(), 0.60);
}

}  // namespace
}  // namespace drbml::repair
