// Tests for the DRB-ML dataset builder: comment-based label extraction,
// JSON schema (Table 1), prompt-response pairs (Listings 8/9), and the
// stratified fold construction (Section 3.5).
#include <gtest/gtest.h>

#include <set>

#include "dataset/drbml.hpp"
#include "dataset/folds.hpp"
#include "drb/corpus.hpp"
#include "support/error.hpp"

namespace drbml::dataset {
namespace {

TEST(Annotation, ParsesDrbPairLine) {
  RawAnnotation raw;
  ASSERT_TRUE(parse_annotation(
      "Data race pair: a[i+1]@64:10:R vs. a[i]@64:5:W", raw));
  EXPECT_EQ(raw.var1_expr, "a[i+1]");
  EXPECT_EQ(raw.var1_line, 64);
  EXPECT_EQ(raw.var1_col, 10);
  EXPECT_EQ(raw.var1_op, 'r');
  EXPECT_EQ(raw.var0_expr, "a[i]");
  EXPECT_EQ(raw.var0_line, 64);
  EXPECT_EQ(raw.var0_col, 5);
  EXPECT_EQ(raw.var0_op, 'w');
}

TEST(Annotation, RejectsNonAnnotationLines) {
  RawAnnotation raw;
  EXPECT_FALSE(parse_annotation("A loop with anti-dependence.", raw));
  EXPECT_FALSE(parse_annotation("Data race pair: broken", raw));
  EXPECT_FALSE(parse_annotation("", raw));
}

TEST(Annotation, HandlesMultiDimAndOperators) {
  RawAnnotation raw;
  ASSERT_TRUE(parse_annotation(
      "Data race pair: m[i][j+1]@12:7:R vs. m[i][j]@12:1:W", raw));
  EXPECT_EQ(raw.var1_expr, "m[i][j+1]");
  EXPECT_EQ(raw.var0_expr, "m[i][j]");
}

TEST(BuildEntry, ExtractionMatchesRegistryGroundTruth) {
  // The comment-extraction pipeline must reconstruct exactly what the
  // corpus registry authored, for every entry.
  for (const auto& src : drb::corpus()) {
    const Entry e = build_entry(src);
    const drb::ResolvedEntry resolved = drb::resolve_entry(src);
    ASSERT_EQ(e.var_pairs.size(), resolved.pairs.size()) << src.name;
    for (std::size_t i = 0; i < e.var_pairs.size(); ++i) {
      const VarPairLabel& label = e.var_pairs[i];
      const drb::ResolvedPair& truth = resolved.pairs[i];
      EXPECT_EQ(label.name[0], truth.var0.name) << src.name;
      EXPECT_EQ(label.name[1], truth.var1.name) << src.name;
      EXPECT_EQ(label.line[0], truth.var0.line) << src.name;
      EXPECT_EQ(label.line[1], truth.var1.line) << src.name;
      EXPECT_EQ(label.col[0], truth.var0.col) << src.name;
      EXPECT_EQ(label.col[1], truth.var1.col) << src.name;
      EXPECT_EQ(label.operation[0], std::string(1, truth.var0.op)) << src.name;
      EXPECT_EQ(label.operation[1], std::string(1, truth.var1.op)) << src.name;
    }
  }
}

TEST(BuildEntry, SchemaFieldsFollowTable1) {
  const Entry& e = dataset().front();
  EXPECT_EQ(e.id, 1);
  EXPECT_FALSE(e.name.empty());
  EXPECT_NE(e.drb_code.find("/*"), std::string::npos);
  EXPECT_EQ(e.trimmed_code.find("/*"), std::string::npos);
  EXPECT_EQ(e.code_len, static_cast<int>(e.trimmed_code.size()));
  EXPECT_TRUE(e.data_race == 0 || e.data_race == 1);
  EXPECT_FALSE(e.data_race_label.empty());
}

TEST(BuildEntry, JsonKeysInTable1Order) {
  const Entry& e = dataset().front();
  const std::string dumped = e.to_json().dump();
  const std::vector<std::string> keys = {
      "\"ID\"",       "\"name\"",      "\"DRB_code\"",
      "\"trimmed_code\"", "\"code_len\"", "\"data_race\"",
      "\"data_race_label\"", "\"var_pairs\""};
  std::size_t last = 0;
  for (const auto& key : keys) {
    const std::size_t pos = dumped.find(key);
    ASSERT_NE(pos, std::string::npos) << key;
    EXPECT_GT(pos, last) << key << " out of order";
    last = pos;
  }
}

TEST(BuildEntry, JsonRoundTripsExactly) {
  for (const Entry& e : dataset()) {
    const Entry back = Entry::from_json(json::parse(e.to_json().dump()));
    EXPECT_EQ(back.id, e.id);
    EXPECT_EQ(back.name, e.name);
    EXPECT_EQ(back.drb_code, e.drb_code);
    EXPECT_EQ(back.trimmed_code, e.trimmed_code);
    EXPECT_EQ(back.code_len, e.code_len);
    EXPECT_EQ(back.data_race, e.data_race);
    EXPECT_EQ(back.var_pairs, e.var_pairs);
  }
}

TEST(BuildEntry, DatasetHas202Entries) {
  EXPECT_EQ(dataset().size(), 202u);
}

TEST(PromptPairs, DetectionPairFollowsListing8) {
  const Entry* yes_entry = nullptr;
  const Entry* no_entry = nullptr;
  for (const Entry& e : dataset()) {
    if (e.data_race == 1 && yes_entry == nullptr) yes_entry = &e;
    if (e.data_race == 0 && no_entry == nullptr) no_entry = &e;
  }
  ASSERT_NE(yes_entry, nullptr);
  ASSERT_NE(no_entry, nullptr);

  const PromptResponse yes_pr = make_detection_pair(*yes_entry);
  EXPECT_NE(yes_pr.prompt.find("expert in High-Performance Computing"),
            std::string::npos);
  EXPECT_NE(yes_pr.prompt.find(yes_entry->trimmed_code), std::string::npos);
  EXPECT_EQ(yes_pr.response, "yes");
  EXPECT_EQ(make_detection_pair(*no_entry).response, "no");
}

TEST(PromptPairs, VarIdPairFollowsListing9) {
  const Entry* yes_entry = nullptr;
  for (const Entry& e : dataset()) {
    if (e.data_race == 1) {
      yes_entry = &e;
      break;
    }
  }
  ASSERT_NE(yes_entry, nullptr);
  const PromptResponse pr = make_varid_pair(*yes_entry);
  EXPECT_NE(pr.prompt.find("JSON format"), std::string::npos);
  EXPECT_NE(pr.response.find("yes"), std::string::npos);
  EXPECT_NE(pr.response.find("\"variable_names\""), std::string::npos);
  EXPECT_NE(pr.response.find("\"variable_locations\""), std::string::npos);
  EXPECT_NE(pr.response.find("\"operation_types\""), std::string::npos);
  // The JSON part parses and matches the first label.
  const std::size_t brace = pr.response.find('{');
  ASSERT_NE(brace, std::string::npos);
  const json::Value v = json::parse(pr.response.substr(brace));
  EXPECT_EQ(v.as_object().at("variable_names").as_array()[0].as_string(),
            yes_entry->var_pairs[0].name[0]);
}


TEST(PromptPairs, ProseVarIdPairFollowsListing3) {
  const Entry* yes_entry = nullptr;
  const Entry* no_entry = nullptr;
  for (const Entry& e : dataset()) {
    if (e.data_race == 1 && yes_entry == nullptr) yes_entry = &e;
    if (e.data_race == 0 && no_entry == nullptr) no_entry = &e;
  }
  ASSERT_NE(yes_entry, nullptr);
  const PromptResponse pr = make_varid_pair_prose(*yes_entry);
  EXPECT_NE(pr.prompt.find("You are an HPC expert."), std::string::npos);
  EXPECT_NE(pr.response.find("Yes, the provided code exhibits data race"),
            std::string::npos);
  EXPECT_NE(pr.response.find("at line "), std::string::npos);
  EXPECT_EQ(make_varid_pair_prose(*no_entry).response.find("No"), 0u);
}

// ------------------------------------------------------------- folds

TEST(Folds, EverySampleInExactlyOneTestSet) {
  std::vector<bool> labels(198);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i < 100;
  StratifiedKFold folds(5, 42);
  std::set<int> seen;
  for (const auto& fold : folds.split(labels)) {
    for (int idx : fold.test_indices) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate test index " << idx;
    }
    // Train and test are disjoint and cover everything.
    std::set<int> train(fold.train_indices.begin(), fold.train_indices.end());
    for (int idx : fold.test_indices) {
      EXPECT_EQ(train.count(idx), 0u);
    }
    EXPECT_EQ(fold.train_indices.size() + fold.test_indices.size(), 198u);
  }
  EXPECT_EQ(seen.size(), 198u);
}

TEST(Folds, PaperSection35FoldSizes) {
  // 100 positive + 98 negative, k=5: three folds 20+20, two folds 20+19.
  std::vector<bool> labels(198);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i < 100;
  StratifiedKFold folds(5, 7);
  int folds_40 = 0;
  int folds_39 = 0;
  for (const auto& fold : folds.split(labels)) {
    int pos = 0;
    for (int idx : fold.test_indices) {
      pos += labels[static_cast<std::size_t>(idx)] ? 1 : 0;
    }
    EXPECT_EQ(pos, 20);
    if (fold.test_indices.size() == 40) ++folds_40;
    if (fold.test_indices.size() == 39) ++folds_39;
  }
  EXPECT_EQ(folds_40, 3);
  EXPECT_EQ(folds_39, 2);
}

TEST(Folds, DeterministicForFixedSeed) {
  std::vector<bool> labels(50);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 2 == 0;
  StratifiedKFold a(5, 99);
  StratifiedKFold b(5, 99);
  const auto sa = a.split(labels);
  const auto sb = b.split(labels);
  for (std::size_t f = 0; f < sa.size(); ++f) {
    EXPECT_EQ(sa[f].test_indices, sb[f].test_indices);
  }
}

TEST(Folds, RejectsDegenerateK) {
  StratifiedKFold folds(1, 0);
  EXPECT_THROW(folds.split({true, false}), Error);
}

}  // namespace
}  // namespace drbml::dataset
