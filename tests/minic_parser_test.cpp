// Unit tests for the Mini-C parser: statements, expressions, OpenMP
// pragmas, and the parse_program pipeline.
#include <gtest/gtest.h>

#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "support/error.hpp"

namespace drbml::minic {
namespace {

std::unique_ptr<TranslationUnit> parse_src(const char* src) {
  Program p = parse_program(src);
  return std::move(p.unit);
}

const FunctionDecl& main_of(const TranslationUnit& tu) {
  const FunctionDecl* fn = tu.find_function("main");
  EXPECT_NE(fn, nullptr);
  return *fn;
}

TEST(Parser, ParsesMainWithParams) {
  auto tu = parse_src("int main(int argc, char* argv[]) { return 0; }");
  const auto& fn = main_of(*tu);
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0]->name, "argc");
  EXPECT_EQ(fn.params[1]->name, "argv");
  // argv decays to char**.
  EXPECT_EQ(fn.params[1]->type.pointer_depth, 2);
}

TEST(Parser, GlobalsAndMultipleDeclarators) {
  auto tu = parse_src("int a = 5, b[10];\ndouble x;\nint main() { return 0; }");
  ASSERT_EQ(tu->globals.size(), 3u);
  EXPECT_EQ(tu->globals[0]->name, "a");
  ASSERT_NE(tu->globals[0]->init, nullptr);
  EXPECT_TRUE(tu->globals[1]->is_array());
  EXPECT_EQ(tu->globals[2]->type.kind, TypeKind::Double);
}

TEST(Parser, ArrayDeclarationsMultiDim) {
  auto tu = parse_src("int main() { double m[20][30]; return 0; }");
  const auto& fn = main_of(*tu);
  const auto* decl = stmt_cast<DeclStmt>(fn.body->body[0].get());
  ASSERT_NE(decl, nullptr);
  EXPECT_EQ(decl->decls[0]->array_dims.size(), 2u);
}

TEST(Parser, ForLoopCanonicalShape) {
  auto tu = parse_src(
      "int main() { int i; for (i = 0; i < 100; i++) { } return 0; }");
  const auto& fn = main_of(*tu);
  const auto* f = stmt_cast<ForStmt>(fn.body->body[1].get());
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->cond, nullptr);
  EXPECT_NE(f->inc, nullptr);
}

TEST(Parser, OperatorPrecedence) {
  auto tu = parse_src("int main() { int x; x = 1 + 2 * 3; return 0; }");
  const auto& fn = main_of(*tu);
  const auto* es = stmt_cast<ExprStmt>(fn.body->body[1].get());
  ASSERT_NE(es, nullptr);
  const auto* a = expr_cast<Assign>(es->expr.get());
  ASSERT_NE(a, nullptr);
  const auto* add = expr_cast<Binary>(a->value.get());
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->op, BinaryOp::Add);
  const auto* mul = expr_cast<Binary>(add->rhs.get());
  ASSERT_NE(mul, nullptr);
  EXPECT_EQ(mul->op, BinaryOp::Mul);
}

TEST(Parser, SubscriptChainsAndSpelling) {
  auto tu = parse_src("int main() { int a[9][9]; a[1][2] = a[2][1]; return 0; }");
  const auto& fn = main_of(*tu);
  const auto* es = stmt_cast<ExprStmt>(fn.body->body[1].get());
  const auto* assign = expr_cast<Assign>(es->expr.get());
  ASSERT_NE(assign, nullptr);
  EXPECT_EQ(expr_to_string(*assign->target), "a[1][2]");
  EXPECT_EQ(expr_to_string(*assign->value), "a[2][1]");
}

TEST(Parser, ExprSpellingMatchesDrbConvention) {
  auto tu = parse_src("int main() { int a[10]; int i; a[i] = a[i+1] + 1; return 0; }");
  const auto& fn = main_of(*tu);
  const auto* es = stmt_cast<ExprStmt>(fn.body->body[2].get());
  const auto* assign = expr_cast<Assign>(es->expr.get());
  EXPECT_EQ(expr_to_string(*assign->target), "a[i]");
  const auto* add = expr_cast<Binary>(assign->value.get());
  EXPECT_EQ(expr_to_string(*add->lhs), "a[i+1]");
}

TEST(Parser, CompoundAssignAndIncrement) {
  auto tu = parse_src("int main() { int x = 0; x += 2; x++; --x; return x; }");
  const auto& fn = main_of(*tu);
  const auto* plus = stmt_cast<ExprStmt>(fn.body->body[1].get());
  EXPECT_EQ(expr_cast<Assign>(plus->expr.get())->op, AssignOp::Add);
  const auto* inc = stmt_cast<ExprStmt>(fn.body->body[2].get());
  EXPECT_EQ(expr_cast<Unary>(inc->expr.get())->op, UnaryOp::PostInc);
  const auto* dec = stmt_cast<ExprStmt>(fn.body->body[3].get());
  EXPECT_EQ(expr_cast<Unary>(dec->expr.get())->op, UnaryOp::PreDec);
}

TEST(Parser, TernaryAndLogical) {
  auto tu = parse_src("int main() { int x = 1 && 0 ? 3 : 4; return x; }");
  const auto& fn = main_of(*tu);
  const auto* decl = stmt_cast<DeclStmt>(fn.body->body[0].get());
  const auto* cond = expr_cast<Conditional>(decl->decls[0]->init.get());
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(expr_cast<Binary>(cond->cond.get())->op, BinaryOp::LogicalAnd);
}

TEST(Parser, CastExpression) {
  auto tu = parse_src(
      "int main() { double d = 1.5; int x = (int)d; return x; }");
  const auto& fn = main_of(*tu);
  const auto* decl = stmt_cast<DeclStmt>(fn.body->body[1].get());
  const auto* cast = expr_cast<Cast>(decl->decls[0]->init.get());
  ASSERT_NE(cast, nullptr);
  EXPECT_EQ(cast->type.kind, TypeKind::Int);
}

TEST(Parser, MallocStylePointer) {
  auto tu = parse_src(
      "int main() { int* p; p = (int*)malloc(10 * sizeof(int)); p[0] = 1; "
      "return 0; }");
  const auto& fn = main_of(*tu);
  EXPECT_EQ(fn.body->body.size(), 4u);
}

TEST(Parser, FunctionDefinitionAndCall) {
  auto tu = parse_src(
      "void init(double* a, int n) { for (int i = 0; i < n; i++) a[i] = 0.0; }\n"
      "int main() { double v[100]; init(v, 100); return 0; }");
  EXPECT_NE(tu->find_function("init"), nullptr);
  EXPECT_NE(tu->find_function("main"), nullptr);
}

TEST(Parser, IfElseChain) {
  auto tu = parse_src(
      "int main() { int x = 1; if (x > 0) x = 2; else if (x < 0) x = 3; else "
      "x = 4; return x; }");
  const auto& fn = main_of(*tu);
  const auto* ifs = stmt_cast<IfStmt>(fn.body->body[1].get());
  ASSERT_NE(ifs, nullptr);
  EXPECT_NE(ifs->else_branch, nullptr);
}

TEST(Parser, WhileAndDoWhile) {
  auto tu = parse_src(
      "int main() { int i = 0; while (i < 3) i++; do { i--; } while (i > 0); "
      "return i; }");
  const auto& fn = main_of(*tu);
  EXPECT_EQ(fn.body->body[1]->kind, StmtKind::While);
  EXPECT_EQ(fn.body->body[2]->kind, StmtKind::Do);
}

TEST(Parser, BreakContinueReturn) {
  auto tu = parse_src(
      "int main() { for (int i = 0; i < 9; i++) { if (i == 2) continue; if "
      "(i == 5) break; } return 0; }");
  EXPECT_NE(tu->find_function("main"), nullptr);
}

TEST(Parser, ThrowsOnMalformedInput) {
  EXPECT_THROW(parse_src("int main() {"), ParseError);
  EXPECT_THROW(parse_src("int main() { x y z; }"), ParseError);
  EXPECT_THROW(parse_src("42;"), ParseError);
}

// ----------------------------------------------------------- OpenMP

TEST(OmpPragma, ParallelForWithClauses) {
  auto d = parse_omp_pragma(
      " omp parallel for private(i,j) shared(a) schedule(dynamic, 4)",
      {1, 1});
  EXPECT_EQ(d.kind, OmpDirectiveKind::ParallelFor);
  const auto* priv = d.find_clause(OmpClauseKind::Private);
  ASSERT_NE(priv, nullptr);
  EXPECT_EQ(priv->vars, (std::vector<std::string>{"i", "j"}));
  const auto* sched = d.find_clause(OmpClauseKind::Schedule);
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->arg, "dynamic");
  ASSERT_NE(sched->expr, nullptr);
}

TEST(OmpPragma, ReductionOperators) {
  auto d = parse_omp_pragma(" omp parallel for reduction(+:sum)", {1, 1});
  const auto* red = d.find_clause(OmpClauseKind::Reduction);
  ASSERT_NE(red, nullptr);
  EXPECT_EQ(red->arg, "+");
  EXPECT_EQ(red->vars, (std::vector<std::string>{"sum"}));

  auto d2 = parse_omp_pragma(" omp parallel for reduction(max:best)", {1, 1});
  EXPECT_EQ(d2.find_clause(OmpClauseKind::Reduction)->arg, "max");
}

TEST(OmpPragma, CriticalWithName) {
  auto d = parse_omp_pragma(" omp critical (updatelock)", {1, 1});
  EXPECT_EQ(d.kind, OmpDirectiveKind::Critical);
  EXPECT_EQ(d.critical_name, "updatelock");
}

TEST(OmpPragma, AtomicKinds) {
  EXPECT_EQ(parse_omp_pragma(" omp atomic", {1, 1}).atomic_kind,
            OmpAtomicKind::Update);
  EXPECT_EQ(parse_omp_pragma(" omp atomic read", {1, 1}).atomic_kind,
            OmpAtomicKind::Read);
  EXPECT_EQ(parse_omp_pragma(" omp atomic capture", {1, 1}).atomic_kind,
            OmpAtomicKind::Capture);
}

TEST(OmpPragma, TaskDepend) {
  auto d = parse_omp_pragma(" omp task depend(out: x) depend(in: y)", {1, 1});
  EXPECT_EQ(d.kind, OmpDirectiveKind::Task);
  auto deps = d.find_clauses(OmpClauseKind::Depend);
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_EQ(deps[0]->arg, "out");
  EXPECT_EQ(deps[1]->vars, (std::vector<std::string>{"y"}));
}

TEST(OmpPragma, DependWithArraySection) {
  auto d = parse_omp_pragma(" omp task depend(inout: a[i])", {1, 1});
  const auto* dep = d.find_clause(OmpClauseKind::Depend);
  ASSERT_NE(dep, nullptr);
  EXPECT_EQ(dep->vars, (std::vector<std::string>{"a[i]"}));
}

TEST(OmpPragma, TargetVariants) {
  EXPECT_EQ(parse_omp_pragma(" omp target map(tofrom: a)", {1, 1}).kind,
            OmpDirectiveKind::Target);
  EXPECT_EQ(parse_omp_pragma(" omp target parallel for", {1, 1}).kind,
            OmpDirectiveKind::TargetParallelFor);
  EXPECT_EQ(parse_omp_pragma(
                " omp target teams distribute parallel for", {1, 1})
                .kind,
            OmpDirectiveKind::TargetParallelFor);
}

TEST(OmpPragma, SimdAndSafelen) {
  auto d = parse_omp_pragma(" omp simd safelen(8)", {1, 1});
  EXPECT_EQ(d.kind, OmpDirectiveKind::Simd);
  EXPECT_EQ(d.find_clause(OmpClauseKind::Safelen)->int_arg, 8);
}

TEST(OmpPragma, CollapseNowaitOrdered) {
  auto d = parse_omp_pragma(" omp for collapse(2) nowait ordered", {1, 1});
  EXPECT_EQ(d.find_clause(OmpClauseKind::Collapse)->int_arg, 2);
  EXPECT_TRUE(d.has_clause(OmpClauseKind::Nowait));
  EXPECT_TRUE(d.has_clause(OmpClauseKind::Ordered));
}

TEST(OmpPragma, ThreadprivateAndFlush) {
  auto d = parse_omp_pragma(" omp threadprivate(counter)", {1, 1});
  EXPECT_EQ(d.kind, OmpDirectiveKind::Threadprivate);
  ASSERT_EQ(d.clauses.size(), 1u);
  EXPECT_EQ(d.clauses[0].vars, (std::vector<std::string>{"counter"}));
}

TEST(OmpPragma, UnknownDirectiveThrows) {
  EXPECT_THROW(parse_omp_pragma(" omp bogus", {1, 1}), ParseError);
  EXPECT_THROW(parse_omp_pragma(" omp parallel for frobnicate(x)", {1, 1}),
               ParseError);
}

TEST(OmpStmtParsing, DirectiveAttachesToStatement) {
  auto tu = parse_src(
      "int main() {\n"
      "  int a[100];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 100; i++) a[i] = i;\n"
      "  return 0;\n"
      "}\n");
  const auto& fn = main_of(*tu);
  const auto* omp = stmt_cast<OmpStmt>(fn.body->body[1].get());
  ASSERT_NE(omp, nullptr);
  EXPECT_EQ(omp->directive.kind, OmpDirectiveKind::ParallelFor);
  EXPECT_EQ(omp->body->kind, StmtKind::For);
}

TEST(OmpStmtParsing, StandaloneDirectivesHaveNoBody) {
  auto tu = parse_src(
      "int main() {\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp barrier\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const auto& fn = main_of(*tu);
  const auto* par = stmt_cast<OmpStmt>(fn.body->body[0].get());
  ASSERT_NE(par, nullptr);
  const auto* block = stmt_cast<CompoundStmt>(par->body.get());
  ASSERT_NE(block, nullptr);
  const auto* barrier = stmt_cast<OmpStmt>(block->body[0].get());
  ASSERT_NE(barrier, nullptr);
  EXPECT_EQ(barrier->directive.kind, OmpDirectiveKind::Barrier);
  EXPECT_EQ(barrier->body, nullptr);
}

TEST(OmpStmtParsing, SectionsStructure) {
  auto tu = parse_src(
      "int main() {\n"
      "#pragma omp parallel sections\n"
      "  {\n"
      "#pragma omp section\n"
      "    { }\n"
      "#pragma omp section\n"
      "    { }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const auto& fn = main_of(*tu);
  const auto* omp = stmt_cast<OmpStmt>(fn.body->body[0].get());
  ASSERT_NE(omp, nullptr);
  EXPECT_EQ(omp->directive.kind, OmpDirectiveKind::ParallelSections);
}


TEST(DirectivePrinting, RoundTripsThroughPragmaParser) {
  // Rendering a parsed directive and re-parsing it yields an equivalent
  // directive, across a representative clause zoo.
  const char* pragmas[] = {
      " omp parallel for private(i,j) shared(a) schedule(dynamic,4) nowait",
      " omp parallel for reduction(+:sum) reduction(max:best) collapse(2)",
      " omp critical (tag)",
      " omp atomic capture",
      " omp task depend(out:x) depend(in:y) firstprivate(i)",
      " omp target teams distribute parallel for map(tofrom:a) device(0)",
      " omp simd safelen(8)",
      " omp for ordered schedule(static,2)",
      " omp single nowait",
      " omp parallel sections num_threads(3)",
  };
  for (const char* text : pragmas) {
    const OmpDirective first = parse_omp_pragma(text, {1, 1});
    const std::string printed = directive_to_string(first);
    ASSERT_EQ(printed.rfind("#pragma", 0), 0u) << printed;
    const OmpDirective second =
        parse_omp_pragma(printed.substr(7), {1, 1});  // strip "#pragma"
    EXPECT_EQ(second.kind, first.kind) << text;
    EXPECT_EQ(second.clauses.size(), first.clauses.size()) << text;
    EXPECT_EQ(second.critical_name, first.critical_name) << text;
    EXPECT_EQ(second.atomic_kind, first.atomic_kind) << text;
    EXPECT_EQ(directive_to_string(second), printed) << text;
  }
}

// ----------------------------------------------------------- parse_program

TEST(ParseProgram, LocationsAreInTrimmedCoordinates) {
  const char* src =
      "/* A loop with loop-carried anti-dependence.\n"
      "   Data race pair: a[i+1]@6:10:R vs. a[i]@6:5:W */\n"
      "int main() {\n"
      "  int a[100];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 99; i++)\n"
      "    a[i] = a[i+1] + 1;\n"
      "  return 0;\n"
      "}\n";
  Program p = parse_program(src);
  // Trimmed code starts at `int main`.
  EXPECT_EQ(p.strip.to_trimmed_line(3), 1);
  const FunctionDecl* fn = p.unit->find_function("main");
  ASSERT_NE(fn, nullptr);
  // The assignment lives on trimmed line 5.
  const auto* omp = stmt_cast<OmpStmt>(fn->body->body[1].get());
  ASSERT_NE(omp, nullptr);
  const auto* loop = stmt_cast<ForStmt>(omp->body.get());
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->body->loc.line, 5);
}

TEST(ParseProgram, RoundTripThroughPrinterReparses) {
  const char* src =
      "int sum = 0;\n"
      "int main() {\n"
      "  int a[50];\n"
      "#pragma omp parallel for reduction(+:sum)\n"
      "  for (int i = 0; i < 50; i++) sum += a[i];\n"
      "  printf(\"%d\\n\", sum);\n"
      "  return 0;\n"
      "}\n";
  Program p = parse_program(src);
  const std::string printed = unit_to_string(*p.unit);
  // The printed form must itself parse.
  Program p2 = parse_program(printed);
  EXPECT_EQ(unit_to_string(*p2.unit), printed);
}

}  // namespace
}  // namespace drbml::minic
