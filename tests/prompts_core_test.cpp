// Tests for the prompt library (Listings 4-9) and the core detector
// facade.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "prompts/prompts.hpp"
#include "support/error.hpp"

namespace drbml {
namespace {

// ------------------------------------------------------------- prompts

TEST(Prompts, TemplatesMatchPaperListings) {
  // Listing 4 opener.
  EXPECT_NE(prompts::basic_prompt_1_template().find(
                "You are an expert in High-Performance Computing."),
            std::string::npos);
  EXPECT_NE(prompts::basic_prompt_1_template().find(
                "either 'yes' for the presence of a data race or 'no'"),
            std::string::npos);
  // Listing 5 JSON keys.
  for (const char* key :
       {"variable_names", "variable_locations", "operation_types"}) {
    EXPECT_NE(prompts::basic_prompt_2_template().find(key),
              std::string::npos);
  }
  // Listing 6 embeds the race definition.
  EXPECT_NE(prompts::tool_emulation_template().find(
                "two or more threads access the same memory location"),
            std::string::npos);
  // Listing 7 splits analysis from the verdict.
  EXPECT_NE(prompts::cot_step1_template().find("Analyze data dependence"),
            std::string::npos);
  EXPECT_EQ(prompts::cot_step2_template().find("{Code_to_analyze}"),
            std::string::npos);
}

TEST(Prompts, RenderSubstitutesPlaceholder) {
  const std::string out =
      prompts::render(prompts::basic_prompt_1_template(), "int main(){}");
  EXPECT_NE(out.find("int main(){}"), std::string::npos);
  EXPECT_EQ(out.find("{Code_to_analyze}"), std::string::npos);
}

TEST(Prompts, DetectionChatShapes) {
  EXPECT_EQ(prompts::detection_chat(prompts::Style::P1, "x").size(), 1u);
  EXPECT_EQ(prompts::detection_chat(prompts::Style::P2, "x").size(), 1u);
  const prompts::Chat cot = prompts::detection_chat(prompts::Style::P3, "x");
  ASSERT_EQ(cot.size(), 2u);
  EXPECT_EQ(cot[0].role, "user");
  EXPECT_NE(cot[0].content.find("x"), std::string::npos);
  // Second turn carries no code (it refers to the prior analysis).
  EXPECT_EQ(cot[1].content.find("int main"), std::string::npos);
}

TEST(Prompts, StyleNames) {
  EXPECT_STREQ(prompts::style_name(prompts::Style::P1), "p1");
  EXPECT_STREQ(prompts::style_name(prompts::Style::BP2), "BP2");
}

TEST(Prompts, FinetunePairsFollowListings) {
  EXPECT_EQ(prompts::finetune_detection_response(true), "yes");
  EXPECT_EQ(prompts::finetune_detection_response(false), "no");
  EXPECT_NE(prompts::finetune_varid_prompt("CODE").find("JSON"),
            std::string::npos);
}

// ------------------------------------------------------------- core

const char* kRacy =
    "int main() {\n"
    "  int a[40];\n"
    "#pragma omp parallel for\n"
    "  for (int i = 0; i < 39; i++) a[i] = a[i+1];\n"
    "  return 0;\n"
    "}\n";

const char* kClean =
    "int main() {\n"
    "  int a[40];\n"
    "#pragma omp parallel for\n"
    "  for (int i = 0; i < 40; i++) a[i] = i;\n"
    "  return 0;\n"
    "}\n";

TEST(CoreDetector, ClassicalDetectorsAgreeOnEasyCases) {
  for (const char* spec : {"static", "dynamic", "hybrid"}) {
    auto detector = core::make_detector(spec);
    EXPECT_TRUE(detector->analyze(kRacy).race) << spec;
    EXPECT_FALSE(detector->analyze(kClean).race) << spec;
  }
}

TEST(CoreDetector, HybridMergesPairs) {
  auto hybrid = core::make_detector("hybrid");
  const core::RaceVerdict v = hybrid->analyze(kRacy);
  EXPECT_TRUE(v.race);
  EXPECT_FALSE(v.pairs.empty());
}

TEST(CoreDetector, LlmDetectorReturnsResponseText) {
  auto llm = core::make_detector("llm:gpt4:p1");
  const core::RaceVerdict v = llm->analyze(kRacy);
  EXPECT_FALSE(v.model_response.empty());
}

TEST(CoreDetector, SpecParsing) {
  EXPECT_EQ(core::make_detector("llm:starchat:p3")->name(),
            "llm:starchat:p3");
  EXPECT_EQ(core::make_detector("llm:gpt35")->name(), "llm:gpt35:p1");
  EXPECT_THROW(core::make_detector("nonsense"), Error);
  EXPECT_THROW(core::make_detector("llm:unknown-model"), Error);
  EXPECT_THROW(core::make_detector("llm:gpt4:p9"), Error);
}

TEST(CoreDetector, AvailableDetectorsAllConstruct) {
  for (const std::string& spec : core::available_detectors()) {
    EXPECT_NO_THROW({ auto d = core::make_detector(spec); }) << spec;
  }
}

TEST(CoreDetector, DeterministicVerdicts) {
  auto llm = core::make_detector("llm:llama2:p1");
  const auto a = llm->analyze(kRacy);
  const auto b = llm->analyze(kRacy);
  EXPECT_EQ(a.race, b.race);
  EXPECT_EQ(a.model_response, b.model_response);
}

}  // namespace
}  // namespace drbml
