// Serve-daemon suite: TaskPool scheduling + backpressure, the NDJSON
// protocol (per-verb round trips, structured rejection of malformed
// requests), admission control under saturation, deadline expiry,
// priority ordering, cross-jobs byte identity, graceful-shutdown drain
// (including the cache-snapshot flush), and the ArtifactCache LRU byte
// budget with deferred reclamation.
//
// Worker-blocking idiom: `respond` callbacks run on the worker thread
// after the verb executes, so a callback that parks on a latch pins that
// worker deterministically -- letting tests fill the bounded queue, age
// a queued deadline past expiry, or stack up priorities before any of
// them run. No sleeps are load-bearing; latches sequence everything.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "drb/corpus.hpp"
#include "eval/artifact_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"

namespace drbml::serve {
namespace {

constexpr const char* kRacyCode =
    "int main() {\n"
    "  int sum = 0;\n"
    "  int a[100];\n"
    "#pragma omp parallel for\n"
    "  for (int i = 0; i < 100; i++) sum = sum + a[i];\n"
    "  return sum;\n"
    "}\n";

constexpr const char* kSafeCode =
    "int main() {\n"
    "  int a[100];\n"
    "#pragma omp parallel for\n"
    "  for (int i = 0; i < 100; i++) a[i] = i;\n"
    "  return 0;\n"
    "}\n";

/// One-shot latch: workers park in wait(), the test releases them all.
class Latch {
 public:
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }
  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

std::string request_line(const std::string& id, const std::string& verb,
                         const std::string& code,
                         const std::string& extra = "") {
  return "{\"id\":\"" + id + "\",\"verb\":\"" + verb + "\",\"code\":\"" +
         json::escape(code) + "\"" + extra + "}";
}

json::Value parse_response(const std::string& line) {
  return json::parse(line);
}

std::string error_kind(const json::Value& response) {
  return response.as_object().at("error").as_object().at("kind").as_string();
}

// ------------------------------------------------------------- TaskPool

TEST(TaskPool, ExecutesEverythingSubmitted) {
  support::TaskPool pool(4, 0);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.try_submit(0, [&] { ran.fetch_add(1); }));
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.executed(), 100u);
  EXPECT_EQ(pool.task_exceptions(), 0u);
}

TEST(TaskPool, HigherPriorityRunsFirstFifoWithin) {
  support::TaskPool pool(1, 0);
  Latch gate;
  std::atomic<bool> blocked{false};
  ASSERT_TRUE(pool.try_submit(0, [&] {
    blocked.store(true);
    gate.wait();
  }));
  while (!blocked.load()) std::this_thread::yield();
  // Queued while the only worker is pinned; the pool must reorder.
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(pool.try_submit(0, record(1)));
  ASSERT_TRUE(pool.try_submit(5, record(2)));
  ASSERT_TRUE(pool.try_submit(1, record(3)));
  ASSERT_TRUE(pool.try_submit(5, record(4)));
  gate.open();
  pool.drain();
  EXPECT_EQ(order, (std::vector<int>{2, 4, 3, 1}));
}

TEST(TaskPool, BoundedQueueRefusesWhenFull) {
  support::TaskPool pool(1, 1);
  Latch gate;
  std::atomic<bool> blocked{false};
  ASSERT_TRUE(pool.try_submit(0, [&] {
    blocked.store(true);
    gate.wait();
  }));
  while (!blocked.load()) std::this_thread::yield();
  EXPECT_TRUE(pool.try_submit(0, [] {}));   // fills the queue slot
  EXPECT_FALSE(pool.try_submit(0, [] {}));  // backpressure
  EXPECT_FALSE(pool.try_submit(9, [] {}));  // priority does not bypass
  gate.open();
  pool.drain();
  EXPECT_EQ(pool.executed(), 2u);
}

TEST(TaskPool, CloseStopsAdmissionButRunsQueuedWork) {
  support::TaskPool pool(2, 0);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.try_submit(0, [&] { ran.fetch_add(1); }));
  }
  pool.close();
  EXPECT_TRUE(pool.closed());
  EXPECT_FALSE(pool.try_submit(0, [&] { ran.fetch_add(1); }));
  pool.drain();
  EXPECT_EQ(ran.load(), 8);
}

TEST(TaskPool, TaskExceptionsAreCountedNotFatal) {
  support::TaskPool pool(2, 0);
  ASSERT_TRUE(pool.try_submit(0, [] { throw std::runtime_error("boom"); }));
  ASSERT_TRUE(pool.try_submit(0, [] {}));
  pool.drain();
  EXPECT_EQ(pool.task_exceptions(), 1u);
  EXPECT_EQ(pool.executed(), 2u);
  // The pool survives a throwing task.
  std::atomic<bool> ran{false};
  ASSERT_TRUE(pool.try_submit(0, [&] { ran.store(true); }));
  pool.drain();
  EXPECT_TRUE(ran.load());
}

// ------------------------------------------------- protocol round trips

ServerOptions small_server() {
  ServerOptions opts;
  opts.jobs = 2;
  opts.queue_limit = 0;
  return opts;
}

TEST(ServeProtocol, AnalyzeStaticRoundTrip) {
  Server server(small_server());
  const json::Value r = parse_response(
      server.handle_line(request_line("a1", "analyze", kRacyCode,
                                      ",\"detector\":\"static\"")));
  EXPECT_EQ(r.as_object().at("id").as_string(), "a1");
  EXPECT_TRUE(r.as_object().at("ok").as_bool());
  EXPECT_EQ(r.as_object().at("verb").as_string(), "analyze");
  const json::Object& result = r.as_object().at("result").as_object();
  EXPECT_TRUE(result.at("race").as_bool());
  EXPECT_FALSE(result.at("pairs").as_array().empty());
}

TEST(ServeProtocol, AnalyzeHybridAndDynamicRoundTrip) {
  Server server(small_server());
  for (const char* detector : {"hybrid", "dynamic"}) {
    const json::Value r = parse_response(server.handle_line(request_line(
        "d1", "analyze", kRacyCode,
        std::string(",\"detector\":\"") + detector + "\"")));
    ASSERT_TRUE(r.as_object().at("ok").as_bool()) << detector;
    EXPECT_TRUE(
        r.as_object().at("result").as_object().at("race").as_bool())
        << detector;
  }
}

TEST(ServeProtocol, AnalyzeSafeCodeReportsNoRace) {
  Server server(small_server());
  const json::Value r = parse_response(server.handle_line(
      request_line("s1", "analyze", kSafeCode, ",\"detector\":\"static\"")));
  ASSERT_TRUE(r.as_object().at("ok").as_bool());
  EXPECT_FALSE(
      r.as_object().at("result").as_object().at("race").as_bool());
}

TEST(ServeProtocol, LintRoundTrip) {
  Server server(small_server());
  const json::Value r =
      parse_response(server.handle_line(request_line("l1", "lint", kRacyCode)));
  ASSERT_TRUE(r.as_object().at("ok").as_bool());
  const json::Object& result = r.as_object().at("result").as_object();
  EXPECT_FALSE(result.at("diagnostics").as_array().empty());
}

TEST(ServeProtocol, FixRoundTrip) {
  Server server(small_server());
  const json::Value r =
      parse_response(server.handle_line(request_line("f1", "fix", kRacyCode)));
  ASSERT_TRUE(r.as_object().at("ok").as_bool());
  const json::Object& result = r.as_object().at("result").as_object();
  EXPECT_TRUE(result.contains("status"));
}

TEST(ServeProtocol, ExploreRoundTrip) {
  Server server(small_server());
  const json::Value r = parse_response(
      server.handle_line(request_line("x1", "explore", kRacyCode)));
  ASSERT_TRUE(r.as_object().at("ok").as_bool());
  const json::Object& result = r.as_object().at("result").as_object();
  EXPECT_TRUE(result.contains("race"));
  EXPECT_TRUE(result.contains("schedules_run"));
}

TEST(ServeProtocol, StatsReportsInstanceAccounting) {
  Server server(small_server());
  (void)server.handle_line(request_line("w1", "lint", kSafeCode));
  const json::Value r = parse_response(
      server.handle_line("{\"id\":\"st1\",\"verb\":\"stats\"}"));
  ASSERT_TRUE(r.as_object().at("ok").as_bool());
  const json::Object& srv =
      r.as_object().at("result").as_object().at("server").as_object();
  EXPECT_GE(srv.at("requests").as_int(), 2);
  EXPECT_GE(srv.at("responses_ok").as_int(), 1);
  const json::Object& cache =
      r.as_object().at("result").as_object().at("cache").as_object();
  EXPECT_GE(cache.at("probes").as_int(), 1);
}

TEST(ServeProtocol, EntryResolvesCorpusPrograms) {
  Server server(small_server());
  const json::Value r = parse_response(server.handle_line(
      "{\"id\":\"e1\",\"verb\":\"analyze\",\"detector\":\"static\","
      "\"entry\":\"DRB001-antidep1-orig-yes.c\"}"));
  ASSERT_TRUE(r.as_object().at("ok").as_bool());
  EXPECT_TRUE(
      r.as_object().at("result").as_object().at("race").as_bool());
}

// ------------------------------------------------- malformed rejections

TEST(ServeProtocol, MalformedRequestsGetStructuredErrors) {
  Server server(small_server());
  const struct {
    const char* line;
    const char* kind;
  } cases[] = {
      {"this is not json", "bad_json"},
      {"[1,2,3]", "bad_request"},  // valid JSON, not a request object
      {"{\"verb\":\"stats\"}", "bad_request"},           // missing id
      {"{\"id\":\"\",\"verb\":\"stats\"}", "bad_request"},  // empty id
      {"{\"id\":\"q\",\"verb\":\"frobnicate\"}", "bad_request"},
      {"{\"id\":\"q\",\"verb\":\"analyze\"}", "bad_request"},  // no code
      {"{\"id\":\"q\",\"verb\":\"analyze\",\"code\":\"int main(){}\","
       "\"entry\":\"x.c\"}",
       "bad_request"},  // code XOR entry
      {"{\"id\":\"q\",\"verb\":\"analyze\",\"entry\":\"no-such-entry.c\"}",
       "bad_request"},
      {"{\"id\":\"q\",\"verb\":\"analyze\",\"code\":\"int main(){}\","
       "\"detector\":\"psychic\"}",
       "bad_request"},
      {"{\"id\":\"q\",\"verb\":\"lint\",\"code\":\"int main(){}\","
       "\"deadline_ms\":-5}",
       "bad_request"},
      {"{\"id\":\"q\",\"verb\":\"lint\",\"code\":\"int main(){}\","
       "\"priority\":\"high\"}",
       "bad_request"},
  };
  for (const auto& c : cases) {
    const json::Value r = parse_response(server.handle_line(c.line));
    EXPECT_FALSE(r.as_object().at("ok").as_bool()) << c.line;
    EXPECT_EQ(error_kind(r), c.kind) << c.line;
    EXPECT_FALSE(
        r.as_object().at("error").as_object().at("message").as_string().empty())
        << c.line;
  }
}

TEST(ServeProtocol, UnparseableCodeIsAnalysisFailedNotCrash) {
  Server server(small_server());
  const json::Value r = parse_response(server.handle_line(
      request_line("u1", "lint", "int main( { this will not parse")));
  EXPECT_FALSE(r.as_object().at("ok").as_bool());
  EXPECT_EQ(error_kind(r), "analysis_failed");
}

// --------------------------------------------------- admission control

TEST(ServeAdmission, SaturatedQueueAnswersQueueFull) {
  ServerOptions opts;
  opts.jobs = 1;
  opts.queue_limit = 1;
  Server server(opts);

  Latch gate;
  std::atomic<bool> worker_pinned{false};
  server.submit_line(request_line("pin", "lint", kSafeCode),
                     [&](std::string) {
                       worker_pinned.store(true);
                       gate.wait();
                     });
  while (!worker_pinned.load()) std::this_thread::yield();

  std::mutex mu;
  std::map<std::string, std::string> kinds;  // id -> error kind or "ok"
  std::condition_variable cv;
  std::size_t responded = 0;
  auto collect = [&](const std::string& id) {
    return [&, id](std::string response) {
      const json::Value r = parse_response(response);
      std::lock_guard<std::mutex> lock(mu);
      kinds[id] =
          r.as_object().at("ok").as_bool() ? "ok" : error_kind(r);
      ++responded;
      cv.notify_one();
    };
  };
  // Worker pinned: q1 takes the single queue slot, q2/q3 must be
  // refused *immediately* (inline), before the latch opens.
  server.submit_line(request_line("q1", "lint", kSafeCode), collect("q1"));
  server.submit_line(request_line("q2", "lint", kSafeCode), collect("q2"));
  server.submit_line(request_line("q3", "lint", kSafeCode), collect("q3"));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responded >= 2; });
    EXPECT_EQ(kinds.at("q2"), "queue_full");
    EXPECT_EQ(kinds.at("q3"), "queue_full");
  }
  gate.open();
  server.drain();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(kinds.at("q1"), "ok");  // queued work still completed
}

TEST(ServeAdmission, QueuedRequestPastDeadlineIsExpiredNotRun) {
  ServerOptions opts;
  opts.jobs = 1;
  opts.queue_limit = 0;
  Server server(opts);

  Latch gate;
  std::atomic<bool> worker_pinned{false};
  server.submit_line(request_line("pin", "lint", kSafeCode),
                     [&](std::string) {
                       worker_pinned.store(true);
                       gate.wait();
                     });
  while (!worker_pinned.load()) std::this_thread::yield();

  std::mutex mu;
  std::condition_variable cv;
  std::string verdict;
  server.submit_line(
      request_line("dl", "lint", kSafeCode, ",\"deadline_ms\":1"),
      [&](std::string response) {
        const json::Value r = parse_response(response);
        std::lock_guard<std::mutex> lock(mu);
        verdict = r.as_object().at("ok").as_bool() ? "ok" : error_kind(r);
        cv.notify_one();
      });
  // Age the queued request well past its 1 ms deadline, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.open();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !verdict.empty(); });
  }
  EXPECT_EQ(verdict, "deadline_expired");
  server.drain();
}

TEST(ServeAdmission, HigherPriorityRequestsRunFirst) {
  ServerOptions opts;
  opts.jobs = 1;
  opts.queue_limit = 0;
  Server server(opts);

  Latch gate;
  std::atomic<bool> worker_pinned{false};
  server.submit_line(request_line("pin", "lint", kSafeCode),
                     [&](std::string) {
                       worker_pinned.store(true);
                       gate.wait();
                     });
  while (!worker_pinned.load()) std::this_thread::yield();

  std::mutex mu;
  std::vector<std::string> order;
  auto record = [&](std::string response) {
    const json::Value r = parse_response(response);
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(r.as_object().at("id").as_string());
  };
  server.submit_line(request_line("low1", "lint", kSafeCode), record);
  server.submit_line(
      request_line("high", "lint", kSafeCode, ",\"priority\":10"), record);
  server.submit_line(request_line("low2", "lint", kSafeCode), record);
  gate.open();
  server.drain();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<std::string>{"high", "low1", "low2"}));
}

// ----------------------------------------------------------- shutdown

TEST(ServeShutdown, ShutdownAcksThenRefusesNewWork) {
  Server server(small_server());
  const json::Value ack = parse_response(
      server.handle_line("{\"id\":\"bye\",\"verb\":\"shutdown\"}"));
  ASSERT_TRUE(ack.as_object().at("ok").as_bool());
  EXPECT_TRUE(ack.as_object()
                  .at("result")
                  .as_object()
                  .at("draining")
                  .as_bool());
  EXPECT_TRUE(server.shutdown_requested());
  const json::Value refused = parse_response(
      server.handle_line(request_line("late", "lint", kSafeCode)));
  EXPECT_FALSE(refused.as_object().at("ok").as_bool());
  EXPECT_EQ(error_kind(refused), "shutting_down");
  server.drain();
}

TEST(ServeShutdown, DrainCompletesAdmittedWorkExactlyOnce) {
  ServerOptions opts;
  opts.jobs = 2;
  opts.queue_limit = 0;
  Server server(opts);
  std::atomic<int> responses{0};
  for (int i = 0; i < 12; ++i) {
    server.submit_line(
        request_line("r" + std::to_string(i), "lint", kSafeCode),
        [&](std::string) { responses.fetch_add(1); });
  }
  server.drain();
  EXPECT_EQ(responses.load(), 12);
  server.drain();  // idempotent
  EXPECT_EQ(responses.load(), 12);
}

TEST(ServeShutdown, DrainSavesCacheSnapshot) {
  const std::string path = ::testing::TempDir() + "serve_snapshot.cache";
  std::remove(path.c_str());
  {
    ServerOptions opts;
    opts.jobs = 1;
    opts.queue_limit = 0;
    opts.cache_snapshot = path;
    Server server(opts);
    (void)server.handle_line(request_line("s", "lint", kRacyCode));
    server.drain();
  }
  eval::ArtifactCache fresh;
  EXPECT_GT(fresh.load_snapshot(path), 0u);
  std::remove(path.c_str());
}

// ------------------------------------------------------- determinism

std::map<std::string, std::string> responses_at_jobs(int jobs) {
  ServerOptions opts;
  opts.jobs = jobs;
  opts.queue_limit = 0;
  Server server(opts);
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::string, std::string> by_id;
  std::size_t done = 0, sent = 0;
  int i = 0;
  for (const char* code : {kRacyCode, kSafeCode}) {
    for (const char* verb : {"analyze", "lint", "fix"}) {
      const std::string id = std::string(verb) + std::to_string(i);
      ++sent;
      server.submit_line(request_line(id, verb, code),
                         [&, id](std::string response) {
                           std::lock_guard<std::mutex> lock(mu);
                           by_id[id] = std::move(response);
                           ++done;
                           cv.notify_one();
                         });
    }
    ++i;
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == sent; });
  return by_id;
}

TEST(ServeDeterminism, ResponsesAreByteIdenticalAcrossJobs) {
  const auto one = responses_at_jobs(1);
  const auto eight = responses_at_jobs(8);
  ASSERT_EQ(one.size(), eight.size());
  for (const auto& [id, response] : one) {
    ASSERT_TRUE(eight.count(id)) << id;
    EXPECT_EQ(response, eight.at(id)) << id;
  }
}

// -------------------------------------------------- LRU byte budget

TEST(CacheBudget, ZeroBudgetNeverEvicts) {
  eval::ArtifactCache cache;
  for (int i = 0; i < 20; ++i) {
    (void)cache.ast_text("int main() { return " + std::to_string(i) + "; }\n");
  }
  EXPECT_EQ(cache.condemned_count(), 0u);
  EXPECT_EQ(cache.size(), 20u);
}

TEST(CacheBudget, EvictsLeastRecentlyUsedToBudget) {
  eval::ArtifactCache cache;
  cache.set_byte_budget(1);  // everything but the MRU entry must go
  const std::string first = "int main() { return 1; }\n";
  (void)cache.ast_text(first);
  (void)cache.ast_text("int main() { return 2; }\n");
  (void)cache.ast_text("int main() { return 3; }\n");
  // Each touch evicted the previous entry; only the MRU survives.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.condemned_count(), 2u);
  // A re-probe of an evicted key recomputes and returns the same value.
  const std::string again = cache.ast_text(first);
  EXPECT_FALSE(again.empty());
}

TEST(CacheBudget, ReclaimRespectsActiveTicks) {
  eval::ArtifactCache cache;
  cache.set_byte_budget(1);
  (void)cache.token_count("int main() { return 1; }\n");
  (void)cache.token_count("int main() { return 2; }\n");  // evicts #1 @ tick 1
  (void)cache.token_count("int main() { return 3; }\n");  // evicts #2 @ tick 2
  ASSERT_EQ(cache.condemned_count(), 2u);
  // A request active since tick 1 may still reference eviction 1 and 2.
  EXPECT_EQ(cache.reclaim_evicted(1), 0u);
  EXPECT_EQ(cache.condemned_count(), 2u);
  // Oldest active request started at tick 2: eviction 1 is unreachable.
  EXPECT_EQ(cache.reclaim_evicted(2), 1u);
  EXPECT_EQ(cache.condemned_count(), 1u);
  // No active requests at all.
  EXPECT_EQ(cache.reclaim_evicted(UINT64_MAX), 1u);
  EXPECT_EQ(cache.condemned_count(), 0u);
}

TEST(CacheBudget, LoweringBudgetEvictsImmediately) {
  eval::ArtifactCache cache;
  for (int i = 0; i < 10; ++i) {
    (void)cache.ast_text("int main() { return " + std::to_string(i) + "; }\n");
  }
  ASSERT_EQ(cache.size(), 10u);
  const std::uint64_t before = cache.resident_bytes();
  ASSERT_GT(before, 0u);
  cache.set_byte_budget(before / 2);
  EXPECT_LT(cache.resident_bytes(), before);
  EXPECT_GT(cache.condemned_count(), 0u);
  EXPECT_LT(cache.size(), 10u);
}

TEST(CacheBudget, SnapshotLoadRespectsBudget) {
  const std::string path = ::testing::TempDir() + "budget_snapshot.cache";
  std::remove(path.c_str());
  eval::ArtifactCache writer;
  for (int i = 0; i < 10; ++i) {
    (void)writer.ast_text("int main() { return " + std::to_string(i) +
                          "; }\n");
  }
  ASSERT_TRUE(writer.save_snapshot(path));

  eval::ArtifactCache reader;
  reader.set_byte_budget(writer.resident_bytes() / 2);
  const std::size_t loaded = reader.load_snapshot(path);
  EXPECT_GT(loaded, 0u);
  // Seeding respects the budget: later entries evicted earlier ones.
  EXPECT_LT(reader.size(), loaded);
  EXPECT_LE(reader.resident_bytes(),
            writer.resident_bytes() / 2 + 1024);  // MRU slack
  std::remove(path.c_str());
}

TEST(CacheBudget, EnvBudgetIsStrictlyParsed) {
  ::setenv("DRBML_CACHE_BUDGET", "4096", 1);
  EXPECT_EQ(eval::env_cache_budget(), 4096u);
  ::setenv("DRBML_CACHE_BUDGET", "lots", 1);
  EXPECT_EQ(eval::env_cache_budget(), 0u);
  ::setenv("DRBML_CACHE_BUDGET", "-3", 1);
  EXPECT_EQ(eval::env_cache_budget(), 0u);
  ::unsetenv("DRBML_CACHE_BUDGET");
  EXPECT_EQ(eval::env_cache_budget(), 0u);
}

}  // namespace
}  // namespace drbml::serve
