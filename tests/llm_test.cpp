// Tests for the simulated LLM substrate: tokenizers, feature extraction,
// personas, chat behaviour, and the fine-tuning trainer.
#include <gtest/gtest.h>

#include "dataset/drbml.hpp"
#include "llm/features.hpp"
#include "llm/finetune.hpp"
#include "llm/model.hpp"
#include "llm/persona.hpp"
#include "llm/tokenizer.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace drbml::llm {
namespace {

// ------------------------------------------------------------- tokenizer

TEST(SimpleTokenizer, SplitsCodeTokens) {
  SimpleTokenizer tok;
  auto tokens = tok.tokenize("a[i+1] = a[i] + 1;");
  // a [ i + 1 ] = a [ i ] + 1 ;
  EXPECT_EQ(tokens.size(), 14u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "[");
}

TEST(SimpleTokenizer, TwoCharOperatorsAreOneToken) {
  SimpleTokenizer tok;
  auto tokens = tok.tokenize("x += 1; y == z; i++;");
  int ops = 0;
  for (const auto& t : tokens) {
    if (t == "+=" || t == "==" || t == "++") ++ops;
  }
  EXPECT_EQ(ops, 3);
}

TEST(SimpleTokenizer, LongIdentifiersChunked) {
  SimpleTokenizer tok;
  auto tokens = tok.tokenize("extraordinarily_long_identifier");
  EXPECT_GT(tokens.size(), 1u);
  std::string joined;
  for (const auto& t : tokens) joined += t;
  EXPECT_EQ(joined, "extraordinarily_long_identifier");
}

TEST(SimpleTokenizer, CountMonotonicInLength) {
  SimpleTokenizer tok;
  const int small = tok.count_tokens("int x = 1;");
  const int large = tok.count_tokens(
      "int x = 1; int y = 2; int z = x + y; printf(\"%d\", z);");
  EXPECT_LT(small, large);
}

TEST(Bpe, EncodeDecodeRoundTrips) {
  BpeTokenizer bpe;
  std::vector<std::string> corpus = {
      "for (int i = 0; i < n; i++) a[i] = a[i] + 1;",
      "for (int j = 0; j < n; j++) b[j] = b[j] * 2;",
  };
  bpe.train(corpus, 50);
  EXPECT_GT(bpe.merge_count(), 0u);
  for (const auto& text : corpus) {
    EXPECT_EQ(bpe.decode(bpe.encode(text)), text);
  }
  // Unseen text still round-trips (bytes always available).
  const std::string unseen = "while (k != 7) { k <<= 1; }";
  EXPECT_EQ(bpe.decode(bpe.encode(unseen)), unseen);
}

TEST(Bpe, MergesCompressRepeatedPatterns) {
  BpeTokenizer bpe;
  std::string text;
  for (int i = 0; i < 50; ++i) text += "a[i] = a[i] + 1; ";
  bpe.train({text}, 100);
  const auto ids = bpe.encode(text);
  EXPECT_LT(ids.size(), text.size() / 3);
}

TEST(Bpe, UntrainedEncodesBytes) {
  BpeTokenizer bpe;
  const std::string s = "abc";
  const auto ids = bpe.encode(s);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 'a');
}

// ------------------------------------------------------------- features

TEST(Features, DetectsConstructs) {
  ProgramFeatures f = extract_features(
      "int main() {\n"
      "  int s = 0;\n"
      "#pragma omp parallel for reduction(+:s) schedule(static)\n"
      "  for (int i = 0; i < 10; i++) s += i;\n"
      "  return s;\n"
      "}\n");
  EXPECT_TRUE(f.parsed);
  EXPECT_TRUE(f.has_parallel_construct);
  EXPECT_TRUE(f.has_reduction);
  EXPECT_FALSE(f.has_critical);
  EXPECT_FALSE(f.static_race_conservative);
}

TEST(Features, RacyLoopYieldsEvidence) {
  ProgramFeatures f = extract_features(
      "int main() {\n"
      "  int a[50];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 49; i++) a[i] = a[i+1];\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(f.static_race_conservative);
  EXPECT_TRUE(f.static_race_optimistic);
  EXPECT_TRUE(f.evidence_consistent());
  EXPECT_FALSE(f.static_pairs.empty());
}

TEST(Features, IndirectIndexIsUncertain) {
  ProgramFeatures f = extract_features(
      "int main() {\n"
      "  int idx[50];\n"
      "  int a[50];\n"
      "  for (int i = 0; i < 50; i++) idx[i] = i;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 50; i++) a[idx[i]] = i;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(f.evidence_consistent());
}

TEST(Features, UnparseableCodeIsFlagged) {
  ProgramFeatures f = extract_features("this is not C at all {{{");
  EXPECT_FALSE(f.parsed);
}

// ------------------------------------------------------------- personas

TEST(Personas, FourModelsWithPaperContextWindows) {
  const auto& all = all_personas();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(gpt35_persona().context_tokens, 16384);
  EXPECT_EQ(gpt4_persona().context_tokens, 8192);
  EXPECT_EQ(llama2_persona().context_tokens, 4096);
  EXPECT_EQ(starchat_persona().context_tokens, 8192);
}

TEST(Personas, OnlyOpenSourceModelsFinetune) {
  EXPECT_FALSE(gpt35_persona().open_source);
  EXPECT_FALSE(gpt4_persona().open_source);
  EXPECT_TRUE(llama2_persona().open_source);
  EXPECT_TRUE(starchat_persona().open_source);
}

TEST(Personas, RatesDefinedForEveryStyle) {
  for (const Persona& p : all_personas()) {
    for (auto style : {prompts::Style::P1, prompts::Style::P2,
                       prompts::Style::P3, prompts::Style::BP2,
                       prompts::Style::BP1}) {
      const DetectionRates& r = p.rates_for(style);
      EXPECT_GT(r.yes_given_evidence_yes, 0.0);
      EXPECT_LT(r.yes_given_evidence_yes, 1.0);
    }
  }
}

// ------------------------------------------------------------- chat model

const char* kRacyCode =
    "int main() {\n"
    "  int a[60];\n"
    "#pragma omp parallel for\n"
    "  for (int i = 0; i < 59; i++) a[i] = a[i+1];\n"
    "  return 0;\n"
    "}\n";

TEST(ChatModel, DeterministicReplies) {
  ChatModel model(gpt4_persona());
  const auto chat = prompts::detection_chat(prompts::Style::P1, kRacyCode);
  const Reply a = model.chat(chat);
  const Reply b = model.chat(chat);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.prompt_tokens, b.prompt_tokens);
}

TEST(ChatModel, RepliesContainVerdictWord) {
  for (const Persona& p : all_personas()) {
    ChatModel model(p);
    const Reply r =
        model.chat(prompts::detection_chat(prompts::Style::P1, kRacyCode));
    const std::string lower = to_lower(r.text);
    EXPECT_TRUE(lower.find("yes") != std::string::npos ||
                lower.find("no") != std::string::npos)
        << p.name << ": " << r.text;
  }
}

TEST(ChatModel, ContextWindowEnforced) {
  Persona tiny = gpt4_persona();
  tiny.context_tokens = 10;
  ChatModel model(tiny);
  const Reply r =
      model.chat(prompts::detection_chat(prompts::Style::P1, kRacyCode));
  EXPECT_TRUE(r.context_exceeded);
}

TEST(ChatModel, OversizedCorpusEntriesExceedLlama2Window) {
  // The three oversized entries must not fit in the 4k window.
  ChatModel llama(llama2_persona());
  int exceeded = 0;
  for (const auto& e : dataset::dataset()) {
    const Reply r = llama.chat(
        prompts::detection_chat(prompts::Style::P1, e.trimmed_code));
    if (r.context_exceeded) ++exceeded;
  }
  EXPECT_EQ(exceeded, 3);
}

TEST(ChatModel, VaridReplyParsesAsStructuredOrProse) {
  ChatModel model(gpt4_persona());
  const Reply r = model.chat(prompts::varid_chat(kRacyCode));
  EXPECT_FALSE(r.text.empty());
}

TEST(ChatModel, ExtractCodeFindsEmbeddedProgram) {
  const std::string prompt =
      "You are an expert.\nExamine this.\n\n#include <stdio.h>\nint main() "
      "{ return 0; }\n";
  const std::string code = extract_code_from_prompt(prompt);
  EXPECT_EQ(code.find("#include"), 0u);
}

// ------------------------------------------------------------- fine-tuning

TEST(Finetune, FeaturizeIsDeterministicAndNormalized) {
  const FeatureVec a = featurize(kRacyCode);
  const FeatureVec b = featurize(kRacyCode);
  EXPECT_EQ(a.x, b.x);
  double norm = 0;
  for (int i = 0; i < kTokenDim; ++i) {
    norm += a.x[static_cast<std::size_t>(i)] * a.x[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(Finetune, AdapterLearnsSeparableLabels) {
  // Trained on evidence-consistent programs, the adapter must push the
  // decision toward the labels.
  std::vector<TrainSample> train;
  for (const auto& e : dataset::dataset()) {
    if (train.size() >= 60) break;
    TrainSample s;
    s.code = e.trimmed_code;
    s.label = e.data_race == 1;
    train.push_back(std::move(s));
  }
  ChatModel base(starchat_persona());
  FinetuneConfig config = starchat_finetune_config();
  config.alpha_scale = 1.0;  // uncapped for the separability check
  const Adapter adapter =
      finetune_detection(base, prompts::Style::P1, train, config);

  int correct = 0;
  for (const auto& s : train) {
    const double delta = adapter.predict(featurize(s.code));
    if ((delta > 0) == s.label) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(train.size() * 3) / 4);
}

TEST(Finetune, AlphaScalesAdapterOutput) {
  std::vector<TrainSample> train;
  for (const auto& e : dataset::dataset()) {
    if (train.size() >= 40) break;
    train.push_back({e.trimmed_code, e.data_race == 1});
  }
  ChatModel base(llama2_persona());
  FinetuneConfig config = llama2_finetune_config();
  config.alpha_scale = 1.0;
  const Adapter full =
      finetune_detection(base, prompts::Style::P1, train, config);
  config.alpha_scale = 0.1;
  const Adapter damped =
      finetune_detection(base, prompts::Style::P1, train, config);
  const FeatureVec f = featurize(train.front().code);
  EXPECT_NEAR(damped.predict(f), 0.1 * full.predict(f), 1e-9);
}

TEST(Finetune, EmptyTrainingSetYieldsZeroAdapter) {
  ChatModel base(llama2_persona());
  const Adapter adapter = finetune_detection(
      base, prompts::Style::P1, {}, llama2_finetune_config());
  EXPECT_EQ(adapter.predict(featurize(kRacyCode)), 0.0);
}

TEST(Finetune, AdapterChangesModelDecisionProbability) {
  ChatModel base(starchat_persona());
  const double before = base.decide(prompts::Style::P1, kRacyCode).p_yes;
  auto adapter = std::make_shared<Adapter>();
  adapter->u.fill(0.5);
  ChatModel tuned(starchat_persona());
  tuned.set_adapter(adapter);
  const double after = tuned.decide(prompts::Style::P1, kRacyCode).p_yes;
  EXPECT_NE(before, after);
}

TEST(Finetune, AdapterCheckpointRoundTrips) {
  std::vector<TrainSample> train;
  for (const auto& e : dataset::dataset()) {
    if (train.size() >= 30) break;
    train.push_back({e.trimmed_code, e.data_race == 1});
  }
  ChatModel base(starchat_persona());
  const Adapter trained = finetune_detection(
      base, prompts::Style::P1, train, starchat_finetune_config());
  const Adapter restored = Adapter::from_json(trained.to_json());
  EXPECT_EQ(restored.scale, trained.scale);
  const FeatureVec f = featurize(train.front().code);
  EXPECT_DOUBLE_EQ(restored.predict(f), trained.predict(f));
}

TEST(Finetune, CheckpointRejectsCorruptInput) {
  EXPECT_THROW(Adapter::from_json("{}"), Error);
  EXPECT_THROW(Adapter::from_json(
                   "{\"format\":\"drbml-lora-adapter-v1\",\"rank\":2,"
                   "\"scale\":1,\"u\":[1,2]}"),
               Error);
}

}  // namespace
}  // namespace drbml::llm
