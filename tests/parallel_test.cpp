// Thread-safety unit tests for the parallel executor and the memoization
// primitive (support/parallel.hpp): ordered results under adversarial
// task durations, exception propagation out of worker threads,
// exactly-once get-or-compute, and pool reuse across successive maps.
#include "support/parallel.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace drbml::support {
namespace {

TEST(ResolveJobs, PositiveValuesPassThrough) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
}

TEST(ResolveJobs, AutoReadsEnvironment) {
  ASSERT_EQ(setenv("DRBML_JOBS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(resolve_jobs(0), 5);
  ASSERT_EQ(setenv("DRBML_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(resolve_jobs(0), 1);  // falls back to hardware concurrency
  ASSERT_EQ(unsetenv("DRBML_JOBS"), 0);
  EXPECT_GE(resolve_jobs(0), 1);
}

TEST(ParallelMap, OrderedUnderAdversarialDurations) {
  // Early items sleep longest, so completion order is roughly the
  // reverse of input order; results must still land in input order.
  std::vector<int> items(64);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<int> out = parallel_map(8, items, [](const int& i) {
    std::this_thread::sleep_for(std::chrono::microseconds((64 - i) * 50));
    return i * i;
  });
  ASSERT_EQ(out.size(), items.size());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ParallelMap, SerialPathMatchesParallel) {
  std::vector<int> items(40);
  std::iota(items.begin(), items.end(), 0);
  auto fn = [](const int& i) { return i * 3 + 1; };
  EXPECT_EQ(parallel_map(1, items, fn), parallel_map(8, items, fn));
}

TEST(ParallelMap, RunsEveryItemExactlyOnce) {
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  std::atomic<int> calls{0};
  const std::vector<int> out = parallel_map(6, items, [&](const int& i) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return i;
  });
  EXPECT_EQ(calls.load(), 257);
  EXPECT_EQ(out, items);
}

TEST(ParallelMap, PropagatesWorkerExceptions) {
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  EXPECT_THROW(
      parallel_map(4, items,
                   [](const int& i) -> int {
                     if (i == 37) throw std::runtime_error("task 37 failed");
                     return i;
                   }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossSuccessiveMaps) {
  ThreadPool pool(4);
  std::vector<int> items(30);
  std::iota(items.begin(), items.end(), 0);
  for (int round = 0; round < 5; ++round) {
    const std::vector<int> out =
        parallel_map(pool, items, [round](const int& i) { return i + round; });
    for (int i = 0; i < 30; ++i) {
      ASSERT_EQ(out[static_cast<std::size_t>(i)], i + round);
    }
  }
}

TEST(ThreadPool, ReusableAfterBatchThatThrew) {
  ThreadPool pool(4);
  std::vector<int> items(20);
  std::iota(items.begin(), items.end(), 0);
  EXPECT_THROW(parallel_map(pool, items,
                            [](const int& i) -> int {
                              if (i % 7 == 3) throw std::runtime_error("boom");
                              return i;
                            }),
               std::runtime_error);
  // The pool must have fully drained; the next batch runs normally.
  const std::vector<int> out =
      parallel_map(pool, items, [](const int& i) { return i * 2; });
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 2);
  }
}

TEST(ThreadPool, InlinePoolRunsOnCallerInOrder) {
  ThreadPool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> order;
  pool.run(8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expect(8);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(OnceMap, ComputesEachKeyExactlyOnceUnderContention) {
  OnceMap<int> map;
  constexpr int kKeys = 100;
  constexpr int kThreads = 8;
  std::vector<std::atomic<int>> computes(kKeys);
  for (auto& c : computes) c.store(0);

  std::vector<std::thread> threads;
  std::vector<long> sums(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Every thread asks for every key, in a thread-dependent order.
      for (int k = 0; k < kKeys; ++k) {
        const int key = (k * 13 + t * 31) % kKeys;
        sums[static_cast<std::size_t>(t)] +=
            map.get_or_compute(static_cast<std::uint64_t>(key), [&] {
              computes[static_cast<std::size_t>(key)].fetch_add(1);
              return key * 10;
            });
      }
    });
  }
  for (auto& th : threads) th.join();

  long expect = 0;
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(computes[static_cast<std::size_t>(k)].load(), 1)
        << "key " << k << " computed more than once";
    expect += k * 10;
  }
  for (long s : sums) EXPECT_EQ(s, expect);
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kKeys));
}

TEST(OnceMap, ThrowingComputeRetriesAndReferencesAreStable) {
  OnceMap<std::string> map;
  int attempts = 0;
  EXPECT_THROW(map.get_or_compute(1, [&]() -> std::string {
    ++attempts;
    throw std::runtime_error("first attempt fails");
  }),
               std::runtime_error);
  const std::string& v = map.get_or_compute(1, [&] {
    ++attempts;
    return std::string("ok");
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(v, "ok");
  // Inserting many other keys must not invalidate the reference.
  for (std::uint64_t k = 2; k < 200; ++k) {
    (void)map.get_or_compute(k, [] { return std::string("x"); });
  }
  EXPECT_EQ(v, "ok");
}

}  // namespace
}  // namespace drbml::support
