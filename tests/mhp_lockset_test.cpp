// Golden tests for the barrier-aware MHP phase partition and the static
// lockset analysis: phase counts and boundary kinds for canonical
// barrier/nowait shapes, serial-region classification, and guard-set
// rendering/intersection.
#include <gtest/gtest.h>

#include "analysis/lockset.hpp"
#include "analysis/mhp.hpp"
#include "analysis/race.hpp"
#include "analysis/resolve.hpp"
#include "drb/corpus.hpp"
#include "minic/parser.hpp"

namespace drbml::analysis {
namespace {

struct Parsed {
  minic::Program prog;
  std::vector<ParallelRegion> regions;
};

Parsed collect(const char* src) {
  minic::Program prog = minic::parse_program(src);
  Resolution res = resolve(*prog.unit);
  std::vector<ParallelRegion> regions = collect_regions(*prog.unit, res, {});
  return {std::move(prog), std::move(regions)};
}

const AccessInfo& access(const std::vector<ParallelRegion>& regions,
                         const std::string& text, bool is_write) {
  for (const auto& region : regions) {
    for (const auto& a : region.accesses) {
      if (a.text == text && a.is_write == is_write) return a;
    }
  }
  throw std::runtime_error("no access " + text);
}

// ------------------------------------------------------- phase partition

TEST(PhasePartition, ExplicitBarrierSplitsTwoPhases) {
  const Parsed p = collect(R"(
int a[8];
int b[8];
int main() {
#pragma omp parallel num_threads(4)
  {
    a[omp_get_thread_num()] = 1;
#pragma omp barrier
    b[omp_get_thread_num()] = a[0];
  }
  return 0;
}
)");
  ASSERT_EQ(p.regions.size(), 1u);
  const PhasePartition part = PhasePartition::of(p.regions[0]);
  EXPECT_EQ(part.phases, 2);
  ASSERT_EQ(part.boundaries.size(), 1u);
  EXPECT_EQ(part.boundaries[0].kind, "barrier");
  EXPECT_EQ(part.boundaries[0].phase_after, 1);
}

TEST(PhasePartition, WorksharingJoinStartsNewPhase) {
  const Parsed p = collect(R"(
int a[100];
int total;
int main() {
  int i;
#pragma omp parallel
  {
#pragma omp for
    for (i = 0; i < 100; i++)
      a[i] = i;
#pragma omp single
    total = a[0];
  }
  return 0;
}
)");
  ASSERT_EQ(p.regions.size(), 1u);
  const PhasePartition part = PhasePartition::of(p.regions[0]);
  EXPECT_GE(part.phases, 2);
  ASSERT_FALSE(part.boundaries.empty());
  EXPECT_EQ(part.boundaries[0].kind, "for-join");
}

TEST(PhasePartition, NowaitSuppressesTheJoin) {
  const Parsed p = collect(R"(
int a[100];
int main() {
  int i;
#pragma omp parallel
  {
#pragma omp for nowait
    for (i = 0; i < 100; i++)
      a[i] = i;
  }
  return 0;
}
)");
  ASSERT_EQ(p.regions.size(), 1u);
  const PhasePartition part = PhasePartition::of(p.regions[0]);
  EXPECT_EQ(part.phases, 1);
  EXPECT_TRUE(part.boundaries.empty());
}

TEST(PhasePartition, SingleBarrierCorpusEntryGolden) {
  const drb::CorpusEntry* e = drb::find_entry("DRB037-singlebarrier-orig-no.c");
  ASSERT_NE(e, nullptr);
  minic::Program prog = minic::parse_program(e->body);
  Resolution res = resolve(*prog.unit);
  const auto regions = collect_regions(*prog.unit, res, {});
  ASSERT_FALSE(regions.empty());
  const PhasePartition part = PhasePartition::of(regions[0]);
  EXPECT_GE(part.phases, 2);
}

TEST(PhasePartition, PhasesSeparateAccessesAcrossTheBarrier) {
  const Parsed p = collect(R"(
int a[8];
int main() {
#pragma omp parallel num_threads(4)
  {
    a[omp_get_thread_num()] = 1;
#pragma omp barrier
    a[omp_get_thread_num() + 1] = 2;
  }
  return 0;
}
)");
  const AccessInfo& w1 = access(p.regions, "a[omp_get_thread_num()]", true);
  const AccessInfo& w2 = access(p.regions, "a[omp_get_thread_num()+1]", true);
  Evidence ev;
  EXPECT_FALSE(may_happen_in_parallel(w1, w2, "a", MhpOptions{}, ev));
  EXPECT_EQ(ev.discharge_rule, "mhp.phase");
  EXPECT_NE(ev.phase_first, ev.phase_second);
}

// --------------------------------------------------------- serial regions

TEST(SerialRegion, IfZeroFoldsSerial) {
  const Parsed p = collect(R"(
int x;
int main() {
#pragma omp parallel if(0)
  x = x + 1;
  return 0;
}
)");
  ASSERT_EQ(p.regions.size(), 1u);
  const SerialRegionInfo info = classify_serial(p.regions[0]);
  EXPECT_TRUE(info.serial);
  EXPECT_NE(info.reason.find("if"), std::string::npos);
}

TEST(SerialRegion, NumThreadsOneFoldsSerial) {
  const Parsed p = collect(R"(
int x;
int main() {
#pragma omp parallel num_threads(1)
  x = x + 1;
  return 0;
}
)");
  ASSERT_EQ(p.regions.size(), 1u);
  EXPECT_TRUE(classify_serial(p.regions[0]).serial);
}

TEST(SerialRegion, RealTeamIsNotSerial) {
  const Parsed p = collect(R"(
int x;
int main() {
#pragma omp parallel num_threads(4)
  x = x + 1;
  return 0;
}
)");
  ASSERT_EQ(p.regions.size(), 1u);
  EXPECT_FALSE(classify_serial(p.regions[0]).serial);
}

TEST(SerialRegion, NestedTeamForkDefeatsTheFold) {
  // The outer region is serial, but a nested parallel construct forks a
  // team again -- the region must not be classified serial.
  const Parsed p = collect(R"(
int x;
int main() {
#pragma omp parallel num_threads(1)
  {
#pragma omp parallel num_threads(4)
    x = x + 1;
  }
  return 0;
}
)");
  ASSERT_FALSE(p.regions.empty());
  EXPECT_FALSE(classify_serial(p.regions[0]).serial);
}

// --------------------------------------------------------------- locksets

TEST(Lockset, NamedCriticalRendersItsName) {
  const Parsed p = collect(R"(
int x;
int main() {
#pragma omp parallel
  {
#pragma omp critical(lk)
    x = x + 1;
  }
  return 0;
}
)");
  const AccessInfo& w = access(p.regions, "x", true);
  const auto guards = lockset_of(w, LocksetOptions{});
  ASSERT_EQ(guards.size(), 1u);
  EXPECT_EQ(guards[0], "critical(lk)");
}

TEST(Lockset, UnnamedAndNamedCriticalDoNotIntersect) {
  const Parsed p = collect(R"(
int x;
int main() {
#pragma omp parallel
  {
#pragma omp critical
    x = x + 1;
#pragma omp critical(other)
    x = x - 1;
  }
  return 0;
}
)");
  const AccessInfo& plus = access(p.regions, "x", true);
  AccessInfo minus = plus;
  for (const auto& region : p.regions) {
    for (const auto& a : region.accesses) {
      if (a.text == "x" && a.is_write && a.loc.line != plus.loc.line) {
        minus = a;
      }
    }
  }
  ASSERT_NE(minus.loc.line, plus.loc.line);
  EXPECT_TRUE(common_guards(plus, minus, LocksetOptions{}).empty());
}

TEST(Lockset, RuntimeLockRendersTheVariable) {
  const Parsed p = collect(R"(
omp_lock_t l;
int x;
int main() {
#pragma omp parallel
  {
    omp_set_lock(&l);
    x = x + 1;
    omp_unset_lock(&l);
  }
  return 0;
}
)");
  const AccessInfo& w = access(p.regions, "x", true);
  const auto guards = lockset_of(w, LocksetOptions{});
  ASSERT_EQ(guards.size(), 1u);
  EXPECT_EQ(guards[0], "lock:l");

  LocksetOptions no_locks;
  no_locks.model_locks = false;
  EXPECT_TRUE(lockset_of(w, no_locks).empty());
}

TEST(Lockset, NestedGuardsAccumulate) {
  const Parsed p = collect(R"(
omp_lock_t l;
int x;
int main() {
#pragma omp parallel
  {
#pragma omp critical(outer)
    {
      omp_set_lock(&l);
      x = x + 1;
      omp_unset_lock(&l);
    }
  }
  return 0;
}
)");
  const AccessInfo& w = access(p.regions, "x", true);
  const auto guards = lockset_of(w, LocksetOptions{});
  ASSERT_EQ(guards.size(), 2u);
  // Rendered sets are sorted for stable evidence text.
  EXPECT_EQ(guards[0], "critical(outer)");
  EXPECT_EQ(guards[1], "lock:l");
}

TEST(Lockset, CommonCriticalDischargesThePair) {
  const char* src = R"(
int x;
int main() {
  int i;
#pragma omp parallel for
  for (i = 0; i < 100; i++) {
#pragma omp critical
    x = x + 1;
  }
  return 0;
}
)";
  StaticRaceDetector detector;
  const RaceReport report = detector.analyze_source(src);
  EXPECT_FALSE(report.race_detected);
  ASSERT_FALSE(report.discharged.empty());
  EXPECT_EQ(report.discharged.front().evidence.discharge_rule,
            "lockset.common");
}

}  // namespace
}  // namespace drbml::analysis
