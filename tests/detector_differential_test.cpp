// Differential testing of the static and dynamic detectors over the
// synthetic kernel generator, driven through the cached/parallel
// invocation path the experiment harness uses.
//
// The synthesizer's construction labels are ground truth: each template
// family is structurally racy or structurally safe for every parameter
// choice. The dynamic (vector-clock) detector reports only races it
// observed, so it must never flag a race-free kernel -- a false positive
// here means the happens-before tracking, the artifact cache, or the
// parallel executor corrupted an analysis.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/drbml.hpp"
#include "drb/corpus.hpp"
#include "drb/synth.hpp"
#include "eval/artifact_cache.hpp"
#include "eval/experiments.hpp"
#include "explore/explore.hpp"
#include "runtime/dynamic.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace drbml {
namespace {

std::vector<drb::SynthEntry> kernels() {
  drb::SynthConfig config;
  config.count = 200;
  config.seed = 20230806;
  return drb::synthesize(config);
}

TEST(DetectorDifferential, DynamicNeverFlagsRaceFreeSynthKernels) {
  const std::vector<drb::SynthEntry> entries = kernels();
  ASSERT_EQ(entries.size(), 200u);

  runtime::DynamicDetectorOptions dyn_opts;  // default 3 schedule seeds
  eval::ArtifactCache& cache = eval::artifact_cache();

  // Analyze through the shared cache from 8 worker threads, exactly as
  // the parallel experiment harness does.
  const std::vector<int> verdicts = support::parallel_map(
      8, entries, [&](const drb::SynthEntry& e) -> int {
        return cache.dynamic_report(e.code, dyn_opts).race_detected ? 1 : 0;
      });

  int safe_kernels = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].race) continue;
    ++safe_kernels;
    EXPECT_EQ(verdicts[i], 0)
        << "dynamic detector false positive on race-free kernel "
        << entries[i].name << " (pattern " << entries[i].pattern << ")";
  }
  ASSERT_GT(safe_kernels, 50) << "generator produced too few safe kernels "
                                 "for the assertion to mean anything";
}

TEST(DetectorDifferential, CachedVerdictsMatchFreshDetectors) {
  // The cache must be a pure memo: verdicts served through it agree with
  // fresh, uncached detector runs.
  std::vector<drb::SynthEntry> entries = kernels();
  entries.resize(40);

  runtime::DynamicDetectorOptions dyn_opts;
  analysis::StaticDetectorOptions static_opts;
  eval::ArtifactCache& cache = eval::artifact_cache();

  for (const drb::SynthEntry& e : entries) {
    const bool cached_dynamic =
        cache.dynamic_report(e.code, dyn_opts).race_detected;
    const bool fresh_dynamic = runtime::DynamicRaceDetector(dyn_opts)
                                   .analyze_source(e.code)
                                   .race_detected;
    EXPECT_EQ(cached_dynamic, fresh_dynamic) << e.name;

    const bool cached_static =
        cache.static_report(e.code, static_opts).race_detected;
    const bool fresh_static = analysis::StaticRaceDetector(static_opts)
                                  .analyze_source(e.code)
                                  .race_detected;
    EXPECT_EQ(cached_static, fresh_static) << e.name;
  }
}

// Entries whose race the interpreter cannot exhibit on any schedule. A
// static-hit/explore-miss on one of these produces a structured miss
// report instead of a failure; a miss on any other entry fails the test.
const std::map<std::string, std::string>& dynamically_invisible() {
  static const std::map<std::string, std::string> table = {
      {"DRB007-collapsedep-orig-yes.c",
       "collapse(2) is not distributed over the inner loop by the "
       "interpreter, so the j-carried dependence never crosses threads"},
  };
  return table;
}

TEST(DetectorDifferential, PctExplorationMatchesStaticOnRaceLabeledCorpus) {
  // Whenever the static detector flags a race-labeled corpus entry, PCT
  // exploration at the stats-gate budget must reproduce the race; known
  // dynamically-invisible entries are reported, not asserted.
  std::vector<const drb::CorpusEntry*> racy;
  for (const auto& e : drb::corpus()) {
    if (e.race) racy.push_back(&e);
  }
  ASSERT_GT(racy.size(), 100u);

  analysis::StaticDetectorOptions static_opts;
  explore::ExploreOptions eopts;
  eopts.strategy = explore::Strategy::Pct;
  eopts.max_schedules = 12;
  eopts.minimize = false;
  eval::ArtifactCache& cache = eval::artifact_cache();

  struct Outcome {
    bool static_hit = false;
    bool explored_hit = false;
    int schedules = 0;
    bool plateau = false;
    bool error = false;
  };
  const std::vector<Outcome> outcomes = support::parallel_map(
      0, racy, [&](const drb::CorpusEntry* e) -> Outcome {
        Outcome o;
        const std::string code = drb::drb_code(*e);
        try {
          o.static_hit = cache.static_report(code, static_opts).race_detected;
          const explore::ExploreResult& r = cache.explore_result(code, eopts);
          o.explored_hit = r.race_detected;
          o.schedules = r.schedules_run;
          o.plateau = r.stopped_on_plateau;
        } catch (const Error&) {
          o.error = true;
        }
        return o;
      });

  int static_hits = 0;
  int misses = 0;
  for (std::size_t i = 0; i < racy.size(); ++i) {
    const Outcome& o = outcomes[i];
    ASSERT_FALSE(o.error) << racy[i]->name;
    if (!o.static_hit) continue;
    ++static_hits;
    if (o.explored_hit) continue;
    ++misses;
    const auto known = dynamically_invisible().find(racy[i]->name);
    const bool documented = known != dynamically_invisible().end();
    std::fprintf(stderr,
                 "miss-report: %s [%s] static=yes explored=no "
                 "schedules=%d plateau=%d reason=%s\n",
                 racy[i]->name.c_str(), racy[i]->pattern.c_str(), o.schedules,
                 o.plateau ? 1 : 0,
                 documented ? known->second.c_str() : "UNDOCUMENTED");
    EXPECT_TRUE(documented)
        << racy[i]->name << ": static detector finds the race but PCT "
        << "exploration missed it within " << eopts.max_schedules
        << " schedules, and the entry is not on the documented "
        << "dynamically-invisible list";
  }
  // The static detector covers nearly the whole race-labeled corpus, so
  // the implication above is not vacuous; and every miss is documented.
  EXPECT_GT(static_hits, 90);
  EXPECT_LE(misses, static_cast<int>(dynamically_invisible().size()));
}

TEST(TraditionalTool, MalformedEntryCountsAsNegativeInsteadOfAborting) {
  // Neither the static nor the dynamic tool can parse this; the harness
  // must swallow both failures and count the entry as a negative
  // prediction instead of aborting the whole table.
  dataset::Entry malformed;
  malformed.id = 9001;
  malformed.name = "MALFORMED-001";
  malformed.trimmed_code = "#pragma omp parallel for\nfor (int i = 0; i <";
  malformed.data_race = 1;  // labeled racy, so the miss lands in FN

  dataset::Entry healthy;
  healthy.id = 9002;
  healthy.name = "HEALTHY-001";
  healthy.trimmed_code =
      "int main() {\n"
      "  int a[64];\n"
      "  #pragma omp parallel for\n"
      "  for (int i = 0; i < 64; i = i + 1) {\n"
      "    a[i] = i;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  healthy.data_race = 0;

  const std::vector<const dataset::Entry*> subset = {&malformed, &healthy};
  eval::ConfusionMatrix cm;
  ASSERT_NO_THROW(cm = eval::run_traditional_tool(subset));
  EXPECT_EQ(cm.total(), 2);
  EXPECT_EQ(cm.fn, 1);  // malformed racy entry -> negative prediction
  EXPECT_EQ(cm.tn, 1);  // healthy race-free entry -> true negative
}

}  // namespace
}  // namespace drbml
