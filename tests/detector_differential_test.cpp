// Differential testing of the static and dynamic detectors over the
// synthetic kernel generator, driven through the cached/parallel
// invocation path the experiment harness uses.
//
// The synthesizer's construction labels are ground truth: each template
// family is structurally racy or structurally safe for every parameter
// choice. The dynamic (vector-clock) detector reports only races it
// observed, so it must never flag a race-free kernel -- a false positive
// here means the happens-before tracking, the artifact cache, or the
// parallel executor corrupted an analysis.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/drbml.hpp"
#include "drb/synth.hpp"
#include "eval/artifact_cache.hpp"
#include "eval/experiments.hpp"
#include "runtime/dynamic.hpp"
#include "support/parallel.hpp"

namespace drbml {
namespace {

std::vector<drb::SynthEntry> kernels() {
  drb::SynthConfig config;
  config.count = 200;
  config.seed = 20230806;
  return drb::synthesize(config);
}

TEST(DetectorDifferential, DynamicNeverFlagsRaceFreeSynthKernels) {
  const std::vector<drb::SynthEntry> entries = kernels();
  ASSERT_EQ(entries.size(), 200u);

  runtime::DynamicDetectorOptions dyn_opts;  // default 3 schedule seeds
  eval::ArtifactCache& cache = eval::artifact_cache();

  // Analyze through the shared cache from 8 worker threads, exactly as
  // the parallel experiment harness does.
  const std::vector<int> verdicts = support::parallel_map(
      8, entries, [&](const drb::SynthEntry& e) -> int {
        return cache.dynamic_report(e.code, dyn_opts).race_detected ? 1 : 0;
      });

  int safe_kernels = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].race) continue;
    ++safe_kernels;
    EXPECT_EQ(verdicts[i], 0)
        << "dynamic detector false positive on race-free kernel "
        << entries[i].name << " (pattern " << entries[i].pattern << ")";
  }
  ASSERT_GT(safe_kernels, 50) << "generator produced too few safe kernels "
                                 "for the assertion to mean anything";
}

TEST(DetectorDifferential, CachedVerdictsMatchFreshDetectors) {
  // The cache must be a pure memo: verdicts served through it agree with
  // fresh, uncached detector runs.
  std::vector<drb::SynthEntry> entries = kernels();
  entries.resize(40);

  runtime::DynamicDetectorOptions dyn_opts;
  analysis::StaticDetectorOptions static_opts;
  eval::ArtifactCache& cache = eval::artifact_cache();

  for (const drb::SynthEntry& e : entries) {
    const bool cached_dynamic =
        cache.dynamic_report(e.code, dyn_opts).race_detected;
    const bool fresh_dynamic = runtime::DynamicRaceDetector(dyn_opts)
                                   .analyze_source(e.code)
                                   .race_detected;
    EXPECT_EQ(cached_dynamic, fresh_dynamic) << e.name;

    const bool cached_static =
        cache.static_report(e.code, static_opts).race_detected;
    const bool fresh_static = analysis::StaticRaceDetector(static_opts)
                                  .analyze_source(e.code)
                                  .race_detected;
    EXPECT_EQ(cached_static, fresh_static) << e.name;
  }
}

TEST(TraditionalTool, MalformedEntryCountsAsNegativeInsteadOfAborting) {
  // Neither the static nor the dynamic tool can parse this; the harness
  // must swallow both failures and count the entry as a negative
  // prediction instead of aborting the whole table.
  dataset::Entry malformed;
  malformed.id = 9001;
  malformed.name = "MALFORMED-001";
  malformed.trimmed_code = "#pragma omp parallel for\nfor (int i = 0; i <";
  malformed.data_race = 1;  // labeled racy, so the miss lands in FN

  dataset::Entry healthy;
  healthy.id = 9002;
  healthy.name = "HEALTHY-001";
  healthy.trimmed_code =
      "int main() {\n"
      "  int a[64];\n"
      "  #pragma omp parallel for\n"
      "  for (int i = 0; i < 64; i = i + 1) {\n"
      "    a[i] = i;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  healthy.data_race = 0;

  const std::vector<const dataset::Entry*> subset = {&malformed, &healthy};
  eval::ConfusionMatrix cm;
  ASSERT_NO_THROW(cm = eval::run_traditional_tool(subset));
  EXPECT_EQ(cm.total(), 2);
  EXPECT_EQ(cm.fn, 1);  // malformed racy entry -> negative prediction
  EXPECT_EQ(cm.tn, 1);  // healthy race-free entry -> true negative
}

}  // namespace
}  // namespace drbml
