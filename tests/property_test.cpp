// Property-based and differential tests.
//
// 1. Dependence-test oracle: for generated affine subscript pairs with
//    small known bounds, brute-force enumeration of the iteration space
//    decides whether a cross-thread conflict exists; the analytical
//    classify_conflict must agree (exactly, since everything is affine).
// 2. Detector differential testing: a deterministic random OpenMP kernel
//    generator produces simple loop programs; on this restricted shape
//    the conservative static detector must flag every race the dynamic
//    detector observes, and the dynamic detector must report no race on
//    programs the optimistic static analysis proves disjoint.
#include <gtest/gtest.h>

#include <string>

#include "analysis/race.hpp"
#include "runtime/dynamic.hpp"
#include "support/rng.hpp"

namespace drbml {
namespace {

// ---------------------------------------------------------------------------
// 1. Affine dependence oracle sweep
//
// Kernel shape:  #pragma omp parallel for
//                for (i = 0; i < N; i++) a[c1*i + d1] = a[c2*i + d2] + 1;
// Cross-thread conflict truth: exists i1 != i2 in [0,N) with
// c1*i1 + d1 == c2*i2 + d2 (write/read) or c1*i1+d1 == c1*i2+d1 (w/w,
// only when c1 == 0). All indices are kept in range by construction.

struct AffineCase {
  int c1, d1, c2, d2, n;
};

bool brute_force_conflict(const AffineCase& k) {
  for (int i1 = 0; i1 < k.n; ++i1) {
    for (int i2 = 0; i2 < k.n; ++i2) {
      if (i1 == i2) continue;
      if (k.c1 * i1 + k.d1 == k.c2 * i2 + k.d2) return true;  // w vs r
      if (k.c1 * i1 + k.d1 == k.c1 * i2 + k.d1) return true;  // w vs w
    }
  }
  return false;
}

std::string render_affine_kernel(const AffineCase& k, int array_size) {
  auto term = [](int c, int d) {
    std::string s;
    if (c == 0) {
      s = std::to_string(d);
    } else if (c == 1) {
      s = "i";
      if (d != 0) s += (d > 0 ? "+" : "") + std::to_string(d);
    } else {
      s = std::to_string(c) + "*i";
      if (d != 0) s += (d > 0 ? "+" : "") + std::to_string(d);
    }
    return s;
  };
  std::string code = "int main() {\n";
  code += "  int i;\n";
  code += "  int a[" + std::to_string(array_size) + "];\n";
  code += "  for (i = 0; i < " + std::to_string(array_size) +
          "; i++) a[i] = i;\n";
  code += "#pragma omp parallel for\n";
  code += "  for (i = 0; i < " + std::to_string(k.n) + "; i++)\n";
  code += "    a[" + term(k.c1, k.d1) + "] = a[" + term(k.c2, k.d2) +
          "] + 1;\n";
  code += "  return 0;\n}\n";
  return code;
}

class AffineOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(AffineOracleTest, StaticMatchesBruteForce) {
  Rng rng = Rng::from_key("affine-oracle/" + std::to_string(GetParam()));
  AffineCase k;
  k.n = static_cast<int>(rng.between(4, 16));
  k.c1 = static_cast<int>(rng.between(0, 3));
  k.c2 = static_cast<int>(rng.between(0, 3));
  // Offsets chosen to keep indices in [0, array_size).
  k.d1 = static_cast<int>(rng.between(0, 8));
  k.d2 = static_cast<int>(rng.between(0, 8));
  const int max_index =
      std::max(k.c1 * (k.n - 1) + k.d1, k.c2 * (k.n - 1) + k.d2);
  const int array_size = std::max(max_index + 1, k.n);

  const bool truth = brute_force_conflict(k);
  const std::string code = render_affine_kernel(k, array_size);

  analysis::StaticRaceDetector detector;  // full modelling, conservative
  const bool flagged = detector.analyze_source(code).race_detected;
  EXPECT_EQ(flagged, truth)
      << "kernel:\n" << code << "c1=" << k.c1 << " d1=" << k.d1
      << " c2=" << k.c2 << " d2=" << k.d2 << " n=" << k.n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AffineOracleTest, ::testing::Range(0, 120));

// ---------------------------------------------------------------------------
// 1b. Two-dimensional collapse(2) oracle sweep
//
// Kernel: #pragma omp parallel for collapse(2)
//         for (i) for (j) m[i + di1][j + dj1] = m[i + di2][j + dj2] + 1;
// With collapse(2) every (i, j) iteration may run on a different thread,
// so a cross-thread conflict exists iff two distinct iterations touch the
// same element.

struct Affine2D {
  int di1, dj1, di2, dj2, ni, nj;
};

bool brute_force_conflict_2d(const Affine2D& k) {
  for (int i1 = 0; i1 < k.ni; ++i1) {
    for (int j1 = 0; j1 < k.nj; ++j1) {
      for (int i2 = 0; i2 < k.ni; ++i2) {
        for (int j2 = 0; j2 < k.nj; ++j2) {
          if (i1 == i2 && j1 == j2) continue;
          // write (i1,j1) vs read (i2,j2)
          if (i1 + k.di1 == i2 + k.di2 && j1 + k.dj1 == j2 + k.dj2) {
            return true;
          }
          // write vs write
          if (i1 + k.di1 == i2 + k.di1 && j1 + k.dj1 == j2 + k.dj1) {
            return true;  // only when iterations coincide -- they don't
          }
        }
      }
    }
  }
  return false;
}

std::string render_2d_kernel(const Affine2D& k) {
  const int rows = k.ni + std::max(k.di1, k.di2) + 1;
  const int cols = k.nj + std::max(k.dj1, k.dj2) + 1;
  auto idx = [](const char* v, int d) {
    std::string s = v;
    if (d != 0) s += "+" + std::to_string(d);
    return s;
  };
  std::string code = "int main() {\n  int i;\n  int j;\n";
  code += "  double m[" + std::to_string(rows) + "][" +
          std::to_string(cols) + "];\n";
  code += "  for (i = 0; i < " + std::to_string(rows) + "; i++)\n";
  code += "    for (j = 0; j < " + std::to_string(cols) + "; j++)\n";
  code += "      m[i][j] = i + j;\n";
  code += "#pragma omp parallel for collapse(2)\n";
  code += "  for (i = 0; i < " + std::to_string(k.ni) + "; i++)\n";
  code += "    for (j = 0; j < " + std::to_string(k.nj) + "; j++)\n";
  code += "      m[" + idx("i", k.di1) + "][" + idx("j", k.dj1) + "] = m[" +
          idx("i", k.di2) + "][" + idx("j", k.dj2) + "] + 1.0;\n";
  code += "  return 0;\n}\n";
  return code;
}

class Affine2DOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(Affine2DOracleTest, StaticMatchesBruteForce) {
  Rng rng = Rng::from_key("affine2d-oracle/" + std::to_string(GetParam()));
  Affine2D k;
  k.ni = static_cast<int>(rng.between(3, 8));
  k.nj = static_cast<int>(rng.between(3, 8));
  k.di1 = static_cast<int>(rng.between(0, 2));
  k.dj1 = static_cast<int>(rng.between(0, 2));
  k.di2 = static_cast<int>(rng.between(0, 2));
  k.dj2 = static_cast<int>(rng.between(0, 2));

  const bool truth = brute_force_conflict_2d(k);
  const std::string code = render_2d_kernel(k);
  analysis::StaticRaceDetector detector;
  EXPECT_EQ(detector.analyze_source(code).race_detected, truth)
      << code;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Affine2DOracleTest, ::testing::Range(0, 80));

// ---------------------------------------------------------------------------
// 2. Random kernel generator + detector differential testing

struct GeneratedProgram {
  std::string code;
  bool uses_sync = false;
};

/// Generates a simple parallel-for kernel over one shared array with a
/// random body drawn from known-safe and known-unsafe statement shapes.
GeneratedProgram generate_kernel(std::uint64_t seed) {
  Rng rng(seed);
  GeneratedProgram out;
  const int n = static_cast<int>(rng.between(8, 40));
  const int pad = 10;
  std::string body;
  const int shape = static_cast<int>(rng.between(0, 7));
  switch (shape) {
    case 0: body = "    a[i] = i;\n"; break;
    case 1: body = "    a[i] = a[i] + 1;\n"; break;
    case 2: body = "    a[i] = a[i+1] + 1;\n"; break;
    case 3: body = "    a[i+1] = a[i] + 1;\n"; break;
    case 4: body = "    s = s + a[i];\n"; break;
    case 5:
      body = "    if (i % 2 == 0)\n      a[i] = i;\n    else\n      a[i] = "
             "-i;\n";
      break;
    case 6: body = "    a[2*i] = a[2*i+1] + 1;\n"; break;
    case 7: body = "    a[i] = a[i+5] + 1;\n"; break;
    default: body = "    a[i] = i;\n"; break;
  }
  const bool wrap_critical = shape == 4 && rng.chance(0.5);
  if (wrap_critical) {
    body = "#pragma omp critical\n    { s = s + a[i]; }\n";
    out.uses_sync = true;
  }

  std::string code = "int main() {\n";
  code += "  int i;\n";
  code += "  int s = 0;\n";
  code += "  int a[" + std::to_string(2 * n + 2 * pad) + "];\n";
  code += "  for (i = 0; i < " + std::to_string(2 * n + 2 * pad) +
          "; i++) a[i] = i;\n";
  code += "#pragma omp parallel for\n";
  code += "  for (i = 0; i < " + std::to_string(n) + "; i++) {\n";
  code += body;
  code += "  }\n";
  code += "  return s;\n}\n";
  out.code = code;
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, DynamicFindingsAreSubsetOfConservativeStatic) {
  const GeneratedProgram prog =
      generate_kernel(0xD1FFu + static_cast<std::uint64_t>(GetParam()));

  analysis::StaticRaceDetector conservative;
  const bool static_flag =
      conservative.analyze_source(prog.code).race_detected;

  runtime::DynamicDetectorOptions opts;
  opts.schedule_seeds = {1, 2};
  runtime::DynamicRaceDetector dynamic_tool(opts);
  const analysis::RaceReport dyn = dynamic_tool.analyze_source(prog.code);

  // Soundness of the conservative static pass relative to observed
  // executions (on this call/task-free kernel shape).
  if (dyn.race_detected) {
    EXPECT_TRUE(static_flag) << prog.code;
  }
}

TEST_P(DifferentialTest, OptimisticProofImpliesNoObservedRace) {
  const GeneratedProgram prog =
      generate_kernel(0xFACEu + static_cast<std::uint64_t>(GetParam()));

  analysis::StaticDetectorOptions optimistic_opts;
  optimistic_opts.depend.conservative_nonaffine = false;
  analysis::StaticRaceDetector optimistic(optimistic_opts);
  const bool static_flag =
      optimistic.analyze_source(prog.code).race_detected;
  if (static_flag) return;  // nothing to check

  runtime::DynamicDetectorOptions opts;
  opts.schedule_seeds = {1, 2, 3};
  runtime::DynamicRaceDetector dynamic_tool(opts);
  EXPECT_FALSE(dynamic_tool.analyze_source(prog.code).race_detected)
      << prog.code;
}

TEST_P(DifferentialTest, ExecutionIsCleanAndDeterministic) {
  const GeneratedProgram prog =
      generate_kernel(0xBEEFu + static_cast<std::uint64_t>(GetParam()));
  runtime::DynamicDetectorOptions opts;
  opts.schedule_seeds = {1};
  runtime::DynamicRaceDetector detector(opts);
  const runtime::RunResult a = detector.run_once(prog.code, 5);
  const runtime::RunResult b = detector.run_once(prog.code, 5);
  EXPECT_FALSE(a.faulted) << a.fault_message << "\n" << prog.code;
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.report.pairs.size(), b.report.pairs.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialTest, ::testing::Range(0, 60));

}  // namespace
}  // namespace drbml
