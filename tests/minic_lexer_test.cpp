// Unit tests for comment stripping and the Mini-C lexer.
#include <gtest/gtest.h>

#include "minic/lexer.hpp"
#include "minic/source.hpp"
#include "support/error.hpp"

namespace drbml::minic {
namespace {

// ----------------------------------------------------------- strip_comments

TEST(StripComments, RemovesLineAndBlockComments) {
  const char* src =
      "int x; // trailing\n"
      "/* block */ int y;\n";
  auto r = strip_comments(src);
  // Comment bodies blank to spaces so that code keeps its original columns
  // (trimmed-code coordinates must match the parsed AST locations).
  EXPECT_EQ(r.trimmed, "int x;\n            int y;\n");
}

TEST(StripComments, DropsCommentOnlyAndBlankLines) {
  const char* src =
      "/*\n"
      " * header comment\n"
      " */\n"
      "\n"
      "int main() {\n"
      "  return 0;\n"
      "}\n";
  auto r = strip_comments(src);
  EXPECT_EQ(r.trimmed,
            "int main() {\n"
            "  return 0;\n"
            "}\n");
  // Lines 1-4 dropped; line 5 maps to trimmed line 1.
  EXPECT_EQ(r.to_trimmed_line(1), 0);
  EXPECT_EQ(r.to_trimmed_line(4), 0);
  EXPECT_EQ(r.to_trimmed_line(5), 1);
  EXPECT_EQ(r.to_trimmed_line(6), 2);
}

TEST(StripComments, LineMapOutOfRangeIsZero) {
  auto r = strip_comments("int x;\n");
  EXPECT_EQ(r.to_trimmed_line(0), 0);
  EXPECT_EQ(r.to_trimmed_line(99), 0);
}

TEST(StripComments, PreservesCommentMarkersInStrings) {
  const char* src = "char* s = \"no // comment /* here */\";\n";
  auto r = strip_comments(src);
  EXPECT_EQ(r.trimmed, std::string(src));
}

TEST(StripComments, BlockCommentSpanningLinesKeepsCodeColumns) {
  const char* src = "int a; /* one\ntwo */ int b;\n";
  auto r = strip_comments(src);
  EXPECT_EQ(r.trimmed, "int a;\n       int b;\n");
  EXPECT_EQ(r.to_trimmed_line(2), 2);
}

TEST(StripComments, DivisionIsNotAComment) {
  auto r = strip_comments("int x = a / b;\n");
  EXPECT_EQ(r.trimmed, "int x = a / b;\n");
}

TEST(ExtractComments, FindsAllComments) {
  const char* src =
      "// first\n"
      "int x; /* second */\n"
      "char* s = \"// not a comment\";\n";
  auto c = extract_comments(src);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], " first");
  EXPECT_EQ(c[1], " second ");
}

TEST(ExtractComments, MultiLineBlock) {
  auto c = extract_comments("/*a\nb*/\n");
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], "a\nb");
}

// ----------------------------------------------------------- lexer

TEST(Lexer, TokenizesBasicProgram) {
  auto toks = lex("int main() { return 0; }");
  ASSERT_GE(toks.size(), 9u);
  EXPECT_TRUE(toks[0].is_keyword("int"));
  EXPECT_TRUE(toks[1].is_ident("main"));
  EXPECT_TRUE(toks[2].is_punct("("));
  EXPECT_TRUE(toks.back().is(TokenKind::End));
}

TEST(Lexer, TracksLineAndColumn) {
  auto toks = lex("int a;\n  a = 1;\n");
  // 'a' on line 2 starts at column 3.
  ASSERT_TRUE(toks[3].is_ident("a"));
  EXPECT_EQ(toks[3].loc.line, 2);
  EXPECT_EQ(toks[3].loc.col, 3);
}

TEST(Lexer, IntAndFloatLiterals) {
  auto toks = lex("42 3.5 1e3 0x1F 100u 2.0f 7L");
  EXPECT_EQ(toks[0].kind, TokenKind::IntLiteral);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 3.5);
  EXPECT_EQ(toks[2].kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 1000.0);
  EXPECT_EQ(toks[3].kind, TokenKind::IntLiteral);
  EXPECT_EQ(toks[3].int_value, 31);
  EXPECT_EQ(toks[4].int_value, 100);
  EXPECT_EQ(toks[5].kind, TokenKind::FloatLiteral);
  EXPECT_EQ(toks[6].int_value, 7);
}

TEST(Lexer, StringLiteralDecodesEscapes) {
  auto toks = lex(R"("a\n\t\"b\"")");
  ASSERT_EQ(toks[0].kind, TokenKind::StringLiteral);
  EXPECT_EQ(toks[0].string_value, "a\n\t\"b\"");
}

TEST(Lexer, CharLiteral) {
  auto toks = lex("'x' '\\n'");
  EXPECT_EQ(toks[0].int_value, 'x');
  EXPECT_EQ(toks[1].int_value, '\n');
}

TEST(Lexer, MultiCharPunctuation) {
  auto toks = lex("a += b && c <<= d != e++");
  EXPECT_TRUE(toks[1].is_punct("+="));
  EXPECT_TRUE(toks[3].is_punct("&&"));
  EXPECT_TRUE(toks[5].is_punct("<<="));
  EXPECT_TRUE(toks[7].is_punct("!="));
  EXPECT_TRUE(toks[9].is_punct("++"));
}

TEST(Lexer, PragmaBecomesSingleToken) {
  auto toks = lex("#pragma omp parallel for private(i)\nint x;\n");
  ASSERT_EQ(toks[0].kind, TokenKind::Pragma);
  EXPECT_NE(toks[0].text.find("omp parallel for"), std::string::npos);
  EXPECT_TRUE(toks[1].is_keyword("int"));
}

TEST(Lexer, PragmaLineContinuation) {
  auto toks = lex("#pragma omp parallel for \\\n  reduction(+:sum)\nint x;\n");
  ASSERT_EQ(toks[0].kind, TokenKind::Pragma);
  EXPECT_NE(toks[0].text.find("reduction"), std::string::npos);
}

TEST(Lexer, IncludeLinesAreSkipped) {
  auto toks = lex("#include <stdio.h>\n#include \"foo.h\"\nint x;\n");
  EXPECT_TRUE(toks[0].is_keyword("int"));
}

TEST(Lexer, CommentsAreSkipped) {
  auto toks = lex("int /* hi */ x; // bye\n");
  EXPECT_TRUE(toks[0].is_keyword("int"));
  EXPECT_TRUE(toks[1].is_ident("x"));
  EXPECT_TRUE(toks[2].is_punct(";"));
}

TEST(Lexer, ThrowsOnUnterminatedString) {
  EXPECT_THROW(lex("\"abc"), ParseError);
}

TEST(Lexer, ThrowsOnBadCharacter) {
  EXPECT_THROW(lex("int @x;"), ParseError);
}

TEST(Lexer, KeywordsRecognized) {
  EXPECT_TRUE(is_keyword_word("for"));
  EXPECT_TRUE(is_keyword_word("unsigned"));
  EXPECT_FALSE(is_keyword_word("omp"));
  EXPECT_FALSE(is_keyword_word("main"));
}

}  // namespace
}  // namespace drbml::minic
