// Determinism regression tests for the parallel experiment executor:
// every pipeline must produce bit-identical confusion matrices and
// rendered tables at jobs=1 (the exact serial path) and jobs=8, and
// repeated parallel runs must agree with each other (schedule-dependent
// flakiness shows up as run-to-run drift, not just serial/parallel
// drift).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hpp"
#include "drb/corpus.hpp"
#include "eval/experiments.hpp"
#include "llm/persona.hpp"
#include "runtime/dynamic.hpp"
#include "support/parallel.hpp"

namespace drbml::eval {
namespace {

constexpr ExperimentOptions kSerial{/*jobs=*/1};
constexpr ExperimentOptions kParallel{/*jobs=*/8};

void expect_same_rows(const std::vector<DetectionRow>& a,
                      const std::vector<DetectionRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].model, b[i].model) << "row " << i;
    EXPECT_EQ(a[i].prompt, b[i].prompt) << "row " << i;
    EXPECT_EQ(a[i].cm.tp, b[i].cm.tp) << "row " << i;
    EXPECT_EQ(a[i].cm.fp, b[i].cm.fp) << "row " << i;
    EXPECT_EQ(a[i].cm.tn, b[i].cm.tn) << "row " << i;
    EXPECT_EQ(a[i].cm.fn, b[i].cm.fn) << "row " << i;
  }
}

TEST(ParallelDeterminism, Table2SerialAndParallelBitIdentical) {
  const auto serial = table2_rows(kSerial);
  const auto parallel_a = table2_rows(kParallel);
  const auto parallel_b = table2_rows(kParallel);
  expect_same_rows(serial, parallel_a);
  expect_same_rows(parallel_a, parallel_b);
  // The rendered tables (the bench binaries' actual output) must be
  // byte-identical too.
  EXPECT_EQ(bench::detection_table(serial), bench::detection_table(parallel_a));
  EXPECT_EQ(bench::detection_table(parallel_a),
            bench::detection_table(parallel_b));
}

TEST(ParallelDeterminism, Table3SerialAndParallelBitIdentical) {
  const auto serial = table3_rows(kSerial);
  const auto parallel_a = table3_rows(kParallel);
  const auto parallel_b = table3_rows(kParallel);
  expect_same_rows(serial, parallel_a);
  expect_same_rows(parallel_a, parallel_b);
  EXPECT_EQ(bench::detection_table(serial), bench::detection_table(parallel_a));
  EXPECT_EQ(bench::detection_table(parallel_a),
            bench::detection_table(parallel_b));
}

TEST(ParallelDeterminism, ModalDetectionMatchesSerial) {
  auto subset = token_filtered_subset();
  subset.resize(48);  // keep the modal artifact derivations quick
  llm::ChatModel gpt4(llm::gpt4_persona());
  for (const prompts::Modality modality :
       {prompts::Modality::Ast, prompts::Modality::DepGraph}) {
    const ConfusionMatrix serial = run_detection_modal(
        gpt4, prompts::Style::P1, modality, subset, kSerial);
    const ConfusionMatrix parallel = run_detection_modal(
        gpt4, prompts::Style::P1, modality, subset, kParallel);
    EXPECT_EQ(serial.tp, parallel.tp);
    EXPECT_EQ(serial.fp, parallel.fp);
    EXPECT_EQ(serial.tn, parallel.tn);
    EXPECT_EQ(serial.fn, parallel.fn);
  }
}

TEST(ParallelDeterminism, VarIdMatchesSerial) {
  const auto subset = token_filtered_subset();
  llm::ChatModel gpt4(llm::gpt4_persona());
  const ConfusionMatrix serial = run_varid(gpt4, subset, kSerial);
  const ConfusionMatrix parallel = run_varid(gpt4, subset, kParallel);
  EXPECT_EQ(serial.tp, parallel.tp);
  EXPECT_EQ(serial.fp, parallel.fp);
  EXPECT_EQ(serial.tn, parallel.tn);
  EXPECT_EQ(serial.fn, parallel.fn);
}

// The bytecode-VM backend must be deterministic under the parallel
// executor too: dynamic verdicts computed at jobs=1 are byte-identical
// to jobs=8 (each worker compiles and runs its own modules; nothing may
// leak across workers).
TEST(ParallelDeterminism, VmBackendVerdictsMatchAcrossJobCounts) {
  const std::vector<drb::CorpusEntry>& entries = drb::corpus();

  const auto verdicts = [&](int jobs) {
    return support::parallel_map(
        jobs, entries, [](const drb::CorpusEntry& e) -> std::string {
          runtime::DynamicDetectorOptions opts;
          opts.run.backend = runtime::Backend::Vm;
          opts.run.module = nullptr;
          const analysis::RaceReport report =
              runtime::DynamicRaceDetector(opts).analyze_source(e.body);
          std::string fp = report.race_detected ? "race" : "clean";
          for (const auto& p : report.pairs) {
            fp += ";" + p.first.expr_text + "@" +
                  std::to_string(p.first.loc.line) + ":" +
                  std::to_string(p.first.loc.col) + "/" + p.second.expr_text +
                  "@" + std::to_string(p.second.loc.line) + ":" +
                  std::to_string(p.second.loc.col);
          }
          for (const auto& d : report.diagnostics) fp += "|" + d;
          return fp;
        });
  };

  const std::vector<std::string> serial = verdicts(1);
  const std::vector<std::string> parallel = verdicts(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << entries[i].name;
  }
}

TEST(ParallelDeterminism, CrossValidationMatchesSerial) {
  const CvResult serial = run_cv(llm::llama2_persona(), Objective::Detection,
                                 /*finetuned=*/false, 5, 2023, 0, kSerial);
  const CvResult parallel = run_cv(llm::llama2_persona(), Objective::Detection,
                                   /*finetuned=*/false, 5, 2023, 0, kParallel);
  ASSERT_EQ(serial.folds.size(), parallel.folds.size());
  for (std::size_t i = 0; i < serial.folds.size(); ++i) {
    EXPECT_EQ(serial.folds[i].tp, parallel.folds[i].tp) << "fold " << i;
    EXPECT_EQ(serial.folds[i].fp, parallel.folds[i].fp) << "fold " << i;
    EXPECT_EQ(serial.folds[i].tn, parallel.folds[i].tn) << "fold " << i;
    EXPECT_EQ(serial.folds[i].fn, parallel.folds[i].fn) << "fold " << i;
  }
  EXPECT_DOUBLE_EQ(serial.f1.avg, parallel.f1.avg);
  EXPECT_DOUBLE_EQ(serial.f1.sd, parallel.f1.sd);
}

}  // namespace
}  // namespace drbml::eval
