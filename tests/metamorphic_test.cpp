// Metamorphic tests for the explored dynamic detector: race-preserving
// source mutations (identifier renaming, loop-bound literal padding,
// swapping adjacent independent declarations) must not flip the
// exploration verdict on synthesized kernels.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "drb/synth.hpp"
#include "explore/explore.hpp"
#include "support/parallel.hpp"

namespace drbml::explore {
namespace {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Word-boundary rename of `name` to `name + suffix`. The synthesized
/// kernels only put format directives inside string literals, so a
/// boundary check on the surrounding characters is sufficient.
std::string rename_identifier(const std::string& src, const std::string& name,
                              const std::string& suffix) {
  std::string out;
  std::size_t i = 0;
  while (i < src.size()) {
    const bool boundary_before = i == 0 || !is_word(src[i - 1]);
    if (boundary_before && src.compare(i, name.size(), name) == 0 &&
        (i + name.size() == src.size() || !is_word(src[i + name.size()]))) {
      out += name + suffix;
      i += name.size();
    } else {
      out += src[i++];
    }
  }
  return out;
}

std::string mutate_rename(const std::string& src) {
  // The synth identifier pools, plus the fixed names some templates use.
  static const char* kNames[] = {"a",    "buf",   "vec",  "dataa", "cells",
                                 "wk",   "acc",   "total", "tally", "agg",
                                 "summ", "i",     "k",     "idx0",  "it",
                                 "outt", "scratch"};
  std::string out = src;
  for (const char* name : kNames) {
    out = rename_identifier(out, name, "_mm");
  }
  return out;
}

/// Pads every literal `for` bound `< N;` / `< N)` into `< (N + 0)` --
/// same trip count, extra constant arithmetic shifting the step stream.
std::string mutate_pad_bounds(const std::string& src) {
  std::string out;
  std::size_t i = 0;
  while (i < src.size()) {
    if (src[i] == '<' && i + 1 < src.size() && src[i + 1] == ' ' &&
        std::isdigit(static_cast<unsigned char>(src[i + 2]))) {
      std::size_t j = i + 2;
      while (j < src.size() &&
             std::isdigit(static_cast<unsigned char>(src[j]))) {
        ++j;
      }
      if (j < src.size() && (src[j] == ';' || src[j] == ')')) {
        out += "< (" + src.substr(i + 2, j - i - 2) + " + 0)";
        i = j;
        continue;
      }
    }
    out += src[i++];
  }
  return out;
}

bool is_plain_int_decl(const std::string& line) {
  if (line.rfind("  int ", 0) != 0) return false;
  if (line.empty() || line.back() != ';') return false;
  // Reject declarations whose initializer reads other state; the synth
  // templates only initialize scalars to constants, which any adjacent
  // swap preserves.
  const std::size_t eq = line.find('=');
  if (eq == std::string::npos) return true;
  for (std::size_t i = eq + 1; i + 1 < line.size(); ++i) {
    const char c = line[i];
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != ' ' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

/// Swaps the first pair of adjacent independent declarations.
std::string mutate_swap_decls(const std::string& src) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= src.size()) {
    const std::size_t nl = src.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(src.substr(start));
      break;
    }
    lines.push_back(src.substr(start, nl - start));
    start = nl + 1;
  }
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    if (is_plain_int_decl(lines[i]) && is_plain_int_decl(lines[i + 1])) {
      std::swap(lines[i], lines[i + 1]);
      break;
    }
  }
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size()) out += '\n';
  }
  return out;
}

bool explored_verdict(const std::string& src,
                      runtime::Backend backend = runtime::default_backend()) {
  ExploreOptions opts;
  opts.strategy = Strategy::Pct;
  opts.max_schedules = 4;
  opts.plateau_window = 2;
  opts.minimize = false;
  opts.run.backend = backend;
  return explore_source(src, opts).race_detected;
}

TEST(Metamorphic, RacePreservingMutationsKeepExploredVerdict) {
  drb::SynthConfig config;
  config.count = 50;
  config.seed = 21;
  const std::vector<drb::SynthEntry> kernels = drb::synthesize(config);
  ASSERT_EQ(kernels.size(), 50u);

  struct Case {
    std::string name;
    std::string original;
    std::string mutated;
    const char* mutation;
  };
  std::vector<Case> cases;
  int renamed = 0;
  int padded = 0;
  int swapped = 0;
  for (const drb::SynthEntry& e : kernels) {
    const std::string rename = mutate_rename(e.code);
    const std::string pad = mutate_pad_bounds(e.code);
    const std::string swap = mutate_swap_decls(e.code);
    if (rename != e.code) ++renamed;
    if (pad != e.code) ++padded;
    if (swap != e.code) ++swapped;
    cases.push_back({e.name, e.code, rename, "rename"});
    cases.push_back({e.name, e.code, pad, "pad-bounds"});
    cases.push_back({e.name, e.code, swap, "swap-decls"});
  }
  // Every mutation kind must actually fire on the corpus; a mutation
  // that never changes the source verifies nothing.
  EXPECT_EQ(renamed, 50);
  EXPECT_EQ(padded, 50);
  EXPECT_GE(swapped, 40);

  struct Verdicts {
    bool original;
    bool mutated;
  };
  const std::vector<Verdicts> verdicts = support::parallel_map(
      0, cases, [](const Case& c) -> Verdicts {
        return {explored_verdict(c.original), explored_verdict(c.mutated)};
      });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(verdicts[i].original, verdicts[i].mutated)
        << cases[i].name << " flipped under " << cases[i].mutation
        << " mutation";
  }
}

// The metamorphic property must hold across execution backends too: a
// mutated kernel explored under the bytecode VM agrees with the original
// explored under the AST walker (and vice versa). A backend whose
// schedule space drifted would fail here even if each backend were
// internally self-consistent.
TEST(Metamorphic, MutationsKeepVerdictAcrossBackends) {
  drb::SynthConfig config;
  config.count = 24;
  config.seed = 77;
  const std::vector<drb::SynthEntry> kernels = drb::synthesize(config);

  struct Case {
    std::string name;
    std::string original;
    std::string mutated;
  };
  std::vector<Case> cases;
  for (const drb::SynthEntry& e : kernels) {
    cases.push_back({e.name, e.code, mutate_rename(mutate_pad_bounds(e.code))});
  }

  struct Verdicts {
    bool orig_interp;
    bool orig_vm;
    bool mut_interp;
    bool mut_vm;
  };
  const std::vector<Verdicts> verdicts = support::parallel_map(
      0, cases, [](const Case& c) -> Verdicts {
        return {explored_verdict(c.original, runtime::Backend::Interp),
                explored_verdict(c.original, runtime::Backend::Vm),
                explored_verdict(c.mutated, runtime::Backend::Interp),
                explored_verdict(c.mutated, runtime::Backend::Vm)};
      });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Verdicts& v = verdicts[i];
    EXPECT_EQ(v.orig_interp, v.orig_vm) << cases[i].name;
    EXPECT_EQ(v.mut_interp, v.mut_vm) << cases[i].name;
    EXPECT_EQ(v.orig_vm, v.mut_interp)
        << cases[i].name << " flipped across mutation + backend";
  }
}

TEST(Metamorphic, MutationsPreserveSourceValidity) {
  drb::SynthConfig config;
  config.count = 8;
  config.seed = 4;
  for (const drb::SynthEntry& e : drb::synthesize(config)) {
    // A mutated kernel must still parse, run, and (modulo scheduling)
    // print the same output as the original when no race is present.
    if (e.race) continue;
    ExploreOptions opts;
    opts.max_schedules = 1;
    opts.plateau_window = 0;
    opts.minimize = false;
    const ExploreResult orig = explore_source(e.code, opts);
    const ExploreResult mut =
        explore_source(mutate_rename(mutate_pad_bounds(e.code)), opts);
    EXPECT_EQ(orig.race_detected, mut.race_detected) << e.name;
    EXPECT_EQ(orig.faulted_runs, mut.faulted_runs) << e.name;
  }
}

}  // namespace
}  // namespace drbml::explore
