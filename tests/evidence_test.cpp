// Evidence-chain model: JSON round-trip identity, text rendering, and the
// invariants every chain must satisfy (a discharged chain names its rule,
// a reported chain shows every rule failing).
#include <gtest/gtest.h>

#include "analysis/evidence.hpp"
#include "analysis/race.hpp"
#include "support/json.hpp"

namespace drbml::analysis {
namespace {

Evidence sample_evidence() {
  Evidence ev;
  ev.phase_first = 1;
  ev.phase_second = 2;
  ev.locks_first = {"critical", "lock:l"};
  ev.locks_second = {"critical"};
  ev.common_guards = {"critical"};
  ev.dep_test = "gcd";
  ev.dep_detail = "gcd 2 does not divide 1";
  ev.steps = {{"mhp.phase", false, "phase 1 vs 2"},
              {"lockset.common", true, "common guards {critical}"}};
  ev.discharge_rule = "lockset.common";
  return ev;
}

TEST(Evidence, JsonRoundTripIdentity) {
  const Evidence ev = sample_evidence();
  const Evidence back = evidence_from_json(evidence_to_json(ev));
  EXPECT_EQ(back, ev);
}

TEST(Evidence, JsonRoundTripSurvivesTextSerialization) {
  const Evidence ev = sample_evidence();
  const std::string text = evidence_to_json(ev).dump();
  const Evidence back = evidence_from_json(json::parse(text));
  EXPECT_EQ(back, ev);
}

TEST(Evidence, DefaultChainRoundTrips) {
  const Evidence ev;
  EXPECT_EQ(evidence_from_json(evidence_to_json(ev)), ev);
  EXPECT_FALSE(ev.discharged());
}

TEST(Evidence, TextRenderingNamesTheDecision) {
  const Evidence ev = sample_evidence();
  const std::string text = evidence_to_text(ev);
  EXPECT_NE(text.find("phase 1/2"), std::string::npos);
  EXPECT_NE(text.find("discharged by lockset.common"), std::string::npos);

  Evidence racy = ev;
  racy.discharge_rule.clear();
  EXPECT_NE(evidence_to_text(racy).find("reported"), std::string::npos);
}

TEST(Evidence, ChainTextListsEveryStep) {
  const std::string chain = evidence_chain_text(sample_evidence());
  EXPECT_NE(chain.find("mhp.phase: not discharged"), std::string::npos);
  EXPECT_NE(chain.find("lockset.common: discharged"), std::string::npos);
}

// Detector-produced chains obey the model invariants.
TEST(Evidence, DetectorChainsAreWellFormed) {
  const char* src = R"(
int a[100];
int x;
int main() {
  int i;
#pragma omp parallel for
  for (i = 0; i < 99; i++) {
    a[i] = a[i + 1];
#pragma omp critical
    x = x + 1;
  }
  return 0;
}
)";
  StaticRaceDetector detector;
  const RaceReport report = detector.analyze_source(src);
  ASSERT_FALSE(report.pairs.empty());
  ASSERT_FALSE(report.discharged.empty());
  for (const auto& pair : report.pairs) {
    EXPECT_FALSE(pair.evidence.steps.empty());
    EXPECT_FALSE(pair.evidence.discharged());
    for (const auto& step : pair.evidence.steps) {
      EXPECT_FALSE(step.discharged) << step.rule;
    }
    EXPECT_EQ(evidence_from_json(evidence_to_json(pair.evidence)),
              pair.evidence);
  }
  for (const auto& d : report.discharged) {
    EXPECT_TRUE(d.evidence.discharged());
    ASSERT_FALSE(d.evidence.steps.empty());
    // The final step is the one that discharged the pair.
    EXPECT_TRUE(d.evidence.steps.back().discharged);
    EXPECT_EQ(d.evidence.steps.back().rule, d.evidence.discharge_rule);
    EXPECT_EQ(evidence_from_json(evidence_to_json(d.evidence)), d.evidence);
  }
}

// The critical-guarded accumulation above must discharge via the lockset.
TEST(Evidence, LocksetDischargeCitesTheGuard) {
  const char* src = R"(
int x;
int main() {
  int i;
#pragma omp parallel for
  for (i = 0; i < 100; i++) {
#pragma omp critical
    x = x + 1;
  }
  return 0;
}
)";
  StaticRaceDetector detector;
  const RaceReport report = detector.analyze_source(src);
  EXPECT_FALSE(report.race_detected);
  ASSERT_FALSE(report.discharged.empty());
  const Evidence& ev = report.discharged.front().evidence;
  EXPECT_EQ(ev.discharge_rule, "lockset.common");
  ASSERT_FALSE(ev.common_guards.empty());
  EXPECT_EQ(ev.common_guards.front(), "critical");
}

}  // namespace
}  // namespace drbml::analysis
