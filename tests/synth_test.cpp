// Tests for the synthetic training-data generator (Section 4.5 remedy):
// every generated kernel must parse, execute cleanly, and carry a label
// the dynamic detector agrees with (the generator's labels are
// by-construction ground truth).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/race.hpp"
#include "analysis/resolve.hpp"
#include "drb/synth.hpp"
#include "minic/parser.hpp"
#include "runtime/dynamic.hpp"
#include "runtime/interp.hpp"

namespace drbml::drb {
namespace {

const std::vector<SynthEntry>& sample() {
  static const std::vector<SynthEntry> entries = [] {
    SynthConfig config;
    config.count = 60;
    config.seed = 99;
    return synthesize(config);
  }();
  return entries;
}

TEST(Synth, GeneratesRequestedCount) {
  EXPECT_EQ(sample().size(), 60u);
  SynthConfig small;
  small.count = 5;
  EXPECT_EQ(synthesize(small).size(), 5u);
}

TEST(Synth, DeterministicForSeed) {
  SynthConfig config;
  config.count = 10;
  config.seed = 4;
  const auto a = synthesize(config);
  const auto b = synthesize(config);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].code, b[i].code);
    EXPECT_EQ(a[i].race, b[i].race);
  }
  config.seed = 5;
  const auto c = synthesize(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].code != c[i].code) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synth, RoughClassBalance) {
  int yes = 0;
  for (const auto& e : sample()) yes += e.race ? 1 : 0;
  EXPECT_GT(yes, 15);
  EXPECT_LT(yes, 45);
}

TEST(Synth, NamesEncodeVerdict) {
  for (const auto& e : sample()) {
    if (e.race) {
      EXPECT_NE(e.name.find("-yes.c"), std::string::npos) << e.name;
    } else {
      EXPECT_NE(e.name.find("-no.c"), std::string::npos) << e.name;
    }
  }
}

class SynthEntryTest : public ::testing::TestWithParam<int> {};

TEST_P(SynthEntryTest, ExecutesCleanlyAndLabelIsSound) {
  const SynthEntry& e = sample()[static_cast<std::size_t>(GetParam())];
  runtime::DynamicDetectorOptions opts;
  opts.schedule_seeds = {1, 2};
  runtime::DynamicRaceDetector detector(opts);

  const runtime::RunResult run = detector.run_once(e.code, 1);
  EXPECT_FALSE(run.faulted) << e.name << ": " << run.fault_message << "\n"
                            << e.code;

  const bool observed = detector.analyze_source(e.code).race_detected;
  // Dynamic observation must agree with the constructed label: these
  // templates have schedule-robust races (or none at all).
  EXPECT_EQ(observed, e.race) << e.name << "\n" << e.code;

  // The conservative static detector must also flag every racy kernel
  // (templates are affine, so it should be exact here).
  analysis::StaticRaceDetector static_tool;
  EXPECT_EQ(static_tool.analyze_source(e.code).race_detected, e.race)
      << e.name << "\n" << e.code;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SynthEntryTest, ::testing::Range(0, 60));

// Differential fuzzing of the bytecode VM: ~200 random synthesized
// kernels, executed under both backends. The generator's parameter space
// reaches expression/loop shapes the hand-written corpus does not, so
// this is the adversarial input source for the compiler's lowering.
TEST(SynthVmDifferential, TwoHundredKernelsInterpVsVm) {
  SynthConfig config;
  config.count = 200;
  config.seed = 0xd1ffULL;
  const std::vector<SynthEntry> entries = synthesize(config);
  ASSERT_EQ(entries.size(), 200u);

  for (const SynthEntry& e : entries) {
    minic::Program prog = minic::parse_program(e.code);
    analysis::Resolution res = analysis::resolve(*prog.unit);

    runtime::RunOptions opts;
    opts.seed = 5;
    opts.backend = runtime::Backend::Interp;
    const runtime::RunResult interp =
        runtime::run_program(*prog.unit, res, opts);
    opts.backend = runtime::Backend::Vm;
    const runtime::RunResult vm = runtime::run_program(*prog.unit, res, opts);

    // Same race verdict, same program output, same schedule length.
    EXPECT_EQ(interp.report.race_detected, vm.report.race_detected)
        << e.name << "\n"
        << e.code;
    EXPECT_EQ(interp.output, vm.output) << e.name << "\n" << e.code;
    EXPECT_EQ(interp.steps, vm.steps) << e.name;
    EXPECT_EQ(interp.faulted, vm.faulted) << e.name;
    EXPECT_EQ(interp.fault_message, vm.fault_message) << e.name;
  }
}

// Serial-execution equality: with one thread there is no schedule
// nondeterminism at all, so any output difference is a pure lowering
// bug. Covers all 200 kernels cheaply.
TEST(SynthVmDifferential, SerialOutputIdentical) {
  SynthConfig config;
  config.count = 200;
  config.seed = 0x5e41ULL;
  const std::vector<SynthEntry> entries = synthesize(config);

  for (const SynthEntry& e : entries) {
    minic::Program prog = minic::parse_program(e.code);
    analysis::Resolution res = analysis::resolve(*prog.unit);

    runtime::RunOptions opts;
    opts.num_threads = 1;
    opts.backend = runtime::Backend::Interp;
    const runtime::RunResult interp =
        runtime::run_program(*prog.unit, res, opts);
    opts.backend = runtime::Backend::Vm;
    const runtime::RunResult vm = runtime::run_program(*prog.unit, res, opts);

    EXPECT_EQ(interp.output, vm.output) << e.name << "\n" << e.code;
    EXPECT_EQ(interp.exit_code, vm.exit_code) << e.name;
    EXPECT_EQ(interp.steps, vm.steps) << e.name;
  }
}

}  // namespace
}  // namespace drbml::drb
