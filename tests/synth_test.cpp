// Tests for the synthetic training-data generator (Section 4.5 remedy):
// every generated kernel must parse, execute cleanly, and carry a label
// the dynamic detector agrees with (the generator's labels are
// by-construction ground truth).
#include <gtest/gtest.h>

#include <set>

#include "analysis/race.hpp"
#include "drb/synth.hpp"
#include "runtime/dynamic.hpp"

namespace drbml::drb {
namespace {

const std::vector<SynthEntry>& sample() {
  static const std::vector<SynthEntry> entries = [] {
    SynthConfig config;
    config.count = 60;
    config.seed = 99;
    return synthesize(config);
  }();
  return entries;
}

TEST(Synth, GeneratesRequestedCount) {
  EXPECT_EQ(sample().size(), 60u);
  SynthConfig small;
  small.count = 5;
  EXPECT_EQ(synthesize(small).size(), 5u);
}

TEST(Synth, DeterministicForSeed) {
  SynthConfig config;
  config.count = 10;
  config.seed = 4;
  const auto a = synthesize(config);
  const auto b = synthesize(config);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].code, b[i].code);
    EXPECT_EQ(a[i].race, b[i].race);
  }
  config.seed = 5;
  const auto c = synthesize(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].code != c[i].code) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synth, RoughClassBalance) {
  int yes = 0;
  for (const auto& e : sample()) yes += e.race ? 1 : 0;
  EXPECT_GT(yes, 15);
  EXPECT_LT(yes, 45);
}

TEST(Synth, NamesEncodeVerdict) {
  for (const auto& e : sample()) {
    if (e.race) {
      EXPECT_NE(e.name.find("-yes.c"), std::string::npos) << e.name;
    } else {
      EXPECT_NE(e.name.find("-no.c"), std::string::npos) << e.name;
    }
  }
}

class SynthEntryTest : public ::testing::TestWithParam<int> {};

TEST_P(SynthEntryTest, ExecutesCleanlyAndLabelIsSound) {
  const SynthEntry& e = sample()[static_cast<std::size_t>(GetParam())];
  runtime::DynamicDetectorOptions opts;
  opts.schedule_seeds = {1, 2};
  runtime::DynamicRaceDetector detector(opts);

  const runtime::RunResult run = detector.run_once(e.code, 1);
  EXPECT_FALSE(run.faulted) << e.name << ": " << run.fault_message << "\n"
                            << e.code;

  const bool observed = detector.analyze_source(e.code).race_detected;
  // Dynamic observation must agree with the constructed label: these
  // templates have schedule-robust races (or none at all).
  EXPECT_EQ(observed, e.race) << e.name << "\n" << e.code;

  // The conservative static detector must also flag every racy kernel
  // (templates are affine, so it should be exact here).
  analysis::StaticRaceDetector static_tool;
  EXPECT_EQ(static_tool.analyze_source(e.code).race_detected, e.race)
      << e.name << "\n" << e.code;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SynthEntryTest, ::testing::Range(0, 60));

}  // namespace
}  // namespace drbml::drb
