// Tests for the dependence-graph modality extension: graph construction,
// serialization, and the modality-augmented prompt/decision pipeline.
#include <gtest/gtest.h>

#include "analysis/depgraph.hpp"
#include "drb/corpus.hpp"
#include "eval/experiments.hpp"
#include "llm/model.hpp"

namespace drbml {
namespace {

const char* kAntiDep =
    "int main() {\n"
    "  int a[80];\n"
    "  for (int i = 0; i < 80; i++) a[i] = i;\n"
    "#pragma omp parallel for\n"
    "  for (int i = 0; i < 79; i++) a[i] = a[i+1] + 1;\n"
    "  return 0;\n"
    "}\n";

const char* kClean =
    "int main() {\n"
    "  int a[80];\n"
    "#pragma omp parallel for\n"
    "  for (int i = 0; i < 80; i++) a[i] = i * 3;\n"
    "  return 0;\n"
    "}\n";

TEST(DepGraph, AntiDependenceProducesCrossThreadEdge) {
  const analysis::DependenceGraph g =
      analysis::build_dependence_graph(kAntiDep);
  EXPECT_GE(g.nodes.size(), 2u);
  EXPECT_GT(g.cross_thread_edges(), 0);
  bool found_anti = false;
  for (const auto& e : g.edges) {
    if (e.kind == analysis::DepEdgeKind::AntiDep ||
        e.kind == analysis::DepEdgeKind::TrueDep) {
      found_anti = true;
    }
  }
  EXPECT_TRUE(found_anti);
}

TEST(DepGraph, CleanLoopHasNoCrossThreadEdges) {
  const analysis::DependenceGraph g =
      analysis::build_dependence_graph(kClean);
  EXPECT_EQ(g.cross_thread_edges(), 0);
}

TEST(DepGraph, TextSerializationListsNodesAndEdges) {
  const analysis::DependenceGraph g =
      analysis::build_dependence_graph(kAntiDep);
  const std::string text = g.to_text();
  EXPECT_NE(text.find("a[i+1]"), std::string::npos);
  EXPECT_NE(text.find("cross-thread"), std::string::npos);
  EXPECT_NE(text.find("W ["), std::string::npos);
}

TEST(DepGraph, DotRendersDigraph) {
  const analysis::DependenceGraph g =
      analysis::build_dependence_graph(kAntiDep);
  const std::string dot = g.to_dot();
  EXPECT_EQ(dot.find("digraph dependences {"), 0u);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(DepGraph, BuildsForEveryCorpusEntry) {
  for (const auto& e : drb::corpus()) {
    const analysis::DependenceGraph g =
        analysis::build_dependence_graph(e.body);
    // Race-yes entries detected by the conservative analysis must show a
    // cross-thread edge (subset relationship with the static detector).
    if (e.race && e.pattern != "interproc") {
      // Most but not all yes-entries: interprocedural effects are not in
      // the graph by design; don't assert per-entry beyond smoke.
    }
    (void)g;
  }
  SUCCEED();
}

TEST(Modality, PromptCarriesMarkerAndAux) {
  const prompts::Chat chat = prompts::modal_detection_chat(
      prompts::Style::P1, prompts::Modality::DepGraph, kAntiDep,
      "n0: a[i] @5:5 W [shared]\n");
  ASSERT_EQ(chat.size(), 1u);
  EXPECT_NE(chat[0].content.find(prompts::kDepGraphMarker),
            std::string::npos);
  EXPECT_NE(chat[0].content.find("n0: a[i]"), std::string::npos);
}

TEST(Modality, TextModalityLeavesPromptUnchanged) {
  const prompts::Chat plain =
      prompts::detection_chat(prompts::Style::P1, kAntiDep);
  const prompts::Chat modal = prompts::modal_detection_chat(
      prompts::Style::P1, prompts::Modality::Text, kAntiDep, "ignored");
  EXPECT_EQ(plain[0].content, modal[0].content);
}

TEST(Modality, ExtractCodeIgnoresAuxSection) {
  const prompts::Chat chat = prompts::modal_detection_chat(
      prompts::Style::P1, prompts::Modality::Ast, kAntiDep,
      "int main() { }  // AST rendering, must not be mistaken for code");
  const std::string code = llm::extract_code_from_prompt(chat[0].content);
  EXPECT_EQ(code.find("AST rendering"), std::string::npos);
  EXPECT_NE(code.find("#pragma omp parallel for"), std::string::npos);
}

TEST(Modality, DepGraphSharpensDecisions) {
  llm::ChatModel gpt4(llm::gpt4_persona());
  const llm::Verdict text =
      gpt4.decide(prompts::Style::P1, kAntiDep, prompts::Modality::Text);
  const llm::Verdict graph =
      gpt4.decide(prompts::Style::P1, kAntiDep, prompts::Modality::DepGraph);
  // Evidence says race: the graph modality must increase P(yes).
  EXPECT_GT(graph.p_yes, text.p_yes);
}

TEST(Modality, GraphBeatsTextOnSubsetF1) {
  const auto subset = eval::token_filtered_subset();
  llm::ChatModel gpt4(llm::gpt4_persona());
  const double text_f1 =
      eval::run_detection_modal(gpt4, prompts::Style::P1,
                                prompts::Modality::Text, subset)
          .f1();
  const double graph_f1 =
      eval::run_detection_modal(gpt4, prompts::Style::P1,
                                prompts::Modality::DepGraph, subset)
          .f1();
  EXPECT_GT(graph_f1, text_f1);
}

}  // namespace
}  // namespace drbml
