// Tests for the evaluation harness: response parsing, metrics, pair
// matching, subset filtering, and the experiment runners' invariants.
#include <gtest/gtest.h>

#include "eval/experiments.hpp"
#include "eval/metrics.hpp"
#include "eval/parse.hpp"

namespace drbml::eval {
namespace {

// ------------------------------------------------------------- detection

TEST(ParseDetection, LeadingVerdicts) {
  EXPECT_EQ(parse_detection("Yes, there is a data race."), true);
  EXPECT_EQ(parse_detection("no. The loop is clean."), false);
  EXPECT_EQ(parse_detection("NO"), false);
}

TEST(ParseDetection, BuriedVerdicts) {
  EXPECT_EQ(parse_detection("I believe the answer is yes -- a race exists."),
            true);
  EXPECT_EQ(parse_detection(
                "Based on the dependence structure the answer is no."),
            false);
}

TEST(ParseDetection, WholeWordOnly) {
  // "knowledge" and "yesterday" must not match.
  EXPECT_EQ(parse_detection("To my knowledge this is undecidable."),
            std::nullopt);
  EXPECT_EQ(parse_detection("Yesterday it worked; today: yes."), true);
}

TEST(ParseDetection, FirstVerdictWins) {
  EXPECT_EQ(parse_detection("yes... or maybe no"), true);
  EXPECT_EQ(parse_detection("no, definitely not yes"), false);
}

TEST(ParseDetection, NoVerdict) {
  EXPECT_EQ(parse_detection(""), std::nullopt);
  EXPECT_EQ(parse_detection("I cannot process this request."), std::nullopt);
}

// ------------------------------------------------------------- var-id

TEST(ParseVarId, StructuredJsonBlock) {
  const char* response = R"(yes
{
  "data_race": 1,
  "variable_names": ["a[i]", "a[i+1]"],
  "variable_locations": [14, 14],
  "operation_types": ["write", "read"]
})";
  const ParsedVarId parsed = parse_varid(response);
  EXPECT_EQ(parsed.verdict, true);
  EXPECT_TRUE(parsed.structured);
  ASSERT_EQ(parsed.pairs.size(), 1u);
  EXPECT_EQ(parsed.pairs[0].names[1], "a[i+1]");
  EXPECT_EQ(parsed.pairs[0].lines[0], 14);
  EXPECT_EQ(parsed.pairs[0].ops[0], "w");
  EXPECT_EQ(parsed.pairs[0].ops[1], "r");
}

TEST(ParseVarId, ProseFallback) {
  const char* response =
      "Yes, the provided code exhibits data race issues. The data race is "
      "caused by the variable 'x' at line 9 and the variable 'x' at line "
      "26. Both instances involve write operations.";
  const ParsedVarId parsed = parse_varid(response);
  EXPECT_EQ(parsed.verdict, true);
  EXPECT_FALSE(parsed.structured);
  ASSERT_EQ(parsed.pairs.size(), 1u);
  EXPECT_EQ(parsed.pairs[0].names[0], "x");
  EXPECT_EQ(parsed.pairs[0].lines[0], 9);
  EXPECT_EQ(parsed.pairs[0].lines[1], 26);
}

TEST(ParseVarId, MalformedJsonFallsBackToProse) {
  const char* response =
      "yes { this is not json } but the variable 'sum' at line 5 and the "
      "variable 'sum' at line 5 race; a write operation and a read.";
  const ParsedVarId parsed = parse_varid(response);
  EXPECT_FALSE(parsed.structured);
  ASSERT_EQ(parsed.pairs.size(), 1u);
  EXPECT_EQ(parsed.pairs[0].names[0], "sum");
}

TEST(ParseVarId, CleanNoHasNoPairs) {
  const ParsedVarId parsed = parse_varid("no, the code is free of data races.");
  EXPECT_EQ(parsed.verdict, false);
  EXPECT_TRUE(parsed.pairs.empty());
}

TEST(ParseVarId, DataRaceFieldOverridesVerdict) {
  const char* response = R"({
  "data_race": 0,
  "variable_names": ["a", "b"],
  "variable_locations": [1, 2],
  "operation_types": ["write", "read"]
})";
  const ParsedVarId parsed = parse_varid(response);
  EXPECT_EQ(parsed.verdict, false);
  EXPECT_FALSE(parsed.pairs.empty());
}

// ------------------------------------------------------------- matching

dataset::VarPairLabel make_label() {
  dataset::VarPairLabel label;
  label.name = {"a[i]", "a[i+1]"};
  label.line = {14, 14};
  label.col = {5, 10};
  label.operation = {"w", "r"};
  return label;
}

ParsedVarId with_pair(std::vector<std::string> names, std::vector<int> lines,
                      std::vector<std::string> ops) {
  ParsedVarId parsed;
  parsed.verdict = true;
  ParsedPair pair;
  pair.names = std::move(names);
  pair.lines = std::move(lines);
  pair.ops = std::move(ops);
  parsed.pairs.push_back(std::move(pair));
  return parsed;
}

TEST(VaridMatch, ExactMatchSucceeds) {
  dataset::Entry e;
  e.data_race = 1;
  e.var_pairs = {make_label()};
  EXPECT_TRUE(varid_matches(
      with_pair({"a[i]", "a[i+1]"}, {14, 14}, {"w", "r"}), e));
}

TEST(VaridMatch, SwappedOrderSucceeds) {
  dataset::Entry e;
  e.var_pairs = {make_label()};
  EXPECT_TRUE(varid_matches(
      with_pair({"a[i+1]", "a[i]"}, {14, 14}, {"r", "w"}), e));
}

TEST(VaridMatch, WrongLineFails) {
  dataset::Entry e;
  e.var_pairs = {make_label()};
  EXPECT_FALSE(varid_matches(
      with_pair({"a[i]", "a[i+1]"}, {15, 14}, {"w", "r"}), e));
}

TEST(VaridMatch, WrongOpFails) {
  dataset::Entry e;
  e.var_pairs = {make_label()};
  EXPECT_FALSE(varid_matches(
      with_pair({"a[i]", "a[i+1]"}, {14, 14}, {"w", "w"}), e));
}

TEST(VaridMatch, WhitespaceInsensitiveNames) {
  dataset::Entry e;
  e.var_pairs = {make_label()};
  EXPECT_TRUE(varid_matches(
      with_pair({"a[ i ]", "a[ i + 1 ]"}, {14, 14}, {"w", "r"}), e));
}

// ------------------------------------------------------------- metrics

TEST(Metrics, ConfusionMatrixBasics) {
  ConfusionMatrix cm;
  cm.add(true, true);    // TP
  cm.add(true, false);   // FP
  cm.add(false, false);  // TN
  cm.add(false, true);   // FN
  EXPECT_EQ(cm.tp, 1);
  EXPECT_EQ(cm.fp, 1);
  EXPECT_EQ(cm.tn, 1);
  EXPECT_EQ(cm.fn, 1);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.5);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.5);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.5);
  EXPECT_EQ(cm.total(), 4);
}

TEST(Metrics, DegenerateCasesAreZero) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(Metrics, PaperTable2Values) {
  // BP1 row: TP=66 FP=55 TN=43 FN=34 -> R=0.660, P=0.545, F1=0.597.
  ConfusionMatrix cm;
  cm.tp = 66;
  cm.fp = 55;
  cm.tn = 43;
  cm.fn = 34;
  EXPECT_NEAR(cm.recall(), 0.660, 1e-3);
  EXPECT_NEAR(cm.precision(), 0.545, 5e-4);
  EXPECT_NEAR(cm.f1(), 0.597, 5e-4);
}

TEST(Metrics, StatsAvgAndSd) {
  const Stats s = Stats::of({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.avg, 2.5);
  EXPECT_NEAR(s.sd, 1.118, 1e-3);
  const Stats empty = Stats::of({});
  EXPECT_EQ(empty.avg, 0.0);
}

// ------------------------------------------------------------- subset

// The paper's 4k-token cut keeps 198 of 201; the exploration lock-window
// entry (DRB202) is small, so it survives the cut too.
TEST(Subset, TokenCutKeeps199With101Positives) {
  const auto subset = token_filtered_subset();
  EXPECT_EQ(subset.size(), 199u);
  int yes = 0;
  for (const auto* e : subset) yes += e->data_race;
  EXPECT_EQ(yes, 101);
}

TEST(Subset, TightLimitShrinksFurther) {
  EXPECT_LT(token_filtered_subset(100).size(),
            token_filtered_subset(4000).size());
}

// ------------------------------------------------------------- runners

TEST(Runners, DetectionMatrixCoversWholeSubset) {
  const auto subset = token_filtered_subset();
  llm::ChatModel model(llm::gpt4_persona());
  const ConfusionMatrix cm = run_detection(model, prompts::Style::P1, subset);
  EXPECT_EQ(cm.total(), static_cast<int>(subset.size()));
  EXPECT_EQ(cm.tp + cm.fn, 101);
  EXPECT_EQ(cm.fp + cm.tn, 98);
}

TEST(Runners, DetectionIsDeterministic) {
  const auto subset = token_filtered_subset();
  llm::ChatModel model(llm::gpt35_persona());
  const ConfusionMatrix a = run_detection(model, prompts::Style::P3, subset);
  const ConfusionMatrix b = run_detection(model, prompts::Style::P3, subset);
  EXPECT_EQ(a.tp, b.tp);
  EXPECT_EQ(a.fp, b.fp);
}

TEST(Runners, TraditionalToolBeatsEveryLlm) {
  const auto subset = token_filtered_subset();
  const ConfusionMatrix tool = run_traditional_tool(subset);
  for (const llm::Persona& p : llm::all_personas()) {
    llm::ChatModel model(p);
    const ConfusionMatrix cm = run_detection(model, prompts::Style::P1, subset);
    EXPECT_GT(tool.f1(), cm.f1()) << p.name;
  }
}

TEST(Runners, Gpt4IsBestLlmOnF1) {
  const auto subset = token_filtered_subset();
  llm::ChatModel gpt4(llm::gpt4_persona());
  const double gpt4_f1 =
      run_detection(gpt4, prompts::Style::P1, subset).f1();
  for (const llm::Persona& p : llm::all_personas()) {
    if (p.key == "gpt4") continue;
    llm::ChatModel model(p);
    EXPECT_GT(gpt4_f1,
              run_detection(model, prompts::Style::P1, subset).f1())
        << p.name;
  }
}

TEST(Runners, CvProducesFiveFolds) {
  const CvResult cv =
      run_cv(llm::llama2_persona(), Objective::Detection, false);
  EXPECT_EQ(cv.folds.size(), 5u);
  int total = 0;
  for (const auto& fold : cv.folds) total += fold.total();
  EXPECT_EQ(total, 199);
}

TEST(Runners, FinetuningImprovesStarChatF1) {
  const CvResult base =
      run_cv(llm::starchat_persona(), Objective::Detection, false);
  const CvResult ft =
      run_cv(llm::starchat_persona(), Objective::Detection, true);
  EXPECT_GT(ft.f1.avg, base.f1.avg);
}

TEST(Runners, VarIdIsMuchHarderThanDetection) {
  const auto subset = token_filtered_subset();
  llm::ChatModel gpt4(llm::gpt4_persona());
  const double detection_f1 =
      run_detection(gpt4, prompts::Style::P1, subset).f1();
  const double varid_f1 = run_varid(gpt4, subset).f1();
  EXPECT_LT(varid_f1, detection_f1 / 2.0);
}

}  // namespace
}  // namespace drbml::eval
