// Differential testing of the bytecode VM against the AST-walking
// interpreter -- the harness that makes the backend refactor safe.
//
// The VM's contract is bit-identity, not mere agreement: for every corpus
// entry and every schedule seed, both backends must produce the same race
// verdict, the same race pairs, the same program output, the same step
// count, the same recorded schedule-decision trace, and the same coverage
// signature. Anything weaker would let the VM drift into "a different
// but also plausible" schedule space, silently invalidating replayable
// witnesses and cached verdicts.
//
// The verifier suite at the bottom proves malformed bytecode is rejected
// with a structured error before a single instruction executes.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/resolve.hpp"
#include "drb/corpus.hpp"
#include "explore/explore.hpp"
#include "minic/parser.hpp"
#include "runtime/bc/bc.hpp"
#include "runtime/bc/compile.hpp"
#include "runtime/bc/verify.hpp"
#include "runtime/interp.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace drbml {
namespace {

using runtime::Backend;
using runtime::RunOptions;
using runtime::RunResult;

RunOptions base_options(std::uint64_t seed) {
  RunOptions opts;
  opts.seed = seed;
  opts.capture_trace = true;
  opts.collect_coverage = true;
  return opts;
}

/// Renders everything the two backends must agree on into one string, so
/// a mismatch fails with a readable diff.
std::string fingerprint(const RunResult& r) {
  std::string out;
  out += "race=" + std::to_string(r.report.race_detected ? 1 : 0);
  out += " exit=" + std::to_string(r.exit_code);
  out += " faulted=" + std::to_string(r.faulted ? 1 : 0);
  out += " steps=" + std::to_string(r.steps);
  out += "\nfault: " + r.fault_message;
  out += "\npairs:\n";
  const auto access = [](const analysis::RaceAccess& a) {
    return a.expr_text + "@" + std::to_string(a.loc.line) + ":" +
           std::to_string(a.loc.col) + ":" + a.op;
  };
  for (const auto& p : r.report.pairs) {
    out += "  " + access(p.first) + " vs " + access(p.second) + "\n";
  }
  out += "trace:";
  for (const auto& region : r.trace.regions) {
    out += " [";
    for (const auto& d : region) {
      out += std::to_string(d.step) + ":" + std::to_string(d.target) +
             (d.forced ? "f" : "") + ",";
    }
    out += "]";
  }
  out += "\ncoverage:";
  for (std::uint64_t h : r.coverage) out += " " + std::to_string(h);
  out += "\noutput:\n" + r.output;
  return out;
}

RunResult run_backend(const minic::TranslationUnit& unit,
                      const analysis::Resolution& res, RunOptions opts,
                      Backend backend) {
  opts.backend = backend;
  return runtime::run_program(unit, res, opts);
}

// Every corpus entry, every backend-observable artifact, three seeds.
// Parallel over entries (8 workers) so the suite carries the `parallel`
// label honestly and stays fast enough for the TSan pass.
TEST(VmDifferential, CorpusBitIdenticalAcrossBackends) {
  const std::vector<drb::CorpusEntry>& entries = drb::corpus();
  ASSERT_EQ(entries.size(), 202u);

  const std::vector<std::string> failures = support::parallel_map(
      8, entries, [&](const drb::CorpusEntry& e) -> std::string {
        minic::Program prog = minic::parse_program(e.body);
        analysis::Resolution res = analysis::resolve(*prog.unit);
        for (std::uint64_t seed : {1ULL, 7ULL, 1234567ULL}) {
          const RunOptions opts = base_options(seed);
          const std::string interp = fingerprint(
              run_backend(*prog.unit, res, opts, Backend::Interp));
          const std::string vm =
              fingerprint(run_backend(*prog.unit, res, opts, Backend::Vm));
          if (interp != vm) {
            return e.name + " seed=" + std::to_string(seed) +
                   "\n--- interp ---\n" + interp + "\n--- vm ---\n" + vm;
          }
        }
        return {};
      });

  for (const std::string& f : failures) {
    EXPECT_TRUE(f.empty()) << "backend divergence on " << f;
  }
}

// PCT schedules stress preemption at every shared access; the decision
// traces must still be bit-identical (the VM emits the same access
// sequence, so the same yield points and the same PCT priorities).
TEST(VmDifferential, CorpusBitIdenticalUnderPct) {
  const std::vector<drb::CorpusEntry>& entries = drb::corpus();

  const std::vector<std::string> failures = support::parallel_map(
      8, entries, [&](const drb::CorpusEntry& e) -> std::string {
        minic::Program prog = minic::parse_program(e.body);
        analysis::Resolution res = analysis::resolve(*prog.unit);
        RunOptions opts = base_options(99);
        opts.strategy = runtime::ScheduleStrategy::Pct;
        const std::string interp =
            fingerprint(run_backend(*prog.unit, res, opts, Backend::Interp));
        const std::string vm =
            fingerprint(run_backend(*prog.unit, res, opts, Backend::Vm));
        if (interp != vm) {
          return e.name + "\n--- interp ---\n" + interp + "\n--- vm ---\n" +
                 vm;
        }
        return {};
      });

  for (const std::string& f : failures) {
    EXPECT_TRUE(f.empty()) << "PCT backend divergence on " << f;
  }
}

// The exploration engine end-to-end: schedules run, first-race index,
// coverage union, and the minimized witness must not depend on the
// backend. Racy entries only (exploration of race-free entries is
// covered by the schedule-trace identity above).
TEST(VmDifferential, ExplorationWitnessesBackendIndependent) {
  const std::vector<drb::CorpusEntry>& all = drb::corpus();
  std::vector<drb::CorpusEntry> racy;
  for (const auto& e : all) {
    if (e.race) racy.push_back(e);
  }
  ASSERT_GT(racy.size(), 50u);
  racy.resize(48);  // budget: exploration is the expensive path

  const std::vector<std::string> failures = support::parallel_map(
      8, racy, [&](const drb::CorpusEntry& e) -> std::string {
        explore::ExploreOptions opts;
        opts.max_schedules = 8;
        opts.max_minimize_replays = 32;

        opts.run.backend = Backend::Interp;
        const explore::ExploreResult interp =
            explore::explore_source(e.body, opts);
        opts.run.backend = Backend::Vm;
        opts.run.module = nullptr;
        const explore::ExploreResult vm =
            explore::explore_source(e.body, opts);

        std::string diff;
        if (interp.race_detected != vm.race_detected) {
          diff += "race_detected differs; ";
        }
        if (interp.schedules_run != vm.schedules_run) {
          diff += "schedules_run differs; ";
        }
        if (interp.first_race_schedule != vm.first_race_schedule) {
          diff += "first_race_schedule differs; ";
        }
        if (interp.coverage != vm.coverage) diff += "coverage differs; ";
        if (interp.witness != vm.witness) diff += "witness differs; ";
        if (interp.witness_decisions != vm.witness_decisions) {
          diff += "witness_decisions differs; ";
        }
        return diff.empty() ? std::string{} : e.name + ": " + diff;
      });

  for (const std::string& f : failures) {
    EXPECT_TRUE(f.empty()) << "exploration divergence on " << f;
  }
}

// A witness minimized under one backend must replay (and still race)
// under the other: replayability is what makes witnesses shippable.
TEST(VmDifferential, WitnessesReplayAcrossBackends) {
  const drb::CorpusEntry* entry = nullptr;
  for (const auto& e : drb::corpus()) {
    if (e.race) {
      entry = &e;
      break;
    }
  }
  ASSERT_NE(entry, nullptr);

  explore::ExploreOptions opts;
  opts.max_schedules = 16;
  opts.run.backend = Backend::Interp;
  const explore::ExploreResult interp_result =
      explore::explore_source(entry->body, opts);
  ASSERT_TRUE(interp_result.race_detected);
  ASSERT_FALSE(interp_result.witness.empty());

  const explore::Witness w = explore::decode_witness(interp_result.witness);
  RunOptions base;
  base.backend = Backend::Vm;
  const RunResult vm_replay = explore::replay_witness(entry->body, w, base);
  EXPECT_TRUE(vm_replay.report.race_detected)
      << "witness minimized under interp does not race under vm";

  base.backend = Backend::Interp;
  const RunResult interp_replay =
      explore::replay_witness(entry->body, w, base);
  EXPECT_EQ(fingerprint(interp_replay), fingerprint(vm_replay));
}

// ------------------------------------------------------------- verifier

runtime::bc::Module compile_entry(const std::string& body,
                                  minic::Program& prog) {
  prog = minic::parse_program(body);
  analysis::resolve(*prog.unit);
  return runtime::bc::compile(*prog.unit);
}

TEST(VmVerifier, AcceptsEveryCorpusModule) {
  for (const auto& e : drb::corpus()) {
    minic::Program prog;
    runtime::bc::Module m = compile_entry(e.body, prog);
    const auto err = runtime::bc::verify(m);
    EXPECT_FALSE(err.has_value())
        << e.name << ": " << (err ? err->to_string() : "");
    EXPECT_TRUE(m.verified);
  }
}

TEST(VmVerifier, RejectsTruncatedChunk) {
  minic::Program prog;
  runtime::bc::Module m =
      compile_entry("int main() { int x = 1; return x; }", prog);
  ASSERT_FALSE(m.chunks.empty());
  ASSERT_GT(m.chunks[0].code.size(), 1u);
  m.chunks[0].code.pop_back();  // drop the terminating Halt
  const auto err = runtime::bc::verify(m);
  ASSERT_TRUE(err.has_value());
  EXPECT_FALSE(m.verified);
  EXPECT_NE(err->to_string().find("chunk"), std::string::npos);
}

TEST(VmVerifier, RejectsOutOfRangeRegister) {
  minic::Program prog;
  runtime::bc::Module m =
      compile_entry("int main() { int x = 1; return x; }", prog);
  ASSERT_FALSE(m.chunks.empty());
  bool patched = false;
  for (auto& in : m.chunks[0].code) {
    if (in.op == runtime::bc::Op::Const) {
      in.a = 60001;  // far beyond frame_size()
      patched = true;
      break;
    }
  }
  ASSERT_TRUE(patched);
  const auto err = runtime::bc::verify(m);
  ASSERT_TRUE(err.has_value());
  EXPECT_FALSE(m.verified);
}

TEST(VmVerifier, RejectsWildJumpTarget) {
  minic::Program prog;
  runtime::bc::Module m = compile_entry(
      "int main() { int i; for (i = 0; i < 3; i++) {} return 0; }", prog);
  bool patched = false;
  for (auto& ch : m.chunks) {
    for (auto& in : ch.code) {
      if (in.op == runtime::bc::Op::Jump ||
          in.op == runtime::bc::Op::JumpIfFalse) {
        in.imm = static_cast<std::int32_t>(ch.code.size()) + 7;
        patched = true;
        break;
      }
    }
    if (patched) break;
  }
  ASSERT_TRUE(patched) << "expected a jump in the compiled loop";
  const auto err = runtime::bc::verify(m);
  ASSERT_TRUE(err.has_value());
  EXPECT_FALSE(m.verified);
}

TEST(VmVerifier, RejectsOutOfRangePoolIndex) {
  minic::Program prog;
  runtime::bc::Module m =
      compile_entry("int main() { int x = 42; return x; }", prog);
  bool patched = false;
  for (auto& ch : m.chunks) {
    for (auto& in : ch.code) {
      if (in.op == runtime::bc::Op::Const) {
        in.imm = static_cast<std::int32_t>(m.consts.size());
        patched = true;
        break;
      }
    }
    if (patched) break;
  }
  ASSERT_TRUE(patched);
  const auto err = runtime::bc::verify(m);
  ASSERT_TRUE(err.has_value());
  EXPECT_FALSE(m.verified);
}

TEST(VmVerifier, UnverifiedModuleIsNeverExecuted) {
  const std::string src = "int main() { int x = 1; return x; }";
  minic::Program prog = minic::parse_program(src);
  analysis::Resolution res = analysis::resolve(*prog.unit);
  runtime::bc::Module m = runtime::bc::compile(*prog.unit);
  ASSERT_FALSE(m.verified);  // compile() does not verify

  RunOptions opts;
  opts.backend = Backend::Vm;
  opts.module = &m;
  EXPECT_THROW(
      { (void)runtime::run_program(*prog.unit, res, opts); }, Error);
}

TEST(VmVerifier, CompileVerifiedRoundTrips) {
  // compile_verified must round-trip: whatever it returns is verified and
  // carries a chunk for main's body.
  minic::Program prog = minic::parse_program(
      "int main() { int a = 1; int b = 2; return a + b; }");
  analysis::resolve(*prog.unit);
  runtime::bc::Module m = runtime::bc::compile_verified(*prog.unit);
  EXPECT_TRUE(m.verified);
  EXPECT_FALSE(m.chunks.empty());
  EXPECT_EQ(m.find(nullptr), nullptr);
}

}  // namespace
}  // namespace drbml
