// Tests for the interpreter, cooperative scheduler, and dynamic
// (vector-clock) race detector.
#include <gtest/gtest.h>

#include "minic/parser.hpp"
#include "runtime/dynamic.hpp"
#include "runtime/interp.hpp"

namespace drbml::runtime {
namespace {

RunResult run_src(const char* src, RunOptions opts = {}) {
  minic::Program p = minic::parse_program(src);
  analysis::Resolution res = analysis::resolve(*p.unit);
  return run_program(*p.unit, res, opts);
}

analysis::RaceReport detect(const char* src) {
  DynamicRaceDetector detector;
  return detector.analyze_source(src);
}

// ---------------------------------------------------------------- sequential

TEST(Interp, ArithmeticAndPrintf) {
  auto r = run_src(
      "int main() { int x = 6; double y = 2.5; printf(\"%d %0.1f %d\\n\", "
      "x * 7, y * 2.0, x % 4); return 0; }");
  EXPECT_FALSE(r.faulted);
  EXPECT_EQ(r.output, "42 5.0 2\n");
}

TEST(Interp, ExitCodeFromMain) {
  EXPECT_EQ(run_src("int main() { return 3 + 4; }").exit_code, 7);
}

TEST(Interp, ForLoopAccumulates) {
  auto r = run_src(
      "int main() { int s = 0; for (int i = 1; i <= 10; i++) s += i; "
      "printf(\"%d\", s); return 0; }");
  EXPECT_EQ(r.output, "55");
}

TEST(Interp, WhileAndBreakContinue) {
  auto r = run_src(
      "int main() { int i = 0; int s = 0; while (1) { i++; if (i > 10) "
      "break; if (i % 2 == 0) continue; s += i; } printf(\"%d\", s); return "
      "0; }");
  EXPECT_EQ(r.output, "25");
}

TEST(Interp, ArraysAndMultiDim) {
  auto r = run_src(
      "int main() { int a[3][4]; for (int i = 0; i < 3; i++) for (int j = "
      "0; j < 4; j++) a[i][j] = i * 10 + j; printf(\"%d %d\", a[2][3], "
      "a[0][1]); return 0; }");
  EXPECT_EQ(r.output, "23 1");
}

TEST(Interp, GlobalInitializerList) {
  auto r = run_src(
      "int tab[4] = {2, 3, 5, 7};\n"
      "int main() { printf(\"%d\", tab[0] + tab[1] + tab[2] + tab[3]); "
      "return 0; }");
  EXPECT_EQ(r.output, "17");
}

TEST(Interp, FunctionsAndRecursion) {
  auto r = run_src(
      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
      "int main() { printf(\"%d\", fib(10)); return 0; }");
  EXPECT_EQ(r.output, "55");
}

TEST(Interp, FunctionMutatesArrayThroughPointer) {
  auto r = run_src(
      "void fill(int* a, int n, int v) { for (int i = 0; i < n; i++) a[i] = "
      "v; }\n"
      "int main() { int b[5]; fill(b, 5, 9); printf(\"%d\", b[4]); return 0; "
      "}");
  EXPECT_EQ(r.output, "9");
}

TEST(Interp, MallocFreeSizeofConvention) {
  auto r = run_src(
      "int main() { int* p = (int*)malloc(10 * sizeof(int)); for (int i = "
      "0; i < 10; i++) p[i] = i; int s = 0; for (int i = 0; i < 10; i++) s "
      "+= p[i]; free(p); printf(\"%d\", s); return 0; }");
  EXPECT_FALSE(r.faulted) << r.fault_message;
  EXPECT_EQ(r.output, "45");
}

TEST(Interp, OutOfBoundsFaults) {
  auto r = run_src("int main() { int a[3]; a[5] = 1; return 0; }");
  EXPECT_TRUE(r.faulted);
  EXPECT_NE(r.fault_message.find("out-of-bounds"), std::string::npos);
}

TEST(Interp, UseAfterFreeFaults) {
  auto r = run_src(
      "int main() { int* p = (int*)malloc(4); free(p); p[0] = 1; return 0; "
      "}");
  EXPECT_TRUE(r.faulted);
}

TEST(Interp, DivisionByZeroFaults) {
  auto r = run_src("int main() { int x = 1; int y = x / (x - x); return y; }");
  EXPECT_TRUE(r.faulted);
}

TEST(Interp, InfiniteLoopHitsStepLimit) {
  RunOptions opts;
  opts.step_limit = 10000;
  auto r = run_src("int main() { int x = 0; while (1) { x = x + 1; } }", opts);
  EXPECT_TRUE(r.faulted);
}

TEST(Interp, PointerArithmetic) {
  auto r = run_src(
      "int main() { int a[5]; for (int i = 0; i < 5; i++) a[i] = i * i; "
      "int* p = a; p = p + 2; printf(\"%d %d\", *p, p[1]); return 0; }");
  EXPECT_EQ(r.output, "4 9");
}

TEST(Interp, TernaryAndLogicalShortCircuit) {
  auto r = run_src(
      "int main() { int a[2]; a[0] = 1; int i = 5; int v = (i < 2 && a[i]) "
      "? 1 : 0; printf(\"%d\", v); return 0; }");
  // a[i] must not be evaluated (it would be out of bounds).
  EXPECT_FALSE(r.faulted);
  EXPECT_EQ(r.output, "0");
}

// ---------------------------------------------------------------- parallel

TEST(Parallel, ReductionComputesCorrectSum) {
  auto r = run_src(
      "int main() {\n"
      "  int sum = 0;\n"
      "#pragma omp parallel for reduction(+:sum)\n"
      "  for (int i = 1; i <= 100; i++) sum += i;\n"
      "  printf(\"%d\", sum);\n"
      "  return 0;\n"
      "}");
  EXPECT_FALSE(r.faulted) << r.fault_message;
  EXPECT_EQ(r.output, "5050");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, ParallelForWritesAllElements) {
  auto r = run_src(
      "int main() {\n"
      "  int a[64];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 64; i++) a[i] = i;\n"
      "  int bad = 0;\n"
      "  for (int i = 0; i < 64; i++) if (a[i] != i) bad++;\n"
      "  printf(\"%d\", bad);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "0");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, CriticalCounterIsExact) {
  auto r = run_src(
      "int main() {\n"
      "  int count = 0;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 50; i++) {\n"
      "#pragma omp critical\n"
      "    { count = count + 1; }\n"
      "  }\n"
      "  printf(\"%d\", count);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "50");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, AtomicCounterIsExactAndRaceFree) {
  auto r = run_src(
      "int main() {\n"
      "  int count = 0;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 50; i++) {\n"
      "#pragma omp atomic\n"
      "    count += 1;\n"
      "  }\n"
      "  printf(\"%d\", count);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "50");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, ThreadNumAndNumThreads) {
  auto r = run_src(
      "int main() {\n"
      "  int seen[16];\n"
      "  for (int i = 0; i < 16; i++) seen[i] = 0;\n"
      "#pragma omp parallel num_threads(4)\n"
      "  { seen[omp_get_thread_num()] = omp_get_num_threads(); }\n"
      "  printf(\"%d%d%d%d\", seen[0], seen[1], seen[2], seen[3]);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "4444");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, OmpLockProtects) {
  auto r = run_src(
      "int main() {\n"
      "  omp_lock_t lck;\n"
      "  int count = 0;\n"
      "  omp_init_lock(&lck);\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 40; i++) {\n"
      "    omp_set_lock(&lck);\n"
      "    count = count + 1;\n"
      "    omp_unset_lock(&lck);\n"
      "  }\n"
      "  omp_destroy_lock(&lck);\n"
      "  printf(\"%d\", count);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "40");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, FirstprivateCopiesValue) {
  auto r = run_src(
      "int main() {\n"
      "  int base = 7;\n"
      "  int a[32];\n"
      "#pragma omp parallel for firstprivate(base)\n"
      "  for (int i = 0; i < 32; i++) a[i] = base + i;\n"
      "  printf(\"%d %d\", a[0], a[31]);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "7 38");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, LastprivateWritesBack) {
  auto r = run_src(
      "int main() {\n"
      "  int last = -1;\n"
      "  int a[32];\n"
      "  for (int i = 0; i < 32; i++) a[i] = i * 2;\n"
      "#pragma omp parallel for lastprivate(last)\n"
      "  for (int i = 0; i < 32; i++) last = a[i];\n"
      "  printf(\"%d\", last);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "62");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, SingleExecutesOnce) {
  auto r = run_src(
      "int main() {\n"
      "  int count = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp single\n"
      "    { count = count + 1; }\n"
      "  }\n"
      "  printf(\"%d\", count);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "1");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, SectionsRunAll) {
  auto r = run_src(
      "int main() {\n"
      "  int x = 0;\n"
      "  int y = 0;\n"
      "#pragma omp parallel sections\n"
      "  {\n"
      "#pragma omp section\n"
      "    { x = 11; }\n"
      "#pragma omp section\n"
      "    { y = 22; }\n"
      "  }\n"
      "  printf(\"%d %d\", x, y);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "11 22");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, OrderedPreservesOrder) {
  auto r = run_src(
      "int main() {\n"
      "  int log[10];\n"
      "  int pos = 0;\n"
      "#pragma omp parallel for ordered\n"
      "  for (int i = 0; i < 10; i++) {\n"
      "#pragma omp ordered\n"
      "    { log[pos] = i; pos = pos + 1; }\n"
      "  }\n"
      "  int bad = 0;\n"
      "  for (int i = 0; i < 10; i++) if (log[i] != i) bad++;\n"
      "  printf(\"%d\", bad);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "0");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, TaskProducesResultWithTaskwait) {
  auto r = run_src(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "#pragma omp single\n"
      "  {\n"
      "#pragma omp task\n"
      "    { x = 42; }\n"
      "#pragma omp taskwait\n"
      "    printf(\"%d\", x);\n"
      "  }\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "42");
  EXPECT_FALSE(r.report.race_detected);
}

TEST(Parallel, ScheduleStaticChunk) {
  auto r = run_src(
      "int main() {\n"
      "  int a[40];\n"
      "#pragma omp parallel for schedule(static, 2)\n"
      "  for (int i = 0; i < 40; i++) a[i] = i + 1;\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 40; i++) s += a[i];\n"
      "  printf(\"%d\", s);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "820");
}

TEST(Parallel, CollapseCoversFullSpace) {
  auto r = run_src(
      "int main() {\n"
      "  int m[6][7];\n"
      "#pragma omp parallel for collapse(2)\n"
      "  for (int i = 0; i < 6; i++)\n"
      "    for (int j = 0; j < 7; j++)\n"
      "      m[i][j] = 1;\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 6; i++)\n"
      "    for (int j = 0; j < 7; j++)\n"
      "      s += m[i][j];\n"
      "  printf(\"%d\", s);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(r.output, "42");
  EXPECT_FALSE(r.report.race_detected);
}

// ------------------------------------------------------------ race detection

TEST(DynamicRace, AntiDependenceDetected) {
  auto report = detect(
      "int main() {\n"
      "  int a[100];\n"
      "  for (int i = 0; i < 100; i++) a[i] = i;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 99; i++) a[i] = a[i+1] + 1;\n"
      "  return 0;\n"
      "}");
  ASSERT_TRUE(report.race_detected);
  EXPECT_EQ(report.pairs[0].first.var_name, "a");
  EXPECT_EQ(report.pairs[0].first.op, 'w');
}

TEST(DynamicRace, SharedSumDetected) {
  auto report = detect(
      "int main() {\n"
      "  int sum = 0;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 64; i++) sum = sum + i;\n"
      "  return sum;\n"
      "}");
  ASSERT_TRUE(report.race_detected);
  EXPECT_EQ(report.pairs[0].first.var_name, "sum");
}

TEST(DynamicRace, DisjointWritesClean) {
  auto report = detect(
      "int main() {\n"
      "  int a[128];\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 128; i++) a[i] = i;\n"
      "  return 0;\n"
      "}");
  EXPECT_FALSE(report.race_detected);
}

TEST(DynamicRace, IndirectIndexRealRaceDetected) {
  // All idx entries collide on element 0: a genuine race a static tool can
  // only guess at.
  auto report = detect(
      "int main() {\n"
      "  int idx[64];\n"
      "  int a[64];\n"
      "  for (int i = 0; i < 64; i++) idx[i] = 0;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 64; i++) a[idx[i]] = i;\n"
      "  return 0;\n"
      "}");
  EXPECT_TRUE(report.race_detected);
}

TEST(DynamicRace, IndirectIndexDisjointClean) {
  auto report = detect(
      "int main() {\n"
      "  int idx[64];\n"
      "  int a[64];\n"
      "  for (int i = 0; i < 64; i++) idx[i] = i;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 64; i++) a[idx[i]] = i;\n"
      "  return 0;\n"
      "}");
  EXPECT_FALSE(report.race_detected);
}

TEST(DynamicRace, MasterNoBarrierDetected) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp master\n"
      "    { x = 1; }\n"
      "    int y = x + 1;\n"
      "    y = y + 1;\n"
      "  }\n"
      "  return x;\n"
      "}");
  EXPECT_TRUE(report.race_detected);
}

TEST(DynamicRace, SingleBarrierClean) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp single\n"
      "    { x = 1; }\n"
      "    int y = x + 1;\n"
      "    y = y + 1;\n"
      "  }\n"
      "  return x;\n"
      "}");
  EXPECT_FALSE(report.race_detected);
}

TEST(DynamicRace, NowaitLoopsDetected) {
  auto report = detect(
      "int main() {\n"
      "  int a[64];\n"
      "  int b[64];\n"
      "  for (int i = 0; i < 64; i++) a[i] = 0;\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp for nowait\n"
      "    for (int i = 0; i < 64; i++) a[i] = i;\n"
      "#pragma omp for\n"
      "    for (int i = 0; i < 64; i++) b[i] = a[63 - i];\n"
      "  }\n"
      "  return 0;\n"
      "}");
  EXPECT_TRUE(report.race_detected);
}

TEST(DynamicRace, BarrierSeparatedLoopsClean) {
  auto report = detect(
      "int main() {\n"
      "  int a[64];\n"
      "  int b[64];\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp for\n"
      "    for (int i = 0; i < 64; i++) a[i] = i;\n"
      "#pragma omp for\n"
      "    for (int i = 0; i < 64; i++) b[i] = a[63 - i];\n"
      "  }\n"
      "  return 0;\n"
      "}");
  EXPECT_FALSE(report.race_detected);
}

TEST(DynamicRace, TasksWithoutSyncDetected) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "#pragma omp single\n"
      "  {\n"
      "#pragma omp task\n"
      "    { x = 1; }\n"
      "#pragma omp task\n"
      "    { x = 2; }\n"
      "  }\n"
      "  return x;\n"
      "}");
  EXPECT_TRUE(report.race_detected);
}

TEST(DynamicRace, TaskDependClean) {
  auto report = detect(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma omp parallel\n"
      "#pragma omp single\n"
      "  {\n"
      "#pragma omp task depend(out: x)\n"
      "    { x = 1; }\n"
      "#pragma omp task depend(in: x)\n"
      "    { int y = x; y = y + 1; }\n"
      "  }\n"
      "  return x;\n"
      "}");
  EXPECT_FALSE(report.race_detected);
}

TEST(DynamicRace, ResultsAreDeterministic) {
  const char* src =
      "int main() {\n"
      "  int sum = 0;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 32; i++) sum = sum + i;\n"
      "  return sum;\n"
      "}";
  DynamicRaceDetector d;
  auto a = d.run_once(src, 7);
  auto b = d.run_once(src, 7);
  EXPECT_EQ(a.report.pairs.size(), b.report.pairs.size());
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(DynamicRace, RaceReportCoordinatesAreTrimmed) {
  auto report = detect(
      "/* two comment lines\n"
      "   before code */\n"
      "int main() {\n"
      "  int a[50];\n"
      "  for (int i = 0; i < 50; i++) a[i] = i;\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 49; i++)\n"
      "    a[i] = a[i+1] + 1;\n"
      "  return 0;\n"
      "}");
  ASSERT_TRUE(report.race_detected);
  EXPECT_EQ(report.pairs[0].first.loc.line, 6);  // trimmed coordinates
}

}  // namespace
}  // namespace drbml::runtime
