// Tests for the OpenMP correctness linter (src/lint): the individual
// checks, comment suppression across every emitter, the SARIF shape, the
// acceptance criterion that SARIF race locations match the DRB-ML labels,
// and the differential run over the whole corpus plus synthetic kernels.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/detector.hpp"
#include "dataset/drbml.hpp"
#include "drb/corpus.hpp"
#include "drb/synth.hpp"
#include "eval/experiments.hpp"
#include "lint/emit.hpp"
#include "lint/lint.hpp"
#include "lint/pass.hpp"
#include "support/json.hpp"

namespace drbml {
namespace {

lint::LintReport lint_code(const std::string& code,
                           lint::LintOptions opts = {}) {
  const lint::Linter linter(std::move(opts));
  return linter.lint_source(code);
}

lint::LintReport lint_entry(const std::string& name,
                            lint::LintOptions opts = {}) {
  const drb::CorpusEntry* entry = drb::find_entry(name);
  EXPECT_NE(entry, nullptr) << name;
  return lint_code(drb::drb_code(*entry), std::move(opts));
}

/// First diagnostic with the given check id, or nullptr.
const lint::Diagnostic* find_check(const lint::LintReport& report,
                                   const std::string& check_id) {
  for (const auto& d : report.diagnostics) {
    if (d.check_id == check_id) return &d;
  }
  return nullptr;
}

int count_check(const lint::LintReport& report, const std::string& check_id) {
  int n = 0;
  for (const auto& d : report.diagnostics) n += d.check_id == check_id ? 1 : 0;
  return n;
}

/// Shorthand navigation into a json::Value tree (throws JsonError on a
/// missing key or type mismatch, which gtest reports as a test failure).
const json::Value& jf(const json::Value& v, std::string_view key) {
  return v.as_object().at(key);
}

const json::Value& ji(const json::Value& v, std::size_t index) {
  return v.as_array()[index];
}

// ------------------------------------------------------------- reduction

TEST(LintReduction, SumFixitOnMissingReductionEntry) {
  const lint::LintReport report =
      lint_entry("DRB047-sumnoreduction-orig-yes.c");
  const lint::Diagnostic* d = find_check(report, "lint.reduction");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, lint::Severity::Error);
  EXPECT_EQ(d->fixit, "reduction(+:total)");
  EXPECT_EQ(d->pattern, "missing-reduction");
  EXPECT_TRUE(report.race.race_detected);
}

TEST(LintReduction, MaxPatternGetsMaxReduction) {
  const lint::LintReport report =
      lint_entry("DRB048-maxnoreduction-orig-yes.c");
  const lint::Diagnostic* d = find_check(report, "lint.reduction");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->fixit, "reduction(max:best)");
}

TEST(LintReduction, EveryMissingReductionFamilyEntryGetsAFixit) {
  for (const auto& entry : drb::corpus()) {
    if (entry.pattern != "missing-reduction") continue;
    const lint::LintReport report = lint_code(drb::drb_code(entry));
    const lint::Diagnostic* d = find_check(report, "lint.reduction");
    ASSERT_NE(d, nullptr) << entry.name;
    EXPECT_EQ(d->fixit.rfind("reduction(", 0), 0u) << entry.name;
  }
}

// ------------------------------------------------------------- datashare

TEST(LintDatashare, DefaultNoneFlagsEveryUnlistedVariable) {
  const std::string code =
      "int main() {\n"
      "  int i;\n"
      "  int n = 100;\n"
      "  double a[100];\n"
      "#pragma omp parallel for default(none) private(i)\n"
      "  for (i = 0; i < n; i++) {\n"
      "    a[i] = n;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  const lint::LintReport report = lint_code(code);
  EXPECT_EQ(count_check(report, "lint.datashare"), 2);
  bool saw_n = false;
  bool saw_a = false;
  for (const auto& d : report.diagnostics) {
    if (d.check_id != "lint.datashare") continue;
    EXPECT_EQ(d.severity, lint::Severity::Error);
    EXPECT_EQ(d.pattern, "default-none");
    saw_n = saw_n || d.fixit == "shared(n)";
    saw_a = saw_a || d.fixit == "shared(a)";
  }
  EXPECT_TRUE(saw_n);
  EXPECT_TRUE(saw_a);
}

TEST(LintDatashare, WriteFirstScalarSuggestsPrivate) {
  const lint::LintReport report = lint_entry("DRB049-seedshared-orig-yes.c");
  const lint::Diagnostic* d = find_check(report, "lint.datashare");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, lint::Severity::Warning);
  EXPECT_EQ(d->fixit, "private(seed)");
  EXPECT_EQ(d->pattern, "missing-private");
}

TEST(LintDatashare, ReadFirstScalarSuggestsFirstprivate) {
  const std::string code =
      "int main() {\n"
      "  int i;\n"
      "  int x = 5;\n"
      "  double out[100];\n"
      "#pragma omp parallel for\n"
      "  for (i = 0; i < 100; i++) {\n"
      "    out[i] = x;\n"
      "    x = i;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  const lint::LintReport report = lint_code(code);
  const lint::Diagnostic* d = find_check(report, "lint.datashare");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->fixit, "firstprivate(x)");
  EXPECT_EQ(d->pattern, "firstprivate-missing");
}

// ------------------------------------------------------------- locks

TEST(LintLock, SetWithoutUnsetWarns) {
  const std::string code =
      "#include <omp.h>\n"
      "int x = 0;\n"
      "omp_lock_t l;\n"
      "int main() {\n"
      "#pragma omp parallel\n"
      "  {\n"
      "    omp_set_lock(&l);\n"
      "    x = x + 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  const lint::LintReport report = lint_code(code);
  const lint::Diagnostic* d = find_check(report, "lint.lock");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, lint::Severity::Warning);
  EXPECT_NE(d->message.find("no matching omp_unset_lock"), std::string::npos);
}

TEST(LintLock, ReacquireWhileHeldIsAnError) {
  const std::string code =
      "#include <omp.h>\n"
      "int x = 0;\n"
      "omp_lock_t l;\n"
      "int main() {\n"
      "#pragma omp parallel\n"
      "  {\n"
      "    omp_set_lock(&l);\n"
      "    omp_set_lock(&l);\n"
      "    x = x + 1;\n"
      "    omp_unset_lock(&l);\n"
      "    omp_unset_lock(&l);\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  const lint::LintReport report = lint_code(code);
  const lint::Diagnostic* d = find_check(report, "lint.lock");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, lint::Severity::Error);
  EXPECT_NE(d->message.find("not reentrant"), std::string::npos);
  ASSERT_FALSE(d->related.empty());  // points at the first acquisition
}

TEST(LintLock, OppositeAcquisitionOrdersAcrossFunctions) {
  const std::string code =
      "#include <omp.h>\n"
      "int x = 0;\n"
      "omp_lock_t a;\n"
      "omp_lock_t b;\n"
      "void f() {\n"
      "  omp_set_lock(&a);\n"
      "  omp_set_lock(&b);\n"
      "  x = x + 1;\n"
      "  omp_unset_lock(&b);\n"
      "  omp_unset_lock(&a);\n"
      "}\n"
      "void g() {\n"
      "  omp_set_lock(&b);\n"
      "  omp_set_lock(&a);\n"
      "  x = x + 2;\n"
      "  omp_unset_lock(&a);\n"
      "  omp_unset_lock(&b);\n"
      "}\n"
      "int main() {\n"
      "#pragma omp parallel\n"
      "  {\n"
      "    f();\n"
      "    g();\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  const lint::LintReport report = lint_code(code);
  const lint::Diagnostic* d = find_check(report, "lint.lock");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("opposite orders"), std::string::npos);
  // The lock-free "DRB031-lockpartial" family is handled by lint.atomic,
  // not reported as an ordering problem.
  EXPECT_EQ(count_check(report, "lint.lock"), 1);
}

// ------------------------------------------------------------- barriers

TEST(LintBarrier, BarrierInsideSingleIsIllegalNesting) {
  const std::string code =
      "int main() {\n"
      "#pragma omp parallel\n"
      "  {\n"
      "#pragma omp single\n"
      "    {\n"
      "#pragma omp barrier\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  const lint::LintReport report = lint_code(code);
  const lint::Diagnostic* d = find_check(report, "lint.barrier");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, lint::Severity::Error);
  EXPECT_NE(d->message.find("single"), std::string::npos);
}

TEST(LintBarrier, ConditionalBarrierIsAsymmetric) {
  const std::string code =
      "#include <omp.h>\n"
      "int main() {\n"
      "#pragma omp parallel\n"
      "  {\n"
      "    if (omp_get_thread_num() == 0) {\n"
      "#pragma omp barrier\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  const lint::LintReport report = lint_code(code);
  const lint::Diagnostic* d = find_check(report, "lint.barrier");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, lint::Severity::Warning);
  EXPECT_EQ(d->pattern, "barrier-asymmetric");
}

TEST(LintBarrier, NowaitDependenceSuggestsBarrier) {
  const lint::LintReport report = lint_entry("DRB026-nowaitdep-orig-yes.c");
  const lint::Diagnostic* d = find_check(report, "lint.barrier");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->pattern, "nowait");
  EXPECT_EQ(d->fixit, "#pragma omp barrier");
  // The warning names the shared array, not the loop-private induction var.
  EXPECT_NE(d->message.find("'a'"), std::string::npos);
  ASSERT_FALSE(d->related.empty());
}

// ------------------------------------------------------------- atomic

TEST(LintAtomic, AtomicPlusPlainAccessFlagsThePlainSide) {
  const lint::LintReport report = lint_entry("DRB025-atomicplain-orig-yes.c");
  const lint::Diagnostic* d = find_check(report, "lint.atomic");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, lint::Severity::Error);
  EXPECT_EQ(d->pattern, "atomic-plus-plain");
  EXPECT_EQ(d->fixit, "#pragma omp atomic");
  ASSERT_FALSE(d->related.empty());  // points at the protected access
}

TEST(LintAtomic, DifferentCriticalNamesDoNotExclude) {
  const lint::LintReport report =
      lint_entry("DRB024-criticalnames-orig-yes.c");
  const lint::Diagnostic* d = find_check(report, "lint.atomic");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->pattern, "different-critical-names");
}

// ---------------------------------------------------------- clean corpus

TEST(LintCleanEntries, RaceFreePatternsProduceNoFindings) {
  for (const char* name :
       {"DRB052-tmpprivate-orig-no.c", "DRB057-seedfirstprivate-orig-no.c",
        "DRB039-lockfull-orig-no.c", "DRB055-sumreduction-orig-no.c",
        "DRB056-maxreduction-orig-no.c"}) {
    const lint::LintReport report = lint_entry(name);
    EXPECT_TRUE(report.diagnostics.empty()) << name;
    EXPECT_FALSE(report.race.race_detected) << name;
  }
}

// ------------------------------------------------------------ truncation

TEST(LintRace, PairCapSurfacesTruncationNote) {
  lint::LintOptions opts;
  opts.detector.max_pairs = 1;
  const lint::LintReport report =
      lint_entry("DRB047-sumnoreduction-orig-yes.c", std::move(opts));
  EXPECT_GT(report.race.suppressed_pairs, 0);
  const lint::Diagnostic* trunc = nullptr;
  for (const auto& d : report.diagnostics) {
    if (d.pattern == "report-truncation") trunc = &d;
  }
  ASSERT_NE(trunc, nullptr);
  EXPECT_EQ(trunc->check_id, "lint.race");
  EXPECT_EQ(trunc->severity, lint::Severity::Note);
  EXPECT_NE(trunc->message.find("suppressed"), std::string::npos);
}

// ---------------------------------------------------------- check subset

TEST(LintOptionsTest, EnabledListRestrictsPasses) {
  lint::LintOptions opts;
  opts.enabled = {"lint.reduction"};
  const lint::LintReport report =
      lint_entry("DRB047-sumnoreduction-orig-yes.c", std::move(opts));
  ASSERT_FALSE(report.diagnostics.empty());
  for (const auto& d : report.diagnostics) {
    EXPECT_EQ(d.check_id, "lint.reduction");
  }
}

TEST(LintOptionsTest, AvailableChecksMatchDefaultPasses) {
  const auto checks = lint::available_checks();
  const auto passes = lint::default_passes();
  ASSERT_EQ(checks.size(), passes.size());
  for (std::size_t i = 0; i < checks.size(); ++i) {
    EXPECT_EQ(checks[i].first, passes[i]->id());
    EXPECT_FALSE(checks[i].second.empty());
  }
}

// ----------------------------------------------------------- suppression

const char* kSuppressibleCode =
    "int main() {\n"
    "  int i;\n"
    "  int total = 0;\n"
    "#pragma omp parallel for\n"
    "  for (i = 0; i < 100; i++) {\n"
    "    total += i;%s\n"
    "  }\n"
    "  return 0;\n"
    "}\n";

std::string with_suppression(const std::string& comment) {
  std::string code = kSuppressibleCode;
  const std::size_t pos = code.find("%s");
  return code.substr(0, pos) + comment + code.substr(pos + 2);
}

TEST(LintSuppression, CheckIdCommentRemovesOnlyThatCheck) {
  const lint::LintReport base = lint_code(with_suppression(""));
  ASSERT_NE(find_check(base, "lint.reduction"), nullptr);
  ASSERT_NE(find_check(base, "lint.race"), nullptr);

  const lint::LintReport report = lint_code(
      with_suppression("  // drbml-lint-suppress(lint.reduction)"));
  EXPECT_EQ(find_check(report, "lint.reduction"), nullptr);
  EXPECT_NE(find_check(report, "lint.race"), nullptr);
  EXPECT_EQ(report.suppressed, 1);
}

TEST(LintSuppression, AllCommentSilencesTheLine) {
  const lint::LintReport base = lint_code(with_suppression(""));
  const int findings = static_cast<int>(base.diagnostics.size());
  ASSERT_GT(findings, 0);

  const lint::LintReport report =
      lint_code(with_suppression("  // drbml-lint-suppress(all)"));
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.suppressed, findings);
}

TEST(LintSuppression, CommentOnlyLineCoversNextStatement) {
  std::string code = with_suppression("");
  const std::string anchor = "    total += i;";
  const std::size_t pos = code.find(anchor);
  ASSERT_NE(pos, std::string::npos);
  code.insert(pos, "    // drbml-lint-suppress(lint.reduction)\n");
  const lint::LintReport report = lint_code(code);
  EXPECT_EQ(find_check(report, "lint.reduction"), nullptr);
  EXPECT_EQ(report.suppressed, 1);
}

TEST(LintSuppression, SuppressedFindingAbsentFromEveryEmitter) {
  lint::FileLint file;
  file.name = "suppressed.c";
  file.report = lint_code(
      with_suppression("  // drbml-lint-suppress(lint.reduction)"));
  ASSERT_EQ(file.report.suppressed, 1);

  const std::string text = lint::to_text(file);
  EXPECT_EQ(text.find("lint.reduction"), std::string::npos);
  EXPECT_NE(text.find("1 suppressed"), std::string::npos);

  const json::Value j = lint::to_json(file);
  EXPECT_EQ(j.dump().find("lint.reduction"), std::string::npos);
  EXPECT_EQ(jf(j, "suppressed").as_int(), 1);

  // SARIF still lists lint.reduction as a *rule*; assert no *result*
  // carries it, and the run-level suppression count survives.
  const json::Value sarif = lint::to_sarif({file});
  ASSERT_TRUE(lint::sarif_shape_ok(sarif));
  const json::Value& run = ji(jf(sarif, "runs"), 0);
  for (const json::Value& result : jf(run, "results").as_array()) {
    EXPECT_NE(jf(result, "ruleId").as_string(), "lint.reduction");
  }
  EXPECT_EQ(jf(jf(run, "properties"), "suppressedFindings").as_int(), 1);
}

// ----------------------------------------------------------------- SARIF

TEST(LintSarif, RulesCoverEveryBuiltinCheck) {
  lint::FileLint file;
  file.name = "empty.c";
  file.report = lint_code("int main() { return 0; }\n");
  const json::Value sarif = lint::to_sarif({file});
  std::string why;
  ASSERT_TRUE(lint::sarif_shape_ok(sarif, &why)) << why;
  EXPECT_EQ(jf(sarif, "version").as_string(), "2.1.0");
  const json::Value& driver =
      jf(jf(ji(jf(sarif, "runs"), 0), "tool"), "driver");
  EXPECT_EQ(jf(driver, "name").as_string(), "drbml-lint");
  EXPECT_EQ(jf(driver, "rules").as_array().size(),
            lint::available_checks().size());
}

TEST(LintSarif, ShapeValidatorRejectsCorruptedDocuments) {
  lint::FileLint file;
  file.name = "race.c";
  file.report = lint_entry("DRB047-sumnoreduction-orig-yes.c");
  json::Value sarif = lint::to_sarif({file});
  ASSERT_TRUE(lint::sarif_shape_ok(sarif));

  json::Value bad = json::parse(sarif.dump());
  json::Value* runs = bad.as_object().find("runs");
  ASSERT_NE(runs, nullptr);
  json::Value* results = runs->as_array()[0].as_object().find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_FALSE(results->as_array().empty());
  results->as_array()[0].as_object().set("level", json::Value("fatal"));
  std::string why;
  EXPECT_FALSE(lint::sarif_shape_ok(bad, &why));
  EXPECT_FALSE(why.empty());
}

/// Acceptance criterion: on a known-race corpus entry the SARIF race
/// result's location must line up with the DRB-ML ground-truth label.
TEST(LintSarif, RaceResultLocationMatchesDatasetLabel) {
  const dataset::Entry* entry = nullptr;
  for (const auto& e : dataset::dataset()) {
    if (e.name == "DRB047-sumnoreduction-orig-yes.c") entry = &e;
  }
  ASSERT_NE(entry, nullptr);
  ASSERT_FALSE(entry->var_pairs.empty());
  const int writer_line = entry->var_pairs.front().line[0];

  lint::FileLint file;
  file.name = entry->name;
  file.report = lint_code(entry->drb_code);
  const json::Value sarif = lint::to_sarif({file});
  std::string why;
  ASSERT_TRUE(lint::sarif_shape_ok(sarif, &why)) << why;

  bool matched = false;
  const json::Value& results = jf(ji(jf(sarif, "runs"), 0), "results");
  for (const json::Value& r : results.as_array()) {
    if (jf(r, "ruleId").as_string() != "lint.race") continue;
    const json::Value& region =
        jf(jf(ji(jf(r, "locations"), 0), "physicalLocation"), "region");
    matched = matched ||
              static_cast<int>(jf(region, "startLine").as_int()) == writer_line;
  }
  EXPECT_TRUE(matched) << "no lint.race result at label line " << writer_line;
}

// ---------------------------------------------------------- differential

TEST(LintDifferential, WholeCorpusLintsAndEmitsValidSarif) {
  std::vector<lint::FileLint> files;
  const lint::Linter linter;
  for (const auto& entry : drb::corpus()) {
    lint::FileLint file;
    file.name = entry.name;
    ASSERT_NO_THROW(file.report = linter.lint_source(drb::drb_code(entry)))
        << entry.name;
    files.push_back(std::move(file));
  }
  ASSERT_FALSE(files.empty());
  std::string why;
  EXPECT_TRUE(lint::sarif_shape_ok(lint::to_sarif(files), &why)) << why;
}

TEST(LintDifferential, SynthKernelsLintAndEmitValidSarif) {
  drb::SynthConfig config;
  config.count = 200;
  config.seed = 7;
  std::vector<lint::FileLint> files;
  const lint::Linter linter;
  for (const auto& kernel : drb::synthesize(config)) {
    lint::FileLint file;
    file.name = kernel.name;
    ASSERT_NO_THROW(file.report = linter.lint_source(kernel.code))
        << kernel.name;
    files.push_back(std::move(file));
  }
  ASSERT_EQ(files.size(), 200u);
  std::string why;
  EXPECT_TRUE(lint::sarif_shape_ok(lint::to_sarif(files), &why)) << why;
}

// ------------------------------------------------------- detector facade

TEST(LintDetector, SurfacesDiagnosticsInVerdict) {
  const auto detector = core::make_detector("lint");
  const drb::CorpusEntry* entry =
      drb::find_entry("DRB047-sumnoreduction-orig-yes.c");
  ASSERT_NE(entry, nullptr);
  const core::RaceVerdict v = detector->analyze(drb::drb_code(*entry));
  EXPECT_TRUE(v.race);
  EXPECT_FALSE(v.pairs.empty());
  bool saw_reduction = false;
  for (const auto& line : v.diagnostics) {
    saw_reduction =
        saw_reduction || line.find("lint.reduction") != std::string::npos;
  }
  EXPECT_TRUE(saw_reduction);
}

TEST(LintDetector, BatchMatchesSerialAtAnyJobCount) {
  std::vector<std::string> sources;
  for (const auto& e : dataset::dataset()) {
    sources.push_back(e.trimmed_code);
    if (sources.size() == 32) break;
  }
  core::DetectorSpec serial_spec;
  serial_spec.spec = "lint";
  serial_spec.jobs = 1;
  core::DetectorSpec pool_spec;
  pool_spec.spec = "lint";
  pool_spec.jobs = 4;
  const auto serial = core::make_detector(serial_spec)->analyze_batch(sources);
  const auto pooled = core::make_detector(pool_spec)->analyze_batch(sources);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].race, pooled[i].race) << i;
    EXPECT_EQ(serial[i].pairs, pooled[i].pairs) << i;
    EXPECT_EQ(serial[i].diagnostics, pooled[i].diagnostics) << i;
  }
}

// -------------------------------------------------------- eval plumbing

TEST(LintEval, LintToolAndVaridRowsAreDeterministicAcrossJobs) {
  std::vector<const dataset::Entry*> subset;
  for (const auto& e : dataset::dataset()) {
    subset.push_back(&e);
    if (subset.size() == 24) break;
  }
  eval::ExperimentOptions serial;
  serial.jobs = 1;
  eval::ExperimentOptions pooled;
  pooled.jobs = 4;

  const eval::ConfusionMatrix tool1 = eval::run_lint_tool(subset, serial);
  const eval::ConfusionMatrix tool4 = eval::run_lint_tool(subset, pooled);
  EXPECT_EQ(tool1.total(), 24);
  EXPECT_EQ(tool1.tp, tool4.tp);
  EXPECT_EQ(tool1.fp, tool4.fp);
  EXPECT_EQ(tool1.tn, tool4.tn);
  EXPECT_EQ(tool1.fn, tool4.fn);
  // The early corpus is dominated by true races the static pipeline sees.
  EXPECT_GT(tool1.tp, 0);

  const eval::ConfusionMatrix var1 = eval::run_lint_varid(subset, serial);
  const eval::ConfusionMatrix var4 = eval::run_lint_varid(subset, pooled);
  EXPECT_EQ(var1.total(), 24);
  EXPECT_EQ(var1.tp, var4.tp);
  EXPECT_EQ(var1.fp, var4.fp);
  EXPECT_EQ(var1.tn, var4.tn);
  EXPECT_EQ(var1.fn, var4.fn);
}

}  // namespace
}  // namespace drbml
