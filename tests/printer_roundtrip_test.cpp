// Printer fidelity properties, parameterized over the whole corpus and a
// fixed synthetic batch: pretty-printed programs must re-parse, re-print
// to a fixed point, and preserve the static race verdict. The repair
// subsystem's patch engine leans on these invariants -- it accepts a
// patch only when the patched text re-parses to the mutated AST's
// canonical printed form, which is only sound if printing is a fixed
// point for every pragma and clause the corpus can produce.
#include <gtest/gtest.h>

#include "analysis/race.hpp"
#include "drb/corpus.hpp"
#include "drb/synth.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"

namespace drbml::minic {
namespace {

class PrinterRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  const drb::CorpusEntry& entry() const {
    return drb::corpus()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(PrinterRoundTrip, PrintedFormReparses) {
  Program p = parse_program(entry().body);
  const std::string printed = unit_to_string(*p.unit);
  Program p2 = parse_program(printed);
  EXPECT_NE(p2.unit->find_function("main"), nullptr) << entry().name;
}

TEST_P(PrinterRoundTrip, PrintingReachesFixedPoint) {
  Program p = parse_program(entry().body);
  const std::string once = unit_to_string(*p.unit);
  Program p2 = parse_program(once);
  const std::string twice = unit_to_string(*p2.unit);
  EXPECT_EQ(once, twice) << entry().name;
}

TEST_P(PrinterRoundTrip, StaticVerdictSurvivesPrinting) {
  analysis::StaticRaceDetector detector;
  const bool original =
      detector.analyze_source(entry().body).race_detected;
  Program p = parse_program(entry().body);
  const bool printed =
      detector.analyze_source(unit_to_string(*p.unit)).race_detected;
  EXPECT_EQ(original, printed) << entry().name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PrinterRoundTrip,
    ::testing::Range(0, static_cast<int>(drb::corpus().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      std::string name =
          drb::corpus()[static_cast<std::size_t>(info.param)].name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// The same fixed-point contract over a fixed synthetic batch (the batch
// scripts/check.sh lints): the generator reaches clause combinations the
// manual corpus does not.
const std::vector<drb::SynthEntry>& synth_batch() {
  static const std::vector<drb::SynthEntry> batch = [] {
    drb::SynthConfig config;
    config.count = 200;
    config.seed = 7;
    return drb::synthesize(config);
  }();
  return batch;
}

class SynthPrinterRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  const drb::SynthEntry& entry() const {
    return synth_batch()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(SynthPrinterRoundTrip, PrintingReachesFixedPoint) {
  Program p = parse_program(entry().code);
  const std::string once = unit_to_string(*p.unit);
  Program p2 = parse_program(once);
  const std::string twice = unit_to_string(*p2.unit);
  EXPECT_EQ(once, twice) << entry().name;
}

INSTANTIATE_TEST_SUITE_P(
    Synth, SynthPrinterRoundTrip,
    ::testing::Range(0, static_cast<int>(synth_batch().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      std::string name =
          synth_batch()[static_cast<std::size_t>(info.param)].name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace drbml::minic
