// Focused tests for linear-form construction and constant propagation
// corner cases (complementing the end-to-end analysis tests).
#include <gtest/gtest.h>

#include "analysis/affine.hpp"
#include "analysis/consteval.hpp"
#include "analysis/resolve.hpp"
#include "minic/parser.hpp"

namespace drbml::analysis {
namespace {

using minic::Program;
using minic::parse_program;

/// Parses a program whose last main statement is `int probe = <expr>;`
/// and linearizes that expression.
LinearForm linearize_probe(const char* src) {
  static std::vector<std::unique_ptr<Program>> keep;
  keep.push_back(std::make_unique<Program>(parse_program(src)));
  Program& p = *keep.back();
  resolve(*p.unit);
  const auto* fn = p.unit->find_function("main");
  EXPECT_NE(fn, nullptr);
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  // probe declaration is the second-to-last statement (before return).
  const auto& body = fn->body->body;
  const auto* decl =
      minic::stmt_cast<minic::DeclStmt>(body[body.size() - 2].get());
  EXPECT_NE(decl, nullptr);
  return linearize(*decl->decls.back()->init, cm);
}

TEST(Affine, MulByFoldedConstantScales) {
  LinearForm f = linearize_probe(
      "int main() { int s = 4; int i; i = 0; int probe = s * i + 3; "
      "return probe; }");
  // i has been poisoned? `i = 0` is an unconditional top-level assignment
  // to a fresh variable -> bound to 0, so the whole thing folds.
  EXPECT_TRUE(f.is_affine);
  EXPECT_TRUE(f.is_constant());
  EXPECT_EQ(f.constant, 3);
}

TEST(Affine, UnknownVariableKeepsCoefficient) {
  LinearForm f = linearize_probe(
      "int main(int argc, char* argv[]) { int n = argc + 1; int probe = 2 "
      "* n + 5; return probe; }");
  EXPECT_TRUE(f.is_affine);
  EXPECT_FALSE(f.is_constant());
  EXPECT_EQ(f.constant, 5);
  // Exactly one variable with coefficient 2.
  int nonzero = 0;
  for (const auto& [v, c] : f.coeffs) {
    if (c != 0) {
      ++nonzero;
      EXPECT_EQ(c, 2);
    }
  }
  EXPECT_EQ(nonzero, 1);
}

TEST(Affine, VariableTimesVariableIsNonAffine) {
  LinearForm f = linearize_probe(
      "int main(int argc, char* argv[]) { int a = argc; int b = argc + 2; "
      "int probe = a * b; return probe; }");
  EXPECT_FALSE(f.is_affine);
}

TEST(Affine, DivisionFoldsOnlyExactConstants) {
  LinearForm exact = linearize_probe(
      "int main() { int probe = 12 / 4; return probe; }");
  EXPECT_TRUE(exact.is_constant());
  EXPECT_EQ(exact.constant, 3);

  LinearForm inexact = linearize_probe(
      "int main(int argc, char* argv[]) { int n = argc; int probe = n / 2; "
      "return probe; }");
  EXPECT_FALSE(inexact.is_affine);
}

TEST(Affine, ModuloAndShiftsFold) {
  LinearForm f = linearize_probe(
      "int main() { int probe = (13 % 5) + (1 << 4); return probe; }");
  EXPECT_TRUE(f.is_constant());
  EXPECT_EQ(f.constant, 19);
}

TEST(Affine, SubtractionCancelsSymbols) {
  LinearForm f = linearize_probe(
      "int main(int argc, char* argv[]) { int n = argc; int probe = (n + "
      "7) - n; return probe; }");
  EXPECT_TRUE(f.is_affine);
  EXPECT_TRUE(f.is_constant());
  EXPECT_EQ(f.constant, 7);
}

TEST(ConstEval, ChainedBindingsFold) {
  Program p = parse_program(
      "int main() { int a = 6; int b = a * 7; int c = b - 2; return c; }");
  resolve(*p.unit);
  const auto* fn = p.unit->find_function("main");
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* c_decl =
      minic::stmt_cast<minic::DeclStmt>(fn->body->body[2].get());
  EXPECT_EQ(cm.value_of(c_decl->decls[0].get()), 40);
}

TEST(ConstEval, ReassignmentPoisons) {
  Program p = parse_program(
      "int main() { int a = 1; a = 2; int b = a; return b; }");
  resolve(*p.unit);
  const auto* fn = p.unit->find_function("main");
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* a_decl =
      minic::stmt_cast<minic::DeclStmt>(fn->body->body[0].get());
  EXPECT_EQ(cm.value_of(a_decl->decls[0].get()), std::nullopt);
}

TEST(ConstEval, AddressTakenPoisons) {
  Program p = parse_program(
      "void set(int* p) { p[0] = 9; }\n"
      "int main() { int a = 1; set(&a); int b = a + 1; return b; }");
  resolve(*p.unit);
  const auto* fn = p.unit->find_function("main");
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* a_decl =
      minic::stmt_cast<minic::DeclStmt>(fn->body->body[0].get());
  EXPECT_EQ(cm.value_of(a_decl->decls[0].get()), std::nullopt);
}

TEST(ConstEval, IncrementPoisons) {
  Program p = parse_program("int main() { int a = 1; a++; return a; }");
  resolve(*p.unit);
  const auto* fn = p.unit->find_function("main");
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* a_decl =
      minic::stmt_cast<minic::DeclStmt>(fn->body->body[0].get());
  EXPECT_EQ(cm.value_of(a_decl->decls[0].get()), std::nullopt);
}

TEST(ConstEval, GlobalInitializersFold) {
  Program p = parse_program(
      "int base = 40;\n"
      "int main() { int probe = base; return probe; }");
  resolve(*p.unit);
  const auto* fn = p.unit->find_function("main");
  ConstantMap cm = ConstantMap::build(*p.unit, *fn);
  const auto* decl =
      minic::stmt_cast<minic::DeclStmt>(fn->body->body[0].get());
  EXPECT_EQ(cm.value_of(decl->decls[0].get()), 40);
}

TEST(ConstEval, EvalHandlesLogicAndComparisons) {
  Program p = parse_program("int main() { return 0; }");
  resolve(*p.unit);
  ConstantMap cm =
      ConstantMap::build(*p.unit, *p.unit->find_function("main"));
  Program expr_prog = parse_program(
      "int main() { int probe = (3 < 5) && (2 == 2); return probe; }");
  resolve(*expr_prog.unit);
  const auto* fn = expr_prog.unit->find_function("main");
  ConstantMap cm2 = ConstantMap::build(*expr_prog.unit, *fn);
  const auto* decl =
      minic::stmt_cast<minic::DeclStmt>(fn->body->body[0].get());
  EXPECT_EQ(cm2.value_of(decl->decls[0].get()), 1);
}

}  // namespace
}  // namespace drbml::analysis
