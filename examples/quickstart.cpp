// Quickstart: analyze an OpenMP C snippet for data races with the three
// classical detectors and one simulated LLM.
//
//   $ ./quickstart
//
// The public entry point is drbml::core::make_detector(spec); specs are
// "static", "dynamic", "hybrid", and "llm:<persona>:<prompt>".
#include <cstdio>

#include "core/detector.hpp"

int main() {
  const char* code = R"(#include <stdio.h>
int main()
{
  int i;
  int len = 1000;
  int a[1000];

  for (i = 0; i < len; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < len - 1; i++)
    a[i] = a[i+1] + 1;
  printf("a[500]=%d\n", a[500]);
  return 0;
}
)";

  std::printf("Analyzing the classic anti-dependence kernel:\n%s\n", code);

  for (const char* spec : {"static", "dynamic", "hybrid", "llm:gpt4:bp2"}) {
    auto detector = drbml::core::make_detector(spec);
    const drbml::core::RaceVerdict verdict = detector->analyze(code);
    std::printf("== %-12s -> %s\n", detector->name().c_str(),
                verdict.race ? "DATA RACE" : "no race");
    for (const auto& pair : verdict.pairs) {
      std::printf("   pair: %s@%d:%d:%c vs. %s@%d:%d:%c\n",
                  pair.first.expr_text.c_str(), pair.first.loc.line,
                  pair.first.loc.col, pair.first.op,
                  pair.second.expr_text.c_str(), pair.second.loc.line,
                  pair.second.loc.col, pair.second.op);
    }
    if (!verdict.model_response.empty()) {
      std::printf("   model said: %s\n", verdict.model_response.c_str());
    }
  }
  return 0;
}
