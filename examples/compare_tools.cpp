// Compares every detector on a slice of the DataRaceBench-style corpus,
// printing an agreement matrix -- the per-program view behind the paper's
// Table 3 comparison study.
//
//   $ ./compare_tools [count]
#include <cstdio>
#include <cstdlib>

#include "core/detector.hpp"
#include "drb/corpus.hpp"

int main(int argc, char** argv) {
  using namespace drbml;
  int count = argc > 1 ? std::atoi(argv[1]) : 12;
  if (count <= 0 || count > static_cast<int>(drb::corpus().size())) {
    count = 12;
  }

  const char* specs[] = {"static", "dynamic", "llm:gpt4:p1", "llm:gpt35:p1"};
  std::vector<std::unique_ptr<core::RaceDetector>> detectors;
  for (const char* spec : specs) detectors.push_back(core::make_detector(spec));

  std::printf("%-40s %-6s", "benchmark", "truth");
  for (const auto& d : detectors) std::printf(" %-12s", d->name().c_str());
  std::printf("\n");

  int agree[4] = {0, 0, 0, 0};
  for (int i = 0; i < count; ++i) {
    const drb::CorpusEntry& e = drb::corpus()[static_cast<std::size_t>(i)];
    std::printf("%-40s %-6s", e.name.c_str(), e.race ? "yes" : "no");
    for (std::size_t d = 0; d < detectors.size(); ++d) {
      const bool flagged = detectors[d]->analyze(e.body).race;
      std::printf(" %-12s", flagged ? "race" : "clean");
      if (flagged == e.race) ++agree[d];
    }
    std::printf("\n");
  }

  std::printf("\nagreement with ground truth over %d benchmarks:\n", count);
  for (std::size_t d = 0; d < detectors.size(); ++d) {
    std::printf("  %-12s %d/%d\n", detectors[d]->name().c_str(), agree[d],
                count);
  }
  return 0;
}
