// Fine-tuning walkthrough: trains a QLoRA-style adapter for StarChat-beta
// on one train/test split of the DRB-ML detection pairs and reports the
// before/after confusion matrices plus a few individual flips.
//
//   $ ./finetune_demo
#include <cstdio>

#include "eval/experiments.hpp"
#include "llm/finetune.hpp"

int main() {
  using namespace drbml;
  const auto subset = eval::token_filtered_subset();
  const std::size_t cut = 158;  // ~4/5 train, 1/5 test

  std::vector<llm::TrainSample> train;
  for (std::size_t i = 0; i < cut; ++i) {
    const dataset::PromptResponse pr =
        dataset::make_detection_pair(*subset[i]);
    llm::TrainSample s;
    s.code = llm::extract_code_from_prompt(pr.prompt);
    s.label = eval::parse_detection(pr.response).value_or(false);
    train.push_back(std::move(s));
  }
  std::printf("training StarChat-beta adapter on %zu prompt-response pairs "
              "(LoRA rank %d, dropout 0.1, Adam)...\n",
              train.size(), llm::kLoraRank);

  llm::ChatModel base(llm::starchat_persona());
  llm::ChatModel tuned(llm::starchat_persona());
  const llm::Adapter trained = llm::finetune_detection(
      base, prompts::Style::P1, train, llm::starchat_finetune_config());
  // Round-trip through a checkpoint, as a deployment would.
  const std::string checkpoint = trained.to_json();
  auto adapter =
      std::make_shared<llm::Adapter>(llm::Adapter::from_json(checkpoint));
  std::printf("adapter checkpoint: %zu bytes\n", checkpoint.size());
  tuned.set_adapter(adapter);

  eval::ConfusionMatrix before;
  eval::ConfusionMatrix after;
  int flips_good = 0;
  int flips_bad = 0;
  for (std::size_t i = cut; i < subset.size(); ++i) {
    const dataset::Entry& e = *subset[i];
    const prompts::Chat chat =
        prompts::detection_chat(prompts::Style::P1, e.trimmed_code);
    const bool b =
        eval::parse_detection(base.chat(chat).text).value_or(false);
    const bool a =
        eval::parse_detection(tuned.chat(chat).text).value_or(false);
    const bool truth = e.data_race == 1;
    before.add(b, truth);
    after.add(a, truth);
    if (b != a) {
      const bool improved = a == truth;
      (improved ? flips_good : flips_bad)++;
      if (flips_good + flips_bad <= 6) {
        std::printf("  %-44s %s -> %s (%s)\n", e.name.c_str(),
                    b ? "yes" : "no", a ? "yes" : "no",
                    improved ? "fixed" : "broke");
      }
    }
  }

  std::printf("\nheld-out results (%d programs):\n", before.total());
  std::printf("  pretrained: R=%.3f P=%.3f F1=%.3f\n", before.recall(),
              before.precision(), before.f1());
  std::printf("  fine-tuned: R=%.3f P=%.3f F1=%.3f\n", after.recall(),
              after.precision(), after.f1());
  std::printf("  verdict flips: %d fixed, %d broken\n", flips_good, flips_bad);
  return 0;
}
