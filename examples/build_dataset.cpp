// Builds the DRB-ML dataset on disk: one JSON file per microbenchmark
// (DRB-ML-001.json ... DRB-ML-201.json) plus the two fine-tuning
// prompt-response sets, mirroring the artifacts of paper Section 3.1.
//
//   $ ./build_dataset [output_dir]        (default: ./drb-ml)
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dataset/drbml.hpp"
#include "support/json.hpp"

int main(int argc, char** argv) {
  using namespace drbml;
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "drb-ml";
  std::filesystem::create_directories(out_dir);
  std::filesystem::create_directories(out_dir / "finetune");

  int written = 0;
  json::Array detection_set;
  json::Array varid_set;
  for (const dataset::Entry& e : dataset::dataset()) {
    char name[32];
    std::snprintf(name, sizeof(name), "DRB-ML-%03d.json", e.id);
    std::ofstream file(out_dir / name);
    file << e.to_json().dump_pretty() << "\n";
    ++written;

    const dataset::PromptResponse det = dataset::make_detection_pair(e);
    json::Object det_obj;
    det_obj.set("prompt", json::Value(det.prompt));
    det_obj.set("response", json::Value(det.response));
    detection_set.emplace_back(std::move(det_obj));

    const dataset::PromptResponse var = dataset::make_varid_pair(e);
    json::Object var_obj;
    var_obj.set("prompt", json::Value(var.prompt));
    var_obj.set("response", json::Value(var.response));
    varid_set.emplace_back(std::move(var_obj));
  }

  {
    std::ofstream file(out_dir / "finetune" / "detection_pairs.json");
    file << json::Value(std::move(detection_set)).dump_pretty() << "\n";
  }
  {
    std::ofstream file(out_dir / "finetune" / "varid_pairs.json");
    file << json::Value(std::move(varid_set)).dump_pretty() << "\n";
  }

  std::printf("wrote %d DRB-ML JSON entries and 2 fine-tuning sets to %s/\n",
              written, out_dir.string().c_str());
  return 0;
}
