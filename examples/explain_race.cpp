// The introduction's motivating use case: LLMs as a proactive assistant
// that both flags a race and explains it. Runs a user-supplied file (or a
// built-in sample) through the hybrid tool for ground truth and through
// GPT-4 (simulated) for the natural-language explanation with variable
// details.
//
//   $ ./explain_race [file.c]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/detector.hpp"

namespace {

const char* kSample = R"(#include <stdio.h>
int main()
{
  int i;
  int tmp = 0;
  int a[100];

  for (i = 0; i < 100; i++)
    a[i] = i;
#pragma omp parallel for
  for (i = 0; i < 100; i++) {
    tmp = a[i] + 1;
    a[i] = tmp * 2;
  }
  printf("a[10]=%d\n", a[10]);
  return 0;
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace drbml;
  std::string code;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << file.rdbuf();
    code = ss.str();
  } else {
    code = kSample;
  }

  std::printf("--- program ---\n%s\n", code.c_str());

  auto tool = core::make_detector("hybrid");
  const core::RaceVerdict truth = tool->analyze(code);
  std::printf("--- traditional tool (%s) ---\n%s\n", tool->name().c_str(),
              truth.race ? "data race detected" : "no race found");
  for (const auto& pair : truth.pairs) {
    std::printf("  %s@%d:%d:%c vs. %s@%d:%d:%c\n",
                pair.first.expr_text.c_str(), pair.first.loc.line,
                pair.first.loc.col, pair.first.op,
                pair.second.expr_text.c_str(), pair.second.loc.line,
                pair.second.loc.col, pair.second.op);
  }

  auto assistant = core::make_detector("llm:gpt4:bp2");
  const core::RaceVerdict llm_view = assistant->analyze(code);
  std::printf("\n--- LLM assistant (%s) ---\n%s\n",
              assistant->name().c_str(), llm_view.model_response.c_str());
  std::printf("\nagreement with tool: %s\n",
              llm_view.race == truth.race ? "YES" : "NO");
  return 0;
}
