// Bytecode-VM benchmark: the dynamic stage's compile-once-execute-many
// contract, measured. Every corpus entry is parsed and resolved once,
// then executed for a batch of schedule seeds under the AST-walking
// interpreter and under the register-bytecode VM (which compiles each
// entry once and reuses the module across all seeds, as the dynamic
// detector and the exploration engine do).
//
// The two backends must be bit-identical -- verdicts, pairs, output,
// steps, and decision traces are fingerprinted per (entry, seed) and
// compared; any divergence fails the bench. Wall clock, schedules/sec,
// and the speedup are printed and written to BENCH_vm.json (override
// with --out FILE), where scripts/check.sh enforces the >=5x gate.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/resolve.hpp"
#include "bench_util.hpp"
#include "drb/corpus.hpp"
#include "minic/parser.hpp"
#include "runtime/bc/bc.hpp"
#include "runtime/bc/compile.hpp"
#include "runtime/interp.hpp"
#include "support/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace drbml;

constexpr int kSeedsPerEntry = 20;

struct PreparedEntry {
  std::string name;
  minic::Program prog;
  analysis::Resolution res;
};

std::string fingerprint(const runtime::RunResult& r) {
  std::string out;
  out += r.report.race_detected ? "race" : "clean";
  out += ";exit=" + std::to_string(r.exit_code);
  out += ";steps=" + std::to_string(r.steps);
  out += ";fault=" + r.fault_message;
  for (const auto& p : r.report.pairs) {
    out += ";" + p.first.expr_text + "@" + std::to_string(p.first.loc.line) +
           "/" + p.second.expr_text + "@" + std::to_string(p.second.loc.line);
  }
  for (const auto& region : r.trace.regions) {
    out += ";[";
    for (const auto& d : region) {
      out += std::to_string(d.step) + ":" + std::to_string(d.target) + ",";
    }
    out += "]";
  }
  out += ";out=" + r.output;
  return out;
}

struct BackendRun {
  double wall_ms = 0;
  double compile_ms = 0;  // vm only: module lowering, amortized over seeds
  std::uint64_t schedules = 0;
  std::uint64_t steps = 0;
  std::vector<std::string> fingerprints;

  [[nodiscard]] double schedules_per_sec() const {
    return wall_ms > 0 ? 1000.0 * static_cast<double>(schedules) / wall_ms
                       : 0.0;
  }
};

BackendRun run_backend(std::vector<PreparedEntry>& entries,
                       runtime::Backend backend) {
  BackendRun result;
  const auto start = Clock::now();
  for (PreparedEntry& e : entries) {
    runtime::RunOptions opts;
    opts.backend = backend;
    opts.capture_trace = true;

    std::unique_ptr<runtime::bc::Module> module;
    if (backend == runtime::Backend::Vm) {
      const auto c0 = Clock::now();
      module = std::make_unique<runtime::bc::Module>(
          runtime::bc::compile_verified(*e.prog.unit));
      result.compile_ms +=
          std::chrono::duration<double, std::milli>(Clock::now() - c0)
              .count();
      opts.module = module.get();
    }

    for (int s = 0; s < kSeedsPerEntry; ++s) {
      opts.seed = static_cast<std::uint64_t>(s) + 1;
      const runtime::RunResult r =
          runtime::run_program(*e.prog.unit, e.res, opts);
      ++result.schedules;
      result.steps += r.steps;
      result.fingerprints.push_back(fingerprint(r));
    }
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  obs::consume_obs_flags(args);
  std::string out_path = "BENCH_vm.json";
  double min_speedup = 0.0;  // 0: report only, no gate
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--min-speedup" && i + 1 < args.size()) {
      min_speedup = std::stod(args[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_vm [--out FILE] [--min-speedup N]\n");
      return 2;
    }
  }

  std::printf("%s",
              heading("Bytecode VM -- dynamic stage, interp vs vm").c_str());

  std::vector<PreparedEntry> entries;
  for (const drb::CorpusEntry& e : drb::corpus()) {
    PreparedEntry p;
    p.name = e.name;
    p.prog = minic::parse_program(e.body);
    p.res = analysis::resolve(*p.prog.unit);
    entries.push_back(std::move(p));
  }

  // Warm-up pass (page in code, allocator steady-state), then measure.
  {
    std::vector<PreparedEntry> warm;
    for (std::size_t i = 0; i < 8 && i < entries.size(); ++i) {
      PreparedEntry p;
      p.name = entries[i].name;
      p.prog = minic::parse_program(drb::corpus()[i].body);
      p.res = analysis::resolve(*p.prog.unit);
      warm.push_back(std::move(p));
    }
    (void)run_backend(warm, runtime::Backend::Interp);
    (void)run_backend(warm, runtime::Backend::Vm);
  }

  const BackendRun interp = run_backend(entries, runtime::Backend::Interp);
  const BackendRun vm = run_backend(entries, runtime::Backend::Vm);

  const bool identical = interp.fingerprints == vm.fingerprints;
  std::size_t divergences = 0;
  if (!identical) {
    for (std::size_t i = 0; i < interp.fingerprints.size(); ++i) {
      if (interp.fingerprints[i] != vm.fingerprints[i]) {
        if (++divergences <= 3) {
          const std::size_t entry = i / kSeedsPerEntry;
          std::fprintf(stderr,
                       "DIVERGENCE %s seed=%zu\n  interp: %.200s\n  "
                       "vm:     %.200s\n",
                       entries[entry].name.c_str(), i % kSeedsPerEntry + 1,
                       interp.fingerprints[i].c_str(),
                       vm.fingerprints[i].c_str());
        }
      }
    }
  }

  const double speedup =
      vm.wall_ms > 0 ? interp.wall_ms / vm.wall_ms : 0.0;

  TextTable t({"Backend", "Schedules", "Wall (ms)", "Sched/s", "Steps"});
  t.add_row({"interp", std::to_string(interp.schedules),
             format_double(interp.wall_ms, 1),
             format_double(interp.schedules_per_sec(), 0),
             std::to_string(interp.steps)});
  t.add_row({"vm", std::to_string(vm.schedules),
             format_double(vm.wall_ms, 1),
             format_double(vm.schedules_per_sec(), 0),
             std::to_string(vm.steps)});
  std::printf("%s", t.render().c_str());
  std::printf(
      "\n[vm] %zu entries x %d seeds | compile %.1f ms (amortized "
      "%.3f ms/schedule) | speedup %.2fx | verdicts %s\n",
      entries.size(), kSeedsPerEntry, vm.compile_ms,
      vm.schedules > 0
          ? vm.compile_ms / static_cast<double>(vm.schedules)
          : 0.0,
      speedup, identical ? "bit-identical" : "DIVERGED (BUG)");

  json::Object root;
  root.set("entries", json::Value(static_cast<std::int64_t>(entries.size())));
  root.set("seeds_per_entry",
           json::Value(static_cast<std::int64_t>(kSeedsPerEntry)));
  const auto backend_json = [](const BackendRun& r) {
    json::Object o;
    o.set("wall_ms", json::Value(r.wall_ms));
    o.set("schedules", json::Value(static_cast<std::int64_t>(r.schedules)));
    o.set("schedules_per_sec", json::Value(r.schedules_per_sec()));
    o.set("steps", json::Value(static_cast<std::int64_t>(r.steps)));
    return o;
  };
  root.set("interp", json::Value(backend_json(interp)));
  {
    json::Object o = backend_json(vm);
    o.set("compile_ms", json::Value(vm.compile_ms));
    root.set("vm", json::Value(std::move(o)));
  }
  root.set("speedup", json::Value(speedup));
  root.set("verdicts_identical", json::Value(identical));

  std::ofstream out(out_path, std::ios::trunc);
  out << json::Value(std::move(root)).dump_pretty() << "\n";
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) return 3;
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "speedup %.2fx below the %.1fx gate\n", speedup,
                 min_speedup);
    return 4;
  }
  return 0;
}
