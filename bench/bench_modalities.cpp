// Extension experiment (paper Section 5 future work): input modalities
// beyond plain text. Compares detection quality when prompts carry the
// code alone, the code plus a pretty-printed AST, the code plus a
// serialized data-dependence graph, and the code plus the static
// detector's evidence chains.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s",
              heading("Extension -- input modalities (text / +AST / "
                      "+dependence graph / +evidence), detection with p1")
                  .c_str());
  const auto subset = eval::token_filtered_subset();
  TextTable t({"Model", "text F1", "+AST F1", "+depgraph F1",
               "+evidence F1"});
  for (const llm::Persona& persona : llm::all_personas()) {
    llm::ChatModel model(persona);
    std::vector<std::string> row = {persona.name};
    for (prompts::Modality m :
         {prompts::Modality::Text, prompts::Modality::Ast,
          prompts::Modality::DepGraph, prompts::Modality::Evidence}) {
      const auto cm =
          eval::run_detection_modal(model, prompts::Style::P1, m, subset);
      row.push_back(format_double(cm.f1(), 3));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nHypothesis from the paper's future-work section: structured\n"
      "representations (dependence graphs in particular) should lift LLM\n"
      "detection quality by making the conflict explicit. The simulated\n"
      "models encode that as reduced uncertainty plus confidence\n"
      "sharpening; the harness measures the end-to-end effect through the\n"
      "full prompt/parse pipeline (including the larger prompts' token\n"
      "cost against each model's context window). The evidence modality\n"
      "embeds the static detector's per-pair evidence chains (racy and\n"
      "discharged) and sharpens slightly harder than the dependence\n"
      "graph: the chains already state which discharge rule failed.\n");
  return 0;
}
