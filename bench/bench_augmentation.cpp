// Extension experiment (paper Section 4.5): does synthetic training-data
// augmentation improve fine-tuning? Runs the Table-4 cross validation for
// StarChat-beta with increasing numbers of generated kernels added to
// each fold's training split.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s",
              heading("Extension -- synthetic data augmentation for "
                      "fine-tuning (StarChat, 5-fold CV, detection)")
                  .c_str());
  TextTable t({"Training data", "AVG of R", "AVG of P", "AVG of F1",
               "SD of F1"});
  const auto base =
      eval::run_cv(llm::starchat_persona(), eval::Objective::Detection,
                   /*finetuned=*/false);
  t.add_row({"pretrained (no FT)", format_double(base.recall.avg, 3),
             format_double(base.precision.avg, 3),
             format_double(base.f1.avg, 3), format_double(base.f1.sd, 3)});
  for (int synth : {0, 100, 300, 600}) {
    const auto cv =
        eval::run_cv(llm::starchat_persona(), eval::Objective::Detection,
                     /*finetuned=*/true, 5, 2023, synth);
    char label[64];
    std::snprintf(label, sizeof(label), "FT: 158 DRB-ML + %d synthetic",
                  synth);
    t.add_row({label, format_double(cv.recall.avg, 3),
               format_double(cv.precision.avg, 3),
               format_double(cv.f1.avg, 3), format_double(cv.f1.sd, 3)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nSection 4.5 proposes synthetic data generation as a remedy for\n"
      "the scarce fine-tuning data. The generated kernels carry\n"
      "by-construction labels (validated against the dynamic detector in\n"
      "tests/synth_test.cpp); augmentation grows each fold's training set\n"
      "without touching the DRB-ML test folds.\n");
  return 0;
}
