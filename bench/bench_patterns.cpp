// Per-pattern error analysis (extends the paper's Section 4.4
// observations): for the best LLM (GPT-4, p1) and the traditional tool,
// which corpus pattern families are handled and which fail.
#include <cstdio>

#include <map>

#include "bench_util.hpp"
#include "analysis/race.hpp"
#include "drb/corpus.hpp"
#include "runtime/dynamic.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s", heading("Per-pattern accuracy: GPT-4 (p1) vs the "
                            "traditional tool").c_str());

  llm::ChatModel gpt4(llm::gpt4_persona());
  analysis::StaticRaceDetector static_tool;
  runtime::DynamicDetectorOptions dyn_opts;
  dyn_opts.schedule_seeds = {1, 2};
  runtime::DynamicRaceDetector dynamic_tool(dyn_opts);

  struct Tally {
    int total = 0;
    int llm_correct = 0;
    int tool_correct = 0;
  };
  std::map<std::string, Tally> tallies;

  for (const auto& e : drb::corpus()) {
    Tally& t = tallies[e.pattern];
    ++t.total;

    const prompts::Chat chat =
        prompts::detection_chat(prompts::Style::P1,
                                drb::resolve_entry(e).trimmed);
    const auto reply = gpt4.chat(chat);
    const bool llm_verdict =
        eval::parse_detection(reply.text).value_or(false);
    if (llm_verdict == e.race) ++t.llm_correct;

    bool tool_verdict = false;
    try {
      tool_verdict = static_tool.analyze_source(e.body).race_detected;
    } catch (const Error&) {
    }
    if (!tool_verdict) {
      tool_verdict = dynamic_tool.analyze_source(e.body).race_detected;
    }
    if (tool_verdict == e.race) ++t.tool_correct;
  }

  TextTable table({"Pattern", "N", "GPT-4 acc", "Tool acc"});
  for (const auto& [pattern, t] : tallies) {
    table.add_row({pattern, std::to_string(t.total),
                   format_double(static_cast<double>(t.llm_correct) / t.total,
                                 2),
                   format_double(
                       static_cast<double>(t.tool_correct) / t.total, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nEchoes the paper's observations: the LLM's errors are spread\n"
      "roughly uniformly across families (its evidence view is global and\n"
      "noisy), while the tool's few errors concentrate in specific blind\n"
      "spots (interprocedural effects, library-call semantics, serialized\n"
      "regions it cannot prove, schedule-aligned collapse dependences).\n");
  return 0;
}
