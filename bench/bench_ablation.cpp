// Ablation study over the design choices DESIGN.md calls out:
//   A. detector configuration (what each modelling capability buys),
//   B. dynamic-detector schedule diversity (seeds/threads vs recall),
//   C. prompt strategy sensitivity per persona (CoT on/off, multitask),
//   D. fine-tuning budget (LoRA alpha scaling sweep).
#include <cstdio>

#include "analysis/race.hpp"
#include "bench_util.hpp"
#include "dataset/drbml.hpp"
#include "drb/corpus.hpp"
#include "llm/finetune.hpp"
#include "runtime/dynamic.hpp"

namespace {

using namespace drbml;

eval::ConfusionMatrix eval_static(const analysis::StaticDetectorOptions& opts) {
  analysis::StaticRaceDetector detector(opts);
  eval::ConfusionMatrix cm;
  for (const auto& e : drb::corpus()) {
    bool flagged = false;
    try {
      flagged = detector.analyze_source(e.body).race_detected;
    } catch (const Error&) {
    }
    cm.add(flagged, e.race);
  }
  return cm;
}

void print_cm(const char* label, const eval::ConfusionMatrix& cm) {
  std::printf("  %-38s TP=%3d FP=%3d TN=%3d FN=%3d  R=%.3f P=%.3f F1=%.3f\n",
              label, cm.tp, cm.fp, cm.tn, cm.fn, cm.recall(), cm.precision(),
              cm.f1());
}

}  // namespace

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  std::printf("%s",
              heading("Ablation A -- static detector modelling capabilities")
                  .c_str());
  {
    analysis::StaticDetectorOptions full;
    print_cm("full modelling", eval_static(full));

    analysis::StaticDetectorOptions no_locks = full;
    no_locks.model_locks = false;
    print_cm("- lock modelling", eval_static(no_locks));

    analysis::StaticDetectorOptions no_depend = full;
    no_depend.model_depend_clauses = false;
    print_cm("- task depend clauses", eval_static(no_depend));

    analysis::StaticDetectorOptions no_ordered = full;
    no_ordered.model_ordered = false;
    print_cm("- ordered regions", eval_static(no_ordered));

    analysis::StaticDetectorOptions optimistic = full;
    optimistic.depend.conservative_nonaffine = false;
    print_cm("optimistic non-affine subscripts", eval_static(optimistic));

    analysis::StaticDetectorOptions legacy = full;
    legacy.model_locks = false;
    legacy.model_depend_clauses = false;
    legacy.model_ordered = false;
    print_cm("legacy tool (Table 3 'Ins' static half)", eval_static(legacy));
  }

  std::printf("%s",
              heading("Ablation B -- dynamic detector schedule diversity")
                  .c_str());
  for (const auto& [label, seeds, threads] :
       std::vector<std::tuple<const char*, std::vector<std::uint64_t>, int>>{
           {"1 seed,  2 threads", {1}, 2},
           {"1 seed,  4 threads", {1}, 4},
           {"3 seeds, 4 threads", {1, 2, 3}, 4},
           {"5 seeds, 8 threads", {1, 2, 3, 4, 5}, 8},
       }) {
    runtime::DynamicDetectorOptions opts;
    opts.schedule_seeds = seeds;
    opts.run.num_threads = threads;
    runtime::DynamicRaceDetector detector(opts);
    eval::ConfusionMatrix cm;
    for (const auto& e : drb::corpus()) {
      cm.add(detector.analyze_source(e.body).race_detected, e.race);
    }
    print_cm(label, cm);
  }

  std::printf("%s",
              heading("Ablation C -- prompt strategy per persona").c_str());
  {
    const auto subset = eval::token_filtered_subset();
    for (const llm::Persona& persona : llm::all_personas()) {
      llm::ChatModel model(persona);
      std::printf("  %s:\n", persona.name.c_str());
      for (prompts::Style style :
           {prompts::Style::P1, prompts::Style::P2, prompts::Style::P3,
            prompts::Style::BP2}) {
        const auto cm = eval::run_detection(model, style, subset);
        std::printf("    %-4s F1=%.3f (R=%.3f P=%.3f)\n",
                    prompts::style_name(style), cm.f1(), cm.recall(),
                    cm.precision());
      }
    }
  }

  std::printf("%s",
              heading("Ablation D -- fine-tuning budget (LoRA alpha sweep, "
                      "StarChat)").c_str());
  {
    const auto subset = eval::token_filtered_subset();
    std::vector<llm::TrainSample> train;
    // Train on the first 158 subset entries, test on the rest (a single
    // representative split; Table 4 does the full CV).
    const std::size_t cut = 158;
    for (std::size_t i = 0; i < cut; ++i) {
      llm::TrainSample s;
      s.code = subset[i]->trimmed_code;
      s.label = subset[i]->data_race == 1;
      train.push_back(std::move(s));
    }
    for (double alpha : {0.0, 0.05, 0.1, 0.2, 0.5, 1.0}) {
      llm::ChatModel model(llm::starchat_persona());
      llm::FinetuneConfig config = llm::starchat_finetune_config();
      config.alpha_scale = alpha;
      auto adapter = std::make_shared<llm::Adapter>(llm::finetune_detection(
          model, prompts::Style::P1, train, config));
      model.set_adapter(std::move(adapter));
      eval::ConfusionMatrix cm;
      for (std::size_t i = cut; i < subset.size(); ++i) {
        const auto v =
            model.decide(prompts::Style::P1, subset[i]->trimmed_code);
        cm.add(v.yes, subset[i]->data_race == 1);
      }
      std::printf("  alpha=%.2f  F1=%.3f (R=%.3f P=%.3f)\n", alpha, cm.f1(),
                  cm.recall(), cm.precision());
    }
  }

  std::printf("%s",
              heading("Ablation E -- output-format processing (Section "
                      "4.5)").c_str());
  {
    // How often does each persona produce structured JSON vs prose that
    // needs the regex fallback -- and how much does format matter? Also
    // checks both dataset response formats (Listing 3 prose vs the
    // structured Listing 9) through the same parser.
    const auto subset = eval::token_filtered_subset();
    for (const llm::Persona& persona : llm::all_personas()) {
      llm::ChatModel model(persona);
      int structured = 0;
      int prose = 0;
      int silent = 0;
      for (const auto* e : subset) {
        const auto reply = model.chat(prompts::varid_chat(e->trimmed_code));
        const auto parsed = eval::parse_varid(reply.text);
        if (parsed.pairs.empty()) {
          ++silent;
        } else if (parsed.structured) {
          ++structured;
        } else {
          ++prose;
        }
      }
      std::printf("  %-14s structured=%3d prose=%3d no-pairs=%3d\n",
                  persona.name.c_str(), structured, prose, silent);
    }
    int prose_parsed = 0;
    int json_parsed = 0;
    int yes_entries = 0;
    for (const auto* e : subset) {
      if (e->data_race != 1) continue;
      ++yes_entries;
      const auto prose_pr = dataset::make_varid_pair_prose(*e);
      const auto json_pr = dataset::make_varid_pair(*e);
      if (eval::varid_matches(eval::parse_varid(prose_pr.response), *e)) {
        ++prose_parsed;
      }
      if (eval::varid_matches(eval::parse_varid(json_pr.response), *e)) {
        ++json_parsed;
      }
    }
    std::printf("  dataset round-trip through the parser (of %d yes "
                "entries): Listing-3 prose %d, Listing-9 JSON %d\n",
                yes_entries, prose_parsed, json_parsed);
  }
  return 0;
}
