// Reproduces Table 2: GPT-3.5-turbo detection with basic prompts 1 and 2
// (the paper's preliminary prompt-engineering comparison).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s",
              heading("Table 2 -- GPT-3.5-turbo with basic prompts BP1/BP2")
                  .c_str());
  const int rc = bench::print_with_speedup([](const eval::ExperimentOptions& o) {
    return bench::detection_table(eval::table2_rows(o));
  });
  bench::print_reference(
      "\nPaper reference (Correctness'23, Table 2):\n"
      "  BP1  TP=66 FP=55 TN=43 FN=34  R=0.660 P=0.545 F1=0.597\n"
      "  BP2  TP=35 FP=26 TN=72 FN=65  R=0.350 P=0.574 F1=0.435\n"
      "\nObservation to reproduce: the succinct single-task prompt (BP1)\n"
      "clearly beats the multi-task prompt (BP2) on recall and F1.\n");
  return rc;
}
