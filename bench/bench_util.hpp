// Shared rendering helpers for the table-reproduction bench binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "eval/artifact_cache.hpp"
#include "eval/experiments.hpp"
#include "llm/model.hpp"
#include "obs/obs.hpp"
#include "runtime/interp.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace drbml::bench {

/// Shared argv handling for bench mains: consumes the global
/// observability flags (--trace FILE / --metrics FILE) and warns about
/// anything left over. The DRBML_TRACE / DRBML_METRICS environment
/// variables work without any flags.
inline void init_bench(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  obs::consume_obs_flags(args);
  for (const std::string& a : args) {
    std::fprintf(stderr, "%s: ignoring unknown argument '%s'\n", argv[0],
                 a.c_str());
  }
}

/// Renders detection rows in the paper's Table 2/3 layout.
inline std::string detection_table(
    const std::vector<eval::DetectionRow>& rows) {
  TextTable t({"Choice", "Prompt", "TP", "FP", "TN", "FN", "R", "P", "F1"});
  for (const auto& row : rows) {
    const auto& cm = row.cm;
    t.add_row({row.model, row.prompt, std::to_string(cm.tp),
               std::to_string(cm.fp), std::to_string(cm.tn),
               std::to_string(cm.fn), format_double(cm.recall(), 3),
               format_double(cm.precision(), 3), format_double(cm.f1(), 3)});
  }
  return t.render();
}

/// Renders CV rows in the paper's Table 4/6 layout.
inline std::string cv_table(const std::vector<eval::CvRow>& rows) {
  TextTable t({"Model", "AVG of R", "SD of R", "AVG of P", "SD of P",
               "AVG of F1", "SD of F1"});
  for (const auto& row : rows) {
    t.add_row({row.model, format_double(row.recall.avg, 3),
               format_double(row.recall.sd, 3),
               format_double(row.precision.avg, 3),
               format_double(row.precision.sd, 3),
               format_double(row.f1.avg, 3), format_double(row.f1.sd, 3)});
  }
  return t.render();
}

/// Renders the repair experiment (Table 7) rows: verified-fix outcomes
/// per DRB pattern family.
inline std::string repair_table(const std::vector<eval::RepairRow>& rows) {
  TextTable t({"Family", "Entries", "Fixed", "Verified", "NoCand", "Rej",
               "Err", "FixRate", "VerRate", "Patches/Fix"});
  for (const auto& row : rows) {
    t.add_row({row.family, std::to_string(row.entries),
               std::to_string(row.fixed), std::to_string(row.verified),
               std::to_string(row.no_candidate), std::to_string(row.rejected),
               std::to_string(row.errors), format_double(row.fix_rate(), 3),
               format_double(row.verified_rate(), 3),
               format_double(row.patches_per_fix(), 2)});
  }
  return t.render();
}

/// Renders the schedule-exploration comparison: uniform vs PCT at equal
/// budget over the race-labeled corpus.
inline std::string exploration_table(
    const std::vector<eval::ExplorationRow>& rows) {
  TextTable t({"Strategy", "Entries", "Detected", "OnlyHere", "Sched/Entry",
               "ToFirstRace", "WitnessDec", "Plateau", "Err"});
  for (const auto& row : rows) {
    t.add_row({row.strategy, std::to_string(row.entries),
               std::to_string(row.detected), std::to_string(row.only_here),
               format_double(row.entries > 0
                                 ? static_cast<double>(row.schedules) /
                                       row.entries
                                 : 0.0,
                             2),
               format_double(row.avg_schedules_to_first_race(), 2),
               std::to_string(row.witness_decisions),
               std::to_string(row.plateau_stops),
               std::to_string(row.errors)});
  }
  return t.render();
}

inline void print_reference(const char* text) {
  std::printf("%s", text);
}

/// Runs a table pipeline serially (jobs=1) and in parallel (jobs=auto),
/// prints the parallel rendering, and reports wall-clock speedup plus a
/// byte-identity check of the two renderings (the executor's determinism
/// contract). `render(opts)` must return the fully rendered table.
template <typename RenderFn>
int print_with_speedup(RenderFn&& render) {
  using Clock = std::chrono::steady_clock;
  const int jobs = support::resolve_jobs(0);

  // Cold-start both runs: memoized artifacts must not let the second run
  // coast on the first run's work, or the comparison measures caching.
  auto cold = [] {
    eval::artifact_cache().clear();
    llm::clear_feature_cache();
  };

  cold();
  auto t0 = Clock::now();
  const std::string serial = render(eval::ExperimentOptions{/*jobs=*/1});
  const double serial_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  cold();
  t0 = Clock::now();
  const std::string parallel = render(eval::ExperimentOptions{jobs});
  const double parallel_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  std::printf("%s", parallel.c_str());
  const bool identical = serial == parallel;
  std::printf(
      "\n[executor] serial %.1f ms | %d jobs %.1f ms | speedup %.2fx | "
      "serial/parallel outputs %s\n",
      serial_ms, jobs, parallel_ms,
      parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0,
      identical ? "identical" : "DIFFER (BUG)");
  return identical ? 0 : 3;
}

/// Runs `render()` once under each execution backend (interp, then vm),
/// restores the previous default, and prints per-backend timing rows
/// plus a byte-identity check of the two renderings. The dynamic
/// detector is the only backend-sensitive stage, so the delta isolates
/// what the bytecode VM and its fiber scheduling substrate buy the
/// enclosing workload. Caches are cleared before each run (the artifact
/// cache keys on the backend, so a warm run would measure memoization).
template <typename RenderFn>
int print_backend_rows(const char* what, RenderFn&& render) {
  using Clock = std::chrono::steady_clock;
  auto cold = [] {
    eval::artifact_cache().clear();
    llm::clear_feature_cache();
  };
  const runtime::Backend before = runtime::default_backend();
  constexpr runtime::Backend kOrder[2] = {runtime::Backend::Interp,
                                          runtime::Backend::Vm};
  constexpr const char* kNames[2] = {"interp", "vm"};
  double wall_ms[2] = {0, 0};
  std::string outputs[2];
  for (int k = 0; k < 2; ++k) {
    runtime::set_default_backend(kOrder[k]);
    cold();
    const auto t0 = Clock::now();
    outputs[k] = render();
    wall_ms[k] =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  }
  runtime::set_default_backend(before);
  cold();

  TextTable t({"Backend", "Wall (ms)", "Output"});
  for (int k = 0; k < 2; ++k) {
    t.add_row({kNames[k], format_double(wall_ms[k], 1), outputs[k]});
  }
  std::printf("\n%s", t.render().c_str());
  const bool identical = outputs[0] == outputs[1];
  std::printf(
      "[backend] %s: interp %.1f ms | vm %.1f ms | speedup %.2fx | "
      "outputs %s\n",
      what, wall_ms[0], wall_ms[1],
      wall_ms[1] > 0.0 ? wall_ms[0] / wall_ms[1] : 0.0,
      identical ? "identical" : "DIFFER (BUG)");
  return identical ? 0 : 3;
}

}  // namespace drbml::bench
