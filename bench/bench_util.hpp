// Shared rendering helpers for the table-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "eval/experiments.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace drbml::bench {

/// Renders detection rows in the paper's Table 2/3 layout.
inline std::string detection_table(
    const std::vector<eval::DetectionRow>& rows) {
  TextTable t({"Choice", "Prompt", "TP", "FP", "TN", "FN", "R", "P", "F1"});
  for (const auto& row : rows) {
    const auto& cm = row.cm;
    t.add_row({row.model, row.prompt, std::to_string(cm.tp),
               std::to_string(cm.fp), std::to_string(cm.tn),
               std::to_string(cm.fn), format_double(cm.recall(), 3),
               format_double(cm.precision(), 3), format_double(cm.f1(), 3)});
  }
  return t.render();
}

/// Renders CV rows in the paper's Table 4/6 layout.
inline std::string cv_table(const std::vector<eval::CvRow>& rows) {
  TextTable t({"Model", "AVG of R", "SD of R", "AVG of P", "SD of P",
               "AVG of F1", "SD of F1"});
  for (const auto& row : rows) {
    t.add_row({row.model, format_double(row.recall.avg, 3),
               format_double(row.recall.sd, 3),
               format_double(row.precision.avg, 3),
               format_double(row.precision.sd, 3),
               format_double(row.f1.avg, 3), format_double(row.f1.sd, 3)});
  }
  return t.render();
}

inline void print_reference(const char* text) {
  std::printf("%s", text);
}

}  // namespace drbml::bench
