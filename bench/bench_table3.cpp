// Reproduces Table 3: data race detection results of a representative
// traditional tool and four LLMs under prompt strategies p1/p2/p3 on the
// 198-entry DRB-ML subset.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s", heading("Table 3 -- detection: traditional tool vs LLMs "
                            "x {p1,p2,p3} (198-entry DRB-ML subset)").c_str());
  const int rc = bench::print_with_speedup([](const eval::ExperimentOptions& o) {
    return bench::detection_table(eval::table3_rows(o));
  });
  bench::print_reference(
      "\nPaper reference (Correctness'23, Table 3):\n"
      "  Ins   N/A TP=88 FP=44 TN=53 FN=11  R=0.889 P=0.667 F1=0.762\n"
      "  GPT3  p1  TP=66 FP=55 TN=43 FN=34  R=0.660 P=0.545 F1=0.597\n"
      "  GPT3  p2  TP=63 FP=56 TN=42 FN=37  R=0.630 P=0.529 F1=0.575\n"
      "  GPT3  p3  TP=69 FP=54 TN=44 FN=31  R=0.690 P=0.561 F1=0.619\n"
      "  GPT4  p1  TP=77 FP=28 TN=70 FN=23  R=0.770 P=0.733 F1=0.751\n"
      "  GPT4  p2  TP=78 FP=30 TN=68 FN=22  R=0.780 P=0.722 F1=0.750\n"
      "  GPT4  p3  TP=78 FP=28 TN=68 FN=22  R=0.780 P=0.736 F1=0.757\n"
      "  SC    p1  TP=63 FP=68 TN=30 FN=37  R=0.630 P=0.481 F1=0.545\n"
      "  SC    p2  TP=62 FP=67 TN=31 FN=38  R=0.620 P=0.481 F1=0.541\n"
      "  SC    p3  TP=63 FP=61 TN=37 FN=37  R=0.630 P=0.508 F1=0.563\n"
      "  LM    p1  TP=65 FP=57 TN=41 FN=35  R=0.650 P=0.533 F1=0.586\n"
      "  LM    p2  TP=65 FP=57 TN=41 FN=35  R=0.650 P=0.533 F1=0.586\n"
      "  LM    p3  TP=66 FP=55 TN=43 FN=34  R=0.660 P=0.545 F1=0.597\n"
      "\nNote: the traditional-tool row runs this repository's hybrid\n"
      "static+dynamic detector over the simulated corpus; it is stronger\n"
      "than Intel Inspector on real DRB (see EXPERIMENTS.md).\n");
  return rc;
}
