// Reproduces Table 5: data race variable identification with four
// pretrained LLMs (names + line numbers + operations must all match).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s", heading("Table 5 -- variable identification, pretrained "
                            "LLMs").c_str());
  const int rc = bench::print_with_speedup([](const eval::ExperimentOptions& o) {
    return bench::detection_table(eval::table5_rows(o));
  });
  bench::print_reference(
      "\nPaper reference (Correctness'23, Table 5):\n"
      "  GPT3  TP=12 FP=54 TN=44 FN=88  R=0.120 P=0.182 F1=0.145\n"
      "  GPT4  TP=14 FP=31 TN=67 FN=86  R=0.140 P=0.311 F1=0.193\n"
      "  SC    TP=7  FP=66 TN=32 FN=93  R=0.070 P=0.096 F1=0.081\n"
      "  LM    TP=5  FP=65 TN=33 FN=95  R=0.050 P=0.071 F1=0.059\n"
      "\nShape to reproduce: variable identification is hard for every\n"
      "model (F1 well under 0.2), GPT-4 leads on precision.\n");
  return rc;
}
