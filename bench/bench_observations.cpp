// Acceptance harness for the paper's Section 4.4 observations: each
// bullet is re-stated as a measurable predicate and checked against the
// live pipeline. Exits non-zero if any observation fails to reproduce.
#include <cstdio>

#include "bench_util.hpp"

namespace {

int failures = 0;

void check(bool ok, const char* text) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", text);
  if (!ok) ++failures;
}

}  // namespace

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s", heading("Section 4.4 observations, re-verified").c_str());
  const auto subset = eval::token_filtered_subset();

  // Gather the measurements once.
  struct ModelScores {
    double p1 = 0;
    double p2 = 0;
    double p3 = 0;
    double varid_f1 = 0;
    double varid_precision = 0;
  };
  std::vector<std::pair<std::string, ModelScores>> scores;
  for (const llm::Persona& persona : llm::all_personas()) {
    llm::ChatModel model(persona);
    ModelScores s;
    s.p1 = eval::run_detection(model, prompts::Style::P1, subset).f1();
    s.p2 = eval::run_detection(model, prompts::Style::P2, subset).f1();
    s.p3 = eval::run_detection(model, prompts::Style::P3, subset).f1();
    const auto varid = eval::run_varid(model, subset);
    s.varid_f1 = varid.f1();
    s.varid_precision = varid.precision();
    scores.emplace_back(persona.key, s);
  }
  auto score_of = [&](const char* key) -> const ModelScores& {
    for (const auto& [k, s] : scores) {
      if (k == key) return s;
    }
    static ModelScores none;
    return none;
  };
  const double tool_f1 = eval::run_traditional_tool(subset).f1();

  // Observation 1: "GPT-4 stands out as the premier pre-trained model for
  // data race analysis, excelling particularly in identifying data
  // race-related variables."
  {
    const ModelScores& gpt4 = score_of("gpt4");
    bool best_detection = true;
    bool best_varid = true;
    for (const auto& [k, s] : scores) {
      if (k == "gpt4") continue;
      if (s.p1 >= gpt4.p1) best_detection = false;
      if (s.varid_precision >= gpt4.varid_precision) best_varid = false;
    }
    check(best_detection, "GPT-4 has the best detection F1 among LLMs (p1)");
    check(best_varid, "GPT-4 has the best variable-identification precision");
  }

  // Observation 1b: "With the right fine-tuning, [open models] could
  // surpass the GPT series in data race detection" -- verified as:
  // fine-tuning moves StarChat past GPT-3.5's pretrained score.
  {
    const auto ft =
        eval::run_cv(llm::starchat_persona(), eval::Objective::Detection,
                     /*finetuned=*/true);
    check(ft.f1.avg > score_of("gpt35").p1,
          "fine-tuned StarChat beats pretrained GPT-3.5 detection F1");
  }

  // Observation 2: "traditional tools achieve superior performance in
  // terms of the F1 score when compared to LLMs".
  {
    bool tool_wins = true;
    for (const auto& [k, s] : scores) {
      if (std::max(std::max(s.p1, s.p2), s.p3) >= tool_f1) tool_wins = false;
    }
    check(tool_wins, "the traditional tool beats every LLM/prompt combo");
  }

  // Observation 3: "simple and concise prompts yield better results ...
  // all models [except Llama2] displayed enhanced performance with p1
  // compared to p2". With our sampling noise the robust form of this
  // claim is about BP1 vs BP2 (Table 2's large gap).
  {
    llm::ChatModel gpt35(llm::gpt35_persona());
    const double bp1 =
        eval::run_detection(gpt35, prompts::Style::BP1, subset).f1();
    const double bp2 =
        eval::run_detection(gpt35, prompts::Style::BP2, subset).f1();
    check(bp1 > bp2 + 0.10,
          "the succinct BP1 beats the multi-task BP2 by a wide margin");
  }

  // Observation 4: "fine-tuning demonstrates the potential of open-source
  // LLMs" -- both open models improve their detection F1.
  {
    for (const char* key : {"starchat", "llama2"}) {
      const llm::Persona persona = std::string(key) == "starchat"
                                       ? llm::starchat_persona()
                                       : llm::llama2_persona();
      const auto base =
          eval::run_cv(persona, eval::Objective::Detection, false);
      const auto ft = eval::run_cv(persona, eval::Objective::Detection, true);
      std::string msg = std::string("fine-tuning improves ") + key +
                        " detection F1";
      check(ft.f1.avg > base.f1.avg, msg.c_str());
    }
  }

  // Table 5's framing: variable identification is far harder than
  // detection for every model.
  {
    bool all_hard = true;
    for (const auto& [k, s] : scores) {
      if (s.varid_f1 > 0.25) all_hard = false;
    }
    check(all_hard, "variable identification F1 stays under 0.25 everywhere");
  }

  std::printf("\n%d observation check(s) failed\n", failures);
  return failures == 0 ? 0 : 1;
}
