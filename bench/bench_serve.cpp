// Load bench for the serve daemon: drives a Server with a mixed
// analyze/lint workload, in-process and over a socketpair wire, and
// reports per-phase latency percentiles (p50/p95/p99) and sustained QPS.
//
// Phases:
//   cold   in-process, empty artifact cache -- every request computes
//   warm   the identical workload again -- every request should hit
//   wire   the warm workload once more, but through serve_fd over an
//          AF_UNIX socketpair (client writes NDJSON, reads responses)
//
// The bench asserts the serve contract the check.sh gate relies on:
//   * every request gets exactly one response (no drops under load);
//   * the warm-phase cache hit rate is strictly above the cold phase;
//   * responses are byte-identical at --jobs 1 and --jobs 8 (compared
//     sorted by id -- arrival order is scheduling, bytes are not).
//
// Writes BENCH_serve.json (override with --out FILE). Latency numbers
// are wall-clock and machine-dependent; the hit-rate and identity
// fields are the stable part of the artifact.
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "drb/corpus.hpp"
#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace {

using namespace drbml;

/// The mixed workload: analyze (static and hybrid) + lint over the
/// first `entries` parseable corpus programs, each request id unique.
std::vector<std::pair<std::string, std::string>> build_workload(
    int entries) {
  std::vector<std::pair<std::string, std::string>> requests;  // (id, line)
  int taken = 0;
  for (const drb::CorpusEntry& e : drb::corpus()) {
    if (taken >= entries) break;
    ++taken;
    const std::string code = json::escape(drb::drb_code(e));
    const std::string tag = "e" + std::to_string(taken);
    requests.emplace_back(
        tag + "-static", "{\"id\":\"" + tag + "-static\",\"verb\":\"analyze\","
                         "\"detector\":\"static\",\"code\":\"" + code + "\"}");
    requests.emplace_back(
        tag + "-hybrid", "{\"id\":\"" + tag + "-hybrid\",\"verb\":\"analyze\","
                         "\"detector\":\"hybrid\",\"code\":\"" + code + "\"}");
    requests.emplace_back(
        tag + "-lint", "{\"id\":\"" + tag + "-lint\",\"verb\":\"lint\","
                       "\"code\":\"" + code + "\"}");
  }
  return requests;
}

struct PhaseResult {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t errors = 0;
  double wall_ms = 0;
  double qps = 0;
  std::uint64_t p50_us = 0, p95_us = 0, p99_us = 0;
  double hit_rate = 0;  // cache hits / probes during the phase
};

std::uint64_t percentile(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t i =
      std::min(v.size() - 1, static_cast<std::size_t>(p * v.size()));
  return v[i];
}

std::uint64_t cache_probes() {
  static const obs::MetricDesc* kProbes[] = {
      &obs::kCacheTokensProbe,   &obs::kCacheAstProbe,
      &obs::kCacheDepgraphProbe, &obs::kCacheStaticProbe,
      &obs::kCacheDynamicProbe,  &obs::kCacheLintProbe,
      &obs::kCacheRepairProbe,   &obs::kCacheLintTextProbe,
      &obs::kCacheEvidenceTextProbe, &obs::kCacheExploreProbe,
  };
  std::uint64_t n = 0;
  for (const obs::MetricDesc* d : kProbes) n += obs::metrics().counter(*d).value();
  return n;
}

std::uint64_t cache_computes() {
  static const obs::MetricDesc* kComputes[] = {
      &obs::kCacheTokensCompute,   &obs::kCacheAstCompute,
      &obs::kCacheDepgraphCompute, &obs::kCacheStaticCompute,
      &obs::kCacheDynamicCompute,  &obs::kCacheLintCompute,
      &obs::kCacheRepairCompute,   &obs::kCacheLintTextCompute,
      &obs::kCacheEvidenceTextCompute, &obs::kCacheExploreCompute,
  };
  std::uint64_t n = 0;
  for (const obs::MetricDesc* d : kComputes) n += obs::metrics().counter(*d).value();
  return n;
}

/// Runs the workload through Server::submit_line, waiting for every
/// response; latency is submit -> response-callback per request.
PhaseResult run_inprocess(
    serve::Server& server,
    const std::vector<std::pair<std::string, std::string>>& workload) {
  PhaseResult r;
  r.requests = workload.size();
  const std::uint64_t probes0 = cache_probes();
  const std::uint64_t computes0 = cache_computes();

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::uint64_t> latencies;
  std::uint64_t errors = 0, done = 0;

  const std::uint64_t t0 = obs::now_wall_ns();
  for (const auto& [id, line] : workload) {
    const std::uint64_t sent = obs::now_wall_ns();
    server.submit_line(line, [&, sent](std::string response) {
      const std::uint64_t us = (obs::now_wall_ns() - sent) / 1'000ULL;
      std::lock_guard<std::mutex> lock(mu);
      latencies.push_back(us);
      if (response.find("\"ok\":false") != std::string::npos) ++errors;
      ++done;
      cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == workload.size(); });
  }
  r.wall_ms = static_cast<double>(obs::now_wall_ns() - t0) / 1e6;

  r.responses = done;
  r.errors = errors;
  r.qps = r.wall_ms > 0 ? 1000.0 * static_cast<double>(done) / r.wall_ms : 0;
  r.p50_us = percentile(latencies, 0.50);
  r.p95_us = percentile(latencies, 0.95);
  r.p99_us = percentile(latencies, 0.99);
  const std::uint64_t probes = cache_probes() - probes0;
  const std::uint64_t computes = cache_computes() - computes0;
  r.hit_rate = probes > 0
                   ? static_cast<double>(probes - computes) /
                         static_cast<double>(probes)
                   : 0;
  return r;
}

/// Runs the workload over an AF_UNIX socketpair: serve_fd on a server
/// thread, NDJSON client on this one. Latency is write -> response-line
/// arrival, demultiplexed by id.
PhaseResult run_wire(
    serve::Server& server,
    const std::vector<std::pair<std::string, std::string>>& workload) {
  PhaseResult r;
  r.requests = workload.size();
  const std::uint64_t probes0 = cache_probes();
  const std::uint64_t computes0 = cache_computes();

  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw Error("socketpair failed");
  }
  std::thread server_thread([&] { server.serve_fd(fds[0], fds[0]); });

  std::map<std::string, std::uint64_t> sent_ns;
  const std::uint64_t t0 = obs::now_wall_ns();
  {
    std::string out;
    for (const auto& [id, line] : workload) {
      sent_ns[id] = obs::now_wall_ns();
      out = line + "\n";
      std::size_t off = 0;
      while (off < out.size()) {
        const ssize_t n = ::write(fds[1], out.data() + off, out.size() - off);
        if (n < 0) throw Error("wire write failed");
        off += static_cast<std::size_t>(n);
      }
    }
  }

  std::vector<std::uint64_t> latencies;
  std::string buffer;
  char chunk[4096];
  while (r.responses < workload.size()) {
    const ssize_t n = ::read(fds[1], chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      const std::uint64_t arrived = obs::now_wall_ns();
      const json::Value doc = json::parse(line);
      const std::string& id = doc.as_object().at("id").as_string();
      if (!doc.as_object().at("ok").as_bool()) ++r.errors;
      latencies.push_back((arrived - sent_ns.at(id)) / 1'000ULL);
      ++r.responses;
    }
    buffer.erase(0, start);
  }
  r.wall_ms = static_cast<double>(obs::now_wall_ns() - t0) / 1e6;
  ::shutdown(fds[1], SHUT_WR);  // EOF -> server drains and returns
  server_thread.join();
  ::close(fds[1]);
  ::close(fds[0]);

  r.qps = r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.responses) / r.wall_ms
                        : 0;
  r.p50_us = percentile(latencies, 0.50);
  r.p95_us = percentile(latencies, 0.95);
  r.p99_us = percentile(latencies, 0.99);
  const std::uint64_t probes = cache_probes() - probes0;
  const std::uint64_t computes = cache_computes() - computes0;
  r.hit_rate = probes > 0
                   ? static_cast<double>(probes - computes) /
                         static_cast<double>(probes)
                   : 0;
  return r;
}

/// Collects (id -> response) via a dedicated server at the given job
/// count; used for the cross-jobs byte-identity check.
std::map<std::string, std::string> collect_responses(
    int jobs, const std::vector<std::pair<std::string, std::string>>& workload) {
  serve::ServerOptions opts;
  opts.jobs = jobs;
  opts.queue_limit = 0;  // unbounded: no backpressure in the bench
  serve::Server server(opts);
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::string, std::string> by_id;
  std::size_t done = 0;
  for (const auto& [id, line] : workload) {
    server.submit_line(line, [&, id = id](std::string response) {
      std::lock_guard<std::mutex> lock(mu);
      by_id[id] = std::move(response);
      ++done;
      cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == workload.size(); });
  return by_id;
}

json::Value phase_json(const PhaseResult& r) {
  json::Object o;
  o.set("requests", json::Value(static_cast<std::int64_t>(r.requests)));
  o.set("responses", json::Value(static_cast<std::int64_t>(r.responses)));
  o.set("errors", json::Value(static_cast<std::int64_t>(r.errors)));
  o.set("wall_ms", json::Value(r.wall_ms));
  o.set("qps", json::Value(r.qps));
  o.set("p50_us", json::Value(static_cast<std::int64_t>(r.p50_us)));
  o.set("p95_us", json::Value(static_cast<std::int64_t>(r.p95_us)));
  o.set("p99_us", json::Value(static_cast<std::int64_t>(r.p99_us)));
  o.set("cache_hit_rate", json::Value(r.hit_rate));
  return json::Value(std::move(o));
}

void print_phase(const char* name, const PhaseResult& r) {
  std::printf(
      "%-5s  %4llu req  %7.1f ms  %8.1f qps  p50 %6llu us  p95 %6llu us  "
      "p99 %6llu us  hit %.3f\n",
      name, static_cast<unsigned long long>(r.responses), r.wall_ms, r.qps,
      static_cast<unsigned long long>(r.p50_us),
      static_cast<unsigned long long>(r.p95_us),
      static_cast<unsigned long long>(r.p99_us), r.hit_rate);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  obs::consume_obs_flags(args);
  std::string out_path = "BENCH_serve.json";
  int entries = 12;
  int jobs = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--entries" && i + 1 < args.size()) {
      const auto v = parse_int(args[++i]);
      if (!v.has_value() || *v <= 0) {
        std::fprintf(stderr, "--entries expects a positive integer\n");
        return 2;
      }
      entries = static_cast<int>(*v);
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      const auto v = parse_int(args[++i]);
      if (!v.has_value() || *v < 0) {
        std::fprintf(stderr, "--jobs expects a non-negative integer\n");
        return 2;
      }
      jobs = static_cast<int>(*v);
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--entries N] [--jobs N] [--out FILE]\n");
      return 2;
    }
  }

  const auto workload = build_workload(entries);
  std::printf("bench_serve: %zu requests (%d entries x analyze-static/"
              "analyze-hybrid/lint)\n",
              workload.size(), entries);

  serve::ServerOptions opts;
  opts.jobs = jobs;
  opts.queue_limit = 0;  // latency bench: no backpressure drops
  serve::Server server(opts);

  const PhaseResult cold = run_inprocess(server, workload);
  print_phase("cold", cold);
  const PhaseResult warm = run_inprocess(server, workload);
  print_phase("warm", warm);

  serve::ServerOptions wire_opts;
  wire_opts.jobs = jobs;
  wire_opts.queue_limit = 0;
  serve::Server wire_server(wire_opts);
  const PhaseResult wire = run_wire(wire_server, workload);
  print_phase("wire", wire);

  // Byte-identity across job counts (responses compared by id; arrival
  // order is scheduling and deliberately not part of the contract).
  const auto jobs1 = collect_responses(1, workload);
  const auto jobs8 = collect_responses(8, workload);
  const bool identical = jobs1 == jobs8;
  std::printf("determinism: jobs=1 vs jobs=8 responses %s\n",
              identical ? "byte-identical" : "DIVERGED");

  bool ok = true;
  if (cold.responses != cold.requests || warm.responses != warm.requests ||
      wire.responses != wire.requests) {
    std::fprintf(stderr, "FAIL: dropped responses\n");
    ok = false;
  }
  if (cold.errors + warm.errors + wire.errors > 0) {
    std::fprintf(stderr, "FAIL: error responses in a well-formed workload\n");
    ok = false;
  }
  if (warm.hit_rate <= cold.hit_rate) {
    std::fprintf(stderr, "FAIL: warm hit rate %.3f not above cold %.3f\n",
                 warm.hit_rate, cold.hit_rate);
    ok = false;
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: responses differ across --jobs\n");
    ok = false;
  }
  if (warm.qps < 50.0) {
    std::fprintf(stderr, "FAIL: warm QPS %.1f below the 50 QPS floor\n",
                 warm.qps);
    ok = false;
  }

  json::Object root;
  root.set("schema", json::Value("drbml-bench-serve-v1"));
  root.set("workload", json::Value(static_cast<std::int64_t>(workload.size())));
  root.set("entries", json::Value(entries));
  json::Object phases;
  phases.set("cold", phase_json(cold));
  phases.set("warm", phase_json(warm));
  phases.set("wire", phase_json(wire));
  root.set("phases", json::Value(std::move(phases)));
  json::Object checks;
  checks.set("no_dropped_responses", json::Value(ok || cold.responses == cold.requests));
  checks.set("warm_hits_above_cold", json::Value(warm.hit_rate > cold.hit_rate));
  checks.set("jobs_byte_identical", json::Value(identical));
  checks.set("warm_qps_floor", json::Value(50));
  checks.set("warm_qps_met", json::Value(warm.qps >= 50.0));
  root.set("checks", json::Value(std::move(checks)));
  std::ofstream out(out_path, std::ios::trunc);
  out << json::Value(std::move(root)).dump_pretty() << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
