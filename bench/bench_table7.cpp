// Table 7 (repair extension, not in the paper): the automated race
// repair subsystem's verified fix loop over every race-labeled corpus
// entry, grouped by DRB pattern family. A fix counts only when the
// patched program passes the static detector, the dynamic vector-clock
// detector on every schedule seed, and the output-equivalence gate.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s", heading("Table 7 -- automated race repair, verified "
                            "fix loop").c_str());
  const int rc = bench::print_with_speedup([](const eval::ExperimentOptions& o) {
    return bench::repair_table(eval::table7_rows({}, o));
  });
  bench::print_reference(
      "\nNo paper reference: the paper stops at detection; this table\n"
      "extends the reproduction with DR.FIX-style detector-verified\n"
      "repair. Shape to expect: clause-level fixes (reduction/private)\n"
      "land on the first candidate, synchronization families need more\n"
      "attempts, and the total verified fix rate clears 60%.\n");
  return rc;
}
