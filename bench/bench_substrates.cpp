// Substrate microbenchmarks (google-benchmark): frontend, static
// analysis, dynamic interpreter, tokenizers, feature extraction, adapter
// training step. These are the ablation-grade cost measurements for the
// systems DESIGN.md inventories.
#include <benchmark/benchmark.h>

#include "analysis/race.hpp"
#include "drb/corpus.hpp"
#include "llm/features.hpp"
#include "llm/finetune.hpp"
#include "llm/tokenizer.hpp"
#include "minic/lexer.hpp"
#include "minic/parser.hpp"
#include "runtime/dynamic.hpp"

namespace {

using namespace drbml;

const std::string& sample_code() {
  static const std::string code =
      drb::resolve_entry(drb::corpus().front()).trimmed;
  return code;
}

void BM_LexTrimmedCode(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(minic::lex(sample_code()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sample_code().size()));
}
BENCHMARK(BM_LexTrimmedCode);

void BM_ParseProgram(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(minic::parse_program(sample_code()));
  }
}
BENCHMARK(BM_ParseProgram);

void BM_StripComments(benchmark::State& state) {
  const std::string code = drb::drb_code(drb::corpus().front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(minic::strip_comments(code));
  }
}
BENCHMARK(BM_StripComments);

void BM_StaticRaceDetection(benchmark::State& state) {
  analysis::StaticRaceDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.analyze_source(sample_code()));
  }
}
BENCHMARK(BM_StaticRaceDetection);

void BM_DynamicRaceDetection(benchmark::State& state) {
  runtime::DynamicDetectorOptions opts;
  opts.schedule_seeds = {1};
  runtime::DynamicRaceDetector detector(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.analyze_source(sample_code()));
  }
}
BENCHMARK(BM_DynamicRaceDetection);

void BM_SimpleTokenizer(benchmark::State& state) {
  llm::SimpleTokenizer tok;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.count_tokens(sample_code()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sample_code().size()));
}
BENCHMARK(BM_SimpleTokenizer);

void BM_BpeEncode(benchmark::State& state) {
  static llm::BpeTokenizer bpe = [] {
    llm::BpeTokenizer t;
    std::vector<std::string> texts;
    for (std::size_t i = 0; i < 20; ++i) {
      texts.push_back(drb::resolve_entry(drb::corpus()[i]).trimmed);
    }
    t.train(texts, 200);
    return t;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bpe.encode(sample_code()));
  }
}
BENCHMARK(BM_BpeEncode);

void BM_FeatureExtraction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(llm::extract_features(sample_code()));
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_AdapterFeaturize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(llm::featurize(sample_code()));
  }
}
BENCHMARK(BM_AdapterFeaturize);

void BM_AdapterPredict(benchmark::State& state) {
  const llm::FeatureVec f = llm::featurize(sample_code());
  llm::Adapter adapter;
  adapter.u.fill(0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adapter.predict(f));
  }
}
BENCHMARK(BM_AdapterPredict);

}  // namespace

BENCHMARK_MAIN();
