// Reproduces the DRB-ML dataset construction study (Section 3.1, Table 1,
// Listings 1-3): builds all entries, validates the schema round-trip, and
// reports the corpus statistics the paper quotes (201 entries, the 4k-token
// cut to 198, the 50.5%/49.5% class balance, fold sizes).
#include <cstdio>

#include "bench_util.hpp"
#include "dataset/drbml.hpp"
#include "dataset/folds.hpp"
#include "eval/experiments.hpp"
#include "llm/tokenizer.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s", heading("DRB-ML dataset construction (Section 3.1)")
                        .c_str());

  const auto& entries = dataset::dataset();
  int yes = 0;
  int pairs = 0;
  long long code_len_sum = 0;
  for (const auto& e : entries) {
    yes += e.data_race;
    pairs += static_cast<int>(e.var_pairs.size());
    code_len_sum += e.code_len;
  }
  const auto subset = eval::token_filtered_subset();
  int subset_yes = 0;
  for (const auto* e : subset) subset_yes += e->data_race;

  TextTable t({"Statistic", "Value", "Paper"});
  t.add_row({"JSON entries", std::to_string(entries.size()), "201"});
  t.add_row({"race-yes", std::to_string(yes), "~50.5% of subset"});
  t.add_row({"race-no", std::to_string(entries.size() - yes), "~49.5%"});
  t.add_row({"entries under 4k tokens", std::to_string(subset.size()), "198"});
  t.add_row({"subset race-yes", std::to_string(subset_yes), "100"});
  t.add_row({"subset race-no",
             std::to_string(subset.size() - subset_yes), "98"});
  t.add_row({"labelled var pairs", std::to_string(pairs), "1+ per yes"});
  t.add_row({"mean code_len",
             std::to_string(code_len_sum / static_cast<long long>(
                                entries.size())),
             "(DRB001: 262)"});
  std::printf("%s", t.render().c_str());

  // Fold construction per Section 3.5.
  std::vector<bool> labels;
  for (const auto* e : subset) labels.push_back(e->data_race == 1);
  dataset::StratifiedKFold folds(5, 2023);
  std::printf("\nStratified 5-fold test sizes (paper: 3x(20+20), 2x(20+19)):\n");
  for (const auto& fold : folds.split(labels)) {
    int fy = 0;
    for (int idx : fold.test_indices) {
      fy += labels[static_cast<std::size_t>(idx)] ? 1 : 0;
    }
    std::printf("  fold: %2d positive + %2d negative = %2zu\n", fy,
                static_cast<int>(fold.test_indices.size()) - fy,
                fold.test_indices.size());
  }

  // Schema round-trip sanity over the whole dataset.
  int roundtrip_ok = 0;
  for (const auto& e : entries) {
    const dataset::Entry back = dataset::Entry::from_json(
        json::parse(e.to_json().dump()));
    if (back.name == e.name && back.var_pairs == e.var_pairs &&
        back.trimmed_code == e.trimmed_code) {
      ++roundtrip_ok;
    }
  }
  std::printf("\nJSON schema round-trip: %d/%zu entries identical\n",
              roundtrip_ok, entries.size());

  // Sample entry, like the paper's Listing 2.
  const dataset::Entry& first = entries.front();
  std::printf("\nSample (Listing 2 analogue) -- %s:\n", first.name.c_str());
  json::Value v = first.to_json();
  json::Object& obj = v.as_object();
  obj.set("DRB_code", json::Value(std::string("...")));
  obj.set("trimmed_code", json::Value(std::string("...")));
  std::printf("%s\n", v.dump_pretty().c_str());
  return 0;
}
