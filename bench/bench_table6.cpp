// Reproduces Table 6: 5-fold cross-validated fine-tuning for variable
// identification with StarChat-beta and Llama2-7b.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s", heading("Table 6 -- 5-fold CV fine-tuning, variable "
                            "identification").c_str());
  const int rc = bench::print_with_speedup([](const eval::ExperimentOptions& o) {
    return bench::cv_table(eval::table6_rows(o));
  });
  bench::print_reference(
      "\nPaper reference (Correctness'23, Table 6):\n"
      "  SC     R=0.070 (0.045)  P=0.096 (0.063)  F1=0.081 (0.052)\n"
      "  SC-FT  R=0.070 (0.057)  P=0.103 (0.087)  F1=0.083 (0.069)\n"
      "  LM     R=0.050 (0.050)  P=0.085 (0.087)  F1=0.063 (0.064)\n"
      "  LM-FT  R=0.050 (0.050)  P=0.092 (0.086)  F1=0.064 (0.063)\n"
      "\nShape to reproduce: fine-tuning moves variable identification\n"
      "barely at all -- tiny precision gains, flat recall.\n");
  return rc;
}
