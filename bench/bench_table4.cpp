// Reproduces Table 4: 5-fold cross-validated fine-tuning for data race
// detection with StarChat-beta and Llama2-7b (QLoRA-style adapters).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s", heading("Table 4 -- 5-fold CV fine-tuning, detection "
                            "(SC/LM vs fine-tuned)").c_str());
  const int rc = bench::print_with_speedup([](const eval::ExperimentOptions& o) {
    return bench::cv_table(eval::table4_rows(o));
  });
  bench::print_reference(
      "\nPaper reference (Correctness'23, Table 4):\n"
      "  SC     R=0.630 (0.045)  P=0.482 (0.041)  F1=0.546 (0.039)\n"
      "  SC-FT  R=0.670 (0.057)  P=0.541 (0.037)  F1=0.598 (0.038)\n"
      "  LM     R=0.650 (0.137)  P=0.532 (0.094)  F1=0.584 (0.109)\n"
      "  LM-FT  R=0.640 (0.082)  P=0.543 (0.054)  F1=0.586 (0.061)\n"
      "\nShape to reproduce: fine-tuning gives a modest F1 improvement and\n"
      "generally tighter fold-to-fold variance.\n");
  return rc;
}
