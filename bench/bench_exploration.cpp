// Schedule-exploration study: uniform random walks vs PCT priority
// schedules at equal budget over the race-labeled corpus. PCT must match
// or beat uniform on detections at the same budget (Burckhardt et al.'s
// probabilistic guarantee bounds the per-schedule hit rate at
// 1/(n*k^(d-1)) for an order-dependent race of depth d), and the
// OnlyHere column shows the races only one strategy exposes.
#include <cstdio>

#include "bench_util.hpp"
#include "explore/explore.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s",
              heading("Schedule exploration -- uniform vs PCT at equal "
                      "budget (race-labeled corpus)").c_str());

  explore::ExploreOptions base;
  base.max_schedules = 12;  // the stats/check gate budget
  const int rc = bench::print_with_speedup(
      [&](const eval::ExperimentOptions& o) {
        return bench::exploration_table(eval::exploration_rows(base, o));
      });
  bench::print_reference(
      "\nReading the table: Detected counts race-labeled entries whose\n"
      "race the strategy exposed within the budget; OnlyHere counts the\n"
      "entries only that strategy caught (the lock-window family is\n"
      "order-dependent, so uniform's single legacy walk misses it);\n"
      "WitnessDec sums minimized-witness decision counts -- order-\n"
      "independent races minimize to the empty trace.\n");
  return rc;
}
