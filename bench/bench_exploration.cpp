// Schedule-exploration study: uniform random walks vs PCT priority
// schedules at equal budget over the race-labeled corpus. PCT must match
// or beat uniform on detections at the same budget (Burckhardt et al.'s
// probabilistic guarantee bounds the per-schedule hit rate at
// 1/(n*k^(d-1)) for an order-dependent race of depth d), and the
// OnlyHere column shows the races only one strategy exposes.
#include <cstdint>
#include <cstdio>

#include "bench_util.hpp"
#include "drb/corpus.hpp"
#include "explore/explore.hpp"

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s",
              heading("Schedule exploration -- uniform vs PCT at equal "
                      "budget (race-labeled corpus)").c_str());

  explore::ExploreOptions base;
  base.max_schedules = 12;  // the stats/check gate budget
  const int rc = bench::print_with_speedup(
      [&](const eval::ExperimentOptions& o) {
        return bench::exploration_table(eval::exploration_rows(base, o));
      });
  bench::print_reference(
      "\nReading the table: Detected counts race-labeled entries whose\n"
      "race the strategy exposed within the budget; OnlyHere counts the\n"
      "entries only that strategy caught (the lock-window family is\n"
      "order-dependent, so uniform's single legacy walk misses it);\n"
      "WitnessDec sums minimized-witness decision counts -- order-\n"
      "independent races minimize to the empty trace.\n");

  // Per-backend timing rows, measured in the engine's throughput regime:
  // racy entries exit at the first detected race after a schedule or
  // two, so the sustained schedules/sec the explorer can push comes from
  // the no-race half of the corpus at full budget (plateau cut off). The
  // digest -- schedules run, steps executed, coverage hashes -- must be
  // bit-identical across backends.
  explore::ExploreOptions tp = base;
  tp.max_schedules = 24;
  tp.plateau_window = 0;
  const int backend_rc = bench::print_backend_rows(
      "exploration throughput (no-race corpus, uniform + PCT, "
      "24 schedules/entry)",
      [&] {
        // RunOptions snapshots default_backend() at construction; re-read
        // it here so each print_backend_rows pass actually switches.
        tp.run.backend = runtime::default_backend();
        std::uint64_t schedules = 0;
        std::uint64_t steps = 0;
        std::uint64_t coverage = 0;
        for (explore::Strategy strategy :
             {explore::Strategy::Uniform, explore::Strategy::Pct}) {
          tp.strategy = strategy;
          for (const drb::CorpusEntry& e : drb::corpus()) {
            if (e.race) continue;
            const explore::ExploreResult r =
                explore::explore_source(drb::drb_code(e), tp);
            schedules += static_cast<std::uint64_t>(r.schedules_run);
            for (const auto& s : r.schedules) steps += s.steps;
            coverage += r.coverage.size();
          }
        }
        return "schedules=" + std::to_string(schedules) +
               " steps=" + std::to_string(steps) +
               " coverage=" + std::to_string(coverage);
      });
  return rc == 0 && backend_rc == 0 ? rc : 3;
}
