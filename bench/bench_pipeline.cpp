// Reproduces Figure 1: the end-to-end two-branch pipeline -- DRB-ML
// dataset construction feeding (a) prompt-engineering evaluation of four
// pretrained LLMs and (b) fine-tuning of the open-source ones -- with
// per-stage timing and throughput.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/detector.hpp"
#include "dataset/drbml.hpp"
#include "llm/finetune.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace drbml;
  std::printf("%s", heading("Figure 1 -- end-to-end pipeline stages").c_str());

  TextTable t({"Stage", "Items", "Time (ms)", "Output"});

  // Stage 1: DRB corpus -> DRB-ML dataset.
  auto t0 = Clock::now();
  const auto& entries = dataset::dataset();
  t.add_row({"1. DRB -> DRB-ML labels + JSON", std::to_string(entries.size()),
             format_double(ms_since(t0), 1), "201 JSON entries"});

  // Stage 2: prompt-response pair generation (Listings 8/9).
  t0 = Clock::now();
  int pairs = 0;
  for (const auto& e : entries) {
    pairs += static_cast<int>(dataset::make_detection_pair(e).prompt.size() >
                              0);
    pairs += static_cast<int>(dataset::make_varid_pair(e).prompt.size() > 0);
  }
  t.add_row({"2. prompt-response pairs", std::to_string(pairs),
             format_double(ms_since(t0), 1), "2 sets x 201"});

  // Stage 3: token filter (16k/8k/4k context accounting).
  t0 = Clock::now();
  const auto subset = eval::token_filtered_subset();
  t.add_row({"3. 4k-token subset filter", std::to_string(subset.size()),
             format_double(ms_since(t0), 1), "198 of 201"});

  // Stage 4: prompting branch (one model x one prompt as representative).
  t0 = Clock::now();
  llm::ChatModel gpt4(llm::gpt4_persona());
  const auto cm = eval::run_detection(gpt4, prompts::Style::P1, subset);
  t.add_row({"4. prompting branch (GPT-4/p1)", std::to_string(cm.total()),
             format_double(ms_since(t0), 1),
             "F1=" + format_double(cm.f1(), 3)});

  // Stage 5: fine-tuning branch (one fold as representative).
  t0 = Clock::now();
  const auto cv = eval::run_cv(llm::starchat_persona(),
                               eval::Objective::Detection, true);
  t.add_row({"5. fine-tuning branch (SC, 5-fold)",
             std::to_string(static_cast<int>(cv.folds.size())),
             format_double(ms_since(t0), 1),
             "F1=" + format_double(cv.f1.avg, 3)});

  // Stage 6: comparison against the traditional tool.
  t0 = Clock::now();
  const auto tool = eval::run_traditional_tool(subset);
  t.add_row({"6. traditional-tool comparison", std::to_string(tool.total()),
             format_double(ms_since(t0), 1),
             "F1=" + format_double(tool.f1(), 3)});

  std::printf("%s", t.render().c_str());
  std::printf("\nAll stages deterministic; rerunning reproduces identical "
              "numbers.\n");
  return 0;
}
