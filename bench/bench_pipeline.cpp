// Reproduces Figure 1: the end-to-end two-branch pipeline -- DRB-ML
// dataset construction feeding (a) prompt-engineering evaluation of four
// pretrained LLMs and (b) fine-tuning of the open-source ones -- with
// per-stage timing and throughput, run twice: once on the exact serial
// path (jobs=1) and once fanned out over the parallel executor, to report
// the end-to-end wall-clock speedup the pool + artifact cache deliver.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/detector.hpp"
#include "dataset/drbml.hpp"
#include "llm/finetune.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct PipelineRun {
  std::string table;   // rendered per-stage table
  double total_ms = 0;
  std::string results; // stage outputs only (must match across job counts)
};

PipelineRun run_pipeline(const drbml::eval::ExperimentOptions& opts) {
  using namespace drbml;
  PipelineRun run;
  TextTable t({"Stage", "Items", "Time (ms)", "Output"});
  const auto pipeline_start = Clock::now();

  // Stage 1: DRB corpus -> DRB-ML dataset.
  auto t0 = Clock::now();
  const auto& entries = dataset::dataset();
  t.add_row({"1. DRB -> DRB-ML labels + JSON", std::to_string(entries.size()),
             format_double(ms_since(t0), 1), std::to_string(entries.size()) + " JSON entries"});

  // Stage 2: prompt-response pair generation (Listings 8/9).
  t0 = Clock::now();
  int pairs = 0;
  for (const auto& e : entries) {
    pairs += static_cast<int>(dataset::make_detection_pair(e).prompt.size() >
                              0);
    pairs += static_cast<int>(dataset::make_varid_pair(e).prompt.size() > 0);
  }
  t.add_row({"2. prompt-response pairs", std::to_string(pairs),
             format_double(ms_since(t0), 1), "2 sets x " + std::to_string(entries.size())});

  // Stage 3: token filter (16k/8k/4k context accounting).
  t0 = Clock::now();
  const auto subset = eval::token_filtered_subset();
  t.add_row({"3. 4k-token subset filter", std::to_string(subset.size()),
             format_double(ms_since(t0), 1), std::to_string(subset.size()) + " of " + std::to_string(entries.size())});

  // Stage 4: prompting branch (one model x one prompt as representative).
  t0 = Clock::now();
  llm::ChatModel gpt4(llm::gpt4_persona());
  const auto cm = eval::run_detection(gpt4, prompts::Style::P1, subset, opts);
  const std::string s4 = "F1=" + format_double(cm.f1(), 3);
  t.add_row({"4. prompting branch (GPT-4/p1)", std::to_string(cm.total()),
             format_double(ms_since(t0), 1), s4});

  // Stage 5: fine-tuning branch (one fold as representative).
  t0 = Clock::now();
  const auto cv = eval::run_cv(llm::starchat_persona(),
                               eval::Objective::Detection, true, 5, 2023, 0,
                               opts);
  const std::string s5 = "F1=" + format_double(cv.f1.avg, 3);
  t.add_row({"5. fine-tuning branch (SC, 5-fold)",
             std::to_string(static_cast<int>(cv.folds.size())),
             format_double(ms_since(t0), 1), s5});

  // Stage 6: comparison against the traditional tool.
  t0 = Clock::now();
  const auto tool = eval::run_traditional_tool(subset, opts);
  const std::string s6 = "F1=" + format_double(tool.f1(), 3);
  t.add_row({"6. traditional-tool comparison", std::to_string(tool.total()),
             format_double(ms_since(t0), 1), s6});

  run.total_ms = ms_since(pipeline_start);
  run.table = t.render();
  run.results = s4 + "|" + s5 + "|" + s6;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  drbml::bench::init_bench(argc, argv);
  using namespace drbml;
  std::printf("%s", heading("Figure 1 -- end-to-end pipeline stages").c_str());

  const int jobs = support::resolve_jobs(0);
  auto cold = [] {
    eval::artifact_cache().clear();
    llm::clear_feature_cache();
  };

  cold();
  const PipelineRun serial = run_pipeline(eval::ExperimentOptions{/*jobs=*/1});
  cold();
  const PipelineRun parallel = run_pipeline(eval::ExperimentOptions{jobs});

  std::printf("%s", parallel.table.c_str());
  const bool identical = serial.results == parallel.results;
  std::printf(
      "\n[executor] end-to-end: serial %.1f ms | %d jobs %.1f ms | "
      "speedup %.2fx | results %s\n",
      serial.total_ms, jobs, parallel.total_ms,
      parallel.total_ms > 0.0 ? serial.total_ms / parallel.total_ms : 0.0,
      identical ? "identical" : "DIFFER (BUG)");
  // Per-backend timing rows for the dynamic stage: the traditional-tool
  // comparison is the only stage that executes schedules, so re-running
  // just it under each backend isolates the bytecode VM's contribution
  // to the end-to-end pipeline.
  const auto subset = eval::token_filtered_subset();
  const int backend_rc = bench::print_backend_rows(
      "dynamic stage (traditional-tool comparison)", [&] {
        const auto tool = eval::run_traditional_tool(
            subset, eval::ExperimentOptions{jobs});
        return "F1=" + format_double(tool.f1(), 3) +
               " total=" + std::to_string(tool.total());
      });

  std::printf("\nAll stages deterministic; rerunning at any job count "
              "reproduces identical numbers.\n");
  return identical && backend_rc == 0 ? 0 : 3;
}
