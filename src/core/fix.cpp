#include "core/fix.hpp"

#include "eval/artifact_cache.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace drbml::core {

RaceFixer::RaceFixer(const FixerSpec& spec) : jobs_(spec.jobs) {
  const auto strategy = repair::parse_strategy(spec.strategy);
  if (!strategy) {
    throw Error("unknown repair strategy: " + spec.strategy);
  }
  options_.strategy = *strategy;
}

const repair::RepairResult& RaceFixer::fix(const std::string& code) const {
  return eval::artifact_cache().repair_result(code, options_);
}

std::vector<const repair::RepairResult*> RaceFixer::fix_batch(
    const std::vector<std::string>& sources) const {
  return support::parallel_map(jobs_, sources,
                               [&](const std::string& s) { return &fix(s); });
}

}  // namespace drbml::core
