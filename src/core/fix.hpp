// Unified repair interface -- the public face of the race repair
// subsystem (src/repair), sibling to core::make_detector.
//
// Quickstart:
//   drbml::core::RaceFixer fixer;                   // auto strategy
//   auto result = fixer.fix(source_code);
//   if (result.status == drbml::repair::RepairStatus::Fixed) {
//     ... result.patched ...
//   }
//
// Per-source results are memoized in the shared eval ArtifactCache, so a
// batch re-run (or a later experiment over the same corpus) pays for each
// (source, options) pair once. fix_batch fans out over a thread pool and
// returns results in input order -- bit-identical to a serial loop.
#pragma once

#include <string>
#include <vector>

#include "repair/repair.hpp"

namespace drbml::core {

/// Structured fixer specification.
struct FixerSpec {
  /// Candidate-class filter: "auto", "lint", "sync", or "serialize"
  /// (see repair::parse_strategy).
  std::string strategy = "auto";
  /// Worker threads for fix_batch: 0 = auto (DRBML_JOBS env var, else
  /// hardware concurrency), 1 = serial, N = fixed.
  int jobs = 0;
};

class RaceFixer {
 public:
  RaceFixer() : RaceFixer(FixerSpec{}) {}
  /// Throws Error for an unknown strategy name.
  explicit RaceFixer(const FixerSpec& spec);

  /// Runs the verified fix loop on one program (memoized; never throws).
  [[nodiscard]] const repair::RepairResult& fix(const std::string& code) const;

  /// Repairs many programs, fanning out over a thread pool and returning
  /// results in input order.
  [[nodiscard]] std::vector<const repair::RepairResult*> fix_batch(
      const std::vector<std::string>& sources) const;

  [[nodiscard]] const repair::RepairOptions& options() const noexcept {
    return options_;
  }

 private:
  repair::RepairOptions options_;
  int jobs_ = 0;
};

}  // namespace drbml::core
