// Unified detector interface -- the library's primary public API.
//
// Four interchangeable detectors analyze OpenMP C source for data races:
//   - "static":  dependence-based static analysis (RELAY/ompVerify-style)
//   - "dynamic": interpreted execution with vector-clock happens-before
//                checking (ThreadSanitizer/Inspector-style)
//   - "hybrid":  static union dynamic (the paper's traditional-tool column)
//   - "llm:<persona>[:<prompt>]": a simulated LLM queried through the
//     paper's prompt pipeline, e.g. "llm:gpt4:p3"
//
// Quickstart:
//   auto detector = drbml::core::make_detector("hybrid");
//   auto verdict = detector->analyze(source_code);
//   if (verdict.race) { ... verdict.pairs ... }
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/report.hpp"

namespace drbml::core {

/// A detector's answer for one program.
struct RaceVerdict {
  bool race = false;
  std::vector<analysis::RacePair> pairs;
  /// The raw model reply (LLM detectors only).
  std::string model_response;
  std::vector<std::string> diagnostics;
};

class RaceDetector {
 public:
  virtual ~RaceDetector() = default;

  /// Analyzes OpenMP C source text.
  [[nodiscard]] virtual RaceVerdict analyze(const std::string& code) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Creates a detector by specification string (see file comment).
/// Throws Error for unknown specifications.
[[nodiscard]] std::unique_ptr<RaceDetector> make_detector(
    const std::string& spec);

/// Names accepted by make_detector.
[[nodiscard]] std::vector<std::string> available_detectors();

}  // namespace drbml::core
