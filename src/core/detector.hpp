// Unified detector interface -- the library's primary public API.
//
// Interchangeable detectors analyze OpenMP C source for data races:
//   - "static":  dependence-based static analysis (RELAY/ompVerify-style)
//   - "dynamic": interpreted execution with vector-clock happens-before
//                checking (ThreadSanitizer/Inspector-style)
//   - "hybrid":  static union dynamic (the paper's traditional-tool column)
//   - "lint":    the OpenMP correctness linter (src/lint); race verdict from
//                the static pipeline, diagnostics rendered per finding
//   - "explore[:uniform|:pct]": the schedule-exploration engine (src/explore):
//     a budgeted loop of uniform-random or PCT priority schedules with a
//     coverage-plateau cut; a detected race ships a minimized replayable
//     witness in the diagnostics ("explore" alone means "explore:pct")
//   - "llm:<persona>[:<prompt>]": a simulated LLM queried through the
//     paper's prompt pipeline, e.g. "llm:gpt4:p3"
//
// Quickstart:
//   auto detector = drbml::core::make_detector("hybrid");
//   auto verdict = detector->analyze(source_code);
//   if (verdict.race) { ... verdict.pairs ... }
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/report.hpp"

namespace drbml::core {

/// A detector's answer for one program.
struct RaceVerdict {
  bool race = false;
  std::vector<analysis::RacePair> pairs;
  /// Candidate pairs the static pipeline examined and proved race-free,
  /// each with the evidence chain that discharged it (static-backed
  /// detectors only; empty for dynamic/LLM detectors).
  std::vector<analysis::DischargedPair> discharged;
  /// The raw model reply (LLM detectors only).
  std::string model_response;
  std::vector<std::string> diagnostics;
};

class RaceDetector {
 public:
  virtual ~RaceDetector() = default;

  /// Analyzes OpenMP C source text. Must be data-race-free: analyze_batch
  /// calls it concurrently from pool workers.
  [[nodiscard]] virtual RaceVerdict analyze(const std::string& code) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Analyzes many programs, fanning out over a thread pool and returning
  /// verdicts in input order (bit-identical to calling analyze in a loop).
  /// Uses this detector's jobs() knob; 0 = auto (DRBML_JOBS env var,
  /// else hardware concurrency), 1 = serial.
  [[nodiscard]] std::vector<RaceVerdict> analyze_batch(
      const std::vector<std::string>& sources) const;

  /// Default worker count for analyze_batch (see DetectorSpec::jobs).
  [[nodiscard]] int jobs() const noexcept { return jobs_; }
  void set_jobs(int jobs) noexcept { jobs_ = jobs; }

 private:
  int jobs_ = 0;
};

/// Structured detector specification: the spec string (file comment
/// grammar) plus execution knobs.
struct DetectorSpec {
  std::string spec = "hybrid";
  /// Worker threads for analyze_batch: 0 = auto, 1 = serial, N = fixed.
  int jobs = 0;
};

/// Creates a detector by specification string (see file comment).
/// Throws Error for unknown specifications.
[[nodiscard]] std::unique_ptr<RaceDetector> make_detector(
    const std::string& spec);

/// Creates a detector from a structured spec (jobs knob included).
[[nodiscard]] std::unique_ptr<RaceDetector> make_detector(
    const DetectorSpec& spec);

/// Names accepted by make_detector.
[[nodiscard]] std::vector<std::string> available_detectors();

}  // namespace drbml::core
