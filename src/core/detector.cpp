#include "core/detector.hpp"

#include "analysis/race.hpp"
#include "eval/parse.hpp"
#include "explore/explore.hpp"
#include "lint/lint.hpp"
#include "llm/model.hpp"
#include "obs/catalog.hpp"
#include "prompts/prompts.hpp"
#include "runtime/dynamic.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"

namespace drbml::core {

namespace {

class StaticTool final : public RaceDetector {
 public:
  RaceVerdict analyze(const std::string& code) const override {
    analysis::StaticRaceDetector detector;
    analysis::RaceReport report = detector.analyze_source(code);
    RaceVerdict v;
    v.race = report.race_detected;
    v.pairs = std::move(report.pairs);
    v.discharged = std::move(report.discharged);
    v.diagnostics = std::move(report.diagnostics);
    return v;
  }
  std::string name() const override { return "static"; }
};

class DynamicTool final : public RaceDetector {
 public:
  RaceVerdict analyze(const std::string& code) const override {
    runtime::DynamicRaceDetector detector;
    analysis::RaceReport report = detector.analyze_source(code);
    RaceVerdict v;
    v.race = report.race_detected;
    v.pairs = std::move(report.pairs);
    v.diagnostics = std::move(report.diagnostics);
    return v;
  }
  std::string name() const override { return "dynamic"; }
};

class HybridTool final : public RaceDetector {
 public:
  RaceVerdict analyze(const std::string& code) const override {
    StaticTool st;
    RaceVerdict v = st.analyze(code);
    DynamicTool dy;
    RaceVerdict d = dy.analyze(code);
    v.race = v.race || d.race;
    for (auto& p : d.pairs) {
      bool dup = false;
      for (const auto& q : v.pairs) {
        if (q == p) {
          dup = true;
          break;
        }
      }
      if (!dup) v.pairs.push_back(std::move(p));
    }
    for (auto& diag : d.diagnostics) v.diagnostics.push_back(std::move(diag));
    return v;
  }
  std::string name() const override { return "hybrid"; }
};

class ExploreTool final : public RaceDetector {
 public:
  explicit ExploreTool(explore::Strategy strategy) : strategy_(strategy) {}

  RaceVerdict analyze(const std::string& code) const override {
    explore::ExploreOptions opts;
    opts.strategy = strategy_;
    const explore::ExploreResult result = explore::explore_source(code, opts);
    RaceVerdict v;
    v.race = result.race_detected;
    v.pairs = result.report.pairs;
    v.diagnostics = result.report.diagnostics;
    if (!result.witness.empty()) {
      v.diagnostics.push_back("witness: " + result.witness);
    }
    return v;
  }

  std::string name() const override {
    return std::string("explore:") + explore::strategy_name(strategy_);
  }

 private:
  explore::Strategy strategy_;
};

class LintTool final : public RaceDetector {
 public:
  RaceVerdict analyze(const std::string& code) const override {
    const lint::LintReport report = linter_.lint_source(code);
    RaceVerdict v;
    v.race = report.race.race_detected;
    v.pairs = report.race.pairs;
    v.discharged = report.race.discharged;
    for (const auto& d : report.diagnostics) {
      v.diagnostics.push_back(lint::to_text_line(d));
    }
    if (report.suppressed > 0) {
      v.diagnostics.push_back("lint: " + std::to_string(report.suppressed) +
                              " finding(s) suppressed by "
                              "drbml-lint-suppress comments");
    }
    return v;
  }
  std::string name() const override { return "lint"; }

 private:
  lint::Linter linter_;
};

class LlmTool final : public RaceDetector {
 public:
  LlmTool(llm::Persona persona, prompts::Style style)
      : model_(std::move(persona)), style_(style) {}

  RaceVerdict analyze(const std::string& code) const override {
    // Ask for pair details with BP2; plain detection otherwise.
    const prompts::Chat chat = style_ == prompts::Style::BP2
                                   ? prompts::varid_chat(code)
                                   : prompts::detection_chat(style_, code);
    const llm::Reply reply = model_.chat(chat);
    RaceVerdict v;
    v.model_response = reply.text;
    if (reply.context_exceeded) {
      v.diagnostics.push_back("llm: context window exceeded");
      return v;
    }
    const eval::ParsedVarId parsed = eval::parse_varid(reply.text);
    v.race = parsed.verdict.value_or(false);
    for (const auto& pair : parsed.pairs) {
      if (pair.names.size() != 2) continue;
      analysis::RacePair rp;
      rp.first.expr_text = pair.names[0];
      rp.second.expr_text = pair.names[1];
      if (pair.lines.size() == 2) {
        rp.first.loc.line = pair.lines[0];
        rp.second.loc.line = pair.lines[1];
      }
      if (pair.ops.size() == 2) {
        rp.first.op = pair.ops[0].empty() ? 'w' : pair.ops[0][0];
        rp.second.op = pair.ops[1].empty() ? 'r' : pair.ops[1][0];
      }
      rp.note = "reported by " + model_.persona().name;
      v.pairs.push_back(std::move(rp));
    }
    return v;
  }

  std::string name() const override {
    return "llm:" + model_.persona().key + ":" +
           prompts::style_name(style_);
  }

 private:
  llm::ChatModel model_;
  prompts::Style style_;
};

llm::Persona persona_by_key(const std::string& key) {
  for (const llm::Persona& p : llm::all_personas()) {
    if (p.key == key) return p;
  }
  throw Error("unknown model persona: " + key);
}

prompts::Style style_by_name(const std::string& name) {
  if (name == "p1" || name == "bp1") return prompts::Style::P1;
  if (name == "p2") return prompts::Style::P2;
  if (name == "p3") return prompts::Style::P3;
  if (name == "bp2" || name == "varid") return prompts::Style::BP2;
  throw Error("unknown prompt style: " + name);
}

}  // namespace

std::vector<RaceVerdict> RaceDetector::analyze_batch(
    const std::vector<std::string>& sources) const {
  static obs::Counter& entries = obs::metrics().counter(obs::kDetectEntries);
  entries.add(sources.size());
  const std::string spec = name();
  obs::Span batch_span(obs::kSpanDetectBatch, spec);
  return support::parallel_map(jobs_, sources, [this, &spec](const std::string& code) {
    obs::Span span(obs::kSpanDetectEntry, spec);
    return analyze(code);
  });
}

std::unique_ptr<RaceDetector> make_detector(const DetectorSpec& spec) {
  std::unique_ptr<RaceDetector> detector = make_detector(spec.spec);
  detector->set_jobs(spec.jobs);
  return detector;
}

std::unique_ptr<RaceDetector> make_detector(const std::string& spec) {
  if (spec == "static") return std::make_unique<StaticTool>();
  if (spec == "dynamic") return std::make_unique<DynamicTool>();
  if (spec == "hybrid") return std::make_unique<HybridTool>();
  if (spec == "lint") return std::make_unique<LintTool>();
  if (spec == "explore") {
    return std::make_unique<ExploreTool>(explore::Strategy::Pct);
  }
  if (starts_with(spec, "explore:")) {
    return std::make_unique<ExploreTool>(
        explore::parse_strategy(spec.substr(8)));
  }
  if (starts_with(spec, "llm:")) {
    const std::vector<std::string> parts = split(spec, ':');
    const std::string key = parts.size() > 1 ? parts[1] : "gpt4";
    const prompts::Style style =
        parts.size() > 2 ? style_by_name(parts[2]) : prompts::Style::P1;
    return std::make_unique<LlmTool>(persona_by_key(key), style);
  }
  throw Error("unknown detector spec: " + spec +
              " (try: static, dynamic, hybrid, lint, explore, llm:gpt4:p1)");
}

std::vector<std::string> available_detectors() {
  std::vector<std::string> out = {"static",  "dynamic",
                                  "hybrid",  "lint",
                                  "explore", "explore:uniform",
                                  "explore:pct"};
  for (const llm::Persona& p : llm::all_personas()) {
    for (const char* style : {"p1", "p2", "p3", "bp2"}) {
      out.push_back("llm:" + p.key + ":" + style);
    }
  }
  return out;
}

}  // namespace drbml::core
