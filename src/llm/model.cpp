#include "llm/model.hpp"

#include <algorithm>
#include <cmath>

#include "llm/finetune.hpp"
#include "llm/tokenizer.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace drbml::llm {

namespace {

double logit(double p) {
  p = std::clamp(p, 0.02, 0.98);
  return std::log(p / (1.0 - p));
}

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

prompts::Style infer_style(const prompts::Chat& chat) {
  int user_turns = 0;
  for (const auto& m : chat) {
    if (m.role == "user") ++user_turns;
  }
  if (user_turns >= 2) return prompts::Style::P3;
  const std::string& content = chat.front().content;
  if (content.find("JSON format") != std::string::npos) {
    return prompts::Style::BP2;
  }
  if (content.find("data dependence analysis") != std::string::npos) {
    return prompts::Style::P2;
  }
  return prompts::Style::P1;
}

prompts::Modality infer_modality(const prompts::Chat& chat) {
  const std::string& content = chat.front().content;
  if (content.find(prompts::kEvidenceMarker) != std::string::npos) {
    return prompts::Modality::Evidence;
  }
  if (content.find(prompts::kLintMarker) != std::string::npos) {
    return prompts::Modality::Lint;
  }
  if (content.find(prompts::kDepGraphMarker) != std::string::npos) {
    return prompts::Modality::DepGraph;
  }
  if (content.find(prompts::kAstMarker) != std::string::npos) {
    return prompts::Modality::Ast;
  }
  return prompts::Modality::Text;
}

/// Picks the first identifiers appearing in the code (used when a model
/// fabricates pair information).
std::vector<std::string> fallback_identifiers(const std::string& code) {
  SimpleTokenizer tok;
  std::vector<std::string> ids;
  for (const auto& t : tok.tokenize(code)) {
    if (t.empty() || (std::isalpha(static_cast<unsigned char>(t[0])) == 0 &&
                      t[0] != '_')) {
      continue;
    }
    if (t == "int" || t == "double" || t == "float" || t == "char" ||
        t == "void" || t == "return" || t == "for" || t == "if" ||
        t == "while" || t == "include" || t == "pragma" || t == "omp" ||
        t == "main" || t == "printf" || t == "stdio" || t == "h" ||
        t == "parallel") {
      continue;
    }
    bool seen = false;
    for (const auto& existing : ids) {
      if (existing == t) {
        seen = true;
        break;
      }
    }
    if (!seen) ids.push_back(t);
    if (ids.size() >= 4) break;
  }
  while (ids.size() < 2) ids.push_back("x");
  return ids;
}

}  // namespace

namespace {

// Exactly-once memoization: concurrent first requests for the same
// program block on one extraction instead of racing to compute it
// twice (the two static analyses inside are the expensive part).
support::OnceMap<ProgramFeatures>& feature_cache() {
  static support::OnceMap<ProgramFeatures> cache;
  return cache;
}

}  // namespace

const ProgramFeatures& cached_features(const std::string& code) {
  return feature_cache().get_or_compute(
      fnv1a64(code), [&] { return extract_features(code); });
}

void clear_feature_cache() { feature_cache().clear(); }

std::string extract_code_from_prompt(const std::string& prompt) {
  // Auxiliary-modality sections follow the code; cut them off first.
  std::size_t end = prompt.size();
  for (const char* stop : {prompts::kAstMarker, prompts::kDepGraphMarker,
                           prompts::kLintMarker, prompts::kEvidenceMarker}) {
    const std::size_t pos = prompt.find(stop);
    if (pos != std::string::npos) end = std::min(end, pos);
  }
  const std::string body = prompt.substr(0, end);
  for (const char* marker : {"#include", "int main", "void ", "#pragma"}) {
    const std::size_t pos = body.find(marker);
    if (pos != std::string::npos) return body.substr(pos);
  }
  return body;
}

Verdict ChatModel::decide(prompts::Style style, const std::string& code) const {
  return decide(style, code, prompts::Modality::Text);
}

Verdict ChatModel::decide(prompts::Style style, const std::string& code,
                          prompts::Modality modality) const {
  const ProgramFeatures& f = cached_features(code);
  const DetectionRates& rates = persona_.rates_for(style);

  double p_yes = 0.5;
  if (!f.parsed) {
    p_yes = 0.5;
  } else if (!f.evidence_consistent() &&
             modality != prompts::Modality::DepGraph &&
             modality != prompts::Modality::Lint &&
             modality != prompts::Modality::Evidence) {
    p_yes = rates.yes_given_uncertain;
  } else if (f.evidence_race()) {
    // With an explicit dependence graph the model reads the conflict
    // edges directly, so non-affine programs stop being "uncertain".
    p_yes = rates.yes_given_evidence_yes;
  } else {
    p_yes = rates.yes_given_evidence_no;
  }

  double z = logit(p_yes);
  // Structured representations sharpen the model's read of the program.
  switch (modality) {
    case prompts::Modality::Text: break;
    case prompts::Modality::Ast: z *= 1.10; break;
    case prompts::Modality::DepGraph: z *= 1.25; break;
    // Linter findings name the construct and the fix, the strongest of
    // the structured hints.
    case prompts::Modality::Lint: z *= 1.30; break;
    // Evidence chains additionally spell out why discharged pairs are
    // safe, cutting the false-positive tail a notch below lint.
    case prompts::Modality::Evidence: z *= 1.32; break;
  }
  if (adapter_ != nullptr) {
    z += adapter_->predict(featurize(code));
  }
  const double p = sigmoid(z);

  Rng rng = Rng::from_key(persona_.key + "/" +
                          prompts::style_name(style) + "/" +
                          std::to_string(fnv1a64(code)));
  Verdict v;
  v.p_yes = p;
  v.uncertain = !f.evidence_consistent();
  v.yes = rng.uniform() < p;
  return v;
}

std::string ChatModel::render_detection_reply(const Verdict& v,
                                              std::uint64_t seed) const {
  Rng rng(seed);
  const char* verdict_word = v.yes ? "yes" : "no";
  // Formatting discipline: a disciplined reply leads with the verdict.
  if (rng.chance(persona_.format_fidelity)) {
    static const char* kYesTails[] = {
        ", the provided code exhibits data race issues.",
        ". Concurrent iterations access the same memory location without "
        "sufficient synchronization.",
        ". A conflicting access pair exists across threads.",
    };
    static const char* kNoTails[] = {
        ", the code is free of data races.",
        ". Every iteration works on distinct data or is properly "
        "synchronized.",
        ". No conflicting concurrent accesses were identified.",
    };
    const char* tail = v.yes ? kYesTails[rng.below(3)] : kNoTails[rng.below(3)];
    std::string out = verdict_word;
    out[0] = static_cast<char>(std::toupper(out[0]));
    return out + tail;
  }
  // Undisciplined phrasing buries the verdict mid-sentence.
  std::string out = "Based on my analysis of the loop structure and the "
                    "OpenMP directives, I believe the answer is ";
  out += verdict_word;
  out += v.yes ? " -- there does appear to be a data race."
               : " -- the parallelization looks safe.";
  return out;
}

std::string ChatModel::render_varid_reply(const Verdict& v,
                                          const ProgramFeatures& f,
                                          const std::string& code,
                                          std::uint64_t seed) const {
  Rng rng(seed);
  std::string out = v.yes ? "yes" : "no";

  bool emit_pairs = false;
  if (v.yes) {
    emit_pairs = rng.chance(persona_.varid_attempt);
  } else {
    emit_pairs = rng.chance(persona_.spurious_pairs);
  }
  if (!emit_pairs) {
    if (!v.yes) out += ", the code is free of data races.";
    return out;
  }

  // Build the (possibly corrupted) pair description.
  std::string name0;
  std::string name1;
  int line0 = 1;
  int line1 = 1;
  std::string op0 = "write";
  std::string op1 = "read";
  const bool use_real_pair =
      !f.static_pairs.empty() && rng.chance(persona_.pair_selection);
  if (use_real_pair) {
    const analysis::RacePair& pair = f.static_pairs.front();
    name0 = pair.first.expr_text;
    name1 = pair.second.expr_text;
    line0 = pair.first.loc.line;
    line1 = pair.second.loc.line;
    op0 = pair.first.op == 'w' ? "write" : "read";
    op1 = pair.second.op == 'w' ? "write" : "read";
  } else {
    auto ids = fallback_identifiers(code);
    name0 = ids[0];
    name1 = ids.size() > 1 ? ids[1] : ids[0];
    const int max_line = std::max(2, f.code_len / 30);
    line0 = static_cast<int>(rng.between(2, max_line));
    line1 = static_cast<int>(rng.between(2, max_line));
  }
  if (!rng.chance(persona_.name_accuracy)) {
    // Typical degradation: drop the subscript from one side.
    const std::size_t bracket = name1.find('[');
    if (bracket != std::string::npos) {
      name1 = name1.substr(0, bracket);
    } else {
      name1 += "_tmp";
    }
  }
  if (!rng.chance(persona_.line_accuracy)) {
    line0 += static_cast<int>(rng.between(1, 3));
    if (rng.chance(0.5)) line1 += static_cast<int>(rng.between(1, 3));
  }
  if (!rng.chance(persona_.op_accuracy)) {
    op1 = op1 == "read" ? "write" : "read";
  }

  if (rng.chance(persona_.format_fidelity)) {
    json::Object obj;
    obj.set("data_race", json::Value(v.yes ? 1 : 0));
    json::Array names;
    names.emplace_back(name0);
    names.emplace_back(name1);
    json::Array lines;
    lines.emplace_back(line0);
    lines.emplace_back(line1);
    json::Array ops;
    ops.emplace_back(op0);
    ops.emplace_back(op1);
    obj.set("variable_names", json::Value(std::move(names)));
    obj.set("variable_locations", json::Value(std::move(lines)));
    obj.set("operation_types", json::Value(std::move(ops)));
    out += "\n" + json::Value(std::move(obj)).dump_pretty();
    return out;
  }
  // Listing 3-style natural language description.
  out += ". The data race is caused by the variable '" + name0 +
         "' at line " + std::to_string(line0) + " and the variable '" +
         name1 + "' at line " + std::to_string(line1) + ". The first access "
         "is a " + op0 + " operation and the second is a " + op1 +
         " operation.";
  return out;
}

Reply ChatModel::chat(const prompts::Chat& chat) const {
  Reply reply;
  std::string all_text;
  for (const auto& m : chat) all_text += m.content;
  SimpleTokenizer tok;
  reply.prompt_tokens = tok.count_tokens(all_text);
  if (reply.prompt_tokens > persona_.context_tokens) {
    reply.context_exceeded = true;
    reply.text = "I cannot process this request: the input exceeds my "
                 "context window.";
    return reply;
  }

  const prompts::Style style = infer_style(chat);
  const prompts::Modality modality = infer_modality(chat);
  const std::string code = extract_code_from_prompt(chat.front().content);
  const Verdict v = decide(style, code, modality);
  const std::uint64_t seed =
      hash_combine(fnv1a64(persona_.key), fnv1a64(code)) ^
      fnv1a64(prompts::style_name(style));

  if (style == prompts::Style::BP2) {
    reply.text = render_varid_reply(v, cached_features(code), code, seed);
    return reply;
  }
  if (style == prompts::Style::P3) {
    // The dependence-analysis turn happens "internally"; the final reply
    // still leads with the verdict, as prompted.
    std::string analysis_note =
        "Data dependence analysis: examined loop-carried dependences and "
        "synchronization. ";
    reply.text = analysis_note + render_detection_reply(v, seed);
    return reply;
  }
  reply.text = render_detection_reply(v, seed);
  return reply;
}

}  // namespace drbml::llm
