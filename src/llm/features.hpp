// Program feature extraction for the simulated LLMs.
//
// A persona's "understanding" of a program is a noisy view of these
// features, which are computed honestly from the frontend and the static
// analysis substrate. The conservative and optimistic static verdicts
// bound the evidence available to a model: when they agree the program is
// easy, when they disagree it requires the kind of reasoning that large
// models do better than small ones.
#pragma once

#include <string>
#include <vector>

#include "analysis/report.hpp"

namespace drbml::llm {

struct ProgramFeatures {
  bool parsed = false;  // unparseable input -> models guess

  // Syntactic surface.
  bool has_parallel_construct = false;
  bool has_critical = false;
  bool has_atomic = false;
  bool has_barrier = false;
  bool has_reduction = false;
  bool has_privatization = false;  // private/firstprivate/lastprivate/linear
  bool has_nowait = false;
  bool has_single_or_master = false;
  bool has_task = false;
  bool has_depend = false;
  bool has_sections = false;
  bool has_simd = false;
  bool has_target = false;
  bool has_ordered = false;
  bool has_locks = false;
  bool has_threadprivate = false;
  int pragma_count = 0;
  int code_len = 0;

  // Analysis-derived evidence.
  bool static_race_conservative = false;
  bool static_race_optimistic = false;
  int static_pair_count = 0;
  std::vector<analysis::RacePair> static_pairs;

  /// True when both static variants agree (an "easy" program).
  [[nodiscard]] bool evidence_consistent() const noexcept {
    return static_race_conservative == static_race_optimistic;
  }
  /// The evidence verdict a careful reader would reach.
  [[nodiscard]] bool evidence_race() const noexcept {
    return static_race_optimistic || static_race_conservative;
  }
};

/// Extracts features from source code. Never throws: unparseable code
/// yields `parsed == false` and syntactic defaults.
[[nodiscard]] ProgramFeatures extract_features(const std::string& code);

}  // namespace drbml::llm
