// Model personas for the simulated LLM substrate.
//
// A persona is a calibrated stochastic reader: its verdict depends only on
// *observable evidence* (the noisy program-analysis features a competent
// reader could extract), never on ground truth. The per-style rates were
// calibrated once against the paper's Tables 2/3 and then frozen; the
// benchmark harness measures whatever the mechanism produces.
//
// Context windows follow Section 2.1/3.2: GPT-3.5-turbo-16k (16384),
// GPT-4 (8192), Llama2-7b (4096), StarChat-beta (8192).
#pragma once

#include <map>
#include <string>

#include "prompts/prompts.hpp"

namespace drbml::llm {

/// Conditional answer rates for the detection task, conditioned on the
/// evidence state a reader can actually observe.
struct DetectionRates {
  double yes_given_evidence_yes = 0.5;
  double yes_given_evidence_no = 0.5;
  /// Used when the conservative and optimistic analyses disagree.
  double yes_given_uncertain = 0.5;
};

struct Persona {
  std::string name;  // display name ("GPT-4")
  std::string key;   // stable seed key ("gpt4")
  int context_tokens = 4096;
  bool open_source = false;  // fine-tunable (paper: only Llama2/StarChat)

  /// Detection rates per prompt style.
  std::map<prompts::Style, DetectionRates> rates;

  // Variable-identification quality (Section 4.3 / Table 5).
  double varid_attempt = 0.9;   // P(emit pair info | answered yes)
  double pair_selection = 0.6;  // P(pick the actually-racing pair)
  double name_accuracy = 0.7;   // P(variable spellings correct | pair)
  double line_accuracy = 0.5;   // P(line numbers correct | names correct)
  double op_accuracy = 0.8;     // P(read/write direction correct)
  double format_fidelity = 0.8; // P(structured JSON vs free prose)
  double spurious_pairs = 0.1;  // P(hallucinate pairs after answering no)

  [[nodiscard]] const DetectionRates& rates_for(prompts::Style s) const;
};

[[nodiscard]] Persona gpt35_persona();
[[nodiscard]] Persona gpt4_persona();
[[nodiscard]] Persona llama2_persona();
[[nodiscard]] Persona starchat_persona();

/// All four personas in the paper's order.
[[nodiscard]] const std::vector<Persona>& all_personas();

}  // namespace drbml::llm
