// The simulated chat model.
//
// ChatModel turns a prompt chat into a natural-language reply the way a
// hosted LLM endpoint would: it re-extracts the code from the prompt,
// checks its context window, forms a verdict from its noisy evidence view
// (persona rates + optional fine-tuned adapter), and verbalizes the result
// with persona-dependent formatting discipline. Everything is
// deterministic given (persona, prompt style, code).
//
// Concurrency contract: the const methods (chat, decide, persona) are
// data-race-free and may be called from many threads at once. They touch
// no mutable members -- per-call state (tokenizers, PRNGs seeded from
// stable keys) lives on the stack, the adapter is held by shared_ptr to
// const, and the only shared state is the exactly-once feature cache
// behind cached_features. The non-const mutators (set_adapter,
// set_varid_boost) are configuration-time only: call them before the
// model is shared across threads, never concurrently with chat/decide.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "llm/features.hpp"
#include "llm/persona.hpp"
#include "prompts/prompts.hpp"

namespace drbml::llm {

class Adapter;  // finetune.hpp

struct Reply {
  std::string text;
  int prompt_tokens = 0;
  bool context_exceeded = false;
};

struct Verdict {
  bool yes = false;
  double p_yes = 0.5;        // post-adapter probability
  bool uncertain = false;    // evidence was inconsistent
};

/// Feature cache: extraction runs two static analyses, so results are
/// memoized by content hash across all models and experiments.
[[nodiscard]] const ProgramFeatures& cached_features(const std::string& code);

/// Drops the feature cache (benchmark cold-start fairness). Only safe
/// while no thread is inside cached_features or holding its references.
void clear_feature_cache();

/// Recovers the code block embedded in a rendered prompt.
[[nodiscard]] std::string extract_code_from_prompt(const std::string& prompt);

class ChatModel {
 public:
  explicit ChatModel(Persona persona) : persona_(std::move(persona)) {}

  /// Full chat completion. Multi-turn chats (P3) are processed turn by
  /// turn; the returned reply is the final assistant message.
  [[nodiscard]] Reply chat(const prompts::Chat& chat) const;

  /// Direct decision API (used by the evaluation harness and trainer).
  [[nodiscard]] Verdict decide(prompts::Style style,
                               const std::string& code) const;

  /// Decision with an auxiliary input modality (paper future work). An
  /// explicit dependence graph removes the model's uncertainty on
  /// non-affine programs and sharpens its confidence; an AST gives a
  /// smaller sharpening only.
  [[nodiscard]] Verdict decide(prompts::Style style, const std::string& code,
                               prompts::Modality modality) const;

  [[nodiscard]] const Persona& persona() const noexcept { return persona_; }

  /// Installs a fine-tuned adapter (detection head delta).
  void set_adapter(std::shared_ptr<const Adapter> adapter) {
    adapter_ = std::move(adapter);
  }
  [[nodiscard]] bool is_finetuned() const noexcept {
    return adapter_ != nullptr;
  }

  /// Fine-tuning side effects on structured output quality (Section 4.3).
  void set_varid_boost(double fidelity_delta, double selection_delta) {
    persona_.format_fidelity =
        std::min(0.98, persona_.format_fidelity + fidelity_delta);
    persona_.pair_selection =
        std::min(0.95, persona_.pair_selection + selection_delta);
    persona_.spurious_pairs = std::max(0.02, persona_.spurious_pairs * 0.8);
  }

 private:
  [[nodiscard]] std::string render_detection_reply(const Verdict& v,
                                                   std::uint64_t seed) const;
  [[nodiscard]] std::string render_varid_reply(const Verdict& v,
                                               const ProgramFeatures& f,
                                               const std::string& code,
                                               std::uint64_t seed) const;

  Persona persona_;
  std::shared_ptr<const Adapter> adapter_;
};

}  // namespace drbml::llm
