#include "llm/tokenizer.hpp"

#include <cctype>

namespace drbml::llm {

namespace {
bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
}  // namespace

std::vector<std::string> SimpleTokenizer::tokenize(
    std::string_view text) const {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  constexpr std::size_t kChunk = 8;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (word_char(c)) {
      std::size_t start = i;
      while (i < text.size() && word_char(text[i])) ++i;
      // Long identifiers split into subword chunks.
      for (std::size_t p = start; p < i; p += kChunk) {
        tokens.emplace_back(text.substr(p, std::min(kChunk, i - p)));
      }
      continue;
    }
    // Two-character operators count as one token.
    static constexpr const char* kTwo[] = {
        "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=",
        "*=", "/=", "<<", ">>", "->",
    };
    bool matched = false;
    if (i + 1 < text.size()) {
      for (const char* op : kTwo) {
        if (text[i] == op[0] && text[i + 1] == op[1]) {
          tokens.emplace_back(op);
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      tokens.emplace_back(1, c);
      ++i;
    }
  }
  return tokens;
}

int SimpleTokenizer::count_tokens(std::string_view text) const {
  return static_cast<int>(tokenize(text).size());
}

void BpeTokenizer::train(const std::vector<std::string>& texts,
                         int merge_count) {
  merges_.clear();
  merge_rank_.clear();

  // Work on the concatenated corpus as id sequences.
  std::vector<std::vector<int>> seqs;
  seqs.reserve(texts.size());
  for (const auto& t : texts) {
    std::vector<int> ids;
    ids.reserve(t.size());
    for (char c : t) ids.push_back(static_cast<unsigned char>(c));
    seqs.push_back(std::move(ids));
  }

  for (int m = 0; m < merge_count; ++m) {
    // Count adjacent pairs.
    std::map<std::pair<int, int>, int> counts;
    for (const auto& ids : seqs) {
      for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
        ++counts[{ids[i], ids[i + 1]}];
      }
    }
    if (counts.empty()) break;
    auto best = counts.begin();
    for (auto it = counts.begin(); it != counts.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    if (best->second < 2) break;  // nothing worth merging

    const std::pair<int, int> pair = best->first;
    const int new_id = 256 + static_cast<int>(merges_.size());
    merges_.push_back(pair);
    merge_rank_[pair] = static_cast<int>(merges_.size()) - 1;

    // Apply the merge in place.
    for (auto& ids : seqs) {
      std::vector<int> out;
      out.reserve(ids.size());
      std::size_t i = 0;
      while (i < ids.size()) {
        if (i + 1 < ids.size() && ids[i] == pair.first &&
            ids[i + 1] == pair.second) {
          out.push_back(new_id);
          i += 2;
        } else {
          out.push_back(ids[i]);
          ++i;
        }
      }
      ids = std::move(out);
    }
  }
}

std::vector<int> BpeTokenizer::encode(std::string_view text) const {
  std::vector<int> ids;
  ids.reserve(text.size());
  for (char c : text) ids.push_back(static_cast<unsigned char>(c));
  // Repeatedly apply the lowest-rank applicable merge (standard BPE).
  for (;;) {
    int best_rank = -1;
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      auto it = merge_rank_.find({ids[i], ids[i + 1]});
      if (it == merge_rank_.end()) continue;
      if (best_rank == -1 || it->second < best_rank) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_rank == -1) break;
    ids[best_pos] = 256 + best_rank;
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(best_pos) + 1);
  }
  return ids;
}

std::string BpeTokenizer::decode(const std::vector<int>& ids) const {
  std::string out;
  // Expand ids recursively via the merge table.
  std::vector<int> stack;
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) stack.push_back(*it);
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (id < 256) {
      out.push_back(static_cast<char>(id));
    } else {
      const auto& [l, r] = merges_[static_cast<std::size_t>(id - 256)];
      stack.push_back(r);
      stack.push_back(l);
    }
  }
  return out;
}

}  // namespace drbml::llm
