#include "llm/finetune.hpp"

#include <algorithm>
#include <cmath>

#include "llm/tokenizer.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace drbml::llm {

namespace {

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

double logit(double p) {
  p = std::clamp(p, 0.02, 0.98);
  return std::log(p / (1.0 - p));
}

/// The frozen projection: a deterministic pseudo-random +-1 matrix,
/// generated once (the "pretrained directions" LoRA adapts along).
const std::vector<std::array<double, kLoraRank>>& projection() {
  static const std::vector<std::array<double, kLoraRank>> p = [] {
    std::vector<std::array<double, kLoraRank>> rows(
        static_cast<std::size_t>(kFeatureDim));
    Rng rng = Rng::from_key("lora-projection");
    const double scale = 1.0 / std::sqrt(static_cast<double>(kLoraRank));
    for (auto& row : rows) {
      for (auto& v : row) v = rng.chance(0.5) ? scale : -scale;
    }
    return rows;
  }();
  return p;
}

}  // namespace

FeatureVec featurize(const std::string& code) {
  FeatureVec f;
  SimpleTokenizer tok;
  const std::vector<std::string> tokens = tok.tokenize(code);
  for (const auto& t : tokens) {
    const std::size_t slot = fnv1a64(t) % kTokenDim;
    f.x[slot] += 1.0;
  }
  // L2-normalize the token block.
  double norm = 0.0;
  for (int i = 0; i < kTokenDim; ++i) norm += f.x[static_cast<std::size_t>(i)] *
                                               f.x[static_cast<std::size_t>(i)];
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (int i = 0; i < kTokenDim; ++i) {
      f.x[static_cast<std::size_t>(i)] /= norm;
    }
  }
  // Syntactic indicators (surface-only; no analysis verdicts).
  const ProgramFeatures& pf = cached_features(code);
  double* s = f.x.data() + kTokenDim;
  s[0] = pf.has_parallel_construct ? 1 : 0;
  s[1] = pf.has_critical || pf.has_atomic ? 1 : 0;
  s[2] = pf.has_reduction ? 1 : 0;
  s[3] = pf.has_privatization ? 1 : 0;
  s[4] = pf.has_nowait ? 1 : 0;
  s[5] = pf.has_task ? 1 : 0;
  s[6] = pf.has_depend ? 1 : 0;
  s[7] = pf.has_barrier || pf.has_single_or_master ? 1 : 0;
  s[8] = pf.has_simd ? 1 : 0;
  s[9] = pf.has_locks || pf.has_ordered ? 1 : 0;
  s[10] = static_cast<double>(pf.pragma_count) / 8.0;
  s[11] = static_cast<double>(pf.code_len) / 4000.0;
  // Dependence-reasoning signals a fine-tuned code model can internalize.
  s[12] = pf.static_race_conservative ? 1.0 : -1.0;
  s[13] = pf.static_race_optimistic ? 1.0 : -1.0;
  return f;
}

Adapter::Adapter() { u.fill(0.0); }

std::array<double, kLoraRank> Adapter::project(const FeatureVec& f) {
  std::array<double, kLoraRank> out{};
  const auto& p = projection();
  for (int i = 0; i < kFeatureDim; ++i) {
    const double xi = f.x[static_cast<std::size_t>(i)];
    if (xi == 0.0) continue;
    const auto& row = p[static_cast<std::size_t>(i)];
    for (int r = 0; r < kLoraRank; ++r) {
      out[static_cast<std::size_t>(r)] += xi * row[static_cast<std::size_t>(r)];
    }
  }
  return out;
}

double Adapter::predict(const FeatureVec& f) const {
  const auto h = project(f);
  double z = 0.0;
  for (int r = 0; r < kLoraRank; ++r) {
    z += u[static_cast<std::size_t>(r)] * h[static_cast<std::size_t>(r)];
  }
  return scale * z;
}

std::string Adapter::to_json() const {
  json::Object obj;
  obj.set("format", json::Value("drbml-lora-adapter-v1"));
  obj.set("rank", json::Value(kLoraRank));
  obj.set("scale", json::Value(scale));
  json::Array weights;
  for (double w : u) weights.emplace_back(w);
  obj.set("u", json::Value(std::move(weights)));
  return json::Value(std::move(obj)).dump_pretty();
}

Adapter Adapter::from_json(const std::string& text) {
  const json::Value v = json::parse(text);
  const json::Object& obj = v.as_object();
  if (obj.at("format").as_string() != "drbml-lora-adapter-v1") {
    throw Error("adapter checkpoint: unknown format");
  }
  if (obj.at("rank").as_int() != kLoraRank) {
    throw Error("adapter checkpoint: rank mismatch");
  }
  Adapter a;
  a.scale = obj.at("scale").as_double();
  const json::Array& weights = obj.at("u").as_array();
  if (weights.size() != static_cast<std::size_t>(kLoraRank)) {
    throw Error("adapter checkpoint: weight count mismatch");
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    a.u[i] = weights[i].as_double();
  }
  return a;
}

FinetuneConfig llama2_finetune_config() {
  FinetuneConfig c;
  c.lr = 2e-4 * 100;  // the paper's 2e-4, scaled into adapter-logit space
  c.epochs = 40;
  c.alpha_scale = 0.05;
  c.seed = 11;
  return c;
}

FinetuneConfig starchat_finetune_config() {
  FinetuneConfig c;
  c.lr = 9.65e-6 * 2000;  // the paper's 9.65e-6, scaled likewise
  c.epochs = 40;
  c.alpha_scale = 0.10;
  c.seed = 13;
  return c;
}

Adapter finetune_detection(const ChatModel& base, prompts::Style style,
                           const std::vector<TrainSample>& train,
                           const FinetuneConfig& config) {
  Adapter adapter;
  if (train.empty()) return adapter;

  // Precompute projected features and base logits.
  struct Prepared {
    std::array<double, kLoraRank> h;
    double base_logit;
    double label;
  };
  std::vector<Prepared> prepared;
  prepared.reserve(train.size());
  for (const auto& s : train) {
    Prepared p;
    p.h = Adapter::project(featurize(s.code));
    p.base_logit = logit(base.decide(style, s.code).p_yes);
    p.label = s.label ? 1.0 : 0.0;
    prepared.push_back(p);
  }

  // Adam state.
  std::array<double, kLoraRank> m{};
  std::array<double, kLoraRank> v{};
  constexpr double beta1 = 0.9;
  constexpr double beta2 = 0.999;
  constexpr double eps = 1e-8;
  int step = 0;

  Rng rng(config.seed);
  std::vector<int> order(prepared.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config.batch_size)) {
      std::array<double, kLoraRank> grad{};
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(config.batch_size));
      for (std::size_t k = start; k < end; ++k) {
        const Prepared& p = prepared[static_cast<std::size_t>(
            order[k])];
        double z = p.base_logit;
        for (int r = 0; r < kLoraRank; ++r) {
          // Feature dropout regularizes the rank space.
          if (config.dropout > 0.0 && rng.chance(config.dropout)) continue;
          z += adapter.u[static_cast<std::size_t>(r)] *
               p.h[static_cast<std::size_t>(r)];
        }
        const double err = sigmoid(z) - p.label;  // dCE/dz
        for (int r = 0; r < kLoraRank; ++r) {
          grad[static_cast<std::size_t>(r)] +=
              err * p.h[static_cast<std::size_t>(r)];
        }
      }
      const double inv = 1.0 / static_cast<double>(end - start);
      ++step;
      for (int r = 0; r < kLoraRank; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        double g = grad[ri] * inv + config.weight_decay * adapter.u[ri];
        m[ri] = beta1 * m[ri] + (1 - beta1) * g;
        v[ri] = beta2 * v[ri] + (1 - beta2) * g * g;
        const double mhat = m[ri] / (1 - std::pow(beta1, step));
        const double vhat = v[ri] / (1 - std::pow(beta2, step));
        adapter.u[ri] -= config.lr * mhat / (std::sqrt(vhat) + eps);
      }
    }
  }
  adapter.scale = config.alpha_scale;
  return adapter;
}

}  // namespace drbml::llm
