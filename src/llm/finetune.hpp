// QLoRA-style fine-tuning for the simulated open-source models.
//
// The adapter is a rank-limited delta on the model's detection logit:
// a frozen random projection P (kTokenDim x kLoraRank, the "pretrained
// directions") composed with a trainable vector u of kLoraRank = 64
// parameters -- the paper's LoRA attention dimension. Training minimizes
// cross-entropy with Adam over the DRB-ML prompt-response pairs, with
// feature dropout 0.1 and the paper's learning rates (2e-4 for Llama2,
// 9.65e-6 for StarChat -- scaled into this model's logit space).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "llm/model.hpp"

namespace drbml::llm {

constexpr int kTokenDim = 256;   // hashed bag-of-token feature dimension
constexpr int kSyntaxDim = 14;   // syntactic + learned-reasoning features
constexpr int kFeatureDim = kTokenDim + kSyntaxDim;
constexpr int kLoraRank = 64;

/// Dense feature vector for the adapter.
struct FeatureVec {
  std::array<double, kFeatureDim> x{};
};

/// Featurizes source code: L2-normalized hashed token counts, syntactic
/// indicators, and two dependence-reasoning signals (the conservative and
/// optimistic analysis verdicts). The reasoning signals model what
/// fine-tuning lets a code model internalize; how much weight they earn is
/// limited by the optimizer budget (lr/epochs), which is what keeps the
/// paper's gains modest.
[[nodiscard]] FeatureVec featurize(const std::string& code);

/// Low-rank adapter: logit delta = (P u) . x  with P frozen, u trained.
class Adapter {
 public:
  Adapter();

  [[nodiscard]] double predict(const FeatureVec& f) const;

  /// Trainable parameters (rank-limited).
  std::array<double, kLoraRank> u{};
  /// Output scale applied after projection (absorbs calibration).
  double scale = 1.0;

  /// Projects a feature vector into the rank space (P^T x).
  [[nodiscard]] static std::array<double, kLoraRank> project(
      const FeatureVec& f);

  /// Checkpointing: serialize/restore the trained parameters (the frozen
  /// projection is regenerated deterministically, so checkpoints are tiny).
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static Adapter from_json(const std::string& text);
};

struct FinetuneConfig {
  double lr = 2e-4;        // paper: Llama2 2e-4, StarChat 9.65e-6 (scaled)
  int epochs = 40;
  int batch_size = 4;      // paper: batch 4 per GPU
  double dropout = 0.1;    // paper: LoRA dropout 0.1
  double weight_decay = 1e-3;
  /// LoRA output scaling (alpha / r): damps the converged adapter when it
  /// is merged into the frozen model's logit head.
  double alpha_scale = 1.0;
  std::uint64_t seed = 7;
};

/// The paper's per-model hyperparameters, mapped into adapter space.
[[nodiscard]] FinetuneConfig llama2_finetune_config();
[[nodiscard]] FinetuneConfig starchat_finetune_config();

struct TrainSample {
  std::string code;
  bool label = false;  // parsed from the pair's "yes"/"no" response
};

/// Fine-tunes a detection adapter against the base model's logits using
/// Adam + cross-entropy. Returns the trained adapter.
[[nodiscard]] Adapter finetune_detection(const ChatModel& base,
                                         prompts::Style style,
                                         const std::vector<TrainSample>& train,
                                         const FinetuneConfig& config);

}  // namespace drbml::llm
