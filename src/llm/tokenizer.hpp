// Tokenizers for the simulated LLM substrate.
//
// SimpleTokenizer: a deterministic code-aware subword tokenizer used for
// context-window accounting (the paper's 4k-token dataset cut) and for
// hashed bag-of-token features in fine-tuning.
//
// BpeTokenizer: a trainable byte-pair-encoding tokenizer (greedy merges of
// the most frequent adjacent pair), demonstrating the full vocabulary
// pipeline; exercised by tests and the substrate benchmarks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace drbml::llm {

/// Splits code text into subword tokens: identifiers chunked to at most 8
/// characters, numbers, one token per operator, whitespace dropped.
class SimpleTokenizer {
 public:
  [[nodiscard]] std::vector<std::string> tokenize(std::string_view text) const;
  [[nodiscard]] int count_tokens(std::string_view text) const;
};

/// Byte-pair encoding over a byte alphabet.
class BpeTokenizer {
 public:
  /// Learns `merge_count` merges from the training texts.
  void train(const std::vector<std::string>& texts, int merge_count);

  /// Encodes text into token ids (byte ids 0..255, merged ids above).
  [[nodiscard]] std::vector<int> encode(std::string_view text) const;

  /// Inverse of encode.
  [[nodiscard]] std::string decode(const std::vector<int>& ids) const;

  [[nodiscard]] int vocab_size() const noexcept {
    return 256 + static_cast<int>(merges_.size());
  }
  [[nodiscard]] std::size_t merge_count() const noexcept {
    return merges_.size();
  }

 private:
  // Learned merges in order: (left id, right id) -> new id 256+index.
  std::vector<std::pair<int, int>> merges_;
  std::map<std::pair<int, int>, int> merge_rank_;
};

}  // namespace drbml::llm
