#include "llm/features.hpp"

#include "analysis/race.hpp"
#include "minic/parser.hpp"
#include "support/error.hpp"

namespace drbml::llm {

using namespace minic;

namespace {

void scan_directive(const OmpDirective& dir, ProgramFeatures& f) {
  ++f.pragma_count;
  switch (dir.kind) {
    case OmpDirectiveKind::Parallel:
    case OmpDirectiveKind::ParallelFor:
    case OmpDirectiveKind::ParallelForSimd:
    case OmpDirectiveKind::ParallelSections:
      f.has_parallel_construct = true;
      break;
    case OmpDirectiveKind::Critical: f.has_critical = true; break;
    case OmpDirectiveKind::Atomic: f.has_atomic = true; break;
    case OmpDirectiveKind::Barrier: f.has_barrier = true; break;
    case OmpDirectiveKind::Single:
    case OmpDirectiveKind::Master:
      f.has_single_or_master = true;
      break;
    case OmpDirectiveKind::Sections:
    case OmpDirectiveKind::Section:
      f.has_sections = true;
      break;
    case OmpDirectiveKind::Task:
    case OmpDirectiveKind::Taskwait:
      f.has_task = true;
      break;
    case OmpDirectiveKind::Simd:
    case OmpDirectiveKind::ForSimd:
      f.has_simd = true;
      break;
    case OmpDirectiveKind::Target:
    case OmpDirectiveKind::TargetParallelFor:
      f.has_target = true;
      if (dir.kind == OmpDirectiveKind::TargetParallelFor) {
        f.has_parallel_construct = true;
      }
      break;
    case OmpDirectiveKind::Ordered: f.has_ordered = true; break;
    case OmpDirectiveKind::Threadprivate: f.has_threadprivate = true; break;
    default: break;
  }
  for (const auto& c : dir.clauses) {
    switch (c.kind) {
      case OmpClauseKind::Reduction: f.has_reduction = true; break;
      case OmpClauseKind::Private:
      case OmpClauseKind::FirstPrivate:
      case OmpClauseKind::LastPrivate:
      case OmpClauseKind::Linear:
        f.has_privatization = true;
        break;
      case OmpClauseKind::Nowait: f.has_nowait = true; break;
      case OmpClauseKind::Depend: f.has_depend = true; break;
      case OmpClauseKind::Ordered: f.has_ordered = true; break;
      default: break;
    }
  }
}

void scan_stmt(const Stmt& s, ProgramFeatures& f) {
  switch (s.kind) {
    case StmtKind::Compound:
      for (const auto& st : static_cast<const CompoundStmt&>(s).body) {
        scan_stmt(*st, f);
      }
      break;
    case StmtKind::If: {
      const auto& i = static_cast<const IfStmt&>(s);
      scan_stmt(*i.then_branch, f);
      if (i.else_branch) scan_stmt(*i.else_branch, f);
      break;
    }
    case StmtKind::For:
      scan_stmt(*static_cast<const ForStmt&>(s).body, f);
      break;
    case StmtKind::While:
      scan_stmt(*static_cast<const WhileStmt&>(s).body, f);
      break;
    case StmtKind::Do:
      scan_stmt(*static_cast<const DoStmt&>(s).body, f);
      break;
    case StmtKind::Omp: {
      const auto& o = static_cast<const OmpStmt&>(s);
      scan_directive(o.directive, f);
      if (o.body) scan_stmt(*o.body, f);
      break;
    }
    case StmtKind::Expr: {
      // Lock runtime calls.
      const auto& e = static_cast<const ExprStmt&>(s);
      if (const auto* call = expr_cast<Call>(e.expr.get())) {
        if (call->callee == "omp_set_lock" ||
            call->callee == "omp_set_nest_lock") {
          f.has_locks = true;
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

ProgramFeatures extract_features(const std::string& code) {
  ProgramFeatures f;
  f.code_len = static_cast<int>(code.size());
  try {
    Program prog = parse_program(code);
    f.parsed = true;
    for (const auto& dir : prog.unit->global_directives) {
      scan_directive(dir, f);
    }
    for (const auto& fn : prog.unit->functions) {
      if (fn->body) scan_stmt(*fn->body, f);
    }

    // The persona decision model is calibrated against the legacy
    // detector configuration; keep the newer precision rules (thread-id
    // modeling, symbolic bounds, serial-region folding) pinned off here
    // so simulated per-persona accuracies stay put.
    analysis::StaticDetectorOptions legacy;
    legacy.depend.model_thread_id = false;
    legacy.depend.symbolic_bounds = false;
    legacy.model_serial_regions = false;
    {
      analysis::StaticDetectorOptions conservative = legacy;
      conservative.depend.conservative_nonaffine = true;
      analysis::StaticRaceDetector det(conservative);
      // analyze_source reparses; reuse for simplicity and isolation.
      analysis::RaceReport report = det.analyze_source(code);
      f.static_race_conservative = report.race_detected;
      f.static_pairs = report.pairs;
      f.static_pair_count = static_cast<int>(report.pairs.size());
    }
    {
      analysis::StaticDetectorOptions optimistic = legacy;
      optimistic.depend.conservative_nonaffine = false;
      analysis::StaticRaceDetector det(optimistic);
      f.static_race_optimistic = det.analyze_source(code).race_detected;
    }
  } catch (const Error&) {
    f.parsed = false;
  }
  return f;
}

}  // namespace drbml::llm
