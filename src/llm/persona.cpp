#include "llm/persona.hpp"

#include <vector>

#include "support/error.hpp"

namespace drbml::llm {

using prompts::Style;

const DetectionRates& Persona::rates_for(Style s) const {
  auto it = rates.find(s);
  if (it != rates.end()) return it->second;
  // BP1 and P1 share the succinct template.
  if (s == Style::BP1) {
    auto p1 = rates.find(Style::P1);
    if (p1 != rates.end()) return p1->second;
  }
  throw Error("persona '" + key + "' has no rates for style");
}

Persona gpt35_persona() {
  Persona p;
  p.name = "GPT-3.5-turbo";
  p.key = "gpt35";
  p.context_tokens = 16384;
  p.open_source = false;
  p.rates[Style::P1] = {0.668, 0.553, 0.611};
  p.rates[Style::P2] = {0.635, 0.567, 0.601};
  p.rates[Style::P3] = {0.701, 0.539, 0.620};
  p.rates[Style::BP2] = {0.357, 0.258, 0.308};
  p.varid_attempt = 0.92;
  p.pair_selection = 0.36;
  p.name_accuracy = 0.80;
  p.line_accuracy = 0.78;
  p.op_accuracy = 0.87;
  p.format_fidelity = 0.75;
  p.spurious_pairs = 0.33;
  return p;
}

Persona gpt4_persona() {
  Persona p;
  p.name = "GPT-4";
  p.key = "gpt4";
  p.context_tokens = 8192;
  p.open_source = false;
  p.rates[Style::P1] = {0.809, 0.245, 0.527};
  p.rates[Style::P2] = {0.819, 0.267, 0.543};
  p.rates[Style::P3] = {0.820, 0.245, 0.532};
  p.rates[Style::BP2] = {0.809, 0.245, 0.527};
  p.varid_attempt = 0.95;
  p.pair_selection = 0.62;
  p.name_accuracy = 0.82;
  p.line_accuracy = 0.55;  // "most inaccuracies pertain to line numbers"
  p.op_accuracy = 0.82;
  p.format_fidelity = 0.92;
  p.spurious_pairs = 0.04;
  return p;
}

Persona llama2_persona() {
  Persona p;
  p.name = "Llama2-7b";
  p.key = "llama2";
  p.context_tokens = 4096;
  p.open_source = true;
  p.rates[Style::P1] = {0.656, 0.576, 0.616};
  p.rates[Style::P2] = {0.656, 0.576, 0.616};
  p.rates[Style::P3] = {0.668, 0.553, 0.611};
  p.rates[Style::BP2] = {0.419, 0.429, 0.424};
  p.varid_attempt = 0.80;
  p.pair_selection = 0.48;
  p.name_accuracy = 0.62;
  p.line_accuracy = 0.60;
  p.op_accuracy = 0.88;
  p.format_fidelity = 0.55;
  p.spurious_pairs = 0.41;
  return p;
}

Persona starchat_persona() {
  Persona p;
  p.name = "StarChat-beta";
  p.key = "starchat";
  p.context_tokens = 8192;
  p.open_source = true;
  p.rates[Style::P1] = {0.625, 0.699, 0.662};
  p.rates[Style::P2] = {0.615, 0.689, 0.652};
  p.rates[Style::P3] = {0.631, 0.622, 0.626};
  p.rates[Style::BP2] = {0.473, 0.568, 0.521};
  p.varid_attempt = 0.85;
  p.pair_selection = 0.50;
  p.name_accuracy = 0.65;
  p.line_accuracy = 0.60;
  p.op_accuracy = 0.90;
  p.format_fidelity = 0.60;
  p.spurious_pairs = 0.27;
  return p;
}

const std::vector<Persona>& all_personas() {
  static const std::vector<Persona> personas = {
      gpt35_persona(),
      gpt4_persona(),
      starchat_persona(),
      llama2_persona(),
  };
  return personas;
}

}  // namespace drbml::llm
