// Evaluation metrics (paper Section 3.6): confusion matrices with recall,
// precision, and F1, plus mean/standard-deviation summaries for the
// cross-validation tables.
#pragma once

#include <string>
#include <vector>

namespace drbml::eval {

struct ConfusionMatrix {
  int tp = 0;
  int fp = 0;
  int tn = 0;
  int fn = 0;

  void add(bool predicted, bool truth) {
    if (predicted && truth) ++tp;
    else if (predicted && !truth) ++fp;
    else if (!predicted && !truth) ++tn;
    else ++fn;
  }

  [[nodiscard]] int total() const noexcept { return tp + fp + tn + fn; }
  [[nodiscard]] double recall() const noexcept {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
  [[nodiscard]] double precision() const noexcept {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  [[nodiscard]] double f1() const noexcept {
    const double r = recall();
    const double p = precision();
    return r + p == 0.0 ? 0.0 : 2.0 * r * p / (r + p);
  }
  [[nodiscard]] double accuracy() const noexcept {
    return total() == 0 ? 0.0 : static_cast<double>(tp + tn) / total();
  }
};

/// Mean and (population) standard deviation of a sample.
struct Stats {
  double avg = 0.0;
  double sd = 0.0;

  [[nodiscard]] static Stats of(const std::vector<double>& xs);
};

}  // namespace drbml::eval
