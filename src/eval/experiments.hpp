// Experiment runners reproducing the paper's evaluation (Tables 2-6).
//
// Every LLM measurement goes through the full pipeline: prompt rendering
// -> simulated chat completion -> natural-language response parsing ->
// metric accumulation, exactly as the paper's harness drives hosted APIs.
//
// Execution model: each runner fans its per-entry work out over a
// fixed-size thread pool (support/parallel.hpp) and folds the per-entry
// (prediction, label) outcomes into the ConfusionMatrix in input order,
// so results are bit-identical to the serial path at any job count.
// Derived per-entry artifacts (token counts, ASTs, dependence graphs,
// static/dynamic race evidence) are memoized in the shared ArtifactCache
// and computed once across all experiments.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dataset/drbml.hpp"
#include "eval/metrics.hpp"
#include "explore/explore.hpp"
#include "eval/parse.hpp"
#include "llm/model.hpp"
#include "prompts/prompts.hpp"
#include "repair/repair.hpp"

namespace drbml::eval {

/// Knobs shared by all experiment runners.
struct ExperimentOptions {
  /// Worker threads for per-entry fan-out. 0 = auto (the DRBML_JOBS
  /// environment variable if set, otherwise hardware concurrency);
  /// 1 = the exact serial path. Any value produces identical results.
  int jobs = 0;
};

/// Per-entry outcome: (predicted positive, ground-truth positive).
using Outcome = std::pair<bool, bool>;

/// Folds outcomes into a confusion matrix in input order.
[[nodiscard]] ConfusionMatrix fold_outcomes(const std::vector<Outcome>& outcomes);

/// The paper's evaluation subset: entries whose trimmed code is within
/// `token_limit` model tokens (Section 3.2: 198 of 201 under 4k).
[[nodiscard]] std::vector<const dataset::Entry*> token_filtered_subset(
    int token_limit = 4000);

// ------------------------------------------------------------- detection

/// Runs prompt-engineering detection (S1) for one model and style over
/// the subset; responses are parsed back from natural language.
[[nodiscard]] ConfusionMatrix run_detection(
    const llm::ChatModel& model, prompts::Style style,
    const std::vector<const dataset::Entry*>& subset,
    const ExperimentOptions& opts = {});

/// The traditional-tool baseline (the paper's Intel Inspector column):
/// a hybrid of a legacy-configured conservative static pass and the
/// dynamic vector-clock detector.
[[nodiscard]] ConfusionMatrix run_traditional_tool(
    const std::vector<const dataset::Entry*>& subset,
    const ExperimentOptions& opts = {});

/// The OpenMP correctness linter as a detector baseline: predicted
/// positive iff the lint run's underlying static race evidence fires.
/// Scored against the same DRB-ML labels as every other Table 3 column.
[[nodiscard]] ConfusionMatrix run_lint_tool(
    const std::vector<const dataset::Entry*>& subset,
    const ExperimentOptions& opts = {});

/// Detection with an auxiliary input modality (paper future work): the
/// prompt carries the code plus a pretty-printed AST, a serialized
/// dependence graph, or the linter's findings.
[[nodiscard]] ConfusionMatrix run_detection_modal(
    const llm::ChatModel& model, prompts::Style style,
    prompts::Modality modality,
    const std::vector<const dataset::Entry*>& subset,
    const ExperimentOptions& opts = {});

// ------------------------------------------------------------- var-id

/// Variable-identification matching (Table 5 semantics): TP only when a
/// reported pair matches a ground-truth pair in names, lines, and ops.
[[nodiscard]] bool varid_matches(const ParsedVarId& parsed,
                                 const dataset::Entry& entry);

[[nodiscard]] ConfusionMatrix run_varid(
    const llm::ChatModel& model,
    const std::vector<const dataset::Entry*>& subset,
    const ExperimentOptions& opts = {});

/// The linter scored under Table 5 (variable identification) semantics:
/// its race pairs are matched against the DRB-ML var_pairs labels with
/// the same name/line/op comparison applied to LLM answers.
[[nodiscard]] ConfusionMatrix run_lint_varid(
    const std::vector<const dataset::Entry*>& subset,
    const ExperimentOptions& opts = {});

// ------------------------------------------------------------- fine-tuning

enum class Objective { Detection, VarId };

struct CvResult {
  Stats recall;
  Stats precision;
  Stats f1;
  std::vector<ConfusionMatrix> folds;
};

/// 5-fold stratified cross validation (Section 3.5). When `finetuned` is
/// true, an adapter is trained on each fold's training split from the
/// DRB-ML prompt-response pairs; otherwise the pretrained persona is
/// evaluated on the same test splits. `synthetic_augmentation` adds that
/// many generated kernels (Section 4.5's proposed remedy) to every
/// training split.
[[nodiscard]] CvResult run_cv(const llm::Persona& persona, Objective objective,
                              bool finetuned, int k = 5,
                              std::uint64_t seed = 2023,
                              int synthetic_augmentation = 0,
                              const ExperimentOptions& opts = {});

// ------------------------------------------------------------- table rows

struct DetectionRow {
  std::string model;
  std::string prompt;
  ConfusionMatrix cm;
};

struct CvRow {
  std::string model;
  Stats recall;
  Stats precision;
  Stats f1;
};

/// Table 2: GPT-3.5-turbo with basic prompts 1 and 2.
[[nodiscard]] std::vector<DetectionRow> table2_rows(
    const ExperimentOptions& opts = {});
/// Table 3: traditional tool + four LLMs x {p1, p2, p3}.
[[nodiscard]] std::vector<DetectionRow> table3_rows(
    const ExperimentOptions& opts = {});
/// Table 4: 5-fold CV, detection, StarChat/Llama2 with and without FT.
[[nodiscard]] std::vector<CvRow> table4_rows(
    const ExperimentOptions& opts = {});
/// Table 5: variable identification, four pretrained LLMs.
[[nodiscard]] std::vector<DetectionRow> table5_rows(
    const ExperimentOptions& opts = {});
/// Table 6: 5-fold CV, variable identification, with and without FT.
[[nodiscard]] std::vector<CvRow> table6_rows(
    const ExperimentOptions& opts = {});

// ------------------------------------------------------------- repair

/// One Table 7 row: verified-repair outcomes for a DRB pattern family.
struct RepairRow {
  std::string family;       // DRB pattern family; "(all)" on the total row
  int entries = 0;          // race-labeled corpus entries in the family
  int fixed = 0;            // entries with an accepted patch
  int verified = 0;         // ... whose output-equivalence gate also ran
  int no_candidate = 0;     // no strategy applied
  int rejected = 0;         // every candidate failed verification
  int errors = 0;           // parse/analysis failures
  int attempts_on_fixed = 0;  // candidates tried across fixed entries

  [[nodiscard]] double fix_rate() const noexcept;
  [[nodiscard]] double verified_rate() const noexcept;
  /// Average candidates applied+verified per successful fix.
  [[nodiscard]] double patches_per_fix() const noexcept;
};

/// Table 7 (repair extension, not in the paper): the verified fix loop
/// over every race-labeled DRB corpus entry, grouped by pattern family
/// and sorted by family name, with an "(all)" total row last. Per-entry
/// repair results are memoized in the ArtifactCache; the fold happens in
/// input order, so rows are bit-identical at any job count.
[[nodiscard]] std::vector<RepairRow> table7_rows(
    const repair::RepairOptions& ropts = {},
    const ExperimentOptions& opts = {});

// ------------------------------------------------------------ exploration

/// One exploration-strategy row: the budgeted schedule-exploration loop
/// (explore::explore_source) over every race-labeled DRB corpus entry.
struct ExplorationRow {
  std::string strategy;          // "uniform" | "pct"
  int entries = 0;               // race-labeled corpus entries explored
  int detected = 0;              // entries whose race was found in budget
  int only_here = 0;             // detected by this strategy, missed by the other
  int plateau_stops = 0;         // entries cut early by the coverage plateau
  int witnesses = 0;             // minimized witnesses shipped (== detected)
  int errors = 0;                // parse/analysis failures
  std::uint64_t schedules = 0;   // schedules actually run across entries
  std::uint64_t original_decisions = 0;  // decision count before minimization
  std::uint64_t witness_decisions = 0;   // ... and after

  /// Races found per schedule of budget actually spent.
  [[nodiscard]] double races_per_schedule() const noexcept;
  /// Mean schedules until the first racy one, over detected entries.
  [[nodiscard]] double avg_schedules_to_first_race() const noexcept;

 private:
  friend std::vector<ExplorationRow> exploration_rows(
      const explore::ExploreOptions&, const ExperimentOptions&);
  std::uint64_t first_race_schedules_ = 0;  // sum over detected entries
};

/// Exploration comparison (uniform vs PCT at the same schedule budget,
/// same per-entry seeds) over the race-labeled corpus. Per-entry results
/// are memoized in the ArtifactCache; the fold runs in input order, so
/// rows are bit-identical at any job count.
[[nodiscard]] std::vector<ExplorationRow> exploration_rows(
    const explore::ExploreOptions& base = {},
    const ExperimentOptions& opts = {});

}  // namespace drbml::eval
