#include "eval/artifact_cache.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "analysis/depgraph.hpp"
#include "llm/model.hpp"
#include "llm/tokenizer.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "obs/catalog.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

namespace drbml::eval {

namespace {

std::uint64_t hash_static_options(const analysis::StaticDetectorOptions& o) {
  std::uint64_t bits = 0;
  bits = bits << 1 | static_cast<std::uint64_t>(o.collect.track_call_effects);
  bits = bits << 1 | static_cast<std::uint64_t>(o.depend.conservative_nonaffine);
  bits = bits << 1 | static_cast<std::uint64_t>(o.depend.model_thread_id);
  bits = bits << 1 | static_cast<std::uint64_t>(o.depend.symbolic_bounds);
  bits = bits << 1 | static_cast<std::uint64_t>(o.model_locks);
  bits = bits << 1 | static_cast<std::uint64_t>(o.model_depend_clauses);
  bits = bits << 1 | static_cast<std::uint64_t>(o.model_ordered);
  bits = bits << 1 | static_cast<std::uint64_t>(o.model_serial_regions);
  return hash_combine(
      hash_combine(bits, static_cast<std::uint64_t>(o.max_pairs)),
      static_cast<std::uint64_t>(o.max_discharged));
}

std::uint64_t hash_run_options(const runtime::RunOptions& o) {
  std::uint64_t h = hash_combine(
      static_cast<std::uint64_t>(o.num_threads),
      hash_combine(o.seed, static_cast<std::uint64_t>(o.preempt_every)));
  h = hash_combine(h, o.step_limit);
  h = hash_combine(h, static_cast<std::uint64_t>(o.max_pairs));
  h = hash_combine(h, static_cast<std::uint64_t>(o.strategy));
  h = hash_combine(h, static_cast<std::uint64_t>(o.pct_depth));
  h = hash_combine(h, o.pct_expected_steps);
  h = hash_combine(h, static_cast<std::uint64_t>(o.capture_trace) << 1 |
                          static_cast<std::uint64_t>(o.collect_coverage));
  // Backend is hashed even though both backends are verdict-identical:
  // the differential suite relies on cache entries not aliasing across
  // backends, and timing-sensitive consumers may care which one ran.
  h = hash_combine(h, static_cast<std::uint64_t>(o.backend));
  // A replay trace is part of the schedule the options describe: hash
  // its decisions, not the pointer.
  if (o.replay != nullptr) {
    for (const runtime::RegionTrace& region : o.replay->regions) {
      h = hash_combine(h, region.size());
      for (const runtime::ScheduleDecision& d : region) {
        h = hash_combine(
            h, hash_combine(d.step, static_cast<std::uint64_t>(d.target) << 1 |
                                        static_cast<std::uint64_t>(d.forced)));
      }
    }
  }
  return h;
}

std::uint64_t hash_dynamic_options(const runtime::DynamicDetectorOptions& o) {
  std::uint64_t h = hash_run_options(o.run);
  for (std::uint64_t seed : o.schedule_seeds) h = hash_combine(h, seed);
  return h;
}

std::uint64_t hash_explore_options(const explore::ExploreOptions& o) {
  std::uint64_t h = hash_run_options(o.run);
  h = hash_combine(h, static_cast<std::uint64_t>(o.strategy));
  h = hash_combine(h, static_cast<std::uint64_t>(o.pct_depth));
  h = hash_combine(h, o.pct_expected_steps);
  h = hash_combine(h, static_cast<std::uint64_t>(o.max_schedules));
  h = hash_combine(h, static_cast<std::uint64_t>(o.plateau_window));
  h = hash_combine(h, o.seed);
  h = hash_combine(h, static_cast<std::uint64_t>(o.minimize));
  return hash_combine(h, static_cast<std::uint64_t>(o.max_minimize_replays));
}

std::uint64_t hash_repair_options(const repair::RepairOptions& o) {
  std::uint64_t h = hash_combine(static_cast<std::uint64_t>(o.strategy),
                                 static_cast<std::uint64_t>(o.max_candidates));
  h = hash_combine(h, hash_static_options(o.static_opts));
  h = hash_combine(h, hash_dynamic_options(o.dynamic_opts));
  h = hash_combine(h, static_cast<std::uint64_t>(o.explore_schedules));
  return hash_combine(h, static_cast<std::uint64_t>(o.explore_pct_depth));
}

// Approximate resident byte costs for the LRU budget. Estimates only
// need to scale with the real footprint -- eviction order and the budget
// comparison tolerate slack -- so each is a flat struct overhead plus
// the variable-size payloads.

std::uint64_t cost_string(const std::string& s) { return 64 + s.size(); }

std::uint64_t cost_evidence(const analysis::Evidence& e) {
  std::uint64_t b = 96 + e.dep_test.size() + e.dep_detail.size() +
                    e.discharge_rule.size();
  for (const auto& s : e.locks_first) b += 32 + s.size();
  for (const auto& s : e.locks_second) b += 32 + s.size();
  for (const auto& s : e.common_guards) b += 32 + s.size();
  for (const auto& step : e.steps) {
    b += 64 + step.rule.size() + step.detail.size();
  }
  return b;
}

std::uint64_t cost_report(const analysis::RaceReport& r) {
  std::uint64_t b = 128;
  for (const auto& p : r.pairs) {
    b += 128 + p.first.expr_text.size() + p.second.expr_text.size() +
         p.note.size() + cost_evidence(p.evidence);
  }
  for (const auto& d : r.discharged) {
    b += 128 + d.first.expr_text.size() + d.second.expr_text.size() +
         cost_evidence(d.evidence);
  }
  for (const auto& diag : r.diagnostics) b += 32 + diag.size();
  return b;
}

std::uint64_t cost_explore(const explore::ExploreResult& r) {
  return 256 + cost_report(r.report) + 8 * r.coverage.size() +
         48 * r.schedules.size() + r.witness.size();
}

std::uint64_t cost_lint(const lint::LintReport& r) {
  std::uint64_t b = 96 + cost_report(r.race);
  for (const auto& d : r.diagnostics) {
    b += 160 + d.message.size() + d.fixit.size() + d.pattern.size() +
         d.check_id.size();
    for (const auto& rel : d.related) b += 48 + rel.message.size();
  }
  return b;
}

std::uint64_t cost_repair(const repair::RepairResult& r) {
  return 192 + r.patched.size() + r.patch_id.size() + r.description.size() +
         r.family.size() + r.message.size();
}

}  // namespace

int ArtifactCache::token_count(const std::string& code) {
  static obs::Counter& probes = obs::metrics().counter(obs::kCacheTokensProbe);
  static obs::Counter& computes =
      obs::metrics().counter(obs::kCacheTokensCompute);
  probes.add();
  const std::uint64_t key = fnv1a64(code);
  const int v = tokens_.get_or_compute(key, [&] {
    computes.add();
    obs::Span span(obs::kSpanArtifactTokens);
    llm::SimpleTokenizer tok;
    return tok.count_tokens(code);
  });
  touch(Kind::Tokens, key, 16);
  return v;
}

const std::string& ArtifactCache::ast_text(const std::string& code) {
  static obs::Counter& probes = obs::metrics().counter(obs::kCacheAstProbe);
  static obs::Counter& computes = obs::metrics().counter(obs::kCacheAstCompute);
  probes.add();
  const std::uint64_t key = fnv1a64(code);
  const std::string& v = asts_.get_or_compute(key, [&] {
    computes.add();
    obs::Span span(obs::kSpanArtifactAst);
    minic::Program prog = minic::parse_program(code);
    return minic::unit_to_string(*prog.unit);
  });
  touch(Kind::Ast, key, cost_string(v));
  return v;
}

const std::string& ArtifactCache::depgraph_text(const std::string& code) {
  static obs::Counter& probes = obs::metrics().counter(obs::kCacheDepgraphProbe);
  static obs::Counter& computes =
      obs::metrics().counter(obs::kCacheDepgraphCompute);
  probes.add();
  const std::uint64_t key = fnv1a64(code);
  const std::string& v = depgraphs_.get_or_compute(key, [&] {
    computes.add();
    obs::Span span(obs::kSpanArtifactDepgraph);
    return analysis::build_dependence_graph(code).to_text();
  });
  touch(Kind::Depgraph, key, cost_string(v));
  return v;
}

const llm::ProgramFeatures& ArtifactCache::features(const std::string& code) {
  return llm::cached_features(code);
}

const analysis::RaceReport& ArtifactCache::static_report(
    const std::string& code, const analysis::StaticDetectorOptions& opts) {
  static obs::Counter& probes = obs::metrics().counter(obs::kCacheStaticProbe);
  static obs::Counter& computes =
      obs::metrics().counter(obs::kCacheStaticCompute);
  probes.add();
  const std::uint64_t key =
      hash_combine(fnv1a64(code), hash_static_options(opts));
  const analysis::RaceReport& v = static_reports_.get_or_compute(key, [&] {
    computes.add();
    obs::Span span(obs::kSpanArtifactStatic);
    analysis::StaticRaceDetector detector(opts);
    return detector.analyze_source(code);
  });
  touch(Kind::Static, key, cost_report(v));
  return v;
}

const analysis::RaceReport& ArtifactCache::dynamic_report(
    const std::string& code, const runtime::DynamicDetectorOptions& opts) {
  static obs::Counter& probes = obs::metrics().counter(obs::kCacheDynamicProbe);
  static obs::Counter& computes =
      obs::metrics().counter(obs::kCacheDynamicCompute);
  probes.add();
  const std::uint64_t key =
      hash_combine(fnv1a64(code), hash_dynamic_options(opts));
  const analysis::RaceReport& v = dynamic_reports_.get_or_compute(key, [&] {
    computes.add();
    obs::Span span(obs::kSpanArtifactDynamic);
    runtime::DynamicRaceDetector detector(opts);
    return detector.analyze_source(code);
  });
  touch(Kind::Dynamic, key, cost_report(v));
  return v;
}

const explore::ExploreResult& ArtifactCache::explore_result(
    const std::string& code, const explore::ExploreOptions& opts) {
  static obs::Counter& probes =
      obs::metrics().counter(obs::kCacheExploreProbe);
  static obs::Counter& computes =
      obs::metrics().counter(obs::kCacheExploreCompute);
  probes.add();
  const std::uint64_t key =
      hash_combine(fnv1a64(code), hash_explore_options(opts));
  const explore::ExploreResult& v = explore_results_.get_or_compute(key, [&] {
    computes.add();
    obs::Span span(obs::kSpanArtifactExplore);
    return explore::explore_source(code, opts);
  });
  touch(Kind::Explore, key, cost_explore(v));
  return v;
}

const repair::RepairResult& ArtifactCache::repair_result(
    const std::string& code, const repair::RepairOptions& opts) {
  static obs::Counter& probes = obs::metrics().counter(obs::kCacheRepairProbe);
  static obs::Counter& computes =
      obs::metrics().counter(obs::kCacheRepairCompute);
  probes.add();
  const std::uint64_t key =
      hash_combine(fnv1a64(code), hash_repair_options(opts));
  const repair::RepairResult& v = repair_results_.get_or_compute(key, [&] {
    computes.add();
    obs::Span span(obs::kSpanArtifactRepair);
    return repair::repair_source(code, opts);
  });
  touch(Kind::Repair, key, cost_repair(v));
  return v;
}

const lint::LintReport& ArtifactCache::lint_report(const std::string& code) {
  static obs::Counter& probes = obs::metrics().counter(obs::kCacheLintProbe);
  static obs::Counter& computes = obs::metrics().counter(obs::kCacheLintCompute);
  probes.add();
  // Default LintOptions only, so the code hash alone is a sound key.
  const std::uint64_t key = fnv1a64(code);
  const lint::LintReport& v = lint_reports_.get_or_compute(key, [&] {
    computes.add();
    obs::Span span(obs::kSpanArtifactLint);
    const lint::Linter linter;
    return linter.lint_source(code);
  });
  touch(Kind::Lint, key, cost_lint(v));
  return v;
}

const std::string& ArtifactCache::lint_text(const std::string& code) {
  static obs::Counter& probes = obs::metrics().counter(obs::kCacheLintTextProbe);
  static obs::Counter& computes =
      obs::metrics().counter(obs::kCacheLintTextCompute);
  probes.add();
  const std::uint64_t key = fnv1a64(code);
  const std::string& v = lint_texts_.get_or_compute(key, [&] {
    computes.add();
    obs::Span span(obs::kSpanArtifactLintText);
    std::string out;
    try {
      for (const auto& d : lint_report(code).diagnostics) {
        out += lint::to_text_line(d) + "\n";
      }
    } catch (const Error& e) {
      return std::string("note: linter unavailable: ") + e.what() + "\n";
    }
    if (out.empty()) out = "(no findings)\n";
    return out;
  });
  touch(Kind::LintText, key, cost_string(v));
  return v;
}

const std::string& ArtifactCache::evidence_text(const std::string& code) {
  static obs::Counter& probes =
      obs::metrics().counter(obs::kCacheEvidenceTextProbe);
  static obs::Counter& computes =
      obs::metrics().counter(obs::kCacheEvidenceTextCompute);
  probes.add();
  const std::uint64_t key = fnv1a64(code);
  const std::string& v = evidence_texts_.get_or_compute(key, [&] {
    computes.add();
    obs::Span span(obs::kSpanArtifactEvidenceText);
    std::string out;
    try {
      // Default options: the full precision layer, same configuration the
      // static/hybrid detector columns run with.
      const analysis::RaceReport& report = static_report(code, {});
      for (const auto& p : report.pairs) {
        out += "racy " + p.first.expr_text + " (line " +
               std::to_string(p.first.loc.line) + ") vs " +
               p.second.expr_text + " (line " +
               std::to_string(p.second.loc.line) + "): " +
               analysis::evidence_to_text(p.evidence) + "\n";
      }
      for (const auto& d : report.discharged) {
        out += "safe " + d.first.expr_text + " (line " +
               std::to_string(d.first.loc.line) + ") vs " +
               d.second.expr_text + " (line " +
               std::to_string(d.second.loc.line) + "): discharged by " +
               d.evidence.discharge_rule + "; " +
               analysis::evidence_to_text(d.evidence) + "\n";
      }
    } catch (const Error& e) {
      return std::string("note: static analysis unavailable: ") + e.what() +
             "\n";
    }
    if (out.empty()) out = "(no candidate pairs)\n";
    return out;
  });
  touch(Kind::EvidenceText, key, cost_string(v));
  return v;
}

std::size_t ArtifactCache::size() const {
  return tokens_.size() + asts_.size() + depgraphs_.size() +
         static_reports_.size() + dynamic_reports_.size() +
         explore_results_.size() + lint_reports_.size() +
         repair_results_.size() + lint_texts_.size() +
         evidence_texts_.size();
}

void ArtifactCache::clear() {
  tokens_.clear();
  asts_.clear();
  depgraphs_.clear();
  static_reports_.clear();
  dynamic_reports_.clear();
  explore_results_.clear();
  lint_reports_.clear();
  repair_results_.clear();
  lint_texts_.clear();
  evidence_texts_.clear();
  std::lock_guard<std::mutex> lock(lru_mu_);
  lru_.clear();
  lru_index_.clear();
  condemned_.clear();
  resident_bytes_ = 0;
}

// ------------------------------------------------------- LRU byte budget

namespace {

/// One LRU-index key per (kind, OnceMap key): token_count and ast_text
/// share the raw code hash, so the kind must participate.
std::uint64_t lru_id(int kind, std::uint64_t key) {
  return hash_combine(static_cast<std::uint64_t>(kind) + 1, key);
}

}  // namespace

void ArtifactCache::touch(Kind kind, std::uint64_t key, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(lru_mu_);
  const std::uint64_t id = lru_id(static_cast<int>(kind), key);
  auto it = lru_index_.find(id);
  if (it != lru_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(LruEntry{kind, key, bytes});
  lru_index_.emplace(id, lru_.begin());
  resident_bytes_ += bytes;
  evict_to_budget_locked();
}

void ArtifactCache::evict_to_budget_locked() {
  if (budget_ == 0) return;
  static obs::Counter& evictions = obs::metrics().counter(obs::kCacheEvictCount);
  static obs::Counter& evicted_bytes =
      obs::metrics().counter(obs::kCacheEvictBytes);
  // Never evict the most-recently-used entry: a single artifact larger
  // than the whole budget stays resident instead of thrashing.
  while (resident_bytes_ > budget_ && lru_.size() > 1) {
    const LruEntry victim = lru_.back();
    lru_index_.erase(lru_id(static_cast<int>(victim.kind), victim.key));
    lru_.pop_back();
    resident_bytes_ -= victim.bytes;
    ++tick_;
    std::shared_ptr<const void> handle = erase_kind(victim.kind, victim.key);
    if (handle != nullptr) {
      condemned_.push_back(Condemned{tick_, victim.bytes, std::move(handle)});
    }
    evictions.add();
    evicted_bytes.add(victim.bytes);
  }
}

std::shared_ptr<const void> ArtifactCache::erase_kind(Kind kind,
                                                      std::uint64_t key) {
  switch (kind) {
    case Kind::Tokens: return tokens_.erase(key);
    case Kind::Ast: return asts_.erase(key);
    case Kind::Depgraph: return depgraphs_.erase(key);
    case Kind::Static: return static_reports_.erase(key);
    case Kind::Dynamic: return dynamic_reports_.erase(key);
    case Kind::Explore: return explore_results_.erase(key);
    case Kind::Lint: return lint_reports_.erase(key);
    case Kind::Repair: return repair_results_.erase(key);
    case Kind::LintText: return lint_texts_.erase(key);
    case Kind::EvidenceText: return evidence_texts_.erase(key);
  }
  return nullptr;
}

void ArtifactCache::set_byte_budget(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(lru_mu_);
  budget_ = bytes;
  evict_to_budget_locked();
}

std::uint64_t ArtifactCache::byte_budget() const {
  std::lock_guard<std::mutex> lock(lru_mu_);
  return budget_;
}

std::uint64_t ArtifactCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(lru_mu_);
  return resident_bytes_;
}

std::uint64_t ArtifactCache::current_tick() const {
  std::lock_guard<std::mutex> lock(lru_mu_);
  return tick_;
}

std::size_t ArtifactCache::reclaim_evicted(std::uint64_t min_active_tick) {
  std::vector<Condemned> freeable;
  {
    std::lock_guard<std::mutex> lock(lru_mu_);
    auto it = condemned_.begin();
    while (it != condemned_.end()) {
      if (it->tick < min_active_tick) {
        freeable.push_back(std::move(*it));
        it = condemned_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Handles drop outside the lock: destroying a large artifact should
  // not stall concurrent touch/evict traffic.
  if (!freeable.empty()) {
    obs::metrics().counter(obs::kCacheReclaimed).add(freeable.size());
  }
  return freeable.size();
}

std::size_t ArtifactCache::condemned_count() const {
  std::lock_guard<std::mutex> lock(lru_mu_);
  return condemned_.size();
}

std::uint64_t env_cache_budget() {
  const char* env = std::getenv("DRBML_CACHE_BUDGET");
  if (env == nullptr) return 0;
  const auto v = parse_int(env);
  if (!v.has_value() || *v < 0) return 0;
  return static_cast<std::uint64_t>(*v);
}

// ----------------------------------------------------- snapshot persistence
//
// Format ("drbml-cache v1"): a header line, then one record per entry.
//   T <key-hex16> <int>\n                       token count
//   A <key-hex16> <nbytes>\n<nbytes raw>\n      AST text
//   D <key-hex16> <nbytes>\n<nbytes raw>\n      dependence-graph text
//   L <key-hex16> <nbytes>\n<nbytes raw>\n      lint-findings text
// Payloads are length-prefixed so arbitrary program text round-trips.
// Any deviation -- bad header, unknown tag, short payload, trailing
// garbage -- marks the whole file corrupt: nothing is seeded and
// `cache.corrupt` counts the rejection.

namespace {

constexpr const char* kSnapshotHeader = "drbml-cache v1";

void append_text_record(std::string& out, char tag, std::uint64_t key,
                        const std::string& text) {
  char head[64];
  std::snprintf(head, sizeof(head), "%c %016" PRIx64 " %zu\n", tag, key,
                text.size());
  out += head;
  out += text;
  out += '\n';
}

std::size_t reject_corrupt(const std::string& path, const char* why) {
  obs::metrics().counter(obs::kCacheCorrupt).add();
  std::fprintf(stderr, "warning: cache snapshot %s ignored (%s)\n",
               path.c_str(), why);
  return 0;
}

}  // namespace

bool ArtifactCache::save_snapshot(const std::string& path) const {
  std::string out = kSnapshotHeader;
  out += '\n';
  std::uint64_t written = 0;
  tokens_.for_each([&](std::uint64_t key, const int& v) {
    char line[64];
    std::snprintf(line, sizeof(line), "T %016" PRIx64 " %d\n", key, v);
    out += line;
    ++written;
  });
  asts_.for_each([&](std::uint64_t key, const std::string& v) {
    append_text_record(out, 'A', key, v);
    ++written;
  });
  depgraphs_.for_each([&](std::uint64_t key, const std::string& v) {
    append_text_record(out, 'D', key, v);
    ++written;
  });
  lint_texts_.for_each([&](std::uint64_t key, const std::string& v) {
    append_text_record(out, 'L', key, v);
    ++written;
  });
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  if (!file) return false;
  obs::metrics().counter(obs::kCacheSnapshotSaved).add(written);
  return true;
}

std::size_t ArtifactCache::load_snapshot(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return reject_corrupt(path, "cannot open");
  std::ostringstream buf;
  buf << file.rdbuf();
  if (!file && !file.eof()) return reject_corrupt(path, "read error");
  const std::string text = buf.str();

  std::size_t pos = 0;
  const auto read_line = [&](std::string& line) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) return false;
    line.assign(text, pos, nl - pos);
    pos = nl + 1;
    return true;
  };

  std::string line;
  if (!read_line(line) || line != kSnapshotHeader) {
    return reject_corrupt(path, "bad header");
  }

  // Parse fully before seeding anything: a corrupt tail must not leave
  // the cache half-seeded.
  struct TextRecord {
    char tag;
    std::uint64_t key;
    std::string payload;
  };
  std::vector<std::pair<std::uint64_t, int>> token_records;
  std::vector<TextRecord> text_records;
  while (pos < text.size()) {
    if (!read_line(line)) return reject_corrupt(path, "truncated record");
    char tag = 0;
    std::uint64_t key = 0;
    if (line.size() < 20 || line[1] != ' ' ||
        std::sscanf(line.c_str(), "%c %" SCNx64, &tag, &key) != 2) {
      return reject_corrupt(path, "malformed record");
    }
    const std::size_t field = line.find(' ', 2);
    if (field == std::string::npos || field + 1 >= line.size()) {
      return reject_corrupt(path, "malformed record");
    }
    const std::string rest = line.substr(field + 1);
    if (tag == 'T') {
      int count = 0;
      if (std::sscanf(rest.c_str(), "%d", &count) != 1) {
        return reject_corrupt(path, "malformed token count");
      }
      token_records.emplace_back(key, count);
      continue;
    }
    if (tag != 'A' && tag != 'D' && tag != 'L') {
      return reject_corrupt(path, "unknown record tag");
    }
    std::size_t nbytes = 0;
    if (std::sscanf(rest.c_str(), "%zu", &nbytes) != 1) {
      return reject_corrupt(path, "malformed payload length");
    }
    if (pos + nbytes + 1 > text.size() || text[pos + nbytes] != '\n') {
      return reject_corrupt(path, "short payload");
    }
    text_records.push_back({tag, key, text.substr(pos, nbytes)});
    pos += nbytes + 1;
  }

  std::size_t loaded = 0;
  for (const auto& [key, count] : token_records) {
    if (tokens_.seed(key, count)) {
      ++loaded;
      touch(Kind::Tokens, key, 16);
    }
  }
  for (auto& r : text_records) {
    // Seeded entries enter the LRU like any computed entry, so a byte
    // budget applies to snapshot warmth too (oldest seeds evict first).
    const std::uint64_t bytes = cost_string(r.payload);
    switch (r.tag) {
      case 'A':
        if (asts_.seed(r.key, std::move(r.payload))) {
          ++loaded;
          touch(Kind::Ast, r.key, bytes);
        }
        break;
      case 'D':
        if (depgraphs_.seed(r.key, std::move(r.payload))) {
          ++loaded;
          touch(Kind::Depgraph, r.key, bytes);
        }
        break;
      default:
        if (lint_texts_.seed(r.key, std::move(r.payload))) {
          ++loaded;
          touch(Kind::LintText, r.key, bytes);
        }
        break;
    }
  }
  obs::metrics().counter(obs::kCacheSnapshotLoaded).add(loaded);
  return loaded;
}

ArtifactCache& artifact_cache() {
  static ArtifactCache cache;
  return cache;
}

}  // namespace drbml::eval
