#include "eval/artifact_cache.hpp"

#include "analysis/depgraph.hpp"
#include "llm/model.hpp"
#include "llm/tokenizer.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "support/hash.hpp"

namespace drbml::eval {

namespace {

std::uint64_t hash_static_options(const analysis::StaticDetectorOptions& o) {
  std::uint64_t bits = 0;
  bits = bits << 1 | static_cast<std::uint64_t>(o.collect.track_call_effects);
  bits = bits << 1 | static_cast<std::uint64_t>(o.depend.conservative_nonaffine);
  bits = bits << 1 | static_cast<std::uint64_t>(o.model_locks);
  bits = bits << 1 | static_cast<std::uint64_t>(o.model_depend_clauses);
  bits = bits << 1 | static_cast<std::uint64_t>(o.model_ordered);
  return hash_combine(bits, static_cast<std::uint64_t>(o.max_pairs));
}

std::uint64_t hash_dynamic_options(const runtime::DynamicDetectorOptions& o) {
  std::uint64_t h = hash_combine(
      static_cast<std::uint64_t>(o.run.num_threads),
      hash_combine(o.run.seed,
                   static_cast<std::uint64_t>(o.run.preempt_every)));
  h = hash_combine(h, o.run.step_limit);
  h = hash_combine(h, static_cast<std::uint64_t>(o.run.max_pairs));
  for (std::uint64_t seed : o.schedule_seeds) h = hash_combine(h, seed);
  return h;
}

std::uint64_t hash_repair_options(const repair::RepairOptions& o) {
  std::uint64_t h = hash_combine(static_cast<std::uint64_t>(o.strategy),
                                 static_cast<std::uint64_t>(o.max_candidates));
  h = hash_combine(h, hash_static_options(o.static_opts));
  return hash_combine(h, hash_dynamic_options(o.dynamic_opts));
}

}  // namespace

int ArtifactCache::token_count(const std::string& code) {
  return tokens_.get_or_compute(fnv1a64(code), [&] {
    llm::SimpleTokenizer tok;
    return tok.count_tokens(code);
  });
}

const std::string& ArtifactCache::ast_text(const std::string& code) {
  return asts_.get_or_compute(fnv1a64(code), [&] {
    minic::Program prog = minic::parse_program(code);
    return minic::unit_to_string(*prog.unit);
  });
}

const std::string& ArtifactCache::depgraph_text(const std::string& code) {
  return depgraphs_.get_or_compute(fnv1a64(code), [&] {
    return analysis::build_dependence_graph(code).to_text();
  });
}

const llm::ProgramFeatures& ArtifactCache::features(const std::string& code) {
  return llm::cached_features(code);
}

const analysis::RaceReport& ArtifactCache::static_report(
    const std::string& code, const analysis::StaticDetectorOptions& opts) {
  const std::uint64_t key =
      hash_combine(fnv1a64(code), hash_static_options(opts));
  return static_reports_.get_or_compute(key, [&] {
    analysis::StaticRaceDetector detector(opts);
    return detector.analyze_source(code);
  });
}

const analysis::RaceReport& ArtifactCache::dynamic_report(
    const std::string& code, const runtime::DynamicDetectorOptions& opts) {
  const std::uint64_t key =
      hash_combine(fnv1a64(code), hash_dynamic_options(opts));
  return dynamic_reports_.get_or_compute(key, [&] {
    runtime::DynamicRaceDetector detector(opts);
    return detector.analyze_source(code);
  });
}

const repair::RepairResult& ArtifactCache::repair_result(
    const std::string& code, const repair::RepairOptions& opts) {
  const std::uint64_t key =
      hash_combine(fnv1a64(code), hash_repair_options(opts));
  return repair_results_.get_or_compute(
      key, [&] { return repair::repair_source(code, opts); });
}

const lint::LintReport& ArtifactCache::lint_report(const std::string& code) {
  // Default LintOptions only, so the code hash alone is a sound key.
  return lint_reports_.get_or_compute(fnv1a64(code), [&] {
    const lint::Linter linter;
    return linter.lint_source(code);
  });
}

const std::string& ArtifactCache::lint_text(const std::string& code) {
  return lint_texts_.get_or_compute(fnv1a64(code), [&] {
    std::string out;
    try {
      for (const auto& d : lint_report(code).diagnostics) {
        out += lint::to_text_line(d) + "\n";
      }
    } catch (const Error& e) {
      return std::string("note: linter unavailable: ") + e.what() + "\n";
    }
    if (out.empty()) out = "(no findings)\n";
    return out;
  });
}

std::size_t ArtifactCache::size() const {
  return tokens_.size() + asts_.size() + depgraphs_.size() +
         static_reports_.size() + dynamic_reports_.size() +
         lint_reports_.size() + repair_results_.size() + lint_texts_.size();
}

void ArtifactCache::clear() {
  tokens_.clear();
  asts_.clear();
  depgraphs_.clear();
  static_reports_.clear();
  dynamic_reports_.clear();
  lint_reports_.clear();
  repair_results_.clear();
  lint_texts_.clear();
}

ArtifactCache& artifact_cache() {
  static ArtifactCache cache;
  return cache;
}

}  // namespace drbml::eval
