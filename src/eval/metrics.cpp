#include "eval/metrics.hpp"

#include <cmath>

namespace drbml::eval {

Stats Stats::of(const std::vector<double>& xs) {
  Stats s;
  if (xs.empty()) return s;
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.avg = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.avg) * (x - s.avg);
  s.sd = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

}  // namespace drbml::eval
