// Natural-language output processing (paper Section 4.5).
//
// LLM replies arrive as prose, optionally with an embedded JSON block.
// Parsing first looks for a leading or whole-word yes/no verdict, then for
// a JSON object with the Listing-5 keys; when the model ignored the
// requested format, a regular-expression-style fallback scrapes
// "variable 'x' at line N" phrases.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace drbml::eval {

/// Extracts the yes/no verdict; nullopt if no verdict word is found.
[[nodiscard]] std::optional<bool> parse_detection(const std::string& response);

struct ParsedPair {
  std::vector<std::string> names;
  std::vector<int> lines;
  std::vector<std::string> ops;  // "w" / "r"
};

struct ParsedVarId {
  std::optional<bool> verdict;
  std::vector<ParsedPair> pairs;
  bool structured = false;  // pairs came from a JSON block
};

[[nodiscard]] ParsedVarId parse_varid(const std::string& response);

}  // namespace drbml::eval
