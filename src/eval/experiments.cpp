#include "eval/experiments.hpp"

#include <algorithm>

#include <map>

#include "analysis/depgraph.hpp"
#include "analysis/race.hpp"
#include "dataset/folds.hpp"
#include "drb/corpus.hpp"
#include "drb/synth.hpp"
#include "eval/artifact_cache.hpp"
#include "llm/finetune.hpp"
#include "llm/tokenizer.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "obs/catalog.hpp"
#include "runtime/dynamic.hpp"
#include "support/parallel.hpp"

namespace drbml::eval {

using dataset::Entry;
using llm::ChatModel;

ConfusionMatrix fold_outcomes(const std::vector<Outcome>& outcomes) {
  ConfusionMatrix cm;
  for (const Outcome& o : outcomes) cm.add(o.first, o.second);
  return cm;
}

std::vector<const Entry*> token_filtered_subset(int token_limit) {
  ArtifactCache& cache = artifact_cache();
  std::vector<const Entry*> out;
  for (const Entry& e : dataset::dataset()) {
    if (cache.token_count(e.trimmed_code) < token_limit) {
      out.push_back(&e);
    }
  }
  return out;
}

ConfusionMatrix run_detection(const ChatModel& model, prompts::Style style,
                              const std::vector<const Entry*>& subset,
                              const ExperimentOptions& opts) {
  return fold_outcomes(
      support::parallel_map(opts.jobs, subset, [&](const Entry* e) {
        const prompts::Chat chat = prompts::detection_chat(style, e->trimmed_code);
        const llm::Reply reply = model.chat(chat);
        const std::optional<bool> verdict = parse_detection(reply.text);
        // Unparseable output counts as a negative prediction (the paper
        // transformed outputs into labels; silence is "no detection").
        return Outcome{verdict.value_or(false), e->data_race == 1};
      }));
}

ConfusionMatrix run_traditional_tool(const std::vector<const Entry*>& subset,
                                     const ExperimentOptions& opts) {
  // Legacy-tool configuration: conservative subscript reasoning, no
  // modelling of locks / depend clauses / ordered regions (capabilities
  // production tools acquired slowly), unioned with the dynamic detector.
  analysis::StaticDetectorOptions legacy;
  legacy.model_locks = false;
  legacy.model_depend_clauses = false;
  legacy.model_ordered = false;
  legacy.depend.conservative_nonaffine = true;

  runtime::DynamicDetectorOptions dyn_opts;
  dyn_opts.schedule_seeds = {1, 2};

  ArtifactCache& cache = artifact_cache();
  return fold_outcomes(
      support::parallel_map(opts.jobs, subset, [&](const Entry* e) {
        bool flagged = false;
        try {
          flagged = cache.static_report(e->trimmed_code, legacy).race_detected;
        } catch (const Error&) {
          flagged = false;
        }
        if (!flagged) {
          // A program the dynamic tool cannot parse or execute yields no
          // observed race: count it as a negative, don't abort the table.
          try {
            flagged =
                cache.dynamic_report(e->trimmed_code, dyn_opts).race_detected;
          } catch (const Error&) {
            flagged = false;
          }
        }
        return Outcome{flagged, e->data_race == 1};
      }));
}

ConfusionMatrix run_lint_tool(const std::vector<const Entry*>& subset,
                              const ExperimentOptions& opts) {
  ArtifactCache& cache = artifact_cache();
  return fold_outcomes(
      support::parallel_map(opts.jobs, subset, [&](const Entry* e) {
        bool flagged = false;
        try {
          flagged = cache.lint_report(e->trimmed_code).race.race_detected;
        } catch (const Error&) {
          flagged = false;  // unparseable: no finding, count as negative
        }
        return Outcome{flagged, e->data_race == 1};
      }));
}

ConfusionMatrix run_detection_modal(
    const ChatModel& model, prompts::Style style, prompts::Modality modality,
    const std::vector<const Entry*>& subset, const ExperimentOptions& opts) {
  ArtifactCache& cache = artifact_cache();
  return fold_outcomes(
      support::parallel_map(opts.jobs, subset, [&](const Entry* e) {
        std::string aux;
        if (modality == prompts::Modality::Ast) {
          aux = cache.ast_text(e->trimmed_code);
        } else if (modality == prompts::Modality::DepGraph) {
          aux = cache.depgraph_text(e->trimmed_code);
        } else if (modality == prompts::Modality::Lint) {
          aux = cache.lint_text(e->trimmed_code);
        } else if (modality == prompts::Modality::Evidence) {
          aux = cache.evidence_text(e->trimmed_code);
        }
        const prompts::Chat chat =
            prompts::modal_detection_chat(style, modality, e->trimmed_code, aux);
        const llm::Reply reply = model.chat(chat);
        return Outcome{parse_detection(reply.text).value_or(false),
                       e->data_race == 1};
      }));
}

namespace {

std::string normalize_spelling(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c != ' ' && c != '\t') out.push_back(c);
  }
  return out;
}

bool pair_matches_label(const ParsedPair& pair,
                        const dataset::VarPairLabel& label) {
  if (pair.names.size() != 2 || label.name.size() != 2) return false;
  auto side_match = [&](std::size_t pi, std::size_t li) {
    if (normalize_spelling(pair.names[pi]) !=
        normalize_spelling(label.name[li])) {
      return false;
    }
    if (pi < pair.lines.size() && li < label.line.size() &&
        pair.lines[pi] != label.line[li]) {
      return false;
    }
    if (pi < pair.ops.size() && li < label.operation.size() &&
        pair.ops[pi] != label.operation[li]) {
      return false;
    }
    return true;
  };
  return (side_match(0, 0) && side_match(1, 1)) ||
         (side_match(0, 1) && side_match(1, 0));
}

/// One var-id outcome (shared by run_varid and the CV loop): TP requires
/// correct pair information for a racy program; TN requires a clean "no"
/// without extraneous pair info.
Outcome varid_outcome(const ChatModel& model, const Entry& e) {
  const prompts::Chat chat = prompts::varid_chat(e.trimmed_code);
  const llm::Reply reply = model.chat(chat);
  const ParsedVarId parsed = parse_varid(reply.text);
  if (e.data_race == 1) {
    return Outcome{varid_matches(parsed, e), true};
  }
  const bool clean_no = !parsed.verdict.value_or(true) && parsed.pairs.empty();
  return Outcome{!clean_no, false};
}

}  // namespace

bool varid_matches(const ParsedVarId& parsed, const Entry& entry) {
  for (const auto& pair : parsed.pairs) {
    for (const auto& label : entry.var_pairs) {
      if (pair_matches_label(pair, label)) return true;
    }
  }
  return false;
}

ConfusionMatrix run_varid(const ChatModel& model,
                          const std::vector<const Entry*>& subset,
                          const ExperimentOptions& opts) {
  return fold_outcomes(
      support::parallel_map(opts.jobs, subset, [&](const Entry* e) {
        return varid_outcome(model, *e);
      }));
}

ConfusionMatrix run_lint_varid(const std::vector<const Entry*>& subset,
                               const ExperimentOptions& opts) {
  ArtifactCache& cache = artifact_cache();
  return fold_outcomes(
      support::parallel_map(opts.jobs, subset, [&](const Entry* e) {
        // Shape the linter's race evidence like a parsed LLM answer so
        // the exact Table 5 matching rules apply to both.
        ParsedVarId parsed;
        try {
          const lint::LintReport& report = cache.lint_report(e->trimmed_code);
          parsed.verdict = report.race.race_detected;
          for (const auto& rp : report.race.pairs) {
            ParsedPair pair;
            pair.names = {rp.first.expr_text, rp.second.expr_text};
            pair.lines = {rp.first.loc.line, rp.second.loc.line};
            pair.ops = {std::string(1, rp.first.op),
                        std::string(1, rp.second.op)};
            parsed.pairs.push_back(std::move(pair));
          }
        } catch (const Error&) {
          parsed.verdict = false;
        }
        if (e->data_race == 1) {
          return Outcome{varid_matches(parsed, *e), true};
        }
        const bool clean_no =
            !parsed.verdict.value_or(true) && parsed.pairs.empty();
        return Outcome{!clean_no, false};
      }));
}

CvResult run_cv(const llm::Persona& persona, Objective objective,
                bool finetuned, int k, std::uint64_t seed,
                int synthetic_augmentation, const ExperimentOptions& opts) {
  const std::vector<const Entry*> subset = token_filtered_subset();
  std::vector<bool> labels;
  labels.reserve(subset.size());
  for (const Entry* e : subset) labels.push_back(e->data_race == 1);

  dataset::StratifiedKFold folds(k, seed);
  CvResult result;
  std::vector<double> recalls;
  std::vector<double> precisions;
  std::vector<double> f1s;

  for (const dataset::FoldSplit& fold : folds.split(labels)) {
    ChatModel model(persona);
    if (finetuned) {
      // Build training samples from the DRB-ML prompt-response pairs,
      // parsing labels back out of the responses (the honest path).
      // Training stays serial: sample order is part of the optimizer's
      // deterministic trajectory.
      std::vector<llm::TrainSample> train;
      train.reserve(fold.train_indices.size());
      for (int idx : fold.train_indices) {
        const Entry& e = *subset[static_cast<std::size_t>(idx)];
        const dataset::PromptResponse pr =
            objective == Objective::Detection ? make_detection_pair(e)
                                              : make_varid_pair(e);
        llm::TrainSample sample;
        sample.code = llm::extract_code_from_prompt(pr.prompt);
        sample.label = parse_detection(pr.response).value_or(false);
        train.push_back(std::move(sample));
      }
      if (synthetic_augmentation > 0) {
        drb::SynthConfig synth_config;
        synth_config.count = synthetic_augmentation;
        synth_config.seed = seed + 17;
        for (const drb::SynthEntry& s : drb::synthesize(synth_config)) {
          llm::TrainSample sample;
          sample.code = s.code;
          sample.label = s.race;
          train.push_back(std::move(sample));
        }
      }
      const llm::FinetuneConfig config = persona.key == "starchat"
                                             ? llm::starchat_finetune_config()
                                             : llm::llama2_finetune_config();
      auto adapter = std::make_shared<llm::Adapter>(llm::finetune_detection(
          model, prompts::Style::P1, train, config));
      model.set_adapter(std::move(adapter));
      if (objective == Objective::VarId) {
        model.set_varid_boost(/*fidelity_delta=*/0.04,
                              /*selection_delta=*/0.005);
      }
    }

    // Fan the fold's test entries out over the pool; per-entry outcomes
    // are keyed by content, so evaluation order cannot affect them.
    const ConfusionMatrix cm = fold_outcomes(support::parallel_map(
        opts.jobs, fold.test_indices, [&](const int& idx) {
          const Entry& e = *subset[static_cast<std::size_t>(idx)];
          if (objective == Objective::Detection) {
            const prompts::Chat chat =
                prompts::detection_chat(prompts::Style::P1, e.trimmed_code);
            const llm::Reply reply = model.chat(chat);
            return Outcome{parse_detection(reply.text).value_or(false),
                           e.data_race == 1};
          }
          return varid_outcome(model, e);
        }));
    result.folds.push_back(cm);
    recalls.push_back(cm.recall());
    precisions.push_back(cm.precision());
    f1s.push_back(cm.f1());
  }

  result.recall = Stats::of(recalls);
  result.precision = Stats::of(precisions);
  result.f1 = Stats::of(f1s);
  return result;
}

// ------------------------------------------------------------- table rows

std::vector<DetectionRow> table2_rows(const ExperimentOptions& opts) {
  obs::Span span(obs::kSpanExpRun, "table2");
  const auto subset = token_filtered_subset();
  ChatModel gpt35(llm::gpt35_persona());
  std::vector<DetectionRow> rows;
  rows.push_back({"GPT-3.5-turbo", "BP1",
                  run_detection(gpt35, prompts::Style::BP1, subset, opts)});
  rows.push_back({"GPT-3.5-turbo", "BP2",
                  run_detection(gpt35, prompts::Style::BP2, subset, opts)});
  return rows;
}

std::vector<DetectionRow> table3_rows(const ExperimentOptions& opts) {
  obs::Span span(obs::kSpanExpRun, "table3");
  const auto subset = token_filtered_subset();
  std::vector<DetectionRow> rows;
  rows.push_back({"Ins", "N/A", run_traditional_tool(subset, opts)});
  rows.push_back({"Lint", "N/A", run_lint_tool(subset, opts)});
  for (const llm::Persona& persona : llm::all_personas()) {
    ChatModel model(persona);
    for (prompts::Style style :
         {prompts::Style::P1, prompts::Style::P2, prompts::Style::P3}) {
      rows.push_back({persona.name, prompts::style_name(style),
                      run_detection(model, style, subset, opts)});
    }
  }
  return rows;
}

std::vector<CvRow> table4_rows(const ExperimentOptions& opts) {
  obs::Span span(obs::kSpanExpRun, "table4");
  std::vector<CvRow> rows;
  for (const llm::Persona& persona :
       {llm::starchat_persona(), llm::llama2_persona()}) {
    const CvResult base =
        run_cv(persona, Objective::Detection, false, 5, 2023, 0, opts);
    rows.push_back({persona.name, base.recall, base.precision, base.f1});
    const CvResult ft =
        run_cv(persona, Objective::Detection, true, 5, 2023, 0, opts);
    rows.push_back({persona.name + " (FT)", ft.recall, ft.precision, ft.f1});
  }
  return rows;
}

std::vector<DetectionRow> table5_rows(const ExperimentOptions& opts) {
  obs::Span span(obs::kSpanExpRun, "table5");
  const auto subset = token_filtered_subset();
  std::vector<DetectionRow> rows;
  rows.push_back({"Linter", "N/A", run_lint_varid(subset, opts)});
  for (const llm::Persona& persona : llm::all_personas()) {
    ChatModel model(persona);
    rows.push_back({persona.name, "BP2", run_varid(model, subset, opts)});
  }
  return rows;
}

std::vector<CvRow> table6_rows(const ExperimentOptions& opts) {
  obs::Span span(obs::kSpanExpRun, "table6");
  std::vector<CvRow> rows;
  for (const llm::Persona& persona :
       {llm::starchat_persona(), llm::llama2_persona()}) {
    const CvResult base =
        run_cv(persona, Objective::VarId, false, 5, 2023, 0, opts);
    rows.push_back({persona.name, base.recall, base.precision, base.f1});
    const CvResult ft =
        run_cv(persona, Objective::VarId, true, 5, 2023, 0, opts);
    rows.push_back({persona.name + " (FT)", ft.recall, ft.precision, ft.f1});
  }
  return rows;
}

double RepairRow::fix_rate() const noexcept {
  return entries == 0 ? 0.0 : static_cast<double>(fixed) / entries;
}

double RepairRow::verified_rate() const noexcept {
  return entries == 0 ? 0.0 : static_cast<double>(verified) / entries;
}

double RepairRow::patches_per_fix() const noexcept {
  return fixed == 0 ? 0.0 : static_cast<double>(attempts_on_fixed) / fixed;
}

std::vector<RepairRow> table7_rows(const repair::RepairOptions& ropts,
                                   const ExperimentOptions& opts) {
  obs::Span span(obs::kSpanExpRun, "table7");
  std::vector<const drb::CorpusEntry*> racy;
  for (const drb::CorpusEntry& e : drb::corpus()) {
    if (e.race) racy.push_back(&e);
  }

  ArtifactCache& cache = artifact_cache();
  const std::vector<const repair::RepairResult*> results =
      support::parallel_map(opts.jobs, racy, [&](const drb::CorpusEntry* e) {
        return &cache.repair_result(drb::drb_code(*e), ropts);
      });

  // Fold per family in input order; std::map keeps families name-sorted.
  std::map<std::string, RepairRow> by_family;
  RepairRow total;
  total.family = "(all)";
  for (std::size_t i = 0; i < racy.size(); ++i) {
    RepairRow& row = by_family[racy[i]->pattern];
    row.family = racy[i]->pattern;
    const repair::RepairResult& res = *results[i];
    for (RepairRow* r : {&row, &total}) {
      ++r->entries;
      switch (res.status) {
        case repair::RepairStatus::Fixed:
          ++r->fixed;
          if (res.equivalence_checked) ++r->verified;
          r->attempts_on_fixed += res.attempts;
          break;
        case repair::RepairStatus::NoCandidate:
          ++r->no_candidate;
          break;
        case repair::RepairStatus::Rejected:
          ++r->rejected;
          break;
        case repair::RepairStatus::NoRaceDetected:
          // Detector miss on a race-labeled entry: counted as unfixed but
          // not as a candidate-generation failure.
          break;
        case repair::RepairStatus::Error:
          ++r->errors;
          break;
      }
    }
  }

  std::vector<RepairRow> rows;
  rows.reserve(by_family.size() + 1);
  for (auto& [_, row] : by_family) rows.push_back(std::move(row));
  rows.push_back(std::move(total));
  return rows;
}

double ExplorationRow::races_per_schedule() const noexcept {
  return schedules == 0 ? 0.0
                        : static_cast<double>(detected) /
                              static_cast<double>(schedules);
}

double ExplorationRow::avg_schedules_to_first_race() const noexcept {
  return detected == 0 ? 0.0
                       : static_cast<double>(first_race_schedules_) / detected;
}

std::vector<ExplorationRow> exploration_rows(
    const explore::ExploreOptions& base, const ExperimentOptions& opts) {
  obs::Span span(obs::kSpanExpRun, "exploration");
  std::vector<const drb::CorpusEntry*> racy;
  for (const drb::CorpusEntry& e : drb::corpus()) {
    if (e.race) racy.push_back(&e);
  }

  ArtifactCache& cache = artifact_cache();
  const explore::Strategy strategies[] = {explore::Strategy::Uniform,
                                          explore::Strategy::Pct};
  std::vector<ExplorationRow> rows;
  // detected[s][i]: strategy s found entry i's race within budget.
  std::vector<std::vector<bool>> detected;
  for (explore::Strategy strategy : strategies) {
    explore::ExploreOptions eopts = base;
    eopts.strategy = strategy;
    const std::vector<const explore::ExploreResult*> results =
        support::parallel_map(
            opts.jobs, racy,
            [&](const drb::CorpusEntry* e) -> const explore::ExploreResult* {
              try {
                return &cache.explore_result(drb::drb_code(*e), eopts);
              } catch (const Error&) {
                return nullptr;  // unparseable/non-executable entry
              }
            });

    ExplorationRow row;
    row.strategy = explore::strategy_name(strategy);
    std::vector<bool> found(racy.size(), false);
    for (std::size_t i = 0; i < racy.size(); ++i) {
      ++row.entries;
      const explore::ExploreResult* r = results[i];
      if (r == nullptr) {
        ++row.errors;
        continue;
      }
      row.schedules += static_cast<std::uint64_t>(r->schedules_run);
      if (r->stopped_on_plateau) ++row.plateau_stops;
      if (r->race_detected) {
        found[i] = true;
        ++row.detected;
        row.first_race_schedules_ +=
            static_cast<std::uint64_t>(r->first_race_schedule) + 1;
        row.original_decisions += r->original_decisions;
        row.witness_decisions += r->witness_decisions;
        if (!r->witness.empty()) ++row.witnesses;
      }
    }
    detected.push_back(std::move(found));
    rows.push_back(std::move(row));
  }

  for (std::size_t s = 0; s < rows.size(); ++s) {
    const std::vector<bool>& mine = detected[s];
    const std::vector<bool>& other = detected[1 - s];
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (mine[i] && !other[i]) ++rows[s].only_here;
    }
  }
  return rows;
}

}  // namespace drbml::eval
