// Memoized per-entry analysis artifacts, shared across experiments.
//
// Every experiment in the harness re-derives the same handful of
// artifacts from the same ~198 DRB-ML programs: token counts for the
// context-window filter, pretty-printed ASTs and serialized dependence
// graphs for the modal prompts, feature vectors for the personas, and
// static/dynamic race evidence for the traditional-tool baseline. The
// ArtifactCache computes each artifact once per (configuration, program)
// and shares it read-only across all experiments and worker threads.
//
// Invariants for adding a new artifact:
//   * the compute function must be pure in the cache key -- the key must
//     cover the code text AND every option that can change the result
//     (see static_report's options hash);
//   * the cached value is shared read-only across threads -- never
//     mutate a returned reference;
//   * computes may run concurrently for different keys, so they must not
//     touch unsynchronized global state.
#pragma once

#include <string>

#include "analysis/race.hpp"
#include "analysis/report.hpp"
#include "explore/explore.hpp"
#include "lint/lint.hpp"
#include "llm/features.hpp"
#include "repair/repair.hpp"
#include "runtime/dynamic.hpp"
#include "support/parallel.hpp"

namespace drbml::eval {

class ArtifactCache {
 public:
  /// Model-token count of `code` (SimpleTokenizer).
  int token_count(const std::string& code);

  /// Pretty-printed AST of `code`. Throws Error on unparseable input
  /// (same contract as minic::parse_program).
  const std::string& ast_text(const std::string& code);

  /// Serialized dependence graph of `code` (DependenceGraph::to_text).
  const std::string& depgraph_text(const std::string& code);

  /// Persona feature vector (delegates to the llm-level feature cache,
  /// which is itself memoized and thread-safe).
  const llm::ProgramFeatures& features(const std::string& code);

  /// Static race report for `code` under `opts`. The key covers every
  /// StaticDetectorOptions field that affects the verdict.
  const analysis::RaceReport& static_report(
      const std::string& code, const analysis::StaticDetectorOptions& opts);

  /// Dynamic (vector-clock) race report for `code` under `opts`. The key
  /// covers the schedule seeds and the RunOptions fields. Throws Error on
  /// unparseable or non-executable input (same contract as
  /// DynamicRaceDetector::analyze_source); failures are not cached.
  const analysis::RaceReport& dynamic_report(
      const std::string& code, const runtime::DynamicDetectorOptions& opts);

  /// Schedule-exploration outcome for `code` under `opts` (budgeted
  /// uniform/PCT schedule loop, coverage plateau cut, minimized witness).
  /// The key covers every ExploreOptions field, including the embedded
  /// RunOptions (and any replay trace it points at). Throws Error on
  /// unparseable input; failures are not cached.
  const explore::ExploreResult& explore_result(
      const std::string& code, const explore::ExploreOptions& opts);

  /// Linter report for `code` under the default LintOptions (all checks,
  /// default detector knobs). Throws Error on unparseable input; failures
  /// are not cached.
  const lint::LintReport& lint_report(const std::string& code);

  /// Verified repair outcome for `code` under `opts` (the full
  /// detect -> generate -> apply -> verify loop of repair_source). The key
  /// covers the strategy, the candidate cap, and both detector option
  /// sets. repair_source never throws, so every result is cacheable.
  const repair::RepairResult& repair_result(const std::string& code,
                                            const repair::RepairOptions& opts);

  /// Linter findings rendered one per line for prompt embedding
  /// ("(no findings)" when the linter is silent). Parse failures yield a
  /// one-line note instead of throwing, so prompt assembly never aborts.
  const std::string& lint_text(const std::string& code);

  /// Static race evidence chains rendered one per line for prompt
  /// embedding: every reported pair ("racy ...") and every discharged
  /// pair ("safe ... discharged by <rule>") under the default detector
  /// options. Parse failures yield a one-line note instead of throwing.
  const std::string& evidence_text(const std::string& code);

  /// Entries currently resident across all artifact kinds.
  [[nodiscard]] std::size_t size() const;

  /// Drops everything. Only safe while no experiment is running.
  void clear();

  /// Writes the plain-text artifact kinds (token counts, AST texts,
  /// dependence-graph texts, lint-findings texts) to `path` in the
  /// versioned "drbml-cache v1" format. Detector reports are not
  /// persisted: they are cheap relative to (de)serialization and their
  /// option hashing is an internal detail. Returns false on I/O failure.
  /// Each written entry increments `cache.snapshot.saved`.
  bool save_snapshot(const std::string& path) const;

  /// Seeds the cache from a snapshot written by save_snapshot; returns
  /// the number of entries loaded. An unreadable, truncated, or
  /// otherwise corrupt file is treated as a full miss (nothing is
  /// seeded, 0 is returned) and counted by the `cache.corrupt` metric --
  /// the structured warning that replaces the old silent swallow.
  std::size_t load_snapshot(const std::string& path);

 private:
  support::OnceMap<int> tokens_;
  support::OnceMap<std::string> asts_;
  support::OnceMap<std::string> depgraphs_;
  support::OnceMap<analysis::RaceReport> static_reports_;
  support::OnceMap<analysis::RaceReport> dynamic_reports_;
  support::OnceMap<explore::ExploreResult> explore_results_;
  support::OnceMap<lint::LintReport> lint_reports_;
  support::OnceMap<repair::RepairResult> repair_results_;
  support::OnceMap<std::string> lint_texts_;
  support::OnceMap<std::string> evidence_texts_;
};

/// The process-wide cache used by the experiment runners.
[[nodiscard]] ArtifactCache& artifact_cache();

}  // namespace drbml::eval
