// Memoized per-entry analysis artifacts, shared across experiments.
//
// Every experiment in the harness re-derives the same handful of
// artifacts from the same ~198 DRB-ML programs: token counts for the
// context-window filter, pretty-printed ASTs and serialized dependence
// graphs for the modal prompts, feature vectors for the personas, and
// static/dynamic race evidence for the traditional-tool baseline. The
// ArtifactCache computes each artifact once per (configuration, program)
// and shares it read-only across all experiments and worker threads.
//
// Invariants for adding a new artifact:
//   * the compute function must be pure in the cache key -- the key must
//     cover the code text AND every option that can change the result
//     (see static_report's options hash);
//   * the cached value is shared read-only across threads -- never
//     mutate a returned reference;
//   * computes may run concurrently for different keys, so they must not
//     touch unsynchronized global state.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/race.hpp"
#include "analysis/report.hpp"
#include "explore/explore.hpp"
#include "lint/lint.hpp"
#include "llm/features.hpp"
#include "repair/repair.hpp"
#include "runtime/dynamic.hpp"
#include "support/parallel.hpp"

namespace drbml::eval {

class ArtifactCache {
 public:
  /// Model-token count of `code` (SimpleTokenizer).
  int token_count(const std::string& code);

  /// Pretty-printed AST of `code`. Throws Error on unparseable input
  /// (same contract as minic::parse_program).
  const std::string& ast_text(const std::string& code);

  /// Serialized dependence graph of `code` (DependenceGraph::to_text).
  const std::string& depgraph_text(const std::string& code);

  /// Persona feature vector (delegates to the llm-level feature cache,
  /// which is itself memoized and thread-safe).
  const llm::ProgramFeatures& features(const std::string& code);

  /// Static race report for `code` under `opts`. The key covers every
  /// StaticDetectorOptions field that affects the verdict.
  const analysis::RaceReport& static_report(
      const std::string& code, const analysis::StaticDetectorOptions& opts);

  /// Dynamic (vector-clock) race report for `code` under `opts`. The key
  /// covers the schedule seeds and the RunOptions fields. Throws Error on
  /// unparseable or non-executable input (same contract as
  /// DynamicRaceDetector::analyze_source); failures are not cached.
  const analysis::RaceReport& dynamic_report(
      const std::string& code, const runtime::DynamicDetectorOptions& opts);

  /// Schedule-exploration outcome for `code` under `opts` (budgeted
  /// uniform/PCT schedule loop, coverage plateau cut, minimized witness).
  /// The key covers every ExploreOptions field, including the embedded
  /// RunOptions (and any replay trace it points at). Throws Error on
  /// unparseable input; failures are not cached.
  const explore::ExploreResult& explore_result(
      const std::string& code, const explore::ExploreOptions& opts);

  /// Linter report for `code` under the default LintOptions (all checks,
  /// default detector knobs). Throws Error on unparseable input; failures
  /// are not cached.
  const lint::LintReport& lint_report(const std::string& code);

  /// Verified repair outcome for `code` under `opts` (the full
  /// detect -> generate -> apply -> verify loop of repair_source). The key
  /// covers the strategy, the candidate cap, and both detector option
  /// sets. repair_source never throws, so every result is cacheable.
  const repair::RepairResult& repair_result(const std::string& code,
                                            const repair::RepairOptions& opts);

  /// Linter findings rendered one per line for prompt embedding
  /// ("(no findings)" when the linter is silent). Parse failures yield a
  /// one-line note instead of throwing, so prompt assembly never aborts.
  const std::string& lint_text(const std::string& code);

  /// Static race evidence chains rendered one per line for prompt
  /// embedding: every reported pair ("racy ...") and every discharged
  /// pair ("safe ... discharged by <rule>") under the default detector
  /// options. Parse failures yield a one-line note instead of throwing.
  const std::string& evidence_text(const std::string& code);

  /// Entries currently resident across all artifact kinds.
  [[nodiscard]] std::size_t size() const;

  // ------------------------------------------------------ LRU byte budget
  //
  // With a budget set (`--cache-budget` / DRBML_CACHE_BUDGET), every
  // successful probe touches the entry in an LRU list tagged with an
  // approximate byte cost; when the resident total exceeds the budget,
  // least-recently-used entries are *evicted* -- removed from the index
  // so later probes recompute -- but their storage is only *reclaimed*
  // once the caller says no outstanding reference can still point at it
  // (OnceMap hands out references, so freeing eagerly would dangle).
  // Single-threaded callers reclaim_evicted(UINT64_MAX) whenever
  // convenient; the serve daemon reclaims with the eviction tick of its
  // oldest in-flight request. With the default budget of 0 nothing is
  // ever evicted and the cache behaves exactly as before.

  /// Sets the byte budget (0 = unlimited). Lowering it below the current
  /// resident total evicts immediately.
  void set_byte_budget(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t byte_budget() const;

  /// Approximate bytes of all resident (non-evicted) entries.
  [[nodiscard]] std::uint64_t resident_bytes() const;

  /// Monotonic counter stamped onto evictions; a caller that records
  /// current_tick() before using returned references may later free all
  /// evictions stamped strictly before that tick.
  [[nodiscard]] std::uint64_t current_tick() const;

  /// Frees evicted entries whose eviction tick is < `min_active_tick`
  /// (UINT64_MAX frees everything). Returns the number reclaimed.
  std::size_t reclaim_evicted(std::uint64_t min_active_tick);

  /// Evicted-but-unreclaimed entries (for tests and the stats verb).
  [[nodiscard]] std::size_t condemned_count() const;

  /// Drops everything. Only safe while no experiment is running.
  void clear();

  /// Writes the plain-text artifact kinds (token counts, AST texts,
  /// dependence-graph texts, lint-findings texts) to `path` in the
  /// versioned "drbml-cache v1" format. Detector reports are not
  /// persisted: they are cheap relative to (de)serialization and their
  /// option hashing is an internal detail. Returns false on I/O failure.
  /// Each written entry increments `cache.snapshot.saved`.
  bool save_snapshot(const std::string& path) const;

  /// Seeds the cache from a snapshot written by save_snapshot; returns
  /// the number of entries loaded. An unreadable, truncated, or
  /// otherwise corrupt file is treated as a full miss (nothing is
  /// seeded, 0 is returned) and counted by the `cache.corrupt` metric --
  /// the structured warning that replaces the old silent swallow.
  std::size_t load_snapshot(const std::string& path);

 private:
  /// Artifact kinds that participate in the LRU budget (features() is
  /// excluded: it delegates to the llm-level cache).
  enum class Kind {
    Tokens,
    Ast,
    Depgraph,
    Static,
    Dynamic,
    Explore,
    Lint,
    Repair,
    LintText,
    EvidenceText,
  };

  struct LruEntry {
    Kind kind;
    std::uint64_t key;
    std::uint64_t bytes;
  };
  struct Condemned {
    std::uint64_t tick;
    std::uint64_t bytes;
    std::shared_ptr<const void> handle;  // keeps evicted storage alive
  };

  /// Marks (kind, key, bytes) as most recently used and, if the budget
  /// is exceeded, evicts from the LRU tail.
  void touch(Kind kind, std::uint64_t key, std::uint64_t bytes);
  /// Must be called with lru_mu_ held.
  void evict_to_budget_locked();
  std::shared_ptr<const void> erase_kind(Kind kind, std::uint64_t key);

  support::OnceMap<int> tokens_;
  support::OnceMap<std::string> asts_;
  support::OnceMap<std::string> depgraphs_;
  support::OnceMap<analysis::RaceReport> static_reports_;
  support::OnceMap<analysis::RaceReport> dynamic_reports_;
  support::OnceMap<explore::ExploreResult> explore_results_;
  support::OnceMap<lint::LintReport> lint_reports_;
  support::OnceMap<repair::RepairResult> repair_results_;
  support::OnceMap<std::string> lint_texts_;
  support::OnceMap<std::string> evidence_texts_;

  mutable std::mutex lru_mu_;
  std::uint64_t budget_ = 0;  // bytes; 0 = unlimited
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t tick_ = 0;  // bumped per eviction
  std::list<LruEntry> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<LruEntry>::iterator> lru_index_;
  std::vector<Condemned> condemned_;
};

/// Cache byte budget from the DRBML_CACHE_BUDGET environment variable
/// (strict integer, bytes); 0 when unset or malformed.
[[nodiscard]] std::uint64_t env_cache_budget();

/// The process-wide cache used by the experiment runners.
[[nodiscard]] ArtifactCache& artifact_cache();

}  // namespace drbml::eval
