#include "eval/parse.hpp"

#include <cctype>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace drbml::eval {

namespace {

bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Finds the first whole-word occurrence of `word` (case-insensitive).
std::size_t find_word(const std::string& text, const std::string& word) {
  const std::string lower = to_lower(text);
  std::size_t pos = 0;
  while ((pos = lower.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !word_char(lower[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= lower.size() || !word_char(lower[end]);
    if (left_ok && right_ok) return pos;
    ++pos;
  }
  return std::string::npos;
}

/// Extracts the first balanced {...} block, if any.
std::optional<std::string> extract_json_block(const std::string& text) {
  const std::size_t open = text.find('{');
  if (open == std::string::npos) return std::nullopt;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') {
      --depth;
      if (depth == 0) return text.substr(open, i - open + 1);
    }
  }
  return std::nullopt;
}

std::string normalize_op(const std::string& op) {
  const std::string lower = to_lower(op);
  if (starts_with(lower, "w")) return "w";
  if (starts_with(lower, "r")) return "r";
  return lower;
}

/// Fallback: scrape "variable 'x' at line N" phrases from prose.
ParsedPair scrape_prose_pair(const std::string& text, bool& found) {
  ParsedPair pair;
  found = false;
  std::size_t pos = 0;
  while (pair.names.size() < 2) {
    const std::size_t var = text.find("variable '", pos);
    if (var == std::string::npos) break;
    const std::size_t name_start = var + 10;
    const std::size_t name_end = text.find('\'', name_start);
    if (name_end == std::string::npos) break;
    pair.names.push_back(text.substr(name_start, name_end - name_start));
    const std::size_t line_kw = text.find("line ", name_end);
    int line = 0;
    if (line_kw != std::string::npos) {
      std::size_t i = line_kw + 5;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
        line = line * 10 + (text[i] - '0');
        ++i;
      }
    }
    pair.lines.push_back(line);
    pos = name_end + 1;
  }
  // Operation words in order of appearance after the names.
  std::size_t op_pos = 0;
  while (pair.ops.size() < pair.names.size()) {
    const std::size_t w = find_word(text.substr(op_pos), "write");
    const std::size_t r = find_word(text.substr(op_pos), "read");
    if (w == std::string::npos && r == std::string::npos) break;
    if (r == std::string::npos || (w != std::string::npos && w < r)) {
      pair.ops.push_back("w");
      op_pos += w + 5;
    } else {
      pair.ops.push_back("r");
      op_pos += r + 4;
    }
  }
  found = pair.names.size() == 2;
  return pair;
}

}  // namespace

std::optional<bool> parse_detection(const std::string& response) {
  const std::size_t yes = find_word(response, "yes");
  const std::size_t no = find_word(response, "no");
  if (yes == std::string::npos && no == std::string::npos) {
    return std::nullopt;
  }
  if (yes == std::string::npos) return false;
  if (no == std::string::npos) return true;
  return yes < no;
}

ParsedVarId parse_varid(const std::string& response) {
  ParsedVarId out;
  out.verdict = parse_detection(response);

  if (auto block = extract_json_block(response)) {
    try {
      const json::Value v = json::parse(*block);
      const json::Object& obj = v.as_object();
      ParsedPair pair;
      if (const json::Value* names = obj.find("variable_names")) {
        for (const auto& n : names->as_array()) {
          pair.names.push_back(n.as_string());
        }
      }
      if (const json::Value* lines = obj.find("variable_locations")) {
        for (const auto& l : lines->as_array()) {
          pair.lines.push_back(static_cast<int>(l.as_int()));
        }
      }
      if (const json::Value* ops = obj.find("operation_types")) {
        for (const auto& o : ops->as_array()) {
          pair.ops.push_back(normalize_op(o.as_string()));
        }
      }
      if (pair.names.size() == 2) {
        out.pairs.push_back(std::move(pair));
        out.structured = true;
        if (const json::Value* dr = obj.find("data_race")) {
          if (dr->is_int()) out.verdict = dr->as_int() != 0;
        }
        return out;
      }
    } catch (const JsonError&) {
      // fall through to prose scraping
    }
  }

  bool found = false;
  ParsedPair pair = scrape_prose_pair(response, found);
  if (found) out.pairs.push_back(std::move(pair));
  return out;
}

}  // namespace drbml::eval
