#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <unordered_map>

#include "obs/catalog.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace drbml::obs {

const char* metric_kind_name(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    case MetricKind::Timer: return "timer";
  }
  return "?";
}

// --------------------------------------------------------------- clocks

std::uint64_t now_wall_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t now_cpu_ns() noexcept {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return static_cast<std::uint64_t>(std::clock()) *
         (1'000'000'000ULL / CLOCKS_PER_SEC);
}

int thread_id() noexcept {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ------------------------------------------------------------- histogram

void Histogram::observe(std::uint64_t v) noexcept {
  int i = 0;
  // Bucket i covers values <= 2^i - 1; the final bucket is the sink.
  while (i < kBuckets - 1 && v > bucket_bound(i)) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_bound(int i) noexcept {
  if (i >= kBuckets - 1) return UINT64_MAX;
  return (1ULL << i) - 1;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- registry

namespace {

struct MetricEntry {
  const MetricDesc* desc;
  // Exactly one of these is engaged, matching desc->kind.
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  Timer timer;
};

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // Stable storage: entries are never moved after registration.
  std::vector<std::unique_ptr<MetricEntry>> entries;
  std::unordered_map<std::string_view, MetricEntry*> by_name;

  MetricEntry& get(const MetricDesc& d, MetricKind kind) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = by_name.find(d.name);
    if (it == by_name.end()) {
      entries.push_back(std::make_unique<MetricEntry>());
      entries.back()->desc = &d;
      it = by_name.emplace(d.name, entries.back().get()).first;
    }
    if (it->second->desc->kind != kind) {
      throw Error(std::string("metric '") + d.name +
                  "' registered with a different kind");
    }
    return *it->second;
  }
};

namespace {

/// Writes `body` to `path` via a sibling temp file + rename, so readers
/// (and an interrupt landing mid-write) see either the old complete file
/// or the new complete file, never a truncated one.
bool write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// Exit-hook state lives outside the singletons so the atexit callbacks
// need no access to Impl internals.
std::mutex g_exit_mu;
std::string g_metrics_exit_path;
std::string g_trace_exit_path;

void metrics_exit_hook() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_exit_mu);
    path = g_metrics_exit_path;
  }
  if (!path.empty() && !MetricsRegistry::instance().write(path)) {
    std::fprintf(stderr, "warning: cannot write metrics file %s\n",
                 path.c_str());
  }
}

void trace_exit_hook() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_exit_mu);
    path = g_trace_exit_path;
  }
  if (!path.empty() && !Tracer::instance().write(path)) {
    std::fprintf(stderr, "warning: cannot write trace file %s\n", path.c_str());
  }
}

}  // namespace

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {
  // Pre-register the full catalog so snapshots always cover it, even for
  // metrics whose code paths never ran.
  for (const MetricDesc* d : metric_catalog()) {
    impl_->get(*d, d->kind);
  }
  if (const char* env = std::getenv("DRBML_METRICS")) {
    if (*env != '\0') enable_to_file(env);
  }
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* reg = new MetricsRegistry;  // leaked deliberately
  return *reg;
}

void MetricsRegistry::enable_to_file(std::string path) {
  {
    std::lock_guard<std::mutex> lock(g_exit_mu);
    g_metrics_exit_path = std::move(path);
  }
  set_enabled(true);
  static std::once_flag once;
  std::call_once(once, [] { std::atexit(metrics_exit_hook); });
}

Counter& MetricsRegistry::counter(const MetricDesc& d) {
  return impl_->get(d, MetricKind::Counter).counter;
}
Gauge& MetricsRegistry::gauge(const MetricDesc& d) {
  return impl_->get(d, MetricKind::Gauge).gauge;
}
Histogram& MetricsRegistry::histogram(const MetricDesc& d) {
  return impl_->get(d, MetricKind::Histogram).histogram;
}
Timer& MetricsRegistry::timer(const MetricDesc& d) {
  return impl_->get(d, MetricKind::Timer).timer;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& e : impl_->entries) {
    e->counter.reset();
    e->gauge.reset();
    e->histogram.reset();
    e->timer.reset();
  }
}

std::vector<const MetricDesc*> MetricsRegistry::descriptors() const {
  std::vector<const MetricDesc*> out;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    out.reserve(impl_->entries.size());
    for (const auto& e : impl_->entries) out.push_back(e->desc);
  }
  std::sort(out.begin(), out.end(),
            [](const MetricDesc* a, const MetricDesc* b) {
              return std::strcmp(a->name, b->name) < 0;
            });
  return out;
}

namespace {

/// Name-sorted entry views for snapshot emission.
std::vector<const MetricEntry*> sorted_entries(
    const std::vector<std::unique_ptr<MetricEntry>>& entries) {
  std::vector<const MetricEntry*> out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.push_back(e.get());
  std::sort(out.begin(), out.end(),
            [](const MetricEntry* a, const MetricEntry* b) {
              return std::strcmp(a->desc->name, b->desc->name) < 0;
            });
  return out;
}

}  // namespace

std::string MetricsRegistry::to_text(bool include_unstable) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "# drbml metrics";
  out += include_unstable ? " (full)\n" : " (deterministic)\n";
  for (const MetricEntry* e : sorted_entries(impl_->entries)) {
    const MetricDesc& d = *e->desc;
    if (!d.stable && !include_unstable) continue;
    out += d.name;
    const auto field = [&out](const char* label, std::uint64_t v) {
      out += label;
      out += std::to_string(v);
    };
    switch (d.kind) {
      case MetricKind::Counter:
        field(" ", e->counter.value());
        break;
      case MetricKind::Gauge:
        out += ' ';
        out += std::to_string(e->gauge.value());
        break;
      case MetricKind::Histogram: {
        field(" count ", e->histogram.count());
        field(" sum ", e->histogram.sum());
        out += " buckets";
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          field(i == 0 ? " " : "|", e->histogram.bucket(i));
        }
        break;
      }
      case MetricKind::Timer:
        field(" count ", e->timer.count());
        field(" wall_ns ", e->timer.wall_ns());
        field(" cpu_ns ", e->timer.cpu_ns());
        break;
    }
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::to_json(bool include_unstable) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  json::Object root;
  root.set("schema", json::Value("drbml-metrics-v1"));
  root.set("deterministic", json::Value(!include_unstable));
  json::Object metrics_obj;
  for (const MetricEntry* e : sorted_entries(impl_->entries)) {
    const MetricDesc& d = *e->desc;
    if (!d.stable && !include_unstable) continue;
    json::Object m;
    m.set("kind", json::Value(metric_kind_name(d.kind)));
    m.set("unit", json::Value(d.unit));
    switch (d.kind) {
      case MetricKind::Counter:
        m.set("value", json::Value(static_cast<std::int64_t>(e->counter.value())));
        break;
      case MetricKind::Gauge:
        m.set("value", json::Value(e->gauge.value()));
        break;
      case MetricKind::Histogram: {
        m.set("count",
              json::Value(static_cast<std::int64_t>(e->histogram.count())));
        m.set("sum", json::Value(static_cast<std::int64_t>(e->histogram.sum())));
        json::Array buckets;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          buckets.push_back(
              json::Value(static_cast<std::int64_t>(e->histogram.bucket(i))));
        }
        m.set("buckets", json::Value(std::move(buckets)));
        break;
      }
      case MetricKind::Timer:
        m.set("count", json::Value(static_cast<std::int64_t>(e->timer.count())));
        m.set("wall_ns",
              json::Value(static_cast<std::int64_t>(e->timer.wall_ns())));
        m.set("cpu_ns",
              json::Value(static_cast<std::int64_t>(e->timer.cpu_ns())));
        break;
    }
    metrics_obj.set(d.name, json::Value(std::move(m)));
  }
  root.set("metrics", json::Value(std::move(metrics_obj)));
  return json::Value(std::move(root)).dump_pretty() + "\n";
}

bool MetricsRegistry::write(const std::string& path,
                            bool include_unstable) const {
  return write_file_atomic(path, to_json(include_unstable));
}

// ---------------------------------------------------------------- tracer

struct Tracer::Impl {
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t epoch_ns = now_wall_ns();
};

Tracer::Tracer() : impl_(new Impl) {
  if (const char* env = std::getenv("DRBML_TRACE")) {
    if (*env != '\0') enable_to_file(env);
  }
}

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer;  // leaked deliberately
  return *t;
}

void Tracer::enable_to_file(std::string path) {
  {
    std::lock_guard<std::mutex> lock(g_exit_mu);
    g_trace_exit_path = std::move(path);
  }
  set_enabled(true);
  static std::once_flag once;
  std::call_once(once, [] { std::atexit(trace_exit_hook); });
}

void Tracer::record(TraceEvent e) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (e.start_ns >= impl_->epoch_ns) e.start_ns -= impl_->epoch_ns;
  impl_->events.push_back(std::move(e));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    out = impl_->events;
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.tid < b.tid;
  });
  return out;
}

std::string Tracer::to_json() const {
  // Hand-rolled so timestamps render as fixed-precision microseconds
  // (json::Value doubles print with %.17g, which Perfetto accepts but
  // humans do not).
  const std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  char buf[160];
  bool first = true;
  int max_tid = 0;
  for (const TraceEvent& e : events) max_tid = std::max(max_tid, e.tid);
  for (int tid = 0; tid <= max_tid; ++tid) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"drbml-%d\"}}",
                  first ? "" : ",\n", tid, tid);
    out += buf;
    first = false;
  }
  for (const TraceEvent& e : events) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d",
                  first ? "" : ",\n", e.name, e.category,
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, e.tid);
    out += buf;
    first = false;
    if (!e.detail.empty()) {
      out += ",\"args\":{\"detail\":\"" + json::escape(e.detail) + "\"}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write(const std::string& path) const {
  return write_file_atomic(path, to_json());
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->events.clear();
  impl_->epoch_ns = now_wall_ns();
}

// ------------------------------------------------------------------ span

Span::~Span() {
  if (!active_) return;
  const std::uint64_t wall1 = now_wall_ns();
  const std::uint64_t wall_dur = wall1 > wall0_ ? wall1 - wall0_ : 0;
  if (cpu_wanted_) {
    const std::uint64_t cpu1 = now_cpu_ns();
    timer_->record(wall_dur, cpu1 > cpu0_ ? cpu1 - cpu0_ : 0);
  }
  if (trace_) {
    TraceEvent e;
    e.name = desc_->name;
    e.category = desc_->category;
    e.detail = std::string(detail_);
    e.start_ns = wall0_;
    e.dur_ns = wall_dur;
    e.tid = thread_id();
    Tracer::instance().record(std::move(e));
  }
}

// ----------------------------------------------------------- entry points

void enable_tracing(std::string path) {
  Tracer::instance().enable_to_file(std::move(path));
}

void enable_metrics(std::string path) {
  MetricsRegistry::instance().enable_to_file(std::move(path));
}

void flush_obs_outputs() {
  metrics_exit_hook();
  trace_exit_hook();
}

void consume_obs_flags(std::vector<std::string>& args) {
  std::vector<std::string> kept;
  kept.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--trace" && i + 1 < args.size()) {
      enable_tracing(args[++i]);
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      enable_metrics(args[++i]);
    } else {
      kept.push_back(args[i]);
    }
  }
  args = std::move(kept);
}

}  // namespace drbml::obs
