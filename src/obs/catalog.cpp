#include "obs/catalog.hpp"

namespace drbml::obs {

// ------------------------------------------------------------- span descs

const SpanDesc kSpanStageDataset{
    "stage.dataset", "stage",
    "Corpus render + DRB-ML dataset construction for one run."};
const SpanDesc kSpanStageTokens{
    "stage.tokens", "stage",
    "Token-length filtering of all dataset entries (Section 3.2)."};
const SpanDesc kSpanStageStatic{
    "stage.static", "stage",
    "Static dependence-based race analysis over the corpus."};
const SpanDesc kSpanStageDynamic{
    "stage.dynamic", "stage",
    "Dynamic vector-clock detection (all schedule seeds) over the corpus."};
const SpanDesc kSpanStageLint{
    "stage.lint", "stage", "OpenMP correctness linter over the corpus."};
const SpanDesc kSpanStageRepair{
    "stage.repair", "stage",
    "Verified race repair over the racy subset of the corpus."};
const SpanDesc kSpanStageExplore{
    "stage.explore", "stage",
    "PCT schedule exploration over the racy subset of the corpus."};

const SpanDesc kSpanArtifactTokens{
    "artifact.tokens", "artifact",
    "Cache-miss compute of a token count (code tokenizer)."};
const SpanDesc kSpanArtifactAst{
    "artifact.ast", "artifact",
    "Cache-miss compute of a canonical AST rendering."};
const SpanDesc kSpanArtifactDepgraph{
    "artifact.depgraph", "artifact",
    "Cache-miss compute of a dependence-graph rendering."};
const SpanDesc kSpanArtifactStatic{
    "artifact.static", "artifact",
    "Cache-miss compute of a static race report."};
const SpanDesc kSpanArtifactDynamic{
    "artifact.dynamic", "artifact",
    "Cache-miss compute of a dynamic race report (all seeds)."};
const SpanDesc kSpanArtifactLint{
    "artifact.lint", "artifact", "Cache-miss compute of a lint report."};
const SpanDesc kSpanArtifactRepair{
    "artifact.repair", "artifact",
    "Cache-miss compute of a verified repair result."};
const SpanDesc kSpanArtifactLintText{
    "artifact.lint_text", "artifact",
    "Cache-miss compute of a rendered lint-findings text (prompt modality)."};
const SpanDesc kSpanArtifactEvidenceText{
    "artifact.evidence_text", "artifact",
    "Cache-miss compute of a rendered evidence-chain text (prompt "
    "modality)."};
const SpanDesc kSpanArtifactExplore{
    "artifact.explore", "artifact",
    "Cache-miss compute of a schedule-exploration result."};

const SpanDesc kSpanDetectBatch{
    "detect.batch", "core",
    "RaceDetector::analyze_batch over N sources (parallel_map)."};
const SpanDesc kSpanDetectEntry{
    "detect.entry", "core",
    "One detector run on one source (detail: detector spec)."};
const SpanDesc kSpanInterpReplay{
    "interp.replay", "runtime",
    "One deterministic schedule replay (detail: seed)."};
const SpanDesc kSpanLintRun{
    "lint.run", "lint", "One linter pass-manager run over one source."};
const SpanDesc kSpanRepairEntry{
    "repair.entry", "repair",
    "repair_source: candidate generation + verify loop for one source."};
const SpanDesc kSpanRepairVerify{
    "repair.verify", "repair",
    "One candidate through the three verification gates."};

const SpanDesc kSpanExploreEntry{
    "explore.entry", "explore",
    "explore_source: the full schedule-exploration loop for one source "
    "(detail: strategy)."};
const SpanDesc kSpanExploreSchedule{
    "explore.schedule", "explore",
    "One explored schedule (detail: schedule index)."};
const SpanDesc kSpanExploreMinimize{
    "explore.minimize", "explore",
    "Delta-debugging a racy schedule trace to a minimal witness."};

const SpanDesc kSpanVmCompile{
    "vm.compile", "runtime",
    "Lowering one resolved translation unit to a bytecode module."};

const SpanDesc kSpanExpRun{
    "exp.run", "eval",
    "One experiment runner (detail: table/figure name)."};

const SpanDesc kSpanServeRequest{
    "serve.request", "serve",
    "One admitted serve request from dequeue to response (detail: "
    "request id)."};
const SpanDesc kSpanServeDrain{
    "serve.drain", "serve",
    "Graceful-shutdown drain: close admission, finish in-flight work, "
    "flush metrics/trace/cache snapshot."};

// --------------------------------------------------------- metric descs

namespace {
constexpr bool kStable = true;
constexpr bool kUnstable = false;
}  // namespace

const MetricDesc kCacheTokensProbe{
    "cache.tokens.probe", MetricKind::Counter, "count", kStable,
    "Token-count cache lookups (hits = probe - compute)."};
const MetricDesc kCacheTokensCompute{
    "cache.tokens.compute", MetricKind::Counter, "count", kStable,
    "Token counts computed on a cache miss."};
const MetricDesc kCacheAstProbe{
    "cache.ast.probe", MetricKind::Counter, "count", kStable,
    "AST-text cache lookups."};
const MetricDesc kCacheAstCompute{
    "cache.ast.compute", MetricKind::Counter, "count", kStable,
    "AST texts computed on a cache miss."};
const MetricDesc kCacheDepgraphProbe{
    "cache.depgraph.probe", MetricKind::Counter, "count", kStable,
    "Dependence-graph-text cache lookups."};
const MetricDesc kCacheDepgraphCompute{
    "cache.depgraph.compute", MetricKind::Counter, "count", kStable,
    "Dependence-graph texts computed on a cache miss."};
const MetricDesc kCacheStaticProbe{
    "cache.static.probe", MetricKind::Counter, "count", kStable,
    "Static-report cache lookups (keyed by source + options hash)."};
const MetricDesc kCacheStaticCompute{
    "cache.static.compute", MetricKind::Counter, "count", kStable,
    "Static reports computed on a cache miss."};
const MetricDesc kCacheDynamicProbe{
    "cache.dynamic.probe", MetricKind::Counter, "count", kStable,
    "Dynamic-report cache lookups (keyed by source + options hash)."};
const MetricDesc kCacheDynamicCompute{
    "cache.dynamic.compute", MetricKind::Counter, "count", kStable,
    "Dynamic reports computed on a cache miss."};
const MetricDesc kCacheLintProbe{
    "cache.lint.probe", MetricKind::Counter, "count", kStable,
    "Lint-report cache lookups."};
const MetricDesc kCacheLintCompute{
    "cache.lint.compute", MetricKind::Counter, "count", kStable,
    "Lint reports computed on a cache miss."};
const MetricDesc kCacheRepairProbe{
    "cache.repair.probe", MetricKind::Counter, "count", kStable,
    "Repair-result cache lookups (keyed by source + options hash)."};
const MetricDesc kCacheRepairCompute{
    "cache.repair.compute", MetricKind::Counter, "count", kStable,
    "Repair results computed on a cache miss."};
const MetricDesc kCacheLintTextProbe{
    "cache.lint_text.probe", MetricKind::Counter, "count", kStable,
    "Lint-findings-text cache lookups (lint prompt modality)."};
const MetricDesc kCacheLintTextCompute{
    "cache.lint_text.compute", MetricKind::Counter, "count", kStable,
    "Lint-findings texts computed on a cache miss."};
const MetricDesc kCacheEvidenceTextProbe{
    "cache.evidence_text.probe", MetricKind::Counter, "count", kStable,
    "Evidence-chain-text cache lookups (evidence prompt modality)."};
const MetricDesc kCacheEvidenceTextCompute{
    "cache.evidence_text.compute", MetricKind::Counter, "count", kStable,
    "Evidence-chain texts computed on a cache miss."};
const MetricDesc kCacheExploreProbe{
    "cache.explore.probe", MetricKind::Counter, "count", kStable,
    "Exploration-result cache lookups (keyed by source + options hash)."};
const MetricDesc kCacheExploreCompute{
    "cache.explore.compute", MetricKind::Counter, "count", kStable,
    "Exploration results computed on a cache miss."};

const MetricDesc kCacheCorrupt{
    "cache.corrupt", MetricKind::Counter, "count", kStable,
    "Cache snapshot files rejected as unreadable or corrupt (each is "
    "treated as a miss; this counter is the structured warning)."};
const MetricDesc kCacheSnapshotLoaded{
    "cache.snapshot.loaded", MetricKind::Counter, "count", kStable,
    "Entries seeded from a cache snapshot file."};
const MetricDesc kCacheSnapshotSaved{
    "cache.snapshot.saved", MetricKind::Counter, "count", kStable,
    "Entries written to a cache snapshot file."};

const MetricDesc kCacheEvictCount{
    "cache.evict.count", MetricKind::Counter, "count", kUnstable,
    "Artifact-cache entries evicted by the LRU byte budget (later probes "
    "for them recompute)."};
const MetricDesc kCacheEvictBytes{
    "cache.evict.bytes", MetricKind::Counter, "bytes", kUnstable,
    "Approximate bytes released from residency by LRU eviction."};
const MetricDesc kCacheReclaimed{
    "cache.reclaimed", MetricKind::Counter, "count", kUnstable,
    "Evicted entries whose storage was actually freed once no in-flight "
    "request could still reference them."};

const MetricDesc kServeRequests{
    "serve.requests", MetricKind::Counter, "count", kUnstable,
    "Requests read off the serve transport (including ones later "
    "rejected)."};
const MetricDesc kServeResponsesOk{
    "serve.responses.ok", MetricKind::Counter, "count", kUnstable,
    "Responses written with ok=true."};
const MetricDesc kServeResponsesError{
    "serve.responses.error", MetricKind::Counter, "count", kUnstable,
    "Responses written with ok=false (any error kind)."};
const MetricDesc kServeRejectedQueueFull{
    "serve.rejected.queue_full", MetricKind::Counter, "count", kUnstable,
    "Requests refused at admission because the bounded queue was full "
    "(the backpressure signal)."};
const MetricDesc kServeRejectedDeadline{
    "serve.rejected.deadline", MetricKind::Counter, "count", kUnstable,
    "Admitted requests whose deadline expired while queued; answered "
    "deadline_expired instead of running."};
const MetricDesc kServeRejectedMalformed{
    "serve.rejected.malformed", MetricKind::Counter, "count", kUnstable,
    "Lines rejected as unparseable JSON or structurally invalid "
    "requests."};
const MetricDesc kServeVerbAnalyze{
    "serve.verb.analyze", MetricKind::Counter, "count", kUnstable,
    "analyze requests executed."};
const MetricDesc kServeVerbLint{
    "serve.verb.lint", MetricKind::Counter, "count", kUnstable,
    "lint requests executed."};
const MetricDesc kServeVerbFix{
    "serve.verb.fix", MetricKind::Counter, "count", kUnstable,
    "fix requests executed."};
const MetricDesc kServeVerbExplore{
    "serve.verb.explore", MetricKind::Counter, "count", kUnstable,
    "explore requests executed."};
const MetricDesc kServeVerbStats{
    "serve.verb.stats", MetricKind::Counter, "count", kUnstable,
    "stats requests executed."};
const MetricDesc kServeQueueDepth{
    "serve.queue_depth", MetricKind::Histogram, "requests", kUnstable,
    "Distribution of the task-queue depth sampled at each admission."};
const MetricDesc kServeRequestLatency{
    "serve.request.latency", MetricKind::Histogram, "us", kUnstable,
    "Distribution of request latency, admission to response written "
    "(power-of-two buckets)."};
const MetricDesc kServeDrains{
    "serve.drains", MetricKind::Counter, "count", kUnstable,
    "Graceful drains executed (signal-triggered or shutdown verb)."};

const MetricDesc kLintRuns{
    "lint.runs", MetricKind::Counter, "count", kStable,
    "Linter pass-manager runs."};
const MetricDesc kLintSuppressed{
    "lint.suppressed", MetricKind::Counter, "count", kStable,
    "Diagnostics silenced by drbml-lint-suppress comments."};
const MetricDesc kLintDiagRace{
    "lint.diag.race", MetricKind::Counter, "count", kStable,
    "Diagnostics emitted by the race-pair check."};
const MetricDesc kLintDiagDatashare{
    "lint.diag.datashare", MetricKind::Counter, "count", kStable,
    "Diagnostics emitted by the data-sharing audit."};
const MetricDesc kLintDiagReduction{
    "lint.diag.reduction", MetricKind::Counter, "count", kStable,
    "Diagnostics emitted by the reduction recognizer."};
const MetricDesc kLintDiagLock{
    "lint.diag.lock", MetricKind::Counter, "count", kStable,
    "Diagnostics emitted by the lock-discipline check."};
const MetricDesc kLintDiagBarrier{
    "lint.diag.barrier", MetricKind::Counter, "count", kStable,
    "Diagnostics emitted by the barrier/nowait check."};
const MetricDesc kLintDiagAtomic{
    "lint.diag.atomic", MetricKind::Counter, "count", kStable,
    "Diagnostics emitted by the atomic-vs-critical check."};

const MetricDesc kRepairCandidates{
    "repair.candidates", MetricKind::Counter, "count", kStable,
    "Candidate patches entering the verify loop."};
const MetricDesc kRepairAccepted{
    "repair.accepted", MetricKind::Counter, "count", kStable,
    "Candidates accepted (all three gates passed)."};
const MetricDesc kRepairNoCandidate{
    "repair.no_candidate", MetricKind::Counter, "count", kStable,
    "repair_source calls that produced no candidate patch."};
const MetricDesc kRepairRejectedStatic{
    "repair.rejected.static", MetricKind::Counter, "count", kStable,
    "Candidates rejected at gate 1: static detector still reports a race, "
    "or static analysis failed on the patched program."};
const MetricDesc kRepairRejectedFault{
    "repair.rejected.fault", MetricKind::Counter, "count", kStable,
    "Candidates rejected at gate 2: the patched program faulted."};
const MetricDesc kRepairRejectedDynamic{
    "repair.rejected.dynamic", MetricKind::Counter, "count", kStable,
    "Candidates rejected at gate 2: dynamic detector still reports a race, "
    "or dynamic verification failed."};
const MetricDesc kRepairRejectedNondet{
    "repair.rejected.nondet", MetricKind::Counter, "count", kStable,
    "Candidates rejected at gate 2: output differs across schedules."};
const MetricDesc kRepairRejectedOutput{
    "repair.rejected.output", MetricKind::Counter, "count", kStable,
    "Candidates rejected at gate 3: serial output diverges from original."};
const MetricDesc kRepairRejectedError{
    "repair.rejected.error", MetricKind::Counter, "count", kStable,
    "Candidates rejected because patch application or re-parsing failed."};
const MetricDesc kRepairRejectedExplore{
    "repair.rejected.explore", MetricKind::Counter, "count", kStable,
    "Candidates rejected at gate 4: PCT schedule exploration found a race "
    "the fixed-seed dynamic gate missed."};

const MetricDesc kInterpReplays{
    "interp.replays", MetricKind::Counter, "count", kStable,
    "Deterministic schedule replays executed."};
const MetricDesc kInterpFaults{
    "interp.faults", MetricKind::Counter, "count", kStable,
    "Replays that ended in a runtime fault."};
const MetricDesc kInterpRaces{
    "interp.races", MetricKind::Counter, "count", kStable,
    "Replays on which the vector-clock checker flagged a race."};
const MetricDesc kSchedSteps{
    "sched.steps", MetricKind::Counter, "count", kStable,
    "Cooperative-scheduler steps executed (summed over replays)."};
const MetricDesc kSchedStepsPerReplay{
    "sched.steps_per_replay", MetricKind::Histogram, "steps", kStable,
    "Distribution of scheduler steps per replay (power-of-two buckets)."};

const MetricDesc kVmModules{
    "vm.modules", MetricKind::Counter, "count", kStable,
    "Bytecode modules compiled from resolved translation units."};
const MetricDesc kVmChunks{
    "vm.chunks", MetricKind::Counter, "count", kStable,
    "Bytecode chunks emitted (function bodies, parallel-region bodies, "
    "worksharing innermost bodies, sections)."};
const MetricDesc kVmInstructions{
    "vm.instructions", MetricKind::Counter, "count", kStable,
    "Bytecode instructions emitted across all chunks."};
const MetricDesc kVmFallbackSites{
    "vm.fallback_sites", MetricKind::Counter, "count", kStable,
    "Statements the bytecode compiler routed through the AST walker "
    "(OpenMP constructs execute via ExecStmt by design)."};
const MetricDesc kVmRuns{
    "vm.runs", MetricKind::Counter, "count", kStable,
    "run_program invocations that executed under the VM backend."};
const MetricDesc kVmVerifyFailures{
    "vm.verify_failures", MetricKind::Counter, "count", kStable,
    "Bytecode modules rejected by the structural verifier."};

const MetricDesc kDetectEntries{
    "detect.entries", MetricKind::Counter, "count", kStable,
    "Sources analyzed through RaceDetector::analyze_batch."};

const MetricDesc kAnalysisCandidatePairs{
    "analysis.candidate_pairs", MetricKind::Counter, "count", kStable,
    "Conflicting-access candidate pairs examined by the static analyzer "
    "(before any discharge rule runs)."};
const MetricDesc kAnalysisDischargedSerial{
    "analysis.discharged.serial", MetricKind::Counter, "count", kStable,
    "Candidate pairs discharged because the enclosing region is "
    "statically serial (region.serial)."};
const MetricDesc kAnalysisDischargedPhase{
    "analysis.discharged.phase", MetricKind::Counter, "count", kStable,
    "Candidate pairs discharged by barrier-phase separation (mhp.phase)."};
const MetricDesc kAnalysisDischargedMhp{
    "analysis.discharged.mhp", MetricKind::Counter, "count", kStable,
    "Candidate pairs discharged by non-phase MHP ordering rules "
    "(mhp.single-instance, mhp.task-order, mhp.task-depend)."};
const MetricDesc kAnalysisDischargedLockset{
    "analysis.discharged.lockset", MetricKind::Counter, "count", kStable,
    "Candidate pairs discharged by a common guard (lockset.common)."};
const MetricDesc kAnalysisDischargedDepend{
    "analysis.discharged.depend", MetricKind::Counter, "count", kStable,
    "Candidate pairs discharged by the dependence tests (dep.gcd, "
    "dep.banerjee, dep.distance, dep.tid-disjoint)."};

const MetricDesc kExploreSchedules{
    "explore.schedules", MetricKind::Counter, "count", kStable,
    "Schedules executed by the exploration engine."};
const MetricDesc kExploreRaces{
    "explore.races", MetricKind::Counter, "count", kStable,
    "Explored schedules on which a race was detected."};
const MetricDesc kExploreCoverageNew{
    "explore.coverage.new", MetricKind::Counter, "count", kStable,
    "New interleaving-coverage points discovered (divide by "
    "explore.schedules for new-coverage-per-schedule)."};
const MetricDesc kExplorePlateauStops{
    "explore.plateau_stops", MetricKind::Counter, "count", kStable,
    "Exploration loops cut short by the coverage-plateau budget."};
const MetricDesc kExploreMinimizeReplays{
    "explore.minimize.replays", MetricKind::Counter, "count", kStable,
    "Replays spent delta-debugging witnesses."};
const MetricDesc kExploreWitnesses{
    "explore.witnesses", MetricKind::Counter, "count", kStable,
    "Minimized race witnesses produced."};
const MetricDesc kExploreSchedulesToFirstRace{
    "explore.schedules_to_first_race", MetricKind::Histogram, "schedules",
    kStable,
    "Distribution of schedules run before the first race (time-to-first-"
    "race in schedule budget)."};

const MetricDesc kStageDatasetTime{
    "stage.dataset.time", MetricKind::Timer, "ns", kUnstable,
    "Wall/cpu time in the dataset-construction stage."};
const MetricDesc kStageTokensTime{
    "stage.tokens.time", MetricKind::Timer, "ns", kUnstable,
    "Wall/cpu time in the token-filter stage."};
const MetricDesc kStageStaticTime{
    "stage.static.time", MetricKind::Timer, "ns", kUnstable,
    "Wall/cpu time in the static-analysis stage."};
const MetricDesc kStageDynamicTime{
    "stage.dynamic.time", MetricKind::Timer, "ns", kUnstable,
    "Wall/cpu time in the dynamic-detection stage."};
const MetricDesc kStageLintTime{
    "stage.lint.time", MetricKind::Timer, "ns", kUnstable,
    "Wall/cpu time in the lint stage."};
const MetricDesc kStageRepairTime{
    "stage.repair.time", MetricKind::Timer, "ns", kUnstable,
    "Wall/cpu time in the repair stage."};
const MetricDesc kStageExploreTime{
    "stage.explore.time", MetricKind::Timer, "ns", kUnstable,
    "Wall/cpu time in the schedule-exploration stage."};

// ------------------------------------------------------------- catalogs

const std::vector<const MetricDesc*>& metric_catalog() {
  static const std::vector<const MetricDesc*> all = {
      &kCacheTokensProbe,    &kCacheTokensCompute,
      &kCacheAstProbe,       &kCacheAstCompute,
      &kCacheDepgraphProbe,  &kCacheDepgraphCompute,
      &kCacheStaticProbe,    &kCacheStaticCompute,
      &kCacheDynamicProbe,   &kCacheDynamicCompute,
      &kCacheLintProbe,      &kCacheLintCompute,
      &kCacheRepairProbe,    &kCacheRepairCompute,
      &kCacheLintTextProbe,  &kCacheLintTextCompute,
      &kCacheEvidenceTextProbe, &kCacheEvidenceTextCompute,
      &kCacheExploreProbe,   &kCacheExploreCompute,
      &kCacheCorrupt,        &kCacheSnapshotLoaded,
      &kCacheSnapshotSaved,
      &kCacheEvictCount,     &kCacheEvictBytes,
      &kCacheReclaimed,
      &kServeRequests,       &kServeResponsesOk,
      &kServeResponsesError, &kServeRejectedQueueFull,
      &kServeRejectedDeadline, &kServeRejectedMalformed,
      &kServeVerbAnalyze,    &kServeVerbLint,
      &kServeVerbFix,        &kServeVerbExplore,
      &kServeVerbStats,      &kServeQueueDepth,
      &kServeRequestLatency, &kServeDrains,
      &kLintRuns,            &kLintSuppressed,
      &kLintDiagRace,        &kLintDiagDatashare,
      &kLintDiagReduction,   &kLintDiagLock,
      &kLintDiagBarrier,     &kLintDiagAtomic,
      &kRepairCandidates,    &kRepairAccepted,
      &kRepairNoCandidate,   &kRepairRejectedStatic,
      &kRepairRejectedFault, &kRepairRejectedDynamic,
      &kRepairRejectedNondet, &kRepairRejectedOutput,
      &kRepairRejectedError,  &kRepairRejectedExplore,
      &kInterpReplays,       &kInterpFaults,
      &kInterpRaces,         &kSchedSteps,
      &kSchedStepsPerReplay,
      &kVmModules,           &kVmChunks,
      &kVmInstructions,      &kVmFallbackSites,
      &kVmRuns,              &kVmVerifyFailures,
      &kDetectEntries,
      &kAnalysisCandidatePairs, &kAnalysisDischargedSerial,
      &kAnalysisDischargedPhase, &kAnalysisDischargedMhp,
      &kAnalysisDischargedLockset, &kAnalysisDischargedDepend,
      &kExploreSchedules,    &kExploreRaces,
      &kExploreCoverageNew,  &kExplorePlateauStops,
      &kExploreMinimizeReplays, &kExploreWitnesses,
      &kExploreSchedulesToFirstRace,
      &kStageDatasetTime,    &kStageTokensTime,
      &kStageStaticTime,     &kStageDynamicTime,
      &kStageLintTime,       &kStageRepairTime,
      &kStageExploreTime,
  };
  return all;
}

const std::vector<const SpanDesc*>& span_catalog() {
  static const std::vector<const SpanDesc*> all = {
      &kSpanStageDataset,    &kSpanStageTokens,   &kSpanStageStatic,
      &kSpanStageDynamic,    &kSpanStageLint,     &kSpanStageRepair,
      &kSpanStageExplore,
      &kSpanArtifactTokens,  &kSpanArtifactAst,   &kSpanArtifactDepgraph,
      &kSpanArtifactStatic,  &kSpanArtifactDynamic, &kSpanArtifactLint,
      &kSpanArtifactRepair,  &kSpanArtifactLintText,
      &kSpanArtifactEvidenceText, &kSpanArtifactExplore,
      &kSpanDetectBatch,     &kSpanDetectEntry,
      &kSpanInterpReplay,    &kSpanLintRun,
      &kSpanRepairEntry,     &kSpanRepairVerify,
      &kSpanExploreEntry,    &kSpanExploreSchedule,
      &kSpanExploreMinimize,
      &kSpanVmCompile,
      &kSpanExpRun,
      &kSpanServeRequest,    &kSpanServeDrain,
  };
  return all;
}

// ---------------------------------------------------------- doc rendering

std::string render_span_catalog_md() {
  std::string out;
  out += "| Span | Category | Emitted around |\n";
  out += "|---|---|---|\n";
  for (const SpanDesc* s : span_catalog()) {
    out += "| `";
    out += s->name;
    out += "` | `";
    out += s->category;
    out += "` | ";
    out += s->help;
    out += " |\n";
  }
  return out;
}

std::string render_metric_catalog_md() {
  std::string out;
  out += "| Metric | Kind | Unit | Deterministic | Meaning |\n";
  out += "|---|---|---|---|---|\n";
  for (const MetricDesc* m : metric_catalog()) {
    out += "| `";
    out += m->name;
    out += "` | ";
    out += metric_kind_name(m->kind);
    out += " | ";
    out += m->unit;
    out += " | ";
    out += m->stable ? "yes" : "no";
    out += " | ";
    out += m->help;
    out += " |\n";
  }
  return out;
}

}  // namespace drbml::obs
