// Observability layer: tracing spans and a metrics registry.
//
// Design contract (docs/OBSERVABILITY.md is the user-facing reference):
//
//   * Zero overhead when disabled. A Span whose tracer and metrics sinks
//     are both off reads two relaxed atomics and touches no clock, no
//     lock, and no heap (tests/obs_test.cpp proves the hot path is
//     allocation-free). Counters/gauges/histograms are pre-allocated
//     lock-free atomics -- an increment is a relaxed fetch_add, cheap
//     enough to stay on unconditionally.
//
//   * Deterministic metrics. Every metric is declared in the static
//     catalog (obs/catalog.hpp) and pre-registered, so a snapshot always
//     contains the full catalog in name order. Metrics marked `stable`
//     count *work* (cache probes, computed artifacts, diagnostics,
//     scheduler steps), never wall-clock or thread identity, so the
//     text/JSON snapshots are byte-identical across `--jobs` values.
//     Timers are always unstable and excluded from default snapshots.
//
//   * Chrome trace output. Spans emit complete ("ph":"X") trace_event
//     records with per-thread ids; Tracer::to_json() renders a file
//     loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Enabling: DRBML_TRACE=<file> / DRBML_METRICS=<file> environment
// variables (checked once, written at process exit) or the --trace /
// --metrics flags every `drbml` subcommand and bench binary accepts.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace drbml::obs {

// ------------------------------------------------------------ descriptors

enum class MetricKind { Counter, Gauge, Histogram, Timer };

[[nodiscard]] const char* metric_kind_name(MetricKind k) noexcept;

/// Self-description of one metric. Instances live in the static catalog
/// (obs/catalog.cpp); call sites and the doc generator share them, so the
/// documented catalog cannot drift from the code.
struct MetricDesc {
  const char* name;  // dotted, e.g. "cache.static.probe"
  MetricKind kind;
  const char* unit;  // "count", "ns", "items", ...
  /// True when the value is a pure function of the work performed --
  /// byte-identical across job counts. Timers and anything derived from
  /// clocks or thread identity must be false.
  bool stable;
  const char* help;
};

/// Self-description of one span name (trace_event `name`/`cat`).
struct SpanDesc {
  const char* name;      // dotted, e.g. "artifact.dynamic"
  const char* category;  // trace_event category, e.g. "artifact"
  const char* help;
};

// --------------------------------------------------------------- metrics

/// Monotonic event count. Lock-free; increments are always on.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-set signed value (resident entries, configured limits).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Power-of-two-bucket histogram: bucket i counts values whose upper
/// bound is 2^i - 1 (bucket 0 holds the value 0); the last bucket is the
/// overflow sink. Deterministic: bucket boundaries are fixed and the
/// observations counted are work quantities, not times.
class Histogram {
 public:
  static constexpr int kBuckets = 18;  // 0, 1, 3, 7, ..., 65535, +inf

  void observe(std::uint64_t v) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (UINT64_MAX for the sink).
  [[nodiscard]] static std::uint64_t bucket_bound(int i) noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Accumulated wall/cpu durations (always `stable == false`). Fed by
/// Span when metrics are enabled.
class Timer {
 public:
  void record(std::uint64_t wall_ns, std::uint64_t cpu_ns) noexcept {
    wall_ns_.fetch_add(wall_ns, std::memory_order_relaxed);
    cpu_ns_.fetch_add(cpu_ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t wall_ns() const noexcept {
    return wall_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cpu_ns() const noexcept {
    return cpu_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    wall_ns_.store(0, std::memory_order_relaxed);
    cpu_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> wall_ns_{0};
  std::atomic<std::uint64_t> cpu_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Process-wide metric store. Every catalog metric is pre-registered at
/// construction, so lookups by descriptor never allocate and snapshots
/// always cover the full catalog in name order.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Snapshot sink configured? (DRBML_METRICS or --metrics). Counting is
  /// always on; this only governs whether Span feeds timers and whether
  /// a file is written at exit.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  /// Enables metrics and writes a deterministic JSON snapshot to `path`
  /// at process exit (empty path: enabled, no file).
  void enable_to_file(std::string path);

  [[nodiscard]] Counter& counter(const MetricDesc& d);
  [[nodiscard]] Gauge& gauge(const MetricDesc& d);
  [[nodiscard]] Histogram& histogram(const MetricDesc& d);
  [[nodiscard]] Timer& timer(const MetricDesc& d);

  /// Zeroes every metric value (registrations persist).
  void reset();

  /// Deterministic text snapshot, one `name value...` line per metric in
  /// name order. `include_unstable` adds timers and other unstable
  /// metrics -- never do that in an artifact that must be byte-stable.
  [[nodiscard]] std::string to_text(bool include_unstable = false) const;

  /// Same content as JSON (compact member per metric, name order).
  [[nodiscard]] std::string to_json(bool include_unstable = false) const;

  /// Writes to_json(include_unstable) to `path`; false on I/O failure.
  bool write(const std::string& path, bool include_unstable = false) const;

  /// Registered descriptors in name order (the full catalog).
  [[nodiscard]] std::vector<const MetricDesc*> descriptors() const;

 private:
  MetricsRegistry();
  struct Impl;
  Impl* impl_;  // leaked singleton state: usable during static destruction
  std::atomic<bool> enabled_{false};
};

[[nodiscard]] inline MetricsRegistry& metrics() {
  return MetricsRegistry::instance();
}

// --------------------------------------------------------------- tracing

/// One completed trace event (Chrome trace_event "ph":"X").
struct TraceEvent {
  const char* name;      // from a SpanDesc (static storage)
  const char* category;  // from a SpanDesc (static storage)
  std::string detail;    // optional args.detail payload
  std::uint64_t start_ns = 0;  // since tracer epoch
  std::uint64_t dur_ns = 0;
  int tid = 0;
};

/// Process-wide trace sink. Collection is mutex-protected -- tracing is
/// an observability mode, not a hot path; when disabled, spans never
/// reach the tracer at all.
class Tracer {
 public:
  static Tracer& instance();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Starts collecting; writes Chrome trace JSON to `path` at process
  /// exit (empty path: collect in memory only, for tests).
  void enable_to_file(std::string path);
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void record(TraceEvent e);

  /// Copy of everything recorded so far, sorted by (start, tid).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}) of the events so
  /// far. Loads in chrome://tracing and Perfetto.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;

  void clear();

 private:
  Tracer();
  struct Impl;
  Impl* impl_;  // leaked: see MetricsRegistry
  std::atomic<bool> enabled_{false};
};

[[nodiscard]] inline Tracer& tracer() { return Tracer::instance(); }

[[nodiscard]] inline bool tracing_enabled() noexcept {
  return Tracer::instance().enabled();
}

/// Small dense id of the calling thread (0 for the first thread that
/// asks; pool workers get successive ids). Used as the trace tid.
[[nodiscard]] int thread_id() noexcept;

/// Monotonic wall clock (ns). Only called on enabled paths.
[[nodiscard]] std::uint64_t now_wall_ns() noexcept;
/// Process CPU clock (ns; sums all threads).
[[nodiscard]] std::uint64_t now_cpu_ns() noexcept;

/// RAII scope: on destruction, emits a trace event (tracing enabled) and
/// feeds `timer` (metrics enabled). With both sinks off, construction
/// and destruction are two relaxed loads -- no clock, no allocation.
///
/// `detail` is captured as a string_view: the caller must keep the
/// referenced string alive for the span's lifetime (entry names and
/// other long-lived strings qualify; build no temporaries).
class Span {
 public:
  explicit Span(const SpanDesc& desc, std::string_view detail = {},
                Timer* timer = nullptr) noexcept
      : desc_(&desc), detail_(detail), timer_(timer) {
    const bool trace = tracing_enabled();
    const bool time = timer_ != nullptr && metrics().enabled();
    active_ = trace || time;
    trace_ = trace;
    if (active_) {
      wall0_ = now_wall_ns();
      if (time) cpu0_ = now_cpu_ns();
      cpu_wanted_ = time;
    }
  }
  Span(const SpanDesc& desc, Timer* timer) noexcept : Span(desc, {}, timer) {}
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const SpanDesc* desc_;
  std::string_view detail_;
  Timer* timer_;
  std::uint64_t wall0_ = 0;
  std::uint64_t cpu0_ = 0;
  bool active_ = false;
  bool trace_ = false;
  bool cpu_wanted_ = false;
};

// ----------------------------------------------------------- entry points

/// --trace FILE: enable tracing, write at exit.
void enable_tracing(std::string path);
/// --metrics FILE: enable metrics timers, write deterministic JSON at exit.
void enable_metrics(std::string path);

/// Scans argv for `--trace FILE` / `--metrics FILE`, enables the sinks,
/// and removes the flags from args (shared by the CLI and every bench
/// main). Unknown arguments are left untouched.
void consume_obs_flags(std::vector<std::string>& args);

/// Writes any configured --metrics/--trace output files immediately
/// (same writers the atexit hooks run). Long-lived processes call this
/// on graceful shutdown so observability output survives even if the
/// process is later killed un-gracefully; writes are atomic
/// (temp + rename), so a re-entrant exit can never truncate them.
void flush_obs_outputs();

}  // namespace drbml::obs
