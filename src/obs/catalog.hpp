// The static span/metric catalog: every Span name and every metric the
// system can emit is declared here, once, as a shared descriptor.
//
// Call sites hold references to these descriptors (registration is by
// descriptor identity, not by string), and tools/gen_obs_docs renders the
// same descriptors into docs/OBSERVABILITY.md -- so the documented
// catalog is definitionally in sync with the code. Adding a metric means
// adding a descriptor here; the doc gate (`gen_obs_docs --check` in
// scripts/check.sh) fails until the generated sections are refreshed.
#pragma once

#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace drbml::obs {

// ------------------------------------------------------------- span descs

// Pipeline stages (drbml stats, bench_pipeline-equivalent units).
extern const SpanDesc kSpanStageDataset;
extern const SpanDesc kSpanStageTokens;
extern const SpanDesc kSpanStageStatic;
extern const SpanDesc kSpanStageDynamic;
extern const SpanDesc kSpanStageLint;
extern const SpanDesc kSpanStageRepair;
extern const SpanDesc kSpanStageExplore;

// Artifact-cache compute scopes (run inside OnceMap, exactly once per key).
extern const SpanDesc kSpanArtifactTokens;
extern const SpanDesc kSpanArtifactAst;
extern const SpanDesc kSpanArtifactDepgraph;
extern const SpanDesc kSpanArtifactStatic;
extern const SpanDesc kSpanArtifactDynamic;
extern const SpanDesc kSpanArtifactLint;
extern const SpanDesc kSpanArtifactRepair;
extern const SpanDesc kSpanArtifactLintText;
extern const SpanDesc kSpanArtifactEvidenceText;
extern const SpanDesc kSpanArtifactExplore;

// Detector / runtime / lint / repair scopes.
extern const SpanDesc kSpanDetectBatch;
extern const SpanDesc kSpanDetectEntry;
extern const SpanDesc kSpanInterpReplay;
extern const SpanDesc kSpanLintRun;
extern const SpanDesc kSpanRepairEntry;
extern const SpanDesc kSpanRepairVerify;

// Schedule-exploration engine.
extern const SpanDesc kSpanExploreEntry;
extern const SpanDesc kSpanExploreSchedule;
extern const SpanDesc kSpanExploreMinimize;

// Bytecode VM (compile-once execution backend).
extern const SpanDesc kSpanVmCompile;

// Experiment runners (detail carries the table name).
extern const SpanDesc kSpanExpRun;

// Serve daemon (detail carries the request id).
extern const SpanDesc kSpanServeRequest;
extern const SpanDesc kSpanServeDrain;

// --------------------------------------------------------- metric descs

/// Probe/compute counter pair for one artifact-cache kind. Hits are
/// derived, not stored: hits == probe - compute (OnceMap computes each
/// key at most once per successful compute).
struct CacheKindMetrics {
  const MetricDesc& probe;
  const MetricDesc& compute;
};

extern const MetricDesc kCacheTokensProbe, kCacheTokensCompute;
extern const MetricDesc kCacheAstProbe, kCacheAstCompute;
extern const MetricDesc kCacheDepgraphProbe, kCacheDepgraphCompute;
extern const MetricDesc kCacheStaticProbe, kCacheStaticCompute;
extern const MetricDesc kCacheDynamicProbe, kCacheDynamicCompute;
extern const MetricDesc kCacheLintProbe, kCacheLintCompute;
extern const MetricDesc kCacheRepairProbe, kCacheRepairCompute;
extern const MetricDesc kCacheLintTextProbe, kCacheLintTextCompute;
extern const MetricDesc kCacheEvidenceTextProbe, kCacheEvidenceTextCompute;
extern const MetricDesc kCacheExploreProbe, kCacheExploreCompute;

// Snapshot persistence (satellite fix: corrupt files are counted, not
// silently swallowed).
extern const MetricDesc kCacheCorrupt;
extern const MetricDesc kCacheSnapshotLoaded;
extern const MetricDesc kCacheSnapshotSaved;

// LRU byte budget (--cache-budget / DRBML_CACHE_BUDGET). Unstable:
// eviction order depends on cross-thread probe timing.
extern const MetricDesc kCacheEvictCount;
extern const MetricDesc kCacheEvictBytes;
extern const MetricDesc kCacheReclaimed;

// Serve daemon (drbml serve). All unstable: request arrival, queueing,
// and latency are timing-dependent by nature.
extern const MetricDesc kServeRequests;
extern const MetricDesc kServeResponsesOk;
extern const MetricDesc kServeResponsesError;
extern const MetricDesc kServeRejectedQueueFull;
extern const MetricDesc kServeRejectedDeadline;
extern const MetricDesc kServeRejectedMalformed;
extern const MetricDesc kServeVerbAnalyze;
extern const MetricDesc kServeVerbLint;
extern const MetricDesc kServeVerbFix;
extern const MetricDesc kServeVerbExplore;
extern const MetricDesc kServeVerbStats;
extern const MetricDesc kServeQueueDepth;       // histogram, sampled at admit
extern const MetricDesc kServeRequestLatency;   // histogram, admit -> respond
extern const MetricDesc kServeDrains;

// Linter.
extern const MetricDesc kLintRuns;
extern const MetricDesc kLintSuppressed;
extern const MetricDesc kLintDiagRace;
extern const MetricDesc kLintDiagDatashare;
extern const MetricDesc kLintDiagReduction;
extern const MetricDesc kLintDiagLock;
extern const MetricDesc kLintDiagBarrier;
extern const MetricDesc kLintDiagAtomic;

// Repair verify loop.
extern const MetricDesc kRepairCandidates;
extern const MetricDesc kRepairAccepted;
extern const MetricDesc kRepairNoCandidate;
extern const MetricDesc kRepairRejectedStatic;
extern const MetricDesc kRepairRejectedFault;
extern const MetricDesc kRepairRejectedDynamic;
extern const MetricDesc kRepairRejectedNondet;
extern const MetricDesc kRepairRejectedOutput;
extern const MetricDesc kRepairRejectedError;
extern const MetricDesc kRepairRejectedExplore;

// Runtime (interpreter + scheduler).
extern const MetricDesc kInterpReplays;
extern const MetricDesc kInterpFaults;
extern const MetricDesc kInterpRaces;
extern const MetricDesc kSchedSteps;
extern const MetricDesc kSchedStepsPerReplay;  // histogram

// Bytecode VM: compilation volume and execution-backend selection.
extern const MetricDesc kVmModules;
extern const MetricDesc kVmChunks;
extern const MetricDesc kVmInstructions;
extern const MetricDesc kVmFallbackSites;
extern const MetricDesc kVmRuns;
extern const MetricDesc kVmVerifyFailures;

// Detector facade.
extern const MetricDesc kDetectEntries;

// Static analyzer precision layer: candidate pairs examined and pairs
// proven race-free, keyed by the discharging rule family.
extern const MetricDesc kAnalysisCandidatePairs;
extern const MetricDesc kAnalysisDischargedSerial;
extern const MetricDesc kAnalysisDischargedPhase;
extern const MetricDesc kAnalysisDischargedMhp;
extern const MetricDesc kAnalysisDischargedLockset;
extern const MetricDesc kAnalysisDischargedDepend;

// Schedule-exploration engine (drbml stats: schedules run, coverage
// gained per schedule, schedules to first race).
extern const MetricDesc kExploreSchedules;
extern const MetricDesc kExploreRaces;
extern const MetricDesc kExploreCoverageNew;
extern const MetricDesc kExplorePlateauStops;
extern const MetricDesc kExploreMinimizeReplays;
extern const MetricDesc kExploreWitnesses;
extern const MetricDesc kExploreSchedulesToFirstRace;  // histogram

// Per-stage wall/cpu timers (always unstable; fed by stage spans).
extern const MetricDesc kStageDatasetTime;
extern const MetricDesc kStageTokensTime;
extern const MetricDesc kStageStaticTime;
extern const MetricDesc kStageDynamicTime;
extern const MetricDesc kStageLintTime;
extern const MetricDesc kStageRepairTime;
extern const MetricDesc kStageExploreTime;

// ------------------------------------------------------------- catalogs

/// Every metric descriptor, in declaration order (the registry sorts by
/// name for snapshots). MetricsRegistry pre-registers this set.
[[nodiscard]] const std::vector<const MetricDesc*>& metric_catalog();

/// Every span descriptor, in declaration order.
[[nodiscard]] const std::vector<const SpanDesc*>& span_catalog();

/// Markdown tables rendered from the catalogs -- the generated sections
/// of docs/OBSERVABILITY.md (tools/gen_obs_docs writes/checks them).
[[nodiscard]] std::string render_span_catalog_md();
[[nodiscard]] std::string render_metric_catalog_md();

}  // namespace drbml::obs
