// Name resolution: binds every Ident to its VarDecl and tracks simple
// pointer aliases (`double* p = a;`).
#pragma once

#include <map>
#include <vector>

#include "minic/ast.hpp"

namespace drbml::analysis {

/// Resolution output. `alias_target` maps a pointer variable to the array
/// (or pointer) variable it was observed to point into; detectors use it to
/// canonicalize the memory object behind an access.
struct Resolution {
  /// All declarations in the unit, in declaration order.
  std::vector<const minic::VarDecl*> all_decls;
  /// Pointer variable -> canonical memory object it aliases (if known).
  std::map<const minic::VarDecl*, const minic::VarDecl*> alias_target;
  /// Variables named in a `threadprivate` directive.
  std::vector<const minic::VarDecl*> threadprivate;

  [[nodiscard]] const minic::VarDecl* canonical(
      const minic::VarDecl* v) const noexcept;
  [[nodiscard]] bool is_threadprivate(
      const minic::VarDecl* v) const noexcept;
};

/// Resolves the unit in place (fills Ident::decl) and returns alias and
/// threadprivate info. Unknown identifiers (externs like `stdout`) are left
/// unbound rather than failing.
Resolution resolve(minic::TranslationUnit& unit);

}  // namespace drbml::analysis
