#include "analysis/access.hpp"

#include <algorithm>

#include "analysis/affine.hpp"
#include "minic/printer.hpp"

namespace drbml::analysis {

using namespace minic;

const char* sharing_name(Sharing s) noexcept {
  switch (s) {
    case Sharing::Shared: return "shared";
    case Sharing::Private: return "private";
    case Sharing::FirstPrivate: return "firstprivate";
    case Sharing::LastPrivate: return "lastprivate";
    case Sharing::Reduction: return "reduction";
    case Sharing::Linear: return "linear";
    case Sharing::ThreadPrivate: return "threadprivate";
    case Sharing::LoopPrivate: return "loop-private";
  }
  return "?";
}

namespace {

/// Strips an array-section suffix from a clause variable item
/// ("a[0:n]" -> "a").
std::string base_name_of_clause_var(const std::string& item) {
  const std::size_t bracket = item.find('[');
  return bracket == std::string::npos ? item : item.substr(0, bracket);
}

/// The innermost base identifier of an access expression (for location and
/// canonical variable).
const Ident* base_ident(const Expr* e) {
  while (e != nullptr) {
    if (const auto* sub = expr_cast<Subscript>(e)) {
      e = sub->base.get();
      continue;
    }
    if (const auto* un = expr_cast<Unary>(e)) {
      if (un->op == UnaryOp::Deref || un->op == UnaryOp::AddrOf) {
        e = un->operand.get();
        continue;
      }
    }
    if (const auto* cast = expr_cast<Cast>(e)) {
      e = cast->operand.get();
      continue;
    }
    break;
  }
  return expr_cast<Ident>(e);
}

bool is_omp_runtime_call(const std::string& callee) {
  return callee.rfind("omp_", 0) == 0;
}

bool is_io_call(const std::string& callee) {
  return callee == "printf" || callee == "fprintf" || callee == "puts" ||
         callee == "putchar" || callee == "scanf" || callee == "exit" ||
         callee == "abort" || callee == "assert" || callee == "rand" ||
         callee == "srand" || callee == "atoi" || callee == "atof" ||
         callee == "fabs" || callee == "sqrt" || callee == "sin" ||
         callee == "cos" || callee == "exp" || callee == "log" ||
         callee == "pow" || callee == "fmax" || callee == "fmin" ||
         callee == "abs" || callee == "malloc" || callee == "calloc" ||
         callee == "free" || callee == "memset" || callee == "__sizeof" ||
         callee == "__init_list";
}

enum class Mode { Read, Write, ReadWrite };

class RegionCollector {
 public:
  RegionCollector(const Resolution& res, const ConstantMap& consts,
                  const CollectOptions& opts)
      : res_(res), consts_(consts), opts_(opts) {}

  ParallelRegion collect(const OmpStmt& stmt) {
    region_.stmt = &stmt;
    region_.simd_only = stmt.directive.kind == OmpDirectiveKind::Simd ||
                        (stmt.directive.kind == OmpDirectiveKind::ForSimd &&
                         !stmt.directive.forks_team());
    walk_omp(stmt, /*is_region_root=*/true);
    return std::move(region_);
  }

 private:
  // -- sharing ---------------------------------------------------------------

  struct SharingOverride {
    std::string name;
    std::optional<Sharing> previous;
  };

  std::vector<SharingOverride> apply_clauses(const OmpDirective& dir) {
    std::vector<SharingOverride> saved;
    auto apply = [&](const OmpClause& c, Sharing s) {
      for (const auto& item : c.vars) {
        const std::string name = base_name_of_clause_var(item);
        SharingOverride ov;
        ov.name = name;
        auto it = clause_sharing_.find(name);
        if (it != clause_sharing_.end()) ov.previous = it->second;
        saved.push_back(ov);
        clause_sharing_[name] = s;
      }
    };
    for (const auto& c : dir.clauses) {
      switch (c.kind) {
        case OmpClauseKind::Private: apply(c, Sharing::Private); break;
        case OmpClauseKind::FirstPrivate: apply(c, Sharing::FirstPrivate); break;
        case OmpClauseKind::LastPrivate: apply(c, Sharing::LastPrivate); break;
        case OmpClauseKind::Shared: apply(c, Sharing::Shared); break;
        case OmpClauseKind::Reduction: apply(c, Sharing::Reduction); break;
        case OmpClauseKind::Linear: apply(c, Sharing::Linear); break;
        default: break;
      }
    }
    return saved;
  }

  void restore_clauses(const std::vector<SharingOverride>& saved) {
    // Restore in reverse so nested shadowing unwinds correctly.
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      if (it->previous) {
        clause_sharing_[it->name] = *it->previous;
      } else {
        clause_sharing_.erase(it->name);
      }
    }
  }

  [[nodiscard]] Sharing classify(const VarDecl* var,
                                 const std::string& name) const {
    auto it = clause_sharing_.find(name);
    if (it != clause_sharing_.end()) return it->second;
    if (res_.is_threadprivate(var)) return Sharing::ThreadPrivate;
    if (declared_inside_.count(var) != 0) return Sharing::Private;
    for (const auto& li : dist_loops_) {
      if (li.induction == var) return Sharing::LoopPrivate;
    }
    return Sharing::Shared;
  }

  // -- statements -------------------------------------------------------------

  void walk_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        for (const auto& v : d.decls) {
          declared_inside_.insert(v.get());
          for (const auto& dim : v->array_dims) {
            if (dim) walk_expr(*dim, Mode::Read);
          }
          if (v->init) walk_expr(*v->init, Mode::Read);
        }
        break;
      }
      case StmtKind::Expr: {
        const auto& e = static_cast<const ExprStmt&>(s);
        track_locks(*e.expr);
        walk_expr(*e.expr, Mode::Read);
        break;
      }
      case StmtKind::Compound:
        for (const auto& st : static_cast<const CompoundStmt&>(s).body) {
          walk_stmt(*st);
        }
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        walk_expr(*i.cond, Mode::Read);
        walk_stmt(*i.then_branch);
        if (i.else_branch) walk_stmt(*i.else_branch);
        break;
      }
      case StmtKind::For:
        walk_sequential_loop(static_cast<const ForStmt&>(s));
        break;
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(s);
        walk_expr(*w.cond, Mode::Read);
        const bool saved = in_loop_;
        in_loop_ = true;
        walk_stmt(*w.body);
        in_loop_ = saved;
        break;
      }
      case StmtKind::Do: {
        const auto& d = static_cast<const DoStmt&>(s);
        const bool saved = in_loop_;
        in_loop_ = true;
        walk_stmt(*d.body);
        in_loop_ = saved;
        walk_expr(*d.cond, Mode::Read);
        break;
      }
      case StmtKind::Return: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        if (r.value) walk_expr(*r.value, Mode::Read);
        break;
      }
      case StmtKind::Omp:
        walk_omp(static_cast<const OmpStmt&>(s), /*is_region_root=*/false);
        break;
      default:
        break;
    }
  }

  void walk_sequential_loop(const ForStmt& f) {
    // Loop-control accesses happen on whichever thread runs the loop.
    if (f.init) walk_stmt_loop_control(*f.init);
    if (f.cond) walk_expr(*f.cond, Mode::Read);

    std::optional<LoopInfo> info = analyze_loop(f, consts_);
    const bool pushed = info.has_value();
    if (pushed) {
      info->distributed = false;
      seq_loops_.push_back(*info);
    }
    const bool saved = in_loop_;
    in_loop_ = true;
    walk_stmt(*f.body);
    if (f.inc) walk_expr(*f.inc, Mode::Read);
    in_loop_ = saved;
    if (pushed) seq_loops_.pop_back();
  }

  /// For-init: declarations register as region-private; assignments record
  /// accesses normally.
  void walk_stmt_loop_control(const Stmt& s) {
    if (const auto* d = stmt_cast<DeclStmt>(&s)) {
      for (const auto& v : d->decls) {
        declared_inside_.insert(v.get());
        if (v->init) walk_expr(*v->init, Mode::Read);
      }
      return;
    }
    if (const auto* e = stmt_cast<ExprStmt>(&s)) {
      walk_expr(*e->expr, Mode::Read);
    }
  }

  void walk_omp(const OmpStmt& s, bool is_region_root) {
    const OmpDirective& dir = s.directive;
    auto saved_clauses = apply_clauses(dir);

    switch (dir.kind) {
      case OmpDirectiveKind::Parallel:
      case OmpDirectiveKind::Target: {
        if (s.body) walk_stmt(*s.body);
        break;
      }
      case OmpDirectiveKind::ParallelFor:
      case OmpDirectiveKind::ParallelForSimd:
      case OmpDirectiveKind::TargetParallelFor:
      case OmpDirectiveKind::For:
      case OmpDirectiveKind::ForSimd:
      case OmpDirectiveKind::Simd: {
        walk_distributed_loop(s);
        // Implicit barrier at the end of a worksharing loop (not for the
        // region root, whose join ends the region anyway).
        if (!is_region_root &&
            (dir.kind == OmpDirectiveKind::For ||
             dir.kind == OmpDirectiveKind::ForSimd) &&
            !dir.has_clause(OmpClauseKind::Nowait)) {
          advance_phase("for-join", s.loc);
        }
        break;
      }
      case OmpDirectiveKind::Critical: {
        const bool saved = ctx_.in_critical;
        const std::string saved_name = ctx_.critical_name;
        ctx_.in_critical = true;
        ctx_.critical_name = dir.critical_name;
        if (s.body) walk_stmt(*s.body);
        ctx_.in_critical = saved;
        ctx_.critical_name = saved_name;
        break;
      }
      case OmpDirectiveKind::Atomic: {
        const VarDecl* saved_target = atomic_target_;
        atomic_target_ = find_atomic_target(s);
        if (s.body) walk_stmt(*s.body);
        atomic_target_ = saved_target;
        break;
      }
      case OmpDirectiveKind::Barrier:
        advance_phase("barrier", s.loc);
        break;
      case OmpDirectiveKind::Single:
      case OmpDirectiveKind::Master: {
        const int saved_once = ctx_.exec_once_id;
        // All master blocks run on the master thread: they share identity.
        ctx_.exec_once_id = dir.kind == OmpDirectiveKind::Master
                                ? kMasterOnceId
                                : next_once_id_++;
        if (s.body) walk_stmt(*s.body);
        ctx_.exec_once_id = saved_once;
        if (dir.kind == OmpDirectiveKind::Single &&
            !dir.has_clause(OmpClauseKind::Nowait)) {
          advance_phase("single-join", s.loc);  // implicit barrier
        }
        break;
      }
      case OmpDirectiveKind::Sections:
      case OmpDirectiveKind::ParallelSections: {
        if (const auto* block = stmt_cast<CompoundStmt>(s.body.get())) {
          for (const auto& child : block->body) {
            if (const auto* sec = stmt_cast<OmpStmt>(child.get());
                sec != nullptr &&
                sec->directive.kind == OmpDirectiveKind::Section) {
              const int saved_once = ctx_.exec_once_id;
              ctx_.exec_once_id = next_once_id_++;
              auto sec_clauses = apply_clauses(sec->directive);
              if (sec->body) walk_stmt(*sec->body);
              restore_clauses(sec_clauses);
              ctx_.exec_once_id = saved_once;
            } else {
              walk_stmt(*child);
            }
          }
        } else if (s.body) {
          walk_stmt(*s.body);
        }
        if (!dir.has_clause(OmpClauseKind::Nowait)) {
          advance_phase("sections-join", s.loc);
        }
        break;
      }
      case OmpDirectiveKind::Section: {
        // Orphaned section (outside our Sections handling): treat as once.
        const int saved_once = ctx_.exec_once_id;
        ctx_.exec_once_id = next_once_id_++;
        if (s.body) walk_stmt(*s.body);
        ctx_.exec_once_id = saved_once;
        break;
      }
      case OmpDirectiveKind::Task: {
        const int saved_task = ctx_.task_id;
        const bool saved_in_loop_task = ctx_.task_in_loop;
        const auto saved_depends = ctx_.depends;
        ctx_.task_id = next_task_id_++;
        ctx_.task_in_loop = in_loop_;
        ctx_.depends.clear();
        // Loop variables enclosing the spawn are iteration-distinct per
        // task instance (implicit/explicit firstprivate): model them as
        // distributed so subscript tests distinguish instances.
        const std::size_t promoted = seq_loops_.size();
        for (auto& li : seq_loops_) {
          LoopInfo dist = li;
          dist.distributed = true;
          dist_loops_.push_back(dist);
        }
        seq_loops_.clear();
        for (const auto& c : dir.clauses) {
          if (c.kind == OmpClauseKind::Depend) {
            for (const auto& v : c.vars) {
              ctx_.depends.emplace_back(c.arg, v);
            }
          }
        }
        if (s.body) walk_stmt(*s.body);
        for (std::size_t i = 0; i < promoted; ++i) {
          seq_loops_.push_back(dist_loops_.back());
          seq_loops_.back().distributed = false;
          dist_loops_.pop_back();
        }
        std::reverse(seq_loops_.begin(), seq_loops_.end());
        ctx_.task_id = saved_task;
        ctx_.task_in_loop = saved_in_loop_task;
        ctx_.depends = saved_depends;
        break;
      }
      case OmpDirectiveKind::Taskwait:
        ++ctx_.task_phase;
        break;
      case OmpDirectiveKind::Ordered: {
        const bool saved = ctx_.ordered;
        ctx_.ordered = true;
        if (s.body) walk_stmt(*s.body);
        ctx_.ordered = saved;
        break;
      }
      case OmpDirectiveKind::Flush:
      case OmpDirectiveKind::Threadprivate:
        break;
    }
    restore_clauses(saved_clauses);
  }

  void walk_distributed_loop(const OmpStmt& s) {
    const OmpDirective& dir = s.directive;
    const bool simd = dir.kind == OmpDirectiveKind::Simd ||
                      dir.kind == OmpDirectiveKind::ForSimd ||
                      dir.kind == OmpDirectiveKind::ParallelForSimd;
    std::int64_t safelen = 0;
    if (const auto* c = dir.find_clause(OmpClauseKind::Safelen)) {
      safelen = c->int_arg;
    }
    std::int64_t collapse = 1;
    if (const auto* c = dir.find_clause(OmpClauseKind::Collapse)) {
      collapse = std::max<std::int64_t>(1, c->int_arg);
    }

    const Stmt* body = s.body.get();
    // Unwrap a compound holding a single for.
    while (const auto* block = stmt_cast<CompoundStmt>(body)) {
      if (block->body.size() != 1) break;
      body = block->body[0].get();
    }

    std::size_t pushed = 0;
    const Stmt* cursor = body;
    for (std::int64_t level = 0; level < collapse; ++level) {
      const auto* loop = stmt_cast<ForStmt>(cursor);
      if (loop == nullptr) break;
      std::optional<LoopInfo> info = analyze_loop(*loop, consts_);
      if (!info) {
        // Record control accesses of the unrecognized loop and stop.
        if (loop->init) walk_stmt_loop_control(*loop->init);
        if (loop->cond) walk_expr(*loop->cond, Mode::Read);
        if (loop->inc) walk_expr(*loop->inc, Mode::Read);
        break;
      }
      info->distributed = true;
      info->simd = simd;
      info->safelen = safelen;
      // Push before walking the loop-control expressions so the induction
      // variable classifies as loop-private in `i = 0` / `i < n` / `i++`.
      dist_loops_.push_back(*info);
      ++pushed;
      if (loop->init) walk_stmt_loop_control(*loop->init);
      if (loop->cond) walk_expr(*loop->cond, Mode::Read);
      if (loop->inc) walk_expr(*loop->inc, Mode::Read);
      cursor = loop->body.get();
      while (const auto* block = stmt_cast<CompoundStmt>(cursor)) {
        if (block->body.size() != 1 || level + 1 >= collapse) break;
        cursor = block->body[0].get();
      }
    }

    if (pushed == 0) {
      // Unrecognized loop shape: walk the body anyway so accesses are not
      // lost; everything is treated as concurrent with unknown iteration.
      if (s.body) {
        const bool saved = in_loop_;
        in_loop_ = true;
        walk_stmt(*s.body);
        in_loop_ = saved;
      }
      return;
    }

    const bool saved = in_loop_;
    in_loop_ = true;
    walk_stmt(*cursor);
    in_loop_ = saved;
    for (std::size_t i = 0; i < pushed; ++i) dist_loops_.pop_back();
  }

  void advance_phase(const char* kind, const SourceLoc& loc) {
    ++ctx_.phase;
    PhaseBoundary b;
    b.phase_after = ctx_.phase;
    b.kind = kind;
    b.loc = loc;
    region_.boundaries.push_back(std::move(b));
  }

  [[nodiscard]] const VarDecl* find_atomic_target(const OmpStmt& s) const {
    const Stmt* body = s.body.get();
    while (const auto* block = stmt_cast<CompoundStmt>(body)) {
      if (block->body.size() != 1) break;
      body = block->body[0].get();
    }
    const auto* es = stmt_cast<ExprStmt>(body);
    if (es == nullptr) return nullptr;
    const Expr* e = es->expr.get();
    if (const auto* a = expr_cast<Assign>(e)) {
      // `atomic read` protects the location being read, not the target.
      const Expr* side = s.directive.atomic_kind == OmpAtomicKind::Read
                             ? a->value.get()
                             : a->target.get();
      if (const Ident* id = base_ident(side)) return id->decl;
      return nullptr;
    }
    if (const auto* u = expr_cast<Unary>(e)) {
      if (const Ident* id = base_ident(u->operand.get())) return id->decl;
    }
    return nullptr;
  }

  // -- locks -------------------------------------------------------------------

  void track_locks(const Expr& e) {
    const auto* call = expr_cast<Call>(&e);
    if (call == nullptr || call->args.empty()) return;
    const bool set = call->callee == "omp_set_lock" ||
                     call->callee == "omp_set_nest_lock";
    const bool unset = call->callee == "omp_unset_lock" ||
                       call->callee == "omp_unset_nest_lock";
    if (!set && !unset) return;
    const Ident* id = base_ident(call->args[0].get());
    if (id == nullptr || id->decl == nullptr) return;
    if (set) {
      ctx_.locks.push_back(id->decl);
    } else {
      auto it = std::find(ctx_.locks.begin(), ctx_.locks.end(), id->decl);
      if (it != ctx_.locks.end()) ctx_.locks.erase(it);
    }
  }

  // -- expressions --------------------------------------------------------------

  void walk_expr(const Expr& e, Mode mode) {
    switch (e.kind) {
      case ExprKind::Ident: {
        const auto& id = static_cast<const Ident&>(e);
        if (id.decl == nullptr) return;
        // A bare array/pointer name evaluates to an address, not memory.
        if (id.decl->is_array() || id.decl->type.is_pointer()) return;
        record_access(e, mode);
        return;
      }
      case ExprKind::Subscript: {
        record_access(e, mode);
        // Subscript indices are reads.
        const Expr* cur = &e;
        while (const auto* sub = expr_cast<Subscript>(cur)) {
          walk_expr(*sub->index, Mode::Read);
          cur = sub->base.get();
        }
        return;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const Unary&>(e);
        switch (u.op) {
          case UnaryOp::PreInc:
          case UnaryOp::PreDec:
          case UnaryOp::PostInc:
          case UnaryOp::PostDec:
            walk_expr(*u.operand, Mode::ReadWrite);
            return;
          case UnaryOp::AddrOf:
            // Taking an address is not an access.
            return;
          case UnaryOp::Deref:
            record_access(e, mode);
            return;
          default:
            walk_expr(*u.operand, Mode::Read);
            return;
        }
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const Binary&>(e);
        walk_expr(*b.lhs, Mode::Read);
        walk_expr(*b.rhs, Mode::Read);
        return;
      }
      case ExprKind::Assign: {
        const auto& a = static_cast<const Assign&>(e);
        walk_expr(*a.target,
                  a.op == AssignOp::Assign ? Mode::Write : Mode::ReadWrite);
        walk_expr(*a.value, Mode::Read);
        return;
      }
      case ExprKind::Conditional: {
        const auto& c = static_cast<const Conditional&>(e);
        walk_expr(*c.cond, Mode::Read);
        walk_expr(*c.then_expr, Mode::Read);
        walk_expr(*c.else_expr, Mode::Read);
        return;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const Call&>(e);
        const bool known = is_omp_runtime_call(c.callee) || is_io_call(c.callee);
        for (const auto& arg : c.args) {
          const Ident* id = base_ident(arg.get());
          const bool is_memory_arg =
              id != nullptr && id->decl != nullptr &&
              (id->decl->is_array() || id->decl->type.is_pointer() ||
               arg->kind == ExprKind::Unary);
          if (!known && is_memory_arg &&
              (expr_cast<Ident>(arg.get()) != nullptr ||
               (expr_cast<Unary>(arg.get()) != nullptr &&
                static_cast<const Unary&>(*arg).op == UnaryOp::AddrOf))) {
            // Whole object handed to an unknown function.
            if (opts_.track_call_effects) {
              record_call_effect(*arg, *id);
            }
            continue;
          }
          walk_expr(*arg, Mode::Read);
        }
        return;
      }
      case ExprKind::Cast:
        walk_expr(*static_cast<const Cast&>(e).operand, Mode::Read);
        return;
      default:
        return;
    }
  }

  void record_call_effect(const Expr& arg, const Ident& id) {
    AccessInfo info;
    info.var = res_.canonical(id.decl);
    info.expr = &arg;
    info.is_write = true;
    info.via_call = true;
    info.loc = id.loc;
    info.text = expr_to_string(arg);
    info.sharing = classify(info.var, id.name);
    info.ctx = ctx_;
    info.dist_loops = dist_loops_;
    info.seq_loops = seq_loops_;
    region_.accesses.push_back(info);
    info.is_write = false;
    region_.accesses.push_back(std::move(info));
  }

  void record_access(const Expr& e, Mode mode) {
    const Ident* id = base_ident(&e);
    if (id == nullptr || id->decl == nullptr) return;
    AccessInfo info;
    info.var = res_.canonical(id->decl);
    info.expr = &e;
    info.loc = id->loc;
    info.text = expr_to_string(e);
    info.sharing = classify(info.var, id->name);
    info.ctx = ctx_;
    if (atomic_target_ != nullptr && id->decl == atomic_target_) {
      info.ctx.atomic = true;
    }
    info.dist_loops = dist_loops_;
    info.seq_loops = seq_loops_;

    // Subscripts, outermost first.
    std::vector<const Expr*> subs;
    const Expr* cur = &e;
    while (true) {
      if (const auto* sub = expr_cast<Subscript>(cur)) {
        subs.push_back(sub->index.get());
        cur = sub->base.get();
        continue;
      }
      if (const auto* un = expr_cast<Unary>(cur)) {
        if (un->op == UnaryOp::Deref) {
          subs.push_back(nullptr);  // unknown index
          cur = un->operand.get();
          continue;
        }
      }
      break;
    }
    std::reverse(subs.begin(), subs.end());
    info.subscripts = std::move(subs);

    if (mode == Mode::ReadWrite) {
      info.is_write = false;
      region_.accesses.push_back(info);
      info.is_write = true;
      region_.accesses.push_back(std::move(info));
    } else {
      info.is_write = mode == Mode::Write;
      region_.accesses.push_back(std::move(info));
    }
  }

  static constexpr int kMasterOnceId = -2;

  const Resolution& res_;
  const ConstantMap& consts_;
  CollectOptions opts_;
  ParallelRegion region_;

  SyncContext ctx_;
  std::vector<LoopInfo> dist_loops_;
  std::vector<LoopInfo> seq_loops_;
  std::map<std::string, Sharing> clause_sharing_;
  std::set<const VarDecl*> declared_inside_;
  int next_once_id_ = 0;
  int next_task_id_ = 0;
  const VarDecl* atomic_target_ = nullptr;
  bool in_loop_ = false;
};

/// Finds region roots in a statement tree.
class RegionFinder {
 public:
  RegionFinder(const Resolution& res, const ConstantMap& consts,
               const CollectOptions& opts,
               std::vector<ParallelRegion>& out)
      : res_(res), consts_(consts), opts_(opts), out_(out) {}

  void walk(const Stmt& s) {
    if (const auto* omp = stmt_cast<OmpStmt>(&s)) {
      const auto kind = omp->directive.kind;
      const bool is_root = omp->directive.forks_team() ||
                           kind == OmpDirectiveKind::Simd ||
                           kind == OmpDirectiveKind::ForSimd;
      if (is_root) {
        ParallelRegion region =
            RegionCollector(res_, consts_, opts_).collect(*omp);
        region.consts = consts_;
        out_.push_back(std::move(region));
        return;  // nested constructs were handled inside the collector
      }
      if (kind == OmpDirectiveKind::Target && omp->body) {
        walk(*omp->body);  // look for parallel inside target
        return;
      }
      if (omp->body) walk(*omp->body);
      return;
    }
    switch (s.kind) {
      case StmtKind::Compound:
        for (const auto& st : static_cast<const CompoundStmt&>(s).body) {
          walk(*st);
        }
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        walk(*i.then_branch);
        if (i.else_branch) walk(*i.else_branch);
        break;
      }
      case StmtKind::For:
        walk(*static_cast<const ForStmt&>(s).body);
        break;
      case StmtKind::While:
        walk(*static_cast<const WhileStmt&>(s).body);
        break;
      case StmtKind::Do:
        walk(*static_cast<const DoStmt&>(s).body);
        break;
      default:
        break;
    }
  }

 private:
  const Resolution& res_;
  const ConstantMap& consts_;
  const CollectOptions& opts_;
  std::vector<ParallelRegion>& out_;
};

}  // namespace

std::optional<LoopInfo> analyze_loop(const ForStmt& loop,
                                     const ConstantMap& consts) {
  LoopInfo info;
  info.loop = &loop;

  // Induction variable and initial value.
  const Expr* init_value = nullptr;
  if (const auto* d = stmt_cast<DeclStmt>(loop.init.get())) {
    if (d->decls.size() != 1) return std::nullopt;
    info.induction = d->decls[0].get();
    init_value = d->decls[0]->init.get();
  } else if (const auto* es = stmt_cast<ExprStmt>(loop.init.get())) {
    const auto* a = expr_cast<Assign>(es->expr.get());
    if (a == nullptr || a->op != AssignOp::Assign) return std::nullopt;
    const auto* id = expr_cast<Ident>(a->target.get());
    if (id == nullptr || id->decl == nullptr) return std::nullopt;
    info.induction = id->decl;
    init_value = a->value.get();
  } else {
    return std::nullopt;
  }

  // Step from the increment.
  std::int64_t step = 0;
  if (const auto* u = expr_cast<Unary>(loop.inc.get())) {
    const auto* id = expr_cast<Ident>(u->operand.get());
    if (id == nullptr || id->decl != info.induction) return std::nullopt;
    switch (u->op) {
      case UnaryOp::PreInc:
      case UnaryOp::PostInc: step = 1; break;
      case UnaryOp::PreDec:
      case UnaryOp::PostDec: step = -1; break;
      default: return std::nullopt;
    }
  } else if (const auto* a = expr_cast<Assign>(loop.inc.get())) {
    const auto* id = expr_cast<Ident>(a->target.get());
    if (id == nullptr || id->decl != info.induction) return std::nullopt;
    auto delta = consts.eval(*a->value);
    if (a->op == AssignOp::Add && delta) {
      step = *delta;
    } else if (a->op == AssignOp::Sub && delta) {
      step = -*delta;
    } else if (a->op == AssignOp::Assign) {
      // i = i + k  or  i = i - k
      const auto* b = expr_cast<Binary>(a->value.get());
      if (b == nullptr) return std::nullopt;
      const auto* lhs_id = expr_cast<Ident>(b->lhs.get());
      auto k = consts.eval(*b->rhs);
      if (lhs_id == nullptr || lhs_id->decl != info.induction || !k) {
        return std::nullopt;
      }
      if (b->op == BinaryOp::Add) step = *k;
      else if (b->op == BinaryOp::Sub) step = -*k;
      else return std::nullopt;
    } else {
      return std::nullopt;
    }
  } else {
    return std::nullopt;
  }
  if (step == 0) return std::nullopt;
  info.step = step;

  // Bounds: `init` on the step-entry side, condition on the exit side.
  std::optional<std::int64_t> init_const;
  std::optional<TidForm> init_tid;
  if (init_value != nullptr) {
    init_const = consts.eval(*init_value);
    if (!init_const) init_tid = consts.tid_eval(*init_value);
  }

  std::optional<std::int64_t> limit;
  std::optional<TidForm> limit_tid;
  bool limit_inclusive = false;
  if (const auto* cond = expr_cast<Binary>(loop.cond.get())) {
    const auto* id = expr_cast<Ident>(cond->lhs.get());
    if (id != nullptr && id->decl == info.induction) {
      bool shape_ok = true;
      switch (cond->op) {
        case BinaryOp::Lt: limit_inclusive = false; break;
        case BinaryOp::Le: limit_inclusive = true; break;
        case BinaryOp::Gt: limit_inclusive = false; break;
        case BinaryOp::Ge: limit_inclusive = true; break;
        case BinaryOp::Ne: limit_inclusive = false; break;
        default: shape_ok = false; break;
      }
      if (shape_ok) {
        limit = consts.eval(*cond->rhs);
        if (!limit) limit_tid = consts.tid_eval(*cond->rhs);
      }
    }
  }

  // The exclusive-bound adjustment (strict comparison) applied to either
  // the constant or the thread-id form.
  const auto adjust_tid = [](TidForm f, std::int64_t delta) {
    f.constant += delta;
    return f;
  };
  if (step > 0) {
    info.lower = init_const;
    if (!init_const && init_tid) info.lower_tid = init_tid;
    if (limit) {
      info.upper = limit_inclusive ? *limit : *limit - 1;
    } else if (limit_tid) {
      info.upper_tid = adjust_tid(*limit_tid, limit_inclusive ? 0 : -1);
    }
  } else {
    info.upper = init_const;
    if (!init_const && init_tid) info.upper_tid = init_tid;
    if (limit) {
      info.lower = limit_inclusive ? *limit : *limit + 1;
    } else if (limit_tid) {
      info.lower_tid = adjust_tid(*limit_tid, limit_inclusive ? 0 : 1);
    }
  }
  return info;
}

std::vector<ParallelRegion> collect_regions(const TranslationUnit& unit,
                                            const Resolution& res,
                                            const CollectOptions& opts) {
  std::vector<ParallelRegion> regions;
  for (const auto& fn : unit.functions) {
    if (!fn->body) continue;
    ConstantMap consts = ConstantMap::build(unit, *fn);
    RegionFinder finder(res, consts, opts, regions);
    finder.walk(*fn->body);
  }
  return regions;
}

}  // namespace drbml::analysis
