#include "analysis/affine.hpp"

namespace drbml::analysis {

using namespace minic;

const VarDecl* tid_symbol() noexcept {
  // A never-declared sentinel: name chosen for readable rendering in
  // dependence-graph and evidence output.
  static const VarDecl sentinel = [] {
    VarDecl v;
    v.name = "__tid";
    return v;
  }();
  return &sentinel;
}

LinearForm& LinearForm::operator+=(const LinearForm& o) {
  if (!o.is_affine) is_affine = false;
  if (!is_affine) return *this;
  constant += o.constant;
  for (const auto& [v, c] : o.coeffs) coeffs[v] += c;
  return *this;
}

LinearForm& LinearForm::operator-=(const LinearForm& o) {
  if (!o.is_affine) is_affine = false;
  if (!is_affine) return *this;
  constant -= o.constant;
  for (const auto& [v, c] : o.coeffs) coeffs[v] -= c;
  return *this;
}

void LinearForm::scale(std::int64_t k) {
  constant *= k;
  for (auto& [v, c] : coeffs) c *= k;
}

LinearForm linearize(const Expr& e, const ConstantMap& consts,
                     bool model_tid) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      LinearForm f;
      f.constant = static_cast<const IntLit&>(e).value;
      return f;
    }
    case ExprKind::CharLit: {
      LinearForm f;
      f.constant = static_cast<const CharLit&>(e).value;
      return f;
    }
    case ExprKind::Ident: {
      const auto& id = static_cast<const Ident&>(e);
      LinearForm f;
      if (id.decl == nullptr) return LinearForm::non_affine();
      if (auto v = consts.value_of(id.decl)) {
        f.constant = *v;
      } else if (auto tid = model_tid ? consts.tid_form_of(id.decl)
                                      : std::nullopt) {
        if (tid->coeff != 0) f.coeffs[tid_symbol()] = tid->coeff;
        f.constant = tid->constant;
      } else {
        f.coeffs[id.decl] = 1;
      }
      return f;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const Unary&>(e);
      LinearForm f = linearize(*u.operand, consts, model_tid);
      switch (u.op) {
        case UnaryOp::Plus: return f;
        case UnaryOp::Neg: f.scale(-1); return f;
        default: return LinearForm::non_affine();
      }
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const Binary&>(e);
      LinearForm l = linearize(*b.lhs, consts, model_tid);
      LinearForm r = linearize(*b.rhs, consts, model_tid);
      switch (b.op) {
        case BinaryOp::Add: l += r; return l;
        case BinaryOp::Sub: l -= r; return l;
        case BinaryOp::Mul:
          if (l.is_affine && l.is_constant()) {
            r.scale(l.constant);
            return r;
          }
          if (r.is_affine && r.is_constant()) {
            l.scale(r.constant);
            return l;
          }
          return LinearForm::non_affine();
        case BinaryOp::Div:
          if (r.is_affine && r.is_constant() && r.constant != 0 &&
              l.is_affine && l.is_constant() &&
              l.constant % r.constant == 0) {
            LinearForm f;
            f.constant = l.constant / r.constant;
            return f;
          }
          return LinearForm::non_affine();
        default:
          // %, shifts, comparisons: constant-fold or give up.
          if (l.is_affine && l.is_constant() && r.is_affine &&
              r.is_constant()) {
            // Delegate to ConstantMap::eval-equivalent folding.
            LinearForm f;
            switch (b.op) {
              case BinaryOp::Mod:
                if (r.constant == 0) return LinearForm::non_affine();
                f.constant = l.constant % r.constant;
                return f;
              case BinaryOp::Shl: f.constant = l.constant << r.constant; return f;
              case BinaryOp::Shr: f.constant = l.constant >> r.constant; return f;
              default: return LinearForm::non_affine();
            }
          }
          return LinearForm::non_affine();
      }
    }
    case ExprKind::Cast:
      return linearize(*static_cast<const Cast&>(e).operand, consts,
                       model_tid);
    case ExprKind::Call: {
      const auto& c = static_cast<const Call&>(e);
      if (model_tid && c.callee == "omp_get_thread_num" && c.args.empty()) {
        LinearForm f;
        f.coeffs[tid_symbol()] = 1;
        return f;
      }
      return LinearForm::non_affine();
    }
    default:
      // Subscript (indirect indexing), assignments: non-affine.
      return LinearForm::non_affine();
  }
}

}  // namespace drbml::analysis
