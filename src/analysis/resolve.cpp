#include "analysis/resolve.hpp"

#include <string>

namespace drbml::analysis {

using namespace minic;

namespace {

class Resolver {
 public:
  explicit Resolver(Resolution& out) : out_(out) {}

  void run(TranslationUnit& tu) {
    push_scope();
    for (auto& g : tu.globals) {
      declare(g.get());
      if (g->init) resolve_expr(*g->init);
      for (auto& d : g->array_dims) {
        if (d) resolve_expr(*d);
      }
    }
    for (auto& f : tu.functions) {
      push_scope();
      for (auto& p : f->params) declare(p.get());
      if (f->body) resolve_stmt(*f->body);
      pop_scope();
    }
    // threadprivate directives name globals.
    for (const auto& dir : tu.global_directives) {
      if (dir.kind != OmpDirectiveKind::Threadprivate) continue;
      for (const auto& clause : dir.clauses) {
        for (const auto& name : clause.vars) {
          if (const VarDecl* d = lookup_global(tu, name)) {
            out_.threadprivate.push_back(d);
          }
        }
      }
    }
    pop_scope();
  }

 private:
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void declare(const VarDecl* d) {
    scopes_.back()[d->name] = d;
    out_.all_decls.push_back(d);
  }

  [[nodiscard]] const VarDecl* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return nullptr;
  }

  [[nodiscard]] static const VarDecl* lookup_global(
      const TranslationUnit& tu, const std::string& name) {
    for (const auto& g : tu.globals) {
      if (g->name == name) return g.get();
    }
    return nullptr;
  }

  void resolve_stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::Decl: {
        auto& d = static_cast<DeclStmt&>(s);
        for (auto& v : d.decls) {
          for (auto& dim : v->array_dims) {
            if (dim) resolve_expr(*dim);
          }
          if (v->init) {
            resolve_expr(*v->init);
            note_alias(v.get(), v->init.get());
          }
          declare(v.get());
        }
        break;
      }
      case StmtKind::Expr:
        resolve_expr(*static_cast<ExprStmt&>(s).expr);
        break;
      case StmtKind::Compound: {
        push_scope();
        for (auto& st : static_cast<CompoundStmt&>(s).body) {
          resolve_stmt(*st);
        }
        pop_scope();
        break;
      }
      case StmtKind::If: {
        auto& i = static_cast<IfStmt&>(s);
        resolve_expr(*i.cond);
        resolve_stmt(*i.then_branch);
        if (i.else_branch) resolve_stmt(*i.else_branch);
        break;
      }
      case StmtKind::For: {
        auto& f = static_cast<ForStmt&>(s);
        push_scope();
        if (f.init) resolve_stmt(*f.init);
        if (f.cond) resolve_expr(*f.cond);
        if (f.inc) resolve_expr(*f.inc);
        resolve_stmt(*f.body);
        pop_scope();
        break;
      }
      case StmtKind::While: {
        auto& w = static_cast<WhileStmt&>(s);
        resolve_expr(*w.cond);
        resolve_stmt(*w.body);
        break;
      }
      case StmtKind::Do: {
        auto& d = static_cast<DoStmt&>(s);
        resolve_stmt(*d.body);
        resolve_expr(*d.cond);
        break;
      }
      case StmtKind::Return: {
        auto& r = static_cast<ReturnStmt&>(s);
        if (r.value) resolve_expr(*r.value);
        break;
      }
      case StmtKind::Omp: {
        auto& o = static_cast<OmpStmt&>(s);
        for (auto& c : o.directive.clauses) {
          if (c.expr) resolve_expr(*c.expr);
        }
        if (o.body) resolve_stmt(*o.body);
        break;
      }
      case StmtKind::Break:
      case StmtKind::Continue:
      case StmtKind::Null:
        break;
    }
  }

  void resolve_expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::Ident: {
        auto& id = static_cast<Ident&>(e);
        id.decl = lookup(id.name);
        break;
      }
      case ExprKind::Subscript: {
        auto& s = static_cast<Subscript&>(e);
        resolve_expr(*s.base);
        resolve_expr(*s.index);
        break;
      }
      case ExprKind::Unary:
        resolve_expr(*static_cast<Unary&>(e).operand);
        break;
      case ExprKind::Binary: {
        auto& b = static_cast<Binary&>(e);
        resolve_expr(*b.lhs);
        resolve_expr(*b.rhs);
        break;
      }
      case ExprKind::Assign: {
        auto& a = static_cast<Assign&>(e);
        resolve_expr(*a.target);
        resolve_expr(*a.value);
        // `p = a;` makes p alias a.
        if (a.op == AssignOp::Assign) {
          if (const auto* target = expr_cast<Ident>(a.target.get())) {
            if (target->decl != nullptr && target->decl->type.is_pointer()) {
              note_alias(target->decl, a.value.get());
            }
          }
        }
        break;
      }
      case ExprKind::Conditional: {
        auto& c = static_cast<Conditional&>(e);
        resolve_expr(*c.cond);
        resolve_expr(*c.then_expr);
        resolve_expr(*c.else_expr);
        break;
      }
      case ExprKind::Call: {
        auto& c = static_cast<Call&>(e);
        for (auto& arg : c.args) resolve_expr(*arg);
        break;
      }
      case ExprKind::Cast:
        resolve_expr(*static_cast<Cast&>(e).operand);
        break;
      default:
        break;
    }
  }

  /// Records `ptr aliases obj` for initializers/assignments of the forms
  /// `p = a`, `p = &a[...]`, `p = a + k`, `p = (T*)malloc(...)`.
  void note_alias(const VarDecl* ptr, const Expr* value) {
    if (ptr == nullptr || !ptr->type.is_pointer()) return;
    const Expr* v = value;
    while (true) {
      if (const auto* cast = expr_cast<Cast>(v)) {
        v = cast->operand.get();
        continue;
      }
      if (const auto* un = expr_cast<Unary>(v)) {
        if (un->op == UnaryOp::AddrOf) {
          v = un->operand.get();
          continue;
        }
      }
      if (const auto* bin = expr_cast<Binary>(v)) {
        if (bin->op == BinaryOp::Add || bin->op == BinaryOp::Sub) {
          v = bin->lhs.get();
          continue;
        }
      }
      if (const auto* sub = expr_cast<Subscript>(v)) {
        v = sub->base.get();
        continue;
      }
      break;
    }
    if (const auto* id = expr_cast<Ident>(v)) {
      if (id->decl != nullptr && id->decl != ptr) {
        out_.alias_target[ptr] = id->decl;
      }
    }
  }

  Resolution& out_;
  std::vector<std::map<std::string, const VarDecl*>> scopes_;
};

}  // namespace

const minic::VarDecl* Resolution::canonical(
    const minic::VarDecl* v) const noexcept {
  const minic::VarDecl* cur = v;
  // Follow alias links with a bound to stay safe against cycles.
  for (int i = 0; i < 8; ++i) {
    auto it = alias_target.find(cur);
    if (it == alias_target.end()) return cur;
    cur = it->second;
  }
  return cur;
}

bool Resolution::is_threadprivate(const minic::VarDecl* v) const noexcept {
  for (const auto* t : threadprivate) {
    if (t == v) return true;
  }
  return false;
}

Resolution resolve(minic::TranslationUnit& unit) {
  Resolution out;
  Resolver(out).run(unit);
  return out;
}

}  // namespace drbml::analysis
