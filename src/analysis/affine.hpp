// Affine (linear) forms over program variables.
//
// A subscript like `2*i + j + len - 1` becomes the linear form
// {i: 2, j: 1, len: 1} + (-1). Dependence tests subtract two forms and
// reason about integer solutions (GCD + Banerjee-style bounds).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "analysis/consteval.hpp"
#include "minic/ast.hpp"

namespace drbml::analysis {

/// A linear form: sum of coeff*var plus a constant. `is_affine` is false
/// when the source expression contains multiplication of variables, calls,
/// array reads (indirect indexing), or other non-linear constructs.
struct LinearForm {
  std::map<const minic::VarDecl*, std::int64_t> coeffs;
  std::int64_t constant = 0;
  bool is_affine = true;

  [[nodiscard]] std::int64_t coeff(const minic::VarDecl* v) const noexcept {
    auto it = coeffs.find(v);
    return it == coeffs.end() ? 0 : it->second;
  }

  /// True if the form involves no variables at all.
  [[nodiscard]] bool is_constant() const noexcept {
    if (!is_affine) return false;
    for (const auto& [v, c] : coeffs) {
      if (c != 0) return false;
    }
    return true;
  }

  LinearForm& operator+=(const LinearForm& o);
  LinearForm& operator-=(const LinearForm& o);
  void scale(std::int64_t k);

  [[nodiscard]] static LinearForm non_affine() {
    LinearForm f;
    f.is_affine = false;
    return f;
  }
};

/// The distinguished pseudo-variable standing for omp_get_thread_num().
/// With thread-id modeling enabled, `a[omp_get_thread_num()]` linearizes
/// to {tid_symbol(): 1}; the dependence tester treats its coefficient as a
/// per-thread term (distinct threads, distinct values). The sentinel never
/// aliases a real declaration.
[[nodiscard]] const minic::VarDecl* tid_symbol() noexcept;

/// Builds the linear form of `e`. Variables with known constant values (per
/// `consts`) fold into the constant term; other variables appear with their
/// coefficients. Non-linear constructs yield `is_affine == false`.
///
/// With `model_tid`, calls to omp_get_thread_num() and variables carrying a
/// TidForm binding contribute tid_symbol() terms instead of going
/// non-affine; without it (the legacy behaviour) they stay non-affine.
[[nodiscard]] LinearForm linearize(const minic::Expr& e,
                                   const ConstantMap& consts,
                                   bool model_tid = false);

}  // namespace drbml::analysis
