// Affine (linear) forms over program variables.
//
// A subscript like `2*i + j + len - 1` becomes the linear form
// {i: 2, j: 1, len: 1} + (-1). Dependence tests subtract two forms and
// reason about integer solutions (GCD + Banerjee-style bounds).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "analysis/consteval.hpp"
#include "minic/ast.hpp"

namespace drbml::analysis {

/// A linear form: sum of coeff*var plus a constant. `is_affine` is false
/// when the source expression contains multiplication of variables, calls,
/// array reads (indirect indexing), or other non-linear constructs.
struct LinearForm {
  std::map<const minic::VarDecl*, std::int64_t> coeffs;
  std::int64_t constant = 0;
  bool is_affine = true;

  [[nodiscard]] std::int64_t coeff(const minic::VarDecl* v) const noexcept {
    auto it = coeffs.find(v);
    return it == coeffs.end() ? 0 : it->second;
  }

  /// True if the form involves no variables at all.
  [[nodiscard]] bool is_constant() const noexcept {
    if (!is_affine) return false;
    for (const auto& [v, c] : coeffs) {
      if (c != 0) return false;
    }
    return true;
  }

  LinearForm& operator+=(const LinearForm& o);
  LinearForm& operator-=(const LinearForm& o);
  void scale(std::int64_t k);

  [[nodiscard]] static LinearForm non_affine() {
    LinearForm f;
    f.is_affine = false;
    return f;
  }
};

/// Builds the linear form of `e`. Variables with known constant values (per
/// `consts`) fold into the constant term; other variables appear with their
/// coefficients. Non-linear constructs yield `is_affine == false`.
[[nodiscard]] LinearForm linearize(const minic::Expr& e,
                                   const ConstantMap& consts);

}  // namespace drbml::analysis
