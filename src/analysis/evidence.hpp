// Machine-checkable evidence chains attached to race verdicts.
//
// Every candidate pair the static detector examines -- reported or
// discharged -- carries an Evidence record: the barrier phases of both
// accesses, the locksets held at each side, the decisive dependence test
// with the bounds it used, and the ordered list of rules consulted. A
// discharged pair names the rule that removed it; a reported pair shows
// that every discharge rule failed. Downstream consumers (lint, repair
// ranking, the evidence prompt modality, `drbml analyze --explain`)
// interrogate the chain instead of a bare boolean.
//
// Rule ids are stable strings:
//   region.serial        if(0)/num_threads(1) makes the region serial
//   mhp.phase            barrier phases differ (cannot overlap in time)
//   mhp.single-instance  same single/master/section instance (one thread)
//   mhp.task-order       taskwait phase or same-task-instance ordering
//   mhp.task-depend      depend(in/out/inout) clauses order the tasks
//   lockset.common       both sides hold a common guard
//   dep.gcd              GCD test proves the subscripts disjoint
//   dep.banerjee         interval bounds exclude a zero difference
//   dep.distance         forced dependence distance infeasible / all zero
//   dep.tid-disjoint     thread-id indexing keeps threads on disjoint slots
//   dep.nonaffine        non-affine subscripts, conservative conflict
//   dep.conflict         the dependence system admits a cross-thread pair
#pragma once

#include <string>
#include <vector>

#include "support/json.hpp"

namespace drbml::analysis {

/// One rule application in an evidence chain.
struct EvidenceStep {
  std::string rule;    // stable rule id (see file comment)
  bool discharged = false;  // true when this rule removed the pair
  std::string detail;  // human-readable specifics (bounds, names, phases)

  friend bool operator==(const EvidenceStep&, const EvidenceStep&) = default;
};

/// The full evidence chain for one candidate pair.
struct Evidence {
  // Barrier-phase ids of the two accesses (mhp.hpp).
  int phase_first = 0;
  int phase_second = 0;
  // Rendered guard names held at each side and their intersection
  // (lockset.hpp): "critical(name)", "lock:l", "atomic", "ordered".
  std::vector<std::string> locks_first;
  std::vector<std::string> locks_second;
  std::vector<std::string> common_guards;
  // Decisive dependence test and its detail, when the pair reached the
  // dependence stage ("" otherwise).
  std::string dep_test;
  std::string dep_detail;
  // Ordered rule applications, in the order the detector consulted them.
  std::vector<EvidenceStep> steps;
  // Rule id that discharged the pair; "" = the pair was reported racy.
  std::string discharge_rule;

  [[nodiscard]] bool discharged() const noexcept {
    return !discharge_rule.empty();
  }

  friend bool operator==(const Evidence&, const Evidence&) = default;
};

/// Serializes an evidence chain to JSON (stable key order).
[[nodiscard]] json::Value evidence_to_json(const Evidence& ev);

/// Parses evidence produced by evidence_to_json. Throws json::JsonError
/// (via accessors) on malformed input. Round-trip identity is tested.
[[nodiscard]] Evidence evidence_from_json(const json::Value& v);

/// One-line rendering for text reports:
/// "phase 0/1; guards {critical} & {critical} = {critical}; dep ...".
[[nodiscard]] std::string evidence_to_text(const Evidence& ev);

/// Multi-line rendering of the full chain (one indented line per step),
/// used by `drbml analyze --explain`.
[[nodiscard]] std::string evidence_chain_text(const Evidence& ev);

}  // namespace drbml::analysis
