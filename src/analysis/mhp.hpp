// Barrier-aware may-happen-in-parallel analysis.
//
// The collector splits every parallel region into phases at barriers and
// implicit worksharing joins (end of `for`/`single`/`sections` without
// `nowait`); this module exposes the resulting partition with provenance,
// decides whether a region is statically serial (`if(0)` /
// `num_threads(1)` clauses), and applies the ordering filters between two
// accesses -- phase separation, single/master/section instance identity,
// task phases and depend-clause ordering -- recording each consulted rule
// as an evidence step.
#pragma once

#include <string>

#include "analysis/access.hpp"
#include "analysis/evidence.hpp"

namespace drbml::analysis {

/// The phase partition of one region: how many barrier-separated phases
/// its accesses fall into, and the boundary that starts each new phase.
struct PhasePartition {
  int phases = 1;  // max phase index + 1
  std::vector<PhaseBoundary> boundaries;

  [[nodiscard]] static PhasePartition of(const ParallelRegion& region);
};

/// A region the clauses force serial: `if(expr)` folding to 0 or
/// `num_threads(expr)` folding to 1, with no nested team-forking construct
/// that could reintroduce parallelism.
struct SerialRegionInfo {
  bool serial = false;
  std::string reason;  // e.g. "if(cond) folds to 0"
};

[[nodiscard]] SerialRegionInfo classify_serial(const ParallelRegion& region);

struct MhpOptions {
  /// Honour task depend(in/out/inout) clauses as ordering.
  bool model_depend_clauses = true;
};

/// Whether accesses `a` and `b` (already filtered to a candidate pair on
/// `var_name`) may execute concurrently. Appends the consulted ordering
/// rules to `ev.steps`; when the answer is no, sets `ev.discharge_rule` to
/// the rule that ordered them.
[[nodiscard]] bool may_happen_in_parallel(const AccessInfo& a,
                                          const AccessInfo& b,
                                          const std::string& var_name,
                                          const MhpOptions& opts,
                                          Evidence& ev);

}  // namespace drbml::analysis
