#include "analysis/mhp.hpp"

#include <algorithm>

namespace drbml::analysis {

using namespace minic;

namespace {

bool forks_team(OmpDirectiveKind k) noexcept {
  switch (k) {
    case OmpDirectiveKind::Parallel:
    case OmpDirectiveKind::ParallelFor:
    case OmpDirectiveKind::ParallelForSimd:
    case OmpDirectiveKind::ParallelSections:
    case OmpDirectiveKind::TargetParallelFor:
      return true;
    default:
      return false;
  }
}

/// Whether `s` contains a nested construct that forks its own team. A
/// serial outer region with a nested `parallel` inside is still parallel,
/// so the serial-region discharge must not apply.
bool contains_team_fork(const Stmt* s) {
  if (s == nullptr) return false;
  switch (s->kind) {
    case StmtKind::Compound: {
      for (const auto& c : static_cast<const CompoundStmt*>(s)->body) {
        if (contains_team_fork(c.get())) return true;
      }
      return false;
    }
    case StmtKind::If: {
      const auto& i = *static_cast<const IfStmt*>(s);
      return contains_team_fork(i.then_branch.get()) ||
             contains_team_fork(i.else_branch.get());
    }
    case StmtKind::For:
      return contains_team_fork(static_cast<const ForStmt*>(s)->body.get());
    case StmtKind::While:
      return contains_team_fork(static_cast<const WhileStmt*>(s)->body.get());
    case StmtKind::Do:
      return contains_team_fork(static_cast<const DoStmt*>(s)->body.get());
    case StmtKind::Omp: {
      const auto& o = *static_cast<const OmpStmt*>(s);
      if (forks_team(o.directive.kind)) return true;
      return contains_team_fork(o.body.get());
    }
    default:
      return false;
  }
}

/// True if both tasks carry depend clauses on the same variable with at
/// least one writer-side dependence type, which orders them.
bool depends_order(const SyncContext& a, const SyncContext& b,
                   const std::string& var_name) {
  auto mentions = [&](const SyncContext& c, bool& has_out) {
    bool found = false;
    for (const auto& [type, text] : c.depends) {
      const std::string base = text.substr(0, text.find('['));
      if (base == var_name) {
        found = true;
        if (type == "out" || type == "inout") has_out = true;
      }
    }
    return found;
  };
  bool out_a = false;
  bool out_b = false;
  const bool ma = mentions(a, out_a);
  const bool mb = mentions(b, out_b);
  return ma && mb && (out_a || out_b);
}

}  // namespace

PhasePartition PhasePartition::of(const ParallelRegion& region) {
  PhasePartition part;
  part.boundaries = region.boundaries;
  for (const PhaseBoundary& b : region.boundaries) {
    part.phases = std::max(part.phases, b.phase_after + 1);
  }
  for (const AccessInfo& a : region.accesses) {
    part.phases = std::max(part.phases, a.ctx.phase + 1);
  }
  return part;
}

SerialRegionInfo classify_serial(const ParallelRegion& region) {
  SerialRegionInfo info;
  if (region.stmt == nullptr || region.simd_only) return info;
  const OmpDirective& dir = region.stmt->directive;
  std::string reason;
  if (const OmpClause* ifc = dir.find_clause(OmpClauseKind::If)) {
    if (ifc->expr != nullptr) {
      if (auto v = region.consts.eval(*ifc->expr); v.has_value() && *v == 0) {
        reason = "if clause folds to 0";
      }
    }
  }
  if (reason.empty()) {
    if (const OmpClause* nt = dir.find_clause(OmpClauseKind::NumThreads)) {
      if (nt->expr != nullptr) {
        if (auto v = region.consts.eval(*nt->expr); v.has_value() && *v == 1) {
          reason = "num_threads clause folds to 1";
        }
      }
    }
  }
  if (reason.empty()) return info;
  // A nested team fork would reintroduce parallelism inside the serial
  // outer region; stay conservative in that case.
  if (contains_team_fork(region.stmt->body.get())) return info;
  info.serial = true;
  info.reason = reason;
  return info;
}

bool may_happen_in_parallel(const AccessInfo& a, const AccessInfo& b,
                            const std::string& var_name,
                            const MhpOptions& opts, Evidence& ev) {
  ev.phase_first = a.ctx.phase;
  ev.phase_second = b.ctx.phase;

  // Barrier phases separate accesses.
  {
    EvidenceStep step;
    step.rule = "mhp.phase";
    step.discharged = a.ctx.phase != b.ctx.phase;
    step.detail = "phase " + std::to_string(a.ctx.phase) + " vs " +
                  std::to_string(b.ctx.phase);
    ev.steps.push_back(std::move(step));
    if (a.ctx.phase != b.ctx.phase) {
      ev.discharge_rule = "mhp.phase";
      return false;
    }
  }

  // Same single/master/section instance executes on one thread.
  if (a.ctx.exec_once_id != -1 && a.ctx.exec_once_id == b.ctx.exec_once_id) {
    // Same instance: racy only through a self-concurrent task inside it.
    const bool ordered = a.ctx.task_id == b.ctx.task_id && !a.ctx.task_in_loop;
    EvidenceStep step;
    step.rule = "mhp.single-instance";
    step.discharged = ordered;
    step.detail =
        "same exec-once instance #" + std::to_string(a.ctx.exec_once_id);
    if (!ordered) step.detail += " with self-concurrent task";
    ev.steps.push_back(std::move(step));
    if (ordered) {
      ev.discharge_rule = "mhp.single-instance";
      return false;
    }
  }

  // Task ordering.
  if (a.ctx.task_id != -1 || b.ctx.task_id != -1) {
    if (a.ctx.task_phase != b.ctx.task_phase) {  // taskwait between them
      EvidenceStep step;
      step.rule = "mhp.task-order";
      step.discharged = true;
      step.detail = "taskwait separates task phases " +
                    std::to_string(a.ctx.task_phase) + " and " +
                    std::to_string(b.ctx.task_phase);
      ev.steps.push_back(std::move(step));
      ev.discharge_rule = "mhp.task-order";
      return false;
    }
    if (a.ctx.task_id == b.ctx.task_id && a.ctx.task_id != -1 &&
        !a.ctx.task_in_loop) {
      EvidenceStep step;
      step.rule = "mhp.task-order";
      step.discharged = true;
      step.detail =
          "same single task instance #" + std::to_string(a.ctx.task_id);
      ev.steps.push_back(std::move(step));
      ev.discharge_rule = "mhp.task-order";
      return false;
    }
    if (opts.model_depend_clauses && a.ctx.task_id != b.ctx.task_id &&
        a.ctx.task_id != -1 && b.ctx.task_id != -1) {
      const bool ordered = depends_order(a.ctx, b.ctx, var_name);
      EvidenceStep step;
      step.rule = "mhp.task-depend";
      step.discharged = ordered;
      step.detail = ordered
                        ? "depend clauses on '" + var_name + "' order tasks"
                        : "depend clauses do not order tasks on '" + var_name +
                              "'";
      ev.steps.push_back(std::move(step));
      if (ordered) {
        ev.discharge_rule = "mhp.task-depend";
        return false;
      }
    }
  }

  return true;
}

}  // namespace drbml::analysis
