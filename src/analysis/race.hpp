// Static data race detector for Mini-C/OpenMP programs.
//
// Pipeline: resolve names -> collect parallel regions with annotated
// accesses -> pairwise synchronization filtering -> affine dependence test
// -> race pairs in DRB label format.
//
// Fidelity knobs (StaticDetectorOptions) select between a conservative
// tool (flags anything it cannot prove disjoint; false positives on
// runtime-disjoint or flag-synchronized programs) and an optimistic one
// (silent on non-affine indexing; false negatives instead). Both behaviours
// exist in real static race detectors; the benchmark harness exercises
// both.
#pragma once

#include "analysis/access.hpp"
#include "analysis/depend.hpp"
#include "analysis/mhp.hpp"
#include "analysis/report.hpp"
#include "minic/ast.hpp"

namespace drbml::analysis {

struct StaticDetectorOptions {
  CollectOptions collect;
  DependOptions depend;
  /// Honour omp_set_lock/omp_unset_lock pairs as mutual exclusion.
  bool model_locks = true;
  /// Honour task depend(in/out/inout) clauses as ordering.
  bool model_depend_clauses = true;
  /// Treat `#pragma omp ordered` bodies as serialized.
  bool model_ordered = true;
  /// Discharge regions whose clauses force serial execution (`if(0)`,
  /// `num_threads(1)`) with no nested team fork.
  bool model_serial_regions = true;
  /// Cap on reported pairs per program (diagnostic noise control).
  int max_pairs = 16;
  /// Cap on recorded discharged pairs (the overflow is counted in
  /// RaceReport::suppressed_discharged).
  int max_discharged = 32;
};

class StaticRaceDetector {
 public:
  explicit StaticRaceDetector(StaticDetectorOptions opts = {})
      : opts_(opts) {}

  /// Analyzes a resolved translation unit.
  [[nodiscard]] RaceReport analyze_unit(minic::TranslationUnit& unit) const;

  /// Convenience: parse + resolve + analyze source text.
  [[nodiscard]] RaceReport analyze_source(std::string_view source) const;

  [[nodiscard]] const StaticDetectorOptions& options() const noexcept {
    return opts_;
  }

 private:
  /// Runs the discharge pipeline (serial region -> MHP ordering ->
  /// lockset -> dependence test) over one candidate pair, recording every
  /// consulted rule in `ev`. Returns true when the pair survives as a
  /// race; otherwise `ev.discharge_rule` names the discharging rule.
  [[nodiscard]] bool judge_pair(const AccessInfo& a, const AccessInfo& b,
                                const ParallelRegion& region,
                                const SerialRegionInfo& serial,
                                Evidence& ev) const;

  StaticDetectorOptions opts_;
};

}  // namespace drbml::analysis
