// Memory-access collection over parallel regions.
//
// For every OpenMP parallel construct the collector produces the list of
// memory accesses in its dynamic extent, each annotated with:
//   - the canonical memory object (aliases resolved),
//   - subscript expressions (for arrays),
//   - read/write direction,
//   - data-sharing classification (shared/private/reduction/...),
//   - synchronization context (phase between barriers, enclosing critical/
//     atomic/ordered/locks, single/master/section/task identity, enclosing
//     distributed and sequential loops).
//
// The static race detector then reasons pairwise over these annotations.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/consteval.hpp"
#include "analysis/resolve.hpp"
#include "minic/ast.hpp"

namespace drbml::analysis {

enum class Sharing {
  Shared,
  Private,
  FirstPrivate,
  LastPrivate,
  Reduction,
  Linear,
  ThreadPrivate,
  LoopPrivate,  // induction variable of a distributed loop
};

[[nodiscard]] const char* sharing_name(Sharing s) noexcept;

/// A loop enclosing an access, with whatever bound information constant
/// propagation recovered. Bounds are inclusive iteration-space bounds of
/// the induction variable.
struct LoopInfo {
  const minic::ForStmt* loop = nullptr;
  const minic::VarDecl* induction = nullptr;
  std::optional<std::int64_t> lower;
  std::optional<std::int64_t> upper;
  /// Symbolic bounds as affine thread-id forms, recovered when the
  /// constant bounds above are unknown (`for (k = tid*16; k < tid*16+16;)`
  /// yields lower_tid {16,0}, upper_tid {16,15}). Inclusive, like
  /// lower/upper. The dependence tester substitutes
  /// k = lower_tid + u, u in [0, upper_tid - lower_tid].
  std::optional<TidForm> lower_tid;
  std::optional<TidForm> upper_tid;
  std::int64_t step = 1;
  bool distributed = false;  // iterations spread across threads
  bool simd = false;         // vector-lane loop
  std::int64_t safelen = 0;  // 0 = unbounded
};

/// Synchronization context of one access.
struct SyncContext {
  int phase = 0;        // barrier-separated phase index within the region
  int task_phase = 0;   // taskwait-separated phase for task ordering
  bool in_critical = false;
  std::string critical_name;  // "" = unnamed critical
  bool atomic = false;
  bool ordered = false;
  int exec_once_id = -1;  // single/master/section instance (-1 = none)
  int task_id = -1;       // task construct instance (-1 = not in task)
  bool task_in_loop = false;  // task spawned repeatedly (self-concurrent)
  std::vector<const minic::VarDecl*> locks;  // held omp locks
  /// Task depend clauses in effect: (type, variable text).
  std::vector<std::pair<std::string, std::string>> depends;
};

/// One collected memory access.
struct AccessInfo {
  const minic::VarDecl* var = nullptr;  // canonical memory object
  const minic::Expr* expr = nullptr;    // the access expression node
  std::vector<const minic::Expr*> subscripts;  // outermost..innermost
  bool is_write = false;
  bool via_call = false;  // array handed to a function call (may be R+W)
  minic::SourceLoc loc;
  std::string text;  // source spelling, e.g. "a[i+1]"
  Sharing sharing = Sharing::Shared;
  SyncContext ctx;
  /// Distributed loops enclosing the access, outermost first (collapse
  /// produces several).
  std::vector<LoopInfo> dist_loops;
  /// Sequential loops inside the region enclosing the access.
  std::vector<LoopInfo> seq_loops;
};

/// One phase boundary inside a parallel region: the synchronization point
/// at which the collector advanced SyncContext::phase. Recorded so the
/// MHP phase partition (mhp.hpp) can cite provenance in evidence chains.
struct PhaseBoundary {
  int phase_after = 0;  // phase index in effect after this boundary
  /// "barrier" | "for-join" | "single-join" | "sections-join".
  std::string kind;
  minic::SourceLoc loc;
};

/// A parallel construct and everything collected from its extent.
struct ParallelRegion {
  const minic::OmpStmt* stmt = nullptr;
  bool simd_only = false;  // `#pragma omp simd` without a thread team
  std::vector<AccessInfo> accesses;
  /// Phase boundaries in source order (empty = single-phase region).
  std::vector<PhaseBoundary> boundaries;
  /// Constant bindings of the enclosing function (used by dependence
  /// testing to fold loop bounds and offsets).
  ConstantMap consts;
};

/// Options controlling collection fidelity (see StaticRaceDetector).
struct CollectOptions {
  /// Record arrays passed to user function calls as read+write accesses
  /// with unknown subscripts. When false, call side effects are ignored
  /// (a deliberate unsoundness shared by many static tools).
  bool track_call_effects = false;
};

/// Collects all parallel regions in the unit. The unit must have been
/// resolved (see resolve()).
[[nodiscard]] std::vector<ParallelRegion> collect_regions(
    const minic::TranslationUnit& unit, const Resolution& res,
    const CollectOptions& opts = {});

/// Extracts induction variable, bounds, and step from a canonical for loop
/// (`for (i = lo; i < hi; i += step)` and variants). Returns std::nullopt
/// if the loop shape is not recognized.
[[nodiscard]] std::optional<LoopInfo> analyze_loop(const minic::ForStmt& loop,
                                                   const ConstantMap& consts);

}  // namespace drbml::analysis
