// Race report types shared by the static and dynamic detectors.
#pragma once

#include <string>
#include <vector>

#include "analysis/evidence.hpp"
#include "minic/source.hpp"

namespace drbml::analysis {

/// One side of a racing pair, in DRB-ML label terms: the source spelling of
/// the access, its location in *trimmed-code* coordinates, and whether it
/// reads or writes.
struct RaceAccess {
  std::string expr_text;  // e.g. "a[i+1]"
  std::string var_name;   // base variable, e.g. "a"
  minic::SourceLoc loc;
  char op = 'r';  // 'r' or 'w'

  friend bool operator==(const RaceAccess&, const RaceAccess&) = default;
};

/// A conflicting access pair. Mirrors DRB's annotation
/// `Data race pair: a[i+1]@64:10:R vs. a[i]@64:5:W`.
struct RacePair {
  RaceAccess first;
  RaceAccess second;
  std::string note;  // detector-specific diagnostic
  /// The checks the static analyzer ran before reporting the pair (empty
  /// for detectors that do not produce evidence). Deliberately excluded
  /// from equality: a pair is identified by its accesses.
  Evidence evidence;

  friend bool operator==(const RacePair& a, const RacePair& b) {
    return a.first == b.first && a.second == b.second;
  }
};

/// A candidate pair the static analyzer proved race-free, with the chain
/// that discharged it.
struct DischargedPair {
  RaceAccess first;
  RaceAccess second;
  Evidence evidence;

  friend bool operator==(const DischargedPair& a, const DischargedPair& b) {
    return a.first == b.first && a.second == b.second;
  }
};

/// Output of a race detector run over one program.
struct RaceReport {
  bool race_detected = false;
  std::vector<RacePair> pairs;
  std::vector<std::string> diagnostics;
  /// Distinct pairs dropped because `pairs` hit the detector's max_pairs
  /// cap (a matching "N additional pairs suppressed" diagnostic is
  /// appended so truncation is never silent).
  int suppressed_pairs = 0;
  /// Candidate pairs proven race-free, each with its discharge evidence
  /// (capped like `pairs`; the overflow is counted, never silent).
  std::vector<DischargedPair> discharged;
  int suppressed_discharged = 0;

  /// True if `p` (or its symmetric twin) is already reported.
  [[nodiscard]] bool contains(const RacePair& p) const {
    for (const auto& q : pairs) {
      if (q == p) return true;
      if (q.first == p.second && q.second == p.first) return true;
    }
    return false;
  }

  void add_pair(RacePair p) {
    if (contains(p)) return;  // exact and symmetric duplicates collapse
    pairs.push_back(std::move(p));
    race_detected = true;
  }
};

}  // namespace drbml::analysis
