// Cross-thread conflict classification between two memory accesses.
//
// Implements an affine dependence test (GCD + Banerjee-style interval
// reasoning) over the collected access annotations:
//   - distributed-loop induction variables appear as bounded distance
//     variables (same worksharing nest) or independent instances
//     (different nests / plain region code),
//   - sequential-loop induction variables are independent per side,
//   - other variables are assumed loop-invariant and must cancel.
#pragma once

#include "analysis/access.hpp"
#include "analysis/consteval.hpp"

namespace drbml::analysis {

enum class ConflictKind {
  None,        // accesses can never touch the same element concurrently
  SameThread,  // overlap exists but always within one thread's iteration
  CrossThread, // a data race is possible
};

struct DependOptions {
  /// Treat non-affine subscripts (indirect indexing, calls, unknown
  /// pointers) as conflicting. True mirrors conservative static tools;
  /// false mirrors optimistic ones (and produces false negatives instead
  /// of false positives).
  bool conservative_nonaffine = true;
};

/// Decides whether accesses `a` and `b` (same canonical variable, already
/// filtered for phase/sync by the caller) may conflict across threads.
[[nodiscard]] ConflictKind classify_conflict(const AccessInfo& a,
                                             const AccessInfo& b,
                                             const ConstantMap& consts,
                                             const DependOptions& opts);

}  // namespace drbml::analysis
