// Cross-thread conflict classification between two memory accesses.
//
// Implements an affine dependence test (GCD + Banerjee-style interval
// reasoning) over the collected access annotations:
//   - distributed-loop induction variables appear as bounded distance
//     variables (same worksharing nest) or independent instances
//     (different nests / plain region code),
//   - sequential-loop induction variables are independent per side,
//   - other variables are assumed loop-invariant and must cancel,
//   - omp_get_thread_num() (and variables bound to affine forms of it)
//     appears as a symbolic per-side thread id: a dimension whose
//     difference is c*(tid_a - tid_b) + rest admits a cross-thread
//     conflict only if some nonzero thread-id difference solves it.
#pragma once

#include <string>

#include "analysis/access.hpp"
#include "analysis/consteval.hpp"

namespace drbml::analysis {

enum class ConflictKind {
  None,        // accesses can never touch the same element concurrently
  SameThread,  // overlap exists but always within one thread's iteration
  CrossThread, // a data race is possible
};

struct DependOptions {
  /// Treat non-affine subscripts (indirect indexing, calls, unknown
  /// pointers) as conflicting. True mirrors conservative static tools;
  /// false mirrors optimistic ones (and produces false negatives instead
  /// of false positives).
  bool conservative_nonaffine = true;
  /// Model omp_get_thread_num() as a symbolic per-side thread id so
  /// thread-id-indexed accesses (`a[omp_get_thread_num()]`) are proven
  /// disjoint across threads. Automatically suspended when either access
  /// sits in a task (tasks run on arbitrary threads).
  bool model_thread_id = true;
  /// Substitute thread-id-affine loop bounds (`for (k = tid*C; k < tid*C
  /// + C; ...)`) into subscripts instead of widening them to infinity.
  /// Only effective together with model_thread_id.
  bool symbolic_bounds = true;
};

/// The decision plus the test that produced it, for evidence chains.
/// `test` is one of: "gcd", "banerjee", "distance", "tid-disjoint",
/// "nonaffine", "conflict" (prefix with "dep." for the stable rule id).
struct DependVerdict {
  ConflictKind kind = ConflictKind::CrossThread;
  std::string test;
  std::string detail;
};

/// Decides whether accesses `a` and `b` (same canonical variable, already
/// filtered for phase/sync by the caller) may conflict across threads,
/// reporting which dependence test decided.
[[nodiscard]] DependVerdict classify_conflict_ex(const AccessInfo& a,
                                                 const AccessInfo& b,
                                                 const ConstantMap& consts,
                                                 const DependOptions& opts);

/// Compatibility wrapper returning only the decision.
[[nodiscard]] ConflictKind classify_conflict(const AccessInfo& a,
                                             const AccessInfo& b,
                                             const ConstantMap& consts,
                                             const DependOptions& opts);

}  // namespace drbml::analysis
