#include "analysis/race.hpp"

#include <algorithm>

#include "analysis/lockset.hpp"
#include "minic/parser.hpp"
#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "support/strings.hpp"

namespace drbml::analysis {

using namespace minic;

namespace {

RaceAccess to_race_access(const AccessInfo& a) {
  RaceAccess r;
  r.expr_text = a.text;
  r.var_name = a.var != nullptr ? a.var->name : "?";
  r.loc = a.loc;
  r.op = a.is_write ? 'w' : 'r';
  return r;
}

/// Cheap identity filters that decide whether a pair is worth judging at
/// all. Pairs rejected here are not candidates and get no evidence.
bool candidate_pair(const AccessInfo& a, const AccessInfo& b,
                    const CollectOptions& collect) {
  if (a.var == nullptr || b.var == nullptr || a.var != b.var) return false;
  if (!a.is_write && !b.is_write) return false;
  if (a.sharing != Sharing::Shared || b.sharing != Sharing::Shared) {
    return false;
  }
  if (a.via_call && !collect.track_call_effects) return false;
  if (b.via_call && !collect.track_call_effects) return false;
  return true;
}

void count_discharge(const std::string& rule) {
  static obs::Counter& serial =
      obs::metrics().counter(obs::kAnalysisDischargedSerial);
  static obs::Counter& phase =
      obs::metrics().counter(obs::kAnalysisDischargedPhase);
  static obs::Counter& mhp =
      obs::metrics().counter(obs::kAnalysisDischargedMhp);
  static obs::Counter& lockset =
      obs::metrics().counter(obs::kAnalysisDischargedLockset);
  static obs::Counter& depend =
      obs::metrics().counter(obs::kAnalysisDischargedDepend);
  if (rule == "region.serial") {
    serial.add();
  } else if (rule == "mhp.phase") {
    phase.add();
  } else if (rule.rfind("mhp.", 0) == 0) {
    mhp.add();
  } else if (rule.rfind("lockset.", 0) == 0) {
    lockset.add();
  } else if (rule.rfind("dep.", 0) == 0) {
    depend.add();
  }
}

bool discharged_contains(const std::vector<DischargedPair>& v,
                         const DischargedPair& p) {
  for (const auto& q : v) {
    if (q == p) return true;
    if (q.first == p.second && q.second == p.first) return true;
  }
  return false;
}

std::string render_guards(const std::vector<std::string>& guards) {
  std::string out = "{";
  for (std::size_t i = 0; i < guards.size(); ++i) {
    if (i > 0) out += ", ";
    out += guards[i];
  }
  out += "}";
  return out;
}

}  // namespace

bool StaticRaceDetector::judge_pair(const AccessInfo& a, const AccessInfo& b,
                                    const ParallelRegion& region,
                                    const SerialRegionInfo& serial,
                                    Evidence& ev) const {
  // Rule 1: the whole region executes on one thread.
  if (serial.serial) {
    ev.phase_first = a.ctx.phase;
    ev.phase_second = b.ctx.phase;
    EvidenceStep step;
    step.rule = "region.serial";
    step.discharged = true;
    step.detail = serial.reason;
    ev.steps.push_back(std::move(step));
    ev.discharge_rule = "region.serial";
    return false;
  }

  // Rule 2: barrier phases, exec-once instances, task ordering.
  MhpOptions mhp;
  mhp.model_depend_clauses = opts_.model_depend_clauses;
  if (!may_happen_in_parallel(a, b, a.var->name, mhp, ev)) return false;

  // Rule 3: a guard held on both sides serializes the accesses.
  LocksetOptions lopts;
  lopts.model_locks = opts_.model_locks;
  lopts.model_ordered = opts_.model_ordered;
  ev.locks_first = lockset_of(a, lopts);
  ev.locks_second = lockset_of(b, lopts);
  ev.common_guards = common_guards(a, b, lopts);
  {
    EvidenceStep step;
    step.rule = "lockset.common";
    step.discharged = !ev.common_guards.empty();
    step.detail = ev.common_guards.empty()
                      ? "no common guard: " + render_guards(ev.locks_first) +
                            " vs " + render_guards(ev.locks_second)
                      : "common guards " + render_guards(ev.common_guards);
    ev.steps.push_back(std::move(step));
  }
  if (!ev.common_guards.empty()) {
    ev.discharge_rule = "lockset.common";
    return false;
  }

  // Rule 4: affine dependence testing over the subscripts.
  const DependVerdict dv =
      classify_conflict_ex(a, b, region.consts, opts_.depend);
  ev.dep_test = dv.test;
  ev.dep_detail = dv.detail;
  const std::string rule = "dep." + dv.test;
  {
    EvidenceStep step;
    step.rule = rule;
    step.discharged = dv.kind != ConflictKind::CrossThread;
    step.detail = dv.detail;
    ev.steps.push_back(std::move(step));
  }
  if (dv.kind != ConflictKind::CrossThread) {
    ev.discharge_rule = rule;
    return false;
  }
  return true;
}

RaceReport StaticRaceDetector::analyze_unit(TranslationUnit& unit) const {
  static obs::Counter& candidates =
      obs::metrics().counter(obs::kAnalysisCandidatePairs);

  Resolution res = resolve(unit);
  std::vector<ParallelRegion> regions =
      collect_regions(unit, res, opts_.collect);

  RaceReport report;
  // Distinct pairs dropped at the caps (kept separately so the suppressed
  // counts collapse duplicates exactly like the capped lists do).
  RaceReport overflow;
  std::vector<DischargedPair> discharged_overflow;
  for (const auto& region : regions) {
    const SerialRegionInfo serial = opts_.model_serial_regions
                                        ? classify_serial(region)
                                        : SerialRegionInfo{};
    const auto& acc = region.accesses;
    for (std::size_t i = 0; i < acc.size(); ++i) {
      for (std::size_t j = i; j < acc.size(); ++j) {
        // j == i covers the self-conflict of a single statement executed
        // by many threads/iterations (e.g. `x = x + 1;`).
        if (j == i && !acc[i].is_write) continue;
        if (!candidate_pair(acc[i], acc[j], opts_.collect)) continue;
        candidates.add();
        // Writer first, matching DRB's pair convention; the evidence is
        // recorded in the same order as the reported accesses.
        const AccessInfo& first = acc[i].is_write ? acc[i] : acc[j];
        const AccessInfo& second = acc[i].is_write ? acc[j] : acc[i];
        Evidence ev;
        const bool races = judge_pair(first, second, region, serial, ev);
        if (!races) {
          count_discharge(ev.discharge_rule);
          DischargedPair dp;
          dp.first = to_race_access(first);
          dp.second = to_race_access(second);
          dp.evidence = std::move(ev);
          if (discharged_contains(report.discharged, dp)) continue;
          if (static_cast<int>(report.discharged.size()) >=
              opts_.max_discharged) {
            if (!discharged_contains(discharged_overflow, dp)) {
              discharged_overflow.push_back(std::move(dp));
            }
            continue;
          }
          report.discharged.push_back(std::move(dp));
          continue;
        }
        RacePair pair;
        pair.first = to_race_access(first);
        pair.second = to_race_access(second);
        pair.note = "static: conflicting accesses to shared '" +
                    first.var->name + "'";
        pair.evidence = std::move(ev);
        if (report.contains(pair)) continue;
        if (static_cast<int>(report.pairs.size()) >= opts_.max_pairs) {
          // Never truncate silently: count the distinct pairs dropped and
          // report them below.
          overflow.add_pair(std::move(pair));
          continue;
        }
        report.add_pair(std::move(pair));
      }
    }
  }
  report.suppressed_pairs = static_cast<int>(overflow.pairs.size());
  if (report.suppressed_pairs > 0) {
    report.diagnostics.push_back(
        "static: " + std::to_string(report.suppressed_pairs) +
        " additional pair(s) suppressed (max_pairs=" +
        std::to_string(opts_.max_pairs) + ")");
  }
  report.suppressed_discharged =
      static_cast<int>(discharged_overflow.size());
  if (report.suppressed_discharged > 0) {
    report.diagnostics.push_back(
        "static: " + std::to_string(report.suppressed_discharged) +
        " discharged pair(s) suppressed (max_discharged=" +
        std::to_string(opts_.max_discharged) + ")");
  }
  if (!report.race_detected) {
    report.diagnostics.push_back("static: no conflicting pair found");
  }
  return report;
}

RaceReport StaticRaceDetector::analyze_source(std::string_view source) const {
  Program prog = parse_program(source);
  return analyze_unit(*prog.unit);
}

}  // namespace drbml::analysis
