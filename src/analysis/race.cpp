#include "analysis/race.hpp"

#include <algorithm>

#include "minic/parser.hpp"
#include "support/strings.hpp"

namespace drbml::analysis {

using namespace minic;

namespace {

bool locks_intersect(const std::vector<const VarDecl*>& a,
                     const std::vector<const VarDecl*>& b) {
  for (const auto* l : a) {
    if (std::find(b.begin(), b.end(), l) != b.end()) return true;
  }
  return false;
}

/// True if both tasks carry depend clauses on the same variable with at
/// least one writer-side dependence type, which orders them.
bool depends_order(const SyncContext& a, const SyncContext& b,
                   const std::string& var_name) {
  auto mentions = [&](const SyncContext& c, bool& has_out) {
    bool found = false;
    for (const auto& [type, text] : c.depends) {
      const std::string base = text.substr(0, text.find('['));
      if (base == var_name) {
        found = true;
        if (type == "out" || type == "inout") has_out = true;
      }
    }
    return found;
  };
  bool out_a = false;
  bool out_b = false;
  const bool ma = mentions(a, out_a);
  const bool mb = mentions(b, out_b);
  return ma && mb && (out_a || out_b);
}

RaceAccess to_race_access(const AccessInfo& a) {
  RaceAccess r;
  r.expr_text = a.text;
  r.var_name = a.var != nullptr ? a.var->name : "?";
  r.loc = a.loc;
  r.op = a.is_write ? 'w' : 'r';
  return r;
}

}  // namespace

bool StaticRaceDetector::may_race(const AccessInfo& a, const AccessInfo& b,
                                  const ParallelRegion& region) const {
  if (a.var == nullptr || b.var == nullptr || a.var != b.var) return false;
  if (!a.is_write && !b.is_write) return false;
  if (a.sharing != Sharing::Shared || b.sharing != Sharing::Shared) {
    return false;
  }
  if (a.via_call && !opts_.collect.track_call_effects) return false;
  if (b.via_call && !opts_.collect.track_call_effects) return false;

  // Barrier phases separate accesses.
  if (a.ctx.phase != b.ctx.phase) return false;

  // Same single/master/section instance executes on one thread.
  if (a.ctx.exec_once_id != -1 && a.ctx.exec_once_id == b.ctx.exec_once_id) {
    // Same instance: racy only through a self-concurrent task inside it.
    if (a.ctx.task_id == b.ctx.task_id && !a.ctx.task_in_loop) return false;
  }

  // Task ordering.
  if (a.ctx.task_id != -1 || b.ctx.task_id != -1) {
    if (a.ctx.task_phase != b.ctx.task_phase) return false;  // taskwait
    if (a.ctx.task_id == b.ctx.task_id && a.ctx.task_id != -1 &&
        !a.ctx.task_in_loop) {
      return false;  // same single task instance
    }
    if (opts_.model_depend_clauses && a.ctx.task_id != b.ctx.task_id &&
        a.ctx.task_id != -1 && b.ctx.task_id != -1 &&
        depends_order(a.ctx, b.ctx, a.var->name)) {
      return false;
    }
  }

  // Mutual exclusion.
  if (a.ctx.in_critical && b.ctx.in_critical &&
      a.ctx.critical_name == b.ctx.critical_name) {
    return false;
  }
  if (a.ctx.atomic && b.ctx.atomic) return false;
  if (opts_.model_locks && locks_intersect(a.ctx.locks, b.ctx.locks)) {
    return false;
  }
  if (opts_.model_ordered && a.ctx.ordered && b.ctx.ordered) return false;

  return classify_conflict(a, b, region.consts, opts_.depend) ==
         ConflictKind::CrossThread;
}

RaceReport StaticRaceDetector::analyze_unit(TranslationUnit& unit) const {
  Resolution res = resolve(unit);
  std::vector<ParallelRegion> regions =
      collect_regions(unit, res, opts_.collect);

  RaceReport report;
  // Distinct pairs dropped at the cap (kept separately so the suppressed
  // count collapses duplicates exactly like add_pair does).
  RaceReport overflow;
  for (const auto& region : regions) {
    const auto& acc = region.accesses;
    for (std::size_t i = 0; i < acc.size(); ++i) {
      for (std::size_t j = i; j < acc.size(); ++j) {
        // j == i covers the self-conflict of a single statement executed
        // by many threads/iterations (e.g. `x = x + 1;`).
        if (j == i && !acc[i].is_write) continue;
        if (!may_race(acc[i], acc[j], region)) continue;
        // Writer first, matching DRB's pair convention.
        const AccessInfo& first = acc[i].is_write ? acc[i] : acc[j];
        const AccessInfo& second = acc[i].is_write ? acc[j] : acc[i];
        RacePair pair;
        pair.first = to_race_access(first);
        pair.second = to_race_access(second);
        pair.note = "static: conflicting accesses to shared '" +
                    first.var->name + "'";
        if (report.contains(pair)) continue;
        if (static_cast<int>(report.pairs.size()) >= opts_.max_pairs) {
          // Never truncate silently: count the distinct pairs dropped and
          // report them below.
          overflow.add_pair(std::move(pair));
          continue;
        }
        report.add_pair(std::move(pair));
      }
    }
  }
  report.suppressed_pairs = static_cast<int>(overflow.pairs.size());
  if (report.suppressed_pairs > 0) {
    report.diagnostics.push_back(
        "static: " + std::to_string(report.suppressed_pairs) +
        " additional pair(s) suppressed (max_pairs=" +
        std::to_string(opts_.max_pairs) + ")");
  }
  if (!report.race_detected) {
    report.diagnostics.push_back("static: no conflicting pair found");
  }
  return report;
}

RaceReport StaticRaceDetector::analyze_source(std::string_view source) const {
  Program prog = parse_program(source);
  return analyze_unit(*prog.unit);
}

}  // namespace drbml::analysis
