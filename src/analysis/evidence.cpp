#include "analysis/evidence.hpp"

namespace drbml::analysis {

namespace {

json::Array strings_to_json(const std::vector<std::string>& items) {
  json::Array a;
  for (const auto& s : items) a.emplace_back(s);
  return a;
}

std::vector<std::string> strings_from_json(const json::Value& v) {
  std::vector<std::string> out;
  for (const auto& item : v.as_array()) out.push_back(item.as_string());
  return out;
}

std::string guard_set_text(const std::vector<std::string>& guards) {
  std::string out = "{";
  for (std::size_t i = 0; i < guards.size(); ++i) {
    if (i != 0) out += ",";
    out += guards[i];
  }
  out += "}";
  return out;
}

}  // namespace

json::Value evidence_to_json(const Evidence& ev) {
  json::Object o;
  o.set("phase_first", ev.phase_first);
  o.set("phase_second", ev.phase_second);
  o.set("locks_first", json::Value(strings_to_json(ev.locks_first)));
  o.set("locks_second", json::Value(strings_to_json(ev.locks_second)));
  o.set("common_guards", json::Value(strings_to_json(ev.common_guards)));
  o.set("dep_test", ev.dep_test);
  o.set("dep_detail", ev.dep_detail);
  json::Array steps;
  for (const auto& s : ev.steps) {
    json::Object step;
    step.set("rule", s.rule);
    step.set("discharged", s.discharged);
    step.set("detail", s.detail);
    steps.push_back(json::Value(std::move(step)));
  }
  o.set("steps", std::move(steps));
  o.set("discharge_rule", ev.discharge_rule);
  return json::Value(std::move(o));
}

Evidence evidence_from_json(const json::Value& v) {
  const json::Object& o = v.as_object();
  Evidence ev;
  ev.phase_first = static_cast<int>(o.at("phase_first").as_int());
  ev.phase_second = static_cast<int>(o.at("phase_second").as_int());
  ev.locks_first = strings_from_json(o.at("locks_first"));
  ev.locks_second = strings_from_json(o.at("locks_second"));
  ev.common_guards = strings_from_json(o.at("common_guards"));
  ev.dep_test = o.at("dep_test").as_string();
  ev.dep_detail = o.at("dep_detail").as_string();
  for (const auto& step_value : o.at("steps").as_array()) {
    const json::Object& so = step_value.as_object();
    EvidenceStep step;
    step.rule = so.at("rule").as_string();
    step.discharged = so.at("discharged").as_bool();
    step.detail = so.at("detail").as_string();
    ev.steps.push_back(std::move(step));
  }
  ev.discharge_rule = o.at("discharge_rule").as_string();
  return ev;
}

std::string evidence_to_text(const Evidence& ev) {
  std::string out = "phase " + std::to_string(ev.phase_first) + "/" +
                    std::to_string(ev.phase_second);
  out += "; guards " + guard_set_text(ev.locks_first) + " & " +
         guard_set_text(ev.locks_second) + " = " +
         guard_set_text(ev.common_guards);
  if (!ev.dep_test.empty()) {
    out += "; dep " + ev.dep_test;
    if (!ev.dep_detail.empty()) out += ": " + ev.dep_detail;
  }
  if (ev.discharged()) {
    out += "; discharged by " + ev.discharge_rule;
  } else {
    out += "; reported";
  }
  return out;
}

std::string evidence_chain_text(const Evidence& ev) {
  std::string out = evidence_to_text(ev) + "\n";
  for (const auto& s : ev.steps) {
    out += "    " + s.rule + ": " +
           (s.discharged ? "discharged" : "not discharged");
    if (!s.detail.empty()) out += " (" + s.detail + ")";
    out += "\n";
  }
  return out;
}

}  // namespace drbml::analysis
