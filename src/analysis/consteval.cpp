#include "analysis/consteval.hpp"

namespace drbml::analysis {

using namespace minic;

namespace {

/// Collects constant bindings. `conditional` is true inside branches and
/// loops, where assignments poison rather than bind. `tid_conditional`
/// tracks a looser discipline for thread-id forms: an OpenMP construct
/// body runs straight-line once per thread, so declaration initializers
/// there may still bind a TidForm, while loops and branches poison both.
class Scanner {
 public:
  Scanner(std::map<const VarDecl*, std::int64_t>& values,
          std::map<const VarDecl*, TidForm>& tid_values,
          std::map<const VarDecl*, bool>& poisoned)
      : values_(values), tid_values_(tid_values), poisoned_(poisoned) {}

  void scan_stmt(const Stmt& s, bool conditional, bool tid_conditional) {
    switch (s.kind) {
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        for (const auto& v : d.decls) {
          if (v->is_array() || v->type.is_pointer() ||
              v->type.is_floating()) {
            continue;
          }
          if (v->init) {
            bind(v.get(), v->init.get(), conditional, tid_conditional);
          }
        }
        break;
      }
      case StmtKind::Expr:
        scan_expr(*static_cast<const ExprStmt&>(s).expr, conditional);
        break;
      case StmtKind::Compound:
        for (const auto& st : static_cast<const CompoundStmt&>(s).body) {
          scan_stmt(*st, conditional, tid_conditional);
        }
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        scan_stmt(*i.then_branch, true, true);
        if (i.else_branch) scan_stmt(*i.else_branch, true, true);
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.init) scan_stmt(*f.init, true, true);
        if (f.inc) scan_expr(*f.inc, true);
        scan_stmt(*f.body, true, true);
        break;
      }
      case StmtKind::While:
        scan_stmt(*static_cast<const WhileStmt&>(s).body, true, true);
        break;
      case StmtKind::Do:
        scan_stmt(*static_cast<const DoStmt&>(s).body, true, true);
        break;
      case StmtKind::Omp: {
        const auto& o = static_cast<const OmpStmt&>(s);
        // Everything under an OpenMP directive executes concurrently;
        // treat as conditional for plain constants. Thread-id forms stay
        // bindable: each thread runs the body's straight-line declarations
        // exactly once with its own omp_get_thread_num().
        if (o.body) scan_stmt(*o.body, true, tid_conditional);
        break;
      }
      default:
        break;
    }
  }

  /// Scans for assignments (anywhere in an expression tree).
  void scan_expr(const Expr& e, bool conditional) {
    switch (e.kind) {
      case ExprKind::Assign: {
        const auto& a = static_cast<const Assign&>(e);
        if (const auto* id = expr_cast<Ident>(a.target.get())) {
          if (id->decl != nullptr) {
            if (a.op == AssignOp::Assign && !conditional) {
              // Assignments never bind thread-id forms: the flow-
              // insensitive scan cannot prove the assignment precedes
              // every use, while a declaration trivially does.
              bind(id->decl, a.value.get(), conditional,
                   /*tid_conditional=*/true);
            } else {
              poison(id->decl);
            }
          }
        }
        scan_expr(*a.value, conditional);
        break;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const Unary&>(e);
        if (u.op == UnaryOp::PreInc || u.op == UnaryOp::PreDec ||
            u.op == UnaryOp::PostInc || u.op == UnaryOp::PostDec ||
            u.op == UnaryOp::AddrOf) {
          if (const auto* id = expr_cast<Ident>(u.operand.get())) {
            if (id->decl != nullptr) poison(id->decl);
          }
        }
        scan_expr(*u.operand, conditional);
        break;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const Binary&>(e);
        scan_expr(*b.lhs, conditional);
        scan_expr(*b.rhs, conditional);
        break;
      }
      case ExprKind::Subscript: {
        const auto& sub = static_cast<const Subscript&>(e);
        scan_expr(*sub.base, conditional);
        scan_expr(*sub.index, conditional);
        break;
      }
      case ExprKind::Conditional: {
        const auto& c = static_cast<const Conditional&>(e);
        scan_expr(*c.cond, conditional);
        scan_expr(*c.then_expr, true);
        scan_expr(*c.else_expr, true);
        break;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const Call&>(e);
        for (const auto& arg : c.args) scan_expr(*arg, conditional);
        // scanf-style writes through &x poison handled by AddrOf above.
        break;
      }
      case ExprKind::Cast:
        scan_expr(*static_cast<const Cast&>(e).operand, conditional);
        break;
      default:
        break;
    }
  }

 private:
  void bind(const VarDecl* v, const Expr* init, bool conditional,
            bool tid_conditional) {
    if (poisoned_[v]) {
      poison(v);
      return;
    }
    if (values_.count(v) != 0 || tid_values_.count(v) != 0) {
      // Second binding: keep the latest only if constant; simplest sound
      // choice is to poison.
      poison(v);
      return;
    }
    // Literal or foldable initializer, evaluated against current bindings.
    ConstantMap snapshot;
    snapshot.set_for_scan(values_, tid_values_, poisoned_);
    if (!conditional) {
      if (auto val = snapshot.eval(*init)) {
        values_[v] = *val;
        return;
      }
    }
    if (!tid_conditional) {
      // Straight-line declaration in an OpenMP body (or plain code whose
      // initializer mentions omp_get_thread_num()): bind the affine
      // thread-id form. A coefficient of zero is a per-thread constant.
      if (auto form = snapshot.tid_eval(*init)) {
        tid_values_[v] = *form;
        return;
      }
    }
    poison(v);
  }

  void poison(const VarDecl* v) {
    poisoned_[v] = true;
    values_.erase(v);
    tid_values_.erase(v);
  }

  std::map<const VarDecl*, std::int64_t>& values_;
  std::map<const VarDecl*, TidForm>& tid_values_;
  std::map<const VarDecl*, bool>& poisoned_;

  friend class drbml::analysis::ConstantMap;
};

}  // namespace

void ConstantMap::set_for_scan(
    const std::map<const minic::VarDecl*, std::int64_t>& values,
    const std::map<const minic::VarDecl*, TidForm>& tid_values,
    const std::map<const minic::VarDecl*, bool>& poisoned) {
  values_ = values;
  tid_values_ = tid_values;
  poisoned_ = poisoned;
}

ConstantMap ConstantMap::build(const TranslationUnit& unit,
                               const FunctionDecl& fn) {
  ConstantMap cm;
  Scanner scanner(cm.values_, cm.tid_values_, cm.poisoned_);
  for (const auto& g : unit.globals) {
    if (g->init && !g->is_array() && !g->type.is_pointer() &&
        !g->type.is_floating()) {
      if (auto val = cm.eval(*g->init)) cm.values_[g.get()] = *val;
    }
  }
  if (fn.body) scanner.scan_stmt(*fn.body, false, false);
  return cm;
}

std::optional<std::int64_t> ConstantMap::value_of(const VarDecl* v) const {
  auto p = poisoned_.find(v);
  if (p != poisoned_.end() && p->second) return std::nullopt;
  auto it = values_.find(v);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<TidForm> ConstantMap::tid_form_of(const VarDecl* v) const {
  auto p = poisoned_.find(v);
  if (p != poisoned_.end() && p->second) return std::nullopt;
  auto it = tid_values_.find(v);
  if (it == tid_values_.end()) return std::nullopt;
  return it->second;
}

std::optional<TidForm> ConstantMap::tid_eval(const Expr& e) const {
  switch (e.kind) {
    case ExprKind::IntLit:
      return TidForm{0, static_cast<const IntLit&>(e).value};
    case ExprKind::CharLit:
      return TidForm{
          0, static_cast<std::int64_t>(static_cast<const CharLit&>(e).value)};
    case ExprKind::Ident: {
      const auto& id = static_cast<const Ident&>(e);
      if (id.decl == nullptr) return std::nullopt;
      if (auto c = value_of(id.decl)) return TidForm{0, *c};
      return tid_form_of(id.decl);
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const Call&>(e);
      if (c.callee == "omp_get_thread_num" && c.args.empty()) {
        return TidForm{1, 0};
      }
      return std::nullopt;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const Unary&>(e);
      auto f = tid_eval(*u.operand);
      if (!f) return std::nullopt;
      switch (u.op) {
        case UnaryOp::Plus: return f;
        case UnaryOp::Neg: return TidForm{-f->coeff, -f->constant};
        default: return std::nullopt;
      }
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const Binary&>(e);
      auto l = tid_eval(*b.lhs);
      auto r = tid_eval(*b.rhs);
      if (!l || !r) return std::nullopt;
      switch (b.op) {
        case BinaryOp::Add:
          return TidForm{l->coeff + r->coeff, l->constant + r->constant};
        case BinaryOp::Sub:
          return TidForm{l->coeff - r->coeff, l->constant - r->constant};
        case BinaryOp::Mul:
          if (l->coeff == 0) {
            return TidForm{l->constant * r->coeff, l->constant * r->constant};
          }
          if (r->coeff == 0) {
            return TidForm{l->coeff * r->constant, l->constant * r->constant};
          }
          return std::nullopt;
        default:
          return std::nullopt;
      }
    }
    case ExprKind::Cast:
      return tid_eval(*static_cast<const Cast&>(e).operand);
    default:
      return std::nullopt;
  }
}

std::optional<std::int64_t> ConstantMap::eval(const Expr& e) const {
  switch (e.kind) {
    case ExprKind::IntLit:
      return static_cast<const IntLit&>(e).value;
    case ExprKind::CharLit:
      return static_cast<std::int64_t>(static_cast<const CharLit&>(e).value);
    case ExprKind::Ident: {
      const auto& id = static_cast<const Ident&>(e);
      if (id.decl == nullptr) return std::nullopt;
      return value_of(id.decl);
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const Unary&>(e);
      auto v = eval(*u.operand);
      if (!v) return std::nullopt;
      switch (u.op) {
        case UnaryOp::Plus: return v;
        case UnaryOp::Neg: return -*v;
        case UnaryOp::Not: return *v == 0 ? 1 : 0;
        case UnaryOp::BitNot: return ~*v;
        default: return std::nullopt;
      }
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const Binary&>(e);
      auto l = eval(*b.lhs);
      auto r = eval(*b.rhs);
      if (!l || !r) return std::nullopt;
      switch (b.op) {
        case BinaryOp::Add: return *l + *r;
        case BinaryOp::Sub: return *l - *r;
        case BinaryOp::Mul: return *l * *r;
        case BinaryOp::Div: return *r == 0 ? std::nullopt
                                           : std::optional(*l / *r);
        case BinaryOp::Mod: return *r == 0 ? std::nullopt
                                           : std::optional(*l % *r);
        case BinaryOp::Shl: return *l << *r;
        case BinaryOp::Shr: return *l >> *r;
        case BinaryOp::Lt: return *l < *r ? 1 : 0;
        case BinaryOp::Gt: return *l > *r ? 1 : 0;
        case BinaryOp::Le: return *l <= *r ? 1 : 0;
        case BinaryOp::Ge: return *l >= *r ? 1 : 0;
        case BinaryOp::Eq: return *l == *r ? 1 : 0;
        case BinaryOp::Ne: return *l != *r ? 1 : 0;
        case BinaryOp::LogicalAnd: return (*l != 0 && *r != 0) ? 1 : 0;
        case BinaryOp::LogicalOr: return (*l != 0 || *r != 0) ? 1 : 0;
        case BinaryOp::BitAnd: return *l & *r;
        case BinaryOp::BitOr: return *l | *r;
        case BinaryOp::BitXor: return *l ^ *r;
        case BinaryOp::Comma: return r;
      }
      return std::nullopt;
    }
    case ExprKind::Cast:
      return eval(*static_cast<const Cast&>(e).operand);
    default:
      return std::nullopt;
  }
}

}  // namespace drbml::analysis
