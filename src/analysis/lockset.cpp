#include "analysis/lockset.hpp"

#include <algorithm>

namespace drbml::analysis {

std::vector<std::string> lockset_of(const AccessInfo& a,
                                    const LocksetOptions& opts) {
  std::vector<std::string> guards;
  if (a.ctx.in_critical) {
    guards.push_back(a.ctx.critical_name.empty()
                         ? "critical"
                         : "critical(" + a.ctx.critical_name + ")");
  }
  if (a.ctx.atomic) guards.push_back("atomic");
  if (opts.model_ordered && a.ctx.ordered) guards.push_back("ordered");
  if (opts.model_locks) {
    for (const auto* lock : a.ctx.locks) {
      if (lock != nullptr) guards.push_back("lock:" + lock->name);
    }
  }
  std::sort(guards.begin(), guards.end());
  guards.erase(std::unique(guards.begin(), guards.end()), guards.end());
  return guards;
}

std::vector<std::string> common_guards(const AccessInfo& a,
                                       const AccessInfo& b,
                                       const LocksetOptions& opts) {
  const std::vector<std::string> ga = lockset_of(a, opts);
  const std::vector<std::string> gb = lockset_of(b, opts);
  std::vector<std::string> out;
  std::set_intersection(ga.begin(), ga.end(), gb.begin(), gb.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace drbml::analysis
