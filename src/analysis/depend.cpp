#include "analysis/depend.hpp"

#include <cstdlib>
#include <numeric>
#include <set>

#include "analysis/affine.hpp"

namespace drbml::analysis {

using namespace minic;

namespace {

const LoopInfo* find_loop(const std::vector<LoopInfo>& loops,
                          const VarDecl* v) {
  for (const auto& li : loops) {
    if (li.induction == v) return &li;
  }
  return nullptr;
}

/// A free (independent-instance) term in a dimension's difference form.
struct FreeTerm {
  std::int64_t coeff = 0;
  std::optional<std::int64_t> lo;
  std::optional<std::int64_t> hi;
  bool is_dist = false;  // variable varies across threads
};

/// Which test decided a dimension (for evidence details).
enum class Feas {
  Feasible,
  GcdFail,       // gcd of coefficients does not divide the constant
  IntervalFail,  // Banerjee bounds exclude zero
  DistanceFail,  // forced iteration distance unrealizable (step/range)
  TidFail,       // no thread-id difference solves the equation
};

/// Per-dimension analysis result.
struct DimResult {
  bool possible = true;  // difference can be zero
  bool slack = false;    // zero achievable without constraining distances
  bool free_dist = false;  // a cross-thread var participates unconstrained
  /// When !slack: equation sum(dcoeff[v] * d_v) + cst == 0 must hold.
  std::map<const VarDecl*, std::int64_t> dcoeff;
  std::int64_t cst = 0;
  bool tid_same_only = false;  // overlap forces tid_a == tid_b
  Feas fail = Feas::Feasible;  // why !possible
};

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  a = std::abs(a);
  b = std::abs(b);
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Interval + GCD feasibility of `cst + sum(coeff_k * x_k) == 0` where each
/// x_k ranges over its (possibly unknown) bounds.
Feas interval_feasible(std::int64_t cst, const std::vector<FreeTerm>& terms) {
  // GCD test.
  std::int64_t g = 0;
  for (const auto& t : terms) g = gcd64(g, t.coeff);
  if (g != 0 && cst % g != 0) return Feas::GcdFail;
  if (terms.empty()) return cst == 0 ? Feas::Feasible : Feas::IntervalFail;

  // Interval test (Banerjee bounds); unknown bounds widen to infinity.
  bool lo_inf = false;
  bool hi_inf = false;
  std::int64_t lo_sum = cst;
  std::int64_t hi_sum = cst;
  for (const auto& t : terms) {
    if (!t.lo || !t.hi) {
      if (t.coeff != 0) {
        lo_inf = true;
        hi_inf = true;
      }
      continue;
    }
    const std::int64_t a = t.coeff * *t.lo;
    const std::int64_t b = t.coeff * *t.hi;
    lo_sum += std::min(a, b);
    hi_sum += std::max(a, b);
  }
  const bool lo_ok = lo_inf || lo_sum <= 0;
  const bool hi_ok = hi_inf || hi_sum >= 0;
  return (lo_ok && hi_ok) ? Feas::Feasible : Feas::IntervalFail;
}

/// The value interval of `cst + sum(coeff_k * x_k)`.
struct Interval {
  bool unbounded = false;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

Interval sum_interval(std::int64_t cst, const std::vector<FreeTerm>& terms) {
  Interval r;
  r.lo = cst;
  r.hi = cst;
  for (const auto& t : terms) {
    if (t.coeff == 0) continue;
    if (!t.lo || !t.hi) {
      r.unbounded = true;
      return r;
    }
    const std::int64_t a = t.coeff * *t.lo;
    const std::int64_t b = t.coeff * *t.hi;
    r.lo += std::min(a, b);
    r.hi += std::max(a, b);
  }
  return r;
}

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  const std::int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return -floor_div(-a, b);
}

const char* test_name(Feas f) {
  switch (f) {
    case Feas::GcdFail:
      return "gcd";
    case Feas::IntervalFail:
      return "banerjee";
    case Feas::DistanceFail:
      return "distance";
    case Feas::TidFail:
      return "tid-disjoint";
    case Feas::Feasible:
      break;
  }
  return "conflict";
}

DependVerdict verdict(ConflictKind kind, std::string test,
                      std::string detail) {
  DependVerdict v;
  v.kind = kind;
  v.test = std::move(test);
  v.detail = std::move(detail);
  return v;
}

}  // namespace

DependVerdict classify_conflict_ex(const AccessInfo& A, const AccessInfo& B,
                                   const ConstantMap& consts,
                                   const DependOptions& opts) {
  // Dimensionality mismatch (e.g. `*p` vs `p[i][j]`): unknown overlap.
  if (A.subscripts.size() != B.subscripts.size()) {
    if (opts.conservative_nonaffine) {
      return verdict(ConflictKind::CrossThread, "nonaffine",
                     "subscript dimensionality differs; assumed overlapping");
    }
    return verdict(ConflictKind::None, "nonaffine",
                   "subscript dimensionality differs; assumed disjoint");
  }

  // Thread-id modeling is unsound for tasks: the executing thread of a
  // task is arbitrary, not the spawning thread.
  const bool model_tid =
      opts.model_thread_id && A.ctx.task_id == -1 && B.ctx.task_id == -1;

  const bool same_nest = !A.dist_loops.empty() && !B.dist_loops.empty() &&
                         A.dist_loops[0].loop == B.dist_loops[0].loop;

  bool any_free_dist = false;
  bool any_nonaffine = false;
  bool tid_same_only = false;
  std::map<const VarDecl*, std::int64_t> forced;  // distance per dist var
  std::set<const VarDecl*> constrained;

  std::vector<DimResult> dims;
  for (std::size_t d = 0; d < A.subscripts.size(); ++d) {
    const Expr* ea = A.subscripts[d];
    const Expr* eb = B.subscripts[d];
    DimResult dim;
    auto conservative_dim = [&]() {
      dim.possible = true;
      dim.slack = true;
      // Unknown indexing may vary across threads.
      dim.free_dist = !A.dist_loops.empty() || !B.dist_loops.empty();
      any_nonaffine = true;
      dims.push_back(dim);
    };
    if (ea == nullptr || eb == nullptr) {
      if (!opts.conservative_nonaffine) {
        return verdict(ConflictKind::None, "nonaffine",
                       "unknown subscript; assumed disjoint");
      }
      conservative_dim();
      continue;
    }
    LinearForm la = linearize(*ea, consts, model_tid);
    LinearForm lb = linearize(*eb, consts, model_tid);
    if (!la.is_affine || !lb.is_affine) {
      if (!opts.conservative_nonaffine) {
        return verdict(ConflictKind::None, "nonaffine",
                       "non-affine subscript; assumed disjoint");
      }
      conservative_dim();
      continue;
    }

    std::set<const VarDecl*> vars;
    for (const auto& [v, c] : la.coeffs) vars.insert(v);
    for (const auto& [v, c] : lb.coeffs) vars.insert(v);

    // Per-side thread-id coefficients. Symbolic loop-bound substitution
    // below can add to these.
    std::int64_t tid_a = la.coeff(tid_symbol());
    std::int64_t tid_b = lb.coeff(tid_symbol());

    std::vector<FreeTerm> free_terms;
    bool symbolic_mismatch = false;
    dim.cst = la.constant - lb.constant;

    // Substitute a thread-id-affine bound for an otherwise unbounded
    // sequential loop variable: k = c_t*tid + c0 + u, u in [0, range].
    // Folds into the side's tid coefficient, the constant, and a bounded
    // free term. Returns false when no substitution applies.
    auto substitute_tid_bounds = [&](const LoopInfo* li, std::int64_t coeff,
                                     std::int64_t& tid_side) {
      if (!model_tid || !opts.symbolic_bounds || li == nullptr) return false;
      if (!li->lower_tid || !li->upper_tid) return false;
      if (li->lower_tid->coeff != li->upper_tid->coeff) return false;
      const std::int64_t range =
          li->upper_tid->constant - li->lower_tid->constant;
      if (range < 0) return false;
      tid_side += coeff * li->lower_tid->coeff;
      dim.cst += coeff * li->lower_tid->constant;
      FreeTerm t;
      t.coeff = coeff;
      t.lo = 0;
      t.hi = range;
      free_terms.push_back(t);
      return true;
    };

    for (const VarDecl* v : vars) {
      if (v == tid_symbol()) continue;  // handled symbolically below
      const std::int64_t ca = la.coeff(v);
      const std::int64_t cb = lb.coeff(v);
      const LoopInfo* da = find_loop(A.dist_loops, v);
      const LoopInfo* db = find_loop(B.dist_loops, v);
      const LoopInfo* sa = find_loop(A.seq_loops, v);
      const LoopInfo* sb = find_loop(B.seq_loops, v);
      const bool induction_a = da != nullptr || sa != nullptr;
      const bool induction_b = db != nullptr || sb != nullptr;

      if (same_nest && da != nullptr && db != nullptr && ca == cb) {
        // Equal-coefficient distributed var: contributes ca * d_v.
        if (ca != 0) {
          dim.dcoeff[v] += ca;
        }
        continue;
      }
      if (!induction_a && !induction_b) {
        // Loop-invariant symbol: assume equal on both sides; must cancel.
        if (ca != cb) symbolic_mismatch = true;
        continue;
      }
      // Independent instances per side. A successful substitution must
      // not skip the other side's handling of the same variable.
      if (ca != 0 && !(da == nullptr && sa != nullptr && !sa->lower &&
                       substitute_tid_bounds(sa, ca, tid_a))) {
        const LoopInfo* li = da != nullptr ? da : sa;
        FreeTerm t;
        t.coeff = ca;
        if (li != nullptr) {
          t.lo = li->lower;
          t.hi = li->upper;
        }
        t.is_dist = da != nullptr;
        free_terms.push_back(t);
      }
      if (cb != 0) {
        const LoopInfo* li = db != nullptr ? db : sb;
        if (db == nullptr && sb != nullptr && !sb->lower) {
          // The difference form carries -tid_b, so accumulate negated.
          std::int64_t neg_tid_b = -tid_b;
          if (substitute_tid_bounds(sb, -cb, neg_tid_b)) {
            tid_b = -neg_tid_b;
            continue;
          }
        }
        FreeTerm t;
        t.coeff = -cb;
        if (li != nullptr) {
          t.lo = li->lower;
          t.hi = li->upper;
        }
        t.is_dist = db != nullptr;
        free_terms.push_back(t);
      }
    }

    if (symbolic_mismatch) {
      // e.g. a[x] vs a[2*x] with x unknown: overlap cannot be excluded.
      if (!opts.conservative_nonaffine) {
        return verdict(ConflictKind::None, "nonaffine",
                       "symbolic subscripts differ; assumed disjoint");
      }
      conservative_dim();
      continue;
    }

    if (model_tid && tid_a != tid_b) {
      // Differing thread-id coefficients: the per-thread offsets have
      // different shapes; treat each side's tid as unbounded.
      if (tid_a != 0) {
        FreeTerm t;
        t.coeff = tid_a;
        t.is_dist = true;
        free_terms.push_back(t);
      }
      if (tid_b != 0) {
        FreeTerm t;
        t.coeff = -tid_b;
        t.is_dist = true;
        free_terms.push_back(t);
      }
    } else if (model_tid && tid_a != 0) {
      // Equal nonzero tid coefficients c on both sides: the difference is
      // c*(tid_a - tid_b) + rest. A cross-thread conflict needs a nonzero
      // integer dt = tid_a - tid_b with c*dt in [-hi(rest), -lo(rest)].
      const std::int64_t c = tid_a;
      std::vector<FreeTerm> rest = free_terms;
      for (const auto& [v, cv] : dim.dcoeff) {
        const LoopInfo* li = find_loop(A.dist_loops, v);
        FreeTerm t;
        t.coeff = cv;
        if (li != nullptr && li->lower && li->upper) {
          const std::int64_t range = *li->upper - *li->lower;
          t.lo = -range;
          t.hi = range;
        }
        rest.push_back(t);
      }
      const Interval r = sum_interval(dim.cst, rest);
      if (r.unbounded) {
        dim.slack = true;
        dim.free_dist = true;
      } else {
        std::int64_t qlo;
        std::int64_t qhi;
        if (c > 0) {
          qlo = ceil_div(-r.hi, c);
          qhi = floor_div(-r.lo, c);
        } else {
          qlo = ceil_div(-r.lo, c);
          qhi = floor_div(-r.hi, c);
        }
        const bool any = qlo <= qhi;
        const bool nonzero = any && !(qlo == 0 && qhi == 0);
        if (!any) {
          dim.possible = false;
          dim.fail = Feas::TidFail;
        } else if (nonzero) {
          dim.slack = true;
          dim.free_dist = true;
        } else {
          dim.tid_same_only = true;
          dim.slack = true;
        }
      }
      dims.push_back(dim);
      continue;
    }

    if (!free_terms.empty()) {
      // Treat distance terms as additional bounded free variables for the
      // feasibility check.
      std::vector<FreeTerm> all = free_terms;
      for (const auto& [v, c] : dim.dcoeff) {
        const LoopInfo* li = find_loop(A.dist_loops, v);
        FreeTerm t;
        t.coeff = c;
        if (li != nullptr && li->lower && li->upper) {
          const std::int64_t range = *li->upper - *li->lower;
          t.lo = -range;
          t.hi = range;
        }
        all.push_back(t);
      }
      const Feas f = interval_feasible(dim.cst, all);
      dim.possible = f == Feas::Feasible;
      dim.fail = f;
      dim.slack = true;
      for (const auto& t : free_terms) {
        if (t.is_dist && t.coeff != 0) dim.free_dist = true;
      }
      if (!dim.dcoeff.empty()) dim.free_dist = true;
      dims.push_back(dim);
      continue;
    }

    // Pure distance equation: sum(dcoeff * d_v) + cst == 0.
    if (dim.dcoeff.empty()) {
      dim.possible = dim.cst == 0;
      if (!dim.possible) dim.fail = Feas::IntervalFail;
      dims.push_back(dim);
      continue;
    }
    if (dim.dcoeff.size() == 1) {
      const auto& [v, c] = *dim.dcoeff.begin();
      if (dim.cst % c != 0) {
        dim.possible = false;
        dim.fail = Feas::GcdFail;
        dims.push_back(dim);
        continue;
      }
      const std::int64_t dist = -dim.cst / c;
      const LoopInfo* li = find_loop(A.dist_loops, v);
      if (li != nullptr) {
        // Distance must be a multiple of the step and within range.
        const std::int64_t step = li->step == 0 ? 1 : std::abs(li->step);
        if (dist % step != 0) {
          dim.possible = false;
          dim.fail = Feas::DistanceFail;
          dims.push_back(dim);
          continue;
        }
        if (li->lower && li->upper) {
          const std::int64_t range = *li->upper - *li->lower;
          if (std::abs(dist) > range) {
            dim.possible = false;
            dim.fail = Feas::DistanceFail;
            dims.push_back(dim);
            continue;
          }
        }
      }
      auto it = forced.find(v);
      if (it != forced.end() && it->second != dist) {
        return verdict(ConflictKind::None, "distance",
                       "inconsistent forced distances across dimensions");
      }
      forced[v] = dist;
      constrained.insert(v);
      dims.push_back(dim);
      continue;
    }
    // Multiple distance variables in one equation: GCD feasibility, then
    // distances are flexible.
    std::int64_t g = 0;
    for (const auto& [v, c] : dim.dcoeff) g = gcd64(g, c);
    if (g != 0 && dim.cst % g != 0) {
      dim.possible = false;
      dim.fail = Feas::GcdFail;
    } else {
      dim.free_dist = true;
      dim.slack = true;
      for (const auto& [v, c] : dim.dcoeff) constrained.insert(v);
    }
    dims.push_back(dim);
  }

  for (std::size_t d = 0; d < dims.size(); ++d) {
    const DimResult& dim = dims[d];
    if (!dim.possible) {
      std::string detail = "dim " + std::to_string(d) + ": ";
      switch (dim.fail) {
        case Feas::GcdFail:
          detail += "gcd of coefficients does not divide the offset";
          break;
        case Feas::IntervalFail:
          detail += "subscript ranges cannot meet (Banerjee bounds)";
          break;
        case Feas::DistanceFail:
          detail += "required iteration distance is unrealizable";
          break;
        case Feas::TidFail:
          detail += "no thread-id difference solves the subscript equation";
          break;
        case Feas::Feasible:
          break;
      }
      return verdict(ConflictKind::None, test_name(dim.fail),
                     std::move(detail));
    }
    if (dim.free_dist) any_free_dist = true;
    if (dim.tid_same_only) tid_same_only = true;
  }

  if (tid_same_only) {
    // Some dimension pins tid_a == tid_b: every overlap is same-thread.
    return verdict(ConflictKind::SameThread, "tid-disjoint",
                   "thread-id-indexed subscripts only overlap on the "
                   "same thread");
  }

  if (!same_nest) {
    // Different worksharing nests, plain region code, or one side of each:
    // overlap implies different threads can touch the same element.
    return verdict(ConflictKind::CrossThread,
                   any_nonaffine ? "nonaffine" : "conflict",
                   any_nonaffine
                       ? "non-affine subscript assumed to overlap"
                       : "affine overlap across threads is feasible");
  }

  // Same nest: a race needs a nonzero distance on some distributed var.
  bool nonzero_forced = false;
  const VarDecl* nonzero_var = nullptr;
  std::int64_t nonzero_dist = 0;
  for (const auto& [v, dist] : forced) {
    if (dist != 0) {
      nonzero_forced = true;
      nonzero_var = v;
      nonzero_dist = dist;
    }
  }
  bool unconstrained_dist = false;
  for (const auto& li : A.dist_loops) {
    if (constrained.count(li.induction) == 0) {
      // Not pinned by any dimension: free to differ across threads --
      // unless the loop has at most one iteration.
      if (li.lower && li.upper && *li.upper <= *li.lower) continue;
      unconstrained_dist = true;
    }
  }

  if (!nonzero_forced && !any_free_dist && !unconstrained_dist) {
    return verdict(ConflictKind::SameThread, "distance",
                   "all inter-thread iteration distances forced to zero");
  }

  // SIMD safelen: a forced distance >= safelen on a simd loop is safe.
  if (nonzero_forced && nonzero_var != nullptr) {
    const LoopInfo* li = find_loop(A.dist_loops, nonzero_var);
    if (li != nullptr && li->simd && li->safelen > 0 &&
        std::abs(nonzero_dist) >= li->safelen && forced.size() == 1 &&
        !any_free_dist && !unconstrained_dist) {
      return verdict(ConflictKind::SameThread, "distance",
                     "forced distance " + std::to_string(nonzero_dist) +
                         " within simd safelen " +
                         std::to_string(li->safelen));
    }
  }
  if (nonzero_forced && nonzero_var != nullptr) {
    return verdict(ConflictKind::CrossThread,
                   any_nonaffine ? "nonaffine" : "conflict",
                   "iteration distance " + std::to_string(nonzero_dist) +
                       " on '" + nonzero_var->name + "' crosses threads");
  }
  return verdict(ConflictKind::CrossThread,
                 any_nonaffine ? "nonaffine" : "conflict",
                 any_nonaffine ? "non-affine subscript assumed to overlap"
                               : "cross-thread iteration overlap is feasible");
}

ConflictKind classify_conflict(const AccessInfo& a, const AccessInfo& b,
                               const ConstantMap& consts,
                               const DependOptions& opts) {
  return classify_conflict_ex(a, b, consts, opts).kind;
}

}  // namespace drbml::analysis
