#include "analysis/depend.hpp"

#include <cstdlib>
#include <numeric>
#include <set>

#include "analysis/affine.hpp"

namespace drbml::analysis {

using namespace minic;

namespace {

const LoopInfo* find_loop(const std::vector<LoopInfo>& loops,
                          const VarDecl* v) {
  for (const auto& li : loops) {
    if (li.induction == v) return &li;
  }
  return nullptr;
}

/// A free (independent-instance) term in a dimension's difference form.
struct FreeTerm {
  std::int64_t coeff = 0;
  std::optional<std::int64_t> lo;
  std::optional<std::int64_t> hi;
  bool is_dist = false;  // variable is a distributed induction variable
};

/// Per-dimension analysis result.
struct DimResult {
  bool possible = true;  // difference can be zero
  bool slack = false;    // zero achievable without constraining distances
  bool free_dist = false;  // a distributed var participates unconstrained
  /// When !slack: equation sum(dcoeff[v] * d_v) + cst == 0 must hold.
  std::map<const VarDecl*, std::int64_t> dcoeff;
  std::int64_t cst = 0;
};

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  a = std::abs(a);
  b = std::abs(b);
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Interval + GCD feasibility of `cst + sum(coeff_k * x_k) == 0` where each
/// x_k ranges over its (possibly unknown) bounds.
bool interval_feasible(std::int64_t cst, const std::vector<FreeTerm>& terms) {
  // GCD test.
  std::int64_t g = 0;
  for (const auto& t : terms) g = gcd64(g, t.coeff);
  if (g != 0 && cst % g != 0) return false;
  if (terms.empty()) return cst == 0;

  // Interval test (Banerjee bounds); unknown bounds widen to infinity.
  bool lo_inf = false;
  bool hi_inf = false;
  std::int64_t lo_sum = cst;
  std::int64_t hi_sum = cst;
  for (const auto& t : terms) {
    if (!t.lo || !t.hi) {
      if (t.coeff != 0) {
        lo_inf = true;
        hi_inf = true;
      }
      continue;
    }
    const std::int64_t a = t.coeff * *t.lo;
    const std::int64_t b = t.coeff * *t.hi;
    lo_sum += std::min(a, b);
    hi_sum += std::max(a, b);
  }
  const bool lo_ok = lo_inf || lo_sum <= 0;
  const bool hi_ok = hi_inf || hi_sum >= 0;
  return lo_ok && hi_ok;
}

}  // namespace

ConflictKind classify_conflict(const AccessInfo& A, const AccessInfo& B,
                               const ConstantMap& consts,
                               const DependOptions& opts) {
  // Dimensionality mismatch (e.g. `*p` vs `p[i][j]`): unknown overlap.
  if (A.subscripts.size() != B.subscripts.size()) {
    return opts.conservative_nonaffine ? ConflictKind::CrossThread
                                       : ConflictKind::None;
  }

  const bool same_nest = !A.dist_loops.empty() && !B.dist_loops.empty() &&
                         A.dist_loops[0].loop == B.dist_loops[0].loop;

  bool any_free_dist = false;
  std::map<const VarDecl*, std::int64_t> forced;  // distance per dist var
  std::set<const VarDecl*> constrained;

  std::vector<DimResult> dims;
  for (std::size_t d = 0; d < A.subscripts.size(); ++d) {
    const Expr* ea = A.subscripts[d];
    const Expr* eb = B.subscripts[d];
    DimResult dim;
    auto conservative_dim = [&]() {
      dim.possible = true;
      dim.slack = true;
      // Unknown indexing may vary across threads.
      dim.free_dist = !A.dist_loops.empty() || !B.dist_loops.empty();
      dims.push_back(dim);
    };
    if (ea == nullptr || eb == nullptr) {
      if (!opts.conservative_nonaffine) return ConflictKind::None;
      conservative_dim();
      continue;
    }
    LinearForm la = linearize(*ea, consts);
    LinearForm lb = linearize(*eb, consts);
    if (!la.is_affine || !lb.is_affine) {
      if (!opts.conservative_nonaffine) return ConflictKind::None;
      conservative_dim();
      continue;
    }

    std::set<const VarDecl*> vars;
    for (const auto& [v, c] : la.coeffs) vars.insert(v);
    for (const auto& [v, c] : lb.coeffs) vars.insert(v);

    std::vector<FreeTerm> free_terms;
    bool symbolic_mismatch = false;
    dim.cst = la.constant - lb.constant;

    for (const VarDecl* v : vars) {
      const std::int64_t ca = la.coeff(v);
      const std::int64_t cb = lb.coeff(v);
      const LoopInfo* da = find_loop(A.dist_loops, v);
      const LoopInfo* db = find_loop(B.dist_loops, v);
      const LoopInfo* sa = find_loop(A.seq_loops, v);
      const LoopInfo* sb = find_loop(B.seq_loops, v);
      const bool induction_a = da != nullptr || sa != nullptr;
      const bool induction_b = db != nullptr || sb != nullptr;

      if (same_nest && da != nullptr && db != nullptr && ca == cb) {
        // Equal-coefficient distributed var: contributes ca * d_v.
        if (ca != 0) {
          dim.dcoeff[v] += ca;
        }
        continue;
      }
      if (!induction_a && !induction_b) {
        // Loop-invariant symbol: assume equal on both sides; must cancel.
        if (ca != cb) symbolic_mismatch = true;
        continue;
      }
      // Independent instances per side.
      if (ca != 0) {
        const LoopInfo* li = da != nullptr ? da : sa;
        FreeTerm t;
        t.coeff = ca;
        if (li != nullptr) {
          t.lo = li->lower;
          t.hi = li->upper;
        }
        t.is_dist = da != nullptr;
        free_terms.push_back(t);
      }
      if (cb != 0) {
        const LoopInfo* li = db != nullptr ? db : sb;
        FreeTerm t;
        t.coeff = -cb;
        if (li != nullptr) {
          t.lo = li->lower;
          t.hi = li->upper;
        }
        t.is_dist = db != nullptr;
        free_terms.push_back(t);
      }
    }

    if (symbolic_mismatch) {
      // e.g. a[x] vs a[2*x] with x unknown: overlap cannot be excluded.
      if (!opts.conservative_nonaffine) return ConflictKind::None;
      conservative_dim();
      continue;
    }

    if (!free_terms.empty()) {
      // Treat distance terms as additional bounded free variables for the
      // feasibility check.
      std::vector<FreeTerm> all = free_terms;
      for (const auto& [v, c] : dim.dcoeff) {
        const LoopInfo* li = find_loop(A.dist_loops, v);
        FreeTerm t;
        t.coeff = c;
        if (li != nullptr && li->lower && li->upper) {
          const std::int64_t range = *li->upper - *li->lower;
          t.lo = -range;
          t.hi = range;
        }
        all.push_back(t);
      }
      dim.possible = interval_feasible(dim.cst, all);
      dim.slack = true;
      for (const auto& t : free_terms) {
        if (t.is_dist && t.coeff != 0) dim.free_dist = true;
      }
      if (!dim.dcoeff.empty()) dim.free_dist = true;
      dims.push_back(dim);
      continue;
    }

    // Pure distance equation: sum(dcoeff * d_v) + cst == 0.
    if (dim.dcoeff.empty()) {
      dim.possible = dim.cst == 0;
      dims.push_back(dim);
      continue;
    }
    if (dim.dcoeff.size() == 1) {
      const auto& [v, c] = *dim.dcoeff.begin();
      if (dim.cst % c != 0) {
        dim.possible = false;
        dims.push_back(dim);
        continue;
      }
      const std::int64_t dist = -dim.cst / c;
      const LoopInfo* li = find_loop(A.dist_loops, v);
      if (li != nullptr) {
        // Distance must be a multiple of the step and within range.
        const std::int64_t step = li->step == 0 ? 1 : std::abs(li->step);
        if (dist % step != 0) {
          dim.possible = false;
          dims.push_back(dim);
          continue;
        }
        if (li->lower && li->upper) {
          const std::int64_t range = *li->upper - *li->lower;
          if (std::abs(dist) > range) {
            dim.possible = false;
            dims.push_back(dim);
            continue;
          }
        }
      }
      auto it = forced.find(v);
      if (it != forced.end() && it->second != dist) {
        return ConflictKind::None;  // inconsistent across dimensions
      }
      forced[v] = dist;
      constrained.insert(v);
      dims.push_back(dim);
      continue;
    }
    // Multiple distance variables in one equation: GCD feasibility, then
    // distances are flexible.
    std::int64_t g = 0;
    for (const auto& [v, c] : dim.dcoeff) g = gcd64(g, c);
    if (g != 0 && dim.cst % g != 0) {
      dim.possible = false;
    } else {
      dim.free_dist = true;
      dim.slack = true;
      for (const auto& [v, c] : dim.dcoeff) constrained.insert(v);
    }
    dims.push_back(dim);
  }

  for (const auto& dim : dims) {
    if (!dim.possible) return ConflictKind::None;
    if (dim.free_dist) any_free_dist = true;
  }

  if (!same_nest) {
    // Different worksharing nests, plain region code, or one side of each:
    // overlap implies different threads can touch the same element.
    return ConflictKind::CrossThread;
  }

  // Same nest: a race needs a nonzero distance on some distributed var.
  bool nonzero_forced = false;
  const VarDecl* nonzero_var = nullptr;
  std::int64_t nonzero_dist = 0;
  for (const auto& [v, dist] : forced) {
    if (dist != 0) {
      nonzero_forced = true;
      nonzero_var = v;
      nonzero_dist = dist;
    }
  }
  bool unconstrained_dist = false;
  for (const auto& li : A.dist_loops) {
    if (constrained.count(li.induction) == 0) {
      // Not pinned by any dimension: free to differ across threads --
      // unless the loop has at most one iteration.
      if (li.lower && li.upper && *li.upper <= *li.lower) continue;
      unconstrained_dist = true;
    }
  }

  if (!nonzero_forced && !any_free_dist && !unconstrained_dist) {
    return ConflictKind::SameThread;
  }

  // SIMD safelen: a forced distance >= safelen on a simd loop is safe.
  if (nonzero_forced && nonzero_var != nullptr) {
    const LoopInfo* li = find_loop(A.dist_loops, nonzero_var);
    if (li != nullptr && li->simd && li->safelen > 0 &&
        std::abs(nonzero_dist) >= li->safelen && forced.size() == 1 &&
        !any_free_dist && !unconstrained_dist) {
      return ConflictKind::SameThread;
    }
  }
  return ConflictKind::CrossThread;
}

}  // namespace drbml::analysis
