// Static lockset analysis over collected accesses.
//
// The collector (access.hpp) already tracks the synchronization context of
// every access: enclosing critical sections, `omp_set_lock` regions,
// atomics, and ordered blocks. This module turns that context into an
// explicit lockset -- the set of guards held at the access -- and decides
// whether two accesses share a common guard, which serializes them and
// discharges the pair. Guard names are rendered stably for evidence
// chains: "critical" / "critical(name)", "lock:var", "atomic", "ordered".
#pragma once

#include <string>
#include <vector>

#include "analysis/access.hpp"

namespace drbml::analysis {

struct LocksetOptions {
  /// Honour omp_set_lock/omp_unset_lock pairs as mutual exclusion.
  bool model_locks = true;
  /// Treat `#pragma omp ordered` bodies as serialized.
  bool model_ordered = true;
};

/// The rendered guard set held at `a`, sorted and deduplicated. Includes
/// critical sections and runtime locks unconditionally; atomic/ordered
/// guards are included (they only discharge when both sides carry them,
/// which set intersection already expresses).
[[nodiscard]] std::vector<std::string> lockset_of(const AccessInfo& a,
                                                  const LocksetOptions& opts);

/// The guards held at both `a` and `b`. A non-empty result means the two
/// accesses are mutually excluded. Respects the options: disabled guard
/// kinds are invisible to both sides.
[[nodiscard]] std::vector<std::string> common_guards(
    const AccessInfo& a, const AccessInfo& b, const LocksetOptions& opts);

}  // namespace drbml::analysis
