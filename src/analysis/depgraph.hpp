// Explicit data-dependence graphs (the paper's future-work modality:
// "explore different modalities beyond text as input, such as abstract
// syntax trees, dependence graphs, and control-flow graphs").
//
// Nodes are the shared-memory accesses of each parallel construct; edges
// are dependence relations classified by the affine tester. Serializers
// produce a compact text form (fed to models as an auxiliary modality)
// and Graphviz DOT (for humans).
#pragma once

#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace drbml::analysis {

struct DepNode {
  int id = 0;
  std::string access;  // source spelling, e.g. "a[i+1]"
  int line = 0;
  int col = 0;
  char op = 'r';
  std::string sharing;  // data-sharing class
};

enum class DepEdgeKind {
  TrueDep,    // write -> read
  AntiDep,    // read -> write
  OutputDep,  // write -> write
  SameThread, // overlap confined to one thread's iteration
};

[[nodiscard]] const char* dep_edge_kind_name(DepEdgeKind k) noexcept;

struct DepEdge {
  int src = 0;  // node id of the earlier access (source order)
  int dst = 0;
  DepEdgeKind kind = DepEdgeKind::TrueDep;
  bool cross_thread = false;  // a potential data race
};

struct DependenceGraph {
  std::vector<DepNode> nodes;
  std::vector<DepEdge> edges;

  [[nodiscard]] int cross_thread_edges() const noexcept;

  /// Compact text serialization for model prompts.
  [[nodiscard]] std::string to_text() const;

  /// Graphviz DOT rendering.
  [[nodiscard]] std::string to_dot() const;
};

/// Builds the dependence graph over all parallel constructs of a resolved
/// unit (resolution is performed internally).
[[nodiscard]] DependenceGraph build_dependence_graph(
    minic::TranslationUnit& unit);

/// Convenience: parse + build from source text.
[[nodiscard]] DependenceGraph build_dependence_graph(
    const std::string& source);

}  // namespace drbml::analysis
