#include "analysis/depgraph.hpp"

#include "analysis/access.hpp"
#include "analysis/depend.hpp"
#include "analysis/resolve.hpp"
#include "minic/parser.hpp"

namespace drbml::analysis {

const char* dep_edge_kind_name(DepEdgeKind k) noexcept {
  switch (k) {
    case DepEdgeKind::TrueDep: return "true";
    case DepEdgeKind::AntiDep: return "anti";
    case DepEdgeKind::OutputDep: return "output";
    case DepEdgeKind::SameThread: return "loop-independent";
  }
  return "?";
}

int DependenceGraph::cross_thread_edges() const noexcept {
  int n = 0;
  for (const auto& e : edges) {
    if (e.cross_thread) ++n;
  }
  return n;
}

std::string DependenceGraph::to_text() const {
  std::string out;
  for (const auto& n : nodes) {
    out += "n" + std::to_string(n.id) + ": " + n.access + " @" +
           std::to_string(n.line) + ":" + std::to_string(n.col) + " " +
           (n.op == 'w' ? "W" : "R") + " [" + n.sharing + "]\n";
  }
  for (const auto& e : edges) {
    out += "d: n" + std::to_string(e.src) + " -> n" + std::to_string(e.dst) +
           " " + dep_edge_kind_name(e.kind) +
           (e.cross_thread ? " cross-thread" : " intra-thread") + "\n";
  }
  if (edges.empty()) out += "d: (no dependences)\n";
  return out;
}

std::string DependenceGraph::to_dot() const {
  std::string out = "digraph dependences {\n";
  for (const auto& n : nodes) {
    out += "  n" + std::to_string(n.id) + " [label=\"" + n.access + "\\n@" +
           std::to_string(n.line) + ":" + std::to_string(n.col) +
           (n.op == 'w' ? " W" : " R") + "\"];\n";
  }
  for (const auto& e : edges) {
    out += "  n" + std::to_string(e.src) + " -> n" + std::to_string(e.dst) +
           " [label=\"" + dep_edge_kind_name(e.kind) + "\"";
    if (e.cross_thread) out += ", color=red";
    out += "];\n";
  }
  out += "}\n";
  return out;
}

DependenceGraph build_dependence_graph(minic::TranslationUnit& unit) {
  DependenceGraph g;
  Resolution res = resolve(unit);
  const std::vector<ParallelRegion> regions = collect_regions(unit, res);
  DependOptions dep_opts;

  for (const auto& region : regions) {
    // Shared accesses become nodes.
    std::vector<int> node_of(region.accesses.size(), -1);
    for (std::size_t i = 0; i < region.accesses.size(); ++i) {
      const AccessInfo& a = region.accesses[i];
      if (a.sharing != Sharing::Shared || a.var == nullptr) continue;
      DepNode node;
      node.id = static_cast<int>(g.nodes.size());
      node.access = a.text;
      node.line = a.loc.line;
      node.col = a.loc.col;
      node.op = a.is_write ? 'w' : 'r';
      node.sharing = sharing_name(a.sharing);
      node_of[i] = node.id;
      g.nodes.push_back(std::move(node));
    }
    for (std::size_t i = 0; i < region.accesses.size(); ++i) {
      if (node_of[i] < 0) continue;
      for (std::size_t j = i; j < region.accesses.size(); ++j) {
        if (node_of[j] < 0) continue;
        const AccessInfo& a = region.accesses[i];
        const AccessInfo& b = region.accesses[j];
        if (a.var != b.var) continue;
        if (!a.is_write && !b.is_write) continue;
        if (i == j && !a.is_write) continue;
        const ConflictKind kind =
            classify_conflict(a, b, region.consts, dep_opts);
        if (kind == ConflictKind::None) continue;
        DepEdge edge;
        edge.src = node_of[i];
        edge.dst = node_of[j];
        edge.cross_thread = kind == ConflictKind::CrossThread;
        if (a.is_write && b.is_write) {
          edge.kind = DepEdgeKind::OutputDep;
        } else if (a.is_write) {
          edge.kind = DepEdgeKind::TrueDep;
        } else {
          edge.kind = DepEdgeKind::AntiDep;
        }
        if (kind == ConflictKind::SameThread) {
          edge.kind = DepEdgeKind::SameThread;
        }
        g.edges.push_back(edge);
      }
    }
  }
  return g;
}

DependenceGraph build_dependence_graph(const std::string& source) {
  minic::Program prog = minic::parse_program(source);
  return build_dependence_graph(*prog.unit);
}

}  // namespace drbml::analysis
