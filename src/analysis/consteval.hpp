// Best-effort constant propagation for scalar integers.
//
// DRB-style microbenchmarks bind loop bounds to constants near the top of
// main (`int len = 1000;`). The static race detector folds those constants
// into affine subscripts and loop bounds. The propagation is deliberately
// conservative: a variable that is ever reassigned a non-constant value, or
// assigned under a branch or loop, is treated as unknown.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "minic/ast.hpp"

namespace drbml::analysis {

/// An affine form over the symbolic thread id: coeff * omp_get_thread_num()
/// + constant. Used to model per-thread index arithmetic
/// (`int lo = omp_get_thread_num() * 16;`) so the dependence tester can
/// prove thread-disjoint array partitions.
struct TidForm {
  std::int64_t coeff = 0;
  std::int64_t constant = 0;

  friend bool operator==(const TidForm&, const TidForm&) = default;
};

class ConstantMap {
 public:
  /// Scans `fn`'s body (and `unit` globals) and records scalar integer
  /// variables with a single, unconditional constant binding.
  static ConstantMap build(const minic::TranslationUnit& unit,
                           const minic::FunctionDecl& fn);

  [[nodiscard]] std::optional<std::int64_t> value_of(
      const minic::VarDecl* v) const;

  /// Evaluates `e` to an integer constant if possible, folding known
  /// variables, literals, and arithmetic.
  [[nodiscard]] std::optional<std::int64_t> eval(const minic::Expr& e) const;

  /// The thread-id affine form bound to `v`, if any. Bindings come from
  /// straight-line declaration initializers inside a parallel construct
  /// (`int tid = omp_get_thread_num(); int lo = tid * 16;`); declarations
  /// under loops or branches, reassignments, and address-taken variables
  /// never bind.
  [[nodiscard]] std::optional<TidForm> tid_form_of(
      const minic::VarDecl* v) const;

  /// Evaluates `e` as an affine form over the symbolic thread id, folding
  /// constants and tid-bound variables. `omp_get_thread_num()` evaluates
  /// to {coeff 1, constant 0}.
  [[nodiscard]] std::optional<TidForm> tid_eval(const minic::Expr& e) const;

  /// Internal: seeds a map from in-progress scan state so initializers can
  /// fold previously bound constants. Not part of the public API.
  void set_for_scan(const std::map<const minic::VarDecl*, std::int64_t>& values,
                    const std::map<const minic::VarDecl*, TidForm>& tid_values,
                    const std::map<const minic::VarDecl*, bool>& poisoned);

 private:
  std::map<const minic::VarDecl*, std::int64_t> values_;
  std::map<const minic::VarDecl*, TidForm> tid_values_;
  std::map<const minic::VarDecl*, bool> poisoned_;
};

}  // namespace drbml::analysis
