// Best-effort constant propagation for scalar integers.
//
// DRB-style microbenchmarks bind loop bounds to constants near the top of
// main (`int len = 1000;`). The static race detector folds those constants
// into affine subscripts and loop bounds. The propagation is deliberately
// conservative: a variable that is ever reassigned a non-constant value, or
// assigned under a branch or loop, is treated as unknown.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "minic/ast.hpp"

namespace drbml::analysis {

class ConstantMap {
 public:
  /// Scans `fn`'s body (and `unit` globals) and records scalar integer
  /// variables with a single, unconditional constant binding.
  static ConstantMap build(const minic::TranslationUnit& unit,
                           const minic::FunctionDecl& fn);

  [[nodiscard]] std::optional<std::int64_t> value_of(
      const minic::VarDecl* v) const;

  /// Evaluates `e` to an integer constant if possible, folding known
  /// variables, literals, and arithmetic.
  [[nodiscard]] std::optional<std::int64_t> eval(const minic::Expr& e) const;

  /// Internal: seeds a map from in-progress scan state so initializers can
  /// fold previously bound constants. Not part of the public API.
  void set_for_scan(const std::map<const minic::VarDecl*, std::int64_t>& values,
                    const std::map<const minic::VarDecl*, bool>& poisoned);

 private:
  std::map<const minic::VarDecl*, std::int64_t> values_;
  std::map<const minic::VarDecl*, bool> poisoned_;
};

}  // namespace drbml::analysis
