// Witness minimization: ddmin over a racy schedule's decision trace.
//
// Replay of an arbitrary subsequence of a recorded trace is a total,
// deterministic function (ReplayDecider falls back to the lowest-index
// runnable worker wherever the trace has no instruction), so classic
// delta debugging applies directly: drop decision chunks, keep the subset
// whenever the race still reproduces. The result is by construction a
// subsequence of the original trace.
#pragma once

#include <functional>

#include "runtime/sched.hpp"

namespace drbml::explore {

struct MinimizeResult {
  runtime::ScheduleTrace trace;
  int replays = 0;  // predicate evaluations spent
};

/// ddmin over the decisions of `original`. `still_races` must replay a
/// candidate trace and report whether the race reproduces; it is called
/// at most `max_replays` times (the search stops early at the budget and
/// returns the best trace found so far).
[[nodiscard]] MinimizeResult minimize_trace(
    const runtime::ScheduleTrace& original,
    const std::function<bool(const runtime::ScheduleTrace&)>& still_races,
    int max_replays);

}  // namespace drbml::explore
