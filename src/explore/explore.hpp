// Schedule-exploration engine over CoopScheduler and the vector-clock
// dynamic detector.
//
// Where the plain dynamic detector replays a fixed handful of uniform
// seeds, the explorer runs a budgeted loop of schedules under a chosen
// strategy (uniform random walk or PCT priority schedules), tracks an
// interleaving-coverage map to stop early once schedules stop buying new
// behaviour, and -- on the first detected race -- delta-debugs the
// recorded decision trace into a minimal witness that replays the race
// bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/report.hpp"
#include "explore/witness.hpp"
#include "runtime/interp.hpp"

namespace drbml::explore {

enum class Strategy { Uniform, Pct };

[[nodiscard]] const char* strategy_name(Strategy s);

/// Parses "uniform"/"pct"; throws Error otherwise.
[[nodiscard]] Strategy parse_strategy(std::string_view name);

struct ExploreOptions {
  /// Base run options; `seed`/`strategy`/`capture_trace`/
  /// `collect_coverage` are overridden per schedule.
  runtime::RunOptions run;
  Strategy strategy = Strategy::Pct;
  /// PCT bug depth d (d-1 priority change points per region).
  int pct_depth = 3;
  /// PCT estimate k of a region's step count.
  std::uint64_t pct_expected_steps = 4096;
  /// Schedule budget per source.
  int max_schedules = 24;
  /// Adaptive budget: stop once this many consecutive schedules add no
  /// new coverage (0 disables the plateau cut).
  int plateau_window = 8;
  /// Base seed; schedule i derives its seed deterministically from it.
  std::uint64_t seed = 0x5eedULL;
  /// Delta-debug the first racy schedule into a minimal witness.
  bool minimize = true;
  /// Replay budget for the minimizer.
  int max_minimize_replays = 128;

  friend bool operator==(const ExploreOptions&,
                         const ExploreOptions&) = default;
};

/// Per-schedule outcome, in execution order.
struct ScheduleStats {
  std::uint64_t seed = 0;
  bool raced = false;
  bool faulted = false;
  std::uint64_t steps = 0;
  std::uint64_t new_coverage = 0;

  friend bool operator==(const ScheduleStats&,
                         const ScheduleStats&) = default;
};

struct ExploreResult {
  bool race_detected = false;
  /// Union of racy schedules' reports (pairs deduplicated by add_pair).
  analysis::RaceReport report;
  int schedules_run = 0;
  /// Index of the first racy schedule, -1 if none (the time-to-first-race
  /// in units of schedule budget).
  int first_race_schedule = -1;
  /// Seed of the first racy schedule (re-run it to get the full trace).
  std::uint64_t first_race_seed = 0;
  bool stopped_on_plateau = false;
  /// Union of interleaving-coverage hashes over all schedules, sorted.
  std::vector<std::uint64_t> coverage;
  std::vector<ScheduleStats> schedules;
  /// Encoded minimized witness ("" when no race was found).
  std::string witness;
  /// Decision counts before/after minimization.
  std::uint64_t original_decisions = 0;
  std::uint64_t witness_decisions = 0;
  int minimize_replays = 0;
  int faulted_runs = 0;
};

/// Runs the exploration loop on one source. Parse/resolve errors
/// propagate as exceptions (callers batching over a corpus should catch
/// support's Error, matching the dynamic detector's convention).
[[nodiscard]] ExploreResult explore_source(std::string_view source,
                                           const ExploreOptions& opts);

/// Replays a witness against a source, bit-identically when the witness
/// carries a full trace for that source.
[[nodiscard]] runtime::RunResult replay_witness(
    std::string_view source, const Witness& w,
    const runtime::RunOptions& base = {});

}  // namespace drbml::explore
