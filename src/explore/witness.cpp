#include "explore/witness.hpp"

#include <cstdint>
#include <stdexcept>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace drbml::explore {

namespace {

constexpr std::string_view kMagic = "drbml-witness-v1";

std::uint64_t parse_u64(std::string_view s, const char* what) {
  if (s.empty()) throw Error(std::string("witness: empty ") + what);
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw Error(std::string("witness: malformed ") + what + " '" +
                  std::string(s) + "'");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      throw Error(std::string("witness: overflowing ") + what);
    }
    v = v * 10 + digit;
  }
  return v;
}

}  // namespace

std::string encode_witness(const Witness& w) {
  std::string out(kMagic);
  out += ";threads=" + std::to_string(w.num_threads);
  out += ";preempt=" + std::to_string(w.preempt_every);
  out += ";limit=" + std::to_string(w.step_limit);
  for (const auto& region : w.trace.regions) {
    out += ";region=";
    bool first = true;
    for (const auto& d : region) {
      if (!first) out += ',';
      first = false;
      out += d.forced ? 'f' : 'v';
      out += std::to_string(d.step);
      out += ':';
      out += std::to_string(d.target);
    }
  }
  return out;
}

Witness decode_witness(std::string_view text) {
  const std::vector<std::string> fields =
      split(trim(text), ';');
  if (fields.empty() || fields.front() != kMagic) {
    throw Error("witness: missing '" + std::string(kMagic) + "' header");
  }
  Witness w;
  bool saw_threads = false;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::string& field = fields[i];
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw Error("witness: field without '=': '" + field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "threads") {
      w.num_threads = static_cast<int>(parse_u64(value, "threads"));
      if (w.num_threads < 1 || w.num_threads > 16) {
        throw Error("witness: threads out of range: " + value);
      }
      saw_threads = true;
    } else if (key == "preempt") {
      w.preempt_every = static_cast<int>(parse_u64(value, "preempt"));
      if (w.preempt_every < 1) {
        throw Error("witness: preempt out of range: " + value);
      }
    } else if (key == "limit") {
      w.step_limit = parse_u64(value, "limit");
    } else if (key == "region") {
      runtime::RegionTrace region;
      if (!value.empty()) {
        for (const std::string& item : split(value, ',')) {
          if (item.size() < 2 || (item[0] != 'f' && item[0] != 'v')) {
            throw Error("witness: malformed decision '" + item + "'");
          }
          const std::size_t colon = item.find(':');
          if (colon == std::string::npos || colon + 1 >= item.size()) {
            throw Error("witness: malformed decision '" + item + "'");
          }
          runtime::ScheduleDecision d;
          d.forced = item[0] == 'f';
          d.step = parse_u64(
              std::string_view(item).substr(1, colon - 1), "step");
          d.target = static_cast<int>(parse_u64(
              std::string_view(item).substr(colon + 1), "target"));
          region.push_back(d);
        }
      }
      w.trace.regions.push_back(std::move(region));
    } else {
      throw Error("witness: unknown field '" + key + "'");
    }
  }
  if (!saw_threads) throw Error("witness: missing threads field");
  return w;
}

runtime::RunOptions witness_run_options(const Witness& w,
                                        const runtime::RunOptions& base) {
  runtime::RunOptions run = base;
  run.num_threads = w.num_threads;
  run.preempt_every = w.preempt_every;
  run.step_limit = w.step_limit;
  run.strategy = runtime::ScheduleStrategy::Replay;
  run.replay = &w.trace;
  run.capture_trace = false;
  return run;
}

}  // namespace drbml::explore
