#include "explore/minimize.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace drbml::explore {

namespace {

/// A decision addressed by (region, index-within-region); minimization
/// works on the flat list but rebuilds per-region traces for replay.
struct Slot {
  std::size_t region;
  std::size_t index;
};

runtime::ScheduleTrace rebuild(const runtime::ScheduleTrace& original,
                               const std::vector<Slot>& kept) {
  runtime::ScheduleTrace t;
  t.regions.resize(original.regions.size());
  for (const Slot& s : kept) {
    t.regions[s.region].push_back(original.regions[s.region][s.index]);
  }
  return t;
}

}  // namespace

MinimizeResult minimize_trace(
    const runtime::ScheduleTrace& original,
    const std::function<bool(const runtime::ScheduleTrace&)>& still_races,
    int max_replays) {
  std::vector<Slot> items;
  for (std::size_t r = 0; r < original.regions.size(); ++r) {
    for (std::size_t i = 0; i < original.regions[r].size(); ++i) {
      items.push_back({r, i});
    }
  }

  MinimizeResult result;
  auto races = [&](const std::vector<Slot>& kept) {
    ++result.replays;
    return still_races(rebuild(original, kept));
  };

  // Races that reproduce under the pure fallback schedule need no
  // decisions at all; ddmin alone can only get down to one item.
  if (!items.empty() && result.replays < max_replays && races({})) {
    items.clear();
  }

  std::size_t granularity = 2;
  while (items.size() >= 2 && result.replays < max_replays) {
    const std::size_t chunk =
        std::max<std::size_t>(1, items.size() / granularity);
    bool reduced = false;
    for (std::size_t start = 0;
         start < items.size() && result.replays < max_replays;
         start += chunk) {
      // Try the complement of items[start, start+chunk).
      std::vector<Slot> candidate;
      candidate.reserve(items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(items[i]);
      }
      if (candidate.size() == items.size()) continue;
      if (races(candidate)) {
        items = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= items.size()) break;
      granularity = std::min(items.size(), granularity * 2);
    }
  }

  result.trace = rebuild(original, items);
  return result;
}

}  // namespace drbml::explore
