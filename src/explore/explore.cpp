#include "explore/explore.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "explore/minimize.hpp"
#include "minic/parser.hpp"
#include "obs/catalog.hpp"
#include "obs/obs.hpp"
#include "runtime/bc/compile.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace drbml::explore {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::Uniform: return "uniform";
    case Strategy::Pct: return "pct";
  }
  return "?";
}

Strategy parse_strategy(std::string_view name) {
  if (name == "uniform") return Strategy::Uniform;
  if (name == "pct") return Strategy::Pct;
  throw Error("unknown exploration strategy '" + std::string(name) +
              "' (expected uniform|pct)");
}

namespace {

std::uint64_t schedule_seed(std::uint64_t base, int index) {
  return mix64(base + 0x9e3779b97f4a7c15ULL *
                          (static_cast<std::uint64_t>(index) + 1));
}

runtime::RunOptions schedule_run_options(const ExploreOptions& opts,
                                         int index) {
  runtime::RunOptions run = opts.run;
  run.seed = schedule_seed(opts.seed, index);
  run.strategy = opts.strategy == Strategy::Pct
                     ? runtime::ScheduleStrategy::Pct
                     : runtime::ScheduleStrategy::Uniform;
  run.pct_depth = opts.pct_depth;
  run.pct_expected_steps = opts.pct_expected_steps;
  run.replay = nullptr;
  run.capture_trace = true;
  run.collect_coverage = true;
  return run;
}

}  // namespace

ExploreResult explore_source(std::string_view source,
                             const ExploreOptions& opts) {
  static obs::Counter& schedules_run =
      obs::metrics().counter(obs::kExploreSchedules);
  static obs::Counter& races = obs::metrics().counter(obs::kExploreRaces);
  static obs::Counter& coverage_new =
      obs::metrics().counter(obs::kExploreCoverageNew);
  static obs::Counter& plateau_stops =
      obs::metrics().counter(obs::kExplorePlateauStops);
  static obs::Counter& minimize_replays =
      obs::metrics().counter(obs::kExploreMinimizeReplays);
  static obs::Counter& witnesses =
      obs::metrics().counter(obs::kExploreWitnesses);
  static obs::Histogram& to_first_race =
      obs::metrics().histogram(obs::kExploreSchedulesToFirstRace);

  obs::Span entry_span(obs::kSpanExploreEntry,
                       strategy_name(opts.strategy));

  minic::Program prog = minic::parse_program(source);
  analysis::Resolution res = analysis::resolve(*prog.unit);

  // Compile once; every schedule (and the minimizer's replays) reuses the
  // same verified module.
  runtime::bc::Module module;
  ExploreOptions eopts = opts;
  if (eopts.run.backend == runtime::Backend::Vm &&
      eopts.run.module == nullptr) {
    module = runtime::bc::compile_verified(*prog.unit);
    eopts.run.module = &module;
  }

  ExploreResult result;
  std::set<std::uint64_t> coverage;
  int plateau = 0;
  runtime::ScheduleTrace racy_trace;
  runtime::RunOptions racy_run;

  for (int i = 0; i < opts.max_schedules; ++i) {
    const runtime::RunOptions run = schedule_run_options(eopts, i);
    runtime::RunResult rr = [&] {
      obs::Span span(obs::kSpanExploreSchedule, std::to_string(i));
      return runtime::run_program(*prog.unit, res, run);
    }();
    ++result.schedules_run;
    schedules_run.add();

    ScheduleStats stats;
    stats.seed = run.seed;
    stats.raced = rr.report.race_detected;
    stats.faulted = rr.faulted;
    stats.steps = rr.steps;
    for (std::uint64_t h : rr.coverage) {
      if (coverage.insert(h).second) ++stats.new_coverage;
    }
    coverage_new.add(stats.new_coverage);
    if (rr.faulted) ++result.faulted_runs;
    result.schedules.push_back(stats);

    if (rr.report.race_detected) {
      races.add();
      result.race_detected = true;
      result.first_race_schedule = i;
      result.first_race_seed = run.seed;
      to_first_race.observe(static_cast<std::uint64_t>(i) + 1);
      for (auto& pair : rr.report.pairs) {
        result.report.add_pair(std::move(pair));
      }
      for (auto& d : rr.report.diagnostics) {
        result.report.diagnostics.push_back(std::move(d));
      }
      racy_trace = std::move(rr.trace);
      racy_run = run;
      break;
    }

    if (opts.plateau_window > 0) {
      if (stats.new_coverage == 0) {
        if (++plateau >= opts.plateau_window) {
          result.stopped_on_plateau = true;
          plateau_stops.add();
          break;
        }
      } else {
        plateau = 0;
      }
    }
  }

  result.coverage.assign(coverage.begin(), coverage.end());

  if (result.race_detected) {
    result.original_decisions = racy_trace.total_decisions();
    runtime::ScheduleTrace minimized = racy_trace;
    if (opts.minimize) {
      obs::Span span(obs::kSpanExploreMinimize);
      auto still_races = [&](const runtime::ScheduleTrace& candidate) {
        runtime::RunOptions replay = racy_run;
        replay.strategy = runtime::ScheduleStrategy::Replay;
        replay.replay = &candidate;
        replay.capture_trace = false;
        replay.collect_coverage = false;
        return runtime::run_program(*prog.unit, res, replay)
            .report.race_detected;
      };
      MinimizeResult mr = minimize_trace(racy_trace, still_races,
                                         opts.max_minimize_replays);
      result.minimize_replays = mr.replays;
      minimize_replays.add(static_cast<std::uint64_t>(mr.replays));
      // ddmin keeps the predicate true for the kept set at every step,
      // but guard against a non-reproducing full trace (a bug) by only
      // shipping traces that verifiably still race.
      if (still_races(mr.trace)) {
        minimized = std::move(mr.trace);
      }
    }
    Witness w;
    w.num_threads = racy_run.num_threads;
    w.preempt_every = racy_run.preempt_every;
    w.step_limit = racy_run.step_limit;
    w.trace = std::move(minimized);
    result.witness_decisions = w.trace.total_decisions();
    result.witness = encode_witness(w);
    witnesses.add();
  } else {
    result.report.diagnostics.push_back(
        std::string("explore: no race in ") +
        std::to_string(result.schedules_run) + " " +
        strategy_name(opts.strategy) + " schedule(s)" +
        (result.stopped_on_plateau ? " (coverage plateau)" : ""));
  }
  result.report.race_detected = !result.report.pairs.empty();
  return result;
}

runtime::RunResult replay_witness(std::string_view source, const Witness& w,
                                  const runtime::RunOptions& base) {
  minic::Program prog = minic::parse_program(source);
  analysis::Resolution res = analysis::resolve(*prog.unit);
  const runtime::RunOptions run = witness_run_options(w, base);
  return runtime::run_program(*prog.unit, res, run);
}

}  // namespace drbml::explore
