// Compact textual encoding of a race witness: the run options that shape
// a schedule plus the recorded decision trace. A witness string is the
// replayable artifact the exploration engine ships with every reported
// race; `drbml explore --replay` turns it back into a bit-identical run.
#pragma once

#include <string>
#include <string_view>

#include "runtime/interp.hpp"
#include "runtime/sched.hpp"

namespace drbml::explore {

/// A replayable schedule witness. `trace` is typically the minimized
/// decision subsequence, but any trace (including a full recording)
/// round-trips through the codec.
struct Witness {
  int num_threads = 4;
  int preempt_every = 7;
  std::uint64_t step_limit = 2'000'000;
  runtime::ScheduleTrace trace;

  friend bool operator==(const Witness& a, const Witness& b) {
    return a.num_threads == b.num_threads &&
           a.preempt_every == b.preempt_every &&
           a.step_limit == b.step_limit && a.trace == b.trace;
  }
};

/// Encodes as a single line:
///   drbml-witness-v1;threads=4;preempt=7;limit=2000000;region=f0:1,v17:2;region=
/// Regions appear in dynamic region order; `f`/`v` mark forced/voluntary
/// decisions, followed by `<step>:<target>`.
[[nodiscard]] std::string encode_witness(const Witness& w);

/// Parses an encoded witness. Throws support's Error on malformed input.
[[nodiscard]] Witness decode_witness(std::string_view text);

/// RunOptions that replay this witness over `base` (strategy, replay
/// trace pointer, thread count and limits are overridden; detector knobs
/// like max_pairs are kept from `base`). The returned options point into
/// `w.trace`, so `w` must outlive the run.
[[nodiscard]] runtime::RunOptions witness_run_options(
    const Witness& w, const runtime::RunOptions& base);

}  // namespace drbml::explore
