#include "runtime/fiber.hpp"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#if DRBML_FIBER_ASM || DRBML_FIBER_UCONTEXT
#include <sys/mman.h>
#endif

namespace drbml::runtime {

namespace {

#if DRBML_FIBER_ASM || DRBML_FIBER_UCONTEXT

// 8 MiB of lazily-committed address space per fiber -- matching the
// default pthread stack, so both substrates share one recursion-depth
// limit -- plus a PROT_NONE guard page that turns stack overflow into a
// clean fault instead of silent corruption. Freed stacks recycle through
// a per-thread pool: a run allocates stacks once per OS thread, not once
// per parallel region.
constexpr std::size_t kStackBytes = std::size_t{8} << 20;
constexpr std::size_t kGuardBytes = 4096;

struct StackPool {
  std::vector<void*> free_list;
  ~StackPool() {
    for (void* p : free_list) ::munmap(p, kGuardBytes + kStackBytes);
  }
};
thread_local StackPool t_pool;

void* acquire_stack() {
  if (!t_pool.free_list.empty()) {
    void* p = t_pool.free_list.back();
    t_pool.free_list.pop_back();
    return p;
  }
  void* p = ::mmap(nullptr, kGuardBytes + kStackBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p == MAP_FAILED) std::abort();
  ::mprotect(p, kGuardBytes, PROT_NONE);
  return p;
}

void release_stack(void* p) { t_pool.free_list.push_back(p); }

#endif  // DRBML_FIBER_ASM || DRBML_FIBER_UCONTEXT

// The fiber being resumed for the first time. Its trampoline reads the
// entry/arg pair from here: a fresh fiber's initial frame is synthesized
// by start() and cannot carry C++ arguments through the restore sequence.
thread_local Fiber* t_starting = nullptr;

}  // namespace

struct FiberAccess {
  [[noreturn]] static void run_starting() {
    Fiber* self = t_starting;
    t_starting = nullptr;
    Fiber::Entry entry = self->entry_;
    self->entry_ = nullptr;  // armed -> running; transfers now plain resumes
    entry(self->arg_);
    // Entries transfer away for the last time instead of returning; there
    // is no frame to return into.
    std::abort();
  }
};

extern "C" [[noreturn]] void drbml_fiber_trampoline() {
  FiberAccess::run_starting();
}

Fiber::~Fiber() {
#if DRBML_FIBER_ASM || DRBML_FIBER_UCONTEXT
  if (stack_ != nullptr) release_stack(stack_);
#endif
}

#if DRBML_FIBER_ASM

// SysV x86-64 cooperative switch. Everything caller-saved is dead across
// a call by the C ABI, so only rbp/rbx/r12-r15 and the FP control words
// (mxcsr, x87 cw) need saving: push them on the current stack, publish
// rsp through save_sp, adopt new_sp, restore, and `ret` -- which either
// resumes a suspended drbml_fiber_switch call or enters a fresh fiber's
// trampoline through the frame start() synthesized.
asm(".text\n"
    ".align 16\n"
    ".globl drbml_fiber_switch\n"
    ".hidden drbml_fiber_switch\n"
    ".type drbml_fiber_switch, @function\n"
    "drbml_fiber_switch:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  subq $8, %rsp\n"
    "  stmxcsr (%rsp)\n"
    "  fnstcw 4(%rsp)\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  ldmxcsr (%rsp)\n"
    "  fldcw 4(%rsp)\n"
    "  addq $8, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  retq\n"
    ".size drbml_fiber_switch, . - drbml_fiber_switch\n");

extern "C" void drbml_fiber_switch(void** save_sp, void* new_sp);

bool Fiber::supported() noexcept { return true; }

void Fiber::start(Entry entry, void* arg) {
  entry_ = entry;
  arg_ = arg;
  if (stack_ == nullptr) stack_ = acquire_stack();
  const auto base = reinterpret_cast<std::uintptr_t>(stack_);
  const std::uintptr_t top =
      (base + kGuardBytes + kStackBytes) & ~std::uintptr_t{15};
  // Synthesize the frame drbml_fiber_switch expects to restore, bottom to
  // top: [mxcsr|fcw] [r15 r14 r13 r12 rbx rbp] [retaddr = trampoline].
  // top-72 keeps rsp == 8 (mod 16) at the trampoline's first instruction,
  // exactly as if it had been reached by a call.
  const std::uintptr_t sp = top - 72;
  std::memset(reinterpret_cast<void*>(sp), 0, 72);
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  std::memcpy(reinterpret_cast<void*>(sp), &mxcsr, sizeof(mxcsr));
  std::memcpy(reinterpret_cast<void*>(sp + 4), &fcw, sizeof(fcw));
  void (*tramp)() = &drbml_fiber_trampoline;
  std::memcpy(reinterpret_cast<void*>(sp + 56), &tramp, sizeof(tramp));
  sp_ = reinterpret_cast<void*>(sp);
}

void Fiber::transfer(Fiber& from, Fiber& to) {
  if (to.entry_ != nullptr) t_starting = &to;
  drbml_fiber_switch(&from.sp_, to.sp_);
}

#elif DRBML_FIBER_UCONTEXT

bool Fiber::supported() noexcept { return true; }

void Fiber::start(Entry entry, void* arg) {
  entry_ = entry;
  arg_ = arg;
  if (stack_ == nullptr) stack_ = acquire_stack();
  if (getcontext(&uc_) != 0) std::abort();
  uc_.uc_stack.ss_sp = static_cast<char*>(stack_) + kGuardBytes;
  uc_.uc_stack.ss_size = kStackBytes;
  uc_.uc_link = nullptr;  // entries never return through the trampoline
  makecontext(&uc_, reinterpret_cast<void (*)()>(&drbml_fiber_trampoline), 0);
}

void Fiber::transfer(Fiber& from, Fiber& to) {
  if (to.entry_ != nullptr) t_starting = &to;
  if (swapcontext(&from.uc_, &to.uc_) != 0) std::abort();
}

#else

bool Fiber::supported() noexcept { return false; }
void Fiber::start(Entry, void*) { std::abort(); }
void Fiber::transfer(Fiber&, Fiber&) { std::abort(); }

#endif

}  // namespace drbml::runtime
