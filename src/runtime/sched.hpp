// Cooperative deterministic scheduler for simulated OpenMP teams.
//
// Exactly one worker runs at a time: a token is handed from worker to
// worker at explicit yield points, with all scheduling decisions drawn
// from a seeded RNG. This gives genuinely interleaved executions
// (including preemption inside critical sections and busy-wait loops)
// while staying bit-for-bit reproducible.
//
// Two execution substrates carry the token. On the reference substrate
// workers are real std::threads and handoffs go through a condition
// variable; on the fiber substrate (set_fibers) workers are user-space
// stackful contexts multiplexed on the calling thread and handoffs are
// ~25ns context switches -- the VM backend's throughput lever, since
// kernel handoffs dominate schedule-exploration wall clock. Every
// scheduling decision (RNG draw, decider hook, trace record) runs the
// same code on both substrates, so decision traces are bit-identical.
//
// Scheduling policy is pluggable: with no SchedDecider installed the
// scheduler runs the legacy uniform random walk (preempt every N yields,
// pick a uniformly random runnable worker). A decider replaces both the
// preemption predicate and the pick, which is how the exploration engine
// (src/explore) implements PCT priority schedules and bit-exact replay of
// recorded decision traces.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/fiber.hpp"
#include "support/rng.hpp"

namespace drbml::runtime {

/// Thrown inside a worker when the team is being torn down after another
/// worker faulted.
struct TeamAborted {};

/// One recorded scheduling decision: at global step `step` the token moved
/// to worker `target`. `forced` distinguishes decisions the program forced
/// (blocking waits, barriers, worker completion, the initial token grant)
/// from voluntary preemptions at yield points. Replay needs the
/// distinction: forced switch points recur at the same steps on their own,
/// while voluntary preemptions only happen where the trace says so.
struct ScheduleDecision {
  bool forced = false;
  std::uint64_t step = 0;
  int target = 0;

  friend bool operator==(const ScheduleDecision& a,
                         const ScheduleDecision& b) {
    return a.forced == b.forced && a.step == b.step && a.target == b.target;
  }
};

/// Decisions of one parallel region, in the order they were taken.
using RegionTrace = std::vector<ScheduleDecision>;

/// Decisions of a whole run, one vector per parallel region in dynamic
/// region order (nested regions serialize, so the order is deterministic).
struct ScheduleTrace {
  std::vector<RegionTrace> regions;

  [[nodiscard]] std::size_t total_decisions() const {
    std::size_t n = 0;
    for (const auto& r : regions) n += r.size();
    return n;
  }

  friend bool operator==(const ScheduleTrace& a, const ScheduleTrace& b) {
    return a.regions == b.regions;
  }
};

/// Pluggable scheduling policy. All hooks run with the scheduler mutex
/// held and only ever from the single worker that owns the token, so
/// implementations need no synchronization of their own.
class SchedDecider {
 public:
  virtual ~SchedDecider() = default;

  /// Called once per team before the first worker runs.
  virtual void begin(int workers) = 0;

  /// Voluntary-preemption query at a yield point. `ready_peers` lists the
  /// other runnable workers (spin-filtered when filter_spinners() is on);
  /// it may be empty, in which case returning true is pointless but legal.
  virtual bool should_preempt(std::uint64_t step, int current,
                              const std::vector<int>& ready_peers) = 0;

  /// Picks the next worker from `ready` (never empty, ascending indices).
  /// `current` is the worker giving up the token (-1 for the initial
  /// grant); `forced` mirrors ScheduleDecision::forced.
  virtual int pick(const std::vector<int>& ready, int current,
                   std::uint64_t step, bool forced) = 0;

  /// When true, workers spinning inside block_until are filtered from the
  /// candidate set whenever a non-spinning worker is available. Priority
  /// deciders need this: always favouring a high-priority spinner over the
  /// lock holder it waits on would ping-pong forever.
  [[nodiscard]] virtual bool filter_spinners() const { return false; }
};

class CoopScheduler {
 public:
  /// `preempt_every`: pass the token to a random runnable worker after
  /// this many yield points (1 = every yield point).
  CoopScheduler(std::uint64_t seed, int preempt_every);

  /// Runs `workers` cooperatively until all complete. Rethrows the first
  /// worker exception (after unwinding the rest). Must be called from a
  /// thread that is not itself a worker of this scheduler.
  void run_team(std::vector<std::function<void()>> workers);

  /// Selects the fiber substrate for subsequent run_team calls: workers
  /// become user-space fibers on the calling thread instead of OS
  /// threads. Falls back to threads when Fiber::supported() is false.
  void set_fibers(bool on) noexcept { fibers_ = on; }

  /// Installs a scheduling policy (not owned; must outlive run_team).
  /// nullptr restores the legacy uniform random walk.
  void set_decider(SchedDecider* decider) noexcept { decider_ = decider; }

  /// Records every scheduling decision for later replay.
  void set_recording(bool on) noexcept { recording_ = on; }

  /// The decisions recorded so far. Valid after run_team returned *or*
  /// threw: on a step-budget or deadlock abort the prefix up to the abort
  /// is preserved, so aborted schedules stay replayable.
  [[nodiscard]] RegionTrace take_trace() { return std::move(trace_); }

  // ---- called from worker threads ----

  /// Current worker index.
  [[nodiscard]] int self() const;

  /// Possible preemption point.
  void yield_point();

  /// Unconditionally passes the token to another runnable worker (if any).
  void yield_now();

  /// Blocks until all live workers of the team arrive.
  void barrier_wait();

  /// Blocks until `ready()` is true; re-evaluated each time the worker is
  /// rescheduled. Throws on deadlock (no runnable worker and no progress).
  void block_until(const std::function<bool()>& ready);

  /// Total yield points taken (busy-wait/step budget guard).
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

  /// Workers that have not yet completed.
  [[nodiscard]] int live() const noexcept { return live_; }

  /// Aborts after this many yield points (guards against livelock).
  void set_step_limit(std::uint64_t limit) noexcept { step_limit_ = limit; }

 private:
  enum class State { Ready, AtBarrier, Done };

  struct FiberArg {
    CoopScheduler* sched = nullptr;
    int index = -1;
  };

  /// Scheduler-state guard: locks the mutex on the thread substrate. The
  /// fiber substrate runs every worker on one OS thread, so there is
  /// nothing to lock and this returns an empty lock.
  [[nodiscard]] std::unique_lock<std::mutex> guard();

  void run_team_threads(std::vector<std::function<void()>>& workers);
  void run_team_fibers(std::vector<std::function<void()>>& workers);

  /// Fiber substrate: saves the running context into `me`'s fiber (-1 =
  /// the driver) and resumes `next`'s; restores the scheduler
  /// thread-locals after being resumed.
  void transfer_to(int me, int next);

  /// Body of one worker fiber: runs the job, then the completion
  /// bookkeeping, then transfers away for the last time.
  void fiber_worker_main(int i);
  static void fiber_entry(void* arg);

  /// Pre: lock held. Picks the next runnable worker and wakes it; current
  /// worker then waits until it owns the token again (or abort).
  void switch_from(std::unique_lock<std::mutex>& lock, int me, bool forced);

  /// Pre: lock held. Releases a full barrier if everyone arrived.
  void maybe_release_barrier();

  [[nodiscard]] int pick_runnable(int exclude);

  /// Pre: lock held. Ready workers other than `exclude`, ascending,
  /// spin-filtered when the decider asks for it. Returns a reference to
  /// a reused scratch buffer, valid until the next call.
  [[nodiscard]] const std::vector<int>& ready_peers(int exclude) const;

  /// Pre: lock held. Decider-routed equivalent of pick_runnable.
  [[nodiscard]] int decide_next(int exclude, bool forced);

  void record(bool forced, int target);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<State> states_;
  int current_ = -1;
  int live_ = 0;
  std::uint64_t barrier_generation_ = 0;
  bool aborting_ = false;
  std::exception_ptr first_error_;
  Rng rng_{0};
  int preempt_every_ = 7;
  std::uint64_t yields_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t step_limit_ = 50'000'000;
  int waiting_ = 0;           // workers inside block_until
  std::uint64_t spin_rounds_ = 0;  // consecutive all-blocked rounds
  SchedDecider* decider_ = nullptr;
  bool recording_ = false;
  RegionTrace trace_;
  std::vector<char> spinning_;  // workers currently inside block_until
  std::vector<int> pick_buf_;           // pick_runnable scratch
  mutable std::vector<int> peers_buf_;  // ready_peers scratch
  mutable std::vector<int> awake_buf_;  // ready_peers spin-filter scratch
  bool fibers_ = false;
  Fiber driver_fiber_;  // save slot for the thread driving run_team
  std::vector<std::unique_ptr<Fiber>> worker_fibers_;
  std::vector<FiberArg> fiber_args_;
  std::vector<std::function<void()>>* fiber_jobs_ = nullptr;
};

/// The scheduler owning the calling thread, or nullptr on the driver
/// thread. Set by run_team for the duration of each worker.
[[nodiscard]] CoopScheduler* current_scheduler() noexcept;
[[nodiscard]] int current_worker_index() noexcept;

}  // namespace drbml::runtime
