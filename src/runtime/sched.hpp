// Cooperative deterministic scheduler for simulated OpenMP teams.
//
// Workers run on real std::threads, but exactly one runs at a time: a
// token is handed from worker to worker at explicit yield points, with all
// scheduling decisions drawn from a seeded RNG. This gives genuinely
// interleaved executions (including preemption inside critical sections
// and busy-wait loops) while staying bit-for-bit reproducible.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "support/rng.hpp"

namespace drbml::runtime {

/// Thrown inside a worker when the team is being torn down after another
/// worker faulted.
struct TeamAborted {};

class CoopScheduler {
 public:
  /// `preempt_every`: pass the token to a random runnable worker after
  /// this many yield points (1 = every yield point).
  CoopScheduler(std::uint64_t seed, int preempt_every);

  /// Runs `workers` cooperatively until all complete. Rethrows the first
  /// worker exception (after unwinding the rest). Must be called from a
  /// thread that is not itself a worker of this scheduler.
  void run_team(std::vector<std::function<void()>> workers);

  // ---- called from worker threads ----

  /// Current worker index.
  [[nodiscard]] int self() const;

  /// Possible preemption point.
  void yield_point();

  /// Unconditionally passes the token to another runnable worker (if any).
  void yield_now();

  /// Blocks until all live workers of the team arrive.
  void barrier_wait();

  /// Blocks until `ready()` is true; re-evaluated each time the worker is
  /// rescheduled. Throws on deadlock (no runnable worker and no progress).
  void block_until(const std::function<bool()>& ready);

  /// Total yield points taken (busy-wait/step budget guard).
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

  /// Workers that have not yet completed.
  [[nodiscard]] int live() const noexcept { return live_; }

  /// Aborts after this many yield points (guards against livelock).
  void set_step_limit(std::uint64_t limit) noexcept { step_limit_ = limit; }

 private:
  enum class State { Ready, AtBarrier, Done };

  /// Pre: lock held. Picks the next runnable worker and wakes it; current
  /// worker then waits until it owns the token again (or abort).
  void switch_from(std::unique_lock<std::mutex>& lock, int me);

  /// Pre: lock held. Releases a full barrier if everyone arrived.
  void maybe_release_barrier();

  [[nodiscard]] int pick_runnable(int exclude);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<State> states_;
  int current_ = -1;
  int live_ = 0;
  std::uint64_t barrier_generation_ = 0;
  bool aborting_ = false;
  std::exception_ptr first_error_;
  Rng rng_{0};
  int preempt_every_ = 7;
  std::uint64_t yields_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t step_limit_ = 50'000'000;
  int waiting_ = 0;           // workers inside block_until
  std::uint64_t spin_rounds_ = 0;  // consecutive all-blocked rounds
};

/// The scheduler owning the calling thread, or nullptr on the driver
/// thread. Set by run_team for the duration of each worker.
[[nodiscard]] CoopScheduler* current_scheduler() noexcept;
[[nodiscard]] int current_worker_index() noexcept;

}  // namespace drbml::runtime
