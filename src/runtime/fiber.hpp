// User-space stackful fibers: the execution substrate for the VM backend.
//
// CoopScheduler is strictly token-passing -- exactly one worker of a
// simulated team runs at any instant -- so a team does not need OS
// threads at all. The VM backend multiplexes every worker onto the
// calling thread and hands the token over with a user-space context
// switch (~25ns) instead of a condition-variable round trip through the
// kernel (~2us). Scheduling *decisions* still flow through exactly the
// same CoopScheduler code on both substrates, which keeps decision
// traces, race reports, and witnesses bit-identical between them; the
// differential suite enforces that.
//
// Two implementations behind one interface:
//   - bare x86-64 SysV switch: saves the callee-saved registers plus the
//     FP control words and swaps stack pointers (fiber.cpp, top-level
//     asm). Used in plain builds.
//   - ucontext_t swapcontext: used under Thread/AddressSanitizer, whose
//     runtime interceptors understand swapcontext and keep shadow stacks
//     coherent across the switch. Also the portable fallback off x86-64.
// On platforms with neither, supported() is false and the scheduler
// stays on the reference thread substrate.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DRBML_FIBER_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DRBML_FIBER_SANITIZED 1
#endif
#endif
#ifndef DRBML_FIBER_SANITIZED
#define DRBML_FIBER_SANITIZED 0
#endif

#if defined(__x86_64__) && defined(__linux__) && !DRBML_FIBER_SANITIZED
#define DRBML_FIBER_ASM 1
#else
#define DRBML_FIBER_ASM 0
#endif

#if !DRBML_FIBER_ASM && defined(__unix__)
#define DRBML_FIBER_UCONTEXT 1
#include <ucontext.h>
#else
#define DRBML_FIBER_UCONTEXT 0
#endif

namespace drbml::runtime {

/// One suspended execution context. A default-constructed Fiber is an
/// empty save slot: the first transfer *out of* it adopts the calling
/// thread's context (this is how the scheduler's driver suspends itself
/// while worker fibers run). start() instead arms the fiber to run an
/// entry function on a fresh guarded stack at its first resume.
///
/// Lifecycle rules the scheduler upholds: an armed fiber's entry must
/// never return -- it transfers away for the last time and is then never
/// resumed again. Fibers are created, run, and destroyed on one OS
/// thread; stacks recycle through a per-thread pool.
class Fiber {
 public:
  using Entry = void (*)(void*);

  Fiber() = default;
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// True when this build has a working fiber implementation.
  [[nodiscard]] static bool supported() noexcept;

  /// Arms the fiber: entry(arg) starts running at the first transfer into
  /// it. Allocates (or reuses) a lazily-committed stack with a PROT_NONE
  /// guard page below it.
  void start(Entry entry, void* arg);

  /// Saves the current context into `from` and resumes `to`. Returns when
  /// something transfers back into `from`.
  static void transfer(Fiber& from, Fiber& to);

 private:
  friend struct FiberAccess;

  Entry entry_ = nullptr;  // non-null until first resume
  void* arg_ = nullptr;
  void* stack_ = nullptr;  // mmap'd block; null for adopted contexts
#if DRBML_FIBER_ASM
  void* sp_ = nullptr;
#elif DRBML_FIBER_UCONTEXT
  ucontext_t uc_{};
#endif
};

}  // namespace drbml::runtime
