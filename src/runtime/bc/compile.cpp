// AST -> bytecode compiler. The golden rule: the compiled code must make
// exactly the same instrumented calls (note_step / read & write events
// with the same rendered text and location), in exactly the same order,
// as the AST walker in interp.cpp. Evaluation-order decisions below that
// look arbitrary (subscript indices outermost-first, allocate-then-init
// declarations, cond/inc placement in loops) replicate the walker and
// must not be "fixed". Anything not covered by the opcode set is emitted
// as an EvalExpr / ExecStmt / DeclVar fallback into the walker itself,
// which makes divergence impossible by construction for those nodes.
#include "runtime/bc/compile.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "minic/printer.hpp"
#include "obs/catalog.hpp"
#include "runtime/bc/verify.hpp"
#include "support/error.hpp"

namespace drbml::runtime::bc {

using namespace minic;

namespace {

/// Innermost-base source coordinate of an access. Mirrors the
/// interpreter's access_loc; the two must agree for bit-identical race
/// reports.
SourceLoc site_loc(const Expr& expr) {
  const Expr* cur = &expr;
  for (;;) {
    if (const auto* sub = expr_cast<Subscript>(cur)) {
      cur = sub->base.get();
      continue;
    }
    if (const auto* un = expr_cast<Unary>(cur)) {
      if (un->op == UnaryOp::Deref) {
        cur = un->operand.get();
        continue;
      }
    }
    break;
  }
  return cur->loc.valid() ? cur->loc : expr.loc;
}

bool is_init_list(const Expr* e) {
  const auto* call = expr_cast<Call>(e);
  return call != nullptr && call->callee == "__init_list";
}

constexpr std::size_t kNoPatch = static_cast<std::size_t>(-1);

class Compiler {
 public:
  explicit Compiler(const TranslationUnit& tu) : tu_(tu) {}

  Module compile_all() {
    for (const auto& fn : tu_.functions) {
      if (fn->body) add_chunk(*fn->body, "fn " + fn->name);
    }
    for (const auto& fn : tu_.functions) {
      visit_stmt(fn->body.get());
    }
    return std::move(m_);
  }

  [[nodiscard]] std::uint64_t fallback_sites() const noexcept {
    return fallback_sites_;
  }

 private:
  // ------------------------------------------------------------ chunk set

  void add_chunk(const Stmt& s, std::string label) {
    if (m_.entries.count(&s) != 0) return;
    Chunk ch = compile_chunk(s, std::move(label));
    m_.max_frame = std::max(m_.max_frame, ch.frame_size());
    m_.entries[&s] = static_cast<std::uint32_t>(m_.chunks.size());
    m_.chunks.push_back(std::move(ch));
  }

  /// Registers chunks for every body the interpreter enters through
  /// exec_body: OpenMP construct bodies, worksharing innermost bodies
  /// (same unwrap + collapse walk as exec_worksharing_loop), and sections
  /// children.
  void visit_stmt(const Stmt* s) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::Compound:
        for (const auto& st : static_cast<const CompoundStmt*>(s)->body) {
          visit_stmt(st.get());
        }
        break;
      case StmtKind::If: {
        const auto* i = static_cast<const IfStmt*>(s);
        visit_stmt(i->then_branch.get());
        visit_stmt(i->else_branch.get());
        break;
      }
      case StmtKind::For:
        visit_stmt(static_cast<const ForStmt*>(s)->init.get());
        visit_stmt(static_cast<const ForStmt*>(s)->body.get());
        break;
      case StmtKind::While:
        visit_stmt(static_cast<const WhileStmt*>(s)->body.get());
        break;
      case StmtKind::Do:
        visit_stmt(static_cast<const DoStmt*>(s)->body.get());
        break;
      case StmtKind::Omp: {
        const auto* o = static_cast<const OmpStmt*>(s);
        const OmpDirectiveKind k = o->directive.kind;
        if (o->body) {
          add_chunk(*o->body, "omp " + omp_directive_kind_name(k));
        }
        if (o->directive.is_worksharing_loop()) add_worksharing_chunk(*o);
        if (k == OmpDirectiveKind::Sections ||
            k == OmpDirectiveKind::ParallelSections) {
          add_sections_chunks(*o);
        }
        visit_stmt(o->body.get());
        break;
      }
      default:
        break;
    }
  }

  void add_worksharing_chunk(const OmpStmt& s) {
    // Same body unwrapping and collapse walk as exec_worksharing_loop.
    const Stmt* body = s.body.get();
    while (const auto* block = stmt_cast<CompoundStmt>(body)) {
      if (block->body.size() != 1) break;
      body = block->body[0].get();
    }
    const auto* loop = stmt_cast<ForStmt>(body);
    if (loop == nullptr) return;  // the runtime faults before iterating

    std::int64_t collapse = 1;
    if (const auto* c = s.directive.find_clause(OmpClauseKind::Collapse)) {
      collapse = std::max<std::int64_t>(1, c->int_arg);
    }
    const Stmt* cursor = loop;
    const Stmt* innermost = nullptr;
    for (std::int64_t level = 0; level < collapse; ++level) {
      const auto* f = stmt_cast<ForStmt>(cursor);
      if (f == nullptr) return;  // collapse depth fault at runtime
      innermost = f->body.get();
      cursor = f->body.get();
      while (const auto* block = stmt_cast<CompoundStmt>(cursor)) {
        if (block->body.size() != 1 || level + 1 >= collapse) break;
        cursor = block->body[0].get();
      }
    }
    if (innermost != nullptr) add_chunk(*innermost, "omp-ws body");
  }

  void add_sections_chunks(const OmpStmt& s) {
    const auto* block = stmt_cast<CompoundStmt>(s.body.get());
    if (block == nullptr) return;
    for (const auto& child : block->body) {
      const auto* sec = stmt_cast<OmpStmt>(child.get());
      if (sec != nullptr &&
          sec->directive.kind == OmpDirectiveKind::Section) {
        if (sec->body) add_chunk(*sec->body, "omp section");
      } else if (child) {
        add_chunk(*child, "sections child");
      }
    }
  }

  // ------------------------------------------------------------ pools

  std::int32_t intern_const(const Value& v) {
    std::uint64_t bits = 0;
    if (v.kind() == Value::Kind::Double) {
      const double d = v.as_double();
      std::memcpy(&bits, &d, sizeof(d));
    } else {
      bits = static_cast<std::uint64_t>(v.as_int());
    }
    const auto key = std::make_pair(static_cast<int>(v.kind()), bits);
    auto it = const_ids_.find(key);
    if (it != const_ids_.end()) return it->second;
    const auto id = static_cast<std::int32_t>(m_.consts.size());
    m_.consts.push_back(v);
    const_ids_[key] = id;
    return id;
  }

  std::int32_t intern_message(std::string msg) {
    auto it = message_ids_.find(msg);
    if (it != message_ids_.end()) return it->second;
    const auto id = static_cast<std::int32_t>(m_.messages.size());
    message_ids_[msg] = id;
    m_.messages.push_back(std::move(msg));
    return id;
  }

  std::int32_t intern_decl(const VarDecl* d) {
    const auto id = static_cast<std::int32_t>(m_.decls.size());
    m_.decls.push_back(d);
    return id;
  }

  std::int32_t intern_string(const StringLit* s) {
    const auto id = static_cast<std::int32_t>(m_.strings.size());
    m_.strings.push_back(s);
    return id;
  }

  std::int32_t intern_expr(const Expr* e) {
    const auto id = static_cast<std::int32_t>(m_.exprs.size());
    m_.exprs.push_back(e);
    return id;
  }

  /// Access site carrying the rendered text + location of `access` (the
  /// expression the interpreter passes to on_read/on_write).
  std::int32_t make_event_site(const Expr& access) {
    AccessSite s;
    s.text = expr_to_string(access);
    s.loc = site_loc(access);
    const auto id = static_cast<std::int32_t>(m_.sites.size());
    m_.sites.push_back(std::move(s));
    return id;
  }

  /// Access site for a variable lookup (with the chunk's cache slot);
  /// `with_event` additionally renders text/loc for a read event on the
  /// variable itself (pointer-base reads, scalar loads).
  std::int32_t make_var_site(const VarDecl* decl, const Expr* access) {
    AccessSite s;
    s.decl = decl;
    s.cache = cache_slot(decl);
    if (access != nullptr) {
      s.text = expr_to_string(*access);
      s.loc = site_loc(*access);
    }
    const auto id = static_cast<std::int32_t>(m_.sites.size());
    m_.sites.push_back(std::move(s));
    return id;
  }

  // ------------------------------------------------------------ chunk state

  std::int32_t cache_slot(const VarDecl* d) {
    auto it = caches_.find(d);
    if (it != caches_.end()) return it->second;
    const auto slot = static_cast<std::int32_t>(caches_.size());
    caches_[d] = slot;
    return slot;
  }

  std::uint16_t cache_u16(const VarDecl* d) {
    return static_cast<std::uint16_t>(cache_slot(d));
  }

  int alloc() {
    if (next_reg_ >= 60000) {
      throw Error("bytecode compiler: register overflow in chunk '" +
                  chunk_.label + "'");
    }
    const int r = next_reg_++;
    if (next_reg_ > max_reg_) max_reg_ = next_reg_;
    return r;
  }
  void release_to(int r) { next_reg_ = r; }

  std::size_t emit(Instr i) {
    chunk_.code.push_back(i);
    return chunk_.code.size() - 1;
  }
  void patch(std::size_t at, std::size_t target) {
    chunk_.code[at].imm = static_cast<std::int32_t>(target);
  }
  [[nodiscard]] std::size_t here() const { return chunk_.code.size(); }

  static std::uint16_t u16(int r) { return static_cast<std::uint16_t>(r); }

  struct LoopCtx {
    int depth = 0;  // compiled frame depth of the loop's jump targets
    std::vector<std::size_t> break_jumps;
    std::vector<std::size_t> continue_jumps;
    std::vector<std::size_t> break_flows;     // flow_infos[] indices
    std::vector<std::size_t> continue_flows;
  };

  void close_loop(LoopCtx&& loop, std::size_t lend, std::size_t lcont) {
    for (std::size_t j : loop.break_jumps) patch(j, lend);
    for (std::size_t j : loop.continue_jumps) patch(j, lcont);
    for (std::size_t f : loop.break_flows) {
      m_.flow_infos[f].brk = static_cast<std::int32_t>(lend);
    }
    for (std::size_t f : loop.continue_flows) {
      m_.flow_infos[f].cont = static_cast<std::int32_t>(lcont);
    }
  }

  Chunk compile_chunk(const Stmt& s, std::string label) {
    chunk_ = Chunk{};
    chunk_.entry = &s;
    chunk_.label = std::move(label);
    next_reg_ = 0;
    max_reg_ = 0;
    depth_ = 0;
    caches_.clear();
    loops_.clear();
    compile_stmt(s);
    emit({.op = Op::Halt});
    chunk_.num_regs = static_cast<std::uint32_t>(max_reg_);
    chunk_.num_caches = static_cast<std::uint32_t>(caches_.size());
    return std::move(chunk_);
  }

  // ------------------------------------------------------------ statements

  void compile_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        for (const auto& v : d.decls) compile_decl(*v);
        return;
      }
      case StmtKind::Expr: {
        const int r = compile_expr(*static_cast<const ExprStmt&>(s).expr);
        release_to(r);
        return;
      }
      case StmtKind::Compound: {
        const auto& block = static_cast<const CompoundStmt&>(s);
        emit({.op = Op::PushFrame});
        ++depth_;
        for (const auto& st : block.body) compile_stmt(*st);
        emit({.op = Op::PopFrame, .n = 1});
        --depth_;
        return;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        const int c = compile_expr(*i.cond);
        release_to(c);
        const std::size_t jf = emit({.op = Op::JumpIfFalse, .a = u16(c)});
        compile_stmt(*i.then_branch);
        if (i.else_branch) {
          const std::size_t j = emit({.op = Op::Jump});
          patch(jf, here());
          compile_stmt(*i.else_branch);
          patch(j, here());
        } else {
          patch(jf, here());
        }
        return;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        emit({.op = Op::PushFrame});
        ++depth_;
        if (f.init) compile_stmt(*f.init);
        const std::size_t lcond = here();
        std::size_t jf = kNoPatch;
        if (f.cond) {
          const int c = compile_expr(*f.cond);
          release_to(c);
          jf = emit({.op = Op::JumpIfFalse, .a = u16(c)});
        }
        loops_.push_back(LoopCtx{depth_, {}, {}, {}, {}});
        compile_stmt(*f.body);
        const std::size_t lcont = here();
        if (f.inc) {
          const int r = compile_expr(*f.inc);
          release_to(r);
        }
        emit({.op = Op::Jump, .imm = static_cast<std::int32_t>(lcond)});
        const std::size_t lend = here();
        if (jf != kNoPatch) patch(jf, lend);
        LoopCtx loop = std::move(loops_.back());
        loops_.pop_back();
        close_loop(std::move(loop), lend, lcont);
        emit({.op = Op::PopFrame, .n = 1});
        --depth_;
        return;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(s);
        const std::size_t lcond = here();
        const int c = compile_expr(*w.cond);
        release_to(c);
        const std::size_t jf = emit({.op = Op::JumpIfFalse, .a = u16(c)});
        loops_.push_back(LoopCtx{depth_, {}, {}, {}, {}});
        compile_stmt(*w.body);
        emit({.op = Op::Jump, .imm = static_cast<std::int32_t>(lcond)});
        const std::size_t lend = here();
        patch(jf, lend);
        LoopCtx loop = std::move(loops_.back());
        loops_.pop_back();
        close_loop(std::move(loop), lend, lcond);
        return;
      }
      case StmtKind::Do: {
        const auto& d = static_cast<const DoStmt&>(s);
        const std::size_t lbody = here();
        loops_.push_back(LoopCtx{depth_, {}, {}, {}, {}});
        compile_stmt(*d.body);
        const std::size_t lcond = here();
        const int c = compile_expr(*d.cond);
        release_to(c);
        emit({.op = Op::JumpIfTrue,
              .a = u16(c),
              .imm = static_cast<std::int32_t>(lbody)});
        const std::size_t lend = here();
        LoopCtx loop = std::move(loops_.back());
        loops_.pop_back();
        close_loop(std::move(loop), lend, lcond);
        return;
      }
      case StmtKind::Return: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        const int v = alloc();
        if (r.value) {
          compile_expr_into(*r.value, v);
        } else {
          emit({.op = Op::Const,
                .a = u16(v),
                .imm = intern_const(Value::of_int(0))});
        }
        emit({.op = Op::RetValue, .a = u16(v)});
        release_to(v);
        return;
      }
      case StmtKind::Break:
        compile_flow_stmt(/*is_break=*/true);
        return;
      case StmtKind::Continue:
        compile_flow_stmt(/*is_break=*/false);
        return;
      case StmtKind::Null:
        return;
      case StmtKind::Omp: {
        // OpenMP constructs stay on the AST walker (exec_stmt), which
        // routes them through exec_omp with all the scheduling machinery.
        FlowInfo fi;
        fi.node = &s;
        fi.exit_pops = static_cast<std::uint16_t>(depth_);
        if (!loops_.empty()) {
          const auto pops =
              static_cast<std::uint16_t>(depth_ - loops_.back().depth);
          fi.brk_pops = pops;
          fi.cont_pops = pops;
        }
        const auto idx = static_cast<std::size_t>(m_.flow_infos.size());
        m_.flow_infos.push_back(fi);
        ++fallback_sites_;
        emit({.op = Op::ExecStmt, .imm = static_cast<std::int32_t>(idx)});
        if (!loops_.empty()) {
          loops_.back().break_flows.push_back(idx);
          loops_.back().continue_flows.push_back(idx);
        }
        return;
      }
    }
  }

  void compile_flow_stmt(bool is_break) {
    if (loops_.empty()) {
      // No enclosing loop in this chunk: unwind the chunk's frames and
      // hand the flow to the caller (the enclosing AST-walked construct).
      if (depth_ > 0) {
        emit({.op = Op::PopFrame, .n = static_cast<std::uint16_t>(depth_)});
      }
      emit({.op = Op::RetFlow, .n = is_break ? kFlowBreak : kFlowContinue});
      return;
    }
    LoopCtx& loop = loops_.back();
    if (depth_ > loop.depth) {
      emit({.op = Op::PopFrame,
            .n = static_cast<std::uint16_t>(depth_ - loop.depth)});
    }
    const std::size_t j = emit({.op = Op::Jump});
    if (is_break) {
      loop.break_jumps.push_back(j);
    } else {
      loop.continue_jumps.push_back(j);
    }
  }

  void compile_decl(const VarDecl& d) {
    // Eagerly give the declared variable a cache slot: DeclScalar/DeclVar
    // update it, so re-executions of the declaration (loop iterations)
    // repoint the cache at the freshly allocated object.
    const std::uint16_t cache = cache_u16(&d);
    if (!d.array_dims.empty() || is_init_list(d.init.get())) {
      // Arrays, brace initializers: the AST walker's declare_var handles
      // dimension evaluation and the flattened fill.
      ++fallback_sites_;
      emit({.op = Op::DeclVar, .b = cache, .imm = intern_decl(&d)});
      return;
    }
    const int save = next_reg_;
    const int addr = alloc();
    emit({.op = Op::DeclScalar,
          .a = u16(addr),
          .b = cache,
          .imm = intern_decl(&d)});
    if (d.init) {
      const int v = alloc();
      compile_expr_into(*d.init, v);
      emit({.op = Op::StoreDeclInit, .a = u16(addr), .b = u16(v)});
    }
    release_to(save);
  }

  // ------------------------------------------------------------ expressions

  int compile_expr(const Expr& e) {
    const int dst = alloc();
    compile_expr_into(e, dst);
    release_to(dst + 1);
    return dst;
  }

  void emit_eval(const Expr& e, int dst) {
    ++fallback_sites_;
    emit({.op = Op::EvalExpr, .a = u16(dst), .imm = intern_expr(&e)});
  }

  void compile_expr_into(const Expr& e, int dst) {
    switch (e.kind) {
      case ExprKind::IntLit:
        emit({.op = Op::Const,
              .a = u16(dst),
              .imm = intern_const(
                  Value::of_int(static_cast<const IntLit&>(e).value))});
        return;
      case ExprKind::FloatLit:
        emit({.op = Op::Const,
              .a = u16(dst),
              .imm = intern_const(
                  Value::of_double(static_cast<const FloatLit&>(e).value))});
        return;
      case ExprKind::CharLit:
        emit({.op = Op::Const,
              .a = u16(dst),
              .imm = intern_const(
                  Value::of_int(static_cast<const CharLit&>(e).value))});
        return;
      case ExprKind::StringLit:
        emit({.op = Op::StrObj,
              .a = u16(dst),
              .imm = intern_string(static_cast<const StringLit*>(&e))});
        return;
      case ExprKind::Ident: {
        const auto& id = static_cast<const Ident&>(e);
        if (id.decl == nullptr) {
          emit_eval(e, dst);  // "use of unknown identifier" fault
          return;
        }
        if (id.decl->is_array()) {
          emit({.op = Op::ArrayAddr,
                .a = u16(dst),
                .imm = make_var_site(id.decl, nullptr)});
        } else {
          emit({.op = Op::LoadScalar,
                .a = u16(dst),
                .imm = make_var_site(id.decl, &e)});
        }
        return;
      }
      case ExprKind::Subscript: {
        const int save = next_reg_;
        const int addr = alloc();
        compile_subscript_addr(e, addr);
        emit({.op = Op::LoadElem,
              .a = u16(dst),
              .b = u16(addr),
              .imm = make_event_site(e)});
        release_to(save);
        return;
      }
      case ExprKind::Unary:
        compile_unary(static_cast<const Unary&>(e), dst);
        return;
      case ExprKind::Binary:
        compile_binary(static_cast<const Binary&>(e), dst);
        return;
      case ExprKind::Assign:
        compile_assign(static_cast<const Assign&>(e), dst);
        return;
      case ExprKind::Conditional: {
        const auto& c = static_cast<const Conditional&>(e);
        {
          const int save = next_reg_;
          compile_expr_into(*c.cond, dst);
          release_to(save);
        }
        const std::size_t jf = emit({.op = Op::JumpIfFalse, .a = u16(dst)});
        {
          const int save = next_reg_;
          compile_expr_into(*c.then_expr, dst);
          release_to(save);
        }
        const std::size_t j = emit({.op = Op::Jump});
        patch(jf, here());
        {
          const int save = next_reg_;
          compile_expr_into(*c.else_expr, dst);
          release_to(save);
        }
        patch(j, here());
        return;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const Call&>(e);
        const FunctionDecl* fn = tu_.find_function(c.callee);
        if (fn == nullptr || fn->body == nullptr ||
            fn->params.size() != c.args.size()) {
          // Builtins, externs, and arity errors: the walker's eval_call.
          emit_eval(e, dst);
          return;
        }
        const int save = next_reg_;
        const int base = next_reg_;
        for (std::size_t k = 0; k < c.args.size(); ++k) alloc();
        for (std::size_t k = 0; k < c.args.size(); ++k) {
          const int s2 = next_reg_;
          compile_expr_into(*c.args[k], base + static_cast<int>(k));
          release_to(s2);
        }
        CallInfo ci;
        ci.fn = fn;
        ci.node = &c;
        ci.arg_base = u16(base);
        ci.argc = static_cast<std::uint16_t>(c.args.size());
        const auto idx = static_cast<std::int32_t>(m_.call_infos.size());
        m_.call_infos.push_back(ci);
        emit({.op = Op::CallUser, .a = u16(dst), .imm = idx});
        release_to(save);
        return;
      }
      case ExprKind::Cast: {
        const auto& c = static_cast<const Cast&>(e);
        {
          const int save = next_reg_;
          compile_expr_into(*c.operand, dst);
          release_to(save);
        }
        if (c.type.is_pointer()) return;  // pointer casts pass through
        if (c.type.is_floating()) {
          emit({.op = Op::CastDbl, .a = u16(dst), .b = u16(dst)});
        } else {
          emit({.op = Op::CastInt, .a = u16(dst), .b = u16(dst)});
        }
        return;
      }
    }
    emit_eval(e, dst);  // unreachable; defensive
  }

  void compile_unary(const Unary& u, int dst) {
    switch (u.op) {
      case UnaryOp::Plus:
        compile_expr_into(*u.operand, dst);
        return;
      case UnaryOp::Neg: {
        const int save = next_reg_;
        compile_expr_into(*u.operand, dst);
        release_to(save);
        emit({.op = Op::Neg, .a = u16(dst), .b = u16(dst)});
        return;
      }
      case UnaryOp::Not: {
        const int save = next_reg_;
        compile_expr_into(*u.operand, dst);
        release_to(save);
        emit({.op = Op::NotOp, .a = u16(dst), .b = u16(dst)});
        return;
      }
      case UnaryOp::BitNot: {
        const int save = next_reg_;
        compile_expr_into(*u.operand, dst);
        release_to(save);
        emit({.op = Op::BitNotOp, .a = u16(dst), .b = u16(dst)});
        return;
      }
      case UnaryOp::AddrOf:
        compile_lvalue(*u.operand, dst);
        return;
      case UnaryOp::Deref: {
        const int save = next_reg_;
        compile_expr_into(*u.operand, dst);
        release_to(save);
        emit({.op = Op::CheckPtr,
              .a = u16(dst),
              .imm = intern_message("dereference of null pointer")});
        emit({.op = Op::LoadElem,
              .a = u16(dst),
              .b = u16(dst),
              .imm = make_event_site(u)});
        return;
      }
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec: {
        const int save = next_reg_;
        const int addr = alloc();
        compile_lvalue(*u.operand, addr);
        std::uint16_t flags = 0;
        if (u.op == UnaryOp::PreInc || u.op == UnaryOp::PreDec) {
          flags |= kIncDecPre;
        }
        if (u.op == UnaryOp::PreDec || u.op == UnaryOp::PostDec) {
          flags |= kIncDecNeg;
        }
        emit({.op = Op::IncDec,
              .n = flags,
              .a = u16(dst),
              .b = u16(addr),
              .imm = make_event_site(*u.operand)});
        release_to(save);
        return;
      }
    }
    emit_eval(u, dst);  // unreachable; defensive
  }

  void compile_binary(const Binary& b, int dst) {
    if (b.op == BinaryOp::LogicalAnd) {
      {
        const int save = next_reg_;
        compile_expr_into(*b.lhs, dst);
        release_to(save);
      }
      const std::size_t jf = emit({.op = Op::JumpIfFalse, .a = u16(dst)});
      {
        const int save = next_reg_;
        compile_expr_into(*b.rhs, dst);
        release_to(save);
      }
      emit({.op = Op::ToBool, .a = u16(dst), .b = u16(dst)});
      const std::size_t j = emit({.op = Op::Jump});
      patch(jf, here());
      emit({.op = Op::Const,
            .a = u16(dst),
            .imm = intern_const(Value::of_int(0))});
      patch(j, here());
      return;
    }
    if (b.op == BinaryOp::LogicalOr) {
      {
        const int save = next_reg_;
        compile_expr_into(*b.lhs, dst);
        release_to(save);
      }
      const std::size_t jt = emit({.op = Op::JumpIfTrue, .a = u16(dst)});
      {
        const int save = next_reg_;
        compile_expr_into(*b.rhs, dst);
        release_to(save);
      }
      emit({.op = Op::ToBool, .a = u16(dst), .b = u16(dst)});
      const std::size_t j = emit({.op = Op::Jump});
      patch(jt, here());
      emit({.op = Op::Const,
            .a = u16(dst),
            .imm = intern_const(Value::of_int(1))});
      patch(j, here());
      return;
    }
    if (b.op == BinaryOp::Comma) {
      const int t = compile_expr(*b.lhs);
      release_to(t);
      compile_expr_into(*b.rhs, dst);
      return;
    }
    const int save = next_reg_;
    {
      const int s2 = next_reg_;
      compile_expr_into(*b.lhs, dst);
      release_to(s2);
    }
    const int rhs = alloc();
    {
      const int s2 = next_reg_;
      compile_expr_into(*b.rhs, rhs);
      release_to(s2);
    }
    emit({.op = Op::BinOp,
          .n = static_cast<std::uint16_t>(b.op),
          .a = u16(dst),
          .b = u16(dst),
          .c = u16(rhs)});
    release_to(save);
    return;
  }

  static BinaryOp compound_op(AssignOp op) {
    switch (op) {
      case AssignOp::Add: return BinaryOp::Add;
      case AssignOp::Sub: return BinaryOp::Sub;
      case AssignOp::Mul: return BinaryOp::Mul;
      case AssignOp::Div: return BinaryOp::Div;
      case AssignOp::Mod: return BinaryOp::Mod;
      case AssignOp::Shl: return BinaryOp::Shl;
      case AssignOp::Shr: return BinaryOp::Shr;
      case AssignOp::And: return BinaryOp::BitAnd;
      case AssignOp::Or: return BinaryOp::BitOr;
      case AssignOp::Xor: return BinaryOp::BitXor;
      default: return BinaryOp::Add;
    }
  }

  void compile_assign(const Assign& a, int dst) {
    const int save = next_reg_;
    const int addr = alloc();
    compile_lvalue(*a.target, addr);
    const std::int32_t site = make_event_site(*a.target);
    if (a.op == AssignOp::Assign) {
      const int s2 = next_reg_;
      compile_expr_into(*a.value, dst);
      release_to(s2);
    } else {
      const int old = alloc();
      emit({.op = Op::LoadElem, .a = u16(old), .b = u16(addr), .imm = site});
      const int rhs = alloc();
      {
        const int s2 = next_reg_;
        compile_expr_into(*a.value, rhs);
        release_to(s2);
      }
      emit({.op = Op::ApplyBin,
            .n = static_cast<std::uint16_t>(compound_op(a.op)),
            .a = u16(dst),
            .b = u16(old),
            .c = u16(rhs)});
    }
    emit({.op = Op::StoreElem, .a = u16(addr), .b = u16(dst), .imm = site});
    release_to(save);
  }

  void compile_lvalue(const Expr& e, int dst) {
    switch (e.kind) {
      case ExprKind::Ident: {
        const auto& id = static_cast<const Ident&>(e);
        emit({.op = Op::VarAddr,
              .a = u16(dst),
              .imm = make_var_site(id.decl, nullptr)});
        return;
      }
      case ExprKind::Subscript:
        compile_subscript_addr(e, dst);
        return;
      case ExprKind::Unary: {
        const auto& u = static_cast<const Unary&>(e);
        if (u.op == UnaryOp::Deref) {
          const int save = next_reg_;
          compile_expr_into(*u.operand, dst);
          release_to(save);
          emit({.op = Op::CheckPtr,
                .a = u16(dst),
                .imm = intern_message("dereference of null pointer")});
          return;
        }
        break;
      }
      default:
        break;
    }
    emit({.op = Op::FaultOp,
          .imm = intern_message("expression is not an lvalue: " +
                                expr_to_string(e))});
  }

  /// Leaves the element address of a subscript chain in `dst`, making the
  /// same evaluation steps as the walker's lvalue(): indices
  /// outermost-subscript-first, then base resolution (slot lookup, and
  /// for pointer bases a read event + null check).
  void compile_subscript_addr(const Expr& e, int dst) {
    std::vector<const Expr*> idx_exprs;  // outermost first
    const Expr* cur = &e;
    while (const auto* s = expr_cast<Subscript>(cur)) {
      idx_exprs.push_back(s->index.get());
      cur = s->base.get();
    }
    const auto n = static_cast<int>(idx_exprs.size());
    const int save = next_reg_;
    const int first = next_reg_;
    for (int k = 0; k < n; ++k) alloc();
    for (int k = 0; k < n; ++k) {
      const int s2 = next_reg_;
      compile_expr_into(*idx_exprs[static_cast<std::size_t>(k)], first + k);
      release_to(s2);
    }

    IndexInfo info;
    info.node = static_cast<const Subscript*>(&e);
    Instr ins{.op = Op::IndexAddr,
              .n = static_cast<std::uint16_t>(n),
              .a = u16(dst),
              .b = u16(first)};
    if (const auto* id = expr_cast<Ident>(cur)) {
      info.base_is_ident = true;
      if (id->decl != nullptr && id->decl->is_array()) {
        info.base_is_array = true;
        info.base_site = make_var_site(id->decl, nullptr);
      } else {
        // Pointer variable (or unbound ident, which faults at lookup):
        // loading the pointer is itself an instrumented read.
        info.base_site = make_var_site(id->decl, cur);
        info.null_msg = intern_message(
            "dereference of null pointer '" +
            (id->decl != nullptr ? id->decl->name : id->name) + "'");
      }
    } else {
      const int base = alloc();
      {
        const int s2 = next_reg_;
        compile_expr_into(*cur, base);
        release_to(s2);
      }
      ins.c = u16(base);
      info.null_msg = intern_message("dereference of null pointer");
    }
    const auto idx = static_cast<std::int32_t>(m_.index_infos.size());
    m_.index_infos.push_back(info);
    ins.imm = idx;
    emit(ins);
    release_to(save);
  }

  const TranslationUnit& tu_;
  Module m_;
  Chunk chunk_;
  int next_reg_ = 0;
  int max_reg_ = 0;
  int depth_ = 0;
  std::map<const VarDecl*, std::int32_t> caches_;
  std::vector<LoopCtx> loops_;
  std::map<std::pair<int, std::uint64_t>, std::int32_t> const_ids_;
  std::map<std::string, std::int32_t> message_ids_;
  std::uint64_t fallback_sites_ = 0;
};

}  // namespace

Module compile(const TranslationUnit& tu) {
  static obs::Counter& modules = obs::metrics().counter(obs::kVmModules);
  static obs::Counter& chunks = obs::metrics().counter(obs::kVmChunks);
  static obs::Counter& instrs = obs::metrics().counter(obs::kVmInstructions);
  static obs::Counter& fallbacks =
      obs::metrics().counter(obs::kVmFallbackSites);
  obs::Span span(obs::kSpanVmCompile, "unit");

  Compiler c(tu);
  Module m = c.compile_all();
  modules.add();
  chunks.add(m.chunks.size());
  std::uint64_t total = 0;
  for (const auto& ch : m.chunks) total += ch.code.size();
  instrs.add(total);
  fallbacks.add(c.fallback_sites());
  return m;
}

Module compile_verified(const TranslationUnit& tu) {
  Module m = compile(tu);
  if (auto err = verify(m)) {
    throw Error("bytecode verification failed: " + err->to_string());
  }
  return m;
}

}  // namespace drbml::runtime::bc
