// AST -> bytecode compiler for the Mini-C VM backend.
#pragma once

#include "minic/ast.hpp"
#include "runtime/bc/bc.hpp"

namespace drbml::runtime::bc {

/// Compiles every executable body of `tu` into a Module. The module
/// references AST nodes of `tu`; the unit must outlive it. The result is
/// NOT yet verified -- pass it through verify() (or use compile_verified)
/// before execution.
[[nodiscard]] Module compile(const minic::TranslationUnit& tu);

/// compile() + verify(); throws support Error if verification fails
/// (which would indicate a compiler bug). The returned module has
/// `verified == true` and is ready for run_program.
[[nodiscard]] Module compile_verified(const minic::TranslationUnit& tu);

}  // namespace drbml::runtime::bc
