#include "runtime/bc/verify.hpp"

#include "obs/catalog.hpp"

namespace drbml::runtime::bc {

std::string VerifyError::to_string() const {
  return "chunk " + std::to_string(chunk) + ", pc " + std::to_string(pc) +
         ": " + message;
}

namespace {

class Checker {
 public:
  explicit Checker(const Module& m) : m_(m) {}

  std::optional<VerifyError> run() {
    for (ci_ = 0; ci_ < m_.chunks.size(); ++ci_) {
      const Chunk& ch = m_.chunks[ci_];
      if (ch.entry == nullptr) {
        return fail(ch.code.size(), "chunk has no entry statement");
      }
      if (ch.code.empty()) {
        return fail(0, "chunk has no code (missing terminator)");
      }
      for (pc_ = 0; pc_ < ch.code.size(); ++pc_) {
        if (auto err = check(ch, ch.code[pc_])) return err;
      }
      const Op last = ch.code.back().op;
      if (last != Op::Halt && last != Op::Jump && last != Op::RetValue &&
          last != Op::RetFlow && last != Op::FaultOp) {
        return fail(ch.code.size() - 1,
                    "chunk may fall through past its last instruction");
      }
    }
    for (const auto& [stmt, idx] : m_.entries) {
      if (stmt == nullptr || idx >= m_.chunks.size()) {
        return fail(0, "entry table references chunk " + std::to_string(idx) +
                           " of " + std::to_string(m_.chunks.size()));
      }
    }
    return std::nullopt;
  }

 private:
  std::optional<VerifyError> fail(std::size_t pc, std::string msg) {
    return VerifyError{ci_, pc, std::move(msg)};
  }

  // Operand helpers; each returns a defect or nullopt.
  std::optional<VerifyError> reg(const Chunk& ch, std::uint16_t r,
                                 const char* what) {
    if (r >= ch.frame_size()) {
      return fail(pc_, std::string(what) + " register " + std::to_string(r) +
                           " out of range (frame size " +
                           std::to_string(ch.frame_size()) + ")");
    }
    return std::nullopt;
  }

  std::optional<VerifyError> jump_target(const Chunk& ch, std::int32_t t) {
    if (t < 0 || static_cast<std::size_t>(t) > ch.code.size()) {
      return fail(pc_, "jump target " + std::to_string(t) +
                           " outside chunk of " +
                           std::to_string(ch.code.size()) + " instructions");
    }
    return std::nullopt;
  }

  std::optional<VerifyError> pool(std::int32_t idx, std::size_t size,
                                  const char* name) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= size) {
      return fail(pc_, std::string(name) + " index " + std::to_string(idx) +
                           " out of range (" + std::to_string(size) + ")");
    }
    return std::nullopt;
  }

  std::optional<VerifyError> site(const Chunk& ch, std::int32_t idx) {
    if (auto e = pool(idx, m_.sites.size(), "site")) return e;
    const AccessSite& s = m_.sites[static_cast<std::size_t>(idx)];
    if (s.cache != kNoCache &&
        (s.cache < 0 ||
         static_cast<std::uint32_t>(s.cache) >= ch.num_caches)) {
      return fail(pc_, "site cache slot " + std::to_string(s.cache) +
                           " out of range (" + std::to_string(ch.num_caches) +
                           " caches)");
    }
    return std::nullopt;
  }

  std::optional<VerifyError> check(const Chunk& ch, const Instr& in) {
    if (static_cast<int>(in.op) >= kOpCount) {
      return fail(pc_, "unknown opcode " +
                           std::to_string(static_cast<int>(in.op)));
    }
    switch (in.op) {
      case Op::Const:
        if (auto e = reg(ch, in.a, "dst")) return e;
        return pool(in.imm, m_.consts.size(), "const");
      case Op::StrObj:
        if (auto e = reg(ch, in.a, "dst")) return e;
        if (auto e = pool(in.imm, m_.strings.size(), "string")) return e;
        if (m_.strings[static_cast<std::size_t>(in.imm)] == nullptr) {
          return fail(pc_, "null string literal node");
        }
        return std::nullopt;
      case Op::LoadScalar:
      case Op::ArrayAddr:
      case Op::VarAddr:
        if (auto e = reg(ch, in.a, "dst")) return e;
        return site(ch, in.imm);
      case Op::LoadElem:
        if (auto e = reg(ch, in.a, "dst")) return e;
        if (auto e = reg(ch, in.b, "addr")) return e;
        return site(ch, in.imm);
      case Op::StoreElem:
        if (auto e = reg(ch, in.a, "addr")) return e;
        if (auto e = reg(ch, in.b, "src")) return e;
        return site(ch, in.imm);
      case Op::IncDec:
        if (auto e = reg(ch, in.a, "dst")) return e;
        if (auto e = reg(ch, in.b, "addr")) return e;
        return site(ch, in.imm);
      case Op::IndexAddr: {
        if (auto e = reg(ch, in.a, "dst")) return e;
        if (in.n < 1) return fail(pc_, "IndexAddr with zero indices");
        if (static_cast<std::uint32_t>(in.b) + in.n > ch.frame_size()) {
          return fail(pc_, "IndexAddr index span out of range");
        }
        if (auto e = pool(in.imm, m_.index_infos.size(), "index_info")) {
          return e;
        }
        const IndexInfo& info =
            m_.index_infos[static_cast<std::size_t>(in.imm)];
        if (info.base_is_ident) {
          if (auto e = site(ch, info.base_site)) return e;
        } else {
          if (auto e = reg(ch, in.c, "base")) return e;
        }
        if (!info.base_is_array) {
          // Pointer bases (ident or computed) fault through null_msg.
          if (auto e = pool(info.null_msg, m_.messages.size(), "message")) {
            return e;
          }
        }
        return std::nullopt;
      }
      case Op::CheckPtr:
        if (auto e = reg(ch, in.a, "ptr")) return e;
        return pool(in.imm, m_.messages.size(), "message");
      case Op::BinOp:
      case Op::ApplyBin:
        if (auto e = reg(ch, in.a, "dst")) return e;
        if (auto e = reg(ch, in.b, "lhs")) return e;
        if (auto e = reg(ch, in.c, "rhs")) return e;
        if (in.n > static_cast<std::uint16_t>(minic::BinaryOp::Comma)) {
          return fail(pc_, "binary operator selector out of range");
        }
        return std::nullopt;
      case Op::Neg:
      case Op::NotOp:
      case Op::BitNotOp:
      case Op::ToBool:
      case Op::CastDbl:
      case Op::CastInt:
        if (auto e = reg(ch, in.a, "dst")) return e;
        return reg(ch, in.b, "src");
      case Op::Jump:
        return jump_target(ch, in.imm);
      case Op::JumpIfFalse:
      case Op::JumpIfTrue:
        if (auto e = reg(ch, in.a, "cond")) return e;
        return jump_target(ch, in.imm);
      case Op::PushFrame:
        return std::nullopt;
      case Op::PopFrame:
        if (in.n == 0) return fail(pc_, "PopFrame of zero frames");
        return std::nullopt;
      case Op::DeclVar:
        if (auto e = pool(in.imm, m_.decls.size(), "decl")) return e;
        if (m_.decls[static_cast<std::size_t>(in.imm)] == nullptr) {
          return fail(pc_, "null declaration node");
        }
        return cache_operand(ch, in.b);
      case Op::DeclScalar:
        if (auto e = reg(ch, in.a, "dst")) return e;
        if (auto e = pool(in.imm, m_.decls.size(), "decl")) return e;
        if (m_.decls[static_cast<std::size_t>(in.imm)] == nullptr) {
          return fail(pc_, "null declaration node");
        }
        return cache_operand(ch, in.b);
      case Op::StoreDeclInit:
        if (auto e = reg(ch, in.a, "addr")) return e;
        return reg(ch, in.b, "src");
      case Op::CallUser: {
        if (auto e = reg(ch, in.a, "dst")) return e;
        if (auto e = pool(in.imm, m_.call_infos.size(), "call_info")) {
          return e;
        }
        const CallInfo& info =
            m_.call_infos[static_cast<std::size_t>(in.imm)];
        if (info.fn == nullptr || info.fn->body == nullptr) {
          return fail(pc_, "call to function without a body");
        }
        if (info.fn->params.size() != info.argc) {
          return fail(pc_, "call argument count does not match callee");
        }
        if (static_cast<std::uint32_t>(info.arg_base) + info.argc >
            ch.frame_size()) {
          return fail(pc_, "call argument span out of range");
        }
        return std::nullopt;
      }
      case Op::EvalExpr:
        if (auto e = reg(ch, in.a, "dst")) return e;
        if (auto e = pool(in.imm, m_.exprs.size(), "expr")) return e;
        if (m_.exprs[static_cast<std::size_t>(in.imm)] == nullptr) {
          return fail(pc_, "null expression node");
        }
        return std::nullopt;
      case Op::ExecStmt: {
        if (auto e = pool(in.imm, m_.flow_infos.size(), "flow_info")) {
          return e;
        }
        const FlowInfo& info =
            m_.flow_infos[static_cast<std::size_t>(in.imm)];
        if (info.node == nullptr) return fail(pc_, "null statement node");
        if (info.brk != -1) {
          if (auto e = jump_target(ch, info.brk)) return e;
        }
        if (info.cont != -1) {
          if (auto e = jump_target(ch, info.cont)) return e;
        }
        return std::nullopt;
      }
      case Op::RetValue:
        return reg(ch, in.a, "value");
      case Op::RetFlow:
        if (in.n != kFlowBreak && in.n != kFlowContinue) {
          return fail(pc_, "RetFlow with unknown flow selector");
        }
        return std::nullopt;
      case Op::FaultOp:
        return pool(in.imm, m_.messages.size(), "message");
      case Op::Halt:
        return std::nullopt;
    }
    return fail(pc_, "unhandled opcode in verifier");
  }

  std::optional<VerifyError> cache_operand(const Chunk& ch,
                                           std::uint16_t slot) {
    // Decl cache operands use u16; the compiler always assigns one.
    if (static_cast<std::uint32_t>(slot) >= ch.num_caches) {
      return fail(pc_, "decl cache slot " + std::to_string(slot) +
                           " out of range (" + std::to_string(ch.num_caches) +
                           " caches)");
    }
    return std::nullopt;
  }

  const Module& m_;
  std::size_t ci_ = 0;
  std::size_t pc_ = 0;
};

}  // namespace

std::optional<VerifyError> verify(Module& m) {
  Checker checker(m);
  auto err = checker.run();
  if (err) {
    static obs::Counter& failures =
        obs::metrics().counter(obs::kVmVerifyFailures);
    failures.add();
    m.verified = false;
    return err;
  }
  m.verified = true;
  return std::nullopt;
}

}  // namespace drbml::runtime::bc
