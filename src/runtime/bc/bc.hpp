// Compact typed register bytecode for Mini-C (the "compile once, execute
// thousands of schedules" representation).
//
// A Module is compiled from a resolved TranslationUnit once and then shared
// (read-only) by every run of that unit: the dynamic detector's replay
// loop, the schedule explorer's PCT sweep, and the repair verify loop all
// execute the same chunks under different schedules. One Chunk is the code
// of one structured body the interpreter enters through a boundary the
// scheduler knows about: a function body, an OpenMP construct body, a
// worksharing loop's innermost body, or a sections child.
//
// The instruction set mirrors the AST walker's observable behaviour
// exactly -- every instrumented memory access carries a pre-rendered
// source spelling (AccessSite) so the emitted race reports, schedule
// decision traces, and coverage signatures are bit-identical to the
// interp backend. Constructs the compiler does not lower (OpenMP
// directives, builtin calls, brace initializers) fall back to the AST
// walker via EvalExpr / ExecStmt / DeclVar, which makes the lowering safe
// by construction: the fallback *is* the reference semantics.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "minic/ast.hpp"
#include "runtime/value.hpp"

namespace drbml::runtime::bc {

enum class Op : std::uint8_t {
  Const,         // regs[a] = consts[imm]
  StrObj,        // regs[a] = pointer to the cached string object strings[imm]
  LoadScalar,    // site=sites[imm]: slot lookup, read event, regs[a] = load
  ArrayAddr,     // site=sites[imm]: regs[a] = &slot (array decay, no event)
  VarAddr,       // site=sites[imm]: regs[a] = &slot (ident lvalue, no event)
  LoadElem,      // site=sites[imm]: read event on regs[b], regs[a] = load
  StoreElem,     // site=sites[imm]: write event on regs[a], store regs[b]
  IncDec,        // site=sites[imm]: ++/-- through regs[b]; n = flag bits
  IndexAddr,     // info=index_infos[imm]: regs[a] = &base[regs[b..b+n-1]]
  CheckPtr,      // fault messages[imm] unless regs[a] is a valid pointer
  BinOp,         // regs[a] = regs[b] <BinaryOp(n)> regs[c]
  ApplyBin,      // regs[a] = compound-assign combine of regs[b], regs[c]
  Neg,           // regs[a] = -regs[b]
  NotOp,         // regs[a] = !regs[b]
  BitNotOp,      // regs[a] = ~regs[b]
  ToBool,        // regs[a] = regs[b] ? 1 : 0
  CastDbl,       // regs[a] = (double)regs[b]
  CastInt,       // regs[a] = (int)regs[b]
  Jump,          // pc = imm
  JumpIfFalse,   // if (!regs[a]) pc = imm
  JumpIfTrue,    // if (regs[a]) pc = imm
  PushFrame,     // push an (empty) binding frame
  PopFrame,      // pop n frames (invalidates caches if any was non-empty)
  DeclVar,       // declare decls[imm] via the AST walker (arrays, init lists)
  DeclScalar,    // fast-path scalar declare of decls[imm]; regs[a] = &slot
  StoreDeclInit, // store regs[b] through regs[a] (initializer, no event)
  CallUser,      // info=call_infos[imm]: regs[a] = user function call
  EvalExpr,      // regs[a] = AST-walk exprs[imm] (fallback)
  ExecStmt,      // AST-walk flow_infos[imm].node; route Break/Continue
  RetValue,      // throw ReturnSignal{regs[a]}
  RetFlow,       // return Flow (n: kFlowBreak / kFlowContinue)
  FaultOp,       // throw RuntimeFault(messages[imm])
  Halt,          // return Flow::Normal
};

inline constexpr int kOpCount = static_cast<int>(Op::Halt) + 1;

// IncDec flag bits (Instr::n).
inline constexpr std::uint16_t kIncDecPre = 1;  // pre-form: result is `next`
inline constexpr std::uint16_t kIncDecNeg = 2;  // decrement

// RetFlow selectors (Instr::n).
inline constexpr std::uint16_t kFlowBreak = 1;
inline constexpr std::uint16_t kFlowContinue = 2;

/// "No cache register" sentinel for Instr::b on DeclVar/DeclScalar and for
/// AccessSite::cache.
inline constexpr std::int32_t kNoCache = -1;

struct Instr {
  Op op = Op::Halt;
  std::uint16_t n = 0;           // small operand: op selector / flags / count
  std::uint16_t a = 0;           // register operands
  std::uint16_t b = 0;
  std::uint16_t c = 0;
  std::int32_t imm = -1;         // jump target or pool index
};

/// One instrumented access site: everything on_read_at/on_write_at needs,
/// rendered at compile time so the hot path does no string building.
struct AccessSite {
  const minic::VarDecl* decl = nullptr;  // for variable ops; null for elems
  std::string text;                      // source spelling of the access
  minic::SourceLoc loc;                  // innermost-base coordinate
  std::int32_t cache = kNoCache;         // chunk cache slot for the lookup
};

/// Base resolution for an IndexAddr (subscript chain) instruction.
struct IndexInfo {
  const minic::Subscript* node = nullptr;  // outermost subscript (debug)
  bool base_is_ident = false;
  bool base_is_array = false;
  std::int32_t base_site = -1;  // sites[]: decl+cache (+read event when ptr)
  std::int32_t null_msg = -1;   // messages[]: null-base fault text
};

/// A compiled user-function call: arguments live in a consecutive register
/// span evaluated left-to-right before the frame swap.
struct CallInfo {
  const minic::FunctionDecl* fn = nullptr;
  const minic::Call* node = nullptr;
  std::uint16_t arg_base = 0;
  std::uint16_t argc = 0;
};

/// Flow routing for an ExecStmt (AST statement fallback): where a Break or
/// Continue escaping the statement lands in this chunk, and how many
/// compiled frames must be popped on the way (mirroring the AST walker's
/// frame unwinding through enclosing compounds).
struct FlowInfo {
  const minic::Stmt* node = nullptr;
  std::int32_t brk = -1;        // -1: propagate the flow out of the chunk
  std::int32_t cont = -1;
  std::uint16_t brk_pops = 0;   // frames to pop before jumping to `brk`
  std::uint16_t cont_pops = 0;
  std::uint16_t exit_pops = 0;  // frames to pop when propagating out
};

struct Chunk {
  const minic::Stmt* entry = nullptr;
  std::string label;             // e.g. "fn main", for verifier diagnostics
  std::vector<Instr> code;
  std::uint32_t num_regs = 0;    // data registers
  std::uint32_t num_caches = 0;  // trailing variable-lookup cache registers

  [[nodiscard]] std::uint32_t frame_size() const noexcept {
    return num_regs + num_caches;
  }
};

/// A compiled translation unit. Pools are shared across chunks; all node
/// pointers reference the TranslationUnit the module was compiled from,
/// which must outlive the module.
struct Module {
  std::vector<Chunk> chunks;
  std::unordered_map<const minic::Stmt*, std::uint32_t> entries;  // body -> chunk
  std::vector<Value> consts;
  std::vector<AccessSite> sites;
  std::vector<IndexInfo> index_infos;
  std::vector<CallInfo> call_infos;
  std::vector<FlowInfo> flow_infos;
  std::vector<const minic::Expr*> exprs;        // EvalExpr fallback nodes
  std::vector<const minic::StringLit*> strings;
  std::vector<const minic::VarDecl*> decls;     // DeclVar / DeclScalar
  std::vector<std::string> messages;            // fault texts
  /// Largest chunk frame (registers + caches); sizes the per-thread
  /// register arena so fresh contexts do not pay for a worst-case arena.
  std::uint32_t max_frame = 0;
  /// Set by verify() after all structural checks pass. run_program refuses
  /// to execute a module whose verified flag is unset.
  bool verified = false;

  [[nodiscard]] const Chunk* find(const minic::Stmt* s) const {
    auto it = entries.find(s);
    return it == entries.end() ? nullptr : &chunks[it->second];
  }
};

}  // namespace drbml::runtime::bc
