// Structural bytecode verifier: no module executes unless it passes.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "runtime/bc/bc.hpp"

namespace drbml::runtime::bc {

/// A structural defect found in a Module. `chunk`/`pc` point at the
/// offending instruction (pc == size for chunk-level defects).
struct VerifyError {
  std::size_t chunk = 0;
  std::size_t pc = 0;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Checks every chunk of `m` for structural soundness: known opcodes,
/// in-range register operands and jump targets, valid pool references,
/// and no fall-through off the end of a chunk. On success sets
/// `m.verified = true` and returns nullopt; otherwise returns the first
/// defect found and leaves the module unverified (run_program refuses to
/// execute it).
std::optional<VerifyError> verify(Module& m);

}  // namespace drbml::runtime::bc
