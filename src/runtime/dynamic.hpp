// Dynamic race detector facade (the repository's Intel-Inspector stand-in).
//
// Runs the program under the interpreter's vector-clock detector across
// one or more seeded schedules and unions the reports. Like any dynamic
// tool it only sees races that manifest on executed paths: races guarded
// by unexercised inputs are missed (false negatives); it reports no false
// positives on data it actually observed.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/report.hpp"
#include "runtime/interp.hpp"

namespace drbml::runtime {

struct DynamicDetectorOptions {
  RunOptions run;
  /// Seeds for independent schedule replays; reports are unioned.
  std::vector<std::uint64_t> schedule_seeds = {1, 2, 3};
};

class DynamicRaceDetector {
 public:
  explicit DynamicRaceDetector(DynamicDetectorOptions opts = {})
      : opts_(std::move(opts)) {}

  /// Parses, resolves, and executes the source under each schedule seed.
  [[nodiscard]] analysis::RaceReport analyze_source(
      std::string_view source) const;

  /// Runs one schedule and returns the full execution result.
  [[nodiscard]] RunResult run_once(std::string_view source,
                                   std::uint64_t seed) const;

  [[nodiscard]] const DynamicDetectorOptions& options() const noexcept {
    return opts_;
  }

 private:
  DynamicDetectorOptions opts_;
};

}  // namespace drbml::runtime
