// Vector clocks for happens-before race detection.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace drbml::runtime {

/// A vector clock over logical thread ids. Grows on demand; missing
/// entries read as zero.
class VectorClock {
 public:
  [[nodiscard]] std::uint32_t get(int tid) const noexcept {
    return tid >= 0 && static_cast<std::size_t>(tid) < c_.size()
               ? c_[static_cast<std::size_t>(tid)]
               : 0;
  }

  void set(int tid, std::uint32_t v) {
    ensure(tid);
    c_[static_cast<std::size_t>(tid)] = v;
  }

  void tick(int tid) {
    ensure(tid);
    ++c_[static_cast<std::size_t>(tid)];
  }

  /// Pointwise maximum (join).
  void join(const VectorClock& o) {
    if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0);
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      c_[i] = std::max(c_[i], o.c_[i]);
    }
  }

  /// True if this clock happens-before-or-equals `o` (pointwise <=).
  [[nodiscard]] bool leq(const VectorClock& o) const noexcept {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > o.get(static_cast<int>(i))) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return c_.size(); }

 private:
  void ensure(int tid) {
    if (tid >= 0 && static_cast<std::size_t>(tid) >= c_.size()) {
      c_.resize(static_cast<std::size_t>(tid) + 1, 0);
    }
  }

  std::vector<std::uint32_t> c_;
};

/// An epoch: one thread's scalar clock value (FastTrack's compact form for
/// the common last-write case).
struct Epoch {
  int tid = -1;
  std::uint32_t clock = 0;

  [[nodiscard]] bool valid() const noexcept { return tid >= 0; }
  /// True if the epoch happens-before the clock `c`.
  [[nodiscard]] bool before(const VectorClock& c) const noexcept {
    return !valid() || clock <= c.get(tid);
  }
};

}  // namespace drbml::runtime
