// Vector clocks for happens-before race detection.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace drbml::runtime {

/// A vector clock over logical thread ids. Grows on demand; missing
/// entries read as zero.
class VectorClock {
 public:
  [[nodiscard]] std::uint32_t get(int tid) const noexcept {
    return tid >= 0 && static_cast<std::size_t>(tid) < c_.size()
               ? c_[static_cast<std::size_t>(tid)]
               : 0;
  }

  void set(int tid, std::uint32_t v) {
    ensure(tid);
    c_[static_cast<std::size_t>(tid)] = v;
  }

  void tick(int tid) {
    ensure(tid);
    ++c_[static_cast<std::size_t>(tid)];
  }

  /// Pointwise maximum (join).
  void join(const VectorClock& o) {
    if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0);
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      c_[i] = std::max(c_[i], o.c_[i]);
    }
  }

  /// True if this clock happens-before-or-equals `o` (pointwise <=).
  [[nodiscard]] bool leq(const VectorClock& o) const noexcept {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > o.get(static_cast<int>(i))) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return c_.size(); }

 private:
  void ensure(int tid) {
    if (tid >= 0 && static_cast<std::size_t>(tid) >= c_.size()) {
      c_.resize(static_cast<std::size_t>(tid) + 1, 0);
    }
  }

  std::vector<std::uint32_t> c_;
};

/// An epoch: one thread's scalar clock value (FastTrack's compact form for
/// the common last-write case).
struct Epoch {
  int tid = -1;
  std::uint32_t clock = 0;

  [[nodiscard]] bool valid() const noexcept { return tid >= 0; }
  /// True if the epoch happens-before the clock `c`.
  [[nodiscard]] bool before(const VectorClock& c) const noexcept {
    return !valid() || clock <= c.get(tid);
  }
};

/// FastTrack-style adaptive read clock: a scalar Epoch while only one
/// thread has read the element since the last write, promoted to a full
/// VectorClock on the first read by a second thread.
///
/// Promotion never changes a happens-before answer: while a single thread
/// `t` is reading, the full-VC state would be exactly {t: last read clock}
/// (a thread's own clock is monotonic, so the latest read dominates), and
/// that is what the epoch stores — promotion rebuilds precisely that
/// vector before adding the second reader.
class AdaptiveReadClock {
 public:
  /// Record a read by `tid` at clock `now`.
  void record(int tid, std::uint32_t now) {
    if (!shared_) {
      if (!epoch_.valid() || epoch_.tid == tid) {
        epoch_ = Epoch{tid, now};
        return;
      }
      // Second distinct reader: promote the epoch into a vector.
      vc_.set(epoch_.tid, epoch_.clock);
      shared_ = true;
    }
    vc_.set(tid, now);
  }

  /// True if every recorded read happens-before-or-equals clock `c`.
  [[nodiscard]] bool leq(const VectorClock& c) const noexcept {
    if (shared_) return vc_.leq(c);
    return !epoch_.valid() || epoch_.clock <= c.get(epoch_.tid);
  }

  [[nodiscard]] std::uint32_t get(int tid) const noexcept {
    if (shared_) return vc_.get(tid);
    return epoch_.valid() && epoch_.tid == tid ? epoch_.clock : 0;
  }

  /// Forget all reads (a write resets the read set).
  void clear() {
    epoch_ = Epoch{};
    vc_ = VectorClock{};
    shared_ = false;
  }

  [[nodiscard]] bool shared() const noexcept { return shared_; }
  [[nodiscard]] const Epoch& epoch() const noexcept { return epoch_; }

 private:
  Epoch epoch_;
  VectorClock vc_;
  bool shared_ = false;
};

}  // namespace drbml::runtime
