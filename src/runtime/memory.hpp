// Interpreter memory: objects, elements, and per-element shadow state for
// happens-before race detection.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minic/ast.hpp"
#include "runtime/value.hpp"
#include "runtime/vc.hpp"
#include "support/error.hpp"

namespace drbml::runtime {

/// Provenance of the last accesses to one element, for race reporting.
struct AccessStamp {
  std::string text;  // source spelling of the access expression
  minic::SourceLoc loc;
  int tid = -1;

  [[nodiscard]] bool valid() const noexcept { return tid >= 0; }
};

/// Shadow state of one memory element (FastTrack-style).
struct ShadowCell {
  Epoch write;
  AdaptiveReadClock reads;
  AccessStamp last_write;
  /// Provenance of the epoch-mode (single) reader; once `reads` promotes,
  /// per-tid provenance moves to `last_reads`.
  AccessStamp read_stamp;
  std::map<int, AccessStamp> last_reads;  // per tid (shared mode)
};

/// One allocated object: a scalar (size 1) or a flattened array.
struct MemObject {
  std::string name;
  const minic::VarDecl* decl = nullptr;  // null for heap allocations
  std::vector<Value> data;
  std::vector<ShadowCell> shadow;
  std::vector<std::int64_t> dims;  // row-major dimensions (empty = scalar)
  bool elem_float = false;         // elements coerce to double on store
  bool elem_any = false;           // heap: no coercion on store
  bool freed = false;
  /// Objects private to one thread are exempt from race checking.
  bool thread_local_object = false;

  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(data.size());
  }
};

/// The interpreter heap/stack store.
class Memory {
 public:
  /// Allocates an object with `count` elements, all initialized to `init`.
  int allocate(std::string name, const minic::VarDecl* decl,
               std::vector<std::int64_t> dims, std::int64_t count,
               Value init, bool thread_local_object);

  [[nodiscard]] MemObject& object(int id);
  [[nodiscard]] const MemObject& object(int id) const;

  [[nodiscard]] Value load(ObjRef ref) const;
  void store(ObjRef ref, Value v);

  /// Throws RuntimeFault on freed objects or out-of-range offsets.
  void check_bounds(ObjRef ref) const { check(ref); }

  [[nodiscard]] std::size_t object_count() const noexcept {
    return objects_.size();
  }

 private:
  void check(ObjRef ref) const;

  std::vector<MemObject> objects_;
};

}  // namespace drbml::runtime
