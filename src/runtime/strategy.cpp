#include "runtime/strategy.hpp"

#include <algorithm>

namespace drbml::runtime {

PctDecider::PctDecider(std::uint64_t seed, int depth,
                       std::uint64_t expected_steps)
    : rng_(seed),
      depth_(depth < 1 ? 1 : depth),
      expected_steps_(expected_steps < 1 ? 1 : expected_steps) {}

void PctDecider::begin(int workers) {
  // Distinct base priorities d .. d+n-1, randomly permuted. Change-point
  // demotions use values below d, so a demoted worker ranks under every
  // base priority.
  priorities_.resize(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    priorities_[static_cast<std::size_t>(i)] = depth_ + i;
  }
  rng_.shuffle(priorities_);
  change_points_.clear();
  for (int i = 0; i + 1 < depth_; ++i) {
    change_points_.push_back(
        static_cast<std::uint64_t>(rng_.below(expected_steps_)) + 1);
  }
  std::sort(change_points_.begin(), change_points_.end());
  fired_ = 0;
}

bool PctDecider::should_preempt(std::uint64_t step, int current,
                                const std::vector<int>& ready_peers) {
  bool demoted = false;
  while (fired_ < change_points_.size() && change_points_[fired_] <= step) {
    // Demote the running worker below every base priority; each firing
    // uses a fresh, strictly smaller value so priorities stay distinct.
    priorities_[static_cast<std::size_t>(current)] =
        -1 - static_cast<int>(fired_);
    ++fired_;
    demoted = true;
  }
  if (ready_peers.empty()) return false;
  int best = priorities_[static_cast<std::size_t>(ready_peers.front())];
  for (int w : ready_peers) {
    best = std::max(best, priorities_[static_cast<std::size_t>(w)]);
  }
  return demoted || best > priorities_[static_cast<std::size_t>(current)];
}

int PctDecider::pick(const std::vector<int>& ready, int current,
                     std::uint64_t step, bool forced) {
  (void)current;
  (void)step;
  (void)forced;
  int chosen = ready.front();
  for (int w : ready) {
    if (priorities_[static_cast<std::size_t>(w)] >
        priorities_[static_cast<std::size_t>(chosen)]) {
      chosen = w;
    }
  }
  return chosen;
}

void ReplayDecider::begin(int workers) {
  (void)workers;
  pos_ = 0;
}

void ReplayDecider::skip_stale(std::uint64_t step) {
  while (pos_ < trace_.size() && trace_[pos_].step < step) ++pos_;
}

bool ReplayDecider::should_preempt(std::uint64_t step, int current,
                                   const std::vector<int>& ready_peers) {
  (void)current;
  (void)ready_peers;
  skip_stale(step);
  return pos_ < trace_.size() && !trace_[pos_].forced &&
         trace_[pos_].step == step;
}

int ReplayDecider::pick(const std::vector<int>& ready, int current,
                        std::uint64_t step, bool forced) {
  (void)current;
  skip_stale(step);
  // Deterministic fallback when the trace has no instruction here: the
  // lowest-index runnable worker. Minimized traces rely on this being a
  // total function of (program, remaining trace).
  const int fallback = ready.front();
  if (pos_ < trace_.size() && trace_[pos_].step == step &&
      trace_[pos_].forced == forced) {
    const int target = trace_[pos_].target;
    ++pos_;
    if (std::find(ready.begin(), ready.end(), target) != ready.end()) {
      return target;
    }
    return fallback;
  }
  return fallback;
}

}  // namespace drbml::runtime
