// Scheduling strategies pluggable into CoopScheduler.
//
// PctDecider implements the PCT algorithm (Burckhardt et al., "A
// Randomized Scheduler with Probabilistic Guarantees of Finding Bugs",
// ASPLOS 2010): every worker gets a distinct random priority, the highest
// -priority runnable worker always runs, and d-1 priority-change points
// sampled over the expected step count demote whoever is running when
// they fire. A bug of depth d is found with probability at least
// 1/(n * k^(d-1)) per schedule, independent of how unlikely the ordering
// is under uniform random scheduling.
//
// ReplayDecider re-executes a recorded RegionTrace. A full trace replays
// the original schedule bit-identically; an arbitrary subsequence (as
// produced by the witness minimizer) still yields a well-defined
// deterministic schedule, with a lowest-index fallback wherever the trace
// has no instruction.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/sched.hpp"
#include "support/rng.hpp"

namespace drbml::runtime {

class PctDecider : public SchedDecider {
 public:
  /// `depth`: PCT bug depth d (d-1 change points per region).
  /// `expected_steps`: estimate k of the region's step count; change
  /// points are sampled uniformly from [1, k].
  PctDecider(std::uint64_t seed, int depth, std::uint64_t expected_steps);

  void begin(int workers) override;
  bool should_preempt(std::uint64_t step, int current,
                      const std::vector<int>& ready_peers) override;
  int pick(const std::vector<int>& ready, int current, std::uint64_t step,
           bool forced) override;
  [[nodiscard]] bool filter_spinners() const override { return true; }

  /// Current priority of a worker (tests/debugging).
  [[nodiscard]] int priority(int worker) const {
    return priorities_[static_cast<std::size_t>(worker)];
  }

 private:
  Rng rng_;
  int depth_;
  std::uint64_t expected_steps_;
  std::vector<int> priorities_;
  std::vector<std::uint64_t> change_points_;  // ascending
  std::size_t fired_ = 0;
};

class ReplayDecider : public SchedDecider {
 public:
  explicit ReplayDecider(RegionTrace trace) : trace_(std::move(trace)) {}

  void begin(int workers) override;
  bool should_preempt(std::uint64_t step, int current,
                      const std::vector<int>& ready_peers) override;
  int pick(const std::vector<int>& ready, int current, std::uint64_t step,
           bool forced) override;

  /// Entries consumed so far (tests/debugging).
  [[nodiscard]] std::size_t consumed() const { return pos_; }

 private:
  /// Drops entries that can no longer fire (their step is in the past).
  void skip_stale(std::uint64_t step);

  RegionTrace trace_;
  std::size_t pos_ = 0;
};

}  // namespace drbml::runtime
