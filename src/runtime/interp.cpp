#include "runtime/interp.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string_view>

#include "minic/printer.hpp"
#include "obs/catalog.hpp"
#include "runtime/bc/bc.hpp"
#include "runtime/bc/compile.hpp"
#include "runtime/memory.hpp"
#include "runtime/sched.hpp"
#include "runtime/strategy.hpp"
#include "runtime/vc.hpp"
#include "support/hash.hpp"

namespace drbml::runtime {

using namespace minic;

namespace {

/// -1: follow DRBML_BACKEND / the built-in default; otherwise a Backend.
std::atomic<int> g_backend_override{-1};

/// The VM backend multiplexes each simulated team onto the calling thread
/// (fiber substrate: ~25ns token handoffs instead of kernel condvar round
/// trips); the interp backend stays on the reference thread substrate.
/// DRBML_VM_THREADS=1 forces threads for the VM too -- an A/B switch for
/// debugging substrate-equivalence questions.
bool vm_fibers_enabled() {
  static const bool kForceThreads =
      std::getenv("DRBML_VM_THREADS") != nullptr;
  return Fiber::supported() && !kForceThreads;
}

using Frame = std::map<const VarDecl*, ObjRef>;

/// Control-flow signal from statement execution.
enum class Flow { Normal, Break, Continue, Return };

struct LockState {
  bool held = false;
  int owner = -1;
  VectorClock vc;
};

struct OrderedLoopState {
  std::int64_t next = 0;
  std::int64_t step = 1;
  bool initialized = false;
  VectorClock vc;
};

/// Shared state of one thread team.
struct TeamState {
  int size = 1;
  CoopScheduler* sched = nullptr;

  // Explicit/implicit barriers.
  VectorClock bar_acc;
  VectorClock bar_result;
  int bar_arrived = 0;

  // single construct claims: construct -> number of visits claimed.
  std::map<const void*, int> single_claimed;

  // critical sections by name; OpenMP locks by address; atomics by element.
  std::map<std::string, LockState> critical;
  std::map<std::pair<int, std::int64_t>, LockState> locks;
  std::map<std::pair<int, std::int64_t>, VectorClock> atomic_vc;
  LockState reduction_lock;

  // ordered constructs, keyed by the worksharing loop.
  std::map<const void*, OrderedLoopState> ordered;

  // tasks
  std::vector<VectorClock> finished_task_vcs;
  std::map<const VarDecl*, VectorClock> depend_out;
  std::map<const VarDecl*, VectorClock> depend_in_acc;

  // lastprivate write-back values captured by the last iteration's owner.
  std::map<const VarDecl*, Value> lastprivate;
};

/// A lastprivate binding awaiting write-back from the last iteration.
struct LastSlot {
  const VarDecl* decl = nullptr;
  ObjRef priv;
  ObjRef shared_ref;
};

/// Per-logical-thread execution context.
struct ThreadCtx {
  int tid = 0;         // logical id for vector clocks
  int team_index = 0;  // OpenMP thread number within the team
  TeamState* team = nullptr;
  VectorClock vc;
  std::vector<Frame> frames;
  std::vector<VectorClock> my_task_vcs;
  std::map<const void*, int> single_visits;
  // ordered-loop bookkeeping while running a worksharing loop.
  OrderedLoopState* ordered_state = nullptr;
  std::int64_t cur_iter = 0;
  int no_yield_depth = 0;  // inside atomic: suppress preemption
  std::vector<LastSlot> last_slots;

  // VM register arena: bump-allocated frames for nested chunk
  // invocations. Sized once and never reallocated (live RegSpans hold
  // pointers into it).
  std::vector<Value> reg_arena;
  std::size_t reg_top = 0;
};

/// Hard cap on the per-ThreadCtx register arena; frames beyond it spill
/// to the heap. The actual arena is sized per module (a multiple of its
/// largest chunk frame), because a fresh ThreadCtx exists per worker per
/// parallel region and value-initializing a worst-case arena each time
/// dominated the VM's runtime.
constexpr std::size_t kRegArenaCap = 4096;

/// RAII register frame for one chunk invocation, carved from the
/// context's arena (or heap-allocated on overflow). `arena_size` is the
/// lazily-applied first-use size of the context's arena (live RegSpans
/// hold raw pointers into it, so it never grows afterwards).
struct RegSpan {
  ThreadCtx& ctx;
  std::size_t saved_top;
  Value* regs = nullptr;
  std::vector<Value> overflow;

  RegSpan(ThreadCtx& c, std::size_t need, std::size_t arena_size)
      : ctx(c), saved_top(c.reg_top) {
    if (ctx.reg_arena.empty()) ctx.reg_arena.resize(arena_size);
    if (ctx.reg_top + need <= ctx.reg_arena.size()) {
      regs = ctx.reg_arena.data() + ctx.reg_top;
      ctx.reg_top += need;
    } else {
      overflow.resize(need);
      regs = overflow.data();
    }
  }
  RegSpan(const RegSpan&) = delete;
  RegSpan& operator=(const RegSpan&) = delete;
  ~RegSpan() { ctx.reg_top = saved_top; }
};

/// A pending reduction: combine `priv` into `shared_ref` with `op`.
struct PendingReduction {
  const VarDecl* decl = nullptr;
  std::string op;
  ObjRef priv;
  ObjRef shared_ref;
};

/// Result of applying data-sharing clauses at construct entry.
struct ClauseResult {
  std::vector<PendingReduction> reductions;
  int last_slots_pushed = 0;
};

/// Signals `exit(n)` unwinding the whole program.
struct ExitSignal {
  int code = 0;
};

struct LoopBounds {
  const VarDecl* induction = nullptr;
  std::int64_t first = 0;
  std::int64_t count = 0;  // number of iterations
  std::int64_t step = 1;
};

Value identity_for(const std::string& op, bool floating) {
  if (op == "*") return floating ? Value::of_double(1.0) : Value::of_int(1);
  if (op == "&") return Value::of_int(-1);
  if (op == "&&") return Value::of_int(1);
  if (op == "min") {
    return floating ? Value::of_double(std::numeric_limits<double>::infinity())
                    : Value::of_int(std::numeric_limits<std::int64_t>::max());
  }
  if (op == "max") {
    return floating
               ? Value::of_double(-std::numeric_limits<double>::infinity())
               : Value::of_int(std::numeric_limits<std::int64_t>::min());
  }
  // +, -, |, ^, ||
  return floating ? Value::of_double(0.0) : Value::of_int(0);
}

Value combine_for(const std::string& op, const Value& a, const Value& b,
                  bool floating) {
  auto fi = [&](double x, double y) { return Value::of_double(x); (void)y; };
  (void)fi;
  if (floating) {
    const double x = a.as_double();
    const double y = b.as_double();
    if (op == "+") return Value::of_double(x + y);
    if (op == "-") return Value::of_double(x + y);  // OpenMP `-` sums too
    if (op == "*") return Value::of_double(x * y);
    if (op == "min") return Value::of_double(std::min(x, y));
    if (op == "max") return Value::of_double(std::max(x, y));
    if (op == "&&") return Value::of_int((x != 0.0 && y != 0.0) ? 1 : 0);
    if (op == "||") return Value::of_int((x != 0.0 || y != 0.0) ? 1 : 0);
    return Value::of_double(x + y);
  }
  const std::int64_t x = a.as_int();
  const std::int64_t y = b.as_int();
  if (op == "+") return Value::of_int(x + y);
  if (op == "-") return Value::of_int(x + y);
  if (op == "*") return Value::of_int(x * y);
  if (op == "&") return Value::of_int(x & y);
  if (op == "|") return Value::of_int(x | y);
  if (op == "^") return Value::of_int(x ^ y);
  if (op == "&&") return Value::of_int((x != 0 && y != 0) ? 1 : 0);
  if (op == "||") return Value::of_int((x != 0 || y != 0) ? 1 : 0);
  if (op == "min") return Value::of_int(std::min(x, y));
  if (op == "max") return Value::of_int(std::max(x, y));
  return Value::of_int(x + y);
}

/// Collects the distinct declarations referenced by a statement subtree.
void collect_idents(const Stmt* s, std::set<const VarDecl*>& out);

void collect_idents_expr(const Expr* e, std::set<const VarDecl*>& out) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::Ident: {
      const auto* id = static_cast<const Ident*>(e);
      if (id->decl != nullptr) out.insert(id->decl);
      break;
    }
    case ExprKind::Subscript: {
      const auto* sub = static_cast<const Subscript*>(e);
      collect_idents_expr(sub->base.get(), out);
      collect_idents_expr(sub->index.get(), out);
      break;
    }
    case ExprKind::Unary:
      collect_idents_expr(static_cast<const Unary*>(e)->operand.get(), out);
      break;
    case ExprKind::Binary: {
      const auto* b = static_cast<const Binary*>(e);
      collect_idents_expr(b->lhs.get(), out);
      collect_idents_expr(b->rhs.get(), out);
      break;
    }
    case ExprKind::Assign: {
      const auto* a = static_cast<const Assign*>(e);
      collect_idents_expr(a->target.get(), out);
      collect_idents_expr(a->value.get(), out);
      break;
    }
    case ExprKind::Conditional: {
      const auto* c = static_cast<const Conditional*>(e);
      collect_idents_expr(c->cond.get(), out);
      collect_idents_expr(c->then_expr.get(), out);
      collect_idents_expr(c->else_expr.get(), out);
      break;
    }
    case ExprKind::Call: {
      const auto* c = static_cast<const Call*>(e);
      for (const auto& arg : c->args) collect_idents_expr(arg.get(), out);
      break;
    }
    case ExprKind::Cast:
      collect_idents_expr(static_cast<const Cast*>(e)->operand.get(), out);
      break;
    default:
      break;
  }
}

void collect_idents(const Stmt* s, std::set<const VarDecl*>& out) {
  if (s == nullptr) return;
  switch (s->kind) {
    case StmtKind::Decl: {
      const auto* d = static_cast<const DeclStmt*>(s);
      for (const auto& v : d->decls) {
        for (const auto& dim : v->array_dims) collect_idents_expr(dim.get(), out);
        collect_idents_expr(v->init.get(), out);
      }
      break;
    }
    case StmtKind::Expr:
      collect_idents_expr(static_cast<const ExprStmt*>(s)->expr.get(), out);
      break;
    case StmtKind::Compound:
      for (const auto& st : static_cast<const CompoundStmt*>(s)->body) {
        collect_idents(st.get(), out);
      }
      break;
    case StmtKind::If: {
      const auto* i = static_cast<const IfStmt*>(s);
      collect_idents_expr(i->cond.get(), out);
      collect_idents(i->then_branch.get(), out);
      collect_idents(i->else_branch.get(), out);
      break;
    }
    case StmtKind::For: {
      const auto* f = static_cast<const ForStmt*>(s);
      collect_idents(f->init.get(), out);
      collect_idents_expr(f->cond.get(), out);
      collect_idents_expr(f->inc.get(), out);
      collect_idents(f->body.get(), out);
      break;
    }
    case StmtKind::While: {
      const auto* w = static_cast<const WhileStmt*>(s);
      collect_idents_expr(w->cond.get(), out);
      collect_idents(w->body.get(), out);
      break;
    }
    case StmtKind::Do: {
      const auto* d = static_cast<const DoStmt*>(s);
      collect_idents(d->body.get(), out);
      collect_idents_expr(d->cond.get(), out);
      break;
    }
    case StmtKind::Return:
      collect_idents_expr(static_cast<const ReturnStmt*>(s)->value.get(), out);
      break;
    case StmtKind::Omp: {
      const auto* o = static_cast<const OmpStmt*>(s);
      for (const auto& c : o->directive.clauses) {
        collect_idents_expr(c.expr.get(), out);
      }
      collect_idents(o->body.get(), out);
      break;
    }
    default:
      break;
  }
}

/// Signals a `return` unwinding through nested calls.
struct ReturnSignal {
  Value value;
};

class Interp {
 public:
  Interp(const TranslationUnit& tu, const analysis::Resolution& res,
         const RunOptions& opts)
      : tu_(tu),
        res_(res),
        opts_(opts),
        module_(opts.backend == Backend::Vm ? opts.module : nullptr),
        reg_arena_size_(
            module_ == nullptr
                ? 0
                : std::min(kRegArenaCap,
                           std::max<std::size_t>(
                               64, 4 * static_cast<std::size_t>(
                                           module_->max_frame)))) {}

  RunResult run() {
    RunResult result;
    try {
      ThreadCtx main_ctx;
      main_ctx.tid = next_tid_++;
      main_ctx.vc.set(main_ctx.tid, 1);
      main_ctx.frames.emplace_back();

      // Globals.
      for (const auto& g : tu_.globals) {
        declare_var(main_ctx, *g);
      }

      const FunctionDecl* main_fn = tu_.find_function("main");
      if (main_fn == nullptr || !main_fn->body) {
        throw RuntimeFault("program has no main()");
      }
      // main's argc/argv (argc = 1, argv unused).
      main_ctx.frames.emplace_back();
      for (const auto& p : main_fn->params) {
        declare_param(main_ctx, *p,
                      p->type.is_pointer() ? Value::of_ptr({})
                                           : Value::of_int(1));
      }
      Value ret = Value::of_int(0);
      try {
        exec_body(main_ctx, *main_fn->body);
      } catch (ReturnSignal& sig) {
        ret = sig.value;
      } catch (const ExitSignal& sig) {
        ret = Value::of_int(sig.code);
      }
      result.exit_code = static_cast<int>(ret.as_int());
    } catch (const Error& e) {
      result.faulted = true;
      result.fault_message = e.what();
    }
    result.report = std::move(report_);
    result.report.race_detected = !result.report.pairs.empty();
    result.output = std::move(output_);
    result.steps = steps_total_;
    // Assembled on the fault path too: a step-budget abort must still
    // surface the decision prefix and the coverage observed so far.
    result.trace = std::move(trace_);
    result.coverage.assign(coverage_.begin(), coverage_.end());
    return result;
  }

 private:
  // ------------------------------------------------------------ environment

  void declare_var(ThreadCtx& ctx, const VarDecl& d) {
    std::vector<std::int64_t> dims;
    std::int64_t count = 1;
    for (const auto& dim_expr : d.array_dims) {
      if (!dim_expr) {
        throw RuntimeFault("unsized array '" + d.name + "'");
      }
      const std::int64_t n = eval(ctx, *dim_expr).as_int();
      dims.push_back(n);
      count *= n;
    }
    const bool is_float = d.type.is_floating() && !d.type.is_pointer();
    Value init = d.type.is_pointer() ? Value::of_ptr({})
                 : is_float          ? Value::of_double(0.0)
                                     : Value::of_int(0);
    const bool local_to_thread = ctx.team != nullptr;
    const int obj = mem_.allocate(d.name, &d, dims, count, init,
                                  local_to_thread);
    mem_.object(obj).elem_float = is_float;
    ctx.frames.back()[&d] = ObjRef{obj, 0};

    if (d.init) {
      if (const auto* call = expr_cast<Call>(d.init.get());
          call != nullptr && call->callee == "__init_list") {
        store_init_list(ctx, ObjRef{obj, 0}, dims, *call);
      } else {
        Value v = eval(ctx, *d.init);
        store_raw(obj, 0, v);
      }
    }
  }

  void store_init_list(ThreadCtx& ctx, ObjRef base,
                       const std::vector<std::int64_t>& dims,
                       const Call& list) {
    // Flattened row-major fill.
    std::int64_t offset = base.offset;
    std::function<void(const Call&)> fill = [&](const Call& c) {
      for (const auto& item : c.args) {
        if (const auto* nested = expr_cast<Call>(item.get());
            nested != nullptr && nested->callee == "__init_list") {
          fill(*nested);
        } else {
          store_raw(base.object, offset++, eval(ctx, *item));
        }
      }
    };
    fill(list);
    (void)dims;
  }

  void declare_param(ThreadCtx& ctx, const VarDecl& d, Value v) {
    const bool is_float = d.type.is_floating() && !d.type.is_pointer();
    const int obj = mem_.allocate(d.name, &d, {}, 1,
                                  is_float ? Value::of_double(0.0)
                                           : Value::of_int(0),
                                  true);
    mem_.object(obj).elem_float = is_float;
    store_raw(obj, 0, v);
    ctx.frames.back()[&d] = ObjRef{obj, 0};
  }

  [[nodiscard]] ObjRef lookup(const ThreadCtx& ctx, const VarDecl* d) const {
    for (auto it = ctx.frames.rbegin(); it != ctx.frames.rend(); ++it) {
      auto found = it->find(d);
      if (found != it->end()) return found->second;
    }
    throw RuntimeFault("unbound variable '" + (d ? d->name : "?") + "'");
  }

  [[nodiscard]] std::pair<const VarDecl*, ObjRef> find_by_name(
      const ThreadCtx& ctx, const std::string& name) const {
    for (auto it = ctx.frames.rbegin(); it != ctx.frames.rend(); ++it) {
      for (const auto& [decl, ref] : *it) {
        if (decl->name == name) return {decl, ref};
      }
    }
    throw RuntimeFault("clause names unknown variable '" + name + "'");
  }

  // ------------------------------------------------------------ shadow/race

  void note_step(ThreadCtx& ctx) {
    if (ctx.team != nullptr && ctx.team->sched != nullptr &&
        ctx.no_yield_depth == 0) {
      ctx.team->sched->yield_point();
    } else {
      ++serial_steps_;
      if (serial_steps_ > opts_.step_limit) {
        throw RuntimeFault("serial step limit exceeded (infinite loop?)");
      }
    }
    ++steps_total_;
  }

  /// Interleaving-coverage signature: for every shared access we hash its
  /// source site; when consecutive shared accesses come from different
  /// logical threads we record both the ordered site pair (which
  /// cross-thread orderings ran) and the switched-to site (where a
  /// context switch was observed to land). The exploration engine unions
  /// these sets across schedules to measure how much new interleaving
  /// behaviour each schedule bought.
  void note_coverage(const ThreadCtx& ctx, SourceLoc loc, bool write) {
    if (!opts_.collect_coverage || ctx.team == nullptr) return;
    const std::uint64_t site = hash_combine(
        mix64((static_cast<std::uint64_t>(loc.line) << 24) ^
              static_cast<std::uint64_t>(loc.col)),
        write ? 2u : 1u);
    if (cov_last_tid_ >= 0 && cov_last_tid_ != ctx.tid) {
      coverage_.insert(hash_combine(cov_last_site_, site));
      coverage_.insert(mix64(site ^ 0x70726565'6d707440ULL));
    }
    cov_last_tid_ = ctx.tid;
    cov_last_site_ = site;
  }

  void report_race(const AccessStamp& prev, char prev_op,
                   const std::string& cur_text, SourceLoc cur_loc,
                   char cur_op, const MemObject& obj) {
    if (static_cast<int>(report_.pairs.size()) >= opts_.max_pairs) return;
    analysis::RaceAccess a;
    a.expr_text = prev.text;
    a.var_name = obj.decl != nullptr ? obj.decl->name : obj.name;
    a.loc = prev.loc;
    a.op = prev_op;
    analysis::RaceAccess b;
    b.expr_text = cur_text;
    b.var_name = a.var_name;
    b.loc = cur_loc;
    b.op = cur_op;
    analysis::RacePair pair;
    // Writer first (DRB convention).
    if (cur_op == 'w' && prev_op != 'w') {
      pair.first = b;
      pair.second = a;
    } else {
      pair.first = a;
      pair.second = b;
    }
    pair.note = "dynamic: unordered accesses (happens-before violation)";
    report_.add_pair(std::move(pair));
  }

  /// Location of an access: the innermost base identifier (matching the
  /// static detector's and DRB's coordinate convention for `a[i+1]`).
  [[nodiscard]] static SourceLoc access_loc(const Expr& expr) {
    const Expr* cur = &expr;
    for (;;) {
      if (const auto* sub = expr_cast<Subscript>(cur)) {
        cur = sub->base.get();
        continue;
      }
      if (const auto* un = expr_cast<Unary>(cur)) {
        if (un->op == UnaryOp::Deref) {
          cur = un->operand.get();
          continue;
        }
      }
      break;
    }
    return cur->loc.valid() ? cur->loc : expr.loc;
  }

  void on_read(ThreadCtx& ctx, ObjRef ref, const Expr& expr) {
    on_read_at(ctx, ref, expr_to_string(expr), access_loc(expr));
  }

  void on_write(ThreadCtx& ctx, ObjRef ref, const Expr& expr) {
    on_write_at(ctx, ref, expr_to_string(expr), access_loc(expr));
  }

  void on_read_at(ThreadCtx& ctx, ObjRef ref, const std::string& text,
                  SourceLoc loc) {
    note_step(ctx);
    mem_.check_bounds(ref);
    MemObject& obj = mem_.object(ref.object);
    if (obj.thread_local_object) return;
    note_coverage(ctx, loc, /*write=*/false);
    ShadowCell& cell = obj.shadow[static_cast<std::size_t>(ref.offset)];
    if (!cell.write.before(ctx.vc) && cell.last_write.tid != ctx.tid) {
      report_race(cell.last_write, 'w', text, loc, 'r', obj);
    }
    // About to promote the read epoch? Move its provenance into the
    // per-tid map first so the shared-mode write check can find it.
    if (!cell.reads.shared() && cell.reads.epoch().valid() &&
        cell.reads.epoch().tid != ctx.tid) {
      cell.last_reads[cell.reads.epoch().tid] = std::move(cell.read_stamp);
    }
    cell.reads.record(ctx.tid, ctx.vc.get(ctx.tid));
    AccessStamp stamp;
    stamp.text = text;
    stamp.loc = loc;
    stamp.tid = ctx.tid;
    if (cell.reads.shared()) {
      cell.last_reads[ctx.tid] = std::move(stamp);
    } else {
      cell.read_stamp = std::move(stamp);
    }
  }

  void on_write_at(ThreadCtx& ctx, ObjRef ref, const std::string& text,
                   SourceLoc loc) {
    note_step(ctx);
    mem_.check_bounds(ref);
    MemObject& obj = mem_.object(ref.object);
    if (obj.thread_local_object) return;
    note_coverage(ctx, loc, /*write=*/true);
    ShadowCell& cell = obj.shadow[static_cast<std::size_t>(ref.offset)];
    if (!cell.write.before(ctx.vc) && cell.last_write.tid != ctx.tid) {
      report_race(cell.last_write, 'w', text, loc, 'w', obj);
    }
    if (!cell.reads.leq(ctx.vc)) {
      if (cell.reads.shared()) {
        for (const auto& [tid, stamp] : cell.last_reads) {
          if (tid == ctx.tid) continue;
          if (cell.reads.get(tid) > ctx.vc.get(tid)) {
            report_race(stamp, 'r', text, loc, 'w', obj);
          }
        }
      } else {
        // Epoch mode with an unordered read: the reader is necessarily a
        // different thread (a thread's own reads are always <= its clock).
        report_race(cell.read_stamp, 'r', text, loc, 'w', obj);
      }
    }
    cell.write = Epoch{ctx.tid, ctx.vc.get(ctx.tid)};
    AccessStamp stamp;
    stamp.text = text;
    stamp.loc = loc;
    stamp.tid = ctx.tid;
    cell.last_write = std::move(stamp);
    cell.reads.clear();
    cell.last_reads.clear();
  }

  // ------------------------------------------------------------ locks

  void acquire(ThreadCtx& ctx, LockState& lock) {
    if (ctx.team != nullptr && ctx.team->sched != nullptr) {
      ctx.team->sched->block_until([&] { return !lock.held; });
    } else if (lock.held) {
      throw RuntimeFault("self-deadlock on lock");
    }
    lock.held = true;
    lock.owner = ctx.tid;
    ctx.vc.join(lock.vc);
  }

  void release(ThreadCtx& ctx, LockState& lock) {
    lock.vc = ctx.vc;
    ctx.vc.tick(ctx.tid);
    lock.held = false;
    lock.owner = -1;
  }

  void team_barrier(ThreadCtx& ctx) {
    TeamState& team = *ctx.team;
    // Tasks complete at barriers.
    for (const auto& v : ctx.my_task_vcs) ctx.vc.join(v);
    ctx.my_task_vcs.clear();
    team.bar_acc.join(ctx.vc);
    ++team.bar_arrived;
    if (team.bar_arrived >= team.sched->live()) {
      team.bar_result = team.bar_acc;
      team.bar_acc = VectorClock{};
      team.bar_arrived = 0;
    }
    team.sched->barrier_wait();
    ctx.vc.join(team.bar_result);
    ctx.vc.tick(ctx.tid);
  }

  // ------------------------------------------------------------ expressions

  [[nodiscard]] ObjRef lvalue(ThreadCtx& ctx, const Expr& e) {
    switch (e.kind) {
      case ExprKind::Ident: {
        const auto& id = static_cast<const Ident&>(e);
        return lookup(ctx, id.decl);
      }
      case ExprKind::Subscript: {
        // Resolve the chain: base object + flattened offset.
        std::vector<std::int64_t> indices;
        const Expr* cur = &e;
        while (const auto* s = expr_cast<Subscript>(cur)) {
          indices.push_back(eval(ctx, *s->index).as_int());
          cur = s->base.get();
        }
        std::reverse(indices.begin(), indices.end());
        ObjRef base;
        if (const auto* id = expr_cast<Ident>(cur)) {
          ObjRef slot = lookup(ctx, id->decl);
          if (id->decl->is_array()) {
            base = slot;  // the array object itself
          } else {
            // Pointer variable: load its value (a pointer read).
            on_read(ctx, slot, *cur);
            base = mem_.load(slot).as_ptr();
            if (!base.valid()) {
              throw RuntimeFault("dereference of null pointer '" +
                                 id->decl->name + "'");
            }
          }
        } else {
          base = eval(ctx, *cur).as_ptr();
          if (!base.valid()) throw RuntimeFault("dereference of null pointer");
        }
        const MemObject& obj = mem_.object(base.object);
        return ObjRef{base.object,
                      subscript_offset(obj, base, indices.data(),
                                       indices.size())};
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const Unary&>(e);
        if (u.op == UnaryOp::Deref) {
          Value p = eval(ctx, *u.operand);
          ObjRef r = p.as_ptr();
          if (!r.valid()) throw RuntimeFault("dereference of null pointer");
          return r;
        }
        break;
      }
      default:
        break;
    }
    throw RuntimeFault("expression is not an lvalue: " + expr_to_string(e));
  }

  /// Flattened element offset of a subscript chain on `obj`: row-major
  /// multi-dim indexing with the interpreter's partial-index conventions.
  /// `indices` are in source order (outermost dimension first).
  [[nodiscard]] static std::int64_t subscript_offset(
      const MemObject& obj, ObjRef base, const std::int64_t* indices,
      std::size_t count) {
    std::int64_t offset = base.offset;
    if (!obj.dims.empty() && count > 1) {
      // Row-major multi-dim indexing.
      std::int64_t stride = 1;
      std::vector<std::int64_t> strides(obj.dims.size(), 1);
      for (int i = static_cast<int>(obj.dims.size()) - 1; i >= 0; --i) {
        strides[static_cast<std::size_t>(i)] = stride;
        stride *= obj.dims[static_cast<std::size_t>(i)];
      }
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t dim_index =
            obj.dims.size() >= count ? obj.dims.size() - count + i : i;
        offset += indices[i] * strides[dim_index];
      }
    } else {
      for (std::size_t i = 0; i < count; ++i) offset += indices[i];
      if (!obj.dims.empty() && count == 1 && obj.dims.size() > 1) {
        // a[i] on a 2-D array: scale by the row stride.
        std::int64_t stride = 1;
        for (std::size_t i = 1; i < obj.dims.size(); ++i) {
          stride *= obj.dims[i];
        }
        offset = base.offset + indices[0] * stride;
      }
    }
    return offset;
  }

  void store_raw(int obj, std::int64_t offset, Value v) {
    MemObject& o = mem_.object(obj);
    // Coerce to the element type (heap objects are untyped).
    if (!v.is_ptr() && !o.elem_any) {
      v = o.elem_float ? Value::of_double(v.as_double())
                       : Value::of_int(v.as_int());
    }
    mem_.store(ObjRef{obj, offset}, v);
  }

  Value load_checked(ThreadCtx& ctx, ObjRef ref, const Expr& e) {
    on_read(ctx, ref, e);
    return mem_.load(ref);
  }

  void store_checked(ThreadCtx& ctx, ObjRef ref, Value v, const Expr& e) {
    on_write(ctx, ref, e);
    store_raw(ref.object, ref.offset, v);
  }

  Value eval(ThreadCtx& ctx, const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        return Value::of_int(static_cast<const IntLit&>(e).value);
      case ExprKind::FloatLit:
        return Value::of_double(static_cast<const FloatLit&>(e).value);
      case ExprKind::CharLit:
        return Value::of_int(static_cast<const CharLit&>(e).value);
      case ExprKind::StringLit:
        return Value::of_ptr(string_object(static_cast<const StringLit&>(e)));
      case ExprKind::Ident: {
        const auto& id = static_cast<const Ident&>(e);
        if (id.decl == nullptr) {
          throw RuntimeFault("use of unknown identifier '" + id.name + "'");
        }
        ObjRef slot = lookup(ctx, id.decl);
        if (id.decl->is_array()) {
          return Value::of_ptr(slot);  // arrays decay to pointers
        }
        return load_checked(ctx, slot, e);
      }
      case ExprKind::Subscript: {
        ObjRef ref = lvalue(ctx, e);
        return load_checked(ctx, ref, e);
      }
      case ExprKind::Unary:
        return eval_unary(ctx, static_cast<const Unary&>(e));
      case ExprKind::Binary:
        return eval_binary(ctx, static_cast<const Binary&>(e));
      case ExprKind::Assign:
        return eval_assign(ctx, static_cast<const Assign&>(e));
      case ExprKind::Conditional: {
        const auto& c = static_cast<const Conditional&>(e);
        return eval(ctx, *c.cond).truthy() ? eval(ctx, *c.then_expr)
                                           : eval(ctx, *c.else_expr);
      }
      case ExprKind::Call:
        return eval_call(ctx, static_cast<const Call&>(e));
      case ExprKind::Cast: {
        const auto& c = static_cast<const Cast&>(e);
        Value v = eval(ctx, *c.operand);
        if (c.type.is_pointer()) return v;
        if (c.type.is_floating()) return Value::of_double(v.as_double());
        return Value::of_int(v.as_int());
      }
    }
    throw RuntimeFault("unsupported expression");
  }

  Value eval_unary(ThreadCtx& ctx, const Unary& u) {
    switch (u.op) {
      case UnaryOp::Plus: return eval(ctx, *u.operand);
      case UnaryOp::Neg: {
        Value v = eval(ctx, *u.operand);
        return v.kind() == Value::Kind::Double
                   ? Value::of_double(-v.as_double())
                   : Value::of_int(-v.as_int());
      }
      case UnaryOp::Not:
        return Value::of_int(eval(ctx, *u.operand).truthy() ? 0 : 1);
      case UnaryOp::BitNot:
        return Value::of_int(~eval(ctx, *u.operand).as_int());
      case UnaryOp::AddrOf: {
        ObjRef r = lvalue(ctx, *u.operand);
        return Value::of_ptr(r);
      }
      case UnaryOp::Deref: {
        ObjRef r = lvalue(ctx, u);
        return load_checked(ctx, r, u);
      }
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec: {
        ObjRef r = lvalue(ctx, *u.operand);
        Value old = load_checked(ctx, r, *u.operand);
        const std::int64_t delta =
            (u.op == UnaryOp::PreInc || u.op == UnaryOp::PostInc) ? 1 : -1;
        Value next = old.kind() == Value::Kind::Double
                         ? Value::of_double(old.as_double() + delta)
                         : old.is_ptr()
                               ? Value::of_ptr(
                                     {old.as_ptr().object,
                                      old.as_ptr().offset + delta})
                               : Value::of_int(old.as_int() + delta);
        store_checked(ctx, r, next, *u.operand);
        const bool pre =
            u.op == UnaryOp::PreInc || u.op == UnaryOp::PreDec;
        return pre ? next : old;
      }
    }
    throw RuntimeFault("unsupported unary operator");
  }

  Value eval_binary(ThreadCtx& ctx, const Binary& b) {
    if (b.op == BinaryOp::LogicalAnd) {
      if (!eval(ctx, *b.lhs).truthy()) return Value::of_int(0);
      return Value::of_int(eval(ctx, *b.rhs).truthy() ? 1 : 0);
    }
    if (b.op == BinaryOp::LogicalOr) {
      if (eval(ctx, *b.lhs).truthy()) return Value::of_int(1);
      return Value::of_int(eval(ctx, *b.rhs).truthy() ? 1 : 0);
    }
    if (b.op == BinaryOp::Comma) {
      eval(ctx, *b.lhs);
      return eval(ctx, *b.rhs);
    }
    Value l = eval(ctx, *b.lhs);
    Value r = eval(ctx, *b.rhs);
    return eval_binop_values(l, r, b.op);
  }

  /// Strict (non-short-circuit) binary operator on already-evaluated
  /// operands; shared by the AST walker and the VM's BinOp handler.
  static Value eval_binop_values(Value l, Value r, BinaryOp op) {
    // Pointer arithmetic.
    if (l.is_ptr() || r.is_ptr()) {
      if (op == BinaryOp::Add) {
        ObjRef p = l.is_ptr() ? l.as_ptr() : r.as_ptr();
        const std::int64_t k = l.is_ptr() ? r.as_int() : l.as_int();
        return Value::of_ptr({p.object, p.offset + k});
      }
      if (op == BinaryOp::Sub && l.is_ptr() && !r.is_ptr()) {
        ObjRef p = l.as_ptr();
        return Value::of_ptr({p.object, p.offset - r.as_int()});
      }
      if (op == BinaryOp::Sub && l.is_ptr() && r.is_ptr()) {
        return Value::of_int(l.as_ptr().offset - r.as_ptr().offset);
      }
      if (op == BinaryOp::Eq) {
        return Value::of_int(l.as_ptr() == r.as_ptr() ? 1 : 0);
      }
      if (op == BinaryOp::Ne) {
        return Value::of_int(l.as_ptr() == r.as_ptr() ? 0 : 1);
      }
    }

    const bool fl = l.kind() == Value::Kind::Double ||
                    r.kind() == Value::Kind::Double;
    if (fl) {
      const double x = l.as_double();
      const double y = r.as_double();
      switch (op) {
        case BinaryOp::Add: return Value::of_double(x + y);
        case BinaryOp::Sub: return Value::of_double(x - y);
        case BinaryOp::Mul: return Value::of_double(x * y);
        case BinaryOp::Div: return Value::of_double(x / y);
        case BinaryOp::Lt: return Value::of_int(x < y ? 1 : 0);
        case BinaryOp::Gt: return Value::of_int(x > y ? 1 : 0);
        case BinaryOp::Le: return Value::of_int(x <= y ? 1 : 0);
        case BinaryOp::Ge: return Value::of_int(x >= y ? 1 : 0);
        case BinaryOp::Eq: return Value::of_int(x == y ? 1 : 0);
        case BinaryOp::Ne: return Value::of_int(x != y ? 1 : 0);
        default:
          throw RuntimeFault("invalid floating operation");
      }
    }
    const std::int64_t x = l.as_int();
    const std::int64_t y = r.as_int();
    switch (op) {
      case BinaryOp::Add: return Value::of_int(x + y);
      case BinaryOp::Sub: return Value::of_int(x - y);
      case BinaryOp::Mul: return Value::of_int(x * y);
      case BinaryOp::Div:
        if (y == 0) throw RuntimeFault("integer division by zero");
        return Value::of_int(x / y);
      case BinaryOp::Mod:
        if (y == 0) throw RuntimeFault("integer modulo by zero");
        return Value::of_int(x % y);
      case BinaryOp::Shl: return Value::of_int(x << y);
      case BinaryOp::Shr: return Value::of_int(x >> y);
      case BinaryOp::Lt: return Value::of_int(x < y ? 1 : 0);
      case BinaryOp::Gt: return Value::of_int(x > y ? 1 : 0);
      case BinaryOp::Le: return Value::of_int(x <= y ? 1 : 0);
      case BinaryOp::Ge: return Value::of_int(x >= y ? 1 : 0);
      case BinaryOp::Eq: return Value::of_int(x == y ? 1 : 0);
      case BinaryOp::Ne: return Value::of_int(x != y ? 1 : 0);
      case BinaryOp::BitAnd: return Value::of_int(x & y);
      case BinaryOp::BitOr: return Value::of_int(x | y);
      case BinaryOp::BitXor: return Value::of_int(x ^ y);
      default:
        throw RuntimeFault("unsupported binary operator");
    }
  }

  Value eval_assign(ThreadCtx& ctx, const Assign& a) {
    ObjRef target = lvalue(ctx, *a.target);
    Value result;
    if (a.op == AssignOp::Assign) {
      result = eval(ctx, *a.value);
    } else {
      Value old = load_checked(ctx, target, *a.target);
      Value rhs = eval(ctx, *a.value);
      BinaryOp op;
      switch (a.op) {
        case AssignOp::Add: op = BinaryOp::Add; break;
        case AssignOp::Sub: op = BinaryOp::Sub; break;
        case AssignOp::Mul: op = BinaryOp::Mul; break;
        case AssignOp::Div: op = BinaryOp::Div; break;
        case AssignOp::Mod: op = BinaryOp::Mod; break;
        case AssignOp::Shl: op = BinaryOp::Shl; break;
        case AssignOp::Shr: op = BinaryOp::Shr; break;
        case AssignOp::And: op = BinaryOp::BitAnd; break;
        case AssignOp::Or: op = BinaryOp::BitOr; break;
        case AssignOp::Xor: op = BinaryOp::BitXor; break;
        default: op = BinaryOp::Add; break;
      }
      result = apply_binop(old, rhs, op);
    }
    store_checked(ctx, target, result, *a.target);
    return result;
  }

  static Value apply_binop(Value l, Value r, BinaryOp op) {
    if (l.is_ptr() && op == BinaryOp::Add) {
      return Value::of_ptr({l.as_ptr().object, l.as_ptr().offset + r.as_int()});
    }
    if (l.is_ptr() && op == BinaryOp::Sub) {
      return Value::of_ptr({l.as_ptr().object, l.as_ptr().offset - r.as_int()});
    }
    const bool fl = l.kind() == Value::Kind::Double ||
                    r.kind() == Value::Kind::Double;
    if (fl) {
      const double x = l.as_double();
      const double y = r.as_double();
      switch (op) {
        case BinaryOp::Add: return Value::of_double(x + y);
        case BinaryOp::Sub: return Value::of_double(x - y);
        case BinaryOp::Mul: return Value::of_double(x * y);
        case BinaryOp::Div: return Value::of_double(x / y);
        default: return Value::of_double(x + y);
      }
    }
    const std::int64_t x = l.as_int();
    const std::int64_t y = r.as_int();
    switch (op) {
      case BinaryOp::Add: return Value::of_int(x + y);
      case BinaryOp::Sub: return Value::of_int(x - y);
      case BinaryOp::Mul: return Value::of_int(x * y);
      case BinaryOp::Div:
        if (y == 0) throw RuntimeFault("integer division by zero");
        return Value::of_int(x / y);
      case BinaryOp::Mod:
        if (y == 0) throw RuntimeFault("integer modulo by zero");
        return Value::of_int(x % y);
      case BinaryOp::Shl: return Value::of_int(x << y);
      case BinaryOp::Shr: return Value::of_int(x >> y);
      case BinaryOp::BitAnd: return Value::of_int(x & y);
      case BinaryOp::BitOr: return Value::of_int(x | y);
      case BinaryOp::BitXor: return Value::of_int(x ^ y);
      default: return Value::of_int(x + y);
    }
  }

  [[nodiscard]] ObjRef string_object(const StringLit& s) {
    auto it = string_cache_.find(&s);
    if (it != string_cache_.end()) return it->second;
    const std::int64_t n = static_cast<std::int64_t>(s.value.size()) + 1;
    const int obj = mem_.allocate("<string>", nullptr, {}, n,
                                  Value::of_int(0), true);
    for (std::size_t i = 0; i < s.value.size(); ++i) {
      mem_.store(ObjRef{obj, static_cast<std::int64_t>(i)},
                 Value::of_int(s.value[i]));
    }
    ObjRef ref{obj, 0};
    string_cache_[&s] = ref;
    return ref;
  }

  Value eval_call(ThreadCtx& ctx, const Call& c);

  /// Calls a user-defined function with already-evaluated arguments
  /// (shared by eval_call and the VM's CallUser handler). Defined in
  /// interp_builtins.inc.
  Value invoke_user(ThreadCtx& ctx, const FunctionDecl& fn,
                    std::vector<Value> args);

  // ------------------------------------------------------------ vm
  // Defined in interp_vm.inc.

  /// Executes a structured body: its compiled chunk when the VM backend
  /// has one, the AST walker otherwise. Every body-level entry point
  /// (function bodies, OpenMP construct bodies, sections children) routes
  /// through here so the two backends interleave freely.
  Flow exec_body(ThreadCtx& ctx, const Stmt& s);
  Flow run_chunk(ThreadCtx& ctx, const bc::Chunk& ch);
  Flow run_chunk_frame(ThreadCtx& ctx, const bc::Chunk& ch, Value* regs);
  [[nodiscard]] ObjRef cached_slot(const ThreadCtx& ctx, Value* regs,
                                   const bc::Chunk& ch,
                                   const bc::AccessSite& site);

  // ------------------------------------------------------------ statements

  Flow exec_stmt(ThreadCtx& ctx, const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        for (const auto& v : d.decls) declare_var(ctx, *v);
        return Flow::Normal;
      }
      case StmtKind::Expr:
        eval(ctx, *static_cast<const ExprStmt&>(s).expr);
        return Flow::Normal;
      case StmtKind::Compound: {
        const auto& block = static_cast<const CompoundStmt&>(s);
        ctx.frames.emplace_back();
        Flow flow = Flow::Normal;
        for (const auto& st : block.body) {
          flow = exec_stmt(ctx, *st);
          if (flow != Flow::Normal) break;
        }
        ctx.frames.pop_back();
        return flow;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        if (eval(ctx, *i.cond).truthy()) return exec_stmt(ctx, *i.then_branch);
        if (i.else_branch) return exec_stmt(ctx, *i.else_branch);
        return Flow::Normal;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        ctx.frames.emplace_back();
        Flow flow = Flow::Normal;
        if (f.init) exec_stmt(ctx, *f.init);
        for (;;) {
          if (f.cond && !eval(ctx, *f.cond).truthy()) break;
          flow = exec_stmt(ctx, *f.body);
          if (flow == Flow::Break) {
            flow = Flow::Normal;
            break;
          }
          if (flow == Flow::Return) break;
          if (f.inc) eval(ctx, *f.inc);
        }
        ctx.frames.pop_back();
        return flow;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(s);
        Flow flow = Flow::Normal;
        while (eval(ctx, *w.cond).truthy()) {
          flow = exec_stmt(ctx, *w.body);
          if (flow == Flow::Break) {
            flow = Flow::Normal;
            break;
          }
          if (flow == Flow::Return) break;
        }
        return flow;
      }
      case StmtKind::Do: {
        const auto& d = static_cast<const DoStmt&>(s);
        Flow flow = Flow::Normal;
        do {
          flow = exec_stmt(ctx, *d.body);
          if (flow == Flow::Break) {
            flow = Flow::Normal;
            break;
          }
          if (flow == Flow::Return) break;
        } while (eval(ctx, *d.cond).truthy());
        return flow;
      }
      case StmtKind::Return: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        ReturnSignal sig;
        sig.value = r.value ? eval(ctx, *r.value) : Value::of_int(0);
        throw sig;
      }
      case StmtKind::Break: return Flow::Break;
      case StmtKind::Continue: return Flow::Continue;
      case StmtKind::Null: return Flow::Normal;
      case StmtKind::Omp:
        return exec_omp(ctx, static_cast<const OmpStmt&>(s));
    }
    return Flow::Normal;
  }

  // ------------------------------------------------------------ OpenMP

  Flow exec_omp(ThreadCtx& ctx, const OmpStmt& s);
  void exec_parallel_region(ThreadCtx& parent, const OmpStmt& s);
  void exec_region_worker(ThreadCtx& worker, const OmpStmt& s);
  void exec_worksharing_loop(ThreadCtx& ctx, const OmpStmt& s,
                             bool simd_chunked);
  void exec_sections(ThreadCtx& ctx, const OmpStmt& s);
  void exec_task(ThreadCtx& ctx, const OmpStmt& s);
  [[nodiscard]] LoopBounds eval_loop_bounds(ThreadCtx& ctx,
                                            const ForStmt& loop);
  ClauseResult apply_data_clauses(ThreadCtx& ctx, const OmpDirective& dir);
  void pop_data_clauses(ThreadCtx& ctx, const ClauseResult& cr);
  void finish_reductions(ThreadCtx& ctx,
                         const std::vector<PendingReduction>& reds);
  void capture_lastprivate(ThreadCtx& ctx, SourceLoc loc);
  [[nodiscard]] ObjRef clone_object(ObjRef src, const VarDecl* decl,
                                    bool copy_values);
  [[nodiscard]] ObjRef get_threadprivate(const VarDecl* decl, int team_index,
                                         ObjRef master);

  // ------------------------------------------------------------ io

  void do_printf(ThreadCtx& ctx, const Call& c, std::size_t first_arg);
  [[nodiscard]] std::string read_cstring(ObjRef ref) const;
  void output_append(const std::string& s);
  [[nodiscard]] static Value eval_ptr_passthrough(ObjRef p);

  const TranslationUnit& tu_;
  const analysis::Resolution& res_;
  RunOptions opts_;
  Memory mem_;
  std::string output_;
  analysis::RaceReport report_;
  int next_tid_ = 0;
  std::uint64_t steps_total_ = 0;
  std::uint64_t serial_steps_ = 0;
  int region_counter_ = 0;
  ScheduleTrace trace_;
  std::set<std::uint64_t> coverage_;
  int cov_last_tid_ = -1;
  std::uint64_t cov_last_site_ = 0;
  std::map<const void*, ObjRef> string_cache_;
  std::map<std::pair<const VarDecl*, int>, ObjRef> threadprivate_;
  std::map<std::pair<int, std::int64_t>, LockState> global_locks_;
  std::map<std::string, LockState> global_critical_;
  std::map<const void*, int> ws_visit_counts_;  // per ws-loop encounters
  std::uint64_t rand_state_ = 0x853c49e6748fea9bULL;
  /// Compiled bytecode for tu_ (VM backend), or null (AST walker).
  const bc::Module* module_ = nullptr;
  std::size_t reg_arena_size_ = 0;  // per-ThreadCtx arena first-use size
};

// Implementation of the OpenMP construct handlers and builtin calls lives
// in textually included units to keep file sizes manageable. They define
// further members of Interp and must stay inside this anonymous namespace.
#include "runtime/interp_builtins.inc"
#include "runtime/interp_omp.inc"
#include "runtime/interp_vm.inc"

}  // namespace

Backend default_backend() {
  const int forced = g_backend_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  static const Backend env_default = [] {
    const char* env = std::getenv("DRBML_BACKEND");
    if (env != nullptr && std::string_view(env) == "interp") {
      return Backend::Interp;
    }
    return Backend::Vm;
  }();
  return env_default;
}

void set_default_backend(Backend b) {
  g_backend_override.store(static_cast<int>(b), std::memory_order_relaxed);
}

RunResult run_program(const TranslationUnit& unit,
                      const analysis::Resolution& res,
                      const RunOptions& opts) {
  RunOptions o = opts;
  std::unique_ptr<bc::Module> owned;
  if (o.backend == Backend::Vm) {
    if (o.module == nullptr) {
      // One-shot caller: compile (and verify) for this run only.
      owned = std::make_unique<bc::Module>(bc::compile_verified(unit));
      o.module = owned.get();
    } else if (!o.module->verified) {
      throw Error(
          "bytecode module is not verified; refusing to execute "
          "(pass it through bc::verify or use bc::compile_verified)");
    }
    static obs::Counter& runs = obs::metrics().counter(obs::kVmRuns);
    runs.add();
  }
  Interp interp(unit, res, o);
  return interp.run();
}

}  // namespace drbml::runtime
