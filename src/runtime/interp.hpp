// Mini-C/OpenMP interpreter with simulated threading and happens-before
// race detection.
//
// OpenMP semantics are executed, not approximated: parallel regions fork a
// cooperative team (one logical thread per OpenMP thread), worksharing
// loops partition their real iteration space, critical/atomic/locks/
// barriers/ordered/single/sections/tasks all execute with the
// synchronization edges they imply, and every shared memory access passes
// through FastTrack-style vector-clock checking. A data race is reported
// when two conflicting accesses are unordered by happens-before in the
// executed schedule.
//
// Deliberate simplifications (documented in DESIGN.md):
//   - `sizeof(T)` evaluates to 1: allocation sizes are in elements, which
//     makes `malloc(n * sizeof(int))` allocate n ints.
//   - Nested parallel regions run with a team of 1.
//   - Task constructs execute inline at the spawn point under a fresh
//     logical thread id (fork/join edges preserved; taskwait and depend
//     clauses add the corresponding edges).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/resolve.hpp"
#include "minic/ast.hpp"
#include "runtime/sched.hpp"

namespace drbml::runtime {

namespace bc {
struct Module;
}  // namespace bc

/// How parallel regions are scheduled. Uniform is the legacy seeded
/// random walk (preempt every N shared accesses, uniform random target).
/// Pct runs the PCT priority-based strategy (see runtime/strategy.hpp).
/// Replay re-executes a recorded ScheduleTrace bit-identically.
enum class ScheduleStrategy { Uniform, Pct, Replay };

/// Execution backend: the AST-walking interpreter (reference semantics)
/// or the register-bytecode VM (compile once, execute many schedules).
/// Both produce bit-identical verdicts, traces, and output.
enum class Backend { Interp, Vm };

/// Process-wide default backend: the DRBML_BACKEND environment variable
/// ("interp" selects the AST walker; anything else, or unset, selects the
/// VM) unless overridden via set_default_backend (the CLI's --backend).
[[nodiscard]] Backend default_backend();
void set_default_backend(Backend b);

struct RunOptions {
  int num_threads = 4;
  std::uint64_t seed = 1;
  /// Uniform strategy: pass the token to a random runnable worker after
  /// this many shared accesses.
  int preempt_every = 7;
  /// Abort (as livelock) after this many scheduler steps.
  std::uint64_t step_limit = 2'000'000;
  std::size_t max_output = 64 * 1024;
  /// Cap on distinct reported race pairs.
  int max_pairs = 16;
  ScheduleStrategy strategy = ScheduleStrategy::Uniform;
  /// PCT bug depth d: d-1 priority change points per region.
  int pct_depth = 3;
  /// PCT estimate k of a region's step count (change points are sampled
  /// uniformly from [1, k]).
  std::uint64_t pct_expected_steps = 4096;
  /// Replay strategy: the recorded trace. Not owned; must outlive the
  /// run. Missing/short regions fall back to the deterministic
  /// lowest-index schedule.
  const ScheduleTrace* replay = nullptr;
  /// Record every scheduling decision into RunResult::trace.
  bool capture_trace = false;
  /// Collect the interleaving-coverage signature into RunResult::coverage.
  bool collect_coverage = false;
  /// Execution backend. With Backend::Vm, run_program executes compiled
  /// bytecode: either `module` (compile-once callers) or a module it
  /// compiles itself for this run.
  Backend backend = default_backend();
  /// Optional pre-compiled bytecode for `unit` (must be compiled from the
  /// same resolved TranslationUnit and verified). Not owned; must outlive
  /// the run. Ignored under Backend::Interp.
  const bc::Module* module = nullptr;
};

struct RunResult {
  analysis::RaceReport report;
  std::string output;
  int exit_code = 0;
  bool faulted = false;        // RuntimeFault (OOB, deadlock, livelock, ...)
  std::string fault_message;
  std::uint64_t steps = 0;
  /// Recorded scheduling decisions, one vector per parallel region in
  /// dynamic region order (when opts.capture_trace). Populated even when
  /// the run faulted: the decision prefix up to a step-budget or deadlock
  /// abort is surfaced so aborted schedules stay replayable.
  ScheduleTrace trace;
  /// Sorted interleaving-coverage hashes -- observed preemption points and
  /// ordered cross-thread access pairs (when opts.collect_coverage).
  std::vector<std::uint64_t> coverage;
};

/// Executes `main()` of a resolved program. The unit must have been passed
/// through analysis::resolve() so identifiers are bound.
[[nodiscard]] RunResult run_program(const minic::TranslationUnit& unit,
                                    const analysis::Resolution& res,
                                    const RunOptions& opts = {});

}  // namespace drbml::runtime
