// Mini-C/OpenMP interpreter with simulated threading and happens-before
// race detection.
//
// OpenMP semantics are executed, not approximated: parallel regions fork a
// cooperative team (one logical thread per OpenMP thread), worksharing
// loops partition their real iteration space, critical/atomic/locks/
// barriers/ordered/single/sections/tasks all execute with the
// synchronization edges they imply, and every shared memory access passes
// through FastTrack-style vector-clock checking. A data race is reported
// when two conflicting accesses are unordered by happens-before in the
// executed schedule.
//
// Deliberate simplifications (documented in DESIGN.md):
//   - `sizeof(T)` evaluates to 1: allocation sizes are in elements, which
//     makes `malloc(n * sizeof(int))` allocate n ints.
//   - Nested parallel regions run with a team of 1.
//   - Task constructs execute inline at the spawn point under a fresh
//     logical thread id (fork/join edges preserved; taskwait and depend
//     clauses add the corresponding edges).
#pragma once

#include <cstdint>
#include <string>

#include "analysis/report.hpp"
#include "analysis/resolve.hpp"
#include "minic/ast.hpp"

namespace drbml::runtime {

struct RunOptions {
  int num_threads = 4;
  std::uint64_t seed = 1;
  /// Pass the token to a random runnable worker after this many shared
  /// accesses.
  int preempt_every = 7;
  /// Abort (as livelock) after this many scheduler steps.
  std::uint64_t step_limit = 2'000'000;
  std::size_t max_output = 64 * 1024;
  /// Cap on distinct reported race pairs.
  int max_pairs = 16;
};

struct RunResult {
  analysis::RaceReport report;
  std::string output;
  int exit_code = 0;
  bool faulted = false;        // RuntimeFault (OOB, deadlock, livelock, ...)
  std::string fault_message;
  std::uint64_t steps = 0;
};

/// Executes `main()` of a resolved program. The unit must have been passed
/// through analysis::resolve() so identifiers are bound.
[[nodiscard]] RunResult run_program(const minic::TranslationUnit& unit,
                                    const analysis::Resolution& res,
                                    const RunOptions& opts = {});

}  // namespace drbml::runtime
