// Runtime values for the Mini-C interpreter.
#pragma once

#include <cstdint>
#include <string>

namespace drbml::runtime {

/// A pointer value: object id + element offset.
struct ObjRef {
  int object = -1;
  std::int64_t offset = 0;

  [[nodiscard]] bool valid() const noexcept { return object >= 0; }
  friend bool operator==(const ObjRef&, const ObjRef&) = default;
};

/// A dynamically typed scalar: integer, floating, or pointer.
class Value {
 public:
  enum class Kind { Int, Double, Ptr };

  Value() = default;
  static Value of_int(std::int64_t v) {
    Value x;
    x.kind_ = Kind::Int;
    x.i_ = v;
    return x;
  }
  static Value of_double(double v) {
    Value x;
    x.kind_ = Kind::Double;
    x.d_ = v;
    return x;
  }
  static Value of_ptr(ObjRef p) {
    Value x;
    x.kind_ = Kind::Ptr;
    x.p_ = p;
    return x;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_ptr() const noexcept { return kind_ == Kind::Ptr; }

  /// Numeric coercions follow C semantics (truncation / promotion).
  [[nodiscard]] std::int64_t as_int() const noexcept {
    switch (kind_) {
      case Kind::Int: return i_;
      case Kind::Double: return static_cast<std::int64_t>(d_);
      case Kind::Ptr: return p_.valid() ? 1 : 0;
    }
    return 0;
  }
  [[nodiscard]] double as_double() const noexcept {
    switch (kind_) {
      case Kind::Int: return static_cast<double>(i_);
      case Kind::Double: return d_;
      case Kind::Ptr: return p_.valid() ? 1.0 : 0.0;
    }
    return 0.0;
  }
  [[nodiscard]] ObjRef as_ptr() const noexcept {
    return kind_ == Kind::Ptr ? p_ : ObjRef{};
  }
  [[nodiscard]] bool truthy() const noexcept {
    switch (kind_) {
      case Kind::Int: return i_ != 0;
      case Kind::Double: return d_ != 0.0;
      case Kind::Ptr: return p_.valid();
    }
    return false;
  }

  [[nodiscard]] std::string to_string() const {
    switch (kind_) {
      case Kind::Int: return std::to_string(i_);
      case Kind::Double: return std::to_string(d_);
      case Kind::Ptr:
        return p_.valid() ? "&obj" + std::to_string(p_.object) + "[" +
                                std::to_string(p_.offset) + "]"
                          : "nullptr";
    }
    return "?";
  }

 private:
  Kind kind_ = Kind::Int;
  std::int64_t i_ = 0;
  double d_ = 0.0;
  ObjRef p_;
};

}  // namespace drbml::runtime
