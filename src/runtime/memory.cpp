#include "runtime/memory.hpp"

namespace drbml::runtime {

int Memory::allocate(std::string name, const minic::VarDecl* decl,
                     std::vector<std::int64_t> dims, std::int64_t count,
                     Value init, bool thread_local_object) {
  if (count < 0) throw RuntimeFault("negative allocation size");
  if (count > (1 << 24)) {
    throw RuntimeFault("allocation too large for the interpreter: " +
                       std::to_string(count));
  }
  MemObject obj;
  obj.name = std::move(name);
  obj.decl = decl;
  obj.dims = std::move(dims);
  obj.data.assign(static_cast<std::size_t>(count), init);
  obj.shadow.assign(static_cast<std::size_t>(count), ShadowCell{});
  obj.thread_local_object = thread_local_object;
  objects_.push_back(std::move(obj));
  return static_cast<int>(objects_.size()) - 1;
}

MemObject& Memory::object(int id) {
  if (id < 0 || static_cast<std::size_t>(id) >= objects_.size()) {
    throw RuntimeFault("invalid object id");
  }
  return objects_[static_cast<std::size_t>(id)];
}

const MemObject& Memory::object(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= objects_.size()) {
    throw RuntimeFault("invalid object id");
  }
  return objects_[static_cast<std::size_t>(id)];
}

void Memory::check(ObjRef ref) const {
  const MemObject& obj = object(ref.object);
  if (obj.freed) {
    throw RuntimeFault("use after free of '" + obj.name + "'");
  }
  if (ref.offset < 0 || ref.offset >= obj.size()) {
    throw RuntimeFault("out-of-bounds access to '" + obj.name + "' at index " +
                       std::to_string(ref.offset) + " (size " +
                       std::to_string(obj.size()) + ")");
  }
}

Value Memory::load(ObjRef ref) const {
  check(ref);
  return objects_[static_cast<std::size_t>(ref.object)]
      .data[static_cast<std::size_t>(ref.offset)];
}

void Memory::store(ObjRef ref, Value v) {
  check(ref);
  objects_[static_cast<std::size_t>(ref.object)]
      .data[static_cast<std::size_t>(ref.offset)] = v;
}

}  // namespace drbml::runtime
