#include "runtime/sched.hpp"

#include <thread>

#include "support/error.hpp"

namespace drbml::runtime {

namespace {
thread_local CoopScheduler* t_scheduler = nullptr;
thread_local int t_worker_index = -1;
}  // namespace

CoopScheduler* current_scheduler() noexcept { return t_scheduler; }
int current_worker_index() noexcept { return t_worker_index; }

CoopScheduler::CoopScheduler(std::uint64_t seed, int preempt_every)
    : rng_(seed), preempt_every_(preempt_every < 1 ? 1 : preempt_every) {}

int CoopScheduler::self() const { return t_worker_index; }

int CoopScheduler::pick_runnable(int exclude) {
  // Collect Ready workers; prefer not to pick `exclude` unless it is the
  // only one. Scratch buffer reused across calls: this runs at every
  // switch point, so a fresh allocation per call is measurable.
  pick_buf_.clear();
  for (int i = 0; i < static_cast<int>(states_.size()); ++i) {
    if (states_[static_cast<std::size_t>(i)] == State::Ready && i != exclude) {
      pick_buf_.push_back(i);
    }
  }
  if (pick_buf_.empty()) {
    if (exclude >= 0 &&
        states_[static_cast<std::size_t>(exclude)] == State::Ready) {
      return exclude;
    }
    return -1;
  }
  return pick_buf_[rng_.below(pick_buf_.size())];
}

const std::vector<int>& CoopScheduler::ready_peers(int exclude) const {
  // Scratch buffers reused across calls: deciders query the peer set at
  // every yield point (should_preempt), which is the hottest scheduler
  // path after the yield itself. The returned reference is valid until
  // the next ready_peers call.
  peers_buf_.clear();
  for (int i = 0; i < static_cast<int>(states_.size()); ++i) {
    if (states_[static_cast<std::size_t>(i)] == State::Ready && i != exclude) {
      peers_buf_.push_back(i);
    }
  }
  if (decider_ != nullptr && decider_->filter_spinners()) {
    awake_buf_.clear();
    for (int i : peers_buf_) {
      if (!spinning_[static_cast<std::size_t>(i)]) awake_buf_.push_back(i);
    }
    if (!awake_buf_.empty()) return awake_buf_;
  }
  return peers_buf_;
}

int CoopScheduler::decide_next(int exclude, bool forced) {
  const std::vector<int>& ready = ready_peers(exclude);
  if (ready.empty()) {
    if (exclude >= 0 &&
        states_[static_cast<std::size_t>(exclude)] == State::Ready) {
      return exclude;
    }
    return -1;
  }
  return decider_->pick(ready, exclude, steps_, forced);
}

void CoopScheduler::record(bool forced, int target) {
  if (recording_) trace_.push_back({forced, steps_, target});
}

void CoopScheduler::maybe_release_barrier() {
  int waiting = 0;
  for (State s : states_) {
    if (s == State::AtBarrier) ++waiting;
  }
  if (waiting > 0 && waiting == live_) {
    for (auto& s : states_) {
      if (s == State::AtBarrier) s = State::Ready;
    }
    ++barrier_generation_;
  }
}

std::unique_lock<std::mutex> CoopScheduler::guard() {
  return fibers_ ? std::unique_lock<std::mutex>()
                 : std::unique_lock<std::mutex>(mu_);
}

void CoopScheduler::switch_from(std::unique_lock<std::mutex>& lock, int me,
                                bool forced) {
  const int next = decider_ != nullptr ? decide_next(me, forced)
                                       : pick_runnable(me);
  if (next == -1) {
    // No other runnable worker. If everyone else is done or at a barrier
    // that cannot release, this is a deadlock.
    if (me >= 0 && states_[static_cast<std::size_t>(me)] == State::Ready) {
      current_ = me;
      return;  // keep running
    }
    aborting_ = true;
    if (!first_error_) {
      first_error_ = std::make_exception_ptr(
          RuntimeFault("deadlock: no runnable worker"));
    }
    cv_.notify_all();
    throw TeamAborted{};
  }
  if (next != me) record(forced, next);
  current_ = next;
  if (fibers_) {
    if (me < 0 || next == me) return;
    transfer_to(me, next);
    if (aborting_) throw TeamAborted{};
    return;
  }
  cv_.notify_all();
  if (me < 0) return;
  cv_.wait(lock, [&] {
    return aborting_ || current_ == me ||
           states_[static_cast<std::size_t>(me)] == State::Ready;
  });
  // Re-acquire the token if the barrier released us but another worker
  // holds the token.
  while (!aborting_ && current_ != me) {
    cv_.wait(lock, [&] { return aborting_ || current_ == me; });
  }
  if (aborting_) throw TeamAborted{};
}

void CoopScheduler::yield_point() {
  auto lock = guard();
  if (aborting_) throw TeamAborted{};
  ++steps_;
  if (steps_ > step_limit_) {
    aborting_ = true;
    if (!first_error_) {
      first_error_ = std::make_exception_ptr(
          RuntimeFault("step limit exceeded (possible livelock)"));
    }
    cv_.notify_all();
    throw TeamAborted{};
  }
  ++yields_;
  if (decider_ != nullptr) {
    // Policy-routed preemption: the decider sees the current step and the
    // runnable peers and decides whether to take the token away.
    if (!decider_->should_preempt(steps_, t_worker_index,
                                  ready_peers(t_worker_index))) {
      return;
    }
  } else if (yields_ % static_cast<std::uint64_t>(preempt_every_) != 0) {
    return;
  }
  switch_from(lock, t_worker_index, /*forced=*/false);
}

void CoopScheduler::yield_now() {
  auto lock = guard();
  if (aborting_) throw TeamAborted{};
  switch_from(lock, t_worker_index, /*forced=*/true);
}

void CoopScheduler::barrier_wait() {
  auto lock = guard();
  if (aborting_) throw TeamAborted{};
  const int me = t_worker_index;
  const std::uint64_t gen = barrier_generation_;
  states_[static_cast<std::size_t>(me)] = State::AtBarrier;
  maybe_release_barrier();
  if (barrier_generation_ != gen) {
    // Barrier released immediately (we were last); keep the token.
    current_ = me;
    cv_.notify_all();
    return;
  }
  switch_from(lock, me, /*forced=*/true);
  // Rescheduled: barrier must have released (or abort).
  if (aborting_) throw TeamAborted{};
}

void CoopScheduler::block_until(const std::function<bool()>& ready) {
  bool counted = false;
  auto leave_wait = [&](std::unique_lock<std::mutex>&) {
    if (t_worker_index >= 0 &&
        t_worker_index < static_cast<int>(spinning_.size())) {
      spinning_[static_cast<std::size_t>(t_worker_index)] = 0;
    }
    if (counted) {
      --waiting_;
      counted = false;
      spin_rounds_ = 0;  // a worker made progress
    }
  };
  for (;;) {
    {
      auto lock = guard();
      if (aborting_) {
        leave_wait(lock);
        throw TeamAborted{};
      }
    }
    if (ready()) {
      auto lock = guard();
      leave_wait(lock);
      return;
    }
    auto lock = guard();
    if (aborting_) {
      leave_wait(lock);
      throw TeamAborted{};
    }
    // Blocking consumes steps: a team spinning on conditions nobody can
    // satisfy must hit the livelock guard rather than hang.
    ++steps_;
    if (steps_ > step_limit_) {
      leave_wait(lock);
      aborting_ = true;
      if (!first_error_) {
        first_error_ = std::make_exception_ptr(
            RuntimeFault("step limit exceeded while blocked"));
      }
      cv_.notify_all();
      throw TeamAborted{};
    }
    if (!counted) {
      ++waiting_;
      counted = true;
    }
    spinning_[static_cast<std::size_t>(t_worker_index)] = 1;
    // If every live worker is blocked (waiting here or stuck at a barrier
    // that cannot release), no predicate can ever change: deadlock.
    int at_barrier = 0;
    for (State s : states_) {
      if (s == State::AtBarrier) ++at_barrier;
    }
    const int next = pick_runnable(t_worker_index);
    const bool everyone_stuck = waiting_ + at_barrier >= live_;
    if (next == -1 || (next == t_worker_index && everyone_stuck)) {
      leave_wait(lock);
      aborting_ = true;
      if (!first_error_) {
        first_error_ = std::make_exception_ptr(RuntimeFault(
            "deadlock: worker blocked with no runnable peer"));
      }
      cv_.notify_all();
      throw TeamAborted{};
    }
    if (everyone_stuck && next != t_worker_index) {
      // All peers are blocked too; a worker whose predicate just became
      // true may simply not have been rescheduled yet, so give the
      // round-robin a generous budget before declaring deadlock.
      if (++spin_rounds_ > 64 * static_cast<std::uint64_t>(live_) + 256) {
        leave_wait(lock);
        aborting_ = true;
        if (!first_error_) {
          first_error_ = std::make_exception_ptr(RuntimeFault(
              "deadlock: all workers blocked on unsatisfiable conditions"));
        }
        cv_.notify_all();
        throw TeamAborted{};
      }
    } else {
      spin_rounds_ = 0;
    }
    switch_from(lock, t_worker_index, /*forced=*/true);
  }
}

void CoopScheduler::run_team(std::vector<std::function<void()>> workers) {
  const int n = static_cast<int>(workers.size());
  states_.assign(static_cast<std::size_t>(n), State::Ready);
  live_ = n;
  aborting_ = false;
  first_error_ = nullptr;
  barrier_generation_ = 0;
  waiting_ = 0;
  spin_rounds_ = 0;
  spinning_.assign(static_cast<std::size_t>(n), 0);
  trace_.clear();
  if (decider_ != nullptr && n > 0) decider_->begin(n);

  if (fibers_ && n > 0 && Fiber::supported()) {
    run_team_fibers(workers);
  } else {
    run_team_threads(workers);
  }

  if (first_error_) std::rethrow_exception(first_error_);
}

void CoopScheduler::run_team_threads(
    std::vector<std::function<void()>>& workers) {
  const int n = static_cast<int>(workers.size());
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([this, i, fn = std::move(workers[static_cast<std::size_t>(i)])] {
      t_scheduler = this;
      t_worker_index = i;
      {
        // Wait for the token.
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return aborting_ || current_ == i; });
      }
      try {
        if (!aborting_) fn();
      } catch (const TeamAborted&) {
        // unwound by abort
      } catch (...) {
        std::unique_lock<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
        aborting_ = true;
      }
      {
        std::unique_lock<std::mutex> lock(mu_);
        states_[static_cast<std::size_t>(i)] = State::Done;
        --live_;
        maybe_release_barrier();
        if (!aborting_) {
          const int next = decider_ != nullptr ? decide_next(i, true)
                                               : pick_runnable(i);
          if (next >= 0) record(/*forced=*/true, next);
          current_ = next;  // -1 when everyone is done
        }
        cv_.notify_all();
      }
      t_scheduler = nullptr;
      t_worker_index = -1;
    });
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    int first = n > 0 ? 0 : -1;
    if (decider_ != nullptr && n > 0) {
      std::vector<int> all(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
      first = decider_->pick(all, /*current=*/-1, /*step=*/0,
                             /*forced=*/true);
    }
    if (first >= 0) record(/*forced=*/true, first);
    current_ = first;
    cv_.notify_all();
  }
  for (auto& t : threads) t.join();
}

void CoopScheduler::run_team_fibers(
    std::vector<std::function<void()>>& workers) {
  const int n = static_cast<int>(workers.size());
  // Initial token grant: the same decision code as the thread substrate.
  int first = 0;
  if (decider_ != nullptr) {
    std::vector<int> all(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    first = decider_->pick(all, /*current=*/-1, /*step=*/0, /*forced=*/true);
  }

  // The driver may itself be a worker fiber of an enclosing scheduler
  // (nested regions serialize but still build a team); save its identity
  // so nested run_team calls nest cleanly.
  CoopScheduler* const prev_sched = t_scheduler;
  const int prev_index = t_worker_index;

  fiber_jobs_ = &workers;
  fiber_args_.clear();
  fiber_args_.reserve(static_cast<std::size_t>(n));
  worker_fibers_.clear();
  worker_fibers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    fiber_args_.push_back(FiberArg{this, i});
    auto f = std::make_unique<Fiber>();
    f->start(&CoopScheduler::fiber_entry, &fiber_args_.back());
    worker_fibers_.push_back(std::move(f));
  }

  if (first >= 0) {
    record(/*forced=*/true, first);
    current_ = first;
    // Suspend the driver; it resumes when the last fiber completes (or
    // the abort chain has unwound every live fiber).
    transfer_to(/*me=*/-1, first);
  }

  t_scheduler = prev_sched;
  t_worker_index = prev_index;
  worker_fibers_.clear();
  fiber_args_.clear();
  fiber_jobs_ = nullptr;
}

void CoopScheduler::transfer_to(int me, int next) {
  Fiber& from = me < 0 ? driver_fiber_
                       : *worker_fibers_[static_cast<std::size_t>(me)];
  Fiber& to = next < 0 ? driver_fiber_
                       : *worker_fibers_[static_cast<std::size_t>(next)];
  Fiber::transfer(from, to);
  // Resumed: whatever ran in between rewrote the scheduler thread-locals.
  t_scheduler = this;
  t_worker_index = me;
}

void CoopScheduler::fiber_entry(void* arg) {
  auto* fa = static_cast<FiberArg*>(arg);
  fa->sched->fiber_worker_main(fa->index);
}

void CoopScheduler::fiber_worker_main(int i) {
  t_scheduler = this;
  t_worker_index = i;
  try {
    if (!aborting_) (*fiber_jobs_)[static_cast<std::size_t>(i)]();
  } catch (const TeamAborted&) {
    // unwound by abort
  } catch (...) {
    if (!first_error_) first_error_ = std::current_exception();
    aborting_ = true;
  }
  // Completion bookkeeping, mirroring the thread substrate's exit block.
  states_[static_cast<std::size_t>(i)] = State::Done;
  --live_;
  maybe_release_barrier();
  int next = -1;
  if (!aborting_) {
    next = decider_ != nullptr ? decide_next(i, true) : pick_runnable(i);
    if (next >= 0) record(/*forced=*/true, next);
    current_ = next;  // -1 when everyone is done
  } else {
    // Abort: resume each remaining fiber in turn so TeamAborted unwinds
    // its stack before the driver regains control (the thread substrate
    // gets this from the cv broadcast; fibers must chain explicitly).
    for (int k = 0; k < static_cast<int>(states_.size()); ++k) {
      if (states_[static_cast<std::size_t>(k)] != State::Done) {
        next = k;
        break;
      }
    }
    current_ = next;
  }
  // Final transfer: Done workers are never picked again, so control never
  // returns here and the fiber's stack goes back to the pool intact.
  transfer_to(i, next);
  // not reached -- the trampoline aborts if an entry ever returns
}

}  // namespace drbml::runtime
