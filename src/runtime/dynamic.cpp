#include "runtime/dynamic.hpp"

#include "minic/parser.hpp"

namespace drbml::runtime {

analysis::RaceReport DynamicRaceDetector::analyze_source(
    std::string_view source) const {
  minic::Program prog = minic::parse_program(source);
  analysis::Resolution res = analysis::resolve(*prog.unit);

  analysis::RaceReport merged;
  for (std::uint64_t seed : opts_.schedule_seeds) {
    RunOptions run = opts_.run;
    run.seed = seed;
    RunResult result = run_program(*prog.unit, res, run);
    for (auto& pair : result.report.pairs) {
      merged.add_pair(std::move(pair));
    }
    for (auto& d : result.report.diagnostics) {
      merged.diagnostics.push_back(std::move(d));
    }
    if (result.faulted) {
      merged.diagnostics.push_back("dynamic: run faulted: " +
                                   result.fault_message);
    }
  }
  if (!merged.race_detected) {
    merged.diagnostics.push_back(
        "dynamic: no happens-before violation observed");
  }
  return merged;
}

RunResult DynamicRaceDetector::run_once(std::string_view source,
                                        std::uint64_t seed) const {
  minic::Program prog = minic::parse_program(source);
  analysis::Resolution res = analysis::resolve(*prog.unit);
  RunOptions run = opts_.run;
  run.seed = seed;
  return run_program(*prog.unit, res, run);
}

}  // namespace drbml::runtime
