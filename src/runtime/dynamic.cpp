#include "runtime/dynamic.hpp"

#include "minic/parser.hpp"
#include "obs/catalog.hpp"
#include "runtime/bc/compile.hpp"

namespace drbml::runtime {

analysis::RaceReport DynamicRaceDetector::analyze_source(
    std::string_view source) const {
  static obs::Counter& replays = obs::metrics().counter(obs::kInterpReplays);
  static obs::Counter& faults = obs::metrics().counter(obs::kInterpFaults);
  static obs::Counter& races = obs::metrics().counter(obs::kInterpRaces);
  static obs::Counter& steps = obs::metrics().counter(obs::kSchedSteps);
  static obs::Histogram& steps_hist =
      obs::metrics().histogram(obs::kSchedStepsPerReplay);

  minic::Program prog = minic::parse_program(source);
  analysis::Resolution res = analysis::resolve(*prog.unit);

  // Compile once, execute every schedule seed against the same module.
  bc::Module module;
  if (opts_.run.backend == Backend::Vm && opts_.run.module == nullptr) {
    module = bc::compile_verified(*prog.unit);
  }

  analysis::RaceReport merged;
  for (std::uint64_t seed : opts_.schedule_seeds) {
    RunOptions run = opts_.run;
    run.seed = seed;
    if (run.backend == Backend::Vm && run.module == nullptr) {
      run.module = &module;
    }
    const std::string seed_label = "seed=" + std::to_string(seed);
    RunResult result = [&] {
      obs::Span span(obs::kSpanInterpReplay, seed_label);
      return run_program(*prog.unit, res, run);
    }();
    replays.add();
    steps.add(result.steps);
    steps_hist.observe(result.steps);
    if (result.faulted) faults.add();
    if (result.report.race_detected) races.add();
    for (auto& pair : result.report.pairs) {
      merged.add_pair(std::move(pair));
    }
    for (auto& d : result.report.diagnostics) {
      merged.diagnostics.push_back(std::move(d));
    }
    if (result.faulted) {
      merged.diagnostics.push_back("dynamic: run faulted: " +
                                   result.fault_message);
    }
  }
  if (!merged.race_detected) {
    merged.diagnostics.push_back(
        "dynamic: no happens-before violation observed");
  }
  return merged;
}

RunResult DynamicRaceDetector::run_once(std::string_view source,
                                        std::uint64_t seed) const {
  minic::Program prog = minic::parse_program(source);
  analysis::Resolution res = analysis::resolve(*prog.unit);
  RunOptions run = opts_.run;
  run.seed = seed;
  return run_program(*prog.unit, res, run);
}

}  // namespace drbml::runtime
