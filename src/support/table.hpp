// Plain-text table rendering for bench/report output.
//
// Renders aligned, pipe-delimited tables similar to the paper's layout so
// that bench output can be compared side by side with the published tables.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace drbml {

/// Column alignment for TextTable.
enum class Align { Left, Right };

/// An aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Sets per-column alignment; default is Left for the first column and
  /// Right for the rest (numeric convention).
  void set_align(std::size_t col, Align align);

  void add_row(std::vector<std::string> row);

  /// Renders the table, including a separator under the header.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a titled section heading used by the bench binaries.
[[nodiscard]] std::string heading(std::string_view title);

}  // namespace drbml
