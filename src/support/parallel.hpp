// Deterministic parallel execution primitives.
//
// ThreadPool is a fixed-size worker pool; parallel_map fans a pure
// per-item function out over the pool and returns results **in input
// order**, regardless of completion order. With jobs <= 1 the map runs
// inline on the caller's thread in input order -- byte-for-byte the old
// serial path -- so parallelism can never change a result, only its
// wall-clock cost. OnceMap is the thread-safe memoization primitive
// underneath the artifact caches: concurrent get_or_compute calls for
// the same key run the compute function exactly once (per success) and
// share the result.
//
// The executor preserves the repository's determinism contract
// (DESIGN.md section 6.2): per-item work must already be
// order-independent (counter-based PRNGs keyed by stable strings, no
// shared mutable state), and the fold back into aggregate results
// happens in input order on the caller's thread.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace drbml::support {

/// Resolves a jobs request: `jobs > 0` is taken literally; `jobs == 0`
/// means "auto" -- the DRBML_JOBS environment variable if set to a
/// positive integer, otherwise std::thread::hardware_concurrency().
/// Always returns >= 1.
[[nodiscard]] int resolve_jobs(int jobs);

/// A fixed pool of worker threads executing indexed batches.
///
/// `threads == 0` is a degenerate inline pool: run() executes the batch
/// on the caller's thread in index order (the serial path). With
/// `threads >= 1`, run() hands indices to the workers through a shared
/// atomic cursor and blocks until the batch completes; the first
/// exception thrown by any task is rethrown on the caller's thread
/// after the batch drains. A pool is reusable across successive run()
/// calls, including after a batch that threw.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for the inline pool).
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Runs fn(0) .. fn(n - 1), blocking until all calls finish.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // caller waits for completion
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t batch_size_ = 0;
  std::size_t next_index_ = 0;        // cursor into the current batch
  std::size_t in_flight_ = 0;         // tasks started but not finished
  std::uint64_t generation_ = 0;      // bumped per batch
  bool stop_ = false;
  std::exception_ptr error_;
};

/// Priority-ordered task submission onto a fixed worker pool, with a
/// bounded queue for admission control (the serve daemon's execution
/// substrate). Unlike ThreadPool's indexed batches, tasks arrive one at a
/// time, each with a priority: workers always pick the highest-priority
/// queued task, ties resolved FIFO by submission order. try_submit
/// refuses -- instead of blocking -- when the queue is full or the pool
/// is closed, which is what lets a caller answer "backpressure" instead
/// of stalling. Deadlines are the submitter's business: a task that must
/// expire checks its own clock when it starts running.
///
/// Tasks must not throw (wrap work in a catch-all that encodes failure
/// into the task's own result channel); an escaping exception is caught
/// and counted but otherwise dropped, so one bad task cannot take the
/// daemon down.
class TaskPool {
 public:
  /// `threads >= 1` workers; `queue_limit == 0` means unbounded.
  TaskPool(int threads, std::size_t queue_limit);
  /// Drains gracefully: closes admission, runs everything queued, joins.
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues `fn` at `priority` (higher runs sooner). Returns false --
  /// and does not enqueue -- when the queue is at its limit or the pool
  /// is closed.
  bool try_submit(int priority, std::function<void()> fn);

  /// Blocks until the queue is empty and no task is running.
  void drain();

  /// Stops admission; queued and running tasks still complete.
  void close();

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] std::uint64_t executed() const;
  [[nodiscard]] std::uint64_t task_exceptions() const;
  [[nodiscard]] bool closed() const;

 private:
  struct Task {
    int priority = 0;
    std::uint64_t seq = 0;  // tie-break: FIFO within a priority
    std::function<void()> fn;
  };
  struct TaskOrder {
    // priority_queue keeps the *largest* on top: higher priority first,
    // then earlier submission.
    bool operator()(const Task& a, const Task& b) const noexcept {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  const std::size_t queue_limit_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for tasks
  std::condition_variable idle_cv_;  // drain() waits for quiescence
  std::priority_queue<Task, std::vector<Task>, TaskOrder> queue_;
  std::size_t in_flight_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t task_exceptions_ = 0;
  bool closed_ = false;
  bool stop_ = false;
};

namespace detail {

template <typename Fn, typename In>
using MapResult = std::decay_t<std::invoke_result_t<Fn&, const In&>>;

}  // namespace detail

/// Ordered parallel map over a reusable pool: out[i] == fn(items[i]).
/// Results land in input order regardless of completion order. fn must
/// be safe to call concurrently from multiple threads.
template <typename In, typename Fn>
std::vector<detail::MapResult<Fn, In>> parallel_map(ThreadPool& pool,
                                                    const std::vector<In>& items,
                                                    Fn&& fn) {
  using Out = detail::MapResult<Fn, In>;
  if (pool.size() <= 1 || items.size() <= 1) {
    std::vector<Out> out;
    out.reserve(items.size());
    for (const In& item : items) out.push_back(fn(item));
    return out;
  }
  std::vector<std::optional<Out>> slots(items.size());
  pool.run(items.size(),
           [&](std::size_t i) { slots[i].emplace(fn(items[i])); });
  std::vector<Out> out;
  out.reserve(items.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Ordered parallel map with a transient pool. jobs follows
/// resolve_jobs(); jobs <= 1 (after resolution) runs inline in input
/// order -- exactly the serial loop it replaces.
template <typename In, typename Fn>
std::vector<detail::MapResult<Fn, In>> parallel_map(int jobs,
                                                    const std::vector<In>& items,
                                                    Fn&& fn) {
  const int n = resolve_jobs(jobs);
  if (n <= 1 || items.size() <= 1) {
    ThreadPool inline_pool(0);
    return parallel_map(inline_pool, items, std::forward<Fn>(fn));
  }
  ThreadPool pool(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(n), items.size())));
  return parallel_map(pool, items, std::forward<Fn>(fn));
}

/// Thread-safe memoization map keyed by a caller-computed 64-bit hash.
///
/// get_or_compute runs `fn` exactly once per key among all concurrent
/// callers (losers block until the winner finishes, then share the
/// value); if the compute throws, the exception propagates to that
/// caller and a later call retries. Returned references stay valid
/// until the entry is dropped: values live in stable heap cells, so
/// inserting other keys never invalidates them, but clear() does.
template <typename Value>
class OnceMap {
 public:
  template <typename Fn>
  const Value& get_or_compute(std::uint64_t key, Fn&& fn) {
    std::shared_ptr<Cell> cell;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::shared_ptr<Cell>& slot = cells_[key];
      if (slot == nullptr) slot = std::make_shared<Cell>();
      cell = slot;
    }
    // Hand-rolled once-synchronization instead of std::call_once:
    // libstdc++ implements call_once on pthread_once, which cannot
    // unwind -- a throwing compute would deadlock every later call on
    // the same flag (GCC bug 66146).
    std::unique_lock<std::mutex> lock(cell->mu);
    for (;;) {
      if (cell->value.has_value()) return *cell->value;
      if (!cell->computing) break;
      cell->cv.wait(lock);
    }
    cell->computing = true;
    lock.unlock();
    try {
      Value v = fn();
      lock.lock();
      cell->value.emplace(std::move(v));
    } catch (...) {
      lock.lock();
      cell->computing = false;  // let a later caller retry
      cell->cv.notify_all();
      throw;
    }
    cell->computing = false;
    cell->cv.notify_all();
    return *cell->value;
  }

  /// Number of keys ever requested (including in-progress computes).
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cells_.size();
  }

  /// Calls fn(key, value) for every completed entry, in unspecified
  /// order. Holds the map lock for the whole walk: fn must not re-enter
  /// this map (snapshot serialization is the intended use).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, cell] : cells_) {
      std::lock_guard<std::mutex> cell_lock(cell->mu);
      if (cell->value.has_value()) fn(key, *cell->value);
    }
  }

  /// Inserts a precomputed value unless the key is already present or
  /// being computed. Returns true if the value was installed. Later
  /// get_or_compute calls for the key return the seeded value without
  /// running their compute function.
  bool seed(std::uint64_t key, Value v) {
    std::shared_ptr<Cell> cell;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::shared_ptr<Cell>& slot = cells_[key];
      if (slot == nullptr) slot = std::make_shared<Cell>();
      cell = slot;
    }
    std::lock_guard<std::mutex> cell_lock(cell->mu);
    if (cell->value.has_value() || cell->computing) return false;
    cell->value.emplace(std::move(v));
    return true;
  }

  /// Removes `key` from the index so later probes recompute fresh, and
  /// returns an opaque handle that keeps the evicted cell -- and any
  /// reference previously handed out for it -- alive until the handle is
  /// destroyed (the caller decides when reclamation is safe). Returns
  /// nullptr when the key is absent or its compute is still in flight
  /// (an in-flight cell must stay indexed so the winner/loser
  /// synchronization completes).
  std::shared_ptr<const void> erase(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cells_.find(key);
    if (it == cells_.end()) return nullptr;
    {
      std::lock_guard<std::mutex> cell_lock(it->second->mu);
      if (it->second->computing) return nullptr;
    }
    std::shared_ptr<const void> handle = it->second;
    cells_.erase(it);
    return handle;
  }

  /// Drops all entries. References handed out earlier dangle once their
  /// cell's last owner releases it -- only call this while no other
  /// thread is using the map.
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    cells_.clear();
  }

 private:
  struct Cell {
    std::mutex mu;
    std::condition_variable cv;
    bool computing = false;
    std::optional<Value> value;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Cell>> cells_;
};

}  // namespace drbml::support
