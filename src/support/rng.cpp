#include "support/rng.hpp"

#include <cmath>

#include "support/hash.hpp"

namespace drbml {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion of the seed into the xoshiro state; guarantees a
  // non-zero state for any seed.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = mix64(x);
  }
}

Rng Rng::from_key(std::string_view key) noexcept {
  return Rng(fnv1a64(key));
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace drbml
