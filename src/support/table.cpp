#include "support/table.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace drbml {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  aligns_.assign(header_.size(), Align::Right);
  if (!aligns_.empty()) aligns_[0] = Align::Left;
}

void TextTable::set_align(std::size_t col, Align align) {
  if (col >= aligns_.size()) throw Error("TextTable::set_align: bad column");
  aligns_[col] = align;
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw Error("TextTable::add_row: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      out += ' ';
      if (aligns_[c] == Align::Right) out.append(pad, ' ');
      out += row[c];
      if (aligns_[c] == Align::Left) out.append(pad, ' ');
      out += " |";
    }
    out += '\n';
    return out;
  };

  std::string out = render_row(header_);
  std::string sep = "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += '|';
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string heading(std::string_view title) {
  std::string out = "\n== ";
  out += title;
  out += " ==\n";
  return out;
}

}  // namespace drbml
