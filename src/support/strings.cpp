#include "support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace drbml {

namespace {
bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
char lower(char c) noexcept {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), lower);
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains_icase(std::string_view haystack,
                    std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(haystack[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  while (i < s.size()) {
    if (s.substr(i).size() >= from.size() && s.substr(i, from.size()) == from) {
      out.append(to);
      i += from.size();
    } else {
      out.push_back(s[i]);
      ++i;
    }
  }
  return out;
}

int count_lines(std::string_view s) noexcept {
  if (s.empty()) return 0;
  int n = 1;
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    if (s[i] == '\n') ++n;
  }
  if (s.back() == '\n' && s.size() == 1) return 1;
  return n;
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < s.size()) out.emplace_back(s.substr(start));
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::optional<std::int64_t> parse_int(std::string_view s) noexcept {
  std::size_t i = 0;
  bool negative = false;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
    negative = s[i] == '-';
    ++i;
  }
  if (i == s.size()) return std::nullopt;
  std::int64_t value = 0;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return std::nullopt;
    const std::int64_t digit = c - '0';
    if (value > (INT64_MAX - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return negative ? -value : value;
}

}  // namespace drbml
