// Small deterministic hashing utilities (FNV-1a and mixers).
//
// Used to derive stable per-(experiment, model, program) random streams so
// that every bench run reproduces bit-identical tables regardless of
// evaluation order.
#pragma once

#include <cstdint>
#include <string_view>

namespace drbml {

/// 64-bit FNV-1a over a byte string. Stable across platforms.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// SplitMix64 finalizer: a strong 64-bit mixer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two hashes into one (order-sensitive).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace drbml
