// String helpers used across the codebase.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace drbml {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Splits on a single character; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits on runs of whitespace; drops empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// Joins with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// True if `needle` occurs in `haystack` ignoring ASCII case.
[[nodiscard]] bool contains_icase(std::string_view haystack,
                                  std::string_view needle) noexcept;

/// Replaces every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string_view s, std::string_view from,
                                      std::string_view to);

/// Number of lines in `s` (one more than the number of '\n' characters,
/// except that a trailing newline does not start a new line). Empty string
/// has zero lines.
[[nodiscard]] int count_lines(std::string_view s) noexcept;

/// Splits into lines without the trailing '\n'.
[[nodiscard]] std::vector<std::string> split_lines(std::string_view s);

/// Formats a double with fixed precision (no locale surprises).
[[nodiscard]] std::string format_double(double v, int precision);

/// Strict decimal integer parse: optional sign, at least one digit, no
/// trailing characters, no overflow. Returns nullopt on any violation
/// (unlike std::atoi, which silently returns 0 for garbage).
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view s) noexcept;

}  // namespace drbml
