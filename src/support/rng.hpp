// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in drbml (model-persona noise, interleaving
// schedules, fold shuffles, dropout masks) flows through Rng instances seeded
// from stable string keys, so experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace drbml {

/// xoshiro256** seeded via SplitMix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Seeds from a string key, e.g. "table3/gpt4/p1/DRB001".
  static Rng from_key(std::string_view key) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept;

  /// Uniform in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Standard normal via Box-Muller.
  [[nodiscard]] double normal() noexcept;

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace drbml
