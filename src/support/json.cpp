#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace drbml::json {

void Object::set(std::string key, Value value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

bool Object::contains(std::string_view key) const noexcept {
  return find(key) != nullptr;
}

const Value& Object::at(std::string_view key) const {
  if (const Value* v = find(key)) return *v;
  throw JsonError("missing key: " + std::string(key));
}

const Value* Object::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Object::find(std::string_view key) noexcept {
  for (auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::copy_from(const Value& other) {
  type_ = other.type_;
  bool_ = other.bool_;
  int_ = other.int_;
  double_ = other.double_;
  string_ = other.string_;
  array_ = other.array_;
  object_ = other.object_ ? std::make_unique<Object>(*other.object_) : nullptr;
}

bool Value::as_bool() const {
  if (!is_bool()) throw JsonError("not a bool");
  return bool_;
}

std::int64_t Value::as_int() const {
  if (is_int()) return int_;
  throw JsonError("not an integer");
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(int_);
  if (is_double()) return double_;
  throw JsonError("not a number");
}

const std::string& Value::as_string() const {
  if (!is_string()) throw JsonError("not a string");
  return string_;
}

const Array& Value::as_array() const {
  if (!is_array()) throw JsonError("not an array");
  return array_;
}

Array& Value::as_array() {
  if (!is_array()) throw JsonError("not an array");
  return array_;
}

const Object& Value::as_object() const {
  if (!is_object() || !object_) throw JsonError("not an object");
  return *object_;
}

Object& Value::as_object() {
  if (!is_object() || !object_) throw JsonError("not an object");
  return *object_;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Value::dump_impl(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) * depth, ' ')
                 : std::string();
  const std::string pad_in =
      indent > 0
          ? std::string(static_cast<std::size_t>(indent) * (depth + 1), ' ')
          : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";

  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: out += std::to_string(int_); break;
    case Type::Double: {
      if (std::isfinite(double_)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Type::String:
      out.push_back('"');
      out += escape(string_);
      out.push_back('"');
      break;
    case Type::Array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad_in;
        array_[i].dump_impl(out, indent, depth + 1);
        if (i + 1 != array_.size()) out.push_back(',');
        out += nl;
      }
      out += pad;
      out.push_back(']');
      break;
    }
    case Type::Object: {
      if (!object_ || object_->empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      out += nl;
      std::size_t i = 0;
      for (const auto& [k, v] : *object_) {
        out += pad_in;
        out.push_back('"');
        out += escape(k);
        out.push_back('"');
        out += kv_sep;
        v.dump_impl(out, indent, depth + 1);
        if (++i != object_->size()) out.push_back(',');
        out += nl;
      }
      out += pad;
      out.push_back('}');
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_impl(out, 0, 0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  dump_impl(out, 2, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonError("json: " + msg + " at offset " + std::to_string(pos_));
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    if (eof()) fail("unexpected end of input");
    return text_[pos_];
  }
  char get() {
    char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() noexcept {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (get() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = get();
      if (c == '"') break;
      if (c == '\\') {
        char e = get();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = get();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape");
              }
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs in dataset text never occur).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("invalid escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    bool is_double = false;
    while (!eof()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-" || tok == "+") fail("invalid number");
    if (!is_double) {
      std::int64_t iv = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Value(iv);
    }
    double dv = 0.0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      fail("invalid number");
    }
    return Value(dv);
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      get();
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = get();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value(std::move(arr));
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      get();
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      char c = get();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value(std::move(obj));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace drbml::json
