// Error types shared across the drbml libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace drbml {

/// Base class for all errors raised by drbml libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by the Mini-C frontend on malformed input.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int col)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(col) + ": " + what),
        line_(line),
        col_(col) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int col() const noexcept { return col_; }

 private:
  int line_;
  int col_;
};

/// Raised by the interpreter when a program performs an illegal operation
/// (out-of-bounds access, division by zero, unbound identifier, ...).
class RuntimeFault : public Error {
 public:
  using Error::Error;
};

/// Raised by the JSON parser on malformed documents.
class JsonError : public Error {
 public:
  using Error::Error;
};

}  // namespace drbml
