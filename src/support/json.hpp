// Minimal JSON document model, parser, and serializer.
//
// Objects preserve insertion order so emitted DRB-ML files match the key
// order of the paper's Table 1 schema. Numbers distinguish integers from
// doubles to round-trip dataset labels exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace drbml::json {

class Value;

using Array = std::vector<Value>;
using Member = std::pair<std::string, Value>;

/// Order-preserving object. Lookup is linear: DRB-ML objects are tiny.
class Object {
 public:
  Object() = default;

  /// Inserts or overwrites.
  void set(std::string key, Value value);

  [[nodiscard]] bool contains(std::string_view key) const noexcept;

  /// Throws JsonError if absent.
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// Returns nullptr if absent.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  [[nodiscard]] Value* find(std::string_view key) noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  [[nodiscard]] auto begin() const noexcept { return members_.begin(); }
  [[nodiscard]] auto end() const noexcept { return members_.end(); }
  [[nodiscard]] auto begin() noexcept { return members_.begin(); }
  [[nodiscard]] auto end() noexcept { return members_.end(); }

 private:
  std::vector<Member> members_;
};

enum class Type { Null, Bool, Int, Double, String, Array, Object };

/// A JSON value (tagged union).
class Value {
 public:
  Value() : type_(Type::Null) {}
  Value(std::nullptr_t) : type_(Type::Null) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(int i) : type_(Type::Int), int_(i) {}
  Value(std::int64_t i) : type_(Type::Int), int_(i) {}
  Value(double d) : type_(Type::Double), double_(d) {}
  Value(const char* s) : type_(Type::String), string_(s) {}
  Value(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Value(std::string_view s) : type_(Type::String), string_(s) {}
  Value(Array a) : type_(Type::Array), array_(std::move(a)) {}
  Value(Object o)
      : type_(Type::Object), object_(std::make_unique<Object>(std::move(o))) {}

  Value(const Value& other) { copy_from(other); }
  Value& operator=(const Value& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;
  ~Value() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_int() const noexcept { return type_ == Type::Int; }
  [[nodiscard]] bool is_double() const noexcept { return type_ == Type::Double; }
  [[nodiscard]] bool is_number() const noexcept {
    return is_int() || is_double();
  }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::Object; }

  /// Accessors throw JsonError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  // accepts Int too
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Serializes compactly (no whitespace).
  [[nodiscard]] std::string dump() const;

  /// Serializes with 2-space indentation.
  [[nodiscard]] std::string dump_pretty() const;

 private:
  void copy_from(const Value& other);
  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  std::unique_ptr<Object> object_;
};

/// Parses a JSON document. Throws JsonError on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Escapes a string for embedding in JSON output (without quotes).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace drbml::json
