#include "support/parallel.hpp"

#include <cstdlib>

namespace drbml::support {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  if (const char* env = std::getenv("DRBML_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

ThreadPool::ThreadPool(int threads) {
  workers_.reserve(threads > 0 ? static_cast<std::size_t>(threads) : 0);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Inline pool: the exact serial path, in index order.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  batch_size_ = n;
  next_index_ = 0;
  in_flight_ = 0;
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] {
    return next_index_ >= batch_size_ && in_flight_ == 0;
  });
  fn_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (generation_ != seen_generation &&
                       next_index_ < batch_size_);
    });
    if (stop_) return;
    const std::uint64_t gen = generation_;
    while (gen == generation_ && next_index_ < batch_size_) {
      // After a task throws, drain the batch without running the rest:
      // the caller rethrows, so partial results are never observed.
      if (error_ != nullptr) {
        next_index_ = batch_size_;
        break;
      }
      const std::size_t index = next_index_++;
      ++in_flight_;
      lock.unlock();
      std::exception_ptr err;
      try {
        (*fn_)(index);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      --in_flight_;
      if (err != nullptr && error_ == nullptr) error_ = err;
    }
    seen_generation = gen;
    if (next_index_ >= batch_size_ && in_flight_ == 0) {
      done_cv_.notify_all();
    }
  }
}

}  // namespace drbml::support
